#include "graph/graph_generator.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace star::graph {
namespace {

TEST(GraphGeneratorTest, RespectsRequestedSizes) {
  GeneratorConfig cfg;
  cfg.num_nodes = 500;
  cfg.num_edges = 2000;
  const auto g = GenerateGraph(cfg);
  EXPECT_EQ(g.node_count(), 500u);
  EXPECT_EQ(g.edge_count(), 2000u);
}

TEST(GraphGeneratorTest, DeterministicForSeed) {
  GeneratorConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_edges = 600;
  cfg.seed = 123;
  const auto g1 = GenerateGraph(cfg);
  const auto g2 = GenerateGraph(cfg);
  ASSERT_EQ(g1.node_count(), g2.node_count());
  for (NodeId v = 0; v < g1.node_count(); ++v) {
    EXPECT_EQ(g1.NodeLabel(v), g2.NodeLabel(v));
  }
  for (EdgeId e = 0; e < g1.edge_count(); ++e) {
    EXPECT_EQ(g1.EdgeSrc(e), g2.EdgeSrc(e));
    EXPECT_EQ(g1.EdgeDst(e), g2.EdgeDst(e));
  }
}

TEST(GraphGeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_edges = 600;
  cfg.seed = 1;
  const auto g1 = GenerateGraph(cfg);
  cfg.seed = 2;
  const auto g2 = GenerateGraph(cfg);
  bool any_diff = false;
  for (EdgeId e = 0; e < g1.edge_count() && !any_diff; ++e) {
    any_diff = g1.EdgeSrc(e) != g2.EdgeSrc(e) || g1.EdgeDst(e) != g2.EdgeDst(e);
  }
  EXPECT_TRUE(any_diff);
}

TEST(GraphGeneratorTest, ConnectedViaBackbone) {
  GeneratorConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_edges = 600;
  const auto g = GenerateGraph(cfg);
  // BFS from node 0 reaches everything.
  std::vector<bool> seen(g.node_count(), false);
  std::vector<NodeId> stack = {0};
  seen[0] = true;
  size_t count = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    ++count;
    for (const auto& nb : g.Neighbors(v)) {
      if (!seen[nb.node]) {
        seen[nb.node] = true;
        stack.push_back(nb.node);
      }
    }
  }
  EXPECT_EQ(count, g.node_count());
}

TEST(GraphGeneratorTest, PowerLawishDegrees) {
  GeneratorConfig cfg;
  cfg.num_nodes = 2000;
  cfg.num_edges = 8000;
  cfg.degree_skew = 1.0;
  const auto g = GenerateGraph(cfg);
  // Hubs exist: max degree far above average (2*8000/2000 = 8).
  EXPECT_GT(g.MaxDegree(), 60u);
}

TEST(GraphGeneratorTest, LabelsShareTokens) {
  GeneratorConfig cfg;
  cfg.num_nodes = 500;
  cfg.num_edges = 1000;
  cfg.token_pool = 12;
  const auto g = GenerateGraph(cfg);
  // With a tiny token pool, full-label collisions must occur — the
  // ambiguity knowledge-graph search must cope with.
  std::set<std::string> labels;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    labels.insert(std::string(g.NodeLabel(v)));
  }
  EXPECT_LT(labels.size(), g.node_count());
}

TEST(GraphGeneratorTest, TypedNodesAndRelations) {
  GeneratorConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_edges = 900;
  cfg.num_types = 10;
  cfg.num_relations = 12;
  const auto g = GenerateGraph(cfg);
  EXPECT_LE(g.type_count(), 10u);
  EXPECT_GT(g.type_count(), 1u);
  EXPECT_LE(g.relation_count(), 12u);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(g.NodeType(v), 0);
  }
}

TEST(GraphGeneratorTest, PresetShapes) {
  const auto db = DBpediaLike(1000);
  const auto yago = Yago2Like(1000);
  const auto fb = FreebaseLike(1000);
  // DBpedia is the densest, YAGO2 the sparsest — the paper's Table 1 shape.
  EXPECT_GT(db.num_edges, fb.num_edges);
  EXPECT_GT(fb.num_edges, yago.num_edges);
  EXPECT_EQ(db.name, "dbpedia-like");
  const auto g = GenerateGraph(yago);
  EXPECT_EQ(g.node_count(), 1000u);
}

}  // namespace
}  // namespace star::graph
