// Determinism of the parallel execution engine: every thread count must
// produce byte-identical candidate lists and top-k results (same matches,
// same scores, same order) as serial execution, for every star strategy.
// This is the test the ThreadSanitizer CI job runs to certify the
// QueryScorer bulk-scoring / warmed-read contract race-free.

#include <vector>

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "core/framework.h"
#include "core/star_search.h"
#include "query/workload.h"
#include "scoring/query_scorer.h"
#include "test_helpers.h"

namespace star {
namespace {

using core::StarSearch;
using core::StarStrategy;
using star::testing::MovieGraph;
using star::testing::ScorerFixture;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

constexpr int kParallelThreads = 4;

// Generic over candidate containers (std::vector and the arena-backed
// scoring::CandidateList compare element-wise the same way).
template <typename A, typename B>
void ExpectSameCandidates(const A& a, const B& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << "position " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "position " << i;  // bitwise
  }
}

void ExpectSameStarMatches(const std::vector<core::StarMatch>& a,
                           const std::vector<core::StarMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pivot, b[i].pivot) << "rank " << i;
    EXPECT_EQ(a[i].leaves, b[i].leaves) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;
  }
}

void ExpectSameGraphMatches(const std::vector<core::GraphMatch>& a,
                            const std::vector<core::GraphMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mapping, b[i].mapping) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;
  }
}

TEST(ParallelDeterminismTest, CandidateListsMatchSerial) {
  const auto g = SmallRandomGraph(/*seed=*/11, /*nodes=*/40, /*edges=*/90);
  query::WorkloadGenerator wg(g, /*seed=*/3);
  const auto q = wg.RandomStarQuery(4, query::WorkloadOptions{});
  for (const bool with_index : {false, true}) {
    auto serial_cfg = TestConfig(/*d=*/2);
    serial_cfg.threads = 1;
    auto parallel_cfg = serial_cfg;
    parallel_cfg.threads = kParallelThreads;
    ScorerFixture serial(g, q, serial_cfg, with_index);
    ScorerFixture parallel(g, q, parallel_cfg, with_index);
    for (int u = 0; u < q.node_count(); ++u) {
      ExpectSameCandidates(serial.scorer->Candidates(u),
                           parallel.scorer->Candidates(u));
    }
  }
}

TEST(ParallelDeterminismTest, TruncatedCandidatesEqualFullSortPrefix) {
  // partial_sort truncation (max_candidates) must agree with the full sort
  // under the (score desc, node asc) total order, serial and parallel.
  const auto g = SmallRandomGraph(/*seed=*/23, /*nodes=*/48, /*edges=*/96);
  query::WorkloadGenerator wg(g, /*seed=*/9);
  const auto q = wg.RandomStarQuery(3, query::WorkloadOptions{});
  auto full_cfg = TestConfig();
  full_cfg.threads = 1;
  ScorerFixture full(g, q, full_cfg, /*with_index=*/false);
  for (const int threads : {1, kParallelThreads}) {
    auto cut_cfg = full_cfg;
    cut_cfg.max_candidates = 5;
    cut_cfg.threads = threads;
    ScorerFixture cut(g, q, cut_cfg, /*with_index=*/false);
    for (int u = 0; u < q.node_count(); ++u) {
      auto expect = full.scorer->Candidates(u);
      if (expect.size() > 5) expect.resize(5);
      ExpectSameCandidates(expect, cut.scorer->Candidates(u));
    }
  }
}

TEST(ParallelDeterminismTest, StarTopKMatchesSerialForEveryStrategy) {
  const auto g = SmallRandomGraph(/*seed=*/5, /*nodes=*/36, /*edges=*/80);
  query::WorkloadGenerator wg(g, /*seed=*/17);
  for (int d = 1; d <= 2; ++d) {
    const auto q = wg.RandomStarQuery(4, query::WorkloadOptions{});
    for (const StarStrategy strategy :
         {StarStrategy::kStark, StarStrategy::kStard, StarStrategy::kHybrid}) {
      auto serial_cfg = TestConfig(d);
      serial_cfg.threads = 1;
      auto parallel_cfg = serial_cfg;
      parallel_cfg.threads = kParallelThreads;
      ScorerFixture serial(g, q, serial_cfg);
      ScorerFixture parallel(g, q, parallel_cfg);
      StarSearch::Options so;
      so.strategy = strategy;
      StarSearch serial_search(*serial.scorer, core::MakeStarQuery(q), so);
      StarSearch parallel_search(*parallel.scorer, core::MakeStarQuery(q), so);
      ExpectSameStarMatches(serial_search.TopK(10), parallel_search.TopK(10));
    }
  }
}

TEST(ParallelDeterminismTest, MovieGraphStarSearchIsThreadCountInvariant) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int maker = q.AddNode("Brad", "Actor");
  const int film = q.AddNode("?", "Film");
  const int award = q.AddNode("Award", "");
  q.AddEdge(maker, film, "actedIn");
  q.AddEdge(film, award, "won");
  for (const StarStrategy strategy :
       {StarStrategy::kStark, StarStrategy::kStard, StarStrategy::kHybrid}) {
    std::vector<std::vector<core::StarMatch>> results;
    for (const int threads : {1, 2, kParallelThreads}) {
      auto cfg = TestConfig(/*d=*/2);
      cfg.threads = threads;
      ScorerFixture fx(g, q, cfg);
      StarSearch::Options so;
      so.strategy = strategy;
      StarSearch search(*fx.scorer, core::MakeStarQuery(q), so);
      results.push_back(search.TopK(8));
    }
    ExpectSameStarMatches(results[0], results[1]);
    ExpectSameStarMatches(results[0], results[2]);
  }
}

TEST(ParallelDeterminismTest, FrameworkGeneralQueryMatchesSerial) {
  const auto g = SmallRandomGraph(/*seed=*/31, /*nodes=*/32, /*edges=*/72);
  query::WorkloadGenerator wg(g, /*seed=*/7);
  const auto q = wg.RandomStarQuery(5, query::WorkloadOptions{});
  text::SimilarityEnsemble ensemble;
  const graph::LabelIndex index(g);
  for (const StarStrategy strategy :
       {StarStrategy::kStark, StarStrategy::kStard}) {
    core::StarOptions serial_opts;
    serial_opts.strategy = strategy;
    serial_opts.match = TestConfig(/*d=*/2);
    serial_opts.match.threads = 1;
    auto parallel_opts = serial_opts;
    parallel_opts.match.threads = kParallelThreads;
    core::StarFramework serial_fw(g, ensemble, &index, serial_opts);
    core::StarFramework parallel_fw(g, ensemble, &index, parallel_opts);
    ExpectSameGraphMatches(serial_fw.TopK(q, 10), parallel_fw.TopK(q, 10));
  }
}

TEST(ParallelDeterminismTest, BruteForceMatchesSerial) {
  const auto g = SmallRandomGraph(/*seed=*/13);
  query::WorkloadGenerator wg(g, /*seed=*/29);
  const auto q = wg.RandomStarQuery(3, query::WorkloadOptions{});
  auto serial_cfg = TestConfig(/*d=*/2);
  serial_cfg.threads = 1;
  auto parallel_cfg = serial_cfg;
  parallel_cfg.threads = kParallelThreads;
  ScorerFixture serial(g, q, serial_cfg);
  ScorerFixture parallel(g, q, parallel_cfg);
  ExpectSameGraphMatches(baseline::BruteForceTopK(*serial.scorer, 10),
                         baseline::BruteForceTopK(*parallel.scorer, 10));
}

}  // namespace
}  // namespace star
