// Cross-cutting semantic properties of the matching model itself:
// threshold monotonicity, cutoff consistency across engines, and the
// GraphMatch helpers.

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "baseline/graph_ta.h"
#include "core/framework.h"
#include "core/star_search.h"
#include "query/workload.h"
#include "test_helpers.h"

namespace star {
namespace {

using core::GraphMatch;
using star::testing::ScorerFixture;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

TEST(GraphMatchTest, CompleteAndInjective) {
  GraphMatch m;
  m.mapping = {1, 2, 3};
  EXPECT_TRUE(m.Complete());
  EXPECT_TRUE(m.Injective());
  m.mapping = {1, graph::kInvalidNode, 3};
  EXPECT_FALSE(m.Complete());
  EXPECT_TRUE(m.Injective());  // unmapped slots ignored
  m.mapping = {1, 2, 1};
  EXPECT_TRUE(m.Complete());
  EXPECT_FALSE(m.Injective());
  m.mapping = {};
  EXPECT_TRUE(m.Complete());
  EXPECT_TRUE(m.Injective());
}

// Raising any threshold can only shrink the valid match set.
class ThresholdMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdMonotonicity, StricterConfigNeverAddsMatches) {
  const int seed = GetParam();
  const auto g = SmallRandomGraph(seed, 20, 40);
  query::WorkloadGenerator wg(g, seed + 50);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto q = wg.RandomStarQuery(3, wo);

  auto loose = TestConfig(2);
  loose.node_threshold = 0.2;
  loose.edge_threshold = 0.0;
  auto strict = loose;
  strict.node_threshold = 0.5;
  strict.edge_threshold = 0.3;

  ScorerFixture fx_loose(g, q, loose);
  ScorerFixture fx_strict(g, q, strict);
  const size_t loose_count = baseline::BruteForceCountMatches(*fx_loose.scorer);
  const size_t strict_count =
      baseline::BruteForceCountMatches(*fx_strict.scorer);
  EXPECT_LE(strict_count, loose_count) << "seed=" << seed;

  // Smaller d also never adds matches.
  auto d1 = loose;
  d1.d = 1;
  ScorerFixture fx_d1(g, q, d1);
  EXPECT_LE(baseline::BruteForceCountMatches(*fx_d1.scorer), loose_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdMonotonicity, ::testing::Range(0, 8));

// With aggressive retrieval/candidate cutoffs, results may shrink but all
// engines must still agree (they share the candidacy rule).
class CutoffConsistency : public ::testing::TestWithParam<int> {};

TEST_P(CutoffConsistency, EnginesAgreeUnderCutoffs) {
  const int seed = GetParam();
  const auto g = SmallRandomGraph(seed, 30, 70);
  query::WorkloadGenerator wg(g, seed * 11 + 2);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  wo.partial_label = 0.5;
  const auto q = wg.RandomStarQuery(3, wo);
  auto cfg = TestConfig(2);
  cfg.max_candidates = 4;
  cfg.max_retrieval = 6;
  const size_t k = 5;

  ScorerFixture fx(g, q, cfg);
  const auto expected = baseline::BruteForceTopK(*fx.scorer, k);

  for (const auto strategy :
       {core::StarStrategy::kStark, core::StarStrategy::kStard,
        core::StarStrategy::kHybrid}) {
    ScorerFixture fx2(g, q, cfg);
    core::StarSearch::Options so;
    so.strategy = strategy;
    core::StarSearch search(*fx2.scorer, core::MakeStarQuery(q), so);
    const auto got = search.TopK(k);
    ASSERT_EQ(got.size(), expected.size())
        << "strategy=" << static_cast<int>(strategy) << " seed=" << seed;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].score, expected[i].score, 1e-9) << "seed=" << seed;
    }
  }
  ScorerFixture fx3(g, q, cfg);
  baseline::GraphTa ta(*fx3.scorer);
  const auto ta_got = ta.TopK(k);
  ASSERT_EQ(ta_got.size(), expected.size()) << "seed=" << seed;
  for (size_t i = 0; i < ta_got.size(); ++i) {
    EXPECT_NEAR(ta_got[i].score, expected[i].score, 1e-9) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutoffConsistency, ::testing::Range(0, 8));

// Fresh searches over the same scorer state are deterministic.
TEST(DeterminismTest, RepeatedSearchesIdentical) {
  const auto g = SmallRandomGraph(77, 30, 60);
  query::WorkloadGenerator wg(g, 5);
  const auto q = wg.RandomStarQuery(3, {});
  const auto cfg = TestConfig(2);
  std::vector<double> first;
  for (int round = 0; round < 3; ++round) {
    ScorerFixture fx(g, q, cfg);
    core::StarSearch search(*fx.scorer, core::MakeStarQuery(q), {});
    std::vector<double> scores;
    for (const auto& m : search.TopK(10)) scores.push_back(m.score);
    if (round == 0) {
      first = scores;
    } else {
      ASSERT_TRUE(star::testing::ScoresMatch(first, scores));
    }
  }
}

// lambda = 1 (no decay): a d-hop connection scores like a wildcard edge.
TEST(LambdaOneTest, NoDecayMakesPathsFree) {
  const auto g = star::testing::MovieGraph();
  query::QueryGraph q;
  const int a = q.AddNode("Richard Linklater");
  const int b = q.AddNode("Academy Award");
  q.AddEdge(a, b);
  auto cfg = TestConfig(2);
  cfg.lambda = 1.0;
  ScorerFixture fx(g, q, cfg);
  // Richard -> Boyhood -> Academy Award at 2 hops: F_E = 1^(2-1) = 1.
  EXPECT_DOUBLE_EQ(fx.scorer->PairEdgeScore(0, 2, 6), 1.0);
}

}  // namespace
}  // namespace star
