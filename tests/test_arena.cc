// MonotonicArena unit tests plus the per-query lifetime contract the
// engine relies on: a request arena that served a CANCELLED (truncated)
// run must, after one Reset(), serve the next request with results
// bitwise identical to a fresh arena — no stale state, no leaks, and a
// steady-state footprint (Reset keeps the largest block, so a worker
// thread re-serving the same shape of query stops allocating entirely).
// Suite names match the ASan CI filter (*Arena*, *Cancellation*).

#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <memory_resource>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "core/framework.h"
#include "query/workload.h"
#include "serve/query_service.h"
#include "test_helpers.h"

namespace star {
namespace {

using common::MonotonicArena;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

TEST(MonotonicArenaTest, AllocationsAreAlignedAndDisjoint) {
  MonotonicArena arena;
  std::vector<std::pair<std::byte*, size_t>> blocks;
  for (const size_t align : {1u, 2u, 8u, 16u, 64u}) {
    for (const size_t bytes : {1u, 3u, 17u, 256u}) {
      void* p = arena.Allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "bytes=" << bytes << " align=" << align;
      std::memset(p, 0xAB, bytes);  // ASan catches overlap / OOB here
      blocks.emplace_back(static_cast<std::byte*>(p), bytes);
    }
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (size_t j = i + 1; j < blocks.size(); ++j) {
      const bool disjoint = blocks[i].first + blocks[i].second <=
                                blocks[j].first ||
                            blocks[j].first + blocks[j].second <=
                                blocks[i].first;
      EXPECT_TRUE(disjoint) << "allocations " << i << " and " << j;
    }
  }
  EXPECT_GT(arena.bytes_allocated(), 0u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(MonotonicArenaTest, GrowsGeometricallyAndServesOversizedRequests) {
  MonotonicArena arena;
  EXPECT_EQ(arena.block_count(), 0u);
  arena.Allocate(16, 8);
  EXPECT_EQ(arena.block_count(), 1u);
  // An allocation far beyond the current reservation must still succeed.
  const size_t big = 1u << 20;
  void* p = arena.Allocate(big, 64);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0, big);
  EXPECT_GE(arena.bytes_reserved(), big);
  EXPECT_GE(arena.block_count(), 2u);
}

TEST(MonotonicArenaTest, ResetKeepsOnlyTheLargestBlock) {
  MonotonicArena arena;
  // Force several geometric blocks.
  for (int i = 0; i < 40; ++i) arena.Allocate(1u << 14, 8);
  ASSERT_GT(arena.block_count(), 1u);
  const size_t reserved_before = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_LT(arena.bytes_reserved(), reserved_before);
  // The survivor is the largest block: the steady-state claim is that a
  // same-sized workload now fits without growing the reservation, after
  // at most one more warm-up round (the largest block doubles per round,
  // so the footprint converges instead of ratcheting).
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 40; ++i) arena.Allocate(1u << 14, 8);
    arena.Reset();
  }
  const size_t steady = arena.bytes_reserved();
  for (int i = 0; i < 40; ++i) arena.Allocate(1u << 14, 8);
  EXPECT_EQ(arena.block_count(), 1u) << "steady-state run grew a new block";
  arena.Reset();
  EXPECT_EQ(arena.bytes_reserved(), steady);
}

TEST(MonotonicArenaTest, PmrResourceHasIdentityEqualityAndNoOpDeallocate) {
  MonotonicArena a;
  MonotonicArena b;
  EXPECT_TRUE(a.resource()->is_equal(*a.resource()));
  EXPECT_FALSE(a.resource()->is_equal(*b.resource()));
  EXPECT_FALSE(a.resource()->is_equal(*std::pmr::get_default_resource()));
  {
    std::pmr::vector<int> v(a.resource());
    for (int i = 0; i < 10000; ++i) v.push_back(i);  // grows + "frees"
    std::pmr::vector<int> w(a.resource());
    w = std::move(v);  // equal resources: O(1) steal, no copy
    EXPECT_EQ(w.size(), 10000u);
    EXPECT_EQ(w[9999], 9999);
  }
  // Destruction above deallocated into the arena (a no-op): everything is
  // still owned by the arena until Reset.
  EXPECT_GT(a.bytes_allocated(), 10000u * sizeof(int));
  a.Reset();
  EXPECT_EQ(a.bytes_allocated(), 0u);
}

// ---------------------------------------------------------------------
// Lifetime under cancellation: a truncated run must not poison the arena
// for the next request.
// ---------------------------------------------------------------------

void ExpectSameMatches(const std::vector<core::GraphMatch>& a,
                       const std::vector<core::GraphMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mapping, b[i].mapping) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;
  }
}

TEST(ArenaCancellationTest, CancelledRunThenResetYieldsIdenticalResults) {
  const auto g = SmallRandomGraph(/*seed=*/77, /*nodes=*/40, /*edges=*/90);
  query::WorkloadGenerator wg(g, /*seed=*/13);
  const auto q = wg.RandomStarQuery(4, query::WorkloadOptions{});
  text::SimilarityEnsemble ensemble;
  const graph::LabelIndex index(g);
  core::StarOptions opts;
  opts.match = TestConfig(/*d=*/2);
  core::StarFramework fw(g, ensemble, &index, opts);

  const auto expected = fw.TopK(q, 10);  // internal fresh arena
  ASSERT_FALSE(expected.empty());

  MonotonicArena arena;
  for (int round = 0; round < 3; ++round) {
    // A request whose deadline already expired: the run truncates almost
    // immediately, leaving arbitrary partially-built state in the arena.
    Cancellation expired((Deadline::Expired()));
    arena.Reset();
    const auto truncated = fw.TopK(q, 10, &expired, &arena);
    EXPECT_LE(truncated.size(), expected.size());

    // One Reset later the same arena must serve a complete, bitwise
    // identical answer — truncation left nothing behind.
    arena.Reset();
    Cancellation none;
    ExpectSameMatches(fw.TopK(q, 10, &none, &arena), expected);
  }
}

TEST(ArenaCancellationTest, ExpiredRequestDoesNotPoisonWorkerArena) {
  // Service-level version of the same contract: the per-worker
  // thread_local arena is reset once per request, so a truncated request
  // must not affect the next request served by the same worker.
  const auto g = SmallRandomGraph(/*seed=*/99, /*nodes=*/40, /*edges=*/90);
  query::WorkloadGenerator wg(g, /*seed=*/21);
  const auto q = wg.RandomStarQuery(4, query::WorkloadOptions{});
  text::SimilarityEnsemble ensemble;
  const graph::LabelIndex index(g);

  serve::ServiceOptions so;
  so.star.match = TestConfig(/*d=*/2);
  so.max_inflight = 1;  // one worker: both requests share its arena
  so.cache_capacity = 0;
  so.star_cache_capacity = 0;
  so.enable_coalescing = false;
  serve::QueryService service(g, ensemble, &index, so);

  core::StarFramework fw(g, ensemble, &index, so.star);
  const auto expected = fw.TopK(q, 10);

  for (int round = 0; round < 3; ++round) {
    serve::QueryRequest doomed;
    doomed.query = q;
    doomed.k = 10;
    doomed.deadline = Deadline::AfterMillis(0.01);
    const auto dr = service.Execute(std::move(doomed));
    EXPECT_NE(dr.status.code(), StatusCode::kOk);

    serve::QueryRequest fresh;
    fresh.query = q;
    fresh.k = 10;
    const auto fr = service.Execute(std::move(fresh));
    ASSERT_TRUE(fr.status.ok()) << fr.status.ToString();
    ExpectSameMatches(fr.matches, expected);
  }
}

}  // namespace
}  // namespace star
