#include "common/string_util.h"

#include <gtest/gtest.h>

namespace star {
namespace {

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("Brad PITT"), "brad pitt");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("123-aBc"), "123-abc");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringUtilTest, SplitTokens) {
  EXPECT_EQ(SplitTokens("Brad Pitt"), (std::vector<std::string>{"Brad", "Pitt"}));
  EXPECT_EQ(SplitTokens("a_b-c.d/e"),
            (std::vector<std::string>{"a", "b", "c", "d", "e"}));
  EXPECT_TRUE(SplitTokens("").empty());
  EXPECT_TRUE(SplitTokens("  ").empty());
  EXPECT_EQ(SplitTokens("one"), (std::vector<std::string>{"one"}));
}

TEST(StringUtilTest, SplitFieldsKeepsEmpties) {
  EXPECT_EQ(SplitFields("a\t\tb", '\t'),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitFields("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitFields("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("prefix-rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringUtilTest, IsNumeric) {
  EXPECT_TRUE(IsNumeric("12345"));
  EXPECT_FALSE(IsNumeric(""));
  EXPECT_FALSE(IsNumeric("12a"));
  EXPECT_FALSE(IsNumeric("-12"));  // digits only by design
}

}  // namespace
}  // namespace star
