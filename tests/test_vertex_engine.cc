#include "vertex/star_programs.h"
#include "vertex/vertex_engine.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "graph/graph_stats.h"
#include "query/workload.h"
#include "test_helpers.h"

namespace star::vertex {
namespace {

using star::testing::MovieGraph;
using star::testing::ScorerFixture;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

TEST(VertexEngineTest, MessagesFlowBetweenSupersteps) {
  const auto g = MovieGraph();
  // Count how many supersteps a token needs to cross a 2-hop distance.
  std::vector<int> received_at(g.node_count(), -1);
  VertexEngine<int> engine(
      g, [&](VertexEngine<int>::Context& ctx, const std::vector<int>&) {
        if (ctx.superstep() == 0) {
          ctx.SendToNeighbors(1);
          return;
        }
        if (received_at[ctx.vertex()] < 0) {
          received_at[ctx.vertex()] = ctx.superstep();
        }
      });
  engine.Activate(0);  // Brad Pitt
  const auto stats = engine.Run(5);
  EXPECT_GE(stats.supersteps, 2);
  EXPECT_GT(stats.messages_delivered, 0u);
  EXPECT_EQ(received_at[4], 1);   // Troy: direct neighbor
  EXPECT_EQ(received_at[6], -1);  // Academy Award: 2 hops, never messaged
}

TEST(VertexEngineTest, QuiescenceEndsRun) {
  const auto g = MovieGraph();
  VertexEngine<int> engine(
      g, [](VertexEngine<int>::Context&, const std::vector<int>&) {});
  engine.Activate(0);
  const auto stats = engine.Run(100);
  EXPECT_LE(stats.supersteps, 1);
  EXPECT_EQ(stats.compute_calls, 1u);
}

TEST(ConnectedComponentsVcTest, MatchesGraphStats) {
  for (const int seed : {1, 2, 3}) {
    const auto g = SmallRandomGraph(seed, 40, 60);
    const auto labels = ConnectedComponentsVC(g);
    std::map<graph::NodeId, size_t> sizes;
    for (const auto l : labels) ++sizes[l];
    const auto stats = graph::ComputeGraphStats(g);
    EXPECT_EQ(sizes.size(), stats.connected_components) << "seed=" << seed;
    size_t largest = 0;
    for (const auto& [l, c] : sizes) largest = std::max(largest, c);
    EXPECT_EQ(largest, stats.largest_component);
    // Endpoints of every edge share a component.
    for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(labels[g.EdgeSrc(e)], labels[g.EdgeDst(e)]);
    }
  }
}

TEST(BfsDistancesVcTest, MatchesReferenceBfs) {
  const auto g = SmallRandomGraph(7, 40, 80);
  const graph::NodeId source = 3;
  const int depth = 3;
  const auto got = BfsDistancesVC(g, source, depth);
  // Reference BFS.
  std::unordered_map<graph::NodeId, int> expected;
  expected.emplace(source, 0);
  std::vector<graph::NodeId> frontier = {source};
  for (int h = 1; h <= depth; ++h) {
    std::vector<graph::NodeId> next;
    for (const auto v : frontier) {
      for (const auto& nb : g.Neighbors(v)) {
        if (expected.emplace(nb.node, h).second) next.push_back(nb.node);
      }
    }
    frontier = std::move(next);
  }
  EXPECT_EQ(got.size(), expected.size());
  for (const auto& [v, dist] : expected) {
    ASSERT_TRUE(got.count(v)) << "v=" << v;
    EXPECT_EQ(got.at(v), dist) << "v=" << v;
  }
}

TEST(BfsDistancesVcTest, DepthZero) {
  const auto g = MovieGraph();
  const auto got = BfsDistancesVC(g, 0, 0);
  EXPECT_EQ(got.size(), 1u);
  EXPECT_EQ(got.at(0), 0);
}

// The §V-B Remark made precise: the vertex-centric stard propagation
// computes exactly the walk-semantics arrival values.
class StardVertexProperty : public ::testing::TestWithParam<int> {};

TEST_P(StardVertexProperty, MatchesPairEdgeScoreSemantics) {
  const int seed = GetParam();
  const auto g = SmallRandomGraph(seed, 26, 52);
  query::WorkloadGenerator wg(g, seed * 3 + 1);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto q = wg.RandomStarQuery(2, wo);  // one edge, one leaf
  const int d = 1 + seed % 3;
  ScorerFixture fx(g, q, TestConfig(d));
  const int query_edge = 0;
  const int leaf = q.OtherEnd(0, q.StarPivot());

  const auto arrivals = PropagateLeafScoresVC(*fx.scorer, query_edge, leaf);

  // Reference: per node, per candidate source, base + PairEdgeScore.
  const auto& candidates = fx.scorer->Candidates(leaf);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    // Top-2 distinct-source values.
    std::vector<double> per_source;
    for (const auto& c : candidates) {
      const double fe = fx.scorer->PairEdgeScore(query_edge, v, c.node);
      if (fe >= 0.0) per_source.push_back(c.score + fe);
    }
    std::sort(per_source.begin(), per_source.end(), std::greater<double>());
    const auto it = arrivals.find(v);
    if (per_source.empty()) {
      if (it != arrivals.end()) {
        EXPECT_LT(it->second.best_value, 0.0) << "v=" << v << " d=" << d;
      }
      continue;
    }
    ASSERT_TRUE(it != arrivals.end()) << "v=" << v << " d=" << d;
    EXPECT_NEAR(it->second.best_value, per_source[0], 1e-9)
        << "v=" << v << " seed=" << seed << " d=" << d;
    if (per_source.size() >= 2) {
      EXPECT_NEAR(it->second.second_value, per_source[1], 1e-9)
          << "v=" << v << " seed=" << seed << " d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StardVertexProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace star::vertex
