// Tests for cross-query computation reuse: canonical per-star signatures
// (query/query_canonical.h), the generation-counted StarCache
// (serve/star_cache.h), the framework wiring (StarOptions::reuse +
// CachedStarStream replay), and single-flight request coalescing in
// QueryService. The load-bearing property throughout: anything served warm
// — replayed star prefix, seeded candidate list, coalesced response — is
// BITWISE identical to cold execution.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "query/query_canonical.h"
#include "query/workload.h"
#include "serve/query_service.h"
#include "serve/star_cache.h"
#include "test_helpers.h"

namespace star {
namespace {

using core::GraphMatch;
using core::StarFramework;
using core::StarOptions;
using core::StarStrategy;
using query::CanonicalizeStar;
using query::CanonicalStar;
using query::QueryGraph;
using query::StarQuery;
using serve::StarCache;
using star::testing::MovieGraph;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

void ExpectIdentical(const std::vector<GraphMatch>& a,
                     const std::vector<GraphMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mapping, b[i].mapping) << "match " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "match " << i;
  }
}

// ---------------------------------------------------------------------------
// Canonical star signatures
// ---------------------------------------------------------------------------

TEST(CanonicalStarTest, SignatureIsEdgeInsertionOrderInsensitive) {
  QueryGraph a;
  const int pa = a.AddWildcardNode("Film");
  const int brad_a = a.AddNode("Brad");
  const int award_a = a.AddNode("Award");
  const int e0a = a.AddEdge(pa, brad_a, "actedIn");
  const int e1a = a.AddEdge(pa, award_a, "won");

  QueryGraph b;  // same star, leaves and edges added in the other order
  const int award_b = b.AddNode("Award");
  const int pb = b.AddWildcardNode("Film");
  const int brad_b = b.AddNode("Brad");
  const int e1b = b.AddEdge(pb, award_b, "won");
  const int e0b = b.AddEdge(brad_b, pb, "actedIn");

  StarQuery sa{pa, {e0a, e1a}};
  StarQuery sb{pb, {e0b, e1b}};
  const CanonicalStar ca = CanonicalizeStar(a, sa);
  const CanonicalStar cb = CanonicalizeStar(b, sb);
  EXPECT_TRUE(ca.exact);
  EXPECT_TRUE(cb.exact);
  EXPECT_EQ(ca.signature, cb.signature);
  EXPECT_EQ(ca.hash, cb.hash);
}

TEST(CanonicalStarTest, SignatureSeparatesLabelsPredicatesAndWeights) {
  QueryGraph q;
  const int p = q.AddWildcardNode("Film");
  const int brad = q.AddNode("Brad");
  const int e = q.AddEdge(p, brad, "actedIn");
  const StarQuery star{p, {e}};
  const std::string base = CanonicalizeStar(q, star).signature;

  QueryGraph q2;  // different leaf label
  const int p2 = q2.AddWildcardNode("Film");
  const int leaf2 = q2.AddNode("Angelina");
  const int e2 = q2.AddEdge(p2, leaf2, "actedIn");
  EXPECT_NE(CanonicalizeStar(q2, StarQuery{p2, {e2}}).signature, base);

  QueryGraph q3;  // different predicate
  const int p3 = q3.AddWildcardNode("Film");
  const int leaf3 = q3.AddNode("Brad");
  const int e3 = q3.AddEdge(p3, leaf3, "directed");
  EXPECT_NE(CanonicalizeStar(q3, StarQuery{p3, {e3}}).signature, base);

  // α-scheme node weights are part of the identity: the same star under a
  // different weight split keys differently.
  std::vector<double> weights(q.node_count(), 1.0);
  weights[brad] = 0.5;
  EXPECT_NE(CanonicalizeStar(q, star, weights).signature, base);
  // All-1.0 weights encode exactly like the empty default.
  EXPECT_EQ(CanonicalizeStar(q, star,
                             std::vector<double>(q.node_count(), 1.0))
                .signature,
            base);
}

TEST(CanonicalStarTest, TiedEdgeRecordsAreMarkedInexact) {
  QueryGraph q;
  const int p = q.AddWildcardNode("Film");
  const int a = q.AddNode("Brad");
  const int b = q.AddNode("Brad");
  const int e0 = q.AddEdge(p, a, "actedIn");
  const int e1 = q.AddEdge(p, b, "actedIn");
  const CanonicalStar c = CanonicalizeStar(q, StarQuery{p, {e0, e1}});
  // Two indistinguishable leaves: the canonical edge order is ambiguous,
  // so the star must refuse exact status (and thus never be cached).
  EXPECT_FALSE(c.exact);
}

// ---------------------------------------------------------------------------
// StarCache unit behavior
// ---------------------------------------------------------------------------

std::vector<scoring::ScoredCandidate> SomeCandidates(int n) {
  std::vector<scoring::ScoredCandidate> out;
  for (int i = 0; i < n; ++i) {
    out.push_back({static_cast<graph::NodeId>(i), 1.0 / (1 + i)});
  }
  return out;
}

TEST(StarCacheTest, CandidateSectionLruAndGeneration) {
  StarCache cache(2, 2);
  const uint64_t gen = cache.generation();
  cache.InsertCandidates("a", SomeCandidates(1), gen);
  cache.InsertCandidates("b", SomeCandidates(2), gen);
  ASSERT_NE(cache.LookupCandidates("a"), nullptr);  // refresh a
  cache.InsertCandidates("c", SomeCandidates(3), gen);  // evicts b
  EXPECT_NE(cache.LookupCandidates("a"), nullptr);
  EXPECT_EQ(cache.LookupCandidates("b"), nullptr);
  EXPECT_NE(cache.LookupCandidates("c"), nullptr);
  EXPECT_EQ(cache.stats().candidate_evictions, 1u);

  cache.Invalidate();
  EXPECT_EQ(cache.LookupCandidates("a"), nullptr)
      << "Invalidate must clear the candidate section";
  cache.InsertCandidates("d", SomeCandidates(1), gen);  // stale generation
  EXPECT_EQ(cache.LookupCandidates("d"), nullptr);
  EXPECT_GE(cache.stats().stale_drops, 1u);
}

TEST(StarCacheTest, TopListKeepsTheDeeperRecording) {
  StarCache cache(4, 4);
  const uint64_t gen = cache.generation();
  const auto make = [](int depth) {
    std::vector<core::StarMatch> ms(depth);
    std::vector<double> bs(depth + 1, 1.0);
    return std::pair(ms, bs);
  };

  auto [m2, b2] = make(2);
  cache.InsertStarTopList("s", m2, b2, false, gen);
  auto got = cache.LookupStarTopList("s");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->matches->size(), 2u);

  auto [m1, b1] = make(1);
  cache.InsertStarTopList("s", m1, b1, false, gen);
  got = cache.LookupStarTopList("s");
  EXPECT_EQ(got->matches->size(), 2u) << "shallower recording must not win";

  auto [m4, b4] = make(4);
  cache.InsertStarTopList("s", m4, b4, true, gen);
  got = cache.LookupStarTopList("s");
  EXPECT_EQ(got->matches->size(), 4u);
  EXPECT_TRUE(got->exhausted);

  // Equal depth, exhausted flag upgrades an open recording.
  auto [m3a, b3a] = make(3);
  cache.InsertStarTopList("t", m3a, b3a, false, gen);
  auto [m3b, b3b] = make(3);
  cache.InsertStarTopList("t", m3b, b3b, true, gen);
  EXPECT_TRUE(cache.LookupStarTopList("t")->exhausted);

  // Misaligned bounds are refused outright.
  std::vector<core::StarMatch> bad(2);
  cache.InsertStarTopList("u", bad, std::vector<double>(2, 0.0), false, gen);
  EXPECT_FALSE(cache.LookupStarTopList("u").has_value());
}

// ---------------------------------------------------------------------------
// Engine-level identity: reuse on/off, cold/warm, across strategies,
// thread counts, and single-/multi-star queries.
// ---------------------------------------------------------------------------

struct ReuseFixture {
  graph::KnowledgeGraph graph;
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index;

  explicit ReuseFixture(graph::KnowledgeGraph g)
      : graph(std::move(g)), index(graph) {}

  std::vector<GraphMatch> Run(const QueryGraph& q, size_t k,
                              const StarOptions& o,
                              core::FrameworkStats* stats = nullptr) {
    StarFramework fw(graph, ensemble, &index, o);
    auto out = fw.TopK(q, k);
    if (stats != nullptr) *stats = fw.last_stats();
    return out;
  }
};

/// Brad — ?Film — ?Director — Award: decomposes into >= 2 stars, so the
/// rank-join replay path is exercised alongside the single-star one.
QueryGraph PathQuery() {
  QueryGraph q;
  const int brad = q.AddNode("Brad");
  const int film = q.AddWildcardNode("Film");
  const int dir = q.AddWildcardNode("Director");
  const int award = q.AddNode("Award");
  q.AddEdge(brad, film, "actedIn");
  q.AddEdge(dir, film, "directed");
  q.AddEdge(dir, award, "won");
  return q;
}

QueryGraph StarOnlyQuery() {
  QueryGraph q;
  const int film = q.AddWildcardNode("Film");
  const int brad = q.AddNode("Brad");
  const int award = q.AddNode("Award");
  q.AddEdge(film, brad, "actedIn");
  q.AddEdge(film, award, "won");
  return q;
}

class StarReuseIdentityTest
    : public ::testing::TestWithParam<std::tuple<StarStrategy, int>> {};

TEST_P(StarReuseIdentityTest, WarmRunsAreBitwiseIdenticalToCold) {
  const auto [strategy, threads] = GetParam();
  ReuseFixture fx(MovieGraph());
  StarOptions base;
  base.match = TestConfig(1);
  base.match.threads = threads;
  base.strategy = strategy;
  const size_t k = 6;

  for (const QueryGraph& q : {StarOnlyQuery(), PathQuery()}) {
    const auto direct = fx.Run(q, k, base);

    StarCache cache(64, 64);
    StarOptions with_reuse = base;
    with_reuse.reuse = &cache;

    core::FrameworkStats cold_stats, warm_stats;
    const auto cold = fx.Run(q, k, with_reuse, &cold_stats);
    ExpectIdentical(cold, direct);
    EXPECT_GT(cold_stats.star_cache_misses, 0u);
    EXPECT_EQ(cold_stats.star_cache_hits, 0u);
    EXPECT_GT(cold_stats.candidate_lists_inserted, 0u);

    const auto warm = fx.Run(q, k, with_reuse, &warm_stats);
    ExpectIdentical(warm, direct);
    EXPECT_GT(warm_stats.star_cache_hits, 0u)
        << "second run of the same query must replay memoized stars";
    EXPECT_GT(warm_stats.candidate_lists_seeded, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndThreads, StarReuseIdentityTest,
    ::testing::Combine(::testing::Values(StarStrategy::kStark,
                                         StarStrategy::kStard,
                                         StarStrategy::kHybrid),
                       ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<StarStrategy, int>>& info) {
      const char* s = std::get<0>(info.param) == StarStrategy::kStark
                          ? "Stark"
                          : std::get<0>(info.param) == StarStrategy::kStard
                                ? "Stard"
                                : "Hybrid";
      return std::string(s) + "T" + std::to_string(std::get<1>(info.param));
    });

TEST(StarReuseIdentityTest, DeeperConsumersResumePastTheRecordedPrefix) {
  // Warm the cache with a SHALLOW run (k = 1), then ask for a deeper
  // answer: the stream must replay the prefix, fast-forward the engine,
  // and extend — still bitwise identical to a cold deep run.
  ReuseFixture fx(SmallRandomGraph(7, 30, 60));
  query::WorkloadGenerator wg(fx.graph, 17);
  const QueryGraph q = wg.RandomStarQuery(3, query::WorkloadOptions{});
  StarOptions base;
  base.match = TestConfig(1);

  const auto deep_direct = fx.Run(q, 8, base);

  StarCache cache(64, 64);
  StarOptions with_reuse = base;
  with_reuse.reuse = &cache;
  fx.Run(q, 1, with_reuse);

  core::FrameworkStats stats;
  const auto deep_warm = fx.Run(q, 8, with_reuse, &stats);
  ExpectIdentical(deep_warm, deep_direct);
  EXPECT_GT(stats.star_cache_hits, 0u);
}

TEST(StarReuseIdentityTest, ReorderedQueryHitsTheSameStarEntries) {
  ReuseFixture fx(MovieGraph());
  StarOptions base;
  base.match = TestConfig(1);
  StarCache cache(64, 64);
  base.reuse = &cache;

  QueryGraph a = StarOnlyQuery();  // nodes: film=0, brad=1, award=2
  QueryGraph b;  // same star, opposite insertion order
  const int award = b.AddNode("Award");
  const int film = b.AddWildcardNode("Film");
  const int brad = b.AddNode("Brad");
  b.AddEdge(film, award, "won");
  b.AddEdge(brad, film, "actedIn");

  const auto first = fx.Run(a, 5, base);
  core::FrameworkStats stats;
  const auto second = fx.Run(b, 5, base, &stats);
  EXPECT_GT(stats.star_cache_hits, 0u)
      << "canonicalization must make insertion order irrelevant";
  // The two queries number their nodes differently, so compare by role.
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].score, first[i].score) << "match " << i;
    EXPECT_EQ(second[i].mapping[film], first[i].mapping[0]) << "match " << i;
    EXPECT_EQ(second[i].mapping[brad], first[i].mapping[1]) << "match " << i;
    EXPECT_EQ(second[i].mapping[award], first[i].mapping[2]) << "match " << i;
  }
}

TEST(StarReuseIdentityTest, CancelledRunsNeverPopulateTheCache) {
  ReuseFixture fx(MovieGraph());
  StarCache cache(64, 64);
  StarOptions o;
  o.match = TestConfig(1);
  o.reuse = &cache;

  Cancellation expired((Deadline::Expired()));
  StarFramework fw(fx.graph, fx.ensemble, &fx.index, o);
  (void)fw.TopK(StarOnlyQuery(), 5, &expired);
  EXPECT_TRUE(fw.last_stats().cancelled);
  EXPECT_EQ(cache.candidate_size(), 0u);
  EXPECT_EQ(cache.toplist_size(), 0u);
  const serve::StarCacheStats s = cache.stats();
  EXPECT_EQ(s.candidate_insertions, 0u);
  EXPECT_EQ(s.toplist_insertions, 0u);
}

TEST(StarReuseIdentityTest, InvalidationForcesRecomputeWithIdenticalResults) {
  ReuseFixture fx(MovieGraph());
  StarCache cache(64, 64);
  StarOptions o;
  o.match = TestConfig(1);
  o.reuse = &cache;

  const auto first = fx.Run(StarOnlyQuery(), 5, o);
  cache.Invalidate();
  core::FrameworkStats stats;
  const auto second = fx.Run(StarOnlyQuery(), 5, o, &stats);
  EXPECT_EQ(stats.star_cache_hits, 0u) << "invalidation must clear entries";
  ExpectIdentical(second, first);
}

// ---------------------------------------------------------------------------
// Single-flight coalescing in QueryService
// ---------------------------------------------------------------------------

core::StarOptions ServeStarOptions() {
  core::StarOptions o;
  o.match = TestConfig(2);
  return o;
}

QueryGraph BradAwardQuery() {
  QueryGraph q;
  const int brad = q.AddNode("Brad");
  const int maker = q.AddWildcardNode("Director");
  const int award = q.AddNode("Award");
  q.AddEdge(brad, maker);
  q.AddEdge(maker, award);
  return q;
}

TEST(CoalescingTest, FollowersReceiveTheLeadersExactResult) {
  ReuseFixture fx(MovieGraph());
  const auto direct = fx.Run(BradAwardQuery(), 5, ServeStarOptions());

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  serve::ServiceOptions so;
  so.star = ServeStarOptions();
  so.max_inflight = 1;
  so.cache_capacity = 0;  // no result cache: coalescing alone dedups
  so.before_execute = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  serve::QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  serve::QueryRequest req;
  req.query = BradAwardQuery();
  req.k = 5;
  auto f1 = service.Submit(req);
  while (entered.load() == 0) std::this_thread::yield();
  // The leader is pinned inside before_execute: these MUST coalesce.
  auto f2 = service.Submit(req);
  auto f3 = service.Submit(req);
  EXPECT_EQ(service.stats().coalesced_followers, 2u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  const serve::QueryResponse r1 = f1.get();
  const serve::QueryResponse r2 = f2.get();
  const serve::QueryResponse r3 = f3.get();
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r2.status.ok());
  ASSERT_TRUE(r3.status.ok());
  EXPECT_FALSE(r1.coalesced);
  EXPECT_TRUE(r2.coalesced);
  EXPECT_TRUE(r3.coalesced);
  ExpectIdentical(r1.matches, direct);
  ExpectIdentical(r2.matches, direct);
  ExpectIdentical(r3.matches, direct);
  EXPECT_EQ(entered.load(), 1) << "exactly one execution for three requests";
  EXPECT_EQ(service.stats().completed, 3u);
}

TEST(CoalescingTest, ExpiredFollowerIsAnsweredHonestlyAtDelivery) {
  ReuseFixture fx(MovieGraph());
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  serve::ServiceOptions so;
  so.star = ServeStarOptions();
  so.max_inflight = 1;
  so.before_execute = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  serve::QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  serve::QueryRequest req;
  req.query = BradAwardQuery();
  req.k = 5;
  auto leader = service.Submit(req);
  while (entered.load() == 0) std::this_thread::yield();

  serve::QueryRequest doomed = req;
  doomed.deadline = Deadline::Expired();
  auto follower = service.Submit(std::move(doomed));
  ASSERT_EQ(service.stats().coalesced_followers, 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  ASSERT_TRUE(leader.get().status.ok());
  const serve::QueryResponse fr = follower.get();
  // Its own deadline expired while riding along: delivering the leader's
  // complete answer would claim latency the follower never got.
  EXPECT_EQ(fr.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(fr.partial);
  EXPECT_TRUE(fr.matches.empty());
}

TEST(CoalescingTest, LeaderExpiryPromotesALiveFollower) {
  ReuseFixture fx(MovieGraph());
  const auto direct = fx.Run(BradAwardQuery(), 5, ServeStarOptions());

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  serve::ServiceOptions so;
  so.star = ServeStarOptions();
  so.max_inflight = 1;
  so.cache_capacity = 0;
  so.before_execute = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  serve::QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  // The leader's deadline is already expired: it clears before_execute,
  // then fails its entry checkpoint. The follower (no deadline) must be
  // promoted and re-run on the same worker rather than inheriting the
  // leader's failure.
  serve::QueryRequest doomed;
  doomed.query = BradAwardQuery();
  doomed.k = 5;
  doomed.deadline = Deadline::Expired();
  auto leader = service.Submit(std::move(doomed));
  while (entered.load() == 0) std::this_thread::yield();

  serve::QueryRequest live;
  live.query = BradAwardQuery();
  live.k = 5;
  auto follower = service.Submit(std::move(live));
  ASSERT_EQ(service.stats().coalesced_followers, 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;  // sticky: the promoted follower passes straight through
  }
  cv.notify_all();

  EXPECT_EQ(leader.get().status.code(), StatusCode::kDeadlineExceeded);
  const serve::QueryResponse fr = follower.get();
  ASSERT_TRUE(fr.status.ok()) << fr.status.message();
  EXPECT_FALSE(fr.coalesced) << "a promoted follower ran its own execution";
  ExpectIdentical(fr.matches, direct);
  EXPECT_EQ(service.stats().coalesce_promotions, 1u);
  EXPECT_EQ(entered.load(), 2) << "leader entered once, promoted follower once";
}

// ---------------------------------------------------------------------------
// Concurrency suite. Named *ParallelDeterminism* so it runs under the same
// TSan CI filter as the other concurrent tests.
// ---------------------------------------------------------------------------

TEST(StarReuseParallelDeterminismTest, TemplateSkewedClientsStayExact) {
  ReuseFixture fx(SmallRandomGraph(11, 30, 60));
  serve::ServiceOptions so;
  so.star = ServeStarOptions();
  so.star.match = TestConfig(1);
  so.max_inflight = 4;
  so.cache_capacity = 0;  // isolate the star cache + coalescing layers
  so.star_cache_capacity = 128;
  serve::QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  query::WorkloadGenerator wg(fx.graph, 29);
  std::vector<QueryGraph> queries;
  std::vector<std::vector<GraphMatch>> expected;
  const size_t k = 4;
  for (int i = 0; i < 4; ++i) {
    QueryGraph q = wg.RandomStarQuery(3, query::WorkloadOptions{});
    expected.push_back(fx.Run(q, k, so.star));
    queries.push_back(std::move(q));
  }

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 12;
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const size_t qi = static_cast<size_t>(c + r) % queries.size();
        serve::QueryRequest req;
        req.query = queries[qi];
        req.k = k;
        const serve::QueryResponse resp = service.Execute(std::move(req));
        if (!resp.status.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const auto& want = expected[qi];
        bool same = resp.matches.size() == want.size();
        for (size_t i = 0; same && i < want.size(); ++i) {
          same = resp.matches[i].mapping == want[i].mapping &&
                 resp.matches[i].score == want[i].score;
        }
        if (!same) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "warm star-cache / coalesced results must be bitwise exact";
  const serve::StarCacheStats cs = service.star_cache_stats();
  EXPECT_GT(cs.toplist_hits + cs.candidate_hits, 0u)
      << "the skewed workload must actually exercise reuse";
}

TEST(StarReuseParallelDeterminismTest, ConcurrentInvalidationStaysExact) {
  ReuseFixture fx(MovieGraph());
  serve::ServiceOptions so;
  so.star = ServeStarOptions();
  so.max_inflight = 4;
  serve::QueryService service(fx.graph, fx.ensemble, &fx.index, so);
  const auto expected = fx.Run(BradAwardQuery(), 5, so.star);

  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load()) {
      service.InvalidateCache();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < 10; ++r) {
        serve::QueryRequest req;
        req.query = BradAwardQuery();
        req.k = 5;
        const serve::QueryResponse resp = service.Execute(std::move(req));
        if (!resp.status.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        bool same = resp.matches.size() == expected.size();
        for (size_t i = 0; same && i < expected.size(); ++i) {
          same = resp.matches[i].mapping == expected[i].mapping &&
                 resp.matches[i].score == expected[i].score;
        }
        if (!same) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  invalidator.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "star-cache generations must keep results exact under invalidation";
}

}  // namespace
}  // namespace star
