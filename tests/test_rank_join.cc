#include "core/rank_join.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "core/decomposition.h"
#include "query/workload.h"
#include "test_helpers.h"

namespace star::core {
namespace {

using star::testing::ScorerFixture;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

/// A scripted monotone iterator for controlled join tests.
class ScriptedStream : public CoveredMatchIterator {
 public:
  ScriptedStream(uint64_t covered, std::vector<GraphMatch> matches)
      : covered_(covered), matches_(std::move(matches)) {}

  std::optional<GraphMatch> Next() override {
    if (pos_ >= matches_.size()) return std::nullopt;
    return matches_[pos_++];
  }

  double UpperBound() const override {
    if (pos_ >= matches_.size()) {
      return -std::numeric_limits<double>::infinity();
    }
    return matches_[pos_].score;
  }

  uint64_t covered_mask() const override { return covered_; }

 private:
  uint64_t covered_;
  std::vector<GraphMatch> matches_;
  size_t pos_ = 0;
};

GraphMatch MakeMatch(std::vector<graph::NodeId> mapping, double score) {
  GraphMatch m;
  m.mapping = std::move(mapping);
  m.score = score;
  return m;
}

constexpr graph::NodeId X = graph::kInvalidNode;

TEST(RankJoinTest, JoinsOnSharedNode) {
  // Query nodes {0,1,2}; left covers {0,1}, right covers {1,2}.
  auto left = std::make_unique<ScriptedStream>(
      0b011, std::vector<GraphMatch>{MakeMatch({10, 20, X}, 1.8),
                                     MakeMatch({11, 21, X}, 1.5)});
  auto right = std::make_unique<ScriptedStream>(
      0b110, std::vector<GraphMatch>{MakeMatch({X, 21, 31}, 1.9),
                                     MakeMatch({X, 20, 30}, 1.2)});
  RankJoin join(std::move(left), std::move(right), true);
  EXPECT_EQ(join.covered_mask(), 0b111u);
  const auto first = join.Next();
  ASSERT_TRUE(first.has_value());
  // Joinable pairs: (10,20)+(20,30)=3.0 and (11,21)+(21,31)=3.4.
  EXPECT_NEAR(first->score, 3.4, 1e-12);
  EXPECT_EQ(first->mapping, (std::vector<graph::NodeId>{11, 21, 31}));
  const auto second = join.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_NEAR(second->score, 3.0, 1e-12);
  EXPECT_FALSE(join.Next().has_value());
}

TEST(RankJoinTest, EmitsInDescendingOrder) {
  auto left = std::make_unique<ScriptedStream>(
      0b011, std::vector<GraphMatch>{MakeMatch({1, 5, X}, 2.0),
                                     MakeMatch({2, 5, X}, 1.9),
                                     MakeMatch({3, 6, X}, 1.0)});
  auto right = std::make_unique<ScriptedStream>(
      0b110, std::vector<GraphMatch>{MakeMatch({X, 5, 7}, 2.0),
                                     MakeMatch({X, 6, 8}, 1.8),
                                     MakeMatch({X, 5, 9}, 0.5)});
  RankJoin join(std::move(left), std::move(right), true);
  double prev = 1e18;
  size_t count = 0;
  while (auto m = join.Next()) {
    EXPECT_LE(m->score, prev + 1e-12);
    prev = m->score;
    ++count;
  }
  // Valid joins: (1,5)x(5,7), (1,5)x(5,9), (2,5)x(5,7), (2,5)x(5,9),
  // (3,6)x(6,8).
  EXPECT_EQ(count, 5u);
}

TEST(RankJoinTest, InjectivityFiltersCrossStarCollisions) {
  // Left maps node0=7; right maps node2=7 as well -> collision.
  auto left = std::make_unique<ScriptedStream>(
      0b011, std::vector<GraphMatch>{MakeMatch({7, 5, X}, 2.0)});
  auto right = std::make_unique<ScriptedStream>(
      0b110, std::vector<GraphMatch>{MakeMatch({X, 5, 7}, 2.0),
                                     MakeMatch({X, 5, 8}, 1.0)});
  {
    RankJoin join(std::make_unique<ScriptedStream>(*static_cast<ScriptedStream*>(left.get())),
                  std::make_unique<ScriptedStream>(*static_cast<ScriptedStream*>(right.get())),
                  true);
    const auto m = join.Next();
    ASSERT_TRUE(m.has_value());
    EXPECT_NEAR(m->score, 3.0, 1e-12);  // the non-colliding pair
    EXPECT_FALSE(join.Next().has_value());
  }
  {
    RankJoin join(std::move(left), std::move(right), false);
    const auto m = join.Next();
    ASSERT_TRUE(m.has_value());
    EXPECT_NEAR(m->score, 4.0, 1e-12);  // collision allowed
  }
}

TEST(RankJoinTest, UpperBoundDominatesEmissions) {
  auto left = std::make_unique<ScriptedStream>(
      0b011, std::vector<GraphMatch>{MakeMatch({1, 5, X}, 2.0),
                                     MakeMatch({2, 5, X}, 1.0)});
  auto right = std::make_unique<ScriptedStream>(
      0b110, std::vector<GraphMatch>{MakeMatch({X, 5, 7}, 1.5),
                                     MakeMatch({X, 5, 8}, 0.5)});
  RankJoin join(std::move(left), std::move(right), true);
  while (true) {
    const double ub = join.UpperBound();
    const auto m = join.Next();
    if (!m.has_value()) break;
    EXPECT_GE(ub + 1e-9, m->score);
  }
}

TEST(RankJoinTest, DisjointStreamsCrossProduct) {
  // No shared nodes: every pair joins (cartesian, injectivity permitting).
  auto left = std::make_unique<ScriptedStream>(
      0b001, std::vector<GraphMatch>{MakeMatch({1, X, X}, 1.0),
                                     MakeMatch({2, X, X}, 0.5)});
  auto right = std::make_unique<ScriptedStream>(
      0b010, std::vector<GraphMatch>{MakeMatch({X, 3, X}, 1.0),
                                     MakeMatch({X, 4, X}, 0.2)});
  RankJoin join(std::move(left), std::move(right), true);
  size_t count = 0;
  while (join.Next().has_value()) ++count;
  EXPECT_EQ(count, 4u);
}

TEST(StarMatchStreamTest, CoversPivotAndLeaves) {
  const auto g = star::testing::MovieGraph();
  query::QueryGraph q;
  const int a = q.AddNode("Brad");
  const int b = q.AddNode("Troy");
  const int c = q.AddNode("Award");
  q.AddEdge(a, b);
  q.AddEdge(b, c);
  ScorerFixture fx(g, q, TestConfig(2));
  query::StarQuery star;
  star.pivot = b;
  star.edges = {0, 1};
  auto search = std::make_unique<StarSearch>(*fx.scorer, star,
                                             StarSearch::Options{});
  StarMatchStream stream(std::move(search));
  EXPECT_EQ(stream.covered_mask(), 0b111u);
  const auto m = stream.Next();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(stream.depth(), 1u);
}

}  // namespace
}  // namespace star::core
