// Property tests of the threshold-aware scoring kernel: exact-mode and
// accepted thresholded scores must be BITWISE equal to Score() and to the
// naive Features()-dot-weights sum, rejected pairs must truly be below the
// threshold, and the end-to-end pipeline (Candidates, star top-k) must be
// bit-identical with the kernel on or off, at every thread count and for
// every star strategy. The *ParallelDeterminism* suite here is picked up
// by the ThreadSanitizer CI job's test filter.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/star_search.h"
#include "query/workload.h"
#include "scoring/query_scorer.h"
#include "test_helpers.h"
#include "text/ensemble.h"
#include "text/similarity.h"
#include "text/synonym_dictionary.h"
#include "text/tfidf.h"
#include "text/type_ontology.h"

namespace star {
namespace {

using core::StarSearch;
using core::StarStrategy;
using star::testing::ScorerFixture;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;
using text::SimilarityEnsemble;

// The pair alphabet deliberately mixes case, digits and every SplitTokens
// delimiter; it avoids spelling "inf"/"nan" (strtod would parse those, a
// known corner where the guarded Score() fast path and the raw feature
// vector differ — the kernel mirrors Score()).
std::string RandomLabel(Rng& rng, size_t max_len = 12) {
  static const std::string kAlphabet = "abcDEF 12._-";
  std::string s;
  const size_t len = rng.Below(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng.Below(kAlphabet.size())]);
  }
  return s;
}

std::vector<std::pair<std::string, std::string>> PairCorpus(uint64_t seed,
                                                            size_t n) {
  // Hand-picked corners first: empties, case-only differences, acronyms,
  // numerals, quantities, years, near-duplicates.
  std::vector<std::pair<std::string, std::string>> pairs = {
      {"", ""},
      {"", "a"},
      {"a", ""},
      {"Brad Pitt", "Brad Pitt"},
      {"Brad Pitt", "brad pitt"},
      {"Brad Pitt", "Brad Garrett"},
      {"JFK", "John Fitzgerald Kennedy"},
      {"Intl", "International"},
      {"Part II", "Part 2"},
      {"Rocky Three", "Rocky 3"},
      {"12 km", "12000 m"},
      {"1994-06-23", "June 1994"},
      {"  ", "  "},
      {"a_b-c", "a b.c"},
      {"aaaa", "aaab"},
  };
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    pairs.emplace_back(RandomLabel(rng), RandomLabel(rng));
  }
  // Mutated near-pairs: same label twice, or with one edit.
  for (size_t i = 0; i < n / 2; ++i) {
    std::string a = RandomLabel(rng);
    std::string b = a;
    if (!b.empty() && rng.Below(2) == 0) b[rng.Below(b.size())] = 'z';
    pairs.emplace_back(std::move(a), std::move(b));
  }
  return pairs;
}

/// Owns the corpus-level context so ensembles with every feature active
/// can be built in one line.
struct FullContextEnsemble {
  text::SynonymDictionary synonyms = text::SynonymDictionary::BuiltIn();
  text::TypeOntology ontology = text::TypeOntology::BuiltIn();
  text::TfIdfModel tfidf;
  std::unique_ptr<SimilarityEnsemble> ensemble;

  explicit FullContextEnsemble(
      const std::vector<std::pair<std::string, std::string>>& corpus) {
    for (const auto& [a, b] : corpus) {
      tfidf.AddDocument(a);
      tfidf.AddDocument(b);
    }
    tfidf.Finalize();
    SimilarityEnsemble::Context ctx;
    ctx.synonyms = &synonyms;
    ctx.tfidf = &tfidf;
    ctx.ontology = &ontology;
    ensemble = std::make_unique<SimilarityEnsemble>(ctx);
  }
};

// The naive Eq. 1 evaluation: the full feature vector dotted with the
// weights, accumulated in canonical feature order.
double NaiveDot(const SimilarityEnsemble& e, const std::string& q,
                const std::string& d) {
  const std::vector<double> f = e.Features(q, d);
  const std::vector<double>& w = e.weights();
  double s = 0.0;
  for (int i = 0; i < SimilarityEnsemble::kFeatureCount; ++i) s += w[i] * f[i];
  return s;
}

void ExpectExactModeMatchesScore(const SimilarityEnsemble& e,
                                 uint64_t corpus_seed) {
  for (const auto& [q, d] : PairCorpus(corpus_seed, 200)) {
    const auto prepared = e.Prepare(q);
    const double kernel = e.ScoreAgainstThreshold(
        prepared, d, SimilarityEnsemble::kNoThreshold);
    const double score = e.Score(q, d);
    EXPECT_EQ(kernel, score) << "q=\"" << q << "\" d=\"" << d << "\"";
  }
}

void ExpectThresholdedSemantics(const SimilarityEnsemble& e,
                                uint64_t corpus_seed) {
  for (const auto& [q, d] : PairCorpus(corpus_seed, 150)) {
    const auto prepared = e.Prepare(q);
    const double exact = e.Score(q, d);
    for (const double t : {0.05, 0.2, 0.35, 0.5, 0.8, 1.0}) {
      const double r = e.ScoreAgainstThreshold(prepared, d, t);
      if (r >= t) {
        // Accepted results are the exact canonical score, bitwise.
        EXPECT_EQ(r, exact) << "q=\"" << q << "\" d=\"" << d << "\" t=" << t;
      } else {
        // Rejected results may be truncated bounds, but the pair's true
        // score must genuinely be below the threshold (no false rejects).
        EXPECT_LT(exact, t) << "q=\"" << q << "\" d=\"" << d << "\" t=" << t;
      }
    }
  }
}

TEST(ScoringKernelTest, ExactModeMatchesScoreBitwise) {
  ExpectExactModeMatchesScore(SimilarityEnsemble(), /*corpus_seed=*/101);
  const auto corpus = PairCorpus(/*seed=*/102, 200);
  FullContextEnsemble full(corpus);
  ExpectExactModeMatchesScore(*full.ensemble, /*corpus_seed=*/102);
}

TEST(ScoringKernelTest, AcceptedScoresMatchNaiveFeatureDot) {
  const auto corpus = PairCorpus(/*seed=*/103, 200);
  FullContextEnsemble full(corpus);
  const SimilarityEnsemble& e = *full.ensemble;
  for (const auto& [q, d] : corpus) {
    // Score() (and the kernel) shortcut case-insensitive equality to 1.0;
    // the feature dot has no such shortcut, so skip those pairs.
    if (!q.empty() && text::CaseInsensitiveMatch(q, d) == 1.0) continue;
    const auto prepared = e.Prepare(q);
    const double kernel = e.ScoreAgainstThreshold(
        prepared, d, SimilarityEnsemble::kNoThreshold);
    EXPECT_EQ(kernel, NaiveDot(e, q, d)) << "q=\"" << q << "\" d=\"" << d
                                         << "\"";
  }
}

TEST(ScoringKernelTest, ThresholdedAcceptsExactRejectsTrulyBelow) {
  ExpectThresholdedSemantics(SimilarityEnsemble(), /*corpus_seed=*/104);
  const auto corpus = PairCorpus(/*seed=*/105, 150);
  FullContextEnsemble full(corpus);
  ExpectThresholdedSemantics(*full.ensemble, /*corpus_seed=*/105);
}

TEST(ScoringKernelTest, CustomWeightsStayExactAfterRebuild) {
  SimilarityEnsemble e;
  // A lopsided weighting (several zeros, including two of the pre-filter
  // features) forces a non-uniform evaluation order.
  std::vector<double> w(SimilarityEnsemble::kFeatureCount, 0.0);
  w[SimilarityEnsemble::kLevenshtein] = 5.0;
  w[SimilarityEnsemble::kJaroWinkler] = 3.0;
  w[SimilarityEnsemble::kTokenJaccard] = 2.0;
  w[SimilarityEnsemble::kMongeElkan] = 2.0;
  w[SimilarityEnsemble::kPrefix] = 1.0;
  w[SimilarityEnsemble::kDate] = 0.5;
  w[SimilarityEnsemble::kNumeralAware] = 0.5;
  e.SetWeights(w);
  ExpectExactModeMatchesScore(e, /*corpus_seed=*/106);
  ExpectThresholdedSemantics(e, /*corpus_seed=*/107);
}

TEST(ScoringKernelTest, StatsCountPairsExitsAndSkips) {
  SimilarityEnsemble e;
  text::KernelStats stats;
  const auto prepared = e.Prepare("Benjamin Button");
  const std::vector<std::string> data = {
      "Benjamin Button", "Benjamin B.", "zzzz", "12._-", "", "qqqq qqqq"};
  for (const auto& d : data) {
    e.ScoreAgainstThreshold(prepared, d, /*threshold=*/0.9, -1, -1, &stats);
  }
  EXPECT_EQ(stats.pairs, data.size());
  // "zzzz" & co. cannot reach 0.9: at least one pair must exit early and
  // skip feature evaluations.
  EXPECT_GT(stats.early_exits, 0u);
  EXPECT_GT(stats.features_skipped, 0u);
  EXPECT_GT(stats.features_evaluated, 0u);

  // Exact mode never exits early.
  text::KernelStats exact_stats;
  for (const auto& d : data) {
    e.ScoreAgainstThreshold(prepared, d, SimilarityEnsemble::kNoThreshold, -1,
                            -1, &exact_stats);
  }
  EXPECT_EQ(exact_stats.early_exits, 0u);
  EXPECT_EQ(exact_stats.features_skipped, 0u);
}

// ---------------------------------------------------------------------
// End-to-end: kernel on vs off must be bit-identical through Candidates
// and star top-k, for every strategy and thread count. Named to match the
// ThreadSanitizer job's *ParallelDeterminism* filter.
// ---------------------------------------------------------------------

// Generic over candidate containers (std::vector and the arena-backed
// scoring::CandidateList compare element-wise the same way).
template <typename A, typename B>
void ExpectSameCandidates(const A& a, const B& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << "position " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "position " << i;  // bitwise
  }
}

void ExpectSameStarMatches(const std::vector<core::StarMatch>& a,
                           const std::vector<core::StarMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pivot, b[i].pivot) << "rank " << i;
    EXPECT_EQ(a[i].leaves, b[i].leaves) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;
  }
}

TEST(ScoringKernelParallelDeterminismTest, CandidatesIdenticalKernelOnOff) {
  const auto g = SmallRandomGraph(/*seed=*/31, /*nodes=*/40, /*edges=*/90);
  query::WorkloadGenerator wg(g, /*seed=*/7);
  const auto q = wg.RandomStarQuery(4, query::WorkloadOptions{});
  for (const bool with_index : {false, true}) {
    for (const int threads : {1, 4}) {
      auto off_cfg = TestConfig(/*d=*/2);
      off_cfg.threads = threads;
      off_cfg.use_scoring_kernel = false;
      auto on_cfg = off_cfg;
      on_cfg.use_scoring_kernel = true;
      ScorerFixture off(g, q, off_cfg, with_index);
      ScorerFixture on(g, q, on_cfg, with_index);
      for (int u = 0; u < q.node_count(); ++u) {
        ExpectSameCandidates(off.scorer->Candidates(u),
                             on.scorer->Candidates(u));
      }
    }
  }
}

TEST(ScoringKernelParallelDeterminismTest, StarTopKIdenticalKernelOnOff) {
  const auto g = SmallRandomGraph(/*seed=*/13, /*nodes=*/36, /*edges=*/80);
  query::WorkloadGenerator wg(g, /*seed=*/19);
  for (int d = 1; d <= 2; ++d) {
    const auto q = wg.RandomStarQuery(4, query::WorkloadOptions{});
    for (const StarStrategy strategy :
         {StarStrategy::kStark, StarStrategy::kStard, StarStrategy::kHybrid}) {
      for (const int threads : {1, 4}) {
        auto off_cfg = TestConfig(d);
        off_cfg.threads = threads;
        off_cfg.use_scoring_kernel = false;
        auto on_cfg = off_cfg;
        on_cfg.use_scoring_kernel = true;
        ScorerFixture off(g, q, off_cfg);
        ScorerFixture on(g, q, on_cfg);
        StarSearch::Options so;
        so.strategy = strategy;
        StarSearch off_search(*off.scorer, core::MakeStarQuery(q), so);
        StarSearch on_search(*on.scorer, core::MakeStarQuery(q), so);
        ExpectSameStarMatches(off_search.TopK(10), on_search.TopK(10));
      }
    }
  }
}

TEST(ScoringKernelParallelDeterminismTest, KernelStatsFlowIntoSearchStats) {
  const auto g = SmallRandomGraph(/*seed=*/41, /*nodes=*/40, /*edges=*/90);
  query::WorkloadGenerator wg(g, /*seed=*/23);
  const auto q = wg.RandomStarQuery(4, query::WorkloadOptions{});
  auto cfg = TestConfig(/*d=*/2);
  cfg.threads = 4;
  ScorerFixture fx(g, q, cfg);
  StarSearch search(*fx.scorer, core::MakeStarQuery(q), StarSearch::Options{});
  (void)search.TopK(5);
  const core::StarSearchStats& st = search.stats();
  EXPECT_GT(st.fn_pairs_scored, 0u);
  EXPECT_GT(st.fn_feature_evals, 0u);
  // Lazy refinement after Initialize() may keep scoring, so the scorer's
  // lifetime totals are at least the Initialize() deltas in the stats.
  EXPECT_LE(st.fn_pairs_scored, fx.scorer->kernel_stats().pairs);
}

}  // namespace
}  // namespace star
