// Property tests of the SoA batched scoring kernel (PrepareBatch /
// ScoreBatchAgainstThreshold) and its wiring through QueryScorer's bulk
// path (MatchConfig::use_batch_kernel):
//  - per-lane results must be BITWISE equal to Score() (and to the scalar
//    thresholded kernel) whenever accepted, and a sound sub-threshold
//    upper bound otherwise, for every ragged lane count 1..kBatchLanes;
//  - the end-to-end pipeline (Candidates, star top-k, framework top-k)
//    must be bit-identical with the batch kernel on or off, across every
//    star strategy and thread count, including candidate sets whose size
//    is not a multiple of the lane width;
//  - duplicated data labels straddling the threshold must come out
//    identical to the scalar path — the per-chunk (label, type) memo may
//    only ever hold fully evaluated scores, never rejected-lane bounds.
// The *ParallelDeterminism* suite here is picked up by the TSan CI filter.

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/framework.h"
#include "core/star_search.h"
#include "query/workload.h"
#include "scoring/query_scorer.h"
#include "test_helpers.h"
#include "text/ensemble.h"
#include "text/synonym_dictionary.h"
#include "text/tfidf.h"
#include "text/type_ontology.h"

namespace star {
namespace {

using core::StarSearch;
using core::StarStrategy;
using star::testing::ScorerFixture;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;
using text::SimilarityEnsemble;

// Mixes case, digits and every SplitTokens delimiter; avoids "inf"/"nan"
// (see test_scoring_kernel.cc for why).
std::string RandomLabel(Rng& rng, size_t max_len = 12) {
  static const std::string kAlphabet = "abcDEF 12._-";
  std::string s;
  const size_t len = rng.Below(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng.Below(kAlphabet.size())]);
  }
  return s;
}

std::vector<std::string> LabelCorpus(uint64_t seed, size_t n) {
  std::vector<std::string> labels = {
      "",           "Brad Pitt",  "brad pitt", "Brad Garrett",
      "JFK",        "Intl",       "Part II",   "Part 2",
      "12 km",      "12000 m",    "  ",        "a_b-c",
      "aaaa",       "aaab",       "Rocky 3",   "Rocky Three",
  };
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) labels.push_back(RandomLabel(rng));
  return labels;
}

/// Context-complete ensemble (synonyms + ontology + tf-idf over the
/// corpus) so every feature family participates in the batch sweep.
struct FullContextEnsemble {
  text::SynonymDictionary synonyms = text::SynonymDictionary::BuiltIn();
  text::TypeOntology ontology = text::TypeOntology::BuiltIn();
  text::TfIdfModel tfidf;
  std::unique_ptr<SimilarityEnsemble> ensemble;

  explicit FullContextEnsemble(const std::vector<std::string>& corpus) {
    for (const auto& l : corpus) tfidf.AddDocument(l);
    tfidf.Finalize();
    SimilarityEnsemble::Context ctx;
    ctx.synonyms = &synonyms;
    ctx.tfidf = &tfidf;
    ctx.ontology = &ontology;
    ensemble = std::make_unique<SimilarityEnsemble>(ctx);
  }
};

/// Every lane of every ragged batch width against the scalar kernel and
/// Score(): accepted lanes bitwise equal, rejected lanes truly below.
void ExpectBatchMatchesScalar(const SimilarityEnsemble& e,
                              const std::vector<std::string>& corpus) {
  constexpr int kLanes = SimilarityEnsemble::kBatchLanes;
  for (const auto& q : corpus) {
    const auto batch = e.PrepareBatch(q);
    const auto prepared = e.Prepare(q);
    for (const double t : {SimilarityEnsemble::kNoThreshold, 0.05, 0.4, 0.8}) {
      // Ragged widths: every count 1..kBatchLanes, sliding the window so
      // lane composition varies (partial final batches are the common
      // case in a chunked bulk scan).
      for (int count = 1; count <= kLanes; ++count) {
        for (size_t start = 0; start + size_t(count) <= corpus.size();
             start += size_t(count) * 3 + 1) {
          std::vector<std::string_view> views;
          for (int i = 0; i < count; ++i) {
            views.push_back(corpus[start + size_t(i)]);
          }
          double out[SimilarityEnsemble::kBatchLanes];
          e.ScoreBatchAgainstThreshold(batch, views.data(), views.size(), t,
                                       /*query_type=*/-1,
                                       /*data_types=*/nullptr, out);
          for (int i = 0; i < count; ++i) {
            const std::string& d = corpus[start + size_t(i)];
            const double scalar = e.ScoreAgainstThreshold(prepared, d, t);
            const double exact = e.Score(q, d);
            if (t == SimilarityEnsemble::kNoThreshold || out[i] >= t) {
              EXPECT_EQ(out[i], exact)
                  << "q=\"" << q << "\" d=\"" << d << "\" t=" << t
                  << " count=" << count << " lane=" << i;
              EXPECT_EQ(out[i], scalar)
                  << "q=\"" << q << "\" d=\"" << d << "\" t=" << t;
            } else {
              // Rejected lanes: a sound upper bound — the true score must
              // genuinely be below the threshold (no false rejects).
              EXPECT_LT(exact, t) << "q=\"" << q << "\" d=\"" << d
                                  << "\" t=" << t << " bound=" << out[i];
            }
          }
        }
      }
    }
  }
}

TEST(BatchKernelTest, RaggedLanesMatchScalarKernelBitwise) {
  ExpectBatchMatchesScalar(SimilarityEnsemble(), LabelCorpus(211, 40));
}

TEST(BatchKernelTest, FullContextRaggedLanesMatchScalarKernelBitwise) {
  const auto corpus = LabelCorpus(212, 40);
  FullContextEnsemble full(corpus);
  ExpectBatchMatchesScalar(*full.ensemble, corpus);
}

TEST(BatchKernelTest, TypedLanesMatchScalarKernelBitwise) {
  // With ontology types attached per lane, the type feature participates;
  // the batch path must still agree with the scalar kernel bitwise.
  const auto corpus = LabelCorpus(213, 20);
  FullContextEnsemble full(corpus);
  const SimilarityEnsemble& e = *full.ensemble;
  const int person = full.ontology.FindType("Person");
  const int film = full.ontology.FindType("Film");
  const int types[4] = {person, film, -1, person};
  const auto batch = e.PrepareBatch("Brad Pitt");
  const auto prepared = e.Prepare("Brad Pitt");
  const std::string_view data[4] = {"Brad Garrett", "Troy", "Boyhood",
                                    "brad pitt"};
  for (const double t : {SimilarityEnsemble::kNoThreshold, 0.3, 0.6}) {
    double out[SimilarityEnsemble::kBatchLanes];
    e.ScoreBatchAgainstThreshold(batch, data, 4, t, person, types, out);
    for (int i = 0; i < 4; ++i) {
      const double scalar =
          e.ScoreAgainstThreshold(prepared, data[i], t, person, types[i]);
      if (t == SimilarityEnsemble::kNoThreshold || out[i] >= t) {
        EXPECT_EQ(out[i], scalar) << "lane " << i << " t=" << t;
      } else {
        EXPECT_LT(scalar, t) << "lane " << i << " t=" << t;
      }
    }
  }
}

TEST(BatchKernelTest, BatchStatsCountEveryLane) {
  SimilarityEnsemble e;
  text::KernelStats stats;
  const auto batch = e.PrepareBatch("Benjamin Button");
  const std::string_view data[5] = {"Benjamin Button", "Benjamin B.", "zzzz",
                                    "", "qqqq qqqq"};
  double out[SimilarityEnsemble::kBatchLanes];
  e.ScoreBatchAgainstThreshold(batch, data, 5, /*threshold=*/0.9, -1, nullptr,
                               out, &stats);
  EXPECT_EQ(stats.pairs, 5u);
  // "zzzz" & co. cannot reach 0.9: bound rejection must fire and skip
  // feature evaluations for those lanes.
  EXPECT_GT(stats.early_exits, 0u);
  EXPECT_GT(stats.features_skipped, 0u);
}

// ---------------------------------------------------------------------
// End-to-end: batch kernel on vs off must be bit-identical through
// Candidates, star top-k and framework top-k — for every strategy, thread
// count, and candidate-set sizes not divisible by the lane width. Named
// to match the ThreadSanitizer job's *ParallelDeterminism* filter.
// ---------------------------------------------------------------------

// Generic over candidate containers (std::vector and the arena-backed
// scoring::CandidateList compare element-wise the same way).
template <typename A, typename B>
void ExpectSameCandidates(const A& a, const B& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << "position " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "position " << i;  // bitwise
  }
}

void ExpectSameGraphMatches(const std::vector<core::GraphMatch>& a,
                            const std::vector<core::GraphMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mapping, b[i].mapping) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;
  }
}

TEST(BatchKernelParallelDeterminismTest, CandidatesIdenticalBatchOnOff) {
  // 13 and 27 nodes: full scans end in ragged tail batches (13 = 8+5,
  // 27 = 3*8+3), the case a lane-count bug would corrupt.
  for (const size_t nodes : {13u, 27u, 40u}) {
    const auto g = SmallRandomGraph(/*seed=*/61 + nodes, nodes, nodes * 2);
    query::WorkloadGenerator wg(g, /*seed=*/37);
    const auto q = wg.RandomStarQuery(4, query::WorkloadOptions{});
    for (const bool with_index : {false, true}) {
      for (const int threads : {1, 4}) {
        auto off_cfg = TestConfig(/*d=*/2);
        off_cfg.threads = threads;
        off_cfg.use_batch_kernel = false;
        auto on_cfg = off_cfg;
        on_cfg.use_batch_kernel = true;
        ScorerFixture off(g, q, off_cfg, with_index);
        ScorerFixture on(g, q, on_cfg, with_index);
        for (int u = 0; u < q.node_count(); ++u) {
          ExpectSameCandidates(off.scorer->Candidates(u),
                               on.scorer->Candidates(u));
        }
      }
    }
  }
}

TEST(BatchKernelParallelDeterminismTest, StarTopKIdenticalBatchOnOff) {
  const auto g = SmallRandomGraph(/*seed=*/43, /*nodes=*/36, /*edges=*/80);
  query::WorkloadGenerator wg(g, /*seed=*/29);
  for (int d = 1; d <= 2; ++d) {
    const auto q = wg.RandomStarQuery(4, query::WorkloadOptions{});
    for (const StarStrategy strategy :
         {StarStrategy::kStark, StarStrategy::kStard, StarStrategy::kHybrid}) {
      for (const int threads : {1, 4}) {
        auto off_cfg = TestConfig(d);
        off_cfg.threads = threads;
        off_cfg.use_batch_kernel = false;
        auto on_cfg = off_cfg;
        on_cfg.use_batch_kernel = true;
        ScorerFixture off(g, q, off_cfg);
        ScorerFixture on(g, q, on_cfg);
        StarSearch::Options so;
        so.strategy = strategy;
        StarSearch off_search(*off.scorer, core::MakeStarQuery(q), so);
        StarSearch on_search(*on.scorer, core::MakeStarQuery(q), so);
        const auto off_top = off_search.TopK(10);
        const auto on_top = on_search.TopK(10);
        ASSERT_EQ(off_top.size(), on_top.size());
        for (size_t i = 0; i < off_top.size(); ++i) {
          EXPECT_EQ(off_top[i].pivot, on_top[i].pivot) << "rank " << i;
          EXPECT_EQ(off_top[i].leaves, on_top[i].leaves) << "rank " << i;
          EXPECT_EQ(off_top[i].score, on_top[i].score) << "rank " << i;
        }
      }
    }
  }
}

TEST(BatchKernelParallelDeterminismTest, FrameworkTopKIdenticalAcrossKernels) {
  // The full three-way contract: batch kernel, scalar kernel, and the
  // canonical Score() path must all produce byte-identical top-k.
  const auto g = SmallRandomGraph(/*seed=*/53, /*nodes=*/32, /*edges=*/72);
  query::WorkloadGenerator wg(g, /*seed=*/11);
  const auto q = wg.RandomStarQuery(5, query::WorkloadOptions{});
  text::SimilarityEnsemble ensemble;
  const graph::LabelIndex index(g);
  for (const StarStrategy strategy :
       {StarStrategy::kStark, StarStrategy::kStard}) {
    core::StarOptions base;
    base.strategy = strategy;
    base.match = TestConfig(/*d=*/2);
    base.match.threads = 1;

    auto batch_opts = base;
    batch_opts.match.use_batch_kernel = true;
    auto scalar_opts = base;
    scalar_opts.match.use_batch_kernel = false;
    auto canonical_opts = base;
    canonical_opts.match.use_scoring_kernel = false;

    core::StarFramework batch_fw(g, ensemble, &index, batch_opts);
    core::StarFramework scalar_fw(g, ensemble, &index, scalar_opts);
    core::StarFramework canonical_fw(g, ensemble, &index, canonical_opts);
    const auto batch_top = batch_fw.TopK(q, 10);
    ExpectSameGraphMatches(batch_top, scalar_fw.TopK(q, 10));
    ExpectSameGraphMatches(batch_top, canonical_fw.TopK(q, 10));
  }
}

TEST(BatchKernelParallelDeterminismTest,
     DuplicateSubThresholdLabelsStayIdentical) {
  // Many repeated labels straddling the node threshold: the batch path's
  // per-chunk (label, type) memo sees the same key in accepted and
  // rejected lanes. If a rejected lane's truncated bound ever leaked into
  // the memo (or an accepted score were dropped), the duplicate positions
  // would diverge from the scalar path.
  graph::KnowledgeGraph::Builder b;
  std::vector<graph::NodeId> nodes;
  for (int i = 0; i < 9; ++i) nodes.push_back(b.AddNode("Brad Pitt", "Actor"));
  for (int i = 0; i < 9; ++i) nodes.push_back(b.AddNode("Brandt", "Actor"));
  for (int i = 0; i < 9; ++i) nodes.push_back(b.AddNode("zzzz", "Actor"));
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    b.AddEdge(nodes[i], nodes[i + 1], "knows");
  }
  const auto g = std::move(b).Build();

  query::QueryGraph q;
  const int a = q.AddNode("Brad Pitt");
  const int c = q.AddWildcardNode("");
  q.AddEdge(a, c, "knows");

  for (const bool with_index : {false, true}) {
    for (const int threads : {1, 4}) {
      auto off_cfg = TestConfig(/*d=*/1);
      off_cfg.node_threshold = 0.40;  // "Brandt" near, "zzzz" far below
      off_cfg.threads = threads;
      off_cfg.use_batch_kernel = false;
      auto on_cfg = off_cfg;
      on_cfg.use_batch_kernel = true;
      ScorerFixture off(g, q, off_cfg, with_index);
      ScorerFixture on(g, q, on_cfg, with_index);
      for (int u = 0; u < q.node_count(); ++u) {
        ExpectSameCandidates(off.scorer->Candidates(u),
                             on.scorer->Candidates(u));
      }
    }
  }
}

}  // namespace
}  // namespace star
