#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "graph/graph_generator.h"
#include "test_helpers.h"

namespace star::graph {
namespace {

TEST(GraphStatsTest, MovieGraphBasics) {
  const auto g = star::testing::MovieGraph();
  const auto s = ComputeGraphStats(g);
  EXPECT_EQ(s.nodes, g.node_count());
  EXPECT_EQ(s.edges, g.edge_count());
  EXPECT_EQ(s.types, g.type_count());
  EXPECT_EQ(s.connected_components, 1u);
  EXPECT_EQ(s.largest_component, g.node_count());
  EXPECT_GE(s.degree.max, s.degree.mean);
  EXPECT_GE(s.degree.mean, 1.0);
  // Sum of degrees = 2|E| -> mean = 2|E|/|V|.
  EXPECT_NEAR(s.degree.mean, 2.0 * g.edge_count() / g.node_count(), 1e-9);
}

TEST(GraphStatsTest, EmptyGraph) {
  KnowledgeGraph::Builder b;
  const auto s = ComputeGraphStats(std::move(b).Build());
  EXPECT_EQ(s.nodes, 0u);
  EXPECT_EQ(s.connected_components, 0u);
}

TEST(GraphStatsTest, DisconnectedComponentsCounted) {
  KnowledgeGraph::Builder b;
  const auto a = b.AddNode("A");
  const auto c = b.AddNode("B");
  b.AddNode("isolated");
  b.AddEdge(a, c, "r");
  const auto s = ComputeGraphStats(std::move(b).Build());
  EXPECT_EQ(s.connected_components, 2u);
  EXPECT_EQ(s.largest_component, 2u);
  EXPECT_EQ(s.degree.min, 0u);
}

TEST(GraphStatsTest, TopTypesAndRelations) {
  const auto g = star::testing::MovieGraph();
  const auto s = ComputeGraphStats(g, 2);
  ASSERT_EQ(s.top_types.size(), 2u);
  EXPECT_EQ(s.top_types[0].first, "Actor");  // three actors
  EXPECT_EQ(s.top_types[0].second, 3u);
  ASSERT_FALSE(s.top_relations.empty());
  EXPECT_EQ(s.top_relations[0].first, "actedIn");  // four actedIn edges
  EXPECT_EQ(s.top_relations[0].second, 4u);
}

TEST(GraphStatsTest, GeneratedGraphIsHeavyTailed) {
  GeneratorConfig cfg;
  cfg.num_nodes = 3000;
  cfg.num_edges = 12000;
  cfg.degree_skew = 0.9;
  const auto g = GenerateGraph(cfg);
  const auto s = ComputeGraphStats(g);
  // Hubs: p99 well above the median, and a clearly unequal distribution.
  EXPECT_GT(s.degree.p99, 3 * s.degree.median);
  EXPECT_GT(s.degree.gini, 0.3);
  EXPECT_EQ(s.connected_components, 1u);  // backbone
}

TEST(GraphStatsTest, DegreeHistogramCoversAllNodes) {
  const auto g = star::testing::SmallRandomGraph(3);
  const auto hist = DegreeHistogram(g);
  size_t total = 0;
  for (const size_t c : hist) total += c;
  EXPECT_EQ(total, g.node_count());
  ASSERT_FALSE(hist.empty());
}

TEST(GraphStatsTest, GiniIsZeroForRegularGraph) {
  // A cycle: every node has degree 2.
  KnowledgeGraph::Builder b;
  for (int i = 0; i < 10; ++i) b.AddNode("n" + std::to_string(i));
  for (int i = 0; i < 10; ++i) {
    b.AddEdge(i, (i + 1) % 10, "r");
  }
  const auto s = ComputeGraphStats(std::move(b).Build());
  EXPECT_NEAR(s.degree.gini, 0.0, 1e-9);
  EXPECT_EQ(s.degree.min, s.degree.max);
}

}  // namespace
}  // namespace star::graph
