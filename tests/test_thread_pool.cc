#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace star {
namespace {

TEST(StarThreadsTest, AtLeastOne) {
  EXPECT_GE(StarThreads(), 1);
}

TEST(ResolveThreadsTest, HonorsExplicitAndAuto) {
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(7), 7);
  EXPECT_EQ(ResolveThreads(0), StarThreads());
  EXPECT_EQ(ResolveThreads(-3), StarThreads());
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t, size_t, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SerialFallbackRunsInlineAsOneChunk) {
  const std::thread::id caller = std::this_thread::get_id();
  size_t calls = 0;
  ParallelFor(100, 1, [&](size_t begin, size_t end, int chunk) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
    EXPECT_EQ(chunk, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (const int threads : {2, 3, 4, 8}) {
    for (const size_t n : {size_t{1}, size_t{5}, size_t{64}, size_t{1000}}) {
      std::vector<std::atomic<uint32_t>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(n, threads, [&](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1u) << "n=" << n << " threads=" << threads
                                      << " index=" << i;
      }
    }
  }
}

TEST(ParallelForTest, PartitionIsDeterministic) {
  const auto chunks_of = [](size_t n, int threads) {
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    ParallelFor(n, threads, [&](size_t begin, size_t end, int chunk) {
      std::lock_guard<std::mutex> lock(mu);
      if (chunks.size() <= static_cast<size_t>(chunk)) {
        chunks.resize(static_cast<size_t>(chunk) + 1);
      }
      chunks[static_cast<size_t>(chunk)] = {begin, end};
    });
    return chunks;
  };
  // Same (n, threads) must always produce the same chunk boundaries —
  // this is what makes chunk-ordered reductions reproducible.
  EXPECT_EQ(chunks_of(103, 4), chunks_of(103, 4));
  // Chunks are contiguous and ordered by chunk index.
  const auto chunks = chunks_of(103, 4);
  ASSERT_EQ(chunks.size(), 4u);
  size_t expect_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_GE(end, begin);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, 103u);
}

TEST(ParallelForTest, ExceptionsPropagateToCaller) {
  EXPECT_THROW(
      ParallelFor(100, 4,
                  [&](size_t begin, size_t, int) {
                    if (begin == 0) throw std::runtime_error("chunk failure");
                  }),
      std::runtime_error);
  // Exceptions from pool-worker chunks (not the caller's chunk 0) also
  // arrive, and the pool stays usable afterwards.
  EXPECT_THROW(ParallelFor(100, 4,
                           [&](size_t begin, size_t, int) {
                             if (begin != 0) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  std::atomic<size_t> total(0);
  ParallelFor(50, 4, [&](size_t begin, size_t end, int) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 50u);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  std::atomic<size_t> inner_total(0);
  ParallelFor(8, 4, [&](size_t begin, size_t end, int) {
    for (size_t i = begin; i < end; ++i) {
      // A nested ParallelFor from a worker must not wait on the (busy)
      // pool; it degrades to an inline loop.
      ParallelFor(10, 4, [&](size_t b, size_t e, int) {
        inner_total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80u);
}

TEST(ThreadPoolTest, EnsureWorkersGrowsAndClamps) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.workers(), 2);
  pool.EnsureWorkers(4);
  EXPECT_EQ(pool.workers(), 4);
  pool.EnsureWorkers(3);  // never shrinks
  EXPECT_EQ(pool.workers(), 4);
  pool.EnsureWorkers(ThreadPool::kMaxWorkers + 50);
  EXPECT_EQ(pool.workers(), ThreadPool::kMaxWorkers);
}

TEST(ThreadPoolTest, SubmitRunsOnWorkerThread) {
  ThreadPool pool(1);
  std::atomic<bool> ran(false);
  std::atomic<bool> on_worker(false);
  pool.Submit([&] {
    on_worker.store(pool.InWorkerThread());
    ran.store(true);
  });
  while (!ran.load()) std::this_thread::yield();
  EXPECT_TRUE(on_worker.load());
  EXPECT_FALSE(pool.InWorkerThread());
}

}  // namespace
}  // namespace star
