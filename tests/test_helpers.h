#ifndef STAR_TESTS_TEST_HELPERS_H_
#define STAR_TESTS_TEST_HELPERS_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "graph/graph_generator.h"
#include "graph/knowledge_graph.h"
#include "graph/label_index.h"
#include "query/query_graph.h"
#include "query/workload.h"
#include "scoring/match_config.h"
#include "scoring/query_scorer.h"
#include "text/ensemble.h"

namespace star::testing {

/// The Figure-1 movie graph: a small, hand-built knowledge graph with
/// ambiguous "Brad" matches, awards reachable through intermediate movies,
/// and typed nodes. Used by many unit tests as a readable fixture.
inline graph::KnowledgeGraph MovieGraph() {
  graph::KnowledgeGraph::Builder b;
  const auto brad_pitt = b.AddNode("Brad Pitt", "Actor");
  const auto brad_garrett = b.AddNode("Brad Garrett", "Actor");
  const auto richard = b.AddNode("Richard Linklater", "Director");
  const auto sophie = b.AddNode("Sophie Marceau", "Actor");
  const auto troy = b.AddNode("Troy", "Film");
  const auto boyhood = b.AddNode("Boyhood", "Film");
  const auto oscar = b.AddNode("Academy Award", "Award");
  const auto globe = b.AddNode("Golden Globe Award", "Award");
  const auto la = b.AddNode("Los Angeles", "City");
  const auto usa = b.AddNode("United States", "Country");
  b.AddEdge(brad_pitt, troy, "actedIn");
  b.AddEdge(brad_garrett, troy, "actedIn");
  b.AddEdge(richard, boyhood, "directed");
  b.AddEdge(brad_pitt, boyhood, "actedIn");
  b.AddEdge(boyhood, oscar, "won");
  b.AddEdge(richard, globe, "won");
  b.AddEdge(sophie, boyhood, "actedIn");
  b.AddEdge(brad_pitt, la, "bornIn");
  b.AddEdge(la, usa, "locatedIn");
  b.AddEdge(richard, la, "livesIn");
  b.AddEdge(troy, globe, "nominatedFor");
  return std::move(b).Build();
}

/// A small random typed graph for randomized property tests. Node count
/// and density kept tiny so the brute-force oracle stays fast.
inline graph::KnowledgeGraph SmallRandomGraph(uint64_t seed, size_t nodes = 24,
                                              size_t edges = 48) {
  graph::GeneratorConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_edges = edges;
  cfg.num_types = 6;
  cfg.num_relations = 8;
  cfg.token_pool = 10;
  cfg.seed = seed;
  return graph::GenerateGraph(cfg);
}

/// Default test-wide matching config: permissive thresholds so that small
/// graphs still produce several matches.
inline scoring::MatchConfig TestConfig(int d = 1, bool injective = true) {
  scoring::MatchConfig cfg;
  cfg.node_threshold = 0.25;
  cfg.edge_threshold = 0.01;
  cfg.lambda = 0.5;
  cfg.d = d;
  cfg.enforce_injective = injective;
  return cfg;
}

/// Bundles a graph + query + scorer (owning ensemble and index) so tests
/// can create scoring sessions in one line.
struct ScorerFixture {
  const graph::KnowledgeGraph& graph;
  text::SimilarityEnsemble ensemble;
  std::unique_ptr<graph::LabelIndex> index;
  std::unique_ptr<scoring::QueryScorer> scorer;

  ScorerFixture(const graph::KnowledgeGraph& g, const query::QueryGraph& q,
                const scoring::MatchConfig& cfg, bool with_index = true)
      : graph(g) {
    if (with_index) index = std::make_unique<graph::LabelIndex>(g);
    scorer = std::make_unique<scoring::QueryScorer>(g, q, ensemble, cfg,
                                                    index.get());
  }
};

/// True if two score sequences agree elementwise within eps.
inline bool ScoresMatch(const std::vector<double>& a,
                        const std::vector<double>& b, double eps = 1e-9) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > eps) return false;
  }
  return true;
}

}  // namespace star::testing

#endif  // STAR_TESTS_TEST_HELPERS_H_
