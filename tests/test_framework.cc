#include "core/framework.h"

#include <vector>

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "query/workload.h"
#include "test_helpers.h"

namespace star::core {
namespace {

using star::testing::MovieGraph;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

StarOptions MakeOptions(scoring::MatchConfig cfg,
                        DecompositionStrategy strategy,
                        StarStrategy engine = StarStrategy::kStard,
                        double alpha = 0.5) {
  StarOptions o;
  o.strategy = engine;
  o.match = cfg;
  o.decomposition.strategy = strategy;
  o.alpha = alpha;
  return o;
}

TEST(StarFrameworkTest, StarQueryBypassesJoin) {
  const auto g = MovieGraph();
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  StarFramework fw(g, ensemble, &index, MakeOptions(TestConfig(), DecompositionStrategy::kSimSize));
  query::QueryGraph q;
  const int a = q.AddNode("Brad Pitt");
  const int b = q.AddNode("Troy");
  q.AddEdge(a, b);
  const auto top = fw.TopK(q, 3);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(fw.last_stats().num_stars, 1u);
  EXPECT_TRUE(top[0].Complete());
}

TEST(StarFrameworkTest, Figure1StyleQuery) {
  const auto g = MovieGraph();
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  // movie maker -- Brad, movie maker -- award, Brad -- movie maker: the
  // intro's example, phrased as a triangle-free 3-node path query.
  query::QueryGraph q;
  const int brad = q.AddNode("Brad");
  const int maker = q.AddWildcardNode("Director");
  const int award = q.AddNode("Award");
  q.AddEdge(brad, maker);
  q.AddEdge(maker, award);
  StarFramework fw(g, ensemble, &index,
                   MakeOptions(TestConfig(2), DecompositionStrategy::kMaxDeg));
  const auto top = fw.TopK(q, 5);
  ASSERT_FALSE(top.empty());
  // The wildcard director with both a Brad co-worker and an award within
  // two hops is Richard Linklater.
  EXPECT_EQ(g.NodeLabel(top[0].mapping[maker]), "Richard Linklater");
}

struct FrameworkCase {
  int seed;
  int d;
  DecompositionStrategy strategy;
  StarStrategy engine;
  double alpha;
};

class FrameworkEquivalence : public ::testing::TestWithParam<FrameworkCase> {};

TEST_P(FrameworkEquivalence, MatchesBruteForceOnGeneralQueries) {
  const auto p = GetParam();
  const auto g = SmallRandomGraph(p.seed, 20, 44);
  query::WorkloadGenerator wg(g, p.seed * 17 + 3);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;  // keep brute force small
  const auto q = wg.RandomGraphQuery(4, 5, wo);
  if (!q.IsConnected() || q.node_count() < 3 || q.IsStar()) {
    GTEST_SKIP() << "degenerate sample";
  }
  const auto cfg = TestConfig(p.d);
  const size_t k = 5;

  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  scoring::QueryScorer oracle_scorer(g, q, ensemble, cfg, &index);
  const auto expected = baseline::BruteForceTopK(oracle_scorer, k);

  StarFramework fw(g, ensemble, &index,
                   MakeOptions(cfg, p.strategy, p.engine, p.alpha));
  const auto got = fw.TopK(q, k);
  ASSERT_EQ(got.size(), expected.size())
      << "seed=" << p.seed << " d=" << p.d << " q=" << q.ToString();
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-9)
        << "i=" << i << " seed=" << p.seed << " d=" << p.d
        << " strat=" << static_cast<int>(p.strategy)
        << " alpha=" << p.alpha << " q=" << q.ToString();
    EXPECT_TRUE(got[i].Complete());
    EXPECT_TRUE(got[i].Injective());
  }
  EXPECT_GE(fw.last_stats().num_stars, 2u);
  EXPECT_GT(fw.last_stats().total_depth, 0u);
}

std::vector<FrameworkCase> FrameworkCases() {
  std::vector<FrameworkCase> cases;
  const DecompositionStrategy strategies[] = {
      DecompositionStrategy::kRand, DecompositionStrategy::kMaxDeg,
      DecompositionStrategy::kSimSize, DecompositionStrategy::kSimTop,
      DecompositionStrategy::kSimDec};
  int i = 0;
  for (int seed = 1; seed <= 10; ++seed) {
    for (int d = 1; d <= 2; ++d) {
      const auto strategy = strategies[i++ % 5];
      const double alpha = 0.1 + 0.2 * (i % 5);
      const auto engine =
          i % 2 == 0 ? StarStrategy::kStark : StarStrategy::kStard;
      cases.push_back({seed, d, strategy, engine, alpha});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FrameworkEquivalence,
                         ::testing::ValuesIn(FrameworkCases()));

TEST(StarFrameworkTest, AlphaDoesNotChangeResults) {
  const auto g = SmallRandomGraph(77, 20, 40);
  query::WorkloadGenerator wg(g, 8);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto q = wg.RandomGraphQuery(4, 4, wo);
  if (q.IsStar()) GTEST_SKIP();
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  std::vector<double> reference;
  for (const double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    StarFramework fw(
        g, ensemble, &index,
        MakeOptions(TestConfig(1), DecompositionStrategy::kSimSize,
                    StarStrategy::kStard, alpha));
    const auto got = fw.TopK(q, 4);
    std::vector<double> scores;
    for (const auto& m : got) scores.push_back(m.score);
    if (reference.empty()) {
      reference = scores;
    } else {
      ASSERT_TRUE(star::testing::ScoresMatch(reference, scores, 1e-9))
          << "alpha=" << alpha;
    }
  }
}

TEST(StarFrameworkTest, EmptyQueryYieldsNothing) {
  const auto g = MovieGraph();
  text::SimilarityEnsemble ensemble;
  StarFramework fw(g, ensemble, nullptr,
                   MakeOptions(TestConfig(), DecompositionStrategy::kMaxDeg));
  EXPECT_TRUE(fw.TopK(query::QueryGraph(), 5).empty());
}

TEST(StarFrameworkTest, SingleNodeQuery) {
  const auto g = MovieGraph();
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  StarFramework fw(g, ensemble, &index,
                   MakeOptions(TestConfig(), DecompositionStrategy::kMaxDeg));
  query::QueryGraph q;
  q.AddNode("Brad Pitt");
  const auto top = fw.TopK(q, 2);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(g.NodeLabel(top[0].mapping[0]), "Brad Pitt");
  EXPECT_NEAR(top[0].score, 1.0, 1e-9);
}

}  // namespace
}  // namespace star::core
