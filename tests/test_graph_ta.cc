#include "baseline/graph_ta.h"

#include <vector>

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "core/framework.h"
#include "query/workload.h"
#include "test_helpers.h"

namespace star::baseline {
namespace {

using star::testing::MovieGraph;
using star::testing::ScorerFixture;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

TEST(GraphTaTest, ExactEntityLookup) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int a = q.AddNode("Brad Pitt");
  const int b = q.AddNode("Troy");
  q.AddEdge(a, b, "actedIn");
  ScorerFixture fx(g, q, TestConfig());
  GraphTa ta(*fx.scorer);
  const auto top = ta.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(g.NodeLabel(top[0].mapping[a]), "Brad Pitt");
  EXPECT_EQ(g.NodeLabel(top[0].mapping[b]), "Troy");
  EXPECT_NEAR(top[0].score, 3.0, 1e-9);
}

TEST(GraphTaTest, StatsTrackWork) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int a = q.AddNode("Brad");
  const int b = q.AddNode("movie");
  q.AddEdge(a, b);
  ScorerFixture fx(g, q, TestConfig(2));
  GraphTa ta(*fx.scorer);
  ta.TopK(3);
  EXPECT_GT(ta.stats().cursor_steps, 0u);
  EXPECT_GT(ta.stats().expansions, 0u);
  EXPECT_GT(ta.stats().partial_states, 0u);
}

struct TaCase {
  int seed;
  int d;
  bool star_query;
  bool injective;
};

class GraphTaEquivalence : public ::testing::TestWithParam<TaCase> {};

TEST_P(GraphTaEquivalence, MatchesBruteForce) {
  const auto p = GetParam();
  const auto g = SmallRandomGraph(p.seed, 20, 40);
  query::WorkloadGenerator wg(g, p.seed * 13 + 1);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto q = p.star_query ? wg.RandomStarQuery(3, wo)
                              : wg.RandomGraphQuery(4, 4, wo);
  const auto cfg = TestConfig(p.d, p.injective);
  const size_t k = 5;

  ScorerFixture fx(g, q, cfg);
  const auto expected = BruteForceTopK(*fx.scorer, k);
  ScorerFixture fx2(g, q, cfg);
  GraphTa ta(*fx2.scorer);
  const auto got = ta.TopK(k);
  ASSERT_EQ(got.size(), expected.size())
      << "seed=" << p.seed << " d=" << p.d << " q=" << q.ToString();
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-9)
        << "i=" << i << " seed=" << p.seed << " q=" << q.ToString();
  }
}

std::vector<TaCase> TaCases() {
  std::vector<TaCase> cases;
  for (int seed = 0; seed < 8; ++seed) {
    cases.push_back({seed, 1, seed % 2 == 0, true});
    cases.push_back({seed, 2, seed % 2 == 1, true});
    if (seed % 3 == 0) cases.push_back({seed, 1, true, false});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GraphTaEquivalence,
                         ::testing::ValuesIn(TaCases()));

TEST(GraphTaTest, AgreesWithStarFrameworkOnGeneralQuery) {
  const auto g = SmallRandomGraph(42, 22, 44);
  query::WorkloadGenerator wg(g, 9);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto q = wg.RandomGraphQuery(4, 5, wo);
  const auto cfg = TestConfig(2);
  const size_t k = 6;

  ScorerFixture fx(g, q, cfg);
  GraphTa ta(*fx.scorer);
  const auto ta_result = ta.TopK(k);

  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  core::StarOptions opts;
  opts.match = cfg;
  core::StarFramework fw(g, ensemble, &index, opts);
  const auto star_result = fw.TopK(q, k);

  ASSERT_EQ(ta_result.size(), star_result.size());
  for (size_t i = 0; i < ta_result.size(); ++i) {
    EXPECT_NEAR(ta_result[i].score, star_result[i].score, 1e-9) << "i=" << i;
  }
}

TEST(GraphTaTest, EmptyQueryAndZeroK) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  ScorerFixture fx(g, q, TestConfig());
  GraphTa ta(*fx.scorer);
  EXPECT_TRUE(ta.TopK(5).empty());
  query::QueryGraph q2;
  q2.AddNode("Brad");
  ScorerFixture fx2(g, q2, TestConfig());
  GraphTa ta2(*fx2.scorer);
  EXPECT_TRUE(ta2.TopK(0).empty());
}

}  // namespace
}  // namespace star::baseline
