#include "graph/graph_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace star::graph {
namespace {

TEST(GraphIoTest, RoundTripPreservesEverything) {
  const auto g = star::testing::MovieGraph();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraph(g, ss).ok());
  auto loaded = LoadGraph(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& g2 = *loaded;
  ASSERT_EQ(g2.node_count(), g.node_count());
  ASSERT_EQ(g2.edge_count(), g.edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(g2.NodeLabel(v), g.NodeLabel(v));
    EXPECT_EQ(g2.TypeName(g2.NodeType(v)), g.TypeName(g.NodeType(v)));
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(g2.EdgeSrc(e), g.EdgeSrc(e));
    EXPECT_EQ(g2.EdgeDst(e), g.EdgeDst(e));
    EXPECT_EQ(g2.RelationName(g2.EdgeRelation(e)),
              g.RelationName(g.EdgeRelation(e)));
  }
}

TEST(GraphIoTest, MissingHeader) {
  std::stringstream ss("N\t0\t_\tA\n");
  const auto r = LoadGraph(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
}

TEST(GraphIoTest, NonDenseNodeIds) {
  std::stringstream ss("star-kg v1\nN\t5\t_\tA\n");
  const auto r = LoadGraph(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, EdgeEndpointOutOfRange) {
  std::stringstream ss("star-kg v1\nN\t0\t_\tA\nE\t0\t7\trel\n");
  const auto r = LoadGraph(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
}

TEST(GraphIoTest, UnknownRecordType) {
  std::stringstream ss("star-kg v1\nZ\t0\t0\t0\n");
  ASSERT_FALSE(LoadGraph(ss).ok());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "star-kg v1\n# a comment\n\nN\t0\tPerson\tAlice Smith\n"
      "N\t1\t_\tBob\n# another\nE\t0\t1\tknows\n");
  const auto r = LoadGraph(ss);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->node_count(), 2u);
  EXPECT_EQ(r->edge_count(), 1u);
  EXPECT_EQ(r->NodeLabel(0), "Alice Smith");
  EXPECT_EQ(r->TypeName(r->NodeType(0)), "Person");
  EXPECT_EQ(r->TypeName(r->NodeType(1)), "");
}

TEST(GraphIoTest, TypeNamesWithSpaces) {
  KnowledgeGraph::Builder b;
  b.AddNode("X", "Motion Picture");
  std::stringstream ss;
  ASSERT_TRUE(SaveGraph(std::move(b).Build(), ss).ok());
  const auto r = LoadGraph(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->TypeName(r->NodeType(0)), "Motion Picture");
}

TEST(GraphIoTest, FileRoundTrip) {
  const auto g = star::testing::SmallRandomGraph(1);
  const std::string path = ::testing::TempDir() + "/star_io_test.kg";
  ASSERT_TRUE(SaveGraphToFile(g, path).ok());
  const auto r = LoadGraphFromFile(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->node_count(), g.node_count());
  EXPECT_EQ(r->edge_count(), g.edge_count());
}

TEST(GraphIoTest, MissingFile) {
  const auto r = LoadGraphFromFile("/nonexistent/path/to.kg");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace star::graph
