#include "core/pivot_enumerator.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace star::core {
namespace {

using graph::NodeId;

std::vector<std::vector<LeafCandidate>> MakeLists(
    const std::vector<std::vector<std::pair<NodeId, double>>>& raw) {
  std::vector<std::vector<LeafCandidate>> lists(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    for (const auto& [n, v] : raw[i]) lists[i].push_back({n, v});
  }
  return lists;
}

TEST(PivotEnumerator, EmitsInDescendingOrder) {
  PivotEnumerator e(
      /*pivot=*/100, /*pivot_score=*/1.0,
      MakeLists({{{1, 0.9}, {2, 0.5}}, {{3, 0.8}, {4, 0.7}, {5, 0.1}}}),
      /*enforce_injective=*/true, /*k_hint=*/0);
  double prev = 1e18;
  int count = 0;
  while (auto m = e.Next()) {
    EXPECT_LE(m->score, prev);
    prev = m->score;
    ++count;
  }
  EXPECT_EQ(count, 6);  // 2 x 3 combinations, all injective
}

TEST(PivotEnumerator, TopMatchIsGreedyWhenInjective) {
  PivotEnumerator e(7, 0.5,
                    MakeLists({{{1, 0.9}, {2, 0.5}}, {{3, 0.8}, {4, 0.7}}}),
                    true, 0);
  const auto m = e.Next();
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->score, 0.5 + 0.9 + 0.8);
  EXPECT_EQ(m->leaves, (std::vector<NodeId>{1, 3}));
}

TEST(PivotEnumerator, SkipsCollidingLeaves) {
  // Both lists share node 1 at the top; injective best must differ.
  PivotEnumerator e(7, 0.0,
                    MakeLists({{{1, 1.0}, {2, 0.2}}, {{1, 1.0}, {3, 0.5}}}),
                    true, 0);
  const auto m = e.Next();
  ASSERT_TRUE(m.has_value());
  // Valid options: (1,3)=1.5 or (2,1)=1.2; best is 1.5.
  EXPECT_DOUBLE_EQ(m->score, 1.5);
  EXPECT_EQ(m->leaves, (std::vector<NodeId>{1, 3}));
}

TEST(PivotEnumerator, NonInjectiveAllowsCollisions) {
  PivotEnumerator e(7, 0.0,
                    MakeLists({{{1, 1.0}, {2, 0.2}}, {{1, 1.0}, {3, 0.5}}}),
                    false, 0);
  const auto m = e.Next();
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->score, 2.0);
  EXPECT_EQ(m->leaves, (std::vector<NodeId>{1, 1}));
}

TEST(PivotEnumerator, PivotExcludedFromLeavesWhenInjective) {
  PivotEnumerator e(1, 0.0, MakeLists({{{1, 1.0}, {2, 0.4}}}), true, 0);
  const auto m = e.Next();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->leaves[0], 2u);
  EXPECT_FALSE(e.Next().has_value());
}

TEST(PivotEnumerator, EmptyLeafListMeansNoMatches) {
  PivotEnumerator e(7, 1.0, MakeLists({{{1, 1.0}}, {}}), true, 0);
  EXPECT_FALSE(e.Next().has_value());
  EXPECT_FALSE(e.PeekScore().has_value());
}

TEST(PivotEnumerator, ZeroLeafStarEmitsPivotOnce) {
  PivotEnumerator e(7, 0.42, {}, true, 0);
  const auto m = e.Next();
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->score, 0.42);
  EXPECT_TRUE(m->leaves.empty());
  EXPECT_FALSE(e.Next().has_value());
}

TEST(PivotEnumerator, PeekDoesNotConsume) {
  PivotEnumerator e(7, 0.0, MakeLists({{{1, 1.0}, {2, 0.4}}}), true, 0);
  ASSERT_TRUE(e.PeekScore().has_value());
  EXPECT_DOUBLE_EQ(*e.PeekScore(), 1.0);
  const auto m = e.Next();
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->score, 1.0);
}

TEST(PivotEnumerator, NoDuplicateMatches) {
  PivotEnumerator e(
      100, 0.0,
      MakeLists({{{1, 0.5}, {2, 0.5}}, {{3, 0.5}, {4, 0.5}}, {{5, 0.1}}}),
      true, 0);
  std::vector<std::vector<NodeId>> seen;
  while (auto m = e.Next()) {
    EXPECT_EQ(std::find(seen.begin(), seen.end(), m->leaves), seen.end());
    seen.push_back(m->leaves);
  }
  EXPECT_EQ(seen.size(), 4u);
}

// Property: with k_hint pruning the first k matches equal the unpruned
// first k (injective mode), on random lists with node collisions.
class EnumeratorPruneProperty : public ::testing::TestWithParam<int> {};

TEST_P(EnumeratorPruneProperty, PruningPreservesTopK) {
  Rng rng(GetParam());
  const size_t s = 1 + rng.Below(3);
  const size_t k = 1 + rng.Below(5);
  std::vector<std::vector<std::pair<NodeId, double>>> raw(s);
  for (auto& list : raw) {
    const size_t len = 1 + rng.Below(10);
    std::vector<bool> used(20, false);
    for (size_t j = 0; j < len; ++j) {
      const NodeId n = 1 + rng.Below(12);  // small id space -> collisions
      if (used[n]) continue;
      used[n] = true;
      list.emplace_back(n, std::round(rng.NextDouble() * 20) / 20);
    }
  }
  PivotEnumerator exact(0, 0.3, MakeLists(raw), true, 0);
  PivotEnumerator pruned(0, 0.3, MakeLists(raw), true, k);
  for (size_t i = 0; i < k; ++i) {
    const auto a = exact.Next();
    const auto b = pruned.Next();
    ASSERT_EQ(a.has_value(), b.has_value()) << "i=" << i;
    if (!a.has_value()) break;
    EXPECT_NEAR(a->score, b->score, 1e-12) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumeratorPruneProperty,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace star::core
