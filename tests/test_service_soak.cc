// Concurrency soak for the query serving layer: several client threads
// hammer a small QueryService (tight admission limits so the queue and
// overload paths are exercised) while a churn thread concurrently
// invalidates the caches, and a slice of requests carries near-zero
// deadlines. Run under TSan via the `tsan` ctest label.
//
// Invariants checked on every single response:
//  - the future resolves (no lost wakeups — a bounded wait catches hangs);
//  - status is one of Ok / DeadlineExceeded / Overloaded;
//  - an Ok response is bitwise identical to a direct StarFramework run of
//    the same template, regardless of cache state, coalescing, or churn;
//  - a DeadlineExceeded response is partial and a bitwise prefix of it.
//
// Half the templates are reordered equivalents (permuted node/edge
// insertion order, flipped edge endpoints) of the other half, so they
// share cache keys and coalescing flights with their base template. A
// response may therefore be served from EITHER variant's execution; it
// must be bitwise identical (in the CALLER's node order) to that
// variant's direct run — i.e. to the template's own direct result or to
// the remap of its pair's. (Scores are node-order invariant, so the score
// sequence is pinned either way; mappings may legitimately differ between
// the two expected lists where scores tie.) This is the replay that used
// to be restricted to verbatim templates before the serve cache learned
// to remap reordered-equivalent hits.

#include "serve/query_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "query/query_canonical.h"
#include "query/workload.h"
#include "test_helpers.h"

namespace star::serve {
namespace {

using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

/// Rebuilds q with node and edge insertion order permuted and edge
/// endpoints randomly flipped — semantically the identical query (mirrors
/// the differential harness's meta-permutation).
query::QueryGraph PermuteQuery(const query::QueryGraph& q, std::mt19937& rng) {
  const int n = q.node_count();
  std::vector<int> perm(n);  // perm[old] = new index
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<int> inv(n);
  for (int i = 0; i < n; ++i) inv[perm[i]] = i;
  query::QueryGraph nq;
  for (int ni = 0; ni < n; ++ni) {
    const auto& node = q.node(inv[ni]);
    if (node.wildcard) {
      nq.AddWildcardNode(node.type_name);
    } else {
      nq.AddNode(node.label, node.type_name);
    }
  }
  std::vector<int> eorder(q.edge_count());
  std::iota(eorder.begin(), eorder.end(), 0);
  std::shuffle(eorder.begin(), eorder.end(), rng);
  for (const int e : eorder) {
    const auto& qe = q.edge(e);
    int u = perm[qe.u];
    int v = perm[qe.v];
    if (rng() % 2 == 0) std::swap(u, v);
    nq.AddEdge(u, v, qe.wildcard_relation ? "" : qe.relation);
  }
  return nq;
}

/// Re-expresses `matches` (in `from`'s node order) in `to`'s node order by
/// routing each slot through the shared canonical rank space — the same
/// transform the serve cache applies to reordered-equivalent hits.
std::vector<core::GraphMatch> RemapThroughRanks(
    const std::vector<core::GraphMatch>& matches, const query::QueryGraph& from,
    const query::QueryGraph& to) {
  const std::vector<int> from_rank = query::CanonicalizeQuery(from).node_rank;
  const std::vector<int> to_rank = query::CanonicalizeQuery(to).node_rank;
  const size_t n = from_rank.size();
  std::vector<core::GraphMatch> out = matches;
  std::vector<graph::NodeId> canon(n);
  for (core::GraphMatch& m : out) {
    const std::vector<graph::NodeId> src = m.mapping;
    for (size_t u = 0; u < n; ++u) canon[size_t(from_rank[u])] = src[u];
    for (size_t u = 0; u < n; ++u) m.mapping[u] = canon[size_t(to_rank[u])];
  }
  return out;
}

struct SoakFixture {
  graph::KnowledgeGraph graph;
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index;
  std::vector<query::QueryGraph> templates;
  std::vector<size_t> ks;
  std::vector<std::vector<core::GraphMatch>> direct;
  /// direct[pair(t)] remapped into template t's node order: what a
  /// response for t looks like when served from the pair's execution.
  std::vector<std::vector<core::GraphMatch>> alt;
  /// Number of base templates; templates[base_count + t] is a reordered
  /// equivalent of templates[t] with the same k (so the pair shares a
  /// cache key and coalescing flights).
  size_t base_count = 0;

  size_t pair(size_t t) const { return (t + base_count) % templates.size(); }

  SoakFixture(const core::StarOptions& star)
      : graph(SmallRandomGraph(909, 300, 700)), index(graph) {
    query::WorkloadOptions wo;
    query::WorkloadGenerator wg(graph, 5150);
    templates.push_back(wg.RandomStarQuery(3, wo));
    templates.push_back(wg.RandomStarQuery(4, wo));
    templates.push_back(wg.RandomPathQuery(3, wo));
    templates.push_back(wg.RandomGraphQuery(4, 4, wo));
    ks = {3, 5, 7, 4};
    base_count = templates.size();
    std::mt19937 rng(4242);
    for (size_t t = 0; t < base_count; ++t) {
      templates.push_back(PermuteQuery(templates[t], rng));
      ks.push_back(ks[t]);
    }
    for (size_t t = 0; t < templates.size(); ++t) {
      core::StarFramework fw(graph, ensemble, &index, star);
      direct.push_back(fw.TopK(templates[t], ks[t]));
    }
    for (size_t t = 0; t < templates.size(); ++t) {
      alt.push_back(RemapThroughRanks(direct[pair(t)], templates[pair(t)],
                                      templates[t]));
    }
  }
};

/// Fixture-level preconditions for the per-response checks: each permuted
/// template must canonicalize to its base's signature (same cache key),
/// and the two expected lists for a template — its own direct run and the
/// remap of its pair's — must agree on the score sequence (scores are
/// node-order invariant; only tie-group mapping order may differ).
void VerifyReorderedBaselines(const SoakFixture& fx) {
  for (size_t t = 0; t < fx.base_count; ++t) {
    const size_t r = fx.base_count + t;
    ASSERT_EQ(query::CanonicalizeQuery(fx.templates[t]).signature,
              query::CanonicalizeQuery(fx.templates[r]).signature)
        << "permuted template " << t << " lost signature equality";
  }
  for (size_t t = 0; t < fx.templates.size(); ++t) {
    ASSERT_EQ(fx.alt[t].size(), fx.direct[t].size()) << "template " << t;
    for (size_t i = 0; i < fx.direct[t].size(); ++i) {
      ASSERT_EQ(fx.alt[t][i].score, fx.direct[t][i].score)
          << "template " << t << " rank " << i;
    }
  }
}

bool IsBitwisePrefix(const std::vector<core::GraphMatch>& full,
                     const std::vector<core::GraphMatch>& got) {
  if (got.size() > full.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].score != full[i].score || got[i].mapping != full[i].mapping) {
      return false;
    }
  }
  return true;
}

/// A response for template t may be served from either side of its
/// reordered pair; it must be a bitwise prefix of one of the two expected
/// lists — never an interleaving of both (one execution produced it).
void ExpectBitwisePrefixOfEither(const std::vector<core::GraphMatch>& expected,
                                 const std::vector<core::GraphMatch>& alt,
                                 const std::vector<core::GraphMatch>& got,
                                 const char* what) {
  EXPECT_TRUE(IsBitwisePrefix(expected, got) || IsBitwisePrefix(alt, got))
      << what << ": response matches neither the template's direct run nor "
      << "the remap of its reordered pair's";
}

class ServiceSoakTest : public ::testing::TestWithParam<bool> {};

TEST_P(ServiceSoakTest, ConcurrentClientsSurviveChurn) {
  core::StarOptions star;
  star.match = TestConfig(2);
  SoakFixture fx(star);
  VerifyReorderedBaselines(fx);

  ServiceOptions so;
  so.star = star;
  so.max_inflight = 3;
  so.max_queue = 8;  // small bounds => the overload path actually fires
  so.cache_capacity = 64;
  so.star_cache_capacity = 128;
  so.enable_coalescing = GetParam();
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 40;
  constexpr int kBurst = 4;  // submit in bursts to build queue pressure

  std::atomic<bool> stop_churn{false};
  std::thread churn([&] {
    while (!stop_churn.load(std::memory_order_relaxed)) {
      service.InvalidateCache();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::atomic<int> ok_count{0}, deadline_count{0}, overload_count{0};
  std::vector<std::thread> clients;
  for (int cl = 0; cl < kClients; ++cl) {
    clients.emplace_back([&, cl] {
      struct InFlight {
        std::future<QueryResponse> fut;
        size_t tmpl;
      };
      std::vector<InFlight> burst;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const size_t t = static_cast<size_t>(cl * 17 + i) % fx.templates.size();
        QueryRequest req;
        req.query = fx.templates[t];
        req.k = fx.ks[t];
        if (i % 5 == 4) req.deadline = Deadline::AfterMillis(0.05);
        burst.push_back({service.Submit(std::move(req)), t});
        if (burst.size() < kBurst && i + 1 < kRequestsPerClient) continue;
        for (auto& f : burst) {
          // A lost wakeup shows up as a timeout here, not a hung test run.
          ASSERT_EQ(f.fut.wait_for(std::chrono::seconds(60)),
                    std::future_status::ready)
              << "response future never resolved";
          const QueryResponse resp = f.fut.get();
          const auto& expected = fx.direct[f.tmpl];
          const auto& alt = fx.alt[f.tmpl];
          switch (resp.status.code()) {
            case StatusCode::kOk:
              ok_count.fetch_add(1, std::memory_order_relaxed);
              EXPECT_FALSE(resp.partial);
              ASSERT_EQ(resp.matches.size(), expected.size());
              ExpectBitwisePrefixOfEither(expected, alt, resp.matches,
                                          "ok response");
              break;
            case StatusCode::kDeadlineExceeded:
              deadline_count.fetch_add(1, std::memory_order_relaxed);
              EXPECT_TRUE(resp.partial);
              ExpectBitwisePrefixOfEither(expected, alt, resp.matches,
                                          "partial response");
              break;
            case StatusCode::kOverloaded:
              overload_count.fetch_add(1, std::memory_order_relaxed);
              EXPECT_TRUE(resp.matches.empty());
              break;
            default:
              ADD_FAILURE() << "unexpected status "
                            << resp.status.ToString();
          }
        }
        burst.clear();
      }
    });
  }
  for (auto& c : clients) c.join();
  stop_churn.store(true, std::memory_order_relaxed);
  churn.join();

  const int total = kClients * kRequestsPerClient;
  EXPECT_EQ(ok_count + deadline_count + overload_count, total);
  EXPECT_GT(ok_count.load(), 0) << "soak never completed a request";

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(total));
  EXPECT_EQ(stats.rejected_invalid, 0u);
  EXPECT_EQ(stats.completed + stats.rejected_overload +
                stats.deadline_exceeded,
            stats.submitted);
}

INSTANTIATE_TEST_SUITE_P(Coalescing, ServiceSoakTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "On" : "Off";
                         });

}  // namespace
}  // namespace star::serve
