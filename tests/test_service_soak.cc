// Concurrency soak for the query serving layer: several client threads
// hammer a small QueryService (tight admission limits so the queue and
// overload paths are exercised) while a churn thread concurrently
// invalidates the caches, and a slice of requests carries near-zero
// deadlines. Run under TSan via the `tsan` ctest label.
//
// Invariants checked on every single response:
//  - the future resolves (no lost wakeups — a bounded wait catches hangs);
//  - status is one of Ok / DeadlineExceeded / Overloaded;
//  - an Ok response is bitwise identical to a direct StarFramework run of
//    the same template, regardless of cache state, coalescing, or churn;
//  - a DeadlineExceeded response is partial and a bitwise prefix of it.

#include "serve/query_service.h"

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "query/workload.h"
#include "test_helpers.h"

namespace star::serve {
namespace {

using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

struct SoakFixture {
  graph::KnowledgeGraph graph;
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index;
  std::vector<query::QueryGraph> templates;
  std::vector<size_t> ks;
  std::vector<std::vector<core::GraphMatch>> direct;

  SoakFixture(const core::StarOptions& star)
      : graph(SmallRandomGraph(909, 300, 700)), index(graph) {
    query::WorkloadOptions wo;
    query::WorkloadGenerator wg(graph, 5150);
    templates.push_back(wg.RandomStarQuery(3, wo));
    templates.push_back(wg.RandomStarQuery(4, wo));
    templates.push_back(wg.RandomPathQuery(3, wo));
    templates.push_back(wg.RandomGraphQuery(4, 4, wo));
    ks = {3, 5, 7, 4};
    for (size_t t = 0; t < templates.size(); ++t) {
      core::StarFramework fw(graph, ensemble, &index, star);
      direct.push_back(fw.TopK(templates[t], ks[t]));
    }
  }
};

void ExpectBitwisePrefix(const std::vector<core::GraphMatch>& full,
                         const std::vector<core::GraphMatch>& got,
                         const char* what) {
  ASSERT_LE(got.size(), full.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].score, full[i].score) << what << " rank " << i;
    EXPECT_EQ(got[i].mapping, full[i].mapping) << what << " rank " << i;
  }
}

class ServiceSoakTest : public ::testing::TestWithParam<bool> {};

TEST_P(ServiceSoakTest, ConcurrentClientsSurviveChurn) {
  core::StarOptions star;
  star.match = TestConfig(2);
  SoakFixture fx(star);

  ServiceOptions so;
  so.star = star;
  so.max_inflight = 3;
  so.max_queue = 8;  // small bounds => the overload path actually fires
  so.cache_capacity = 64;
  so.star_cache_capacity = 128;
  so.enable_coalescing = GetParam();
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 40;
  constexpr int kBurst = 4;  // submit in bursts to build queue pressure

  std::atomic<bool> stop_churn{false};
  std::thread churn([&] {
    while (!stop_churn.load(std::memory_order_relaxed)) {
      service.InvalidateCache();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::atomic<int> ok_count{0}, deadline_count{0}, overload_count{0};
  std::vector<std::thread> clients;
  for (int cl = 0; cl < kClients; ++cl) {
    clients.emplace_back([&, cl] {
      struct InFlight {
        std::future<QueryResponse> fut;
        size_t tmpl;
      };
      std::vector<InFlight> burst;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const size_t t = static_cast<size_t>(cl * 17 + i) % fx.templates.size();
        QueryRequest req;
        req.query = fx.templates[t];
        req.k = fx.ks[t];
        if (i % 5 == 4) req.deadline = Deadline::AfterMillis(0.05);
        burst.push_back({service.Submit(std::move(req)), t});
        if (burst.size() < kBurst && i + 1 < kRequestsPerClient) continue;
        for (auto& f : burst) {
          // A lost wakeup shows up as a timeout here, not a hung test run.
          ASSERT_EQ(f.fut.wait_for(std::chrono::seconds(60)),
                    std::future_status::ready)
              << "response future never resolved";
          const QueryResponse resp = f.fut.get();
          const auto& expected = fx.direct[f.tmpl];
          switch (resp.status.code()) {
            case StatusCode::kOk:
              ok_count.fetch_add(1, std::memory_order_relaxed);
              EXPECT_FALSE(resp.partial);
              ASSERT_EQ(resp.matches.size(), expected.size());
              ExpectBitwisePrefix(expected, resp.matches, "ok response");
              break;
            case StatusCode::kDeadlineExceeded:
              deadline_count.fetch_add(1, std::memory_order_relaxed);
              EXPECT_TRUE(resp.partial);
              ExpectBitwisePrefix(expected, resp.matches, "partial response");
              break;
            case StatusCode::kOverloaded:
              overload_count.fetch_add(1, std::memory_order_relaxed);
              EXPECT_TRUE(resp.matches.empty());
              break;
            default:
              ADD_FAILURE() << "unexpected status "
                            << resp.status.ToString();
          }
        }
        burst.clear();
      }
    });
  }
  for (auto& c : clients) c.join();
  stop_churn.store(true, std::memory_order_relaxed);
  churn.join();

  const int total = kClients * kRequestsPerClient;
  EXPECT_EQ(ok_count + deadline_count + overload_count, total);
  EXPECT_GT(ok_count.load(), 0) << "soak never completed a request";

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(total));
  EXPECT_EQ(stats.rejected_invalid, 0u);
  EXPECT_EQ(stats.completed + stats.rejected_overload +
                stats.deadline_exceeded,
            stats.submitted);
}

INSTANTIATE_TEST_SUITE_P(Coalescing, ServiceSoakTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "On" : "Off";
                         });

}  // namespace
}  // namespace star::serve
