// Concurrency soak for the query serving layer: several client threads
// hammer a small QueryService (tight admission limits so the queue and
// overload paths are exercised) while a churn thread concurrently
// invalidates the caches, and a slice of requests carries near-zero
// deadlines. Run under TSan via the `tsan` ctest label.
//
// Invariants checked on every single response:
//  - the future resolves (no lost wakeups — a bounded wait catches hangs);
//  - status is one of Ok / DeadlineExceeded / Overloaded;
//  - an Ok response is bitwise identical to a direct StarFramework run of
//    the same template, regardless of cache state, coalescing, or churn;
//  - a DeadlineExceeded response is partial and a bitwise prefix of it.
//
// Half the templates are reordered equivalents (permuted node/edge
// insertion order, flipped edge endpoints) of the other half, so they
// share cache keys and coalescing flights with their base template. A
// response may therefore be served from EITHER variant's execution; it
// must be bitwise identical (in the CALLER's node order) to that
// variant's direct run — i.e. to the template's own direct result or to
// the remap of its pair's. (Scores are node-order invariant, so the score
// sequence is pinned either way; mappings may legitimately differ between
// the two expected lists where scores tie.) This is the replay that used
// to be restricted to verbatim templates before the serve cache learned
// to remap reordered-equivalent hits.

#include "serve/query_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "query/query_canonical.h"
#include "query/workload.h"
#include "test_helpers.h"

namespace star::serve {
namespace {

using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

/// Rebuilds q with node and edge insertion order permuted and edge
/// endpoints randomly flipped — semantically the identical query (mirrors
/// the differential harness's meta-permutation).
query::QueryGraph PermuteQuery(const query::QueryGraph& q, std::mt19937& rng) {
  const int n = q.node_count();
  std::vector<int> perm(n);  // perm[old] = new index
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<int> inv(n);
  for (int i = 0; i < n; ++i) inv[perm[i]] = i;
  query::QueryGraph nq;
  for (int ni = 0; ni < n; ++ni) {
    const auto& node = q.node(inv[ni]);
    if (node.wildcard) {
      nq.AddWildcardNode(node.type_name);
    } else {
      nq.AddNode(node.label, node.type_name);
    }
  }
  std::vector<int> eorder(q.edge_count());
  std::iota(eorder.begin(), eorder.end(), 0);
  std::shuffle(eorder.begin(), eorder.end(), rng);
  for (const int e : eorder) {
    const auto& qe = q.edge(e);
    int u = perm[qe.u];
    int v = perm[qe.v];
    if (rng() % 2 == 0) std::swap(u, v);
    nq.AddEdge(u, v, qe.wildcard_relation ? "" : qe.relation);
  }
  return nq;
}

/// Re-expresses `matches` (in `from`'s node order) in `to`'s node order by
/// routing each slot through the shared canonical rank space — the same
/// transform the serve cache applies to reordered-equivalent hits.
std::vector<core::GraphMatch> RemapThroughRanks(
    const std::vector<core::GraphMatch>& matches, const query::QueryGraph& from,
    const query::QueryGraph& to) {
  const std::vector<int> from_rank = query::CanonicalizeQuery(from).node_rank;
  const std::vector<int> to_rank = query::CanonicalizeQuery(to).node_rank;
  const size_t n = from_rank.size();
  std::vector<core::GraphMatch> out = matches;
  std::vector<graph::NodeId> canon(n);
  for (core::GraphMatch& m : out) {
    const std::vector<graph::NodeId> src = m.mapping;
    for (size_t u = 0; u < n; ++u) canon[size_t(from_rank[u])] = src[u];
    for (size_t u = 0; u < n; ++u) m.mapping[u] = canon[size_t(to_rank[u])];
  }
  return out;
}

struct SoakFixture {
  graph::KnowledgeGraph graph;
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index;
  std::vector<query::QueryGraph> templates;
  std::vector<size_t> ks;
  std::vector<std::vector<core::GraphMatch>> direct;
  /// direct[pair(t)] remapped into template t's node order: what a
  /// response for t looks like when served from the pair's execution.
  std::vector<std::vector<core::GraphMatch>> alt;
  /// Number of base templates; templates[base_count + t] is a reordered
  /// equivalent of templates[t] with the same k (so the pair shares a
  /// cache key and coalescing flights).
  size_t base_count = 0;

  size_t pair(size_t t) const { return (t + base_count) % templates.size(); }

  SoakFixture(const core::StarOptions& star)
      : graph(SmallRandomGraph(909, 300, 700)), index(graph) {
    query::WorkloadOptions wo;
    query::WorkloadGenerator wg(graph, 5150);
    templates.push_back(wg.RandomStarQuery(3, wo));
    templates.push_back(wg.RandomStarQuery(4, wo));
    templates.push_back(wg.RandomPathQuery(3, wo));
    templates.push_back(wg.RandomGraphQuery(4, 4, wo));
    ks = {3, 5, 7, 4};
    base_count = templates.size();
    std::mt19937 rng(4242);
    for (size_t t = 0; t < base_count; ++t) {
      templates.push_back(PermuteQuery(templates[t], rng));
      ks.push_back(ks[t]);
    }
    for (size_t t = 0; t < templates.size(); ++t) {
      core::StarFramework fw(graph, ensemble, &index, star);
      direct.push_back(fw.TopK(templates[t], ks[t]));
    }
    for (size_t t = 0; t < templates.size(); ++t) {
      alt.push_back(RemapThroughRanks(direct[pair(t)], templates[pair(t)],
                                      templates[t]));
    }
  }
};

/// Fixture-level preconditions for the per-response checks: each permuted
/// template must canonicalize to its base's signature (same cache key),
/// and the two expected lists for a template — its own direct run and the
/// remap of its pair's — must agree on the score sequence (scores are
/// node-order invariant; only tie-group mapping order may differ).
void VerifyReorderedBaselines(const SoakFixture& fx) {
  for (size_t t = 0; t < fx.base_count; ++t) {
    const size_t r = fx.base_count + t;
    ASSERT_EQ(query::CanonicalizeQuery(fx.templates[t]).signature,
              query::CanonicalizeQuery(fx.templates[r]).signature)
        << "permuted template " << t << " lost signature equality";
  }
  for (size_t t = 0; t < fx.templates.size(); ++t) {
    ASSERT_EQ(fx.alt[t].size(), fx.direct[t].size()) << "template " << t;
    for (size_t i = 0; i < fx.direct[t].size(); ++i) {
      ASSERT_EQ(fx.alt[t][i].score, fx.direct[t][i].score)
          << "template " << t << " rank " << i;
    }
  }
}

bool IsBitwisePrefix(const std::vector<core::GraphMatch>& full,
                     const std::vector<core::GraphMatch>& got) {
  if (got.size() > full.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].score != full[i].score || got[i].mapping != full[i].mapping) {
      return false;
    }
  }
  return true;
}

/// A response for template t may be served from either side of its
/// reordered pair; it must be a bitwise prefix of one of the two expected
/// lists — never an interleaving of both (one execution produced it).
void ExpectBitwisePrefixOfEither(const std::vector<core::GraphMatch>& expected,
                                 const std::vector<core::GraphMatch>& alt,
                                 const std::vector<core::GraphMatch>& got,
                                 const char* what) {
  EXPECT_TRUE(IsBitwisePrefix(expected, got) || IsBitwisePrefix(alt, got))
      << what << ": response matches neither the template's direct run nor "
      << "the remap of its reordered pair's";
}

class ServiceSoakTest : public ::testing::TestWithParam<bool> {};

TEST_P(ServiceSoakTest, ConcurrentClientsSurviveChurn) {
  core::StarOptions star;
  star.match = TestConfig(2);
  SoakFixture fx(star);
  VerifyReorderedBaselines(fx);

  ServiceOptions so;
  so.star = star;
  so.max_inflight = 3;
  so.max_queue = 8;  // small bounds => the overload path actually fires
  so.cache_capacity = 64;
  so.star_cache_capacity = 128;
  so.enable_coalescing = GetParam();
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 40;
  constexpr int kBurst = 4;  // submit in bursts to build queue pressure

  std::atomic<bool> stop_churn{false};
  std::thread churn([&] {
    while (!stop_churn.load(std::memory_order_relaxed)) {
      service.InvalidateCache();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::atomic<int> ok_count{0}, deadline_count{0}, overload_count{0};
  std::vector<std::thread> clients;
  for (int cl = 0; cl < kClients; ++cl) {
    clients.emplace_back([&, cl] {
      struct InFlight {
        std::future<QueryResponse> fut;
        size_t tmpl;
      };
      std::vector<InFlight> burst;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const size_t t = static_cast<size_t>(cl * 17 + i) % fx.templates.size();
        QueryRequest req;
        req.query = fx.templates[t];
        req.k = fx.ks[t];
        if (i % 5 == 4) req.deadline = Deadline::AfterMillis(0.05);
        burst.push_back({service.Submit(std::move(req)), t});
        if (burst.size() < kBurst && i + 1 < kRequestsPerClient) continue;
        for (auto& f : burst) {
          // A lost wakeup shows up as a timeout here, not a hung test run.
          ASSERT_EQ(f.fut.wait_for(std::chrono::seconds(60)),
                    std::future_status::ready)
              << "response future never resolved";
          const QueryResponse resp = f.fut.get();
          const auto& expected = fx.direct[f.tmpl];
          const auto& alt = fx.alt[f.tmpl];
          switch (resp.status.code()) {
            case StatusCode::kOk:
              ok_count.fetch_add(1, std::memory_order_relaxed);
              EXPECT_FALSE(resp.partial);
              ASSERT_EQ(resp.matches.size(), expected.size());
              ExpectBitwisePrefixOfEither(expected, alt, resp.matches,
                                          "ok response");
              break;
            case StatusCode::kDeadlineExceeded:
              deadline_count.fetch_add(1, std::memory_order_relaxed);
              EXPECT_TRUE(resp.partial);
              ExpectBitwisePrefixOfEither(expected, alt, resp.matches,
                                          "partial response");
              break;
            case StatusCode::kOverloaded:
              overload_count.fetch_add(1, std::memory_order_relaxed);
              EXPECT_TRUE(resp.matches.empty());
              break;
            default:
              ADD_FAILURE() << "unexpected status "
                            << resp.status.ToString();
          }
        }
        burst.clear();
      }
    });
  }
  for (auto& c : clients) c.join();
  stop_churn.store(true, std::memory_order_relaxed);
  churn.join();

  const int total = kClients * kRequestsPerClient;
  EXPECT_EQ(ok_count + deadline_count + overload_count, total);
  EXPECT_GT(ok_count.load(), 0) << "soak never completed a request";

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(total));
  EXPECT_EQ(stats.rejected_invalid, 0u);
  EXPECT_EQ(stats.completed + stats.rejected_overload +
                stats.deadline_exceeded,
            stats.submitted);
}

INSTANTIATE_TEST_SUITE_P(Coalescing, ServiceSoakTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "On" : "Off";
                         });

// ---------------------------------------------------------------------------
// Overload phase: accuracy-first shedding under deterministic saturation.
// ---------------------------------------------------------------------------

/// Deterministic saturation: one worker slot held at a gate while
/// submissions stack the queue one by one, so each request's admission
/// depth — and therefore its shedding-ladder level — is exact. Verifies
/// the ladder's central promise: NOTHING is rejected with kOverloaded
/// until the queue has walked through every level including the deepest,
/// and every degraded answer carries a certificate that is sound against
/// a direct exact run of the same query.
TEST(ServiceSoakOverloadTest, ShedsAccuracyThroughEveryLevelBeforeRejecting) {
  const auto graph = SmallRandomGraph(909, 120, 280);
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(graph);

  core::StarOptions star;
  star.match = TestConfig(2);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  ServiceOptions so;
  so.star = star;
  so.max_inflight = 1;
  so.max_queue = 10;
  so.cache_capacity = 0;  // every response is a fresh, certifiable run
  so.enable_coalescing = false;
  so.degrade.enable = true;
  so.degrade.l1_max_candidates = 2;  // tight enough to bite on this graph
  so.degrade.l2_sample_rate = 0.5;
  so.before_execute = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };

  // Distinct star templates so neither caching nor coalescing could ever
  // merge two submissions even if misconfigured.
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  query::WorkloadGenerator wg(graph, 777);
  std::vector<query::QueryGraph> queries;
  for (int i = 0; i < 12; ++i) queries.push_back(wg.RandomStarQuery(3, wo));
  constexpr size_t kK = 4;

  // Admission depth -> expected level with max_queue 10 and the default
  // fractions (.5/.75/.9): the dispatched request and depths 0-4 run
  // nominal, 5-7 at level 1, 8 at level 2, 9 at level 3.
  const int expected_level[12] = {0, 0, 0, 0, 0, 0, 1, 1, 1, 2, 3, -1};

  std::vector<std::future<QueryResponse>> futs;
  {
    QueryService service(graph, ensemble, &index, so);
    for (int i = 0; i < 12; ++i) {
      QueryRequest req;
      req.query = queries[size_t(i)];
      req.k = kK;
      futs.push_back(service.Submit(std::move(req)));
      if (i == 0) {
        while (entered.load() == 0) std::this_thread::yield();
      }
    }

    // The 12th submission found 1 executing + 10 queued: only now — after
    // level 3 has already been handed out — may kOverloaded appear.
    ASSERT_EQ(futs[11].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(futs[11].get().status.code(), StatusCode::kOverloaded);
    {
      const ServiceStats mid = service.stats();
      EXPECT_EQ(mid.rejected_overload, 1u);
      EXPECT_GE(mid.degraded_at_level[3], 1u)
          << "rejection before the deepest level engaged";
    }

    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();

    for (int i = 0; i < 11; ++i) {
      const QueryResponse resp = futs[size_t(i)].get();
      ASSERT_TRUE(resp.status.ok()) << "request " << i << ": "
                                    << resp.status.ToString();
      EXPECT_EQ(resp.certificate.degradation_level, expected_level[i])
          << "request " << i;

      // Oracle grading: the prefix claim is bitwise against a direct
      // exact run at the SAME k (tie order at the k boundary legitimately
      // depends on k via Prop. 3 pruning); the bound claim is against the
      // k+1 run's scores, which are rank-invariant.
      core::StarFramework fw(graph, ensemble, &index, star);
      const auto exact = fw.TopK(queries[size_t(i)], kK);
      core::StarFramework fw_next(graph, ensemble, &index, star);
      const auto truth = fw_next.TopK(queries[size_t(i)], kK + 1);
      const size_t p = resp.certificate.guaranteed_prefix;
      ASSERT_LE(p, resp.matches.size()) << "request " << i;
      for (size_t r = 0; r < p; ++r) {
        ASSERT_LT(r, exact.size()) << "request " << i;
        EXPECT_EQ(resp.matches[r].mapping, exact[r].mapping)
            << "request " << i << " rank " << r;
        EXPECT_EQ(resp.matches[r].score, exact[r].score)
            << "request " << i << " rank " << r;
      }
      if (truth.size() > p) {
        EXPECT_GE(resp.certificate.score_bound, truth[p].score - 1e-9)
            << "request " << i
            << ": certified bound below the true rank-" << (p + 1)
            << " score";
      }
      if (expected_level[i] == 0) {
        EXPECT_TRUE(resp.certificate.exact) << "request " << i;
        EXPECT_EQ(resp.matches.size(), exact.size()) << "request " << i;
      }
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.degraded_at_level[0], 6u);
    EXPECT_EQ(stats.degraded_at_level[1], 3u);
    EXPECT_EQ(stats.degraded_at_level[2], 1u);
    EXPECT_EQ(stats.degraded_at_level[3], 1u);
    EXPECT_EQ(stats.rejected_overload, 1u);
  }
}

/// Cache isolation across ladder levels: a nominal answer cached while
/// the service was idle must not be returned to a degraded admission of
/// the same query (its key carries the level), and the degraded entry
/// must not shadow the nominal one afterwards.
TEST(ServiceSoakOverloadTest, CacheHitsNeverCrossDegradationLevels) {
  const auto graph = SmallRandomGraph(911, 120, 280);
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(graph);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  ServiceOptions so;
  so.star.match = TestConfig(2);
  so.max_inflight = 1;
  so.max_queue = 8;  // level 1 engages at queue depth 4
  so.degrade.enable = true;
  so.degrade.l1_max_candidates = 2;
  so.before_execute = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };

  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  query::WorkloadGenerator wg(graph, 333);
  const query::QueryGraph probe = wg.RandomStarQuery(3, wo);

  QueryService service(graph, ensemble, &index, so);
  const auto submit = [&](const query::QueryGraph& q) {
    QueryRequest req;
    req.query = q;
    req.k = 3;
    return service.Submit(req);
  };

  // Warm the nominal (level-0) cache entry while the service is idle.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  const QueryResponse warm = submit(probe).get();
  ASSERT_TRUE(warm.status.ok());
  EXPECT_FALSE(warm.cache_hit);
  EXPECT_EQ(warm.certificate.degradation_level, 0);
  EXPECT_TRUE(warm.certificate.exact);

  // Close the gate and stack the queue to depth 4, then submit the probe
  // again: it is admitted at level 1 and MUST NOT see the level-0 entry.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = false;
  }
  std::vector<std::future<QueryResponse>> held;
  const int before = entered.load();
  held.push_back(submit(wg.RandomStarQuery(3, wo)));  // takes the worker
  while (entered.load() == before) std::this_thread::yield();
  for (int i = 0; i < 4; ++i) {
    held.push_back(submit(wg.RandomStarQuery(3, wo)));
  }
  std::future<QueryResponse> degraded_fut = submit(probe);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  const QueryResponse degraded = degraded_fut.get();
  ASSERT_TRUE(degraded.status.ok());
  EXPECT_EQ(degraded.certificate.degradation_level, 1);
  EXPECT_FALSE(degraded.cache_hit)
      << "a level-1 admission was served the nominal cache entry";
  for (auto& f : held) ASSERT_TRUE(f.get().status.ok());

  // Idle again: a nominal re-submit must hit the level-0 entry — exact,
  // unshadowed by the degraded insert.
  const QueryResponse again = submit(probe).get();
  ASSERT_TRUE(again.status.ok());
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.certificate.degradation_level, 0);
  EXPECT_TRUE(again.certificate.exact);
  ASSERT_EQ(again.matches.size(), warm.matches.size());
  for (size_t i = 0; i < again.matches.size(); ++i) {
    EXPECT_EQ(again.matches[i].mapping, warm.matches[i].mapping);
    EXPECT_EQ(again.matches[i].score, warm.matches[i].score);
  }
}

}  // namespace
}  // namespace star::serve
