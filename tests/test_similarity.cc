#include "text/similarity.h"

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace star::text {
namespace {

TEST(LevenshteinTest, Distances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
  EXPECT_EQ(LevenshteinDistance("ABC", "abc"), 0);  // case-insensitive
}

TEST(LevenshteinTest, SimilarityNormalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abcd", "abce"), 0.75);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("a", "z"), 0.0);
}

TEST(DamerauTest, TranspositionCountsOne) {
  // "ab" -> "ba": Damerau 1 edit, plain Levenshtein 2.
  EXPECT_DOUBLE_EQ(DamerauLevenshteinSimilarity("ab", "ba"), 0.5);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("ab", "ba"), 0.0);
}

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "x"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  const double jaro = JaroSimilarity("prefixes", "prefixed");
  const double jw = JaroWinklerSimilarity("prefixes", "prefixed");
  EXPECT_GT(jw, jaro);
  EXPECT_LE(jw, 1.0);
}

TEST(PrefixSuffixTest, Basics) {
  EXPECT_DOUBLE_EQ(PrefixSimilarity("interstate", "internet"), 0.625);
  EXPECT_DOUBLE_EQ(SuffixSimilarity("walking", "running"), 3.0 / 7.0);
  EXPECT_DOUBLE_EQ(PrefixSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(PrefixSimilarity("", "x"), 0.0);
}

TEST(ContainmentTest, SubstringScaledByLength) {
  EXPECT_DOUBLE_EQ(ContainmentSimilarity("York", "New York"), 0.5);
  EXPECT_DOUBLE_EQ(ContainmentSimilarity("new york", "New York"), 1.0);
  EXPECT_DOUBLE_EQ(ContainmentSimilarity("abc", "xyz"), 0.0);
}

TEST(TokenSimilarityTest, JaccardDiceOverlap) {
  // "brad pitt" vs "brad garrett": intersection {brad}, union 3 tokens.
  EXPECT_NEAR(TokenJaccard("Brad Pitt", "Brad Garrett"), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(TokenDice("Brad Pitt", "Brad Garrett"), 0.5, 1e-12);
  EXPECT_NEAR(TokenOverlap("Brad Pitt", "Brad"), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(TokenJaccard("", ""), 1.0);
}

TEST(TokenSimilarityTest, DelimiterInsensitive) {
  EXPECT_DOUBLE_EQ(TokenJaccard("new_york-city", "New York City"), 1.0);
}

TEST(NGramTest, GramsAndJaccard) {
  const auto grams = CharNGrams("abcd", 3);
  EXPECT_EQ(grams, (std::vector<std::string>{"abc", "bcd"}));
  EXPECT_EQ(CharNGrams("ab", 3), (std::vector<std::string>{"ab"}));
  EXPECT_TRUE(CharNGrams("", 3).empty());
  EXPECT_DOUBLE_EQ(NGramJaccard("abcd", "abcd"), 1.0);
  EXPECT_GT(NGramJaccard("abcde", "abcdx"), 0.0);
}

TEST(AcronymTest, InitialsMatch) {
  EXPECT_DOUBLE_EQ(AcronymSimilarity("JFK", "John Fitzgerald Kennedy"), 1.0);
  EXPECT_DOUBLE_EQ(AcronymSimilarity("John Fitzgerald Kennedy", "jfk"), 1.0);
  EXPECT_DOUBLE_EQ(AcronymSimilarity("JFK", "John Kennedy"), 0.0);
  EXPECT_DOUBLE_EQ(AcronymSimilarity("J", "John"), 0.0);  // too short
}

TEST(AbbreviationTest, SubsequenceFromStart) {
  EXPECT_GT(AbbreviationSimilarity("Intl", "International"), 0.5);
  EXPECT_DOUBLE_EQ(AbbreviationSimilarity("xyz", "International"), 0.0);
  EXPECT_DOUBLE_EQ(AbbreviationSimilarity("same", "same"), 1.0);
  // Must share the first character.
  EXPECT_DOUBLE_EQ(AbbreviationSimilarity("ntl", "International"), 0.0);
}

TEST(LengthRatioTest, Basics) {
  EXPECT_DOUBLE_EQ(LengthRatio("ab", "abcd"), 0.5);
  EXPECT_DOUBLE_EQ(LengthRatio("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LengthRatio("", "x"), 0.0);
}

TEST(NumericTest, PlainNumbers) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("42", "42"), 1.0);
  EXPECT_GT(NumericSimilarity("100", "101"), 0.9);
  EXPECT_LT(NumericSimilarity("1", "1000"), 0.2);
  EXPECT_DOUBLE_EQ(NumericSimilarity("abc", "42"), 0.0);
}

TEST(NumericTest, UnitConversion) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("1km", "1000m"), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("2 kg", "2000 g"), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("1h", "3600s"), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("1 parsec", "42"), 0.0);  // unknown unit
}

TEST(LcsTest, Basics) {
  EXPECT_DOUBLE_EQ(LcsSimilarity("abcdef", "abcdef"), 1.0);
  EXPECT_DOUBLE_EQ(LcsSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LcsSimilarity("abcdef", "abdf"), 4.0 / 6.0, 1e-12);
}

TEST(MongeElkanTest, TokenReorderingAndTypos) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("Brad Pitt", "Pitt Brad"), 1.0);
  EXPECT_GT(MongeElkanSimilarity("Brad Pitt", "Brad Pit"), 0.9);
  EXPECT_LT(MongeElkanSimilarity("Brad Pitt", "Xqz Wvu"), 0.5);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("", "x"), 0.0);
}

TEST(LongestCommonSubstringTest, Basics) {
  EXPECT_DOUBLE_EQ(LongestCommonSubstringSimilarity("abcdef", "abcdef"), 1.0);
  // "cde" is the longest common substring of these two.
  EXPECT_NEAR(LongestCommonSubstringSimilarity("abcdex", "zzcdey"), 3.0 / 6.0,
              1e-12);
  EXPECT_DOUBLE_EQ(LongestCommonSubstringSimilarity("abc", "xyz"), 0.0);
}

TEST(HammingTest, EqualLengthOnly) {
  EXPECT_DOUBLE_EQ(HammingSimilarity("karolin", "kathrin"), 4.0 / 7.0);
  EXPECT_DOUBLE_EQ(HammingSimilarity("abc", "ab"), 0.0);
  EXPECT_DOUBLE_EQ(HammingSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(HammingSimilarity("ABC", "abc"), 1.0);
}

TEST(SmithWatermanTest, RewardsLocalRegions) {
  // "New York" inside a longer string aligns perfectly.
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("New York", "City of New York"),
                   1.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("same", "same"), 1.0);
}

TEST(BigramDiceTest, Basics) {
  EXPECT_DOUBLE_EQ(BigramDice("night", "night"), 1.0);
  EXPECT_GT(BigramDice("night", "nacht"), 0.0);
  EXPECT_DOUBLE_EQ(BigramDice("ab", "cd"), 0.0);
}

TEST(TokenSequenceEditTest, WordLevelEdits) {
  // One word substituted out of three.
  EXPECT_NEAR(TokenSequenceEditSimilarity("the great escape", "the grand escape"),
              2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(TokenSequenceEditSimilarity("a b c", "a b c"), 1.0);
  EXPECT_DOUBLE_EQ(
      TokenSequenceEditSimilarity("alpha beta", "gamma delta"), 0.0);
}

TEST(DateSimilarityTest, YearExtraction) {
  EXPECT_DOUBLE_EQ(DateSimilarity("1994", "1994-06-23"), 1.0);
  EXPECT_NEAR(DateSimilarity("Troy (2004)", "released 2014"), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(DateSimilarity("no digits", "2004"), 0.0);
  EXPECT_DOUBLE_EQ(DateSimilarity("12", "2004"), 0.0);  // too short a run
}

TEST(NumeralAwareTest, RomanAndWordNumbers) {
  EXPECT_DOUBLE_EQ(NumeralAwareMatch("Part II", "part 2"), 1.0);
  EXPECT_DOUBLE_EQ(NumeralAwareMatch("Rocky Three", "rocky 3"), 1.0);
  EXPECT_DOUBLE_EQ(NumeralAwareMatch("Part II", "Part 3"), 0.0);
  EXPECT_DOUBLE_EQ(NumeralAwareMatch("same text", "same text"), 1.0);
  EXPECT_DOUBLE_EQ(NumeralAwareMatch("", "x"), 0.0);
}

// ---------------------------------------------------------------------------
// Family-wide properties: range, symmetry, identity.
// ---------------------------------------------------------------------------

using SimFn = std::function<double(std::string_view, std::string_view)>;

struct NamedFn {
  const char* name;
  SimFn fn;
  bool symmetric;
};

std::vector<NamedFn> AllFunctions() {
  return {
      {"exact", ExactMatch, true},
      {"case_insensitive", CaseInsensitiveMatch, true},
      {"levenshtein", LevenshteinSimilarity, true},
      {"damerau", DamerauLevenshteinSimilarity, true},
      {"jaro", JaroSimilarity, true},
      {"jaro_winkler", JaroWinklerSimilarity, true},
      {"prefix", PrefixSimilarity, true},
      {"suffix", SuffixSimilarity, true},
      {"containment", ContainmentSimilarity, true},
      {"token_jaccard", TokenJaccard, true},
      {"token_dice", TokenDice, true},
      {"token_overlap", TokenOverlap, true},
      {"ngram",
       [](std::string_view a, std::string_view b) {
         return NGramJaccard(a, b);
       },
       true},
      {"acronym", AcronymSimilarity, true},
      {"abbreviation", AbbreviationSimilarity, true},
      {"length_ratio", LengthRatio, true},
      {"numeric", NumericSimilarity, true},
      {"lcs", LcsSimilarity, true},
      {"monge_elkan", MongeElkanSimilarity, true},
      {"lc_substring", LongestCommonSubstringSimilarity, true},
      {"hamming", HammingSimilarity, true},
      {"smith_waterman", SmithWatermanSimilarity, true},
      {"bigram_dice", BigramDice, true},
      {"token_seq_edit", TokenSequenceEditSimilarity, true},
      {"date", DateSimilarity, true},
      {"numeral_aware", NumeralAwareMatch, true},
  };
}

class SimilarityProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityProperty, RangeSymmetryIdentity) {
  Rng rng(GetParam());
  const auto make_string = [&]() {
    std::string s;
    const size_t len = rng.Below(12);
    for (size_t i = 0; i < len; ++i) {
      const char* alphabet = "abcdeABC 123_-";
      s.push_back(alphabet[rng.Below(14)]);
    }
    return s;
  };
  for (int trial = 0; trial < 20; ++trial) {
    const std::string a = make_string();
    const std::string b = make_string();
    for (const auto& [name, fn, symmetric] : AllFunctions()) {
      const double ab = fn(a, b);
      EXPECT_GE(ab, 0.0) << name << " a='" << a << "' b='" << b << "'";
      EXPECT_LE(ab, 1.0) << name << " a='" << a << "' b='" << b << "'";
      if (symmetric) {
        EXPECT_NEAR(ab, fn(b, a), 1e-12)
            << name << " a='" << a << "' b='" << b << "'";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace star::text
