#include "query/query_parser.h"

#include <gtest/gtest.h>

namespace star::query {
namespace {

TEST(QueryParserTest, SingleNode) {
  const auto r = ParseQuery("(Brad Pitt)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->node_count(), 1);
  EXPECT_EQ(r->node(0).label, "Brad Pitt");
  EXPECT_FALSE(r->node(0).wildcard);
  EXPECT_EQ(r->edge_count(), 0);
}

TEST(QueryParserTest, TypedNode) {
  const auto r = ParseQuery("(Brad Pitt/Actor)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->node(0).label, "Brad Pitt");
  EXPECT_EQ(r->node(0).type_name, "Actor");
}

TEST(QueryParserTest, WildcardVariants) {
  const auto r = ParseQuery("(?) -- (?x/Film); (?x) -- (?)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Anonymous wildcards are fresh each time; ?x is shared.
  EXPECT_EQ(r->node_count(), 3);
  EXPECT_EQ(r->edge_count(), 2);
  int wildcard_count = 0;
  for (const auto& n : r->nodes()) wildcard_count += n.wildcard;
  EXPECT_EQ(wildcard_count, 3);
}

TEST(QueryParserTest, NamedWildcardWithTypeSharedAcrossClauses) {
  const auto r = ParseQuery("(Brad) -- (?m/Film); (?m/Film) -[won]- (Award)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->node_count(), 3);
  EXPECT_EQ(r->edge_count(), 2);
  EXPECT_TRUE(r->IsConnected());
}

TEST(QueryParserTest, RelationLabels) {
  const auto r = ParseQuery("(A) -[acted In]- (B) -- (C)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->edge_count(), 2);
  EXPECT_EQ(r->edge(0).relation, "acted In");
  EXPECT_FALSE(r->edge(0).wildcard_relation);
  EXPECT_TRUE(r->edge(1).wildcard_relation);
}

TEST(QueryParserTest, RepeatedConcreteLabelIsSameNode) {
  const auto r = ParseQuery("(A) -- (B); (A) -- (C)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->node_count(), 3);
  EXPECT_EQ(r->edge_count(), 2);
  EXPECT_TRUE(r->IsStar());
}

TEST(QueryParserTest, TriangleQuery) {
  const auto r = ParseQuery("(A) -- (B) -- (C) -- (A)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->node_count(), 3);
  EXPECT_EQ(r->edge_count(), 3);
  EXPECT_FALSE(r->IsTree());
}

TEST(QueryParserTest, WhitespaceInsensitive) {
  const auto r = ParseQuery("  ( A )--( B )  ;\n ( A ) -[ rel ]- ( C ) ");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->node_count(), 3);
  EXPECT_EQ(r->node(0).label, "A");
  EXPECT_EQ(r->edge(1).relation, "rel");
}

TEST(QueryParserTest, TypeAttachesFromAnyOccurrence) {
  const auto r = ParseQuery("(?m) -- (A); (?m/Film) -- (B)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->node_count(), 3);
  EXPECT_EQ(r->node(0).type_name, "Film");
}

TEST(QueryParserTest, ConflictingTypesRejected) {
  EXPECT_FALSE(ParseQuery("(?m/Film) -- (A); (?m/Award) -- (B)").ok());
  EXPECT_FALSE(ParseQuery("(X/Film) -- (A); (X/Award) -- (B)").ok());
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("()").ok());
  EXPECT_FALSE(ParseQuery("(A) --").ok());
  EXPECT_FALSE(ParseQuery("(A) - (B)").ok());
  EXPECT_FALSE(ParseQuery("(A) -[rel- (B)").ok());
  EXPECT_FALSE(ParseQuery("(A").ok());
  EXPECT_FALSE(ParseQuery("(A) -- (A)").ok());          // self loop
  EXPECT_FALSE(ParseQuery("(A) -- (B); (B) -- (A)").ok());  // dup edge
  EXPECT_FALSE(ParseQuery("(A) (B)").ok());
}

TEST(QueryParserTest, ErrorMessagesCarryPosition) {
  const auto r = ParseQuery("(A) -[x- (B)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("position"), std::string::npos);
}

TEST(QueryParserTest, TrailingSemicolonTolerated) {
  const auto r = ParseQuery("(A) -- (B);");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->edge_count(), 1);
}

}  // namespace
}  // namespace star::query
