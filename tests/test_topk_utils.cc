#include "core/topk_utils.h"

#include <algorithm>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace star::core {
namespace {

TEST(TopKValues, SelectsLargestSorted) {
  const std::vector<double> v = {3.0, 1.0, 4.0, 1.5, 9.0, 2.6};
  const auto top = TopKValues(v, 3);
  EXPECT_EQ(top, (std::vector<double>{9.0, 4.0, 3.0}));
}

TEST(TopKValues, KLargerThanInput) {
  const auto top = TopKValues({2.0, 1.0}, 5);
  EXPECT_EQ(top, (std::vector<double>{2.0, 1.0}));
}

TEST(TopKValues, KZero) { EXPECT_TRUE(TopKValues({1.0, 2.0}, 0).empty()); }

TEST(TopKValues, Duplicates) {
  const auto top = TopKValues({1.0, 1.0, 1.0, 0.5}, 2);
  EXPECT_EQ(top, (std::vector<double>{1.0, 1.0}));
}

// Brute-force top-k sums picking one element per list.
std::vector<double> BruteTopSums(const std::vector<std::vector<double>>& lists,
                                 size_t k) {
  std::vector<double> sums = {0.0};
  for (const auto& list : lists) {
    std::vector<double> next;
    for (const double s : sums) {
      for (const double x : list) next.push_back(s + x);
    }
    sums = std::move(next);
  }
  std::sort(sums.begin(), sums.end(), std::greater<double>());
  if (sums.size() > k) sums.resize(k);
  return sums;
}

std::vector<std::vector<ListEntry>> ToEntries(
    const std::vector<std::vector<double>>& lists) {
  std::vector<std::vector<ListEntry>> out(lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    for (size_t j = 0; j < lists[i].size(); ++j) {
      out[i].push_back({j, lists[i][j]});
    }
  }
  return out;
}

std::vector<std::vector<double>> FromEntries(
    const std::vector<std::vector<ListEntry>>& entries) {
  std::vector<std::vector<double>> out(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    for (const auto& e : entries[i]) out[i].push_back(e.value);
  }
  return out;
}

TEST(PruneListsProp3, PaperExample5) {
  // Lists L_B, L_C, L_D from Example 5 (maxima 0.9, 0.7, 0.8; to find the
  // top-3 sums only the maxima plus two more numbers are needed).
  std::vector<std::vector<double>> lists = {
      {0.9, 0.7, 0.3, 0.2}, {0.7, 0.5, 0.2}, {0.8, 0.5, 0.1}};
  auto entries = ToEntries(lists);
  PruneListsProp3(entries, 3);
  size_t total = 0;
  for (const auto& l : entries) total += l.size();
  // At most k + s - 1 = 5 entries survive.
  EXPECT_LE(total, 5u);
  // Pruning preserves the top-3 sums.
  EXPECT_EQ(BruteTopSums(FromEntries(entries), 3), BruteTopSums(lists, 3));
}

TEST(PruneListsProp3, KeepsOnlyMaximaForK1) {
  std::vector<std::vector<double>> lists = {{0.5, 0.9}, {0.1, 0.2, 0.3}};
  auto entries = ToEntries(lists);
  PruneListsProp3(entries, 1);
  ASSERT_EQ(entries[0].size(), 1u);
  ASSERT_EQ(entries[1].size(), 1u);
  EXPECT_DOUBLE_EQ(entries[0][0].value, 0.9);
  EXPECT_DOUBLE_EQ(entries[1][0].value, 0.3);
}

TEST(PruneListsProp3, EmptyListsSurvive) {
  std::vector<std::vector<ListEntry>> entries(3);
  entries[0].push_back({0, 1.0});
  PruneListsProp3(entries, 4);
  EXPECT_EQ(entries[0].size(), 1u);
  EXPECT_TRUE(entries[1].empty());
  EXPECT_TRUE(entries[2].empty());
}

// Property: for random lists, pruning never changes the top-k sums.
class Prop3Property : public ::testing::TestWithParam<int> {};

TEST_P(Prop3Property, PreservesTopKSums) {
  Rng rng(GetParam());
  const size_t s = 2 + rng.Below(3);
  const size_t k = 1 + rng.Below(6);
  std::vector<std::vector<double>> lists(s);
  for (auto& l : lists) {
    const size_t len = 1 + rng.Below(8);
    for (size_t j = 0; j < len; ++j) {
      l.push_back(std::round(rng.NextDouble() * 100) / 100);
    }
  }
  auto entries = ToEntries(lists);
  PruneListsProp3(entries, k);
  EXPECT_EQ(BruteTopSums(FromEntries(entries), k), BruteTopSums(lists, k))
      << "s=" << s << " k=" << k;
  // The size bound holds modulo ties at the cutoff.
  size_t total = 0;
  for (const auto& l : entries) total += l.size();
  EXPECT_LE(total, 2 * (k + s));  // generous tie allowance
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop3Property, ::testing::Range(0, 40));

TEST(PruneListsPerList, KeepsTopKPlusSMinus1PerList) {
  std::vector<std::vector<double>> lists = {
      {0.1, 0.9, 0.5, 0.7, 0.3, 0.2}, {0.6, 0.4, 0.8}};
  auto entries = ToEntries(lists);
  PruneListsPerList(entries, 2);  // keep = k + s - 1 = 3
  EXPECT_EQ(entries[0].size(), 3u);
  EXPECT_EQ(entries[1].size(), 3u);
  std::vector<double> kept0 = FromEntries(entries)[0];
  std::sort(kept0.begin(), kept0.end(), std::greater<double>());
  EXPECT_EQ(kept0, (std::vector<double>{0.9, 0.7, 0.5}));
}

}  // namespace
}  // namespace star::core
