#include "baseline/belief_propagation.h"

#include <vector>

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "query/workload.h"
#include "test_helpers.h"

namespace star::baseline {
namespace {

using star::testing::MovieGraph;
using star::testing::ScorerFixture;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

TEST(BeliefPropagationTest, ExactEntityLookup) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int a = q.AddNode("Brad Pitt");
  const int b = q.AddNode("Troy");
  q.AddEdge(a, b, "actedIn");
  ScorerFixture fx(g, q, TestConfig());
  BeliefPropagation bp(*fx.scorer, {});
  const auto top = bp.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(g.NodeLabel(top[0].mapping[a]), "Brad Pitt");
  EXPECT_NEAR(top[0].score, 3.0, 1e-9);
}

// The paper: "For acyclic queries, BP outputs the exact top-k matches."
class BpTreeExactness : public ::testing::TestWithParam<int> {};

TEST_P(BpTreeExactness, ExactOnTrees) {
  const int seed = GetParam();
  const auto g = SmallRandomGraph(seed, 18, 36);
  query::WorkloadGenerator wg(g, seed * 7 + 5);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto q =
      seed % 2 == 0 ? wg.RandomStarQuery(3, wo) : wg.RandomPathQuery(3, wo);
  if (!q.IsTree()) GTEST_SKIP();
  for (const bool injective : {true, false}) {
    const auto cfg = TestConfig(seed % 2 + 1, injective);
    const size_t k = 4;
    ScorerFixture fx(g, q, cfg);
    const auto expected = BruteForceTopK(*fx.scorer, k);
    ScorerFixture fx2(g, q, cfg);
    BeliefPropagation bp(*fx2.scorer, {});
    const auto got = bp.TopK(k);
    ASSERT_EQ(got.size(), expected.size())
        << "seed=" << seed << " injective=" << injective
        << " q=" << q.ToString();
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].score, expected[i].score, 1e-9)
          << "i=" << i << " seed=" << seed << " injective=" << injective;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BpTreeExactness, ::testing::Range(0, 10));

TEST(BeliefPropagationTest, CyclicQueriesReturnValidMatches) {
  const auto g = SmallRandomGraph(5, 20, 44);
  query::WorkloadGenerator wg(g, 23);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto q = wg.RandomGraphQuery(4, 5, wo);
  if (q.IsTree()) GTEST_SKIP();
  const auto cfg = TestConfig(1);
  ScorerFixture fx(g, q, cfg);
  BeliefPropagation bp(*fx.scorer, {});
  const auto got = bp.TopK(5);
  // No completeness guarantee, but everything returned must be a valid
  // match no better than the true optimum.
  ScorerFixture fx2(g, q, cfg);
  const auto best = BruteForceTopK(*fx2.scorer, 1);
  for (const auto& m : got) {
    EXPECT_TRUE(m.Complete());
    EXPECT_TRUE(m.Injective());
    if (!best.empty()) {
      EXPECT_LE(m.score, best[0].score + 1e-9);
    }
  }
}

TEST(BeliefPropagationTest, DomainCapLimitsDomains) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int a = q.AddNode("Brad");
  const int b = q.AddWildcardNode();
  q.AddEdge(a, b);
  // d = 2 so that even a tiny domain cap leaves connectable candidates
  // (the two Brads are two hops apart through Troy).
  ScorerFixture fx(g, q, TestConfig(2));
  BpOptions opts;
  opts.domain_cap = 2;
  BeliefPropagation bp(*fx.scorer, opts);
  const auto got = bp.TopK(3);
  EXPECT_FALSE(got.empty());
}

TEST(BeliefPropagationTest, StatsCountMapCalls) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int a = q.AddNode("Brad Pitt");
  const int b = q.AddNode("Boyhood");
  q.AddEdge(a, b);
  ScorerFixture fx(g, q, TestConfig());
  BeliefPropagation bp(*fx.scorer, {});
  bp.TopK(2);
  EXPECT_GT(bp.stats().map_calls, 0u);
  EXPECT_GT(bp.stats().message_updates, 0u);
}

}  // namespace
}  // namespace star::baseline
