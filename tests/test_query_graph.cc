#include "query/query_graph.h"

#include <gtest/gtest.h>

namespace star::query {
namespace {

TEST(QueryGraphTest, NodeAndEdgeConstruction) {
  QueryGraph q;
  const int a = q.AddNode("Brad", "Actor");
  const int b = q.AddWildcardNode("Film");
  const int e = q.AddEdge(a, b, "actedIn");
  EXPECT_EQ(q.node_count(), 2);
  EXPECT_EQ(q.edge_count(), 1);
  EXPECT_EQ(q.node(a).label, "Brad");
  EXPECT_FALSE(q.node(a).wildcard);
  EXPECT_TRUE(q.node(b).wildcard);
  EXPECT_EQ(q.node(b).type_name, "Film");
  EXPECT_FALSE(q.edge(e).wildcard_relation);
  EXPECT_EQ(q.OtherEnd(e, a), b);
  EXPECT_EQ(q.OtherEnd(e, b), a);
}

TEST(QueryGraphTest, WildcardRelation) {
  QueryGraph q;
  const int a = q.AddNode("A");
  const int b = q.AddNode("B");
  EXPECT_TRUE(q.edge(q.AddEdge(a, b)).wildcard_relation);
  EXPECT_TRUE(q.edge(q.AddEdge(a, b, "?")).wildcard_relation);
}

TEST(QueryGraphTest, Connectivity) {
  QueryGraph q;
  const int a = q.AddNode("A");
  const int b = q.AddNode("B");
  q.AddNode("C");  // isolated
  q.AddEdge(a, b);
  EXPECT_FALSE(q.IsConnected());
  EXPECT_TRUE(QueryGraph().IsConnected());
}

TEST(QueryGraphTest, StarDetection) {
  QueryGraph star;
  const int center = star.AddNode("C");
  for (int i = 0; i < 3; ++i) {
    star.AddEdge(center, star.AddNode("L" + std::to_string(i)));
  }
  EXPECT_TRUE(star.IsStar());
  EXPECT_EQ(star.StarPivot(), center);

  QueryGraph path;
  const int p0 = path.AddNode("0");
  const int p1 = path.AddNode("1");
  const int p2 = path.AddNode("2");
  const int p3 = path.AddNode("3");
  path.AddEdge(p0, p1);
  path.AddEdge(p1, p2);
  path.AddEdge(p2, p3);
  EXPECT_FALSE(path.IsStar());  // 3-edge path: no node covers all edges

  QueryGraph edge;
  const int e0 = edge.AddNode("0");
  const int e1 = edge.AddNode("1");
  edge.AddEdge(e0, e1);
  EXPECT_TRUE(edge.IsStar());  // a single edge is a star

  QueryGraph single;
  single.AddNode("0");
  EXPECT_TRUE(single.IsStar());
  EXPECT_EQ(single.StarPivot(), 0);
}

TEST(QueryGraphTest, TriangleIsNotAStar) {
  QueryGraph q;
  const int a = q.AddNode("A");
  const int b = q.AddNode("B");
  const int c = q.AddNode("C");
  q.AddEdge(a, b);
  q.AddEdge(b, c);
  q.AddEdge(a, c);
  EXPECT_FALSE(q.IsStar());
  EXPECT_FALSE(q.IsTree());
  EXPECT_TRUE(q.IsConnected());
}

TEST(QueryGraphTest, TreeDetection) {
  QueryGraph q;
  const int a = q.AddNode("A");
  const int b = q.AddNode("B");
  const int c = q.AddNode("C");
  q.AddEdge(a, b);
  q.AddEdge(b, c);
  EXPECT_TRUE(q.IsTree());
  q.AddEdge(a, c);
  EXPECT_FALSE(q.IsTree());
}

TEST(QueryGraphTest, IncidentEdgesAndDegree) {
  QueryGraph q;
  const int a = q.AddNode("A");
  const int b = q.AddNode("B");
  const int c = q.AddNode("C");
  const int e0 = q.AddEdge(a, b);
  const int e1 = q.AddEdge(a, c);
  EXPECT_EQ(q.Degree(a), 2);
  EXPECT_EQ(q.Degree(b), 1);
  EXPECT_EQ(q.IncidentEdges(a), (std::vector<int>{e0, e1}));
}

TEST(QueryGraphTest, ToStringMentionsShape) {
  QueryGraph q;
  const int a = q.AddNode("Brad", "Actor");
  const int b = q.AddWildcardNode();
  q.AddEdge(a, b, "actedIn");
  const std::string s = q.ToString();
  EXPECT_NE(s.find("Q(2,1)"), std::string::npos);
  EXPECT_NE(s.find("Brad"), std::string::npos);
  EXPECT_NE(s.find("actedIn"), std::string::npos);
}

}  // namespace
}  // namespace star::query
