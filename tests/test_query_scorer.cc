#include "scoring/query_scorer.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace star::scoring {
namespace {

using star::testing::MovieGraph;
using star::testing::TestConfig;

struct Fixture {
  graph::KnowledgeGraph g = MovieGraph();
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index{g};
  query::QueryGraph q;
};

TEST(QueryScorerTest, NodeScoreExactAndPartial) {
  Fixture fx;
  const int u = fx.q.AddNode("Brad Pitt");
  QueryScorer scorer(fx.g, fx.q, fx.ensemble, TestConfig(), &fx.index);
  EXPECT_DOUBLE_EQ(scorer.NodeScore(u, 0), 1.0);  // exact
  const double partial = scorer.NodeScore(u, 1);  // Brad Garrett
  EXPECT_GT(partial, 0.0);
  EXPECT_LT(partial, 1.0);
}

TEST(QueryScorerTest, CandidatesSortedAndThresholded) {
  Fixture fx;
  const int u = fx.q.AddNode("Brad");
  auto cfg = TestConfig();
  cfg.node_threshold = 0.3;
  QueryScorer scorer(fx.g, fx.q, fx.ensemble, cfg, &fx.index);
  const auto& cands = scorer.Candidates(u);
  ASSERT_FALSE(cands.empty());
  for (size_t i = 1; i < cands.size(); ++i) {
    EXPECT_LE(cands[i].score, cands[i - 1].score);
  }
  for (const auto& c : cands) EXPECT_GE(c.score, 0.3);
}

TEST(QueryScorerTest, MaxCandidatesCutoff) {
  Fixture fx;
  const int u = fx.q.AddNode("Brad");
  auto cfg = TestConfig();
  cfg.max_candidates = 1;
  QueryScorer scorer(fx.g, fx.q, fx.ensemble, cfg, &fx.index);
  EXPECT_EQ(scorer.Candidates(u).size(), 1u);
}

TEST(QueryScorerTest, WildcardCandidates) {
  Fixture fx;
  const int any = fx.q.AddWildcardNode();
  const int typed = fx.q.AddWildcardNode("Actor");
  QueryScorer scorer(fx.g, fx.q, fx.ensemble, TestConfig(), &fx.index);
  EXPECT_EQ(scorer.Candidates(any).size(), fx.g.node_count());
  EXPECT_EQ(scorer.Candidates(typed).size(), 3u);  // the three actors
  EXPECT_DOUBLE_EQ(scorer.NodeScore(any, 5), 1.0);
  EXPECT_DOUBLE_EQ(scorer.NodeScore(typed, 0), 1.0);   // Brad Pitt: Actor
  EXPECT_DOUBLE_EQ(scorer.NodeScore(typed, 4), 0.0);   // Troy: Film
}

TEST(QueryScorerTest, CandidateScoreMembership) {
  Fixture fx;
  const int u = fx.q.AddNode("Brad Pitt");
  QueryScorer scorer(fx.g, fx.q, fx.ensemble, TestConfig(), &fx.index);
  EXPECT_DOUBLE_EQ(scorer.CandidateScore(u, 0), 1.0);
  // Academy Award shares no token with "Brad Pitt": not a candidate.
  EXPECT_LT(scorer.CandidateScore(u, 6), 0.0);
}

TEST(QueryScorerTest, RelationScores) {
  Fixture fx;
  const int a = fx.q.AddNode("A");
  const int b = fx.q.AddNode("B");
  const int exact = fx.q.AddEdge(a, b, "actedIn");
  const int wild = fx.q.AddEdge(a, b);
  QueryScorer scorer(fx.g, fx.q, fx.ensemble, TestConfig(), &fx.index);
  const auto rel = static_cast<uint32_t>(fx.g.FindRelationId("actedIn"));
  EXPECT_DOUBLE_EQ(scorer.RelationScore(exact, rel), 1.0);
  EXPECT_DOUBLE_EQ(scorer.RelationScore(wild, rel), 1.0);
  const auto won = static_cast<uint32_t>(fx.g.FindRelationId("won"));
  EXPECT_LT(scorer.RelationScore(exact, won), 1.0);
  EXPECT_DOUBLE_EQ(scorer.MaxRelationScore(wild), 1.0);
  EXPECT_DOUBLE_EQ(scorer.MaxRelationScore(exact), 1.0);  // exists in graph
}

TEST(QueryScorerTest, EdgeScoreDecaysWithHops) {
  Fixture fx;
  const int a = fx.q.AddNode("A");
  const int b = fx.q.AddNode("B");
  const int e = fx.q.AddEdge(a, b);
  auto cfg = TestConfig(3);
  QueryScorer scorer(fx.g, fx.q, fx.ensemble, cfg, &fx.index);
  EXPECT_DOUBLE_EQ(scorer.EdgeScore(e, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(scorer.EdgeScore(e, 0, 2), 0.5);
  EXPECT_DOUBLE_EQ(scorer.EdgeScore(e, 0, 3), 0.25);
  EXPECT_DOUBLE_EQ(scorer.PathDecay(2), 0.5);
}

TEST(QueryScorerTest, PairEdgeScoreDirectAndWalk) {
  Fixture fx;
  const int a = fx.q.AddNode("A");
  const int b = fx.q.AddNode("B");
  const int e = fx.q.AddEdge(a, b);
  {
    QueryScorer scorer(fx.g, fx.q, fx.ensemble, TestConfig(1), &fx.index);
    // Brad Pitt - Troy: direct edge, wildcard relation -> 1.0.
    EXPECT_DOUBLE_EQ(scorer.PairEdgeScore(e, 0, 4), 1.0);
    // Brad Pitt - Academy Award: 2 hops, but d = 1 -> invalid.
    EXPECT_LT(scorer.PairEdgeScore(e, 0, 6), 0.0);
  }
  {
    QueryScorer scorer(fx.g, fx.q, fx.ensemble, TestConfig(2), &fx.index);
    // With d = 2 the two-hop walk scores lambda.
    EXPECT_DOUBLE_EQ(scorer.PairEdgeScore(e, 0, 6), 0.5);
    // Symmetric.
    EXPECT_DOUBLE_EQ(scorer.PairEdgeScore(e, 6, 0), 0.5);
    // Direct connections keep relation score 1.0 (better than decay).
    EXPECT_DOUBLE_EQ(scorer.PairEdgeScore(e, 0, 4), 1.0);
  }
}

TEST(QueryScorerTest, WalkBallSmallestLengths) {
  Fixture fx;
  fx.q.AddNode("A");
  QueryScorer scorer(fx.g, fx.q, fx.ensemble, TestConfig(3), &fx.index);
  const auto& ball = scorer.WalkBall(0);  // Brad Pitt
  // Academy Award is 2 hops away (via Boyhood).
  ASSERT_TRUE(ball.count(6));
  EXPECT_EQ(ball.at(6), 2);
  // United States is 2 hops (via Los Angeles).
  ASSERT_TRUE(ball.count(9));
  EXPECT_EQ(ball.at(9), 2);
}

// Reference implementation of the WalkBall contract (all nodes reachable
// by a walk of length in [2, d], mapped to the smallest such length), as
// the pre-flat-array code computed it: a fresh hash-set layered BFS per
// call. A node may reappear in several layers; the smallest layer wins.
std::unordered_map<graph::NodeId, int> NaiveWalkBall(
    const graph::KnowledgeGraph& g, graph::NodeId a, int d) {
  std::unordered_map<graph::NodeId, int> ball;
  if (d < 2) return ball;
  std::unordered_set<graph::NodeId> layer;
  for (const auto& nb : g.Neighbors(a)) layer.insert(nb.node);
  for (int h = 2; h <= d && !layer.empty(); ++h) {
    std::unordered_set<graph::NodeId> next;
    for (const graph::NodeId x : layer) {
      for (const auto& nb : g.Neighbors(x)) {
        if (next.insert(nb.node).second) ball.try_emplace(nb.node, h);
      }
    }
    layer = std::move(next);
  }
  return ball;
}

TEST(QueryScorerTest, WalkBallMatchesNaiveReference) {
  const auto g = star::testing::SmallRandomGraph(/*seed=*/57);
  query::QueryGraph q;
  q.AddNode("A");
  for (const int d : {2, 3}) {
    text::SimilarityEnsemble ensemble;
    QueryScorer scorer(g, q, ensemble, TestConfig(d), nullptr);
    for (graph::NodeId a = 0; a < g.node_count(); ++a) {
      const auto expected = NaiveWalkBall(g, a, d);
      const auto& ball = scorer.WalkBall(a);
      ASSERT_EQ(ball.size(), expected.size()) << "a=" << a << " d=" << d;
      for (const auto& [v, h] : expected) {
        const auto it = ball.find(v);
        ASSERT_NE(it, ball.end()) << "a=" << a << " d=" << d << " v=" << v;
        EXPECT_EQ(it->second, h) << "a=" << a << " d=" << d << " v=" << v;
      }
    }
    // Repeated calls hit the memo and stay consistent.
    const auto first = scorer.WalkBall(0);
    EXPECT_EQ(scorer.WalkBall(0), first);
  }
}

TEST(QueryScorerTest, ScoreUpperBound) {
  Fixture fx;
  const int a = fx.q.AddNode("A");
  const int b = fx.q.AddWildcardNode();
  fx.q.AddEdge(a, b);
  QueryScorer scorer(fx.g, fx.q, fx.ensemble, TestConfig(), &fx.index);
  EXPECT_DOUBLE_EQ(scorer.ScoreUpperBound(), 3.0);
}

TEST(QueryScorerTest, NoIndexScansAllNodes) {
  Fixture fx;
  const int u = fx.q.AddNode("Brad Pitt");
  QueryScorer scorer(fx.g, fx.q, fx.ensemble, TestConfig(), nullptr);
  const auto& cands = scorer.Candidates(u);
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands[0].node, 0u);
  EXPECT_DOUBLE_EQ(cands[0].score, 1.0);
}

TEST(QueryScorerTest, CancelledCandidatesNotMemoizedAndTruncationRecorded) {
  Fixture fx;
  const int u = fx.q.AddNode("Brad");
  QueryScorer scorer(fx.g, fx.q, fx.ensemble, TestConfig(), &fx.index);
  EXPECT_FALSE(scorer.truncated());

  Cancellation cancelled;
  cancelled.Cancel();
  scorer.set_cancellation(&cancelled);
  EXPECT_TRUE(scorer.Candidates(u).empty());
  // The cancelled early-return must be visible (truncated) and must not
  // memoize the empty list as this node's definitive candidate set.
  EXPECT_TRUE(scorer.truncated());

  scorer.set_cancellation(nullptr);
  EXPECT_FALSE(scorer.Candidates(u).empty());
  // The flag is sticky: once any checkpoint fired, the session stays
  // marked so no caller can report its output as complete.
  EXPECT_TRUE(scorer.truncated());
}

TEST(QueryScorerTest, EvaluationCounterGrows) {
  Fixture fx;
  const int u = fx.q.AddNode("Brad Pitt");
  QueryScorer scorer(fx.g, fx.q, fx.ensemble, TestConfig(), &fx.index);
  EXPECT_EQ(scorer.node_score_evaluations(), 0u);
  scorer.NodeScore(u, 1);
  EXPECT_EQ(scorer.node_score_evaluations(), 1u);
  scorer.NodeScore(u, 1);  // memoized
  EXPECT_EQ(scorer.node_score_evaluations(), 1u);
}

}  // namespace
}  // namespace star::scoring
