#include "text/phonetic.h"

#include <gtest/gtest.h>

namespace star::text {
namespace {

TEST(SoundexTest, ClassicCodes) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, ShortAndEmpty) {
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("A"), "A000");
  EXPECT_EQ(Soundex("Lee"), "L000");
}

TEST(SoundexTest, FirstTokenOnly) {
  EXPECT_EQ(Soundex("Robert Johnson"), "R163");
}

TEST(SoundexTest, IgnoresNonAlpha) { EXPECT_EQ(Soundex("O'Brien"), "O165"); }

TEST(PhoneticSimilarityTest, MatchingAndNot) {
  EXPECT_DOUBLE_EQ(PhoneticSimilarity("Robert", "Rupert"), 1.0);
  EXPECT_DOUBLE_EQ(PhoneticSimilarity("Smith", "Smyth"), 1.0);
  EXPECT_DOUBLE_EQ(PhoneticSimilarity("Robert", "Xavier"), 0.0);
  EXPECT_DOUBLE_EQ(PhoneticSimilarity("", "Robert"), 0.0);
}

TEST(PhoneticSimilarityTest, AnyTokenPairMatches) {
  EXPECT_DOUBLE_EQ(PhoneticSimilarity("John Smith", "Jon Smyth"), 1.0);
  EXPECT_DOUBLE_EQ(PhoneticSimilarity("Alice Smith", "Bob Smyth"), 1.0);
}

}  // namespace
}  // namespace star::text
