// Property tests for the delta-varint data-plane codec (format v1):
// varint roundtrips over boundary values, postings/adjacency encode-decode
// identity, and PostingsCursor equivalence against materialized vectors.

#include "graph/csr_codec.h"

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/knowledge_graph.h"

namespace star::graph::csr {
namespace {

TEST(CsrCodecVarint, BoundaryValuesRoundTrip) {
  // Every LEB128 width boundary: 7-bit, 14-bit, 21-bit, 28-bit, 32-bit.
  const uint32_t cases[] = {0,
                            1,
                            126,
                            127,
                            128,
                            129,
                            (1u << 14) - 1,
                            1u << 14,
                            (1u << 21) - 1,
                            1u << 21,
                            (1u << 28) - 1,
                            1u << 28,
                            std::numeric_limits<uint32_t>::max() - 1,
                            std::numeric_limits<uint32_t>::max()};
  for (const uint32_t v : cases) {
    std::vector<uint8_t> buf;
    AppendVarint32(v, &buf);
    ASSERT_LE(buf.size(), 5u) << v;
    uint32_t got = v + 1;
    const uint8_t* end = DecodeVarint32(buf.data(), &got);
    EXPECT_EQ(got, v);
    EXPECT_EQ(end, buf.data() + buf.size()) << v;
  }
}

TEST(CsrCodecVarint, EncodedWidthMatchesValueMagnitude) {
  std::vector<uint8_t> buf;
  AppendVarint32(127, &buf);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  AppendVarint32(128, &buf);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  AppendVarint32(std::numeric_limits<uint32_t>::max(), &buf);
  EXPECT_EQ(buf.size(), 5u);
}

TEST(CsrCodecVarint, RandomStreamRoundTrips) {
  Rng rng(20260808);
  std::vector<uint32_t> values;
  std::vector<uint8_t> buf;
  for (int i = 0; i < 5000; ++i) {
    // Skew toward small values (the codec's real distribution) but keep
    // full-range outliers in the mix.
    const int shift = static_cast<int>(rng.Below(33));
    const uint32_t v =
        static_cast<uint32_t>(rng.Next()) >> (shift == 32 ? 0 : shift);
    values.push_back(v);
    AppendVarint32(v, &buf);
  }
  const uint8_t* p = buf.data();
  for (const uint32_t want : values) {
    uint32_t got = 0;
    p = DecodeVarint32(p, &got);
    ASSERT_EQ(got, want);
  }
  EXPECT_EQ(p, buf.data() + buf.size());
}

std::vector<uint32_t> Drain(PostingsCursor cursor) {
  std::vector<uint32_t> out;
  uint32_t v;
  while (cursor.Next(&v)) out.push_back(v);
  return out;
}

TEST(CsrCodecPostings, EmptyListEncodesToNothing) {
  std::vector<uint8_t> arena;
  EncodePostings(nullptr, 0, &arena);
  EXPECT_TRUE(arena.empty());
  PostingsCursor cursor(arena.data(), 0);
  EXPECT_EQ(cursor.remaining(), 0u);
  uint32_t v;
  EXPECT_FALSE(cursor.Next(&v));
}

TEST(CsrCodecPostings, SingleAndAdversarialGapListsRoundTrip) {
  const std::vector<std::vector<uint32_t>> lists = {
      {0},
      {std::numeric_limits<uint32_t>::max()},
      {0, std::numeric_limits<uint32_t>::max()},
      {0, 1, 2, 3, 4, 5, 6, 7},               // minimal gaps (gap-1 == 0)
      {126, 253, 254, 382, 510},              // deltas straddling 127/128
      {0, 128, 256, 16384, 2097152, 268435456},  // width-boundary jumps
      {5, 6, 133, 134, 16517}};
  for (const auto& ids : lists) {
    std::vector<uint8_t> arena;
    EncodePostings(ids.data(), ids.size(), &arena);
    PostingsCursor cursor(arena.data(), ids.size());
    EXPECT_EQ(Drain(std::move(cursor)), ids);
  }
}

TEST(CsrCodecPostings, GapMinusOneSavesAByteAtGap128) {
  // The strictly-ascending contract lets the encoder store gap-1: a run
  // with gaps of exactly 128 stays one byte per id.
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 10; ++i) ids.push_back(1 + i * 128);
  std::vector<uint8_t> arena;
  EncodePostings(ids.data(), ids.size(), &arena);
  EXPECT_EQ(arena.size(), ids.size());  // one byte each, incl. first (id 1)
}

TEST(CsrCodecPostings, CursorMatchesMaterializedVectorOnRandomLists) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = rng.Below(64);
    std::vector<uint32_t> ids;
    uint32_t cur = static_cast<uint32_t>(rng.Below(1000));
    for (size_t i = 0; i < n; ++i) {
      ids.push_back(cur);
      // Occasional huge gaps stress multi-byte deltas.
      cur += 1 + static_cast<uint32_t>(
                     rng.Chance(0.1) ? rng.Below(1u << 20) : rng.Below(200));
    }
    std::vector<uint8_t> arena;
    EncodePostings(ids.data(), ids.size(), &arena);

    // Compressed cursor == flat cursor == source list.
    EXPECT_EQ(Drain(PostingsCursor(arena.data(), ids.size())), ids);
    EXPECT_EQ(Drain(PostingsCursor(ids.data(), ids.size())), ids);

    // remaining() counts down in lockstep for both layouts.
    PostingsCursor a(arena.data(), ids.size());
    PostingsCursor b(ids.data(), ids.size());
    uint32_t va, vb;
    while (a.remaining() > 0) {
      ASSERT_EQ(a.remaining(), b.remaining());
      ASSERT_TRUE(a.Next(&va));
      ASSERT_TRUE(b.Next(&vb));
      ASSERT_EQ(va, vb);
    }
    EXPECT_FALSE(a.Next(&va));
    EXPECT_FALSE(b.Next(&vb));
  }
}

TEST(CsrCodecAdjacency, CanonicalListsRoundTrip) {
  // Canonical order: (node, relation, forward) ascending; parallel edges
  // repeat the node id (delta 0), both directions of a relation co-occur.
  const std::vector<std::vector<Neighbor>> lists = {
      {},
      {{0, 0, 0}},
      {{0, 0, 0}, {0, 0, 1}, {0, 7, 1}, {3, 2, 0}, {3, 2, 1}},
      {{5, 1, 1}, {5, 1, 1}, {5, 3, 0}, {200, 0, 1}, {100000, 2, 0}},
      {{kInvalidNode - 1, (1u << 30) - 1, 1}}};
  for (const auto& list : lists) {
    std::vector<uint8_t> arena;
    EncodeAdjacency(list.data(), list.size(), &arena);
    std::vector<Neighbor> got(list.size());
    const uint8_t* end = DecodeAdjacency(arena.data(), list.size(), got.data());
    EXPECT_EQ(end, arena.data() + arena.size());
    ASSERT_EQ(got.size(), list.size());
    for (size_t i = 0; i < list.size(); ++i) {
      EXPECT_EQ(got[i], list[i]) << "entry " << i;
    }
  }
}

TEST(CsrCodecAdjacency, RandomCanonicalListsRoundTrip) {
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = rng.Below(48);
    std::vector<Neighbor> list;
    uint32_t node = static_cast<uint32_t>(rng.Below(100));
    for (size_t i = 0; i < n; ++i) {
      if (rng.Chance(0.7)) node += static_cast<uint32_t>(rng.Below(5000));
      Neighbor nb;
      nb.node = node;
      nb.relation = static_cast<uint32_t>(rng.Below(1u << 16));
      nb.forward = rng.Chance(0.5) ? 1 : 0;
      list.push_back(nb);
    }
    std::vector<uint8_t> arena;
    EncodeAdjacency(list.data(), list.size(), &arena);
    std::vector<Neighbor> got(list.size());
    DecodeAdjacency(arena.data(), list.size(), got.data());
    for (size_t i = 0; i < list.size(); ++i) {
      ASSERT_EQ(got[i], list[i]) << "trial " << trial << " entry " << i;
    }
  }
}

TEST(CsrCodecAdjacency, ArenaIsSmallerThanPodForClusteredLists) {
  // Dense canonical lists (small deltas, small relation ids) are the
  // common case; the arena must beat 8 bytes/entry comfortably there.
  std::vector<Neighbor> list;
  for (uint32_t i = 0; i < 1000; ++i) list.push_back({i * 3, i % 40, i % 2});
  std::vector<uint8_t> arena;
  EncodeAdjacency(list.data(), list.size(), &arena);
  EXPECT_LT(arena.size(), list.size() * sizeof(Neighbor) / 2);
}

}  // namespace
}  // namespace star::graph::csr
