#include "query/query_template.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace star::query {
namespace {

using star::testing::MovieGraph;
using star::testing::SmallRandomGraph;

TEST(MineTemplatesTest, FindsFrequentStructures) {
  const auto g = SmallRandomGraph(5, 200, 600);
  Rng rng(9);
  const auto templates = MineTemplates(g, 10, 2, 500, rng);
  ASSERT_FALSE(templates.empty());
  EXPECT_LE(templates.size(), 10u);
  for (const auto& t : templates) {
    EXPECT_EQ(t.leaves.size(), 2u);
    EXPECT_GE(t.support, 1u);
  }
  // Sorted by support descending.
  for (size_t i = 1; i < templates.size(); ++i) {
    EXPECT_GE(templates[i - 1].support, templates[i].support);
  }
}

TEST(MineTemplatesTest, DeterministicGivenSeed) {
  const auto g = SmallRandomGraph(6, 150, 400);
  Rng rng1(4), rng2(4);
  const auto t1 = MineTemplates(g, 5, 2, 300, rng1);
  const auto t2 = MineTemplates(g, 5, 2, 300, rng2);
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].ToString(), t2[i].ToString());
  }
}

TEST(MineTemplatesTest, EmptyGraph) {
  graph::KnowledgeGraph::Builder b;
  const auto g = std::move(b).Build();
  Rng rng(1);
  EXPECT_TRUE(MineTemplates(g, 5, 2, 100, rng).empty());
}

TEST(InstantiateTemplateTest, ProducesAnchoredStar) {
  const auto g = MovieGraph();
  QueryTemplate tpl;
  tpl.pivot_type = "Actor";
  tpl.leaves = {{"actedIn", "Film"}};
  WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  wo.label_noise = 0.0;
  wo.keep_type = 1.0;
  wo.keep_relation = 1.0;
  Rng rng(3);
  const auto q = InstantiateTemplate(g, tpl, wo, rng, 256);
  ASSERT_EQ(q.node_count(), 2);
  EXPECT_TRUE(q.IsStar());
  EXPECT_EQ(q.node(0).type_name, "Actor");
  EXPECT_EQ(q.node(1).type_name, "Film");
  EXPECT_EQ(q.edge(0).relation, "actedIn");
  // The pivot label comes from an actual actor in the graph.
  EXPECT_NE(q.node(0).label.find(" "), std::string::npos);
}

TEST(InstantiateTemplateTest, ImpossibleTemplateYieldsEmptyOrPartial) {
  const auto g = MovieGraph();
  QueryTemplate tpl;
  tpl.pivot_type = "Spaceship";  // no such type
  tpl.leaves = {{"actedIn", "Film"}};
  WorkloadOptions wo;
  Rng rng(3);
  const auto q = InstantiateTemplate(g, tpl, wo, rng, 64);
  EXPECT_EQ(q.node_count(), 0);
}

TEST(InstantiateTemplateTest, MinedTemplatesInstantiatable) {
  const auto g = SmallRandomGraph(8, 200, 600);
  Rng rng(12);
  const auto templates = MineTemplates(g, 5, 2, 500, rng);
  ASSERT_FALSE(templates.empty());
  WorkloadOptions wo;
  wo.variable_fraction = 0.3;
  size_t instantiated = 0;
  for (const auto& tpl : templates) {
    const auto q = InstantiateTemplate(g, tpl, wo, rng, 256);
    if (q.node_count() >= 2) {
      ++instantiated;
      EXPECT_TRUE(q.IsStar()) << q.ToString();
      EXPECT_FALSE(q.node(0).wildcard);
    }
  }
  EXPECT_GT(instantiated, 0u);
}

TEST(QueryTemplateTest, ToStringReadable) {
  QueryTemplate tpl;
  tpl.pivot_type = "Person";
  tpl.leaves = {{"actedIn", "Film"}, {"", "Award"}};
  const auto s = tpl.ToString();
  EXPECT_NE(s.find("Person"), std::string::npos);
  EXPECT_NE(s.find("actedIn"), std::string::npos);
  EXPECT_NE(s.find("Award"), std::string::npos);
}

}  // namespace
}  // namespace star::query
