// Tests for the query serving layer (src/serve/): admission control,
// deadline handling, the normalized-query result cache, and — the central
// contract — that serving a query through QueryService returns results
// bitwise identical to calling StarFramework::TopK directly.

#include "serve/query_service.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "test_helpers.h"

namespace star::serve {
namespace {

using star::testing::MovieGraph;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

query::QueryGraph BradAwardQuery() {
  query::QueryGraph q;
  const int brad = q.AddNode("Brad");
  const int maker = q.AddWildcardNode("Director");
  const int award = q.AddNode("Award");
  q.AddEdge(brad, maker);
  q.AddEdge(maker, award);
  return q;
}

/// The same query built with the opposite node insertion order — must hit
/// the same cache entry as BradAwardQuery().
query::QueryGraph BradAwardQueryReordered() {
  query::QueryGraph q;
  const int award = q.AddNode("Award");
  const int maker = q.AddWildcardNode("Director");
  const int brad = q.AddNode("Brad");
  q.AddEdge(maker, award);
  q.AddEdge(brad, maker);
  return q;
}

core::StarOptions TestStarOptions(int d = 2) {
  core::StarOptions o;
  o.match = TestConfig(d);
  return o;
}

/// Bitwise match-list equality: same size, same mapping node ids, same
/// score doubles (no epsilon — the cache stores exactly what TopK made).
void ExpectIdenticalMatches(const std::vector<core::GraphMatch>& a,
                            const std::vector<core::GraphMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mapping, b[i].mapping) << "match " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "match " << i;
  }
}

/// Shared warm state for a service, mirroring what a server process owns.
struct ServeFixture {
  graph::KnowledgeGraph graph;
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index;

  explicit ServeFixture(graph::KnowledgeGraph g)
      : graph(std::move(g)), index(graph) {}

  std::vector<core::GraphMatch> Direct(const query::QueryGraph& q, size_t k,
                                       const core::StarOptions& o) {
    core::StarFramework fw(graph, ensemble, &index, o);
    return fw.TopK(q, k);
  }
};

TEST(QueryServiceTest, ServedResultMatchesDirectFramework) {
  ServeFixture fx(MovieGraph());
  ServiceOptions so;
  so.star = TestStarOptions();
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  const auto expected = fx.Direct(BradAwardQuery(), 5, so.star);
  ASSERT_FALSE(expected.empty());

  QueryRequest req;
  req.query = BradAwardQuery();
  req.k = 5;
  const QueryResponse resp = service.Execute(std::move(req));
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_FALSE(resp.cache_hit);
  EXPECT_FALSE(resp.partial);
  ExpectIdenticalMatches(resp.matches, expected);
}

TEST(QueryServiceTest, CacheHitIsBitwiseIdenticalToFreshRun) {
  ServeFixture fx(MovieGraph());
  ServiceOptions so;
  so.star = TestStarOptions();
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  QueryRequest req;
  req.query = BradAwardQuery();
  req.k = 4;
  const QueryResponse first = service.Execute(req);
  const QueryResponse second = service.Execute(req);
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  ExpectIdenticalMatches(second.matches, first.matches);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_DOUBLE_EQ(stats.cache_hit_rate(), 0.5);
}

TEST(QueryServiceTest, CacheKeyIsInsertionOrderInsensitive) {
  ServeFixture fx(MovieGraph());
  ServiceOptions so;
  so.star = TestStarOptions();
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  EXPECT_EQ(service.CacheKey(BradAwardQuery(), 5),
            service.CacheKey(BradAwardQueryReordered(), 5));

  QueryRequest a;
  a.query = BradAwardQuery();
  a.k = 5;
  QueryRequest b;
  b.query = BradAwardQueryReordered();
  b.k = 5;
  const QueryResponse first = service.Execute(std::move(a));
  const QueryResponse second = service.Execute(std::move(b));
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit) << "textually identical query parsed in a "
                                   "different order must hit the cache";
  // The hit must be expressed in the CALLER's node order, not the
  // inserter's: B's node u is A's node 2-u (Award/Director/Brad vs
  // Brad/Director/Award), so the cached mappings come back reversed while
  // the scores pass through bitwise.
  ASSERT_EQ(second.matches.size(), first.matches.size());
  for (size_t i = 0; i < first.matches.size(); ++i) {
    ASSERT_EQ(second.matches[i].mapping.size(), 3u);
    EXPECT_EQ(second.matches[i].score, first.matches[i].score) << "match " << i;
    for (int u = 0; u < 3; ++u) {
      EXPECT_EQ(second.matches[i].mapping[size_t(u)],
                first.matches[i].mapping[size_t(2 - u)])
          << "match " << i << " node " << u;
    }
  }
  // And it must be bitwise identical to actually running the reordered
  // query — the service-level contract callers observe.
  ExpectIdenticalMatches(second.matches,
                         fx.Direct(BradAwardQueryReordered(), 5, so.star));
}

TEST(QueryServiceTest, DifferentKOrCacheOptOutMisses) {
  ServeFixture fx(MovieGraph());
  ServiceOptions so;
  so.star = TestStarOptions();
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  QueryRequest req;
  req.query = BradAwardQuery();
  req.k = 3;
  ASSERT_TRUE(service.Execute(req).status.ok());

  QueryRequest other_k = req;
  other_k.k = 4;
  EXPECT_FALSE(service.Execute(std::move(other_k)).cache_hit);

  QueryRequest opt_out = req;
  opt_out.use_cache = false;
  EXPECT_FALSE(service.Execute(std::move(opt_out)).cache_hit);

  EXPECT_TRUE(service.Execute(req).cache_hit);
}

TEST(QueryServiceTest, InvalidateCacheForcesRecompute) {
  ServeFixture fx(MovieGraph());
  ServiceOptions so;
  so.star = TestStarOptions();
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  QueryRequest req;
  req.query = BradAwardQuery();
  req.k = 5;
  const QueryResponse first = service.Execute(req);
  ASSERT_TRUE(service.Execute(req).cache_hit);

  service.InvalidateCache();
  const QueryResponse recomputed = service.Execute(req);
  EXPECT_FALSE(recomputed.cache_hit) << "generation bump must clear entries";
  ExpectIdenticalMatches(recomputed.matches, first.matches);
  EXPECT_TRUE(service.Execute(req).cache_hit) << "recomputed result re-cached";
}

TEST(QueryServiceTest, StaleGenerationResultNeverLandsInCache) {
  ResultCache cache(8);
  const uint64_t gen = cache.generation();
  cache.Invalidate();
  cache.Insert("key", {core::GraphMatch{}}, {0}, gen);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().stale_drops, 1u);
  cache.Insert("key", {core::GraphMatch{}}, {0}, cache.generation());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QueryServiceTest, LruEvictsOldestEntry) {
  ResultCache cache(2);
  const uint64_t gen = cache.generation();
  cache.Insert("a", {}, {}, gen);
  cache.Insert("b", {}, {}, gen);
  ASSERT_TRUE(cache.Lookup("a") != nullptr);  // refresh a
  cache.Insert("c", {}, {}, gen);             // evicts b
  EXPECT_TRUE(cache.Lookup("a") != nullptr);
  EXPECT_TRUE(cache.Lookup("b") == nullptr);
  EXPECT_TRUE(cache.Lookup("c") != nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(QueryServiceTest, ExpiredDeadlineReturnsPromptlyWithoutGraphWork) {
  ServeFixture fx(MovieGraph());
  ServiceOptions so;
  so.star = TestStarOptions();
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  QueryRequest req;
  req.query = BradAwardQuery();
  req.k = 5;
  req.deadline = Deadline::Expired();
  const QueryResponse resp = service.Execute(std::move(req));
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(resp.partial);
  EXPECT_TRUE(resp.matches.empty());
  // The request was answered before any candidate retrieval: the engine
  // never ran, so its counters are all zero (no full graph scan).
  EXPECT_EQ(resp.framework.search.pivot_candidates, 0u);
  EXPECT_EQ(resp.framework.search.nodes_expanded, 0u);
  EXPECT_EQ(resp.framework.num_stars, 0u);
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

TEST(QueryServiceTest, DeadlineExpiringInQueueSkipsExecution) {
  ServeFixture fx(MovieGraph());
  ServiceOptions so;
  so.star = TestStarOptions();
  // Every execution slot first waits out the deadline below.
  so.before_execute = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  QueryRequest req;
  req.query = BradAwardQuery();
  req.k = 5;
  req.deadline = Deadline::AfterMillis(5);
  const QueryResponse resp = service.Execute(std::move(req));
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(resp.framework.search.pivot_candidates, 0u);
}

TEST(QueryServiceTest, PartialResultsNeverEnterTheCache) {
  ServeFixture fx(MovieGraph());
  ServiceOptions so;
  so.star = TestStarOptions();
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  QueryRequest expired;
  expired.query = BradAwardQuery();
  expired.k = 5;
  expired.deadline = Deadline::Expired();
  ASSERT_EQ(service.Execute(std::move(expired)).status.code(),
            StatusCode::kDeadlineExceeded);

  QueryRequest fresh;
  fresh.query = BradAwardQuery();
  fresh.k = 5;
  const QueryResponse resp = service.Execute(std::move(fresh));
  ASSERT_TRUE(resp.status.ok());
  EXPECT_FALSE(resp.cache_hit) << "an expired request must not have cached";
  ASSERT_FALSE(resp.matches.empty());
}

TEST(QueryServiceTest, InvalidRequestsAreRejectedSynchronously) {
  ServeFixture fx(MovieGraph());
  ServiceOptions so;
  so.star = TestStarOptions();
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  QueryRequest empty;
  empty.k = 5;
  EXPECT_EQ(service.Execute(std::move(empty)).status.code(),
            StatusCode::kInvalidArgument);

  QueryRequest zero_k;
  zero_k.query = BradAwardQuery();
  zero_k.k = 0;
  EXPECT_EQ(service.Execute(std::move(zero_k)).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.stats().rejected_invalid, 2u);
}

TEST(QueryServiceTest, SaturatedServiceRejectsWithOverloaded) {
  ServeFixture fx(MovieGraph());

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  ServiceOptions so;
  so.star = TestStarOptions();
  so.max_inflight = 1;
  so.max_queue = 1;
  // The requests below are identical; without this they would coalesce
  // into one flight instead of exercising the admission limits.
  so.enable_coalescing = false;
  so.before_execute = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };

  std::future<QueryResponse> f1, f2, f3;
  {
    QueryService service(fx.graph, fx.ensemble, &fx.index, so);
    QueryRequest req;
    req.query = BradAwardQuery();
    req.k = 3;

    f1 = service.Submit(req);
    // Wait until the worker holds the only execution slot.
    while (entered.load() == 0) std::this_thread::yield();
    f2 = service.Submit(req);  // fills the one queue slot
    f3 = service.Submit(req);  // beyond capacity: rejected synchronously

    ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "overload rejection must not block on the running query";
    const QueryResponse rejected = f3.get();
    EXPECT_EQ(rejected.status.code(), StatusCode::kOverloaded);
    EXPECT_TRUE(rejected.matches.empty());
    EXPECT_EQ(service.stats().rejected_overload, 1u);

    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    // Service destructor drains f1/f2 before the fixture goes away.
  }
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
}

TEST(QueryServiceTest, ShutdownRejectsNewWorkAndDrainsAdmitted) {
  ServeFixture fx(MovieGraph());
  ServiceOptions so;
  so.star = TestStarOptions();
  QueryRequest req;
  req.query = BradAwardQuery();
  req.k = 3;

  std::future<QueryResponse> admitted;
  {
    QueryService service(fx.graph, fx.ensemble, &fx.index, so);
    admitted = service.Submit(req);
  }  // destructor drains
  ASSERT_EQ(admitted.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(admitted.get().status.ok());
}

// ---------------------------------------------------------------------------
// Concurrency suite. Named *ParallelDeterminism* so it runs under the same
// TSan CI filter as the thread-pool determinism tests.
// ---------------------------------------------------------------------------

class QueryServiceParallelDeterminismTest
    : public ::testing::TestWithParam<bool> {};

TEST_P(QueryServiceParallelDeterminismTest,
       ConcurrentClientsMatchDirectExecution) {
  const bool cache_on = GetParam();
  ServeFixture fx(SmallRandomGraph(11, 30, 60));
  ServiceOptions so;
  so.star = TestStarOptions(1);
  so.max_inflight = 4;
  so.cache_capacity = cache_on ? 64 : 0;
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  // A small mixed workload; expected answers computed serially up front.
  query::WorkloadGenerator wg(fx.graph, 29);
  std::vector<query::QueryGraph> queries;
  std::vector<std::vector<core::GraphMatch>> expected;
  const size_t k = 4;
  for (int i = 0; i < 5; ++i) {
    query::QueryGraph q = wg.RandomStarQuery(3, query::WorkloadOptions{});
    expected.push_back(fx.Direct(q, k, so.star));
    queries.push_back(std::move(q));
  }

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 12;
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const size_t qi = static_cast<size_t>(c + r) % queries.size();
        QueryRequest req;
        req.query = queries[qi];
        req.k = k;
        const QueryResponse resp = service.Execute(std::move(req));
        if (!resp.status.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const auto& want = expected[qi];
        bool same = resp.matches.size() == want.size();
        for (size_t i = 0; same && i < want.size(); ++i) {
          same = resp.matches[i].mapping == want[i].mapping &&
                 resp.matches[i].score == want[i].score;
        }
        if (!same) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "served results must be bitwise identical to direct TopK";
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(stats.completed, stats.submitted);
  if (cache_on) {
    EXPECT_GT(stats.cache_hits, 0u);
  } else {
    EXPECT_EQ(stats.cache_hits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(CacheOnOff, QueryServiceParallelDeterminismTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "CacheOn" : "CacheOff";
                         });

TEST(QueryServiceParallelDeterminismTest, ConcurrentSubmitAndInvalidate) {
  ServeFixture fx(MovieGraph());
  ServiceOptions so;
  so.star = TestStarOptions();
  so.max_inflight = 4;
  QueryService service(fx.graph, fx.ensemble, &fx.index, so);

  const auto expected = fx.Direct(BradAwardQuery(), 5, so.star);

  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load()) {
      service.InvalidateCache();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < 10; ++r) {
        QueryRequest req;
        req.query = BradAwardQuery();
        req.k = 5;
        const QueryResponse resp = service.Execute(std::move(req));
        if (!resp.status.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        bool same = resp.matches.size() == expected.size();
        for (size_t i = 0; same && i < expected.size(); ++i) {
          same = resp.matches[i].mapping == expected[i].mapping &&
                 resp.matches[i].score == expected[i].score;
        }
        if (!same) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  invalidator.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "results must stay exact under concurrent invalidation";
}

}  // namespace
}  // namespace star::serve
