#include "text/ensemble.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "text/synonym_dictionary.h"
#include "text/tfidf.h"
#include "text/type_ontology.h"

namespace star::text {
namespace {

TEST(EnsembleTest, IdenticalLabelsScoreOne) {
  SimilarityEnsemble e;
  EXPECT_DOUBLE_EQ(e.Score("Brad Pitt", "Brad Pitt"), 1.0);
  EXPECT_DOUBLE_EQ(e.Score("brad pitt", "BRAD PITT"), 1.0);
}

TEST(EnsembleTest, ScoreInUnitInterval) {
  SimilarityEnsemble e;
  for (const auto& [a, b] : std::vector<std::pair<std::string, std::string>>{
           {"Brad Pitt", "Brad Garrett"},
           {"", "something"},
           {"J.J. Abrams", "Jeffrey Jacob Abrams"},
           {"42km", "42000m"}}) {
    const double s = e.Score(a, b);
    EXPECT_GE(s, 0.0) << a << " / " << b;
    EXPECT_LE(s, 1.0) << a << " / " << b;
  }
}

TEST(EnsembleTest, CloserStringsScoreHigher) {
  SimilarityEnsemble e;
  EXPECT_GT(e.Score("Brad Pitt", "Brad Pit"), e.Score("Brad Pitt", "Tom Cruise"));
  EXPECT_GT(e.Score("Brad Pitt", "Brad Garrett"),
            e.Score("Brad Pitt", "Xqzw Vbnm"));
}

TEST(EnsembleTest, FeatureVectorShape) {
  SimilarityEnsemble e;
  const auto f = e.Features("abc", "abd");
  EXPECT_EQ(f.size(), static_cast<size_t>(SimilarityEnsemble::kFeatureCount));
  EXPECT_EQ(SimilarityEnsemble::FeatureNames().size(), f.size());
  for (const double x : f) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(EnsembleTest, WeightsNormalized) {
  SimilarityEnsemble e;
  double sum = 0.0;
  for (const double w : e.weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Context-free ensemble gives no weight to context features.
  EXPECT_DOUBLE_EQ(e.weights()[SimilarityEnsemble::kSynonym], 0.0);
  EXPECT_DOUBLE_EQ(e.weights()[SimilarityEnsemble::kTfIdfCosine], 0.0);
  EXPECT_DOUBLE_EQ(e.weights()[SimilarityEnsemble::kTypeOntology], 0.0);
}

TEST(EnsembleTest, SetWeightsClampsAndNormalizes) {
  SimilarityEnsemble e;
  std::vector<double> w(SimilarityEnsemble::kFeatureCount, 0.0);
  w[SimilarityEnsemble::kExact] = 2.0;
  w[SimilarityEnsemble::kLevenshtein] = -5.0;  // clamped to 0
  w[SimilarityEnsemble::kJaro] = 2.0;
  e.SetWeights(w);
  EXPECT_DOUBLE_EQ(e.weights()[SimilarityEnsemble::kExact], 0.5);
  EXPECT_DOUBLE_EQ(e.weights()[SimilarityEnsemble::kLevenshtein], 0.0);
  EXPECT_DOUBLE_EQ(e.weights()[SimilarityEnsemble::kJaro], 0.5);
}

TEST(EnsembleTest, AllZeroWeightsFallBackToUniform) {
  SimilarityEnsemble e;
  e.SetWeights(std::vector<double>(SimilarityEnsemble::kFeatureCount, 0.0));
  double sum = 0.0;
  for (const double w : e.weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(EnsembleTest, SynonymContextRaisesScore) {
  const auto dict = SynonymDictionary::BuiltIn();
  SimilarityEnsemble::Context ctx;
  ctx.synonyms = &dict;
  SimilarityEnsemble with(ctx);
  SimilarityEnsemble without;
  EXPECT_GT(with.Score("teacher", "educator"),
            without.Score("teacher", "educator"));
}

TEST(EnsembleTest, OntologyContextUsesTypes) {
  const auto onto = TypeOntology::BuiltIn();
  SimilarityEnsemble::Context ctx;
  ctx.ontology = &onto;
  SimilarityEnsemble e(ctx);
  const int actor = onto.FindType("Actor");
  const int director = onto.FindType("Director");
  const int city = onto.FindType("City");
  EXPECT_GT(e.Score("X", "Y", actor, director), e.Score("X", "Y", actor, city));
}

TEST(EnsembleTest, TfIdfContext) {
  TfIdfModel model;
  model.AddDocument("rare gem");
  model.AddDocument("common word");
  model.AddDocument("common thing");
  model.Finalize();
  SimilarityEnsemble::Context ctx;
  ctx.tfidf = &model;
  SimilarityEnsemble e(ctx);
  EXPECT_GT(e.Score("rare stone", "rare gem"), 0.0);
}

// The optimized Score() fast path must be exactly the weighted feature sum.
TEST(EnsembleTest, FastPathMatchesFeatures) {
  const auto dict = SynonymDictionary::BuiltIn();
  const auto onto = TypeOntology::BuiltIn();
  TfIdfModel tfidf;
  tfidf.AddDocument("brad pitt actor");
  tfidf.AddDocument("golden globe award");
  tfidf.AddDocument("los angeles film festival");
  tfidf.Finalize();
  SimilarityEnsemble::Context ctx;
  ctx.synonyms = &dict;
  ctx.ontology = &onto;
  ctx.tfidf = &tfidf;
  SimilarityEnsemble e(ctx);

  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"Brad Pitt", "Brad Garrett"},
      {"Brad Pitt", "brad pitt"},
      {"", ""},
      {"", "x"},
      {"   ", " "},
      {"J.J. Abrams", "Jeffrey Jacob Abrams"},
      {"teacher", "educator"},
      {"42km", "42000 m"},
      {"Los Angeles", "Los Angeles Lakers"},
      {"abc", "cba"},
      {"Film Festival", "festival of films"},
      {"Robert", "Rupert"},
  };
  const int actor = onto.FindType("Actor");
  const int director = onto.FindType("Director");
  for (const auto& [a, b] : pairs) {
    const auto f = e.Features(a, b, actor, director);
    double expected = 0.0;
    for (int i = 0; i < SimilarityEnsemble::kFeatureCount; ++i) {
      expected += e.weights()[i] * f[i];
    }
    // Identical-ignoring-case pairs short-circuit to exactly 1.
    if (!a.empty() && a.size() == b.size() &&
        ToLower(a) == ToLower(b)) {
      expected = 1.0;
    }
    EXPECT_NEAR(e.Score(a, b, actor, director), expected, 1e-12)
        << "a='" << a << "' b='" << b << "'";
  }
}

TEST(EnsembleTest, FastPathMatchesFeaturesRandomized) {
  SimilarityEnsemble e;
  Rng rng(99);
  const auto make_string = [&]() {
    std::string s;
    const size_t len = rng.Below(16);
    for (size_t i = 0; i < len; ++i) {
      const char* alphabet = "abcDEF 12._-";
      s.push_back(alphabet[rng.Below(12)]);
    }
    return s;
  };
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = make_string();
    const std::string b = make_string();
    const auto f = e.Features(a, b);
    double expected = 0.0;
    for (int i = 0; i < SimilarityEnsemble::kFeatureCount; ++i) {
      expected += e.weights()[i] * f[i];
    }
    if (!a.empty() && a.size() == b.size() && ToLower(a) == ToLower(b)) {
      expected = 1.0;
    }
    EXPECT_NEAR(e.Score(a, b), expected, 1e-12)
        << "a='" << a << "' b='" << b << "'";
  }
}

TEST(EnsembleTest, PaperTransformationExamples) {
  const auto dict = SynonymDictionary::BuiltIn();
  SimilarityEnsemble::Context ctx;
  ctx.synonyms = &dict;
  SimilarityEnsemble e(ctx);
  // "J.J. Abrams" ~ "Jeffrey Jacob Abrams" (abbreviation/initials).
  EXPECT_GT(e.Score("J.J. Abrams", "Jeffrey Jacob Abrams"), 0.2);
  // "teacher" ~ "educator" (synonym) clearly beats an unrelated pair.
  // (Under uniform weights the margin is modest; learning the weights is
  // what sharpens it — see test_weight_learning.cc.)
  EXPECT_GT(e.Score("teacher", "educator"),
            1.5 * e.Score("teacher", "volcano"));
  EXPECT_LT(e.Score("teacher", "volcano"), 0.15);
}

}  // namespace
}  // namespace star::text
