#include "graph/knowledge_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace star::graph {
namespace {

TEST(KnowledgeGraphTest, BuilderBasics) {
  KnowledgeGraph::Builder b;
  const NodeId a = b.AddNode("Alpha", "Person");
  const NodeId c = b.AddNode("Beta", "Person");
  const NodeId d = b.AddNode("Gamma");
  b.AddEdge(a, c, "knows");
  b.AddEdge(c, d, "knows");
  b.AddEdge(a, d, "likes");
  const auto g = std::move(b).Build();

  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.NodeLabel(a), "Alpha");
  EXPECT_EQ(g.TypeName(g.NodeType(a)), "Person");
  EXPECT_EQ(g.NodeType(d), -1);
  EXPECT_EQ(g.TypeName(-1), "");
  EXPECT_EQ(g.type_count(), 1u);      // "Person" interned once
  EXPECT_EQ(g.relation_count(), 2u);  // knows, likes
}

TEST(KnowledgeGraphTest, UndirectedAdjacencyWithDirectionFlags) {
  KnowledgeGraph::Builder b;
  const NodeId a = b.AddNode("A");
  const NodeId c = b.AddNode("B");
  b.AddEdge(a, c, "r");
  const auto g = std::move(b).Build();
  ASSERT_EQ(g.Degree(a), 1u);
  ASSERT_EQ(g.Degree(c), 1u);
  EXPECT_EQ(g.Neighbors(a)[0].node, c);
  EXPECT_TRUE(g.Neighbors(a)[0].forward);
  EXPECT_EQ(g.Neighbors(c)[0].node, a);
  EXPECT_FALSE(g.Neighbors(c)[0].forward);
  EXPECT_EQ(g.RelationName(g.Neighbors(a)[0].relation), "r");
}

TEST(KnowledgeGraphTest, EdgeAccessors) {
  KnowledgeGraph::Builder b;
  const NodeId a = b.AddNode("A");
  const NodeId c = b.AddNode("B");
  const EdgeId e = b.AddEdge(a, c, "rel");
  const auto g = std::move(b).Build();
  EXPECT_EQ(g.EdgeSrc(e), a);
  EXPECT_EQ(g.EdgeDst(e), c);
  EXPECT_EQ(g.RelationName(g.EdgeRelation(e)), "rel");
}

TEST(KnowledgeGraphTest, HasEdgeEitherDirection) {
  const auto g = star::testing::MovieGraph();
  EXPECT_TRUE(g.HasEdge(0, 4));  // Brad Pitt -> Troy
  EXPECT_TRUE(g.HasEdge(4, 0));  // reverse view
  EXPECT_FALSE(g.HasEdge(0, 6));  // Brad Pitt vs Academy Award: 2 hops
}

TEST(KnowledgeGraphTest, MaxDegree) {
  const auto g = star::testing::MovieGraph();
  size_t expected = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    expected = std::max(expected, g.Degree(v));
  }
  EXPECT_EQ(g.MaxDegree(), expected);
  EXPECT_GT(g.MaxDegree(), 2u);
}

TEST(KnowledgeGraphTest, FindTypeAndRelationIds) {
  const auto g = star::testing::MovieGraph();
  EXPECT_GE(g.FindTypeId("Actor"), 0);
  EXPECT_EQ(g.FindTypeId("Spaceship"), -1);
  EXPECT_GE(g.FindRelationId("actedIn"), 0);
  EXPECT_EQ(g.FindRelationId("teleportedTo"), -1);
}

TEST(KnowledgeGraphTest, SelfLoopAndMultiEdge) {
  KnowledgeGraph::Builder b;
  const NodeId a = b.AddNode("A");
  const NodeId c = b.AddNode("B");
  b.AddEdge(a, c, "r1");
  b.AddEdge(a, c, "r2");  // parallel edge, different relation
  const auto g = std::move(b).Build();
  EXPECT_EQ(g.Degree(a), 2u);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(KnowledgeGraphTest, EmptyGraph) {
  KnowledgeGraph::Builder b;
  const auto g = std::move(b).Build();
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

}  // namespace
}  // namespace star::graph
