#include "graph/label_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace star::graph {
namespace {

TEST(LabelIndexTest, TokenPostings) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  const auto& brad = index.Postings("brad");
  ASSERT_EQ(brad.size(), 2u);  // Brad Pitt, Brad Garrett
  EXPECT_EQ(g.NodeLabel(brad[0]), "Brad Pitt");
  EXPECT_EQ(g.NodeLabel(brad[1]), "Brad Garrett");
  EXPECT_TRUE(index.Postings("nonexistent").empty());
}

TEST(LabelIndexTest, CandidatesByLabelUnionsTokens) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  // "Brad Award" pulls both Brads and both awards.
  const auto c = index.CandidatesByLabel("Brad Award");
  EXPECT_EQ(c.size(), 4u);
  // Deduplicated and sorted.
  EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
  EXPECT_EQ(std::adjacent_find(c.begin(), c.end()), c.end());
}

TEST(LabelIndexTest, CaseAndDelimiterInsensitive) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  EXPECT_EQ(index.CandidatesByLabel("BRAD").size(), 2u);
  EXPECT_EQ(index.CandidatesByLabel("brad-pitt").size(), 2u);
}

TEST(LabelIndexTest, CandidatesByType) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  const auto actors = index.CandidatesByType(g.FindTypeId("Actor"));
  EXPECT_EQ(actors.size(), 3u);  // Brad x2, Sophie
  EXPECT_TRUE(index.CandidatesByType(-1).empty());
  EXPECT_TRUE(index.CandidatesByType(9999).empty());
}

TEST(LabelIndexTest, CombinedCandidates) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  // Label tokens + type postings unioned.
  const auto c = index.Candidates("Troy", g.FindTypeId("Film"));
  EXPECT_EQ(c.size(), 2u);  // Troy + Boyhood (type Film)
}

TEST(LabelIndexTest, EmptyLabelNoCandidates) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  EXPECT_TRUE(index.CandidatesByLabel("").empty());
}

TEST(LabelIndexTest, FuzzyTokensRecallTypos) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  const auto similar = index.FuzzyTokens("lnklater");
  EXPECT_TRUE(std::find(similar.begin(), similar.end(), "linklater") !=
              similar.end());
  EXPECT_TRUE(index.FuzzyTokens("zzzzqq").empty());
}

TEST(LabelIndexTest, CandidatesFallBackToFuzzy) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  // "Bradd" has no exact posting but trigram-matches "brad".
  const auto c = index.CandidatesByLabel("Bradd");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(g.NodeLabel(c[0]), "Brad Pitt");
}

TEST(LabelIndexTest, ExactTokenSkipsFuzzyExpansion) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  // "troy" has an exact posting; fuzzy expansion must not add noise.
  EXPECT_EQ(index.CandidatesByLabel("Troy").size(), 1u);
}

TEST(LabelIndexTest, RankedCandidatesPreferRareTokens) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  // "Golden Award" hits both awards via "award" and the Golden Globe via
  // the rarer "golden"; with cap 1 the double-hit (and rarer) Golden Globe
  // must win.
  const auto top = index.RankedCandidates("Golden Award", -1, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(g.NodeLabel(top[0]), "Golden Globe Award");
}

TEST(LabelIndexTest, RankedCandidatesUncappedEqualsUnion) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  const auto ranked = index.RankedCandidates("Brad Award", -1, 0);
  const auto plain = index.CandidatesByLabel("Brad Award");
  EXPECT_EQ(ranked, plain);
}

TEST(LabelIndexTest, RankedCandidatesIncludeTypeOnlyHits) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  const auto all =
      index.RankedCandidates("Troy", g.FindTypeId("Film"), 0);
  EXPECT_EQ(all.size(), 2u);  // Troy + Boyhood via type
  // With cap 1 the token hit outranks the epsilon-weight type hit.
  const auto top = index.RankedCandidates("Troy", g.FindTypeId("Film"), 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(g.NodeLabel(top[0]), "Troy");
}

TEST(LabelIndexTest, RankedCandidatesDeterministicTieTruncation) {
  // Seven nodes share the identical label, so every candidate carries the
  // exact same rarity weight. Truncation must still be deterministic: ties
  // at the cap boundary retain the smallest node ids, independent of hash
  // map iteration order.
  KnowledgeGraph::Builder b;
  for (int i = 0; i < 7; ++i) b.AddNode("alpha", "Thing");
  const auto g = std::move(b).Build();
  const LabelIndex index(g);
  const auto top = index.RankedCandidates("alpha", -1, 3);
  const std::vector<NodeId> expected = {0, 1, 2};
  EXPECT_EQ(top, expected);
  // Stable under repetition (no per-call nondeterminism).
  EXPECT_EQ(index.RankedCandidates("alpha", -1, 3), expected);
}

TEST(LabelIndexTest, RankedCandidatesRarityBeatsIdAtCap) {
  // All nodes match "alpha"; only the last one carries the rare token
  // "bravo". Rarity weight must outrank the smaller ids under cap 1.
  KnowledgeGraph::Builder b;
  for (int i = 0; i < 4; ++i) b.AddNode("alpha", "Thing");
  b.AddNode("alpha bravo", "Thing");
  const auto g = std::move(b).Build();
  const LabelIndex index(g);
  const auto top = index.RankedCandidates("alpha bravo", -1, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(g.NodeLabel(top[0]), "alpha bravo");
}

TEST(LabelIndexTest, TokenCount) {
  const auto g = star::testing::MovieGraph();
  const LabelIndex index(g);
  EXPECT_GT(index.token_count(), 10u);
}

}  // namespace
}  // namespace star::graph
