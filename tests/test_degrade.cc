// Tests for graceful degradation (src/serve/degrade.*, query_rewrite.*):
// the shedding ladder's level choice and knob application, the certified
// quality statement BuildCertificate derives from a finished run, the
// deterministic sampling predicate, typo-tolerant label rewriting, and the
// service-level kDeadlineExceeded contract (ordered prefix with ties,
// single-process and sharded, each response carrying a sound certificate).

#include "serve/degrade.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scoring/query_scorer.h"
#include "serve/query_rewrite.h"
#include "serve/query_service.h"
#include "test_helpers.h"

namespace star::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using star::testing::MovieGraph;
using star::testing::TestConfig;

// ---------------------------------------------------------------------------
// ChooseDegradationLevel.
// ---------------------------------------------------------------------------

TEST(DegradeLevelTest, DisabledPolicyNeverDegrades) {
  DegradePolicy p;  // enable = false
  EXPECT_EQ(ChooseDegradationLevel(p, 64, 64), 0);
  EXPECT_EQ(ChooseDegradationLevel(p, 0, 64), 0);
}

TEST(DegradeLevelTest, LevelsEngageAtTheConfiguredOccupancies) {
  DegradePolicy p;
  p.enable = true;
  EXPECT_EQ(ChooseDegradationLevel(p, 0, 100), 0);
  EXPECT_EQ(ChooseDegradationLevel(p, 49, 100), 0);
  EXPECT_EQ(ChooseDegradationLevel(p, 50, 100), 1);
  EXPECT_EQ(ChooseDegradationLevel(p, 74, 100), 1);
  EXPECT_EQ(ChooseDegradationLevel(p, 75, 100), 2);
  EXPECT_EQ(ChooseDegradationLevel(p, 89, 100), 2);
  EXPECT_EQ(ChooseDegradationLevel(p, 90, 100), 3);
  EXPECT_EQ(ChooseDegradationLevel(p, 100, 100), 3);
}

TEST(DegradeLevelTest, MonotoneInQueueDepthAndSafeOnZeroCapacity) {
  DegradePolicy p;
  p.enable = true;
  int prev = 0;
  for (size_t depth = 0; depth <= 64; ++depth) {
    const int level = ChooseDegradationLevel(p, depth, 64);
    EXPECT_GE(level, prev) << "depth " << depth;
    prev = level;
  }
  EXPECT_EQ(ChooseDegradationLevel(p, 10, 0), 0);
}

// ---------------------------------------------------------------------------
// ApplyDegradation.
// ---------------------------------------------------------------------------

TEST(ApplyDegradationTest, LevelZeroIsANoOp) {
  DegradePolicy p;
  core::StarOptions star;
  star.match = TestConfig(2);
  const core::StarOptions before = star;
  ApplyDegradation(p, 0, &star);
  EXPECT_EQ(star.match.max_candidates, before.match.max_candidates);
  EXPECT_EQ(star.match.sample_rate, before.match.sample_rate);
  EXPECT_EQ(star.match.d, before.match.d);
}

TEST(ApplyDegradationTest, LevelsComposeCumulatively) {
  DegradePolicy p;
  p.l1_max_candidates = 8;
  p.l2_sample_rate = 0.25;
  p.sample_seed = 99;

  core::StarOptions l1;
  l1.match = TestConfig(2);
  ApplyDegradation(p, 1, &l1);
  EXPECT_EQ(l1.match.max_candidates, 8u);
  EXPECT_EQ(l1.match.sample_rate, 1.0);
  EXPECT_EQ(l1.match.d, 2);

  core::StarOptions l2;
  l2.match = TestConfig(2);
  ApplyDegradation(p, 2, &l2);
  EXPECT_EQ(l2.match.max_candidates, 8u);
  EXPECT_EQ(l2.match.sample_rate, 0.25);
  EXPECT_EQ(l2.match.sample_seed, 99u);
  EXPECT_EQ(l2.match.d, 2);

  core::StarOptions l3;
  l3.match = TestConfig(2);
  ApplyDegradation(p, 3, &l3);
  EXPECT_EQ(l3.match.max_candidates, 8u);
  EXPECT_EQ(l3.match.sample_rate, 0.25);
  EXPECT_EQ(l3.match.d, 1);
}

TEST(ApplyDegradationTest, OnlyTightensNeverLoosens) {
  DegradePolicy p;
  p.l1_max_candidates = 100;
  p.l2_sample_rate = 0.9;

  core::StarOptions star;
  star.match = TestConfig(1);
  star.match.max_candidates = 10;   // already tighter than the policy
  star.match.sample_rate = 0.5;     // already sparser than the policy
  ApplyDegradation(p, 3, &star);
  EXPECT_EQ(star.match.max_candidates, 10u);
  EXPECT_EQ(star.match.sample_rate, 0.5);
  EXPECT_EQ(star.match.d, 1);
}

// ---------------------------------------------------------------------------
// QueryScorer::SampleKeep (the level-2 retrieval-pool predicate).
// ---------------------------------------------------------------------------

TEST(SampleKeepTest, DeterministicAndSeedSensitive) {
  int kept = 0;
  int diff = 0;
  for (graph::NodeId v = 0; v < 4096; ++v) {
    const bool a = scoring::QueryScorer::SampleKeep(7, v, 0.5);
    EXPECT_EQ(a, scoring::QueryScorer::SampleKeep(7, v, 0.5)) << v;
    if (a) ++kept;
    if (a != scoring::QueryScorer::SampleKeep(8, v, 0.5)) ++diff;
  }
  // The keep fraction tracks the rate and the predicate actually depends
  // on the seed (loose bounds: 4096 fair coin flips).
  EXPECT_GT(kept, 4096 / 2 - 300);
  EXPECT_LT(kept, 4096 / 2 + 300);
  EXPECT_GT(diff, 0);
}

TEST(SampleKeepTest, BoundaryRates) {
  for (graph::NodeId v = 0; v < 256; ++v) {
    EXPECT_TRUE(scoring::QueryScorer::SampleKeep(3, v, 1.0));
    EXPECT_FALSE(scoring::QueryScorer::SampleKeep(3, v, 0.0));
  }
}

// ---------------------------------------------------------------------------
// BuildCertificate. Stats are hand-built so every branch is reachable
// without staging a particular engine execution.
// ---------------------------------------------------------------------------

/// Star query: center "a" with two leaves. IsStar() holds, so degraded
/// certificates may claim a non-empty guaranteed prefix.
query::QueryGraph StarQuery() {
  query::QueryGraph q;
  const int a = q.AddNode("a");
  q.AddEdge(a, q.AddNode("b"));
  q.AddEdge(a, q.AddNode("c"));
  return q;
}

core::StarOptions Opts(int d = 1, size_t max_candidates = 0) {
  core::StarOptions o;
  o.match = TestConfig(d);
  o.match.max_candidates = max_candidates;
  return o;
}

core::NodeCandidateInfo ComputedList(double top, double cut,
                                     bool cut_applied) {
  core::NodeCandidateInfo info;
  info.computed = true;
  info.top_score = top;
  info.cut_score = cut;
  info.cut_applied = cut_applied;
  return info;
}

std::vector<core::GraphMatch> Matches(std::initializer_list<double> scores) {
  std::vector<core::GraphMatch> out;
  for (const double s : scores) {
    core::GraphMatch m;
    m.score = s;
    out.push_back(m);
  }
  return out;
}

TEST(BuildCertificateTest, LevelZeroCompleteRunIsExact) {
  const auto q = StarQuery();
  core::FrameworkStats stats;
  stats.residual_bound = -kInf;
  const auto matches = Matches({4.0, 3.0});
  const auto cert =
      BuildCertificate(q, Opts(), Opts(), 0, stats, matches);
  EXPECT_EQ(cert.degradation_level, 0);
  EXPECT_EQ(cert.guaranteed_prefix, 2u);
  EXPECT_EQ(cert.score_bound, -kInf);
  EXPECT_TRUE(cert.exact);
}

TEST(BuildCertificateTest, LevelZeroFiniteResidualBoundsRankKPlusOne) {
  const auto q = StarQuery();
  core::FrameworkStats stats;
  stats.residual_bound = 2.5;  // live pipeline threshold at the stop
  const auto cert =
      BuildCertificate(q, Opts(), Opts(), 0, stats, Matches({4.0, 3.0}));
  EXPECT_EQ(cert.guaranteed_prefix, 2u);
  EXPECT_EQ(cert.score_bound, 2.5);
  // A complete (uncancelled) run IS the exact top-k; the finite residual
  // only says unreturned matches exist and caps what rank k+1 can score.
  EXPECT_TRUE(cert.exact);
}

TEST(BuildCertificateTest, CancelledRunIsNeverExact) {
  const auto q = StarQuery();
  core::FrameworkStats stats;
  stats.residual_bound = -kInf;
  stats.cancelled = true;
  const auto cert =
      BuildCertificate(q, Opts(), Opts(), 0, stats, Matches({4.0}));
  EXPECT_FALSE(cert.exact);
  EXPECT_EQ(cert.guaranteed_prefix, 1u);
}

TEST(BuildCertificateTest, DegradedRunWithoutDigestsClaimsNothing) {
  const auto q = StarQuery();
  core::FrameworkStats stats;  // node_candidates empty: run never scored
  const auto cert =
      BuildCertificate(q, Opts(), Opts(1, 4), 1, stats, {});
  EXPECT_EQ(cert.degradation_level, 1);
  EXPECT_EQ(cert.guaranteed_prefix, 0u);
  EXPECT_EQ(cert.score_bound, kInf);
  EXPECT_FALSE(cert.exact);
}

TEST(BuildCertificateTest, UnbittenKnobsKeepLevelZeroSemantics) {
  // The tightened cutoff never filled any list: the effective search
  // space IS the nominal one, so the certificate falls back to the
  // engine's own (complete-run) statement.
  const auto q = StarQuery();
  core::FrameworkStats stats;
  stats.residual_bound = -kInf;
  stats.node_candidates = {ComputedList(0.9, 0.4, false),
                           ComputedList(0.8, 0.8, false),
                           ComputedList(0.7, 0.3, false)};
  const auto cert = BuildCertificate(q, Opts(), Opts(1, 4), 1, stats,
                                     Matches({2.0, 1.5}));
  EXPECT_EQ(cert.guaranteed_prefix, 2u);
  EXPECT_EQ(cert.score_bound, -kInf);
  EXPECT_TRUE(cert.exact);
}

TEST(BuildCertificateTest, TightenedCutoffBoundsDroppedMatches) {
  const auto q = StarQuery();  // 3 nodes, 2 edges
  core::FrameworkStats stats;
  stats.residual_bound = -kInf;
  // Node 0's list hit the cutoff (cut boundary 0.4); the others did not.
  stats.node_candidates = {ComputedList(1.0, 0.4, true),
                           ComputedList(0.8, 0.8, false),
                           ComputedList(0.6, 0.3, false)};
  const auto matches = Matches({4.2, 3.0, 1.0});
  const auto cert =
      BuildCertificate(q, Opts(), Opts(1, 4), 1, stats, matches);

  // Any nominal match missing from the degraded space maps node 0 to a
  // dropped candidate: <= 0.4 there, <= the kept tops elsewhere, plus the
  // two edges' unit caps.
  const double expected = 0.4 + 0.8 + 0.6 + 2.0;
  EXPECT_GE(cert.score_bound, expected);
  EXPECT_LE(cert.score_bound, expected + 1e-6) << "slack should be tiny";
  // 4.2 > bound and strictly descending => guaranteed; 3.0 < bound stops
  // the run there, and the bound then dominates the unguaranteed tail.
  EXPECT_EQ(cert.guaranteed_prefix, 1u);
  EXPECT_FALSE(cert.exact);
}

TEST(BuildCertificateTest, TrailingTieIsNeverGuaranteed) {
  const auto q = StarQuery();
  core::FrameworkStats stats;
  stats.residual_bound = -kInf;
  stats.node_candidates = {ComputedList(1.0, 0.1, true),
                           ComputedList(0.2, 0.2, false),
                           ComputedList(0.2, 0.2, false)};
  // Both returned scores clear the drop bound but tie with each other:
  // the nominal run could legally order them either way, so neither may
  // be certified.
  const auto cert = BuildCertificate(q, Opts(), Opts(1, 4), 1, stats,
                                     Matches({4.0, 4.0}));
  EXPECT_EQ(cert.guaranteed_prefix, 0u);
  EXPECT_GE(cert.score_bound, 4.0);
}

TEST(BuildCertificateTest, SampledNodePoisonsAllCaps) {
  const auto q = StarQuery();
  core::FrameworkStats stats;
  stats.residual_bound = -kInf;
  auto sampled = ComputedList(0.5, 0.2, false);
  sampled.sampled = true;
  stats.node_candidates = {sampled, ComputedList(0.8, 0.8, false),
                           ComputedList(0.6, 0.3, false)};
  core::StarOptions effective = Opts(1, 4);
  effective.match.sample_rate = 0.5;
  const auto cert = BuildCertificate(q, Opts(), effective, 2, stats,
                                     Matches({4.0, 3.9}));
  // Sampling drops pool nodes score-blind: the missing nominal best may
  // have scored a perfect 1.0 at the sampled node.
  EXPECT_GE(cert.score_bound, 1.0 + 0.8 + 0.6 + 2.0);
}

TEST(BuildCertificateTest, WildcardUnderTightenedCutIsADropSource) {
  // Regression: the engine truncates wildcard universes under a candidate
  // cutoff too (all F_N tie at wildcard_node_score, the id-ascending head
  // survives). A certificate that ignored this called degraded runs exact
  // while the cutoff had silently dropped the true best match.
  query::QueryGraph q;
  const int a = q.AddNode("a");
  q.AddEdge(a, q.AddWildcardNode(""));  // untyped: no list digest at all
  core::FrameworkStats stats;
  stats.residual_bound = -kInf;
  stats.node_candidates.resize(2);
  stats.node_candidates[0] = ComputedList(0.9, 0.9, false);
  stats.node_candidates[1].wildcard = true;  // computed stays false

  const auto cert = BuildCertificate(q, Opts(), Opts(1, 4), 1, stats,
                                     Matches({2.8}));
  EXPECT_FALSE(cert.exact);
  EXPECT_GE(cert.score_bound, 0.9 + 1.0 + 1.0)
      << "a dropped wildcard candidate can still realize the full score";
}

TEST(BuildCertificateTest, ReducedDCertifiesOnlyTheGlobalCap) {
  const auto q = StarQuery();
  core::FrameworkStats stats;
  stats.residual_bound = -kInf;
  stats.node_candidates = {ComputedList(0.9, 0.4, false),
                           ComputedList(0.8, 0.8, false),
                           ComputedList(0.7, 0.3, false)};
  core::StarOptions nominal = Opts(2);
  core::StarOptions effective = Opts(1, 4);
  const auto cert = BuildCertificate(q, nominal, effective, 3, stats,
                                     Matches({4.0}));
  // d-reduction hides whole matches without touching any candidate list,
  // so no per-node drop argument applies and nothing can be guaranteed.
  EXPECT_EQ(cert.guaranteed_prefix, 0u);
  EXPECT_GE(cert.score_bound, 0.9 + 0.8 + 0.7 + 2.0);
  EXPECT_LT(cert.score_bound, kInf);
}

TEST(BuildCertificateTest, NonStarQueryNeverClaimsAPrefix) {
  // A 4-node path decomposes into stars; the degraded decomposition may
  // differ from the nominal one, so bitwise prefix equality is unprovable.
  query::QueryGraph q;
  const int a = q.AddNode("a");
  const int b = q.AddNode("b");
  const int c = q.AddNode("c");
  const int d = q.AddNode("d");
  q.AddEdge(a, b);
  q.AddEdge(b, c);
  q.AddEdge(c, d);
  ASSERT_FALSE(q.IsStar());

  core::FrameworkStats stats;
  stats.residual_bound = -kInf;
  stats.node_candidates.assign(4, ComputedList(0.9, 0.4, true));
  const auto cert = BuildCertificate(q, Opts(), Opts(1, 4), 1, stats,
                                     Matches({5.0}));
  EXPECT_EQ(cert.guaranteed_prefix, 0u);
  EXPECT_LT(cert.score_bound, kInf);
}

// ---------------------------------------------------------------------------
// Typo-tolerant label rewriting.
// ---------------------------------------------------------------------------

TEST(FuzzyRewriteTest, CorrectsUnknownTokensAndReportsThem) {
  const auto g = MovieGraph();
  graph::LabelIndex index(g);

  query::QueryGraph q;
  const int n = q.AddNode("Bradd Pitt");  // "bradd" has no posting
  q.AddEdge(n, q.AddWildcardNode("Film"));

  const auto rewrites = RewriteFuzzyLabels(index, &q);
  ASSERT_EQ(rewrites.size(), 1u);
  EXPECT_EQ(rewrites[0].node, n);
  EXPECT_EQ(rewrites[0].from, "Bradd Pitt");
  EXPECT_EQ(rewrites[0].to, q.node(n).label);
  EXPECT_NE(q.node(n).label.find("brad"), std::string::npos)
      << "corrected to: " << q.node(n).label;
  EXPECT_NE(q.node(n).label.find("pitt"), std::string::npos);
}

TEST(FuzzyRewriteTest, KnownLabelsPassThroughUnchanged) {
  const auto g = MovieGraph();
  graph::LabelIndex index(g);
  query::QueryGraph q;
  q.AddNode("brad pitt");  // already in index normal form
  EXPECT_TRUE(RewriteFuzzyLabels(index, &q).empty());
  EXPECT_EQ(q.node(0).label, "brad pitt");
}

TEST(FuzzyRewriteTest, HopelessTokensStayAsSubmitted) {
  const auto g = MovieGraph();
  graph::LabelIndex index(g);
  query::QueryGraph q;
  q.AddNode("zzqqxxyyww");  // shares no trigram with any graph token
  EXPECT_TRUE(RewriteFuzzyLabels(index, &q).empty());
}

TEST(FuzzyRewriteTest, WildcardNodesAreNeverTouched) {
  const auto g = MovieGraph();
  graph::LabelIndex index(g);
  query::QueryGraph q;
  q.AddWildcardNode("Film");
  EXPECT_TRUE(RewriteFuzzyLabels(index, &q).empty());
}

// ---------------------------------------------------------------------------
// Service-level deadline contract: a kDeadlineExceeded response is a
// bitwise ordered prefix of the exact answer — including through exact
// score ties — and its certificate bound dominates every dropped match.
// Pinned for the single-process backend and the 2- and 4-shard ones.
// ---------------------------------------------------------------------------

/// Six bitwise-identical star subgraphs: every ("Star Alpha" -> "Planet
/// Beta") match scores exactly the same, so the top-k is one big tie
/// group and any truncation point lands inside it.
graph::KnowledgeGraph TwinGraph() {
  graph::KnowledgeGraph::Builder b;
  for (int i = 0; i < 6; ++i) {
    const auto star = b.AddNode("Star Alpha", "Body");
    const auto planet = b.AddNode("Planet Beta", "Body");
    b.AddEdge(star, planet, "orbits");
  }
  return std::move(b).Build();
}

query::QueryGraph TwinQuery() {
  query::QueryGraph q;
  const int star = q.AddNode("Star Alpha");
  q.AddEdge(star, q.AddNode("Planet Beta"));
  return q;
}

bool IsBitwisePrefix(const std::vector<core::GraphMatch>& prefix,
                     const std::vector<core::GraphMatch>& full) {
  if (prefix.size() > full.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i].mapping != full[i].mapping ||
        prefix[i].score != full[i].score) {
      return false;
    }
  }
  return true;
}

TEST(DeadlineContractTest, TruncatedResponseIsACertifiedOrderedPrefix) {
  const auto g = TwinGraph();
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);

  for (const size_t shards : {size_t{0}, size_t{2}, size_t{4}}) {
    ServiceOptions so;
    so.star.match = TestConfig(1);
    so.shards = shards;
    QueryService service(g, ensemble, &index, so);

    QueryRequest ref;
    ref.query = TwinQuery();
    ref.k = 4;
    const QueryResponse full = service.Execute(ref);
    ASSERT_TRUE(full.status.ok()) << "shards=" << shards;
    ASSERT_EQ(full.matches.size(), 4u) << "shards=" << shards;
    // The fixture delivers what it promises: a tie group at the boundary.
    EXPECT_EQ(full.matches[0].score, full.matches[3].score);
    EXPECT_TRUE(full.certificate.exact);
    EXPECT_EQ(full.certificate.guaranteed_prefix, 4u);

    // Sweep deadlines from instantly-expired to comfortable. Wherever the
    // expiry lands — pre-admission, in queue, mid-run, after completion —
    // the response must be a bitwise prefix with a sound certificate.
    for (const double ms : {0.0, 0.01, 0.05, 0.2, 1.0, 50.0}) {
      QueryRequest req;
      req.query = TwinQuery();
      req.k = 4;
      req.use_cache = false;  // force fresh execution every iteration
      req.deadline = ms == 0.0 ? Deadline::Expired() : Deadline::AfterMillis(ms);
      const QueryResponse resp = service.Execute(std::move(req));
      const std::string ctx =
          "shards=" + std::to_string(shards) + " ms=" + std::to_string(ms);
      if (resp.status.ok()) {
        EXPECT_TRUE(IsBitwisePrefix(resp.matches, full.matches)) << ctx;
        EXPECT_EQ(resp.matches.size(), 4u) << ctx;
        continue;
      }
      ASSERT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded) << ctx;
      EXPECT_TRUE(resp.partial) << ctx;
      EXPECT_TRUE(IsBitwisePrefix(resp.matches, full.matches)) << ctx;
      // Certificate soundness: the guaranteed prefix cannot exceed what
      // was returned, and every match it does not cover — in particular
      // the first dropped one — scores at most the certified bound.
      EXPECT_LE(resp.certificate.guaranteed_prefix, resp.matches.size())
          << ctx;
      EXPECT_FALSE(resp.certificate.exact) << ctx;
      if (resp.certificate.guaranteed_prefix < full.matches.size()) {
        EXPECT_GE(resp.certificate.score_bound,
                  full.matches[resp.certificate.guaranteed_prefix].score -
                      1e-9)
            << ctx;
      }
    }
  }
}

}  // namespace
}  // namespace star::serve
