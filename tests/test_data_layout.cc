// Layout transparency: the compressed (delta-varint) data plane must be
// indistinguishable from the flat one at every API boundary — neighbor
// lists, index retrieval, and end-to-end top-k (bitwise scores, same
// order) — while the footprint reports show it actually saves bytes and
// Build() leaves no capacity slack behind.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "graph/graph_generator.h"
#include "graph/graph_io.h"
#include "graph/knowledge_graph.h"
#include "graph/label_index.h"
#include "query/workload.h"
#include "test_helpers.h"
#include "text/ensemble.h"

namespace star {
namespace {

using graph::GraphLayout;
using graph::KnowledgeGraph;
using graph::LabelIndex;
using star::testing::MovieGraph;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

void ExpectSameStructure(const KnowledgeGraph& a, const KnowledgeGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  ASSERT_EQ(a.type_count(), b.type_count());
  ASSERT_EQ(a.relation_count(), b.relation_count());
  for (graph::NodeId v = 0; v < a.node_count(); ++v) {
    EXPECT_EQ(a.NodeLabel(v), b.NodeLabel(v)) << "node " << v;
    EXPECT_EQ(a.NodeType(v), b.NodeType(v)) << "node " << v;
    ASSERT_EQ(a.Degree(v), b.Degree(v)) << "node " << v;
    const auto na = a.Neighbors(v);
    const auto nb = b.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "node " << v;
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i], nb[i]) << "node " << v << " entry " << i;
    }
  }
  for (graph::EdgeId e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.EdgeSrc(e), b.EdgeSrc(e));
    EXPECT_EQ(a.EdgeDst(e), b.EdgeDst(e));
    EXPECT_EQ(a.EdgeRelation(e), b.EdgeRelation(e));
  }
}

TEST(DataLayoutTest, CompressedNeighborsMatchFlat) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const auto flat = SmallRandomGraph(seed, /*nodes=*/60, /*edges=*/180);
    const auto comp = graph::CloneWithLayout(flat, GraphLayout::kCompressed);
    ASSERT_EQ(flat.layout(), GraphLayout::kFlat);
    ASSERT_EQ(comp.layout(), GraphLayout::kCompressed);
    ExpectSameStructure(flat, comp);
  }
}

TEST(DataLayoutTest, NestedNeighborViewsStayValid) {
  // Owning decoded views must survive nested Neighbors() calls (the pool
  // hands out distinct buffers, not one shared scratch).
  const auto g = graph::CloneWithLayout(MovieGraph(), GraphLayout::kCompressed);
  const auto flat = MovieGraph();
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const auto outer = g.Neighbors(v);
    const auto outer_flat = flat.Neighbors(v);
    for (size_t i = 0; i < outer.size(); ++i) {
      const auto inner = g.Neighbors(outer[i].node);
      const auto inner_flat = flat.Neighbors(outer_flat[i].node);
      ASSERT_EQ(inner.size(), inner_flat.size());
      for (size_t j = 0; j < inner.size(); ++j) {
        EXPECT_EQ(inner[j], inner_flat[j]);
      }
      // Re-check the outer view after the nested decode used the pool.
      EXPECT_EQ(outer[i], outer_flat[i]);
    }
  }
}

TEST(DataLayoutTest, LabelIndexRetrievalIsLayoutInvariant) {
  const auto g = SmallRandomGraph(/*seed=*/7, /*nodes=*/80, /*edges=*/200);
  const auto cg = graph::CloneWithLayout(g, GraphLayout::kCompressed);
  const LabelIndex flat(g, GraphLayout::kFlat);
  const LabelIndex comp(cg, GraphLayout::kCompressed);
  ASSERT_EQ(flat.token_count(), comp.token_count());

  std::vector<std::string> probes;
  for (graph::NodeId v = 0; v < g.node_count(); v += 7) {
    probes.emplace_back(g.NodeLabel(v));
  }
  // Misspelled / partial probes exercise the fuzzy trigram path.
  probes.insert(probes.end(), {"", "zz", "abc", "abcd", "node", "labl"});

  for (const auto& probe : probes) {
    EXPECT_EQ(flat.CandidatesByLabel(probe), comp.CandidatesByLabel(probe))
        << probe;
    EXPECT_EQ(flat.FuzzyTokens(probe), comp.FuzzyTokens(probe)) << probe;
    EXPECT_EQ(flat.Postings(probe), comp.Postings(probe)) << probe;
    for (const int32_t type : {-1, 0, 2}) {
      EXPECT_EQ(flat.Candidates(probe, type), comp.Candidates(probe, type));
      for (const size_t cap : {size_t{0}, size_t{5}}) {
        EXPECT_EQ(flat.RankedCandidates(probe, type, cap),
                  comp.RankedCandidates(probe, type, cap))
            << probe << " type=" << type << " cap=" << cap;
      }
    }
  }
  for (int32_t t = -1; t < static_cast<int32_t>(g.type_count()) + 1; ++t) {
    EXPECT_EQ(flat.CandidatesByType(t), comp.CandidatesByType(t));
  }
}

TEST(DataLayoutTest, TopKIsBitwiseIdenticalAcrossLayouts) {
  const auto g = SmallRandomGraph(/*seed=*/19, /*nodes=*/48, /*edges=*/120);
  const auto cg = graph::CloneWithLayout(g, GraphLayout::kCompressed);
  const LabelIndex flat_idx(g, GraphLayout::kFlat);
  const LabelIndex comp_idx(cg, GraphLayout::kCompressed);
  text::SimilarityEnsemble ensemble;

  query::WorkloadGenerator wg(g, /*seed=*/23);
  const auto q = wg.RandomStarQuery(4, query::WorkloadOptions{});

  for (const auto strategy :
       {core::StarStrategy::kStark, core::StarStrategy::kStard,
        core::StarStrategy::kHybrid}) {
    for (const int threads : {1, 4}) {
      for (const bool kernel : {false, true}) {
        for (const bool batch : {false, true}) {
          if (batch && !kernel) continue;  // batch requires the kernel
          core::StarOptions so;
          so.strategy = strategy;
          so.match = TestConfig(/*d=*/2);
          so.match.threads = threads;
          so.match.use_scoring_kernel = kernel;
          so.match.use_batch_kernel = batch;
          core::StarFramework flat_fw(g, ensemble, &flat_idx, so);
          core::StarFramework comp_fw(cg, ensemble, &comp_idx, so);
          const auto a = flat_fw.TopK(q, 10);
          const auto b = comp_fw.TopK(q, 10);
          ASSERT_EQ(a.size(), b.size());
          for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].mapping, b[i].mapping) << "rank " << i;
            EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;  // bitwise
          }
        }
      }
    }
  }
}

TEST(DataLayoutTest, BuildLeavesNoCapacitySlack) {
  // Builder::Build() must hand back exactly-sized arrays (the peak-memory
  // fix): every owned vector's capacity == size in both layouts.
  for (const auto layout : {GraphLayout::kFlat, GraphLayout::kCompressed}) {
    const auto g =
        graph::CloneWithLayout(SmallRandomGraph(/*seed=*/3), layout);
    EXPECT_EQ(g.Footprint().capacity_slack, 0u) << "graph";
    const LabelIndex index(g, layout);
    EXPECT_EQ(index.MemoryFootprint().capacity_slack, 0u) << "index";
  }
}

TEST(DataLayoutTest, CompressedFootprintIsSmaller) {
  graph::GeneratorConfig cfg;
  cfg.num_nodes = 2000;
  cfg.num_edges = 12000;
  cfg.seed = 99;
  const auto flat = graph::GenerateGraph(cfg);
  const auto comp = graph::CloneWithLayout(flat, GraphLayout::kCompressed);
  const auto ff = flat.Footprint();
  const auto cf = comp.Footprint();
  EXPECT_LT(cf.csr_bytes, ff.csr_bytes);
  EXPECT_LT(cf.total(), ff.total());

  const LabelIndex flat_idx(flat, GraphLayout::kFlat);
  const LabelIndex comp_idx(comp, GraphLayout::kCompressed);
  EXPECT_LT(comp_idx.MemoryFootprint().postings_bytes,
            flat_idx.MemoryFootprint().postings_bytes);
  EXPECT_LT(comp_idx.MemoryFootprint().total(),
            flat_idx.MemoryFootprint().total());
}

TEST(DataLayoutTest, GraphIoRoundTripsLargeGraphInBothLayouts) {
  // The loader slurps + pre-reserves; a ~100k-edge graph must come back
  // structurally identical (and slack-free) under either layout.
  graph::GeneratorConfig cfg;
  cfg.num_nodes = 20000;
  cfg.num_edges = 100000;
  cfg.seed = 4242;
  const auto g = graph::GenerateGraph(cfg);
  std::ostringstream out;
  ASSERT_TRUE(graph::SaveGraph(g, out).ok());
  const std::string text = out.str();

  for (const auto layout : {GraphLayout::kFlat, GraphLayout::kCompressed}) {
    std::istringstream in(text);
    auto loaded = graph::LoadGraph(in, layout);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_EQ(loaded->layout(), layout);
    EXPECT_EQ(loaded->node_count(), g.node_count());
    EXPECT_EQ(loaded->edge_count(), g.edge_count());
    EXPECT_EQ(loaded->Footprint().capacity_slack, 0u);
    // Spot-check structure (full compare is the flat cell below).
    for (graph::NodeId v = 0; v < loaded->node_count(); v += 997) {
      EXPECT_EQ(loaded->NodeLabel(v), g.NodeLabel(v));
      EXPECT_EQ(loaded->Degree(v), g.Degree(v));
    }
  }
  std::istringstream in(text);
  auto flat_loaded = graph::LoadGraph(in);
  ASSERT_TRUE(flat_loaded.ok());
  ExpectSameStructure(*flat_loaded, g);
}

}  // namespace
}  // namespace star
