#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/star_search.h"
#include "query/workload.h"
#include "test_helpers.h"

namespace star::core {
namespace {

using star::testing::MovieGraph;
using star::testing::ScorerFixture;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

TEST(ExplainMatchTest, DirectEdgeMatch) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int a = q.AddNode("Brad Pitt");
  const int b = q.AddNode("Troy");
  q.AddEdge(a, b, "actedIn");
  ScorerFixture fx(g, q, TestConfig());
  GraphMatch m;
  m.mapping = {0, 4};  // Brad Pitt, Troy
  const auto r = ExplainMatch(*fx.scorer, m);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->nodes.size(), 2u);
  EXPECT_DOUBLE_EQ(r->nodes[0].score, 1.0);
  ASSERT_EQ(r->edges.size(), 1u);
  EXPECT_EQ(r->edges[0].path, (std::vector<graph::NodeId>{0, 4}));
  EXPECT_DOUBLE_EQ(r->edges[0].score, 1.0);
  EXPECT_NEAR(r->total, 3.0, 1e-9);
}

TEST(ExplainMatchTest, MultiHopWitnessWalk) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int a = q.AddNode("Richard Linklater");
  const int b = q.AddNode("Academy Award");
  q.AddEdge(a, b);
  ScorerFixture fx(g, q, TestConfig(2));
  GraphMatch m;
  m.mapping = {2, 6};  // Richard, Academy Award (2 hops via Boyhood)
  const auto r = ExplainMatch(*fx.scorer, m);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->edges.size(), 1u);
  const auto& path = r->edges[0].path;
  ASSERT_EQ(path.size(), 3u);  // 2 hops
  EXPECT_EQ(path.front(), 2u);
  EXPECT_EQ(path.back(), 6u);
  EXPECT_EQ(g.NodeLabel(path[1]), "Boyhood");  // the witness
  EXPECT_DOUBLE_EQ(r->edges[0].score, 0.5);    // lambda^(2-1)
}

TEST(ExplainMatchTest, TotalMatchesSearchScore) {
  const auto g = SmallRandomGraph(13);
  query::WorkloadGenerator wg(g, 7);
  const auto q = wg.RandomStarQuery(3, {});
  ScorerFixture fx(g, q, TestConfig(2));
  StarSearch search(*fx.scorer, MakeStarQuery(q), {});
  for (const auto& sm : search.TopK(5)) {
    const GraphMatch gm = search.ToGraphMatch(sm);
    const auto r = ExplainMatch(*fx.scorer, gm);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r->total, gm.score, 1e-9);
  }
}

TEST(ExplainMatchTest, RejectsIncompleteMatch) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int a = q.AddNode("Brad Pitt");
  const int b = q.AddNode("Troy");
  q.AddEdge(a, b);
  ScorerFixture fx(g, q, TestConfig());
  GraphMatch m;
  m.mapping = {0, graph::kInvalidNode};
  EXPECT_FALSE(ExplainMatch(*fx.scorer, m).ok());
}

TEST(ExplainMatchTest, RejectsDisconnectedMapping) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int a = q.AddNode("Brad Pitt");
  const int b = q.AddNode("United States");
  q.AddEdge(a, b);
  ScorerFixture fx(g, q, TestConfig(1));  // USA is 2 hops from Brad
  GraphMatch m;
  m.mapping = {0, 9};
  EXPECT_FALSE(ExplainMatch(*fx.scorer, m).ok());
}

TEST(ExplainMatchTest, FormatMentionsEntitiesAndScores) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int a = q.AddNode("Brad Pitt");
  const int b = q.AddNode("Troy");
  q.AddEdge(a, b, "actedIn");
  ScorerFixture fx(g, q, TestConfig());
  GraphMatch m;
  m.mapping = {0, 4};
  const auto r = ExplainMatch(*fx.scorer, m);
  ASSERT_TRUE(r.ok());
  const std::string text = FormatExplanation(*fx.scorer, *r);
  EXPECT_NE(text.find("Brad Pitt"), std::string::npos);
  EXPECT_NE(text.find("Troy"), std::string::npos);
  EXPECT_NE(text.find("F_E"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
}

}  // namespace
}  // namespace star::core
