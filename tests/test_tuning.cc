#include "core/tuning.h"

#include <gtest/gtest.h>

#include "query/workload.h"
#include "test_helpers.h"

namespace star::core {
namespace {

using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

TEST(TuningTest, FindsParametersWithinGrid) {
  const auto g = SmallRandomGraph(2, 40, 100);
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  StarOptions opts;
  opts.match = TestConfig();
  opts.decomposition.strategy = DecompositionStrategy::kSimDec;
  StarFramework fw(g, ensemble, &index, opts);

  query::WorkloadGenerator wg(g, 5);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto workload = wg.GraphWorkload(3, 4, 4, wo);

  TuningOptions topts;
  topts.alpha_grid = {0.3, 0.5, 0.7};
  topts.lambda_grid = {0.5, 1.0};
  topts.k = 5;
  const auto result = TuneParameters(fw, workload, topts);

  EXPECT_EQ(result.grid_depths.size(), 6u);
  EXPECT_GE(result.alpha, 0.3);
  EXPECT_LE(result.alpha, 0.7);
  EXPECT_GE(result.lambda_tradeoff, 0.5);
  EXPECT_LE(result.lambda_tradeoff, 1.0);
  // The optimum equals the grid minimum.
  size_t min_depth = result.grid_depths[0];
  for (const size_t d : result.grid_depths) min_depth = std::min(min_depth, d);
  EXPECT_EQ(result.total_depth, min_depth);
  // The framework adopted the optimum.
  EXPECT_DOUBLE_EQ(fw.options().alpha, result.alpha);
  EXPECT_DOUBLE_EQ(fw.options().decomposition.lambda_tradeoff,
                   result.lambda_tradeoff);
}

TEST(TuningTest, EmptyWorkloadIsSafe) {
  const auto g = SmallRandomGraph(3, 30, 60);
  text::SimilarityEnsemble ensemble;
  StarOptions opts;
  opts.match = TestConfig();
  StarFramework fw(g, ensemble, nullptr, opts);
  TuningOptions topts;
  topts.alpha_grid = {0.5};
  topts.lambda_grid = {1.0};
  const auto result = TuneParameters(fw, {}, topts);
  EXPECT_EQ(result.total_depth, 0u);
}

}  // namespace
}  // namespace star::core
