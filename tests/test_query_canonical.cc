// Tests for insertion-order-insensitive query canonicalization
// (src/query/query_canonical.h). The guarantee under test: two QueryGraphs
// that are label/type/relation-preserving relabelings of each other get the
// same signature (so a normalized-query cache hits), and graphs that differ
// in any attribute or in structure get different signatures (no false hits).

#include "query/query_canonical.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/query_graph.h"

namespace star::query {
namespace {

// A small asymmetric query: person --acted_in-- movie --directed-- director,
// built with the node/edge insertion order given by `perm` (a permutation of
// roles 0=person, 1=movie, 2=director).
QueryGraph TriplePath(const std::vector<int>& perm) {
  QueryGraph q;
  std::vector<int> idx(3, -1);
  const char* labels[] = {"tom hanks", "forrest gump", "robert zemeckis"};
  const char* types[] = {"person", "movie", "person"};
  for (const int role : perm) idx[role] = q.AddNode(labels[role], types[role]);
  if (perm[0] % 2 == 0) {
    q.AddEdge(idx[0], idx[1], "acted_in");
    q.AddEdge(idx[1], idx[2], "directed");
  } else {
    q.AddEdge(idx[2], idx[1], "directed");
    q.AddEdge(idx[1], idx[0], "acted_in");
  }
  return q;
}

TEST(QueryCanonicalTest, InsertionOrderDoesNotChangeSignature) {
  const std::vector<std::vector<int>> perms = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  const CanonicalQuery base = CanonicalizeQuery(TriplePath(perms[0]));
  EXPECT_TRUE(base.exact);
  for (size_t i = 1; i < perms.size(); ++i) {
    const CanonicalQuery other = CanonicalizeQuery(TriplePath(perms[i]));
    EXPECT_EQ(base.signature, other.signature) << "perm " << i;
    EXPECT_EQ(base.hash, other.hash) << "perm " << i;
  }
  EXPECT_TRUE(CanonicallyEqual(TriplePath(perms[1]), TriplePath(perms[4])));
}

TEST(QueryCanonicalTest, DifferentLabelsDiffer) {
  QueryGraph a, b;
  a.AddNode("alpha");
  b.AddNode("beta");
  EXPECT_FALSE(CanonicallyEqual(a, b));
  EXPECT_NE(CanonicalQueryHash(a), CanonicalQueryHash(b));
}

TEST(QueryCanonicalTest, DifferentTypesDiffer) {
  QueryGraph a, b;
  a.AddNode("hanks", "person");
  b.AddNode("hanks", "movie");
  EXPECT_FALSE(CanonicallyEqual(a, b));
}

TEST(QueryCanonicalTest, WildcardDiffersFromEmptyLabel) {
  QueryGraph a, b;
  a.AddWildcardNode("person");
  b.AddNode("", "person");
  EXPECT_FALSE(CanonicallyEqual(a, b));
}

TEST(QueryCanonicalTest, DifferentRelationsDiffer) {
  QueryGraph a, b;
  const int a0 = a.AddNode("x"), a1 = a.AddNode("y");
  const int b0 = b.AddNode("x"), b1 = b.AddNode("y");
  a.AddEdge(a0, a1, "acted_in");
  b.AddEdge(b0, b1, "directed");
  EXPECT_FALSE(CanonicallyEqual(a, b));

  QueryGraph c;  // wildcard relation differs from any named one
  const int c0 = c.AddNode("x"), c1 = c.AddNode("y");
  c.AddEdge(c0, c1);
  EXPECT_FALSE(CanonicallyEqual(a, c));
}

TEST(QueryCanonicalTest, StructureDiffersWithIdenticalNodeMultiset) {
  // Path x-y-z vs star with center z: same node labels, same edge count.
  QueryGraph path, star;
  const int p0 = path.AddNode("x"), p1 = path.AddNode("y"),
            p2 = path.AddNode("z");
  path.AddEdge(p0, p1, "r");
  path.AddEdge(p1, p2, "r");
  const int s0 = star.AddNode("x"), s1 = star.AddNode("y"),
            s2 = star.AddNode("z");
  star.AddEdge(s2, s0, "r");
  star.AddEdge(s2, s1, "r");
  EXPECT_FALSE(CanonicallyEqual(path, star));
}

TEST(QueryCanonicalTest, SymmetricQueryIsOrderInsensitive) {
  // A star with 3 identically-labeled wildcard leaves: WL refinement cannot
  // split the leaves, so this exercises the bounded permutation search.
  auto make = [](const std::vector<int>& leaf_order) {
    QueryGraph q;
    const int center = q.AddNode("query hub", "entity");
    std::vector<int> leaves(3, -1);
    for (const int l : leaf_order) leaves[l] = q.AddWildcardNode("person");
    for (const int l : leaf_order) q.AddEdge(center, leaves[l], "knows");
    return q;
  };
  const CanonicalQuery base = CanonicalizeQuery(make({0, 1, 2}));
  EXPECT_TRUE(base.exact);
  EXPECT_EQ(base.signature, CanonicalizeQuery(make({2, 0, 1})).signature);
  EXPECT_EQ(base.signature, CanonicalizeQuery(make({1, 2, 0})).signature);
}

TEST(QueryCanonicalTest, NodeRankIsAValidPermutation) {
  const CanonicalQuery c = CanonicalizeQuery(TriplePath({1, 2, 0}));
  ASSERT_EQ(c.node_rank.size(), 3u);
  std::vector<bool> seen(3, false);
  for (const int r : c.node_rank) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 3);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(QueryCanonicalTest, HashMatchesSignatureAndIsStable) {
  const CanonicalQuery a = CanonicalizeQuery(TriplePath({0, 1, 2}));
  EXPECT_EQ(a.hash, CanonicalQueryHash(TriplePath({2, 1, 0})));
  // Repeated canonicalization is deterministic.
  EXPECT_EQ(a.signature, CanonicalizeQuery(TriplePath({0, 1, 2})).signature);
}

TEST(QueryCanonicalTest, EmptyAndSingleNodeQueries) {
  QueryGraph empty;
  const CanonicalQuery ce = CanonicalizeQuery(empty);
  EXPECT_TRUE(ce.exact);
  EXPECT_TRUE(ce.node_rank.empty());

  QueryGraph one;
  one.AddNode("solo");
  const CanonicalQuery c1 = CanonicalizeQuery(one);
  EXPECT_NE(ce.signature, c1.signature);
}

TEST(QueryCanonicalTest, LargeSymmetryFallsBackDeterministically) {
  // 9 identical wildcard leaves -> 9! orderings > kMaxCanonicalOrderings.
  QueryGraph q;
  const int center = q.AddNode("hub");
  for (int i = 0; i < 9; ++i) q.AddEdge(center, q.AddWildcardNode(), "r");
  const CanonicalQuery c = CanonicalizeQuery(q);
  EXPECT_FALSE(c.exact);
  // Still deterministic for the same insertion order.
  QueryGraph q2;
  const int center2 = q2.AddNode("hub");
  for (int i = 0; i < 9; ++i) q2.AddEdge(center2, q2.AddWildcardNode(), "r");
  EXPECT_EQ(c.signature, CanonicalizeQuery(q2).signature);
}

}  // namespace
}  // namespace star::query
