// Tests for the fuzz harness itself (src/testing/): the case generator is
// seed-deterministic, replays round-trip bit-exactly, the differential
// matrix passes on a clean engine, the oracle feasibility check gates the
// right configs, and a deliberately injected bug is caught, shrunk, and
// reproduced from its replay file.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "testing/differential.h"
#include "testing/fuzz_case.h"
#include "testing/replay.h"
#include "testing/shrinker.h"

namespace star::testing {
namespace {

bool HasCheck(const CaseOutcome& o, const std::string& check) {
  for (const auto& v : o.violations) {
    if (v.check == check) return true;
  }
  return false;
}

TEST(FuzzCaseTest, GeneratorIsSeedDeterministic) {
  const FuzzProfile p = SmokeProfile();
  const FuzzCase a = MakeFuzzCase(p, 42);
  const FuzzCase b = MakeFuzzCase(p, 42);
  // Replay text covers every result-affecting field bit-exactly, so text
  // equality is the strongest determinism statement available.
  EXPECT_EQ(SerializeReplay(a), SerializeReplay(b));
}

TEST(FuzzCaseTest, DifferentSeedsGiveDifferentCases) {
  const FuzzProfile p = SmokeProfile();
  EXPECT_NE(SerializeReplay(MakeFuzzCase(p, 1)),
            SerializeReplay(MakeFuzzCase(p, 2)));
}

TEST(FuzzCaseTest, CopyCaseIsFaithful) {
  const FuzzCase c = MakeFuzzCase(TieHeavyProfile(), 7);
  EXPECT_EQ(SerializeReplay(CopyCase(c)), SerializeReplay(c));
}

TEST(ReplayTest, RoundTripsBitExactly) {
  for (const char* profile : {"smoke", "ties", "deadline"}) {
    FuzzCase c = MakeFuzzCase(ProfileByName(profile), 11);
    c.inject = BugInjection::kWarmTopListScores;
    const std::string text = SerializeReplay(c);
    FuzzCase parsed;
    std::string err;
    ASSERT_TRUE(ParseReplay(text, &parsed, &err)) << err;
    EXPECT_EQ(SerializeReplay(parsed), text) << "profile " << profile;
  }
}

TEST(ReplayTest, RejectsMalformedInputWithLineNumbers) {
  FuzzCase out;
  std::string err;
  EXPECT_FALSE(ParseReplay("not-a-replay\n", &out, &err));
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;

  // A qe line referencing nodes that do not exist.
  const std::string bad_edge =
      "star-replay v1\nqn 0 _ foo\nqe 0 5 rel\n";
  EXPECT_FALSE(ParseReplay(bad_edge, &out, &err));
  EXPECT_NE(err.find("qe"), std::string::npos) << err;

  // Graph section never closed.
  std::string open_graph = SerializeReplay(MakeFuzzCase(SmokeProfile(), 3));
  open_graph.resize(open_graph.rfind("endgraph"));
  EXPECT_FALSE(ParseReplay(open_graph, &out, &err));
  EXPECT_NE(err.find("endgraph"), std::string::npos) << err;
}

TEST(ReplayTest, ShardPinRoundTripsAndDefaultsStayCompatible) {
  FuzzCase c = MakeFuzzCase(SmokeProfile(), 11);
  c.shards = 4;
  const std::string text = SerializeReplay(c);
  EXPECT_NE(text.find("\nshards 4\n"), std::string::npos);
  FuzzCase parsed;
  std::string err;
  ASSERT_TRUE(ParseReplay(text, &parsed, &err)) << err;
  EXPECT_EQ(parsed.shards, 4u);
  EXPECT_EQ(SerializeReplay(parsed), text);

  // Unpinned cases keep the pre-shard wire format (no `shards` line), so
  // their files remain loadable by strict parsers from before the field.
  c.shards = 0;
  EXPECT_EQ(SerializeReplay(c).find("shards"), std::string::npos);
}

TEST(DifferentialTest, ShardCellsRunAndAPinnedCountNarrowsTheSweep) {
  const FuzzCase c = MakeFuzzCase(SmokeProfile(), 9001);
  const RunnerOptions all;
  RunnerOptions no_shards;
  no_shards.run_shards = false;

  const CaseOutcome with_cells = RunDifferentialCase(c, all);
  const CaseOutcome without = RunDifferentialCase(c, no_shards);
  EXPECT_TRUE(with_cells.ok()) << c.Describe() << "\n  "
                               << with_cells.Summary();
  EXPECT_GT(with_cells.cells_run, without.cells_run);

  FuzzCase pinned = CopyCase(c);
  pinned.shards = 2;
  const CaseOutcome pin = RunDifferentialCase(pinned, all);
  EXPECT_TRUE(pin.ok()) << pin.Summary();
  EXPECT_LT(pin.cells_run, with_cells.cells_run);
  EXPECT_GT(pin.cells_run, without.cells_run);
}

TEST(ReplayTest, DegradePinRoundTripsAndDefaultsStayCompatible) {
  FuzzCase c = MakeFuzzCase(SmokeProfile(), 11);
  c.degrade = 2;
  const std::string text = SerializeReplay(c);
  EXPECT_NE(text.find("\ndegrade 2\n"), std::string::npos);
  FuzzCase parsed;
  std::string err;
  ASSERT_TRUE(ParseReplay(text, &parsed, &err)) << err;
  EXPECT_EQ(parsed.degrade, 2);
  EXPECT_EQ(SerializeReplay(parsed), text);

  // Unpinned cases (full ladder sweep) keep the pre-degrade wire format,
  // so their files remain loadable by strict parsers from before the
  // field — same convention as `shards`.
  c.degrade = 0;
  EXPECT_EQ(SerializeReplay(c).find("degrade"), std::string::npos);
}

TEST(DifferentialTest, CertificateCellsRunAndAPinnedLevelNarrowsTheSweep) {
  const FuzzCase c = MakeFuzzCase(SmokeProfile(), 9001);
  const RunnerOptions all;
  RunnerOptions no_certs;
  no_certs.run_certificates = false;

  const CaseOutcome with_cells = RunDifferentialCase(c, all);
  const CaseOutcome without = RunDifferentialCase(c, no_certs);
  EXPECT_TRUE(with_cells.ok()) << c.Describe() << "\n  "
                               << with_cells.Summary();
  EXPECT_GT(with_cells.cells_run, without.cells_run);

  // Pinning a ladder level runs one degraded certificate cell instead of
  // three — the same narrowing the shrinker exploits for cert* checks.
  FuzzCase pinned = CopyCase(c);
  pinned.degrade = 3;
  const CaseOutcome pin = RunDifferentialCase(pinned, all);
  EXPECT_TRUE(pin.ok()) << pin.Summary();
  EXPECT_LT(pin.cells_run, with_cells.cells_run);
  EXPECT_GT(pin.cells_run, without.cells_run);
}

TEST(OracleCheckTest, FlagsUntypedWildcardWithCutoff) {
  query::QueryGraph q;
  q.AddNode("alpha");
  const int w = q.AddWildcardNode("");  // untyped wildcard
  q.AddEdge(0, w);

  scoring::MatchConfig cfg;
  EXPECT_EQ(baseline::BruteForceOracleCheck(q, cfg), "");

  cfg.max_candidates = 4;
  EXPECT_NE(baseline::BruteForceOracleCheck(q, cfg), "");
  cfg.max_candidates = 0;

  cfg.wildcard_node_score = 0.1;
  cfg.node_threshold = 0.5;
  EXPECT_NE(baseline::BruteForceOracleCheck(q, cfg), "");
}

TEST(OracleCheckTest, TypedQueriesAreAlwaysModelable) {
  query::QueryGraph q;
  q.AddNode("alpha");
  const int w = q.AddWildcardNode("Film");  // typed wildcard
  q.AddEdge(0, w);

  scoring::MatchConfig cfg;
  cfg.max_candidates = 4;
  cfg.wildcard_node_score = 0.1;
  cfg.node_threshold = 0.5;
  EXPECT_EQ(baseline::BruteForceOracleCheck(q, cfg), "");
}

TEST(DifferentialTest, SmallCleanBatchHasNoViolations) {
  const FuzzProfile p = SmokeProfile();
  const RunnerOptions opts;
  for (uint64_t seed = 9000; seed < 9020; ++seed) {
    const FuzzCase c = MakeFuzzCase(p, seed);
    const CaseOutcome o = RunDifferentialCase(c, opts);
    EXPECT_TRUE(o.ok()) << c.Describe() << "\n  " << o.Summary();
  }
}

TEST(DifferentialTest, InjectedBugIsCaughtShrunkAndReplayed) {
  // Seed 404 is a known catcher (the fuzz-smoke canary uses it too).
  FuzzCase c = MakeFuzzCase(SmokeProfile(), 404);
  c.inject = BugInjection::kWarmTopListScores;

  const RunnerOptions opts;
  const CaseOutcome o = RunDifferentialCase(c, opts);
  ASSERT_TRUE(HasCheck(o, "reuse-warm")) << o.Summary();

  ShrinkOptions so;
  const ShrinkResult r = ShrinkCase(c, "reuse-warm", so);
  EXPECT_GT(r.reductions, 0u);
  EXPECT_LE(r.minimal.graph.node_count(), c.graph.node_count());
  ASSERT_TRUE(HasCheck(RunDifferentialCase(r.minimal, opts), "reuse-warm"));

  // The written replay must reproduce the catch by itself.
  const std::string path = ::testing::TempDir() + "injected_bug.replay";
  ASSERT_TRUE(WriteReplayFile(path, r.minimal));
  FuzzCase reloaded;
  std::string err;
  ASSERT_TRUE(LoadReplayFile(path, &reloaded, &err)) << err;
  EXPECT_TRUE(HasCheck(RunDifferentialCase(reloaded, opts), "reuse-warm"));
}

TEST(ShrinkerTest, IsDeterministic) {
  FuzzCase c = MakeFuzzCase(SmokeProfile(), 404);
  c.inject = BugInjection::kWarmCandidateScores;
  ShrinkOptions so;
  const ShrinkResult a = ShrinkCase(c, "reuse-warm", so);
  const ShrinkResult b = ShrinkCase(c, "reuse-warm", so);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.reductions, b.reductions);
  EXPECT_EQ(SerializeReplay(a.minimal), SerializeReplay(b.minimal));
}

}  // namespace
}  // namespace star::testing
