#include "text/weight_learning.h"

#include <gtest/gtest.h>

namespace star::text {
namespace {

std::vector<std::string> Vocabulary() {
  return {"Brad Pitt",       "Richard Linklater", "Academy Award",
          "Golden Globe",    "Los Angeles",       "United States",
          "Sophie Marceau",  "Boyhood",           "Troy",
          "Motion Picture",  "Quentin Tarantino", "New York City",
          "Kurosawa Akira",  "Blade Runner",      "Pulp Fiction",
          "Leonard Cohen",   "Johnny Cash",       "Nina Simone"};
}

TEST(PerturbLabelTest, DeterministicAndNonEmpty) {
  Rng rng1(7), rng2(7);
  for (int i = 0; i < 50; ++i) {
    const auto a = PerturbLabel("Brad Pitt", rng1);
    const auto b = PerturbLabel("Brad Pitt", rng2);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
  }
}

TEST(GenerateTrainingPairsTest, BalancedAndDeterministic) {
  Rng rng(11);
  const auto pairs = GenerateTrainingPairs(Vocabulary(), 50, rng);
  EXPECT_EQ(pairs.size(), 100u);
  size_t positives = 0;
  for (const auto& p : pairs) positives += p.is_match;
  EXPECT_GE(positives, 50u);  // perturbation pairs are all positive
  Rng rng2(11);
  const auto again = GenerateTrainingPairs(Vocabulary(), 50, rng2);
  EXPECT_EQ(again.size(), pairs.size());
  EXPECT_EQ(again[0].query_label, pairs[0].query_label);
}

TEST(WeightLearnerTest, LearnsToSeparate) {
  SimilarityEnsemble ensemble;
  Rng rng(3);
  const auto pairs = GenerateTrainingPairs(Vocabulary(), 150, rng);
  WeightLearner learner;
  const double accuracy = learner.FitAndInstall(ensemble, pairs);
  // Perturbation positives vs random negatives are easy: expect high
  // training accuracy and normalized weights.
  EXPECT_GT(accuracy, 0.85);
  double sum = 0.0;
  for (const double w : ensemble.weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(WeightLearnerTest, LearnedWeightsRankMatchesHigher) {
  SimilarityEnsemble ensemble;
  Rng rng(5);
  const auto pairs = GenerateTrainingPairs(Vocabulary(), 150, rng);
  WeightLearner learner;
  learner.FitAndInstall(ensemble, pairs);
  // Average score of positives should clearly exceed negatives.
  double pos = 0.0, neg = 0.0;
  size_t npos = 0, nneg = 0;
  for (const auto& p : pairs) {
    const double s = ensemble.Score(p.query_label, p.data_label);
    if (p.is_match) {
      pos += s;
      ++npos;
    } else {
      neg += s;
      ++nneg;
    }
  }
  ASSERT_GT(npos, 0u);
  ASSERT_GT(nneg, 0u);
  EXPECT_GT(pos / npos, neg / nneg + 0.2);
}

TEST(WeightLearnerTest, EmptyTrainingSetIsSafe) {
  SimilarityEnsemble ensemble;
  WeightLearner learner;
  EXPECT_DOUBLE_EQ(learner.FitAndInstall(ensemble, {}), 1.0);
}

}  // namespace
}  // namespace star::text
