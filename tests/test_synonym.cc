#include "text/synonym_dictionary.h"

#include <gtest/gtest.h>

namespace star::text {
namespace {

TEST(SynonymDictionaryTest, BasicPairs) {
  SynonymDictionary d;
  d.AddSynonym("teacher", "educator");
  EXPECT_TRUE(d.AreSynonyms("teacher", "educator"));
  EXPECT_TRUE(d.AreSynonyms("Educator", "TEACHER"));  // case-insensitive
  EXPECT_FALSE(d.AreSynonyms("teacher", "student"));
}

TEST(SynonymDictionaryTest, IdentityIsAlwaysSynonym) {
  SynonymDictionary d;
  EXPECT_TRUE(d.AreSynonyms("anything", "anything"));
  EXPECT_TRUE(d.AreSynonyms("Case", "case"));
}

TEST(SynonymDictionaryTest, TransitiveMerging) {
  SynonymDictionary d;
  d.AddSynonym("a", "b");
  d.AddSynonym("c", "d");
  EXPECT_FALSE(d.AreSynonyms("a", "c"));
  d.AddSynonym("b", "c");  // merges the two groups
  EXPECT_TRUE(d.AreSynonyms("a", "d"));
}

TEST(SynonymDictionaryTest, GroupInsertion) {
  SynonymDictionary d;
  d.AddGroup({"movie", "film", "picture"});
  EXPECT_TRUE(d.AreSynonyms("movie", "picture"));
  EXPECT_TRUE(d.AreSynonyms("film", "picture"));
}

TEST(SynonymDictionaryTest, SimilarityTokenLevel) {
  SynonymDictionary d;
  d.AddSynonym("movie", "film");
  EXPECT_DOUBLE_EQ(d.Similarity("movie", "film"), 1.0);
  // "great movie" vs "great film": both tokens have matches.
  EXPECT_DOUBLE_EQ(d.Similarity("great movie", "great film"), 1.0);
  // "bad movie" vs "great film": only one of two tokens matches.
  EXPECT_DOUBLE_EQ(d.Similarity("bad movie", "great film"), 0.5);
  EXPECT_DOUBLE_EQ(d.Similarity("", "film"), 0.0);
}

TEST(SynonymDictionaryTest, BuiltInCoversPaperExamples) {
  const auto d = SynonymDictionary::BuiltIn();
  EXPECT_TRUE(d.AreSynonyms("teacher", "educator"));
  EXPECT_TRUE(d.AreSynonyms("movie", "film"));
  EXPECT_TRUE(d.AreSynonyms("director", "movie maker"));
  EXPECT_GT(d.term_count(), 30u);
}

}  // namespace
}  // namespace star::text
