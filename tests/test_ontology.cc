#include "text/type_ontology.h"

#include <gtest/gtest.h>

namespace star::text {
namespace {

TEST(TypeOntologyTest, RootExists) {
  TypeOntology onto;
  EXPECT_EQ(onto.type_count(), 1);
  EXPECT_EQ(onto.TypeName(TypeOntology::kRoot), "Thing");
  EXPECT_EQ(onto.Depth(TypeOntology::kRoot), 0);
}

TEST(TypeOntologyTest, AddAndFind) {
  TypeOntology onto;
  const int person = onto.AddType("Person");
  const int actor = onto.AddType("Actor", person);
  EXPECT_EQ(onto.FindType("person"), person);  // case-insensitive
  EXPECT_EQ(onto.FindType("ACTOR"), actor);
  EXPECT_EQ(onto.FindType("alien"), -1);
  EXPECT_EQ(onto.Parent(actor), person);
  EXPECT_EQ(onto.Depth(actor), 2);
  // Re-adding returns the existing id.
  EXPECT_EQ(onto.AddType("Person"), person);
}

TEST(TypeOntologyTest, LcaAndAncestry) {
  TypeOntology onto;
  const int person = onto.AddType("Person");
  const int actor = onto.AddType("Actor", person);
  const int director = onto.AddType("Director", person);
  const int place = onto.AddType("Place");
  EXPECT_EQ(onto.LowestCommonAncestor(actor, director), person);
  EXPECT_EQ(onto.LowestCommonAncestor(actor, place), TypeOntology::kRoot);
  EXPECT_TRUE(onto.IsAncestor(person, actor));
  EXPECT_TRUE(onto.IsAncestor(TypeOntology::kRoot, actor));
  EXPECT_FALSE(onto.IsAncestor(actor, person));
}

TEST(TypeOntologyTest, WuPalmerSimilarity) {
  TypeOntology onto;
  const int person = onto.AddType("Person");
  const int actor = onto.AddType("Actor", person);
  const int director = onto.AddType("Director", person);
  const int place = onto.AddType("Place");
  EXPECT_DOUBLE_EQ(onto.Similarity(actor, actor), 1.0);
  // Siblings under Person at depth 2: 2*1/(2+2) = 0.5.
  EXPECT_DOUBLE_EQ(onto.Similarity(actor, director), 0.5);
  // Unrelated branches share only the root: 0.
  EXPECT_DOUBLE_EQ(onto.Similarity(actor, place), 0.0);
  // Parent-child: 2*1/(1+2).
  EXPECT_NEAR(onto.Similarity(person, actor), 2.0 / 3.0, 1e-12);
}

TEST(TypeOntologyTest, UnknownIdsScoreZero) {
  TypeOntology onto;
  EXPECT_DOUBLE_EQ(onto.Similarity(-1, 0), 0.0);
  EXPECT_DOUBLE_EQ(onto.Similarity(0, 99), 0.0);
  EXPECT_DOUBLE_EQ(onto.Similarity("ghost", "thing"), 0.0);
}

TEST(TypeOntologyTest, BuiltInHierarchy) {
  const auto onto = TypeOntology::BuiltIn();
  EXPECT_GT(onto.type_count(), 20);
  const int actor = onto.FindType("Actor");
  const int director = onto.FindType("Director");
  ASSERT_GE(actor, 0);
  ASSERT_GE(director, 0);
  // Both artists: closely related.
  EXPECT_GT(onto.Similarity(actor, director), 0.5);
  // Actor vs City: far apart.
  EXPECT_LT(onto.Similarity(actor, onto.FindType("City")),
            onto.Similarity(actor, director));
}

}  // namespace
}  // namespace star::text
