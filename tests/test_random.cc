#include "common/random.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace star {
namespace {

TEST(RngTest, DeterministicStreams) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) differ = a.Next() != b.Next();
  EXPECT_TRUE(differ);
}

TEST(RngTest, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, UniformInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.Uniform(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfSamplerTest, SkewFavorsLowRanks) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 100);  // far above uniform share
}

TEST(ZipfSamplerTest, ZeroSkewIsUniformish) {
  Rng rng(19);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(ZipfSamplerTest, SupportBounds) {
  Rng rng(23);
  ZipfSampler zipf(5, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 5u);
  EXPECT_EQ(zipf.size(), 5u);
}

}  // namespace
}  // namespace star
