#include "query/workload.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "test_helpers.h"

namespace star::query {
namespace {

using star::testing::SmallRandomGraph;

TEST(WorkloadGeneratorTest, StarQueriesAreStars) {
  const auto g = SmallRandomGraph(1, 60, 150);
  WorkloadGenerator wg(g, 42);
  WorkloadOptions wo;
  for (int i = 0; i < 20; ++i) {
    const auto q = wg.RandomStarQuery(2 + i % 4, wo);
    EXPECT_TRUE(q.IsStar()) << q.ToString();
    EXPECT_TRUE(q.IsConnected());
    EXPECT_GE(q.node_count(), 2);
  }
}

TEST(WorkloadGeneratorTest, PivotIsConcrete) {
  const auto g = SmallRandomGraph(2, 60, 150);
  WorkloadGenerator wg(g, 7);
  WorkloadOptions wo;
  wo.variable_fraction = 0.5;
  for (int i = 0; i < 20; ++i) {
    const auto q = wg.RandomStarQuery(4, wo);
    EXPECT_FALSE(q.node(0).wildcard);  // anchored template
  }
}

TEST(WorkloadGeneratorTest, VariableFractionZeroMeansNoWildcards) {
  const auto g = SmallRandomGraph(3, 60, 150);
  WorkloadGenerator wg(g, 9);
  WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  for (int i = 0; i < 10; ++i) {
    const auto q = wg.RandomStarQuery(4, wo);
    for (const auto& n : q.nodes()) EXPECT_FALSE(n.wildcard);
  }
}

TEST(WorkloadGeneratorTest, VariableFractionClampedAtHalf) {
  const auto g = SmallRandomGraph(4, 60, 150);
  WorkloadGenerator wg(g, 11);
  WorkloadOptions wo;
  wo.variable_fraction = 0.9;  // clamped to 0.5 per DBPSB templates
  size_t wildcards = 0, nodes = 0;
  for (int i = 0; i < 50; ++i) {
    const auto q = wg.RandomStarQuery(5, wo);
    for (const auto& n : q.nodes()) {
      ++nodes;
      wildcards += n.wildcard;
    }
  }
  EXPECT_LT(static_cast<double>(wildcards) / nodes, 0.55);
}

TEST(WorkloadGeneratorTest, PathQueriesArePaths) {
  const auto g = SmallRandomGraph(5, 60, 150);
  WorkloadGenerator wg(g, 13);
  for (int i = 0; i < 10; ++i) {
    const auto q = wg.RandomPathQuery(4, {});
    EXPECT_TRUE(q.IsConnected());
    EXPECT_EQ(q.edge_count(), q.node_count() - 1);
    for (int u = 0; u < q.node_count(); ++u) EXPECT_LE(q.Degree(u), 2);
  }
}

TEST(WorkloadGeneratorTest, GraphQueriesConnectedWithCycles) {
  const auto g = SmallRandomGraph(6, 80, 240);
  WorkloadGenerator wg(g, 17);
  WorkloadOptions wo;
  for (int i = 0; i < 10; ++i) {
    const auto q = wg.RandomGraphQuery(5, 6, wo);
    EXPECT_TRUE(q.IsConnected()) << q.ToString();
    EXPECT_GE(q.edge_count(), q.node_count() - 1);
    EXPECT_LE(q.edge_count(), 6);
  }
}

TEST(WorkloadGeneratorTest, SampledQueriesHaveAMatch) {
  // Queries sampled with no noise and no wildcards must have at least one
  // perfect match in the graph (the sampled subgraph itself).
  const auto g = SmallRandomGraph(7, 40, 100);
  WorkloadGenerator wg(g, 19);
  WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  wo.label_noise = 0.0;
  wo.keep_type = 0.0;
  const auto q = wg.RandomStarQuery(3, wo);
  star::testing::ScorerFixture fx(g, q, star::testing::TestConfig());
  for (int u = 0; u < q.node_count(); ++u) {
    EXPECT_FALSE(fx.scorer->Candidates(u).empty()) << "u=" << u;
  }
}

TEST(WorkloadGeneratorTest, PartialLabelsKeepOneToken) {
  const auto g = SmallRandomGraph(10, 60, 150);
  WorkloadGenerator wg(g, 21);
  WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  wo.label_noise = 0.0;
  wo.partial_label = 1.0;
  size_t single_token = 0, total = 0;
  for (int i = 0; i < 20; ++i) {
    const auto q = wg.RandomStarQuery(3, wo);
    for (const auto& n : q.nodes()) {
      ++total;
      single_token += SplitTokens(n.label).size() == 1;
    }
  }
  // Generated labels have >= 2 tokens, so partial_label = 1 forces single
  // tokens everywhere.
  EXPECT_EQ(single_token, total);
}

TEST(WorkloadGeneratorTest, DeterministicWorkloads) {
  const auto g = SmallRandomGraph(8, 60, 150);
  WorkloadGenerator wg1(g, 99), wg2(g, 99);
  const auto w1 = wg1.StarWorkload(5, 3, 5, {});
  const auto w2 = wg2.StarWorkload(5, 3, 5, {});
  ASSERT_EQ(w1.size(), w2.size());
  for (size_t i = 0; i < w1.size(); ++i) {
    EXPECT_EQ(w1[i].ToString(), w2[i].ToString());
  }
}

TEST(WorkloadGeneratorTest, GraphWorkloadCount) {
  const auto g = SmallRandomGraph(9, 60, 180);
  WorkloadGenerator wg(g, 3);
  EXPECT_EQ(wg.GraphWorkload(7, 4, 5, {}).size(), 7u);
}

}  // namespace
}  // namespace star::query
