// Replays every file in tests/corpus/ through the full differential
// matrix. Plain corpus files must run with zero violations; canary files
// (inject != none) must trip exactly the reuse-warm check — they exist to
// prove the harness still detects the class of bug they encode.
//
// Corpus files are generated with `star_fuzz --emit` and are fully
// self-contained (graph + query + config + seed provenance), so a failure
// here reproduces with: star_fuzz --replay tests/corpus/<file>.

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/differential.h"
#include "testing/fuzz_case.h"
#include "testing/replay.h"

#ifndef STAR_CORPUS_DIR
#error "STAR_CORPUS_DIR must point at tests/corpus"
#endif

namespace star::testing {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(STAR_CORPUS_DIR)) {
    if (entry.path().extension() == ".replay") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpusTest, CorpusIsNonEmpty) {
  EXPECT_GE(CorpusFiles().size(), 10u);
}

TEST(FuzzCorpusTest, EveryFileRoundTrips) {
  for (const auto& path : CorpusFiles()) {
    FuzzCase c;
    std::string err;
    ASSERT_TRUE(LoadReplayFile(path, &c, &err)) << path << ": " << err;
    FuzzCase reparsed;
    ASSERT_TRUE(ParseReplay(SerializeReplay(c), &reparsed, &err))
        << path << ": " << err;
    EXPECT_EQ(SerializeReplay(reparsed), SerializeReplay(c)) << path;
  }
}

TEST(FuzzCorpusTest, EveryFileReplaysClean) {
  const RunnerOptions opts;
  for (const auto& path : CorpusFiles()) {
    FuzzCase c;
    std::string err;
    ASSERT_TRUE(LoadReplayFile(path, &c, &err)) << path << ": " << err;
    const CaseOutcome o = RunDifferentialCase(c, opts);
    if (c.inject == BugInjection::kNone) {
      EXPECT_TRUE(o.ok()) << path << " (" << c.Describe() << ")\n  "
                          << o.Summary();
      continue;
    }
    // Canary: the injected bug must be flagged, and nothing else may be.
    ASSERT_FALSE(o.violations.empty())
        << path << ": injected bug not detected";
    for (const auto& v : o.violations) {
      EXPECT_EQ(v.check, "reuse-warm")
          << path << ": unexpected violation " << v.check << " @ " << v.cell
          << ": " << v.detail;
    }
  }
}

}  // namespace
}  // namespace star::testing
