// Bound-driven candidate retrieval (DESIGN.md "Bound-driven retrieval"):
// bitwise identity of the pruned path against the score-everything path
// across engines, thread counts, and postings layouts; adversarial ties
// at the max_candidates cut; and the block/node upper-bound soundness
// contract (a cap must dominate every member it covers).

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "graph/label_index.h"
#include "scoring/query_scorer.h"
#include "test_helpers.h"

namespace star::scoring {
namespace {

using star::testing::MovieGraph;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

std::vector<ScoredCandidate> CandidatesWith(const graph::KnowledgeGraph& g,
                                            const query::QueryGraph& q, int u,
                                            const text::SimilarityEnsemble& ens,
                                            MatchConfig cfg,
                                            const graph::LabelIndex* index,
                                            bool pruned) {
  cfg.use_pruned_retrieval = pruned;
  QueryScorer scorer(g, q, ens, cfg, index);
  const auto& c = scorer.Candidates(u);
  return {c.begin(), c.end()};
}

void ExpectBitwiseEqual(const std::vector<ScoredCandidate>& off,
                        const std::vector<ScoredCandidate>& on,
                        const std::string& cell) {
  ASSERT_EQ(off.size(), on.size()) << cell;
  for (size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].node, on[i].node) << cell << " at " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(off[i].score),
              std::bit_cast<uint64_t>(on[i].score))
        << cell << " at " << i;
  }
}

// Pruned candidate lists must be byte-identical to the unpruned ones for
// every (layout, thread count, cutoff, retrieval cap, index presence)
// cell — including partial labels that exercise the fuzzy trigram lists.
TEST(PrunedRetrievalTest, CandidateListsBitwiseIdentical) {
  for (const uint64_t seed : {1u, 7u, 23u}) {
    const graph::KnowledgeGraph g = SmallRandomGraph(seed, 60, 140);
    // One exact label, one partial (first token), one noisy miss.
    const std::string exact(g.NodeLabel(seed % g.node_count()));
    const std::string partial = exact.substr(0, exact.find(' '));
    for (const std::string& label : {exact, partial, partial + "zz"}) {
      query::QueryGraph q;
      const int u = q.AddNode(label);
      text::SimilarityEnsemble ens;
      for (const auto layout :
           {graph::GraphLayout::kFlat, graph::GraphLayout::kCompressed}) {
        const graph::LabelIndex index(g, layout);
        for (const int threads : {1, 4}) {
          for (const size_t max_candidates : {size_t{0}, size_t{1}, size_t{5}}) {
            for (const size_t max_retrieval : {size_t{0}, size_t{8}}) {
              MatchConfig cfg = TestConfig();
              cfg.threads = threads;
              cfg.max_candidates = max_candidates;
              cfg.max_retrieval = max_retrieval;
              const std::string cell =
                  label + "/layout=" +
                  (layout == graph::GraphLayout::kFlat ? "flat" : "compressed") +
                  "/t=" + std::to_string(threads) +
                  "/k=" + std::to_string(max_candidates) +
                  "/r=" + std::to_string(max_retrieval);
              ExpectBitwiseEqual(
                  CandidatesWith(g, q, u, ens, cfg, &index, false),
                  CandidatesWith(g, q, u, ens, cfg, &index, true), cell);
            }
          }
        }
      }
      // No-index fallback (full scan through the pooled pruner).
      MatchConfig cfg = TestConfig();
      cfg.max_candidates = 3;
      ExpectBitwiseEqual(CandidatesWith(g, q, u, ens, cfg, nullptr, false),
                         CandidatesWith(g, q, u, ens, cfg, nullptr, true),
                         label + "/no-index");
    }
  }
}

// Adversarial tie at the cut: many byte-identical labels score exactly
// 1.0, max_candidates slices inside the tie run. The deterministic
// truncation keeps the smallest ids; the pruned heap must reproduce that
// even though high-id duplicates arrive while the heap is already full.
TEST(PrunedRetrievalTest, TieAtTheCutKeepsSmallestIds) {
  graph::KnowledgeGraph::Builder b;
  for (int i = 0; i < 40; ++i) b.AddNode("Brad Pitt", "Actor");
  for (int i = 0; i < 40; ++i) b.AddNode("Brad Garrett Longname", "Actor");
  const graph::KnowledgeGraph g = std::move(b).Build();

  query::QueryGraph q;
  const int u = q.AddNode("Brad Pitt");
  text::SimilarityEnsemble ens;
  for (const auto layout :
       {graph::GraphLayout::kFlat, graph::GraphLayout::kCompressed}) {
    const graph::LabelIndex index(g, layout);
    for (const size_t k : {size_t{1}, size_t{7}, size_t{40}, size_t{55}}) {
      MatchConfig cfg = TestConfig();
      cfg.max_candidates = k;
      const auto off = CandidatesWith(g, q, u, ens, cfg, &index, false);
      const auto on = CandidatesWith(g, q, u, ens, cfg, &index, true);
      ExpectBitwiseEqual(off, on, "tie/k=" + std::to_string(k));
      // The exact-match prefix must be ids 0..min(k,40)-1 in order.
      const size_t exact = std::min<size_t>(k, 40);
      ASSERT_GE(on.size(), exact);
      for (size_t i = 0; i < exact; ++i) {
        EXPECT_EQ(on[i].node, static_cast<graph::NodeId>(i));
        EXPECT_DOUBLE_EQ(on[i].score, 1.0);
      }
    }
  }
}

// Soundness property behind every skip decision: a block's cap dominates
// the true ensemble score of every member it covers, and the per-node
// bound dominates that node's score — for every block of every retrieval
// list, in both layouts, on graphs big enough to have multi-block lists.
TEST(PrunedRetrievalTest, BlockAndNodeBoundsDominateMembers) {
  graph::KnowledgeGraph::Builder b;
  // > 2 full blocks of one shared token with wildly varying label shapes.
  for (int i = 0; i < 300; ++i) {
    std::string label = "alpha";
    for (int j = 0; j < i % 7; ++j) label += " tail" + std::to_string(j);
    if (i % 11 == 0) label = "alpha 1234";
    b.AddNode(std::move(label), i % 3 == 0 ? "Thing" : "");
  }
  const graph::KnowledgeGraph g = std::move(b).Build();

  text::SimilarityEnsemble ens;
  for (const std::string& label :
       {std::string("alpha tail0"), std::string("alpha 1234"),
        std::string("alphaz")}) {
    const auto batch = ens.PrepareBatch(label);
    for (const auto layout :
         {graph::GraphLayout::kFlat, graph::GraphLayout::kCompressed}) {
      const graph::LabelIndex index(g, layout);
      const auto lists = index.RetrievalLists(label, /*type=*/-1);
      ASSERT_FALSE(lists.empty());
      size_t blocks_seen = 0;
      for (const auto& l : lists) {
        for (size_t blk = 0; blk < index.ListBlocks(l); ++blk) {
          ++blocks_seen;
          const double cap =
              ens.RetrievalBlockBound(batch, index.BlockStats(l, blk));
          auto cursor = index.BlockCursor(l, blk);
          uint32_t v;
          size_t members = 0;
          while (cursor.Next(&v)) {
            ++members;
            const double node_cap = ens.RetrievalNodeBound(
                batch, index.NodeLabelLength(v), index.NodeLooksNumeric(v));
            const double score = ens.Score(label, g.NodeLabel(v));
            EXPECT_GE(cap + 1e-9, score)
                << label << " block " << blk << " node " << v;
            EXPECT_GE(node_cap + 1e-9, score) << label << " node " << v;
            EXPECT_GE(cap + 1e-9, node_cap)
                << label << " block " << blk << " node " << v;
          }
          EXPECT_EQ(members, index.BlockSize(l, blk));
        }
      }
      // The shared "alpha" token must have produced a multi-block list.
      EXPECT_GT(blocks_seen, 2u) << label;
    }
  }
}

// Mid-list resume in the compressed layout: concatenating every block
// cursor must reproduce the list exactly (strictly ascending ids, full
// count) — the delta decode depends on the recorded (offset, prev) pair.
TEST(PrunedRetrievalTest, BlockCursorsTileTheListBothLayouts) {
  const graph::KnowledgeGraph g = SmallRandomGraph(5, 400, 900);
  const std::string label(g.NodeLabel(0));
  for (const auto layout :
       {graph::GraphLayout::kFlat, graph::GraphLayout::kCompressed}) {
    const graph::LabelIndex index(g, layout);
    for (const auto& l : index.RetrievalLists(label, /*type=*/-1)) {
      std::vector<uint32_t> ids;
      for (size_t blk = 0; blk < index.ListBlocks(l); ++blk) {
        auto cursor = index.BlockCursor(l, blk);
        uint32_t v;
        while (cursor.Next(&v)) ids.push_back(v);
      }
      ASSERT_EQ(ids.size(), index.ListCount(l));
      for (size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
    }
  }
}

// On a selective query over a large posting union, pruning must actually
// skip work (whole blocks and individually bounded nodes) while staying
// bitwise identical — the counters are the bench's speedup evidence.
TEST(PrunedRetrievalTest, SelectiveQuerySkipsBlocks) {
  graph::KnowledgeGraph::Builder b;
  for (int i = 0; i < 600; ++i) b.AddNode("alpha beta");
  for (int i = 0; i < 600; ++i) {
    b.AddNode("alpha gamma delta epsilon zeta eta theta iota");
  }
  const graph::KnowledgeGraph g = std::move(b).Build();
  const graph::LabelIndex index(g);
  text::SimilarityEnsemble ens;
  query::QueryGraph q;
  const int u = q.AddNode("alpha beta");
  MatchConfig cfg = TestConfig();
  cfg.max_candidates = 5;

  const auto off = CandidatesWith(g, q, u, ens, cfg, &index, false);
  QueryScorer scorer(g, q, ens, cfg, &index);
  const auto& on = scorer.Candidates(u);
  ExpectBitwiseEqual(off, {on.begin(), on.end()}, "selective");

  const auto& stats = scorer.retrieval_stats();
  EXPECT_GT(stats.blocks_considered, 0u);
  EXPECT_GT(stats.blocks_skipped, 0u);
  EXPECT_LT(stats.nodes_scored, g.node_count());
}

// End-to-end: full TopK matches across all three engines, serial and
// parallel, both layouts, must be byte-identical with retrieval pruning
// on and off (scores AND mapped nodes).
TEST(PrunedRetrievalTest, FrameworkTopKBitwiseIdentical) {
  for (const uint64_t seed : {2u, 9u}) {
    const graph::KnowledgeGraph g = SmallRandomGraph(seed, 40, 90);
    query::QueryGraph q;
    const std::string pivot(g.NodeLabel(1));
    const std::string leaf(g.NodeLabel(2));
    const int a = q.AddNode(pivot);
    const int b = q.AddNode(leaf);
    q.AddEdge(a, b);
    for (const auto layout :
         {graph::GraphLayout::kFlat, graph::GraphLayout::kCompressed}) {
      const graph::LabelIndex index(g, layout);
      for (const auto strategy :
           {core::StarStrategy::kStark, core::StarStrategy::kStard,
            core::StarStrategy::kHybrid}) {
        for (const int threads : {1, 4}) {
          core::StarOptions opts;
          opts.strategy = strategy;
          opts.match = TestConfig(2);
          opts.match.threads = threads;
          opts.match.max_candidates = 6;

          text::SimilarityEnsemble ens;
          opts.match.use_pruned_retrieval = false;
          core::StarFramework off_fw(g, ens, &index, opts);
          const auto off = off_fw.TopK(q, 8);

          opts.match.use_pruned_retrieval = true;
          core::StarFramework on_fw(g, ens, &index, opts);
          const auto on = on_fw.TopK(q, 8);

          ASSERT_EQ(off.size(), on.size());
          for (size_t i = 0; i < off.size(); ++i) {
            EXPECT_EQ(std::bit_cast<uint64_t>(off[i].score),
                      std::bit_cast<uint64_t>(on[i].score));
            EXPECT_EQ(off[i].mapping, on[i].mapping);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace star::scoring
