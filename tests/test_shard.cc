// Tests for the sharded execution subsystem (src/shard/): partitioner
// determinism and quality stats, the central bitwise-identity contract
// (ShardEngine::TopK == StarFramework::TopK on the unsharded graph, same
// score bits and tie order), reuse-cache interaction, coordinator
// deadline/cancellation prefixes, the no-leaked-session invariant, and a
// concurrency suite named *ParallelDeterminism* for the TSan CI filter.

#include "shard/coordinator.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "query/workload.h"
#include "serve/query_service.h"
#include "serve/star_cache.h"
#include "shard/partitioner.h"
#include "test_helpers.h"

namespace star::shard {
namespace {

using star::testing::MovieGraph;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

core::StarOptions MakeOptions(int d, core::StarStrategy strategy,
                              core::ReuseCache* reuse = nullptr) {
  core::StarOptions o;
  o.strategy = strategy;
  o.match = TestConfig(d);
  o.alpha = 0.5;
  o.reuse = reuse;
  return o;
}

/// Bitwise match-list identity: same size, same mappings, same score
/// BITS (memcmp, not epsilon — the sharded backend's contract).
void ExpectBitwiseIdentical(const std::vector<core::GraphMatch>& got,
                            const std::vector<core::GraphMatch>& want,
                            const std::string& ctx) {
  ASSERT_EQ(got.size(), want.size()) << ctx;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].mapping, want[i].mapping) << ctx << " match " << i;
    EXPECT_EQ(std::memcmp(&got[i].score, &want[i].score, sizeof(double)), 0)
        << ctx << " match " << i << " score " << got[i].score
        << " != " << want[i].score;
  }
}

/// True if `prefix` is a bitwise prefix of `full`.
bool IsBitwisePrefix(const std::vector<core::GraphMatch>& prefix,
                     const std::vector<core::GraphMatch>& full) {
  if (prefix.size() > full.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i].mapping != full[i].mapping) return false;
    if (std::memcmp(&prefix[i].score, &full[i].score, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

query::QueryGraph BradAwardQuery() {
  query::QueryGraph q;
  const int brad = q.AddNode("Brad");
  const int maker = q.AddWildcardNode("Director");
  const int award = q.AddNode("Award");
  q.AddEdge(brad, maker);
  q.AddEdge(maker, award);
  return q;
}

// ---------------------------------------------------------------------------
// Partitioner.
// ---------------------------------------------------------------------------

TEST(ShardPartitionTest, HashAssignmentIsPinned) {
  // The splitmix64 finalizer is a fixed, platform-independent function of
  // the node id; these literals are the regression pin. If this test
  // fails, the hash changed and every persisted placement decision (and
  // the fuzz corpus's shard cells) silently moved.
  const auto g = MovieGraph();
  ASSERT_EQ(g.node_count(), 10u);
  PartitionOptions po;
  po.policy = PartitionPolicy::kHash;
  po.shards = 2;
  const auto p2 = ShardPartition::Build(g, po);
  const uint32_t want2[10] = {1, 1, 0, 1, 0, 0, 0, 1, 0, 0};
  for (graph::NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(p2.OwnerOf(v), want2[v]) << "node " << v;
  }
  po.shards = 4;
  const auto p4 = ShardPartition::Build(g, po);
  const uint32_t want4[10] = {3, 1, 2, 1, 2, 2, 0, 3, 2, 0};
  for (graph::NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(p4.OwnerOf(v), want4[v]) << "node " << v;
  }
}

TEST(ShardPartitionTest, BuildIsDeterministic) {
  const auto g = SmallRandomGraph(7);
  for (const auto policy : {PartitionPolicy::kHash, PartitionPolicy::kLabelRange}) {
    PartitionOptions po;
    po.policy = policy;
    po.shards = 3;
    const auto a = ShardPartition::Build(g, po);
    const auto b = ShardPartition::Build(g, po);
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      ASSERT_EQ(a.OwnerOf(v), b.OwnerOf(v));
    }
    ASSERT_EQ(a.boundary_edges().size(), b.boundary_edges().size());
    ASSERT_EQ(a.stats().cut_edges, b.stats().cut_edges);
    ASSERT_EQ(a.stats().balance, b.stats().balance);
  }
}

TEST(ShardPartitionTest, StatsAreConsistentForBothPolicies) {
  const auto g = SmallRandomGraph(11, 30, 64);
  for (const auto policy : {PartitionPolicy::kHash, PartitionPolicy::kLabelRange}) {
    PartitionOptions po;
    po.policy = policy;
    po.shards = 4;
    const auto p = ShardPartition::Build(g, po);
    const auto& st = p.stats();
    EXPECT_EQ(st.shards, 4u);
    EXPECT_EQ(st.total_nodes, g.node_count());
    EXPECT_EQ(st.total_edges, g.edge_count());
    EXPECT_EQ(st.cut_edges, p.boundary_edges().size());
    EXPECT_GE(st.edge_cut_fraction, 0.0);
    EXPECT_LE(st.edge_cut_fraction, 1.0);
    EXPECT_GE(st.balance, 1.0) << "balance is max/mean, never below 1";
    size_t owned_sum = 0;
    for (const size_t c : st.owned_nodes) owned_sum += c;
    EXPECT_EQ(owned_sum, g.node_count()) << "ownership is a partition";
    // Every boundary edge's endpoints really live on different shards.
    for (const auto& be : p.boundary_edges()) {
      EXPECT_NE(be.src_shard, be.dst_shard);
      EXPECT_EQ(p.OwnerOf(g.EdgeSrc(be.edge)), be.src_shard);
      EXPECT_EQ(p.OwnerOf(g.EdgeDst(be.edge)), be.dst_shard);
    }
    // Shard graphs replicate the full node table; adjacency is a subset.
    size_t stored_edges = 0;
    for (size_t s = 0; s < p.shards(); ++s) {
      EXPECT_EQ(p.shard_graph(s).node_count(), g.node_count());
      EXPECT_LE(p.shard_graph(s).edge_count(), g.edge_count());
      stored_edges += st.shard_edges[s];
    }
    EXPECT_GE(stored_edges, g.edge_count())
        << "every edge is stored on at least its owner shards";
    const std::string report = FormatPartitionReport(st);
    EXPECT_NE(report.find("shards=4"), std::string::npos) << report;
    EXPECT_NE(report.find("shard 3:"), std::string::npos) << report;
  }
}

TEST(ShardPartitionTest, LabelRangeKeepsContiguousLabelRuns) {
  const auto g = MovieGraph();
  PartitionOptions po;
  po.policy = PartitionPolicy::kLabelRange;
  po.shards = 2;
  const auto p = ShardPartition::Build(g, po);
  // Counts split 5/5 (10 nodes, equal cuts) and the assignment respects
  // lexicographic label order: a node on shard 1 never has a label below a
  // node on shard 0.
  EXPECT_EQ(p.stats().owned_nodes[0], 5u);
  EXPECT_EQ(p.stats().owned_nodes[1], 5u);
  std::string max_s0, min_s1;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const std::string l(g.NodeLabel(v));
    if (p.OwnerOf(v) == 0) {
      if (l > max_s0) max_s0 = l;
    } else if (min_s1.empty() || l < min_s1) {
      min_s1 = l;
    }
  }
  EXPECT_LE(max_s0, min_s1);
}

TEST(ShardPartitionTest, ShardGraphNodeTablesReproduceBitwise) {
  const auto g = SmallRandomGraph(5);
  PartitionOptions po;
  po.shards = 3;
  const auto p = ShardPartition::Build(g, po);
  for (size_t s = 0; s < p.shards(); ++s) {
    const auto& sg = p.shard_graph(s);
    ASSERT_EQ(sg.node_count(), g.node_count());
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(sg.NodeLabel(v), g.NodeLabel(v));
      EXPECT_EQ(sg.NodeType(v), g.NodeType(v));
    }
    ASSERT_EQ(sg.relation_count(), g.relation_count());
    for (uint32_t r = 0; r < g.relation_count(); ++r) {
      EXPECT_EQ(sg.RelationName(r), g.RelationName(r));
    }
  }
}

// ---------------------------------------------------------------------------
// Bitwise identity: ShardEngine vs StarFramework.
// ---------------------------------------------------------------------------

struct IdentityCase {
  uint64_t seed;  // 0 = MovieGraph
  int d;
  size_t shards;
  core::StarStrategy strategy;
  PartitionPolicy policy;
};

class ShardIdentity : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(ShardIdentity, MatchesSingleProcessBitwise) {
  const auto p = GetParam();
  const graph::KnowledgeGraph g =
      p.seed == 0 ? MovieGraph() : SmallRandomGraph(p.seed, 26, 56);
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  const auto options = MakeOptions(p.d, p.strategy);

  core::StarFramework fw(g, ensemble, &index, options);

  ShardCluster::Options co;
  co.partition.policy = p.policy;
  co.partition.shards = p.shards;
  co.partition.halo_depth = p.d;
  ShardCluster cluster(g, ensemble, &index, co);
  ShardEngine::Options eo;
  eo.star = options;
  ShardEngine engine(cluster, eo);

  // A mixed workload: star, path, and general (cyclic-capable) queries,
  // with wildcards in the mix.
  query::WorkloadGenerator wg(g, p.seed * 31 + 7);
  query::WorkloadOptions wo;
  std::vector<query::QueryGraph> queries;
  queries.push_back(BradAwardQuery());
  for (int i = 0; i < 3; ++i) {
    queries.push_back(wg.RandomStarQuery(3, wo));
    queries.push_back(wg.RandomPathQuery(3, wo));
    queries.push_back(wg.RandomGraphQuery(4, 5, wo));
  }

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& q = queries[qi];
    if (!q.IsConnected() || q.node_count() == 0) continue;
    for (const size_t k : {1u, 4u, 9u}) {
      const auto want = fw.TopK(q, k);
      const auto got = engine.TopK(q, k);
      ExpectBitwiseIdentical(
          got, want,
          "seed=" + std::to_string(p.seed) + " d=" + std::to_string(p.d) +
              " shards=" + std::to_string(p.shards) + " k=" +
              std::to_string(k) + " q" + std::to_string(qi));
      EXPECT_FALSE(engine.last_stats().cancelled);
      EXPECT_EQ(engine.last_stats().shard.shards, p.shards);
    }
    ASSERT_EQ(cluster.active_sessions(), 0u)
        << "no worker session may outlive its request";
  }
}

std::vector<IdentityCase> IdentityCases() {
  std::vector<IdentityCase> cases;
  const core::StarStrategy strategies[] = {core::StarStrategy::kStark,
                                           core::StarStrategy::kStard,
                                           core::StarStrategy::kHybrid};
  int i = 0;
  for (const uint64_t seed : {0ull, 3ull, 9ull, 21ull}) {
    for (const int d : {1, 2}) {
      for (const size_t shards : {2ul, 4ul}) {
        cases.push_back({seed, d, shards, strategies[i % 3],
                         i % 2 == 0 ? PartitionPolicy::kHash
                                    : PartitionPolicy::kLabelRange});
        ++i;
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardIdentity,
                         ::testing::ValuesIn(IdentityCases()));

TEST(ShardEngineTest, SingleShardDegenerateMatchesFramework) {
  const auto g = MovieGraph();
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  const auto options = MakeOptions(2, core::StarStrategy::kStard);
  core::StarFramework fw(g, ensemble, &index, options);
  ShardCluster::Options co;
  co.partition.shards = 1;
  co.partition.halo_depth = 2;
  ShardCluster cluster(g, ensemble, &index, co);
  ShardEngine::Options eo;
  eo.star = options;
  ShardEngine engine(cluster, eo);
  const auto q = BradAwardQuery();
  ExpectBitwiseIdentical(engine.TopK(q, 5), fw.TopK(q, 5), "shards=1");
}

TEST(ShardEngineTest, NoIndexRetrievalSemanticsArePreserved) {
  // Without a global LabelIndex the single-process engine scans all of V;
  // the workers must do the same (their shard indexes stay unused) or the
  // candidate slices diverge.
  const auto g = SmallRandomGraph(37, 26, 56);
  text::SimilarityEnsemble ensemble;
  const auto options = MakeOptions(1, core::StarStrategy::kStard);
  core::StarFramework fw(g, ensemble, nullptr, options);
  ShardCluster::Options co;
  co.partition.shards = 2;
  co.partition.halo_depth = 1;
  ShardCluster cluster(g, ensemble, nullptr, co);
  ShardEngine::Options eo;
  eo.star = options;
  ShardEngine engine(cluster, eo);
  query::WorkloadGenerator wg(g, 13);
  for (int i = 0; i < 3; ++i) {
    const auto q = wg.RandomStarQuery(3, query::WorkloadOptions{});
    ExpectBitwiseIdentical(engine.TopK(q, 5), fw.TopK(q, 5),
                           "no-index q" + std::to_string(i));
  }
}

TEST(ShardEngineTest, ReuseCacheWarmRunIsBitwiseIdentical) {
  const auto g = SmallRandomGraph(13, 26, 56);
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  serve::StarCache cache(64, 64);
  const auto options = MakeOptions(1, core::StarStrategy::kStard, &cache);

  core::StarFramework fw(g, ensemble, &index,
                         MakeOptions(1, core::StarStrategy::kStard));

  ShardCluster::Options co;
  co.partition.shards = 2;
  co.partition.halo_depth = 1;
  ShardCluster cluster(g, ensemble, &index, co);
  ShardEngine::Options eo;
  eo.star = options;

  query::QueryGraph q;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    query::WorkloadGenerator wg(g, seed);
    q = wg.RandomGraphQuery(4, 4, query::WorkloadOptions{});
    if (q.IsConnected() && !q.IsStar()) break;
  }
  ASSERT_TRUE(q.IsConnected() && !q.IsStar()) << "no usable sample in 32 seeds";

  const auto want = fw.TopK(q, 6);
  ShardEngine cold(cluster, eo);
  const auto first = cold.TopK(q, 6);
  ExpectBitwiseIdentical(first, want, "cold sharded vs framework");
  EXPECT_GT(cold.last_stats().star_cache_misses, 0u);

  ShardEngine warm(cluster, eo);
  const auto second = warm.TopK(q, 6);
  ExpectBitwiseIdentical(second, first, "warm sharded vs cold sharded");
  EXPECT_GT(warm.last_stats().star_cache_hits, 0u);
  EXPECT_EQ(cluster.active_sessions(), 0u);
}

TEST(ShardEngineTest, EagerGatherPullsAtLeastAsMuchAsLazyMerge) {
  const auto g = SmallRandomGraph(17, 30, 64);
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  const auto options = MakeOptions(1, core::StarStrategy::kStark);
  ShardCluster::Options co;
  co.partition.shards = 4;
  co.partition.halo_depth = 1;
  ShardCluster cluster(g, ensemble, &index, co);

  query::WorkloadGenerator wg(g, 23);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto q = wg.RandomGraphQuery(4, 4, wo);
  if (!q.IsConnected()) GTEST_SKIP() << "degenerate sample";

  ShardEngine::Options lazy_opts;
  lazy_opts.star = options;
  ShardEngine lazy(cluster, lazy_opts);
  const auto lazy_out = lazy.TopK(q, 3);

  ShardEngine::Options eager_opts;
  eager_opts.star = options;
  eager_opts.eager_gather = true;
  ShardEngine eager(cluster, eager_opts);
  const auto eager_out = eager.TopK(q, 3);

  // eager_gather is the full-gather bench baseline: the bound-driven lazy
  // merge must never pull more than it (and on real workloads pulls
  // strictly less — the bench asserts the strict version).
  EXPECT_LE(lazy.last_stats().shard.total_pulls,
            eager.last_stats().shard.total_pulls);
  EXPECT_EQ(lazy_out.size(), eager_out.size());
  EXPECT_EQ(cluster.active_sessions(), 0u);
}

// ---------------------------------------------------------------------------
// Coordinator deadline / cancellation.
// ---------------------------------------------------------------------------

TEST(ShardDeadlineTest, PreExpiredDeadlineReturnsEmptyWithoutPulls) {
  const auto g = MovieGraph();
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  ShardCluster::Options co;
  co.partition.shards = 2;
  co.partition.halo_depth = 2;
  ShardCluster cluster(g, ensemble, &index, co);
  ShardEngine::Options eo;
  eo.star = MakeOptions(2, core::StarStrategy::kStard);
  ShardEngine engine(cluster, eo);

  Cancellation cancel(Deadline::Expired());
  const auto out = engine.TopK(BradAwardQuery(), 5, &cancel);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(engine.last_stats().cancelled);
  EXPECT_EQ(engine.last_stats().shard.total_pulls, 0u);
  EXPECT_EQ(cluster.active_sessions(), 0u);
}

TEST(ShardDeadlineTest, ExplicitCancelYieldsOrderedPrefix) {
  const auto g = SmallRandomGraph(29, 30, 64);
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  const auto options = MakeOptions(1, core::StarStrategy::kStard);

  core::StarFramework fw(g, ensemble, &index, options);
  query::WorkloadGenerator wg(g, 3);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto q = wg.RandomGraphQuery(4, 4, wo);
  if (!q.IsConnected()) GTEST_SKIP() << "degenerate sample";
  const auto full = fw.TopK(q, 8);

  // Cancel after the third pull on any shard: whatever comes back must be
  // a bitwise prefix of the exact answer.
  std::atomic<int> pulls{0};
  Cancellation cancel;
  ShardCluster::Options co;
  co.partition.shards = 2;
  co.partition.halo_depth = 1;
  co.before_pull = [&](size_t) {
    if (pulls.fetch_add(1) == 3) cancel.Cancel();
  };
  ShardCluster cluster(g, ensemble, &index, co);
  ShardEngine::Options eo;
  eo.star = options;
  ShardEngine engine(cluster, eo);

  const auto out = engine.TopK(q, 8, &cancel);
  EXPECT_TRUE(IsBitwisePrefix(out, full))
      << "cancelled run returned " << out.size()
      << " matches that are not a prefix of the exact top-k";
  if (out.size() < full.size()) {
    EXPECT_TRUE(engine.last_stats().cancelled);
  }
  EXPECT_EQ(cluster.active_sessions(), 0u)
      << "no worker session may outlive a cancelled request";
}

TEST(ShardDeadlineTest, OneSlowShardStillYieldsOrderedPrefix) {
  const auto g = SmallRandomGraph(31, 30, 64);
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  const auto options = MakeOptions(1, core::StarStrategy::kStark);

  core::StarFramework fw(g, ensemble, &index, options);
  query::WorkloadGenerator wg(g, 9);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto q = wg.RandomGraphQuery(4, 4, wo);
  if (!q.IsConnected()) GTEST_SKIP() << "degenerate sample";
  const auto full = fw.TopK(q, 8);

  // Shard 0 sleeps on every pull; the deadline lands mid-query. The
  // contract is timing-independent: wherever the expiry hits, the result
  // is a bitwise prefix and all sessions are closed on return.
  ShardCluster::Options co;
  co.partition.shards = 2;
  co.partition.halo_depth = 1;
  co.before_pull = [](size_t shard) {
    if (shard == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };
  ShardCluster cluster(g, ensemble, &index, co);
  ShardEngine::Options eo;
  eo.star = options;
  ShardEngine engine(cluster, eo);

  Cancellation cancel(Deadline::AfterMillis(5));
  const auto out = engine.TopK(q, 8, &cancel);
  EXPECT_TRUE(IsBitwisePrefix(out, full));
  EXPECT_EQ(cluster.active_sessions(), 0u);
}

// ---------------------------------------------------------------------------
// QueryService integration (ServiceOptions::shards).
// ---------------------------------------------------------------------------

TEST(ShardServiceTest, ShardedBackendMatchesSingleProcessService) {
  const auto g = MovieGraph();
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);

  serve::ServiceOptions base;
  base.star = MakeOptions(2, core::StarStrategy::kStard);
  serve::QueryService single(g, ensemble, &index, base);

  serve::ServiceOptions sharded_opts = base;
  sharded_opts.shards = 2;
  serve::QueryService sharded(g, ensemble, &index, sharded_opts);
  ASSERT_NE(sharded.shard_cluster(), nullptr);
  EXPECT_EQ(single.shard_cluster(), nullptr);

  serve::QueryRequest req;
  req.query = BradAwardQuery();
  req.k = 5;
  const auto want = single.Execute(req);
  const auto got = sharded.Execute(req);
  ASSERT_TRUE(want.status.ok());
  ASSERT_TRUE(got.status.ok());
  ExpectBitwiseIdentical(got.matches, want.matches, "service sharded vs single");
  EXPECT_EQ(got.framework.shard.shards, 2u);

  // Result-cache semantics are unchanged: the second identical request
  // hits and returns the same bits without touching the cluster.
  const auto hit = sharded.Execute(req);
  EXPECT_TRUE(hit.cache_hit);
  ExpectBitwiseIdentical(hit.matches, got.matches, "sharded cache hit");

  const serve::ServiceStats stats = sharded.stats();
  EXPECT_EQ(stats.sharded_queries, 1u) << "cache hit must not re-execute";
  EXPECT_GT(stats.shard_pulls, 0u);
  EXPECT_EQ(sharded.shard_cluster()->active_sessions(), 0u);
}

TEST(ShardServiceTest, ShardsOfOneStaysSingleProcess) {
  const auto g = MovieGraph();
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  serve::ServiceOptions so;
  so.star = MakeOptions(1, core::StarStrategy::kStard);
  so.shards = 1;
  serve::QueryService service(g, ensemble, &index, so);
  EXPECT_EQ(service.shard_cluster(), nullptr)
      << "shards <= 1 keeps the single-process engine";
}

TEST(ShardServiceTest, LabelRangePolicyServesIdenticalResults) {
  const auto g = SmallRandomGraph(41, 26, 56);
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);

  serve::ServiceOptions base;
  base.star = MakeOptions(1, core::StarStrategy::kHybrid);
  serve::QueryService single(g, ensemble, &index, base);

  serve::ServiceOptions sharded_opts = base;
  sharded_opts.shards = 4;
  sharded_opts.partition_policy = PartitionPolicy::kLabelRange;
  serve::QueryService sharded(g, ensemble, &index, sharded_opts);

  query::WorkloadGenerator wg(g, 4);
  for (int i = 0; i < 4; ++i) {
    serve::QueryRequest req;
    req.query = wg.RandomStarQuery(3, query::WorkloadOptions{});
    req.k = 4;
    const auto want = single.Execute(req);
    const auto got = sharded.Execute(req);
    ASSERT_EQ(got.status.ok(), want.status.ok());
    if (!want.status.ok()) continue;
    ExpectBitwiseIdentical(got.matches, want.matches,
                           "label-range q" + std::to_string(i));
  }
  EXPECT_EQ(sharded.shard_cluster()->active_sessions(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency suite. Named *ParallelDeterminism* so it runs under the same
// TSan CI filter as the thread-pool determinism tests (plus the *Shard*
// filter entry).
// ---------------------------------------------------------------------------

TEST(ShardParallelDeterminismTest, ConcurrentEnginesOverOneClusterStayExact) {
  const auto g = SmallRandomGraph(19, 30, 64);
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  const auto options = MakeOptions(1, core::StarStrategy::kStard);

  core::StarFramework fw(g, ensemble, &index, options);
  query::WorkloadGenerator wg(g, 37);
  std::vector<query::QueryGraph> queries;
  std::vector<std::vector<core::GraphMatch>> expected;
  const size_t k = 4;
  for (int i = 0; i < 5; ++i) {
    query::QueryGraph q = wg.RandomStarQuery(3, query::WorkloadOptions{});
    expected.push_back(fw.TopK(q, k));
    queries.push_back(std::move(q));
  }

  ShardCluster::Options co;
  co.partition.shards = 2;
  co.partition.halo_depth = 1;
  ShardCluster cluster(g, ensemble, &index, co);

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 8;
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const size_t qi = static_cast<size_t>(c + r) % queries.size();
        ShardEngine::Options eo;
        eo.star = options;
        ShardEngine engine(cluster, eo);
        const auto got = engine.TopK(queries[qi], k);
        const auto& want = expected[qi];
        bool same = got.size() == want.size();
        for (size_t i = 0; same && i < want.size(); ++i) {
          same = got[i].mapping == want[i].mapping &&
                 got[i].score == want[i].score;
        }
        if (!same) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent sharded requests must stay bitwise exact";
  EXPECT_EQ(cluster.active_sessions(), 0u);
}

TEST(ShardParallelDeterminismTest, ConcurrentShardedServiceRequests) {
  const auto g = SmallRandomGraph(23, 30, 64);
  text::SimilarityEnsemble ensemble;
  graph::LabelIndex index(g);
  serve::ServiceOptions so;
  so.star = MakeOptions(1, core::StarStrategy::kStark);
  so.shards = 2;
  so.max_inflight = 4;
  serve::QueryService service(g, ensemble, &index, so);

  core::StarFramework fw(g, ensemble, &index, so.star);
  query::WorkloadGenerator wg(g, 41);
  std::vector<query::QueryGraph> queries;
  std::vector<std::vector<core::GraphMatch>> expected;
  const size_t k = 4;
  for (int i = 0; i < 4; ++i) {
    query::QueryGraph q = wg.RandomStarQuery(3, query::WorkloadOptions{});
    expected.push_back(fw.TopK(q, k));
    queries.push_back(std::move(q));
  }

  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < 8; ++r) {
        const size_t qi = static_cast<size_t>(c + r) % queries.size();
        serve::QueryRequest req;
        req.query = queries[qi];
        req.k = k;
        const auto resp = service.Execute(std::move(req));
        if (!resp.status.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const auto& want = expected[qi];
        bool same = resp.matches.size() == want.size();
        for (size_t i = 0; same && i < want.size(); ++i) {
          same = resp.matches[i].mapping == want[i].mapping &&
                 resp.matches[i].score == want[i].score;
        }
        if (!same) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service.shard_cluster()->active_sessions(), 0u);
}

}  // namespace
}  // namespace star::shard
