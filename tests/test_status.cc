#include "common/status.h"

#include <gtest/gtest.h>

#include "common/deadline.h"

namespace star {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactories) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::CorruptData("x").code(), StatusCode::kCorruptData);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Overloaded("x").code(), StatusCode::kOverloaded);
  EXPECT_FALSE(Status::IoError("x").ok());
}

TEST(StatusTest, ServingCodesAreErrors) {
  EXPECT_FALSE(Status::DeadlineExceeded("late").ok());
  EXPECT_FALSE(Status::Overloaded("full").ok());
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_EQ(Status::Overloaded("full").ToString(), "Overloaded: full");
}

TEST(StatusTest, ToStringIncludesMessage) {
  const auto s = Status::InvalidArgument("k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(ResultTest, ValueAccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorAccess) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(DeadlineTest, InfiniteByDefault) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_millis(),
            std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, ExpiredFactoryIsExpired) {
  const Deadline d = Deadline::Expired();
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_millis(), 0.0);
}

TEST(DeadlineTest, AfterMillisExpiresInTheFuture) {
  const Deadline d = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_millis(), 0.0);
  EXPECT_TRUE(Deadline::AfterMillis(-1).expired());
}

TEST(CancellationTest, CancelFlagStopsChecker) {
  Cancellation c;
  CancelChecker check(&c);
  EXPECT_FALSE(check.ShouldStop());
  c.Cancel();
  EXPECT_TRUE(c.cancelled());
  EXPECT_TRUE(check.ShouldStop());
}

TEST(CancellationTest, ExpiredDeadlineStopsOnFirstCheck) {
  Cancellation c(Deadline::Expired());
  CancelChecker check(&c);
  // The first call consults the clock, so pre-expired deadlines stop
  // immediately instead of after a checkpoint stride.
  EXPECT_TRUE(check.ShouldStop());
  EXPECT_TRUE(c.ShouldStop());
}

TEST(CancellationTest, NullCheckerNeverStops) {
  CancelChecker check(nullptr);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(check.ShouldStop());
}

}  // namespace
}  // namespace star
