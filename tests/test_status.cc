#include "common/status.h"

#include <gtest/gtest.h>

namespace star {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactories) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::CorruptData("x").code(), StatusCode::kCorruptData);
  EXPECT_FALSE(Status::IoError("x").ok());
}

TEST(StatusTest, ToStringIncludesMessage) {
  const auto s = Status::InvalidArgument("k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(ResultTest, ValueAccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorAccess) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace star
