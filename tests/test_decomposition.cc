#include "core/decomposition.h"

#include <vector>

#include <gtest/gtest.h>

#include "query/workload.h"
#include "test_helpers.h"

namespace star::core {
namespace {

using star::testing::ScorerFixture;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

query::QueryGraph TriangleQuery() {
  query::QueryGraph q;
  const int a = q.AddNode("A");
  const int b = q.AddNode("B");
  const int c = q.AddNode("C");
  q.AddEdge(a, b);
  q.AddEdge(b, c);
  q.AddEdge(a, c);
  return q;
}

query::QueryGraph DoubleStarQuery() {
  // Two hubs joined by a bridge: 0-1, 0-2, 0-3, 3-4, 3-5.
  query::QueryGraph q;
  for (int i = 0; i < 6; ++i) q.AddNode("n" + std::to_string(i));
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(0, 3);
  q.AddEdge(3, 4);
  q.AddEdge(3, 5);
  return q;
}

TEST(DecompositionTest, StarQueryIsSingleStar) {
  query::QueryGraph q;
  const int a = q.AddNode("A");
  const int b = q.AddNode("B");
  const int c = q.AddNode("C");
  q.AddEdge(a, b);
  q.AddEdge(a, c);
  DecompositionOptions opts;
  const auto stars = DecomposeQuery(q, opts, nullptr);
  ASSERT_EQ(stars.size(), 1u);
  EXPECT_EQ(stars[0].pivot, a);
  EXPECT_TRUE(IsValidDecomposition(q, stars));
}

TEST(DecompositionTest, SingleNodeQuery) {
  query::QueryGraph q;
  q.AddNode("A");
  DecompositionOptions opts;
  const auto stars = DecomposeQuery(q, opts, nullptr);
  ASSERT_EQ(stars.size(), 1u);
  EXPECT_TRUE(stars[0].edges.empty());
  EXPECT_TRUE(IsValidDecomposition(q, stars));
}

TEST(DecompositionTest, TriangleNeedsTwoStars) {
  const auto q = TriangleQuery();
  for (const auto strategy :
       {DecompositionStrategy::kRand, DecompositionStrategy::kMaxDeg,
        DecompositionStrategy::kSimSize}) {
    DecompositionOptions opts;
    opts.strategy = strategy;
    const auto stars = DecomposeQuery(q, opts, nullptr);
    EXPECT_TRUE(IsValidDecomposition(q, stars))
        << "strategy=" << static_cast<int>(strategy);
    // A triangle's minimum vertex cover has size 2; the enumerating
    // strategies must find it, the greedy ones must stay valid.
    if (strategy == DecompositionStrategy::kSimSize) {
      EXPECT_EQ(stars.size(), 2u);
    }
  }
}

TEST(DecompositionTest, DoubleStarUsesHubs) {
  const auto q = DoubleStarQuery();
  DecompositionOptions opts;
  opts.strategy = DecompositionStrategy::kSimSize;
  const auto stars = DecomposeQuery(q, opts, nullptr);
  ASSERT_EQ(stars.size(), 2u);
  EXPECT_TRUE(IsValidDecomposition(q, stars));
  // The two hubs 0 and 3 are the unique minimum cover.
  std::vector<int> pivots = {stars[0].pivot, stars[1].pivot};
  std::sort(pivots.begin(), pivots.end());
  EXPECT_EQ(pivots, (std::vector<int>{0, 3}));
}

TEST(DecompositionTest, SimSizeBalancesSharedEdges) {
  const auto q = DoubleStarQuery();
  DecompositionOptions opts;
  opts.strategy = DecompositionStrategy::kSimSize;
  const auto stars = DecomposeQuery(q, opts, nullptr);
  ASSERT_EQ(stars.size(), 2u);
  // 5 edges over two stars: balanced split is 3/2 (the bridge edge 0-3
  // goes to the smaller star).
  const size_t a = stars[0].edges.size();
  const size_t b = stars[1].edges.size();
  EXPECT_EQ(a + b, 5u);
  EXPECT_LE(std::max(a, b) - std::min(a, b), 1u);
}

TEST(DecompositionTest, SampledStrategiesProduceValidDecompositions) {
  const auto g = SmallRandomGraph(17, 24, 50);
  query::WorkloadGenerator wg(g, 3);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto q = wg.RandomGraphQuery(5, 6, wo);
  ScorerFixture fx(g, q, TestConfig());
  for (const auto strategy :
       {DecompositionStrategy::kSimTop, DecompositionStrategy::kSimDec}) {
    DecompositionOptions opts;
    opts.strategy = strategy;
    const auto stars = DecomposeQuery(q, opts, fx.scorer.get());
    EXPECT_TRUE(IsValidDecomposition(q, stars))
        << "strategy=" << static_cast<int>(strategy);
  }
}

class DecompositionValidity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DecompositionValidity, AllStrategiesAllSeeds) {
  const int seed = std::get<0>(GetParam());
  const int strat = std::get<1>(GetParam());
  const auto g = SmallRandomGraph(seed, 24, 50);
  query::WorkloadGenerator wg(g, seed + 100);
  query::WorkloadOptions wo;
  const auto q = wg.RandomGraphQuery(3 + seed % 4, 4 + seed % 4, wo);
  ScorerFixture fx(g, q, TestConfig());
  DecompositionOptions opts;
  opts.strategy = static_cast<DecompositionStrategy>(strat);
  opts.seed = seed;
  const auto stars = DecomposeQuery(q, opts, fx.scorer.get());
  EXPECT_TRUE(IsValidDecomposition(q, stars))
      << "seed=" << seed << " strat=" << strat << " q=" << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Sweep, DecompositionValidity,
                         ::testing::Combine(::testing::Range(0, 10),
                                            ::testing::Range(0, 5)));

TEST(DecompositionTest, ValidityCheckerRejectsBadDecompositions) {
  const auto q = TriangleQuery();
  // Missing edge coverage.
  EXPECT_FALSE(IsValidDecomposition(q, {query::StarQuery{0, {0}}}));
  // Double coverage.
  EXPECT_FALSE(IsValidDecomposition(
      q, {query::StarQuery{0, {0, 2}}, query::StarQuery{1, {0, 1}}}));
  // Edge not incident to pivot (edge 1 = (1,2), pivot 0).
  EXPECT_FALSE(IsValidDecomposition(
      q, {query::StarQuery{0, {0, 1, 2}}}));
  // Empty star.
  EXPECT_FALSE(IsValidDecomposition(
      q, {query::StarQuery{0, {0, 2}}, query::StarQuery{1, {1}},
          query::StarQuery{2, {}}}));
}

TEST(DecompositionTest, LargeQueryFallsBackToGreedy) {
  // A 20-node path exceeds max_enumeration_nodes=16.
  query::QueryGraph q;
  for (int i = 0; i < 20; ++i) q.AddNode("n" + std::to_string(i));
  for (int i = 1; i < 20; ++i) q.AddEdge(i - 1, i);
  DecompositionOptions opts;
  opts.strategy = DecompositionStrategy::kSimSize;
  const auto stars = DecomposeQuery(q, opts, nullptr);
  EXPECT_TRUE(IsValidDecomposition(q, stars));
}

}  // namespace
}  // namespace star::core
