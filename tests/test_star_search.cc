#include "core/star_search.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "query/workload.h"
#include "test_helpers.h"

namespace star::core {
namespace {

using star::testing::MovieGraph;
using star::testing::ScorerFixture;
using star::testing::SmallRandomGraph;
using star::testing::TestConfig;

std::vector<double> Scores(const std::vector<StarMatch>& ms) {
  std::vector<double> out;
  for (const auto& m : ms) out.push_back(m.score);
  return out;
}

TEST(MakeStarQueryTest, PicksCoveringPivot) {
  query::QueryGraph q;
  const int a = q.AddNode("A");
  const int b = q.AddNode("B");
  const int c = q.AddNode("C");
  q.AddEdge(a, b);
  q.AddEdge(a, c);
  const auto star = MakeStarQuery(q);
  EXPECT_EQ(star.pivot, a);
  EXPECT_EQ(star.edges.size(), 2u);
}

TEST(StarSearchTest, MovieGraphTopMatchIsExactEntity) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int pivot = q.AddNode("Brad Pitt", "Actor");
  const int movie = q.AddNode("Boyhood", "Film");
  q.AddEdge(pivot, movie, "actedIn");
  ScorerFixture fx(g, q, TestConfig());
  StarSearch search(*fx.scorer, MakeStarQuery(q), {});
  const auto top = search.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(g.NodeLabel(top[0].pivot), "Brad Pitt");
  ASSERT_EQ(top[0].leaves.size(), 1u);
  EXPECT_EQ(g.NodeLabel(top[0].leaves[0]), "Boyhood");
  // Exact node matches (1.0 each) plus exact relation match (1.0).
  EXPECT_NEAR(top[0].score, 3.0, 1e-9);
}

TEST(StarSearchTest, DBoundedEdgeReachesAwardThroughMovie) {
  const auto g = MovieGraph();
  // movie maker --(won)-- award, where the director's award connection
  // goes through the movie (2 hops) for Boyhood's Academy Award.
  query::QueryGraph q;
  const int maker = q.AddNode("Richard Linklater", "Director");
  const int award = q.AddNode("Academy Award", "Award");
  q.AddEdge(maker, award);
  {
    // d = 1: only the direct Golden Globe edge qualifies for Richard.
    ScorerFixture fx(g, q, TestConfig(/*d=*/1));
    StarSearch search(*fx.scorer, MakeStarQuery(q), {});
    const auto top = search.TopK(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(g.NodeLabel(top[0].pivot), "Richard Linklater");
    EXPECT_EQ(g.NodeLabel(top[0].leaves[0]), "Golden Globe Award");
  }
  {
    // d = 2: the Academy Award (exact label match, via Boyhood) wins:
    // 1.0 + 1.0 + lambda = 2.5 vs Golden Globe's partial label match.
    ScorerFixture fx(g, q, TestConfig(/*d=*/2));
    StarSearch search(*fx.scorer, MakeStarQuery(q), {});
    const auto top = search.TopK(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(g.NodeLabel(top[0].leaves[0]), "Academy Award");
    EXPECT_NEAR(top[0].score, 2.0 + 0.5, 1e-9);
  }
}

TEST(StarSearchTest, ScoresNeverIncrease) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int pivot = q.AddNode("Brad");
  const int movie = q.AddNode("Troy", "Film");
  q.AddEdge(pivot, movie);
  ScorerFixture fx(g, q, TestConfig(2));
  for (const auto strategy : {StarStrategy::kStark, StarStrategy::kStard}) {
    StarSearch::Options so;
    so.strategy = strategy;
    StarSearch search(*fx.scorer, MakeStarQuery(q), so);
    double prev = 1e18;
    while (auto m = search.Next()) {
      EXPECT_LE(m->score, prev + 1e-12);
      prev = m->score;
    }
  }
}

TEST(StarSearchTest, InjectiveMatchesHaveDistinctNodes) {
  const auto g = SmallRandomGraph(3);
  query::WorkloadGenerator wg(g, 99);
  query::WorkloadOptions wo;
  const auto q = wg.RandomStarQuery(4, wo);
  ScorerFixture fx(g, q, TestConfig(2, /*injective=*/true));
  StarSearch search(*fx.scorer, MakeStarQuery(q), {});
  for (const auto& m : search.TopK(20)) {
    std::vector<graph::NodeId> all = m.leaves;
    all.push_back(m.pivot);
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  }
}

// ---------------------------------------------------------------------------
// Randomized equivalence: stark == stard == brute force, across d, k,
// injectivity, and seeds.
// ---------------------------------------------------------------------------

struct EquivCase {
  int seed;
  int d;
  bool injective;
};

class StarEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(StarEquivalence, MatchesBruteForce) {
  const auto p = GetParam();
  const auto g = SmallRandomGraph(p.seed);
  query::WorkloadGenerator wg(g, p.seed * 31 + 7);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.2;
  const int num_nodes = 2 + (p.seed % 3);
  const auto q = wg.RandomStarQuery(num_nodes, wo);
  ASSERT_TRUE(q.IsStar());
  const auto cfg = TestConfig(p.d, p.injective);
  const size_t k = 5;

  ScorerFixture fx(g, q, cfg);
  const auto expected = baseline::BruteForceTopK(*fx.scorer, k);

  for (const auto strategy : {StarStrategy::kStark, StarStrategy::kStard,
                              StarStrategy::kHybrid}) {
    ScorerFixture fx2(g, q, cfg);
    StarSearch::Options so;
    so.strategy = strategy;
    StarSearch search(*fx2.scorer, MakeStarQuery(q), so);
    const auto got = search.TopK(k);
    ASSERT_EQ(got.size(), expected.size())
        << "strategy=" << static_cast<int>(strategy) << " d=" << p.d
        << " seed=" << p.seed << " q=" << q.ToString();
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].score, expected[i].score, 1e-9)
          << "i=" << i << " strategy=" << static_cast<int>(strategy)
          << " d=" << p.d << " seed=" << p.seed << " q=" << q.ToString();
    }
  }
}

std::vector<EquivCase> EquivCases() {
  std::vector<EquivCase> cases;
  for (int seed = 0; seed < 12; ++seed) {
    for (int d = 1; d <= 3; ++d) {
      cases.push_back({seed, d, true});
      cases.push_back({seed, d, false});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, StarEquivalence,
                         ::testing::ValuesIn(EquivCases()));

TEST(StarSearchTest, KHintPruningPreservesResults) {
  const auto g = SmallRandomGraph(11);
  query::WorkloadGenerator wg(g, 5);
  const auto q = wg.RandomStarQuery(3, {});
  ScorerFixture fx(g, q, TestConfig(2));
  const size_t k = 4;
  StarSearch::Options exact_opts;
  StarSearch exact(*fx.scorer, MakeStarQuery(q), exact_opts);
  ScorerFixture fx2(g, q, TestConfig(2));
  StarSearch::Options pruned_opts;
  pruned_opts.k_hint = k;
  StarSearch pruned(*fx2.scorer, MakeStarQuery(q), pruned_opts);
  EXPECT_TRUE(star::testing::ScoresMatch(Scores(exact.TopK(k)),
                                         Scores(pruned.TopK(k))));
}

TEST(StarSearchTest, UpperBoundDominatesEmissions) {
  const auto g = SmallRandomGraph(21);
  query::WorkloadGenerator wg(g, 13);
  const auto q = wg.RandomStarQuery(3, {});
  ScorerFixture fx(g, q, TestConfig(2));
  StarSearch::Options so;
  so.strategy = StarStrategy::kStard;
  StarSearch search(*fx.scorer, MakeStarQuery(q), so);
  while (true) {
    const double ub = search.UpperBound();
    const auto m = search.Next();
    if (!m.has_value()) break;
    EXPECT_GE(ub + 1e-9, m->score);
  }
}

TEST(StarSearchTest, StatsArepopulated) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int pivot = q.AddNode("Brad");
  const int movie = q.AddNode("Troy");
  q.AddEdge(pivot, movie);
  {
    ScorerFixture fx(g, q, TestConfig(2));
    StarSearch::Options so;
    so.strategy = StarStrategy::kStark;
    StarSearch s(*fx.scorer, MakeStarQuery(q), so);
    s.TopK(3);
    EXPECT_GT(s.stats().pivot_candidates, 0u);
    EXPECT_GT(s.stats().enumerators_built, 0u);
    EXPECT_GT(s.stats().nodes_expanded, 0u);
    EXPECT_EQ(s.stats().messages_sent, 0u);  // stark sends no messages
  }
  {
    ScorerFixture fx(g, q, TestConfig(2));
    StarSearch::Options so;
    so.strategy = StarStrategy::kStard;
    StarSearch s(*fx.scorer, MakeStarQuery(q), so);
    s.TopK(3);
    EXPECT_GT(s.stats().messages_sent, 0u);
    // stard builds enumerators lazily: no more than candidates.
    EXPECT_LE(s.stats().enumerators_built, s.stats().pivot_candidates);
  }
}

TEST(StarSearchTest, HybridBuildsFewerEnumeratorsThanStark) {
  const auto g = SmallRandomGraph(31, 60, 140);
  query::WorkloadGenerator wg(g, 17);
  query::WorkloadOptions wo;
  wo.partial_label = 1.0;  // ambiguous pivots -> many candidates
  wo.variable_fraction = 0.0;
  const auto q = wg.RandomStarQuery(3, wo);
  const auto cfg = TestConfig(2);
  ScorerFixture fx1(g, q, cfg);
  StarSearch::Options stark_opts;
  stark_opts.strategy = StarStrategy::kStark;
  StarSearch stark(*fx1.scorer, MakeStarQuery(q), stark_opts);
  const auto stark_top = stark.TopK(3);

  ScorerFixture fx2(g, q, cfg);
  StarSearch::Options hybrid_opts;
  hybrid_opts.strategy = StarStrategy::kHybrid;
  StarSearch hybrid(*fx2.scorer, MakeStarQuery(q), hybrid_opts);
  const auto hybrid_top = hybrid.TopK(3);

  ASSERT_EQ(stark_top.size(), hybrid_top.size());
  for (size_t i = 0; i < stark_top.size(); ++i) {
    EXPECT_NEAR(stark_top[i].score, hybrid_top[i].score, 1e-9);
  }
  // stark builds one enumerator per pivot candidate; hybrid only as many
  // as the bound descent requires.
  EXPECT_LE(hybrid.stats().enumerators_built,
            stark.stats().enumerators_built);
}

TEST(StarSearchTest, WildcardLeafMatchesAnyNeighbor) {
  const auto g = MovieGraph();
  query::QueryGraph q;
  const int pivot = q.AddNode("Brad Pitt");
  const int any = q.AddWildcardNode();
  q.AddEdge(pivot, any);
  ScorerFixture fx(g, q, TestConfig(1));
  StarSearch search(*fx.scorer, MakeStarQuery(q), {});
  const auto top = search.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  // Exact pivot (1.0) + wildcard leaf (1.0) + wildcard relation (1.0).
  EXPECT_NEAR(top[0].score, 3.0, 1e-9);
}

}  // namespace
}  // namespace star::core
