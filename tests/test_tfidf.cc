#include "text/tfidf.h"

#include <gtest/gtest.h>

namespace star::text {
namespace {

TfIdfModel SmallCorpus() {
  TfIdfModel m;
  m.AddDocument("the quick brown fox");
  m.AddDocument("the lazy dog");
  m.AddDocument("the quick dog");
  m.AddDocument("kurosawa film");
  m.Finalize();
  return m;
}

TEST(TfIdfTest, IdfOrdersRareAboveCommon) {
  const auto m = SmallCorpus();
  EXPECT_GT(m.Idf("kurosawa"), m.Idf("quick"));
  EXPECT_GT(m.Idf("quick"), m.Idf("the"));
}

TEST(TfIdfTest, UnknownTokenGetsMaxIdf) {
  const auto m = SmallCorpus();
  EXPECT_GE(m.Idf("zebra"), m.Idf("kurosawa"));
}

TEST(TfIdfTest, CosineIdentityAndDisjoint) {
  const auto m = SmallCorpus();
  EXPECT_NEAR(m.Cosine("quick brown fox", "quick brown fox"), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.Cosine("quick", "lazy"), 0.0);
  EXPECT_DOUBLE_EQ(m.Cosine("", ""), 1.0);
  EXPECT_DOUBLE_EQ(m.Cosine("", "dog"), 0.0);
}

TEST(TfIdfTest, RareSharedTokenBeatsCommonSharedToken) {
  const auto m = SmallCorpus();
  // Sharing "kurosawa" should weigh more than sharing "the".
  const double rare = m.Cosine("kurosawa x", "kurosawa y");
  const double common = m.Cosine("the x", "the y");
  EXPECT_GT(rare, common);
}

TEST(TfIdfTest, Stats) {
  const auto m = SmallCorpus();
  EXPECT_EQ(m.document_count(), 4u);
  EXPECT_GT(m.vocabulary_size(), 5u);
  EXPECT_TRUE(m.finalized());
}

TEST(TfIdfTest, SymmetricAndBounded) {
  const auto m = SmallCorpus();
  const double ab = m.Cosine("quick dog", "lazy dog");
  EXPECT_NEAR(ab, m.Cosine("lazy dog", "quick dog"), 1e-12);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

}  // namespace
}  // namespace star::text
