#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "baseline/belief_propagation.h"
#include "baseline/brute_force.h"
#include "baseline/graph_ta.h"
#include "common/deadline.h"
#include "common/random.h"
#include "core/framework.h"
#include "core/star_search.h"
#include "graph/label_index.h"
#include "query/query_graph.h"
#include "scoring/query_scorer.h"
#include "serve/degrade.h"
#include "serve/star_cache.h"
#include "shard/coordinator.h"
#include "shard/partitioner.h"
#include "text/ensemble.h"

namespace star::testing {

std::string CaseOutcome::Summary() const {
  if (violations.empty()) return "";
  const Violation& v = violations.front();
  return v.check + " @ " + v.cell + ": " + v.detail;
}

namespace {

/// Same tolerance the existing identity tests use for cross-algorithm
/// score agreement (ties are broken arbitrarily across engines, so only
/// score sequences compare — never mappings).
constexpr double kEps = 1e-9;

std::string StrPrintf(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

struct EngineResult {
  std::vector<core::GraphMatch> matches;
  core::FrameworkStats stats;
};

/// One matrix cell fully specified: the runner mutates copies of this to
/// derive every cell from the case's base configuration.
struct RunSpec {
  const graph::KnowledgeGraph* graph = nullptr;
  const graph::LabelIndex* index = nullptr;  // null = no-index semantics
  const query::QueryGraph* query = nullptr;
  scoring::MatchConfig config;
  core::StarStrategy strategy = core::StarStrategy::kStard;
  double alpha = 0.5;
  core::DecompositionOptions decomposition;
  size_t k = 5;
  core::ReuseCache* reuse = nullptr;
  const Cancellation* cancel = nullptr;
};

EngineResult Run(const text::SimilarityEnsemble& ensemble, const RunSpec& s) {
  core::StarOptions o;
  o.strategy = s.strategy;
  o.match = s.config;
  o.decomposition = s.decomposition;
  o.alpha = s.alpha;
  o.reuse = s.reuse;
  core::StarFramework fw(*s.graph, ensemble, s.index, o);
  EngineResult r;
  r.matches = fw.TopK(*s.query, s.k, s.cancel);
  r.stats = fw.last_stats();
  return r;
}

std::vector<double> Scores(const std::vector<core::GraphMatch>& ms) {
  std::vector<double> s;
  s.reserve(ms.size());
  for (const auto& m : ms) s.push_back(m.score);
  return s;
}

std::string DescribeMatch(const core::GraphMatch& m) {
  std::string out = StrPrintf("%.17g <-", m.score);
  for (const graph::NodeId v : m.mapping) {
    out += StrPrintf(" %d", static_cast<int>(v));
  }
  return out;
}

void AddViolation(CaseOutcome* out, std::string check, std::string cell,
                  std::string detail) {
  out->violations.push_back(
      Violation{std::move(check), std::move(cell), std::move(detail)});
}

/// Structural invariants every engine result must satisfy regardless of
/// which cell produced it.
void CheckWellFormed(const std::string& cell, const EngineResult& r,
                     const FuzzCase& c, bool expect_complete_run,
                     CaseOutcome* out) {
  if (r.matches.size() > c.k) {
    AddViolation(out, "shape", cell,
                 StrPrintf("returned %zu matches for k=%zu", r.matches.size(),
                           c.k));
  }
  double prev = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < r.matches.size(); ++i) {
    const auto& m = r.matches[i];
    if (m.mapping.size() != static_cast<size_t>(c.query.node_count())) {
      AddViolation(out, "shape", cell,
                   StrPrintf("match %zu maps %zu of %d query nodes", i,
                             m.mapping.size(), c.query.node_count()));
      return;
    }
    if (!m.Complete()) {
      AddViolation(out, "completeness", cell,
                   StrPrintf("match %zu has unmapped query nodes: %s", i,
                             DescribeMatch(m).c_str()));
    }
    if (c.config.enforce_injective && !m.Injective()) {
      AddViolation(out, "injectivity", cell,
                   StrPrintf("match %zu repeats a data node: %s", i,
                             DescribeMatch(m).c_str()));
    }
    if (m.score > prev) {
      AddViolation(out, "ordering", cell,
                   StrPrintf("score increased at rank %zu: %.17g after %.17g",
                             i, m.score, prev));
    }
    prev = m.score;
  }
  if (expect_complete_run && r.stats.cancelled) {
    AddViolation(out, "spurious-cancel", cell,
                 "cancelled flag set without a cancellation token");
  }
}

/// Bitwise identity (exact double equality + identical mappings): the
/// contract between cells of the SAME strategy (threads, kernel, reuse,
/// k-prefix, deadline truncation), where tie decisions must replay exactly.
bool SameMatch(const core::GraphMatch& a, const core::GraphMatch& b) {
  return a.score == b.score && a.mapping == b.mapping;
}

void CheckBitwiseEqual(const std::string& check, const std::string& cell,
                       const std::vector<core::GraphMatch>& ref,
                       const std::vector<core::GraphMatch>& got,
                       CaseOutcome* out) {
  if (ref.size() != got.size()) {
    AddViolation(out, check, cell,
                 StrPrintf("size %zu vs reference %zu", got.size(),
                           ref.size()));
    return;
  }
  for (size_t i = 0; i < ref.size(); ++i) {
    if (!SameMatch(ref[i], got[i])) {
      AddViolation(
          out, check, cell,
          StrPrintf("rank %zu differs: got %s, reference %s", i,
                    DescribeMatch(got[i]).c_str(),
                    DescribeMatch(ref[i]).c_str()));
      return;
    }
  }
}

/// `got` must be a bitwise prefix of `full`.
void CheckBitwisePrefix(const std::string& check, const std::string& cell,
                        const std::vector<core::GraphMatch>& full,
                        const std::vector<core::GraphMatch>& got,
                        CaseOutcome* out) {
  if (got.size() > full.size()) {
    AddViolation(out, check, cell,
                 StrPrintf("prefix longer (%zu) than reference (%zu)",
                           got.size(), full.size()));
    return;
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (!SameMatch(full[i], got[i])) {
      AddViolation(
          out, check, cell,
          StrPrintf("prefix rank %zu differs: got %s, reference %s", i,
                    DescribeMatch(got[i]).c_str(),
                    DescribeMatch(full[i]).c_str()));
      return;
    }
  }
}

/// Score-sequence agreement within eps — the cross-engine comparison (tie
/// order and therefore mappings legitimately differ).
void CheckScoresNear(const std::string& check, const std::string& cell,
                     const std::vector<double>& ref,
                     const std::vector<double>& got, CaseOutcome* out) {
  if (ref.size() != got.size()) {
    AddViolation(out, check, cell,
                 StrPrintf("size %zu vs reference %zu", got.size(),
                           ref.size()));
    return;
  }
  for (size_t i = 0; i < ref.size(); ++i) {
    if (std::abs(ref[i] - got[i]) > kEps) {
      AddViolation(out, check, cell,
                   StrPrintf("rank %zu score %.17g vs reference %.17g", i,
                             got[i], ref[i]));
      return;
    }
  }
}

bool UntypedWildcard(const query::QueryGraph& q, int u) {
  return q.node(u).wildcard && q.node(u).type_name.empty();
}

/// Recomputes each match's score from first principles through a fresh
/// scorer: every mapped node must be a candidate (or wildcard-exempt),
/// every query edge must have a valid connection, and the parts must sum
/// to the reported score. Catches "agrees with itself but wrong" bugs that
/// pure differential cells cannot.
void CheckValidity(const std::string& cell,
                   const std::vector<core::GraphMatch>& matches,
                   scoring::QueryScorer& scorer, CaseOutcome* out) {
  const query::QueryGraph& q = scorer.query();
  const scoring::MatchConfig& cfg = scorer.config();
  for (size_t i = 0; i < matches.size(); ++i) {
    const auto& m = matches[i];
    if (m.mapping.size() != static_cast<size_t>(q.node_count())) continue;
    double sum = 0.0;
    bool valid = true;
    for (int u = 0; u < q.node_count() && valid; ++u) {
      if (UntypedWildcard(q, u)) {
        sum += cfg.wildcard_node_score;
        continue;
      }
      const double s = scorer.CandidateScore(u, m.mapping[u]);
      if (s < 0.0) {
        AddViolation(out, "validity", cell,
                     StrPrintf("match %zu maps query node %d to non-candidate "
                               "%d: %s",
                               i, u, static_cast<int>(m.mapping[u]),
                               DescribeMatch(m).c_str()));
        valid = false;
        break;
      }
      sum += s;
    }
    for (int e = 0; e < q.edge_count() && valid; ++e) {
      const auto& qe = q.edge(e);
      const double fe =
          scorer.PairEdgeScore(e, m.mapping[qe.u], m.mapping[qe.v]);
      if (fe < 0.0) {
        AddViolation(out, "validity", cell,
                     StrPrintf("match %zu has no valid connection for query "
                               "edge %d: %s",
                               i, e, DescribeMatch(m).c_str()));
        valid = false;
        break;
      }
      sum += fe;
    }
    if (valid && std::abs(sum - m.score) > kEps) {
      AddViolation(out, "validity", cell,
                   StrPrintf("match %zu reports %.17g, recomputes to %.17g",
                             i, m.score, sum));
    }
  }
}

/// Rebuilds q with node and edge insertion order permuted and edge
/// endpoints randomly flipped — semantically the identical query.
query::QueryGraph PermuteQuery(const query::QueryGraph& q, Rng& rng) {
  const int n = q.node_count();
  std::vector<int> perm(n);  // perm[old] = new index
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  std::vector<int> inv(n);
  for (int i = 0; i < n; ++i) inv[perm[i]] = i;
  query::QueryGraph nq;
  for (int ni = 0; ni < n; ++ni) {
    const auto& node = q.node(inv[ni]);
    if (node.wildcard) {
      nq.AddWildcardNode(node.type_name);
    } else {
      nq.AddNode(node.label, node.type_name);
    }
  }
  std::vector<int> eorder(q.edge_count());
  std::iota(eorder.begin(), eorder.end(), 0);
  rng.Shuffle(eorder);
  for (const int e : eorder) {
    const auto& qe = q.edge(e);
    int u = perm[qe.u];
    int v = perm[qe.v];
    if (rng.Chance(0.5)) std::swap(u, v);
    nq.AddEdge(u, v, qe.wildcard_relation ? "" : qe.relation);
  }
  return nq;
}

/// Rebuilds g with node ids permuted (labels, types, and edges preserved;
/// edge insertion order kept so only the id space changes).
graph::KnowledgeGraph RelabelGraph(const graph::KnowledgeGraph& g, Rng& rng) {
  const size_t n = g.node_count();
  std::vector<graph::NodeId> perm(n);  // perm[old] = new id
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  std::vector<graph::NodeId> inv(n);
  for (size_t i = 0; i < n; ++i) inv[perm[i]] = static_cast<graph::NodeId>(i);
  graph::KnowledgeGraph::Builder b;
  for (size_t ni = 0; ni < n; ++ni) {
    const graph::NodeId old = inv[ni];
    const int32_t t = g.NodeType(old);
    b.AddNode(std::string(g.NodeLabel(old)), std::string(g.TypeName(t)));
  }
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(g.edge_count());
       ++e) {
    b.AddEdge(perm[g.EdgeSrc(e)], perm[g.EdgeDst(e)],
              g.RelationName(g.EdgeRelation(e)));
  }
  return std::move(b).Build();
}

struct Strat {
  core::StarStrategy s;
  const char* name;
};
constexpr Strat kStrategies[] = {
    {core::StarStrategy::kStark, "stark"},
    {core::StarStrategy::kStard, "stard"},
    {core::StarStrategy::kHybrid, "hybrid"},
};
// Index of the reference strategy (the paper's default engine) in
// kStrategies; every cross-engine cell compares against its base run.
constexpr size_t kRefStrategy = 1;

}  // namespace

CaseOutcome RunDifferentialCase(const FuzzCase& c, const RunnerOptions& opts) {
  CaseOutcome out;
  if (c.query.node_count() == 0 || c.graph.node_count() == 0) return out;

  text::SimilarityEnsemble ensemble;
  std::unique_ptr<graph::LabelIndex> index;
  if (c.with_index) index = std::make_unique<graph::LabelIndex>(c.graph);

  RunSpec base_spec;
  base_spec.graph = &c.graph;
  base_spec.index = index.get();
  base_spec.query = &c.query;
  base_spec.config = c.config;
  base_spec.config.threads = 1;
  base_spec.config.use_scoring_kernel = true;
  base_spec.config.use_batch_kernel = true;
  base_spec.config.use_pruned_retrieval = true;
  base_spec.alpha = c.alpha;
  base_spec.decomposition = c.decomposition;
  base_spec.k = c.k;

  // --- Base cells: every strategy at t=1, kernel on, no reuse/deadline ---
  EngineResult base[3];
  for (size_t i = 0; i < 3; ++i) {
    RunSpec spec = base_spec;
    spec.strategy = kStrategies[i].s;
    base[i] = Run(ensemble, spec);
    ++out.cells_run;
    CheckWellFormed(std::string(kStrategies[i].name) + "/base", base[i], c,
                    /*expect_complete_run=*/true, &out);
  }
  const std::vector<double> ref_scores = Scores(base[kRefStrategy].matches);
  for (size_t i = 0; i < 3; ++i) {
    if (i == kRefStrategy) continue;
    CheckScoresNear("strategy-diff",
                    std::string(kStrategies[i].name) + "/base", ref_scores,
                    Scores(base[i].matches), &out);
  }

  {
    scoring::QueryScorer vscorer(c.graph, c.query, ensemble, base_spec.config,
                                 index.get());
    CheckValidity("stard/base", base[kRefStrategy].matches, vscorer, &out);
  }

  // --- Thread x kernel matrix: bit-identity contract per strategy ---
  // The batch cells toggle the SoA batched scorer beneath the scalar
  // kernel (batch only engages when the kernel itself is on): every
  // lane the batch kernel accepts must be bitwise identical to the
  // scalar kernel's score, so batch=0 runs must reproduce the base
  // (batch=1) matches byte for byte.
  if (opts.run_thread_kernel_matrix) {
    struct TK {
      int threads;
      bool kernel;
      bool batch;
      bool pruned = true;
    };
    constexpr TK kCells[] = {{4, true, true},
                             {1, false, false},
                             {4, false, false},
                             {1, true, false},
                             {4, true, false},
                             // Bound-driven retrieval off: the pruned base
                             // must reproduce the score-everything path
                             // byte for byte, serial and parallel.
                             {1, true, true, false},
                             {4, true, true, false}};
    for (size_t i = 0; i < 3; ++i) {
      for (const TK& tk : kCells) {
        RunSpec spec = base_spec;
        spec.strategy = kStrategies[i].s;
        spec.config.threads = tk.threads;
        spec.config.use_scoring_kernel = tk.kernel;
        spec.config.use_batch_kernel = tk.batch;
        spec.config.use_pruned_retrieval = tk.pruned;
        const EngineResult r = Run(ensemble, spec);
        ++out.cells_run;
        const std::string cell = StrPrintf(
            "%s/t=%d/kernel=%d/batch=%d/pruned=%d", kStrategies[i].name,
            tk.threads, tk.kernel ? 1 : 0, tk.batch ? 1 : 0, tk.pruned ? 1 : 0);
        CheckWellFormed(cell, r, c, true, &out);
        CheckBitwiseEqual(!tk.pruned                  ? "retrieval-diff"
                          : tk.kernel && !tk.batch    ? "batch-kernel-diff"
                                                      : "thread-kernel-diff",
                          cell, base[i].matches, r.matches, &out);
      }
    }
  }

  // --- Reuse cells: cold -> warm -> invalidated, all bitwise vs base ---
  if (opts.run_reuse) {
    for (size_t i = 0; i < 3; ++i) {
      serve::StarCache cache(256, 256);
      RunSpec spec = base_spec;
      spec.strategy = kStrategies[i].s;
      spec.reuse = &cache;

      const EngineResult cold = Run(ensemble, spec);
      ++out.cells_run;
      CheckBitwiseEqual("reuse-cold",
                        StrPrintf("%s/reuse=cold", kStrategies[i].name),
                        base[i].matches, cold.matches, &out);

      if (c.inject == BugInjection::kWarmTopListScores) {
        cache.CorruptTopListScoresForTest(0.25);
      } else if (c.inject == BugInjection::kWarmCandidateScores) {
        cache.CorruptCandidateScoresForTest(0.25);
        // Drop memoized streams so the poisoned candidate lists are
        // actually consumed instead of being shadowed by replay.
        cache.ClearTopListsForTest();
      }
      const EngineResult warm = Run(ensemble, spec);
      ++out.cells_run;
      CheckBitwiseEqual("reuse-warm",
                        StrPrintf("%s/reuse=warm", kStrategies[i].name),
                        base[i].matches, warm.matches, &out);

      cache.Invalidate();
      const EngineResult inval = Run(ensemble, spec);
      ++out.cells_run;
      CheckBitwiseEqual("reuse-invalidated",
                        StrPrintf("%s/reuse=invalidated", kStrategies[i].name),
                        base[i].matches, inval.matches, &out);
    }
  }

  // --- Layout cells: compressed data plane, all bitwise vs flat base ---
  // The delta-varint layout is a pure storage transform: rebuilding graph
  // and index under kCompressed must reproduce every strategy's flat
  // matches byte for byte (same ids, same score bits, same order).
  if (opts.run_layout) {
    const graph::KnowledgeGraph cg =
        graph::CloneWithLayout(c.graph, graph::GraphLayout::kCompressed);
    std::unique_ptr<graph::LabelIndex> cindex;
    if (c.with_index) {
      cindex = std::make_unique<graph::LabelIndex>(
          cg, graph::GraphLayout::kCompressed);
    }
    for (size_t i = 0; i < 3; ++i) {
      RunSpec spec = base_spec;
      spec.graph = &cg;
      spec.index = cindex.get();
      spec.strategy = kStrategies[i].s;
      const EngineResult r = Run(ensemble, spec);
      ++out.cells_run;
      const std::string cell =
          StrPrintf("%s/layout=compressed", kStrategies[i].name);
      CheckWellFormed(cell, r, c, true, &out);
      CheckBitwiseEqual("layout-diff", cell, base[i].matches, r.matches,
                        &out);
    }
  }

  // --- Shard cells: scatter-gather backend, all bitwise vs base ---
  // A ShardCluster at each count serves every strategy through a
  // ShardEngine; the distribution is required to be invisible (same
  // matches, same score bits, same tie order as the single-process base).
  // Hash partitioning runs at 2 shards and label-range at 4 so both
  // policies stay under differential coverage; c.shards pins the sweep to
  // one count for shrinking/replay.
  if (opts.run_shards) {
    std::vector<size_t> counts;
    if (c.shards != 0) {
      counts.push_back(c.shards);
    } else {
      counts = {2, 4};
    }
    for (const size_t n_shards : counts) {
      shard::ShardCluster::Options co;
      co.partition.shards = n_shards;
      co.partition.policy = n_shards == 4 && c.shards == 0
                                ? shard::PartitionPolicy::kLabelRange
                                : shard::PartitionPolicy::kHash;
      co.partition.halo_depth = std::max(1, base_spec.config.d);
      shard::ShardCluster cluster(c.graph, ensemble, index.get(),
                                  std::move(co));

      for (size_t i = 0; i < 3; ++i) {
        shard::ShardEngine::Options eo;
        eo.star.strategy = kStrategies[i].s;
        eo.star.match = base_spec.config;
        eo.star.decomposition = base_spec.decomposition;
        eo.star.alpha = base_spec.alpha;
        shard::ShardEngine engine(cluster, eo);
        EngineResult r;
        r.matches = engine.TopK(c.query, c.k);
        r.stats = engine.last_stats();
        ++out.cells_run;
        const std::string cell =
            StrPrintf("%s/shards=%zu", kStrategies[i].name, n_shards);
        CheckWellFormed(cell, r, c, /*expect_complete_run=*/true, &out);
        CheckBitwiseEqual("shard-diff", cell, base[i].matches, r.matches,
                          &out);
      }

      // Coordinator-side scoring at threads=4: the thread bit-identity
      // contract must survive the scatter-gather split too.
      {
        shard::ShardEngine::Options eo;
        eo.star.strategy = kStrategies[kRefStrategy].s;
        eo.star.match = base_spec.config;
        eo.star.match.threads = 4;
        eo.star.decomposition = base_spec.decomposition;
        eo.star.alpha = base_spec.alpha;
        shard::ShardEngine engine(cluster, eo);
        const auto got = engine.TopK(c.query, c.k);
        ++out.cells_run;
        CheckBitwiseEqual("shard-thread-diff",
                          StrPrintf("stard/shards=%zu/t=4", n_shards),
                          base[kRefStrategy].matches, got, &out);
      }

      // Sharded retrieval off: workers drop their bound pre-filter and
      // score every pooled node — the merge must still be byte-identical.
      {
        shard::ShardEngine::Options eo;
        eo.star.strategy = kStrategies[kRefStrategy].s;
        eo.star.match = base_spec.config;
        eo.star.match.use_pruned_retrieval = false;
        eo.star.decomposition = base_spec.decomposition;
        eo.star.alpha = base_spec.alpha;
        shard::ShardEngine engine(cluster, eo);
        const auto got = engine.TopK(c.query, c.k);
        ++out.cells_run;
        CheckBitwiseEqual("retrieval-diff",
                          StrPrintf("stard/shards=%zu/pruned=0", n_shards),
                          base[kRefStrategy].matches, got, &out);
      }

      // Sharded tight deadline: wherever the expiry lands (coordinator
      // pull loop or a worker), the result must be a correctly ordered
      // bitwise prefix of the undeadlined single-process run.
      if (c.tight_deadline_ms > 0.0) {
        const Cancellation tight{Deadline::AfterMillis(c.tight_deadline_ms)};
        shard::ShardEngine::Options eo;
        eo.star.strategy = kStrategies[kRefStrategy].s;
        eo.star.match = base_spec.config;
        eo.star.decomposition = base_spec.decomposition;
        eo.star.alpha = base_spec.alpha;
        shard::ShardEngine engine(cluster, eo);
        EngineResult r;
        r.matches = engine.TopK(c.query, c.k, &tight);
        r.stats = engine.last_stats();
        ++out.cells_run;
        const std::string cell =
            StrPrintf("stard/shards=%zu/deadline=tight", n_shards);
        CheckWellFormed(cell, r, c, /*expect_complete_run=*/false, &out);
        if (r.stats.cancelled) {
          CheckBitwisePrefix("shard-deadline-prefix", cell,
                             base[kRefStrategy].matches, r.matches, &out);
        } else {
          CheckBitwiseEqual("shard-deadline-complete", cell,
                            base[kRefStrategy].matches, r.matches, &out);
        }
      }
    }
  }

  // --- Deadline cells ---
  if (opts.run_deadline) {
    {
      const Cancellation expired{Deadline::Expired()};
      RunSpec spec = base_spec;
      spec.cancel = &expired;
      const EngineResult r = Run(ensemble, spec);
      ++out.cells_run;
      if (!r.matches.empty()) {
        AddViolation(&out, "deadline-expired", "stard/deadline=expired",
                     StrPrintf("pre-expired deadline returned %zu matches",
                               r.matches.size()));
      }
      if (!r.stats.cancelled) {
        AddViolation(&out, "deadline-expired", "stard/deadline=expired",
                     "cancelled flag not set on pre-expired deadline");
      }
    }
    {
      Cancellation cancelled_now;
      cancelled_now.Cancel();
      RunSpec spec = base_spec;
      spec.cancel = &cancelled_now;
      const EngineResult r = Run(ensemble, spec);
      ++out.cells_run;
      if (!r.matches.empty() || !r.stats.cancelled) {
        AddViolation(&out, "cancel-immediate", "stard/cancelled",
                     StrPrintf("pre-cancelled run returned %zu matches, "
                               "cancelled=%d",
                               r.matches.size(), r.stats.cancelled ? 1 : 0));
      }
    }
    if (c.tight_deadline_ms > 0.0) {
      const Cancellation tight{Deadline::AfterMillis(c.tight_deadline_ms)};
      RunSpec spec = base_spec;
      spec.cancel = &tight;
      const EngineResult r = Run(ensemble, spec);
      ++out.cells_run;
      const std::string cell = "stard/deadline=tight";
      CheckWellFormed(cell, r, c, /*expect_complete_run=*/false, &out);
      if (r.stats.cancelled) {
        CheckBitwisePrefix("deadline-prefix", cell,
                           base[kRefStrategy].matches, r.matches, &out);
      } else {
        CheckBitwiseEqual("deadline-complete", cell,
                          base[kRefStrategy].matches, r.matches, &out);
      }
    }
  }

  // --- Oracle + baseline cells (shared scorer: identical memo semantics,
  // and the candidate lists double as the oracle cost estimate) ---
  const std::string oracle_reason =
      baseline::BruteForceOracleCheck(c.query, base_spec.config);
  std::unique_ptr<scoring::QueryScorer> oscorer;
  double states = std::numeric_limits<double>::infinity();
  if ((opts.run_oracle || opts.run_baselines || opts.run_certificates) &&
      oracle_reason.empty()) {
    oscorer = std::make_unique<scoring::QueryScorer>(
        c.graph, c.query, ensemble, base_spec.config, index.get());
    states = 1.0;
    for (int u = 0; u < c.query.node_count(); ++u) {
      states *= UntypedWildcard(c.query, u)
                    ? static_cast<double>(c.graph.node_count())
                    : static_cast<double>(oscorer->Candidates(u).size());
    }
  }
  const bool oracle_feasible =
      oscorer != nullptr && states <= opts.max_oracle_states;
  if (opts.run_oracle && oracle_feasible) {
    const auto oracle = baseline::BruteForceTopK(*oscorer, c.k);
    out.oracle_ran = true;
    ++out.cells_run;
    CheckScoresNear("oracle-diff", "oracle", Scores(oracle), ref_scores,
                    &out);
  }
  if (opts.run_baselines && oracle_feasible) {
    baseline::GraphTa ta(*oscorer, /*budget_ms=*/0.0);
    const auto got = ta.TopK(c.k);
    ++out.cells_run;
    CheckScoresNear("graphta-diff", "graphta", ref_scores, Scores(got),
                    &out);
  }
  // BP is exact only for acyclic queries without the global injectivity
  // constraint (its model is pairwise) — its documented exactness domain.
  if (opts.run_baselines && oracle_feasible && c.query.IsTree() &&
      !base_spec.config.enforce_injective) {
    baseline::BeliefPropagation bp(*oscorer, baseline::BpOptions{});
    const auto got = bp.TopK(c.k);
    ++out.cells_run;
    CheckScoresNear("bp-diff", "bp", ref_scores, Scores(got), &out);
  }

  // --- Certificate cells: every anytime (deadline-truncated) and degraded
  // (shedding-ladder) answer must carry a sound QualityCertificate ---
  // Soundness is graded against the brute-force truth: the certified bound
  // must dominate the true (nominal-semantics) score at rank
  // guaranteed_prefix+1, and the guaranteed prefix must be bitwise equal
  // to the exact reference run's prefix. Oracle top-(k+1) covers rank
  // prefix+1 for every prefix the engine can claim (prefix <= k).
  if (opts.run_certificates) {
    std::vector<core::GraphMatch> truth;
    if (oracle_feasible) {
      truth = baseline::BruteForceTopK(*oscorer, c.k + 1);
    }
    core::StarOptions nominal;
    nominal.strategy = kStrategies[kRefStrategy].s;
    nominal.match = base_spec.config;
    nominal.decomposition = base_spec.decomposition;
    nominal.alpha = base_spec.alpha;

    const auto check_certificate = [&](const std::string& cell,
                                       const core::StarOptions& effective,
                                       int level, const EngineResult& r) {
      const core::QualityCertificate cert = serve::BuildCertificate(
          c.query, nominal, effective, level, r.stats, r.matches);
      if (cert.guaranteed_prefix > r.matches.size()) {
        AddViolation(&out, "cert-prefix", cell,
                     StrPrintf("guaranteed prefix %zu longer than the %zu "
                               "returned matches",
                               cert.guaranteed_prefix, r.matches.size()));
        return;
      }
      // Guaranteed prefix: bitwise equal to the exact reference run's.
      const std::vector<core::GraphMatch> prefix(
          r.matches.begin(), r.matches.begin() + cert.guaranteed_prefix);
      CheckBitwisePrefix("cert-prefix", cell, base[kRefStrategy].matches,
                         prefix, &out);
      // An exact certificate claims the whole list is the true top-k.
      if (cert.exact) {
        CheckBitwiseEqual("cert-exact", cell, base[kRefStrategy].matches,
                          r.matches, &out);
      }
      // Bound soundness: nothing outside the guaranteed prefix can beat
      // the certified bound. truth[prefix] is the best such match.
      if (oracle_feasible && truth.size() > cert.guaranteed_prefix) {
        const double next_true = truth[cert.guaranteed_prefix].score;
        if (cert.score_bound < next_true - kEps) {
          AddViolation(&out, "cert-bound", cell,
                       StrPrintf("certified bound %.17g below true rank-%zu "
                                 "score %.17g",
                                 cert.score_bound, cert.guaranteed_prefix + 1,
                                 next_true));
        }
      }
    };

    // Level-0 anytime cells: the base run's certificate is exact, and a
    // deadline-truncated run's certificate covers what it did not emit.
    check_certificate("stard/cert=base", nominal, 0, base[kRefStrategy]);
    if (c.tight_deadline_ms > 0.0) {
      const Cancellation tight{Deadline::AfterMillis(c.tight_deadline_ms)};
      RunSpec spec = base_spec;
      spec.cancel = &tight;
      const EngineResult r = Run(ensemble, spec);
      ++out.cells_run;
      const std::string cell = "stard/cert=deadline";
      CheckWellFormed(cell, r, c, /*expect_complete_run=*/false, &out);
      if (r.stats.cancelled) {
        CheckBitwisePrefix("deadline-prefix", cell,
                           base[kRefStrategy].matches, r.matches, &out);
      }
      check_certificate(cell, nominal, 0, r);
    }

    // Degraded cells: the shedding ladder's knobs, same policy values a
    // saturated QueryService applies. l1_max_candidates is small enough to
    // actually bite on fuzz-scale graphs.
    serve::DegradePolicy policy;
    policy.enable = true;
    policy.l1_max_candidates = 3;
    policy.l2_sample_rate = 0.5;
    policy.sample_seed = c.seed * 0x9E3779B97F4A7C15ULL + 0xC2B2AE3D27D4EB4FULL;
    std::vector<int> levels;
    if (c.degrade != 0) {
      levels.push_back(c.degrade);
    } else {
      levels = {1, 2, 3};
    }
    core::StarOptions first_effective;
    EngineResult first_degraded;
    for (const int level : levels) {
      core::StarOptions effective = nominal;
      serve::ApplyDegradation(policy, level, &effective);
      RunSpec spec = base_spec;
      spec.config = effective.match;
      const EngineResult r = Run(ensemble, spec);
      ++out.cells_run;
      const std::string cell = StrPrintf("stard/cert=degrade-l%d", level);
      CheckWellFormed(cell, r, c, /*expect_complete_run=*/true, &out);
      // Every degraded match must be valid under the EFFECTIVE semantics
      // (kept candidates only, reduced-d edge scores).
      {
        scoring::QueryScorer escorer(c.graph, c.query, ensemble,
                                     effective.match, index.get());
        CheckValidity(cell, r.matches, escorer, &out);
      }
      check_certificate(cell, effective, level, r);
      if (level == levels.front()) {
        first_effective = effective;
        first_degraded = r;
      }
    }

    // Sharded degraded cell: the scatter-gather backend must reproduce the
    // single-process degraded run byte for byte, and the certificate built
    // from ITS stats export must be just as sound.
    if (opts.run_shards) {
      const int level = levels.front();
      const size_t n_shards = c.shards != 0 ? c.shards : 2;
      shard::ShardCluster::Options co;
      co.partition.shards = n_shards;
      co.partition.halo_depth = std::max(1, first_effective.match.d);
      shard::ShardCluster cluster(c.graph, ensemble, index.get(),
                                  std::move(co));
      shard::ShardEngine::Options eo;
      eo.star = first_effective;
      shard::ShardEngine engine(cluster, eo);
      EngineResult r;
      r.matches = engine.TopK(c.query, c.k);
      r.stats = engine.last_stats();
      ++out.cells_run;
      const std::string cell =
          StrPrintf("stard/shards=%zu/cert=degrade-l%d", n_shards, level);
      CheckBitwiseEqual("cert-shard-diff", cell, first_degraded.matches,
                        r.matches, &out);
      check_certificate(cell, first_effective, level, r);
    }
  }

  // --- Metamorphic relations (no oracle needed) ---
  if (opts.run_metamorphic) {
    Rng mrng(c.seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);

    // M1: query node/edge insertion order and edge orientation are
    // presentation only — scores must be invariant. Only without cutoffs:
    // truncation keeps a pivot-dependent candidate subset, and the pivot
    // choice is insertion-order-dependent, so truncated results
    // legitimately differ across presentations.
    if (c.query.node_count() >= 2 && c.config.max_candidates == 0 &&
        c.config.max_retrieval == 0) {
      const query::QueryGraph pq = PermuteQuery(c.query, mrng);
      RunSpec spec = base_spec;
      spec.query = &pq;
      const EngineResult r = Run(ensemble, spec);
      ++out.cells_run;
      CheckScoresNear("meta-permutation", "stard/permuted-query", ref_scores,
                      Scores(r.matches), &out);
    }

    // M2: the top-k score sequence is a bitwise prefix of the top-(k+3)
    // one. Scores only: tie selection is k-dependent in the rank join
    // (more pulls happen before the threshold stop), so mappings may
    // permute within an exact-score tie group across k.
    {
      RunSpec spec = base_spec;
      spec.k = c.k + 3;
      const EngineResult r = Run(ensemble, spec);
      ++out.cells_run;
      const std::vector<double> big = Scores(r.matches);
      if (ref_scores.size() > big.size()) {
        AddViolation(&out, "meta-kprefix", "stard/k+3",
                     StrPrintf("k=%zu returned %zu matches but k=%zu only %zu",
                               c.k, ref_scores.size(), c.k + 3, big.size()));
      } else {
        for (size_t i = 0; i < ref_scores.size(); ++i) {
          if (ref_scores[i] != big[i]) {
            AddViolation(&out, "meta-kprefix", "stard/k+3",
                         StrPrintf("score rank %zu: %.17g (k=%zu) vs %.17g "
                                   "(k=%zu)",
                                   i, ref_scores[i], c.k, big[i], c.k + 3));
            break;
          }
        }
      }
    }

    // M3: node-id relabeling changes nothing but the id space — score
    // sequences must be invariant. Gated on no cutoffs: with a candidate
    // cutoff, exact F_N ties at the truncation boundary are legitimately
    // broken by node id, so relabeling may keep a different (equal-scoring
    // at F_N, different connectivity) candidate.
    if (c.config.max_candidates == 0 && c.config.max_retrieval == 0) {
      const graph::KnowledgeGraph rg = RelabelGraph(c.graph, mrng);
      std::unique_ptr<graph::LabelIndex> ridx;
      if (c.with_index) ridx = std::make_unique<graph::LabelIndex>(rg);
      RunSpec spec = base_spec;
      spec.graph = &rg;
      spec.index = ridx.get();
      const EngineResult r = Run(ensemble, spec);
      ++out.cells_run;
      CheckScoresNear("meta-relabel", "stard/relabeled-graph", ref_scores,
                      Scores(r.matches), &out);
    }

    // M4a: raising lambda only raises multi-hop F_E — every match stays
    // valid with a non-decreasing score, so rank-wise scores and the match
    // count must not drop.
    auto check_monotone_up = [&](const char* check, const char* cell,
                                 const scoring::MatchConfig& cfg2) {
      RunSpec spec = base_spec;
      spec.config = cfg2;
      const EngineResult r = Run(ensemble, spec);
      ++out.cells_run;
      const std::vector<double> got = Scores(r.matches);
      if (got.size() < ref_scores.size()) {
        AddViolation(&out, check, cell,
                     StrPrintf("match count dropped: %zu vs %zu", got.size(),
                               ref_scores.size()));
        return;
      }
      for (size_t i = 0; i < ref_scores.size(); ++i) {
        if (got[i] < ref_scores[i] - kEps) {
          AddViolation(&out, check, cell,
                       StrPrintf("rank %zu score dropped: %.17g vs %.17g", i,
                                 got[i], ref_scores[i]));
          return;
        }
      }
    };
    if (c.config.lambda < 1.0) {
      scoring::MatchConfig cfg2 = base_spec.config;
      cfg2.lambda = std::min(1.0, cfg2.lambda + 0.1);
      check_monotone_up("meta-monotone-lambda", "stard/lambda+0.1", cfg2);
    }
    if (c.config.d < 4) {
      scoring::MatchConfig cfg2 = base_spec.config;
      cfg2.d += 1;
      check_monotone_up("meta-monotone-d", "stard/d+1", cfg2);
    }

    // M4b: raising thresholds shrinks the valid-match set and never raises
    // a surviving match's score — rank-wise scores and count must not grow.
    {
      scoring::MatchConfig cfg2 = base_spec.config;
      cfg2.node_threshold += 0.1;
      cfg2.edge_threshold += 0.05;
      RunSpec spec = base_spec;
      spec.config = cfg2;
      const EngineResult r = Run(ensemble, spec);
      ++out.cells_run;
      const std::vector<double> got = Scores(r.matches);
      const char* cell = "stard/thresholds-raised";
      if (got.size() > ref_scores.size()) {
        AddViolation(&out, "meta-monotone-threshold", cell,
                     StrPrintf("match count grew: %zu vs %zu", got.size(),
                               ref_scores.size()));
      } else {
        for (size_t i = 0; i < got.size(); ++i) {
          if (got[i] > ref_scores[i] + kEps) {
            AddViolation(
                &out, "meta-monotone-threshold", cell,
                StrPrintf("rank %zu score grew: %.17g vs %.17g", i, got[i],
                          ref_scores[i]));
            break;
          }
        }
      }
    }

    // M5: star streams must keep their rank-join contract — after every
    // pull, UpperBound() caps the next emission and never exceeds the
    // score just returned.
    if (c.query.IsStar()) {
      scoring::QueryScorer sscorer(c.graph, c.query, ensemble,
                                   base_spec.config, index.get());
      const query::StarQuery star = core::MakeStarQuery(c.query);
      for (size_t i = 0; i < 3; ++i) {
        core::StarSearch::Options so;
        so.strategy = kStrategies[i].s;
        core::StarSearch search(sscorer, star, so);
        ++out.cells_run;
        const std::string cell =
            StrPrintf("%s/star-stream", kStrategies[i].name);
        double prev = std::numeric_limits<double>::infinity();
        double prev_bound = std::numeric_limits<double>::infinity();
        for (size_t pulls = 0; pulls < 3 * c.k + 8; ++pulls) {
          const auto m = search.Next();
          if (!m) break;
          if (m->score > prev) {
            AddViolation(&out, "meta-upperbound", cell,
                         StrPrintf("stream score increased: %.17g after "
                                   "%.17g",
                                   m->score, prev));
            break;
          }
          if (m->score > prev_bound + kEps) {
            AddViolation(&out, "meta-upperbound", cell,
                         StrPrintf("emission %.17g above advertised bound "
                                   "%.17g",
                                   m->score, prev_bound));
            break;
          }
          const double bound = search.UpperBound();
          if (bound > m->score + kEps) {
            AddViolation(&out, "meta-upperbound", cell,
                         StrPrintf("bound %.17g above last emission %.17g",
                                   bound, m->score));
            break;
          }
          prev = m->score;
          prev_bound = bound;
        }
      }
    }
  }

  return out;
}

}  // namespace star::testing
