#ifndef STAR_TESTING_REPLAY_H_
#define STAR_TESTING_REPLAY_H_

#include <string>

#include "testing/fuzz_case.h"

namespace star::testing {

/// Self-contained, line-oriented text form of a fuzz case ("star-replay
/// v1"): seed/profile provenance, every result-affecting knob (doubles as
/// bit-exact %016llx patterns, so a replay reproduces the exact FP
/// behaviour), the query, and the full graph embedded in the graph_io
/// "star-kg v1" format between `graph` and `endgraph` lines. Everything a
/// failure needs to reproduce on a machine that has only this file.
std::string SerializeReplay(const FuzzCase& c);

/// Parses a replay produced by SerializeReplay. On failure returns false
/// and sets *error to a line-numbered reason.
bool ParseReplay(const std::string& text, FuzzCase* out, std::string* error);

/// File wrappers around the above. Write returns false on IO failure.
bool WriteReplayFile(const std::string& path, const FuzzCase& c);
bool LoadReplayFile(const std::string& path, FuzzCase* out,
                    std::string* error);

}  // namespace star::testing

#endif  // STAR_TESTING_REPLAY_H_
