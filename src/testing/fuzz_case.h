#ifndef STAR_TESTING_FUZZ_CASE_H_
#define STAR_TESTING_FUZZ_CASE_H_

#include <cstdint>
#include <string>

#include "core/framework.h"
#include "graph/knowledge_graph.h"
#include "query/query_graph.h"
#include "scoring/match_config.h"

namespace star::testing {

/// A deliberately planted defect, used to prove the harness detects and
/// shrinks real bugs end to end (the checks run against the true engine
/// pipeline; only the named component is perturbed).
enum class BugInjection {
  kNone = 0,
  /// serve::StarCache::CorruptTopListScoresForTest between the cold and
  /// warm reuse runs: warm replays then emit perturbed scores, which the
  /// warm==cold differential cell must flag.
  kWarmTopListScores,
  /// serve::StarCache::CorruptCandidateScoresForTest between cold and
  /// warm: seeded candidate lists carry perturbed F_N, breaking warm
  /// bitwise identity.
  kWarmCandidateScores,
};

const char* BugInjectionName(BugInjection b);

/// One self-contained fuzz input: a concrete graph, query, and matching
/// configuration. Everything the differential matrix varies per cell
/// (strategy, threads, kernel, reuse mode, deadline mode) is derived by
/// the runner; everything that changes *results* lives here.
struct FuzzCase {
  /// Seed this case was generated from (provenance; replays keep it).
  uint64_t seed = 0;
  /// Profile name the case came from ("manual" for hand-built cases).
  std::string profile = "manual";

  graph::KnowledgeGraph graph;
  query::QueryGraph query;
  scoring::MatchConfig config;
  /// Rank-join score split and decomposition knobs (result-affecting).
  double alpha = 0.5;
  core::DecompositionOptions decomposition;
  size_t k = 5;
  /// Whether a LabelIndex is attached (retrieval semantics differ).
  bool with_index = true;
  /// Tight-deadline cell budget in ms (0 disables the tight cell; the
  /// pre-expired cell always runs).
  double tight_deadline_ms = 0.0;
  /// Shard count for the sharded-backend cells: 0 runs the default
  /// {2, 4} sweep, a nonzero value pins the cells to that one count (the
  /// shrinker narrows to the failing count; replays carry it).
  size_t shards = 0;
  /// Degradation level for the certificate cells: 0 runs the default
  /// {1, 2, 3} ladder sweep, a nonzero value pins the cells to that one
  /// level (the shrinker narrows to the failing level; replays carry it).
  int degrade = 0;
  BugInjection inject = BugInjection::kNone;

  /// One-line human description for logs.
  std::string Describe() const;
};

/// Parameter ranges the case generator draws from. Every field is a
/// closed range or probability; a (profile, seed) pair fully determines
/// the case, so any run is reproducible from its seed alone.
struct FuzzProfile {
  std::string name = "default";

  // --- graph shape ---
  size_t min_nodes = 16, max_nodes = 40;
  /// Edges = nodes * factor drawn from [min, max].
  double edge_factor_min = 1.4, edge_factor_max = 2.6;
  size_t num_types = 6;
  size_t num_relations = 8;
  /// Token pool per label part; small pools collide labels, which is what
  /// produces exact F_N ties (the historic bug magnet).
  size_t token_pool_min = 6, token_pool_max = 14;
  double degree_skew_min = 0.4, degree_skew_max = 1.2;

  // --- query shape ---
  int min_query_nodes = 2, max_query_nodes = 4;
  /// Shape mix: star with prob 1 - path_prob - cyclic_prob.
  double path_prob = 0.25, cyclic_prob = 0.2;
  double variable_fraction = 0.25;  // wildcard slots
  double label_noise = 0.4;
  double partial_label = 0.35;
  double keep_relation = 0.5;
  double keep_type = 0.5;

  // --- matching semantics ---
  double node_threshold_min = 0.2, node_threshold_max = 0.45;
  double edge_threshold_min = 0.0, edge_threshold_max = 0.15;
  double lambda_min = 0.3, lambda_max = 0.9;
  int max_d = 3;
  /// Probability of a candidate cutoff (then uniform in [2, 6]).
  double cutoff_prob = 0.3;
  /// Probability of a retrieval cutoff when an index is attached.
  double retrieval_cutoff_prob = 0.2;
  double injective_prob = 0.7;
  double with_index_prob = 0.7;

  // --- workload ---
  size_t min_k = 1, max_k = 8;
  /// Probability the case gets a tight-deadline cell, and its budget range.
  double tight_deadline_prob = 0.0;
  double tight_deadline_min_ms = 0.05, tight_deadline_max_ms = 1.0;
  /// Probability the case pins its certificate cells to one forced
  /// degradation level (uniform in [1, 3]); otherwise the full ladder
  /// sweep runs.
  double forced_degrade_prob = 0.0;
};

/// The default smoke profile: small graphs, mixed query shapes, oracle
/// always feasible.
FuzzProfile SmokeProfile();

/// Tiny token pools and loose thresholds: exact score ties everywhere.
FuzzProfile TieHeavyProfile();

/// TieHeavy plus a guaranteed max_candidates cutoff: the truncation cut
/// lands inside tie runs, stressing bound-driven retrieval's tie-exact
/// heap against the score-everything reference.
FuzzProfile TieCutProfile();

/// Adds tight-deadline cells on slightly larger graphs so expiries fire
/// mid-run (prefix-contract coverage).
FuzzProfile DeadlineProfile();

/// Tight deadlines plus forced degradation levels on oracle-feasible
/// graphs: every case exercises the anytime/degraded certificate cells
/// (bound soundness against the brute-force truth, guaranteed-prefix
/// bitwise identity) under the exact conditions a shedding service hits.
FuzzProfile OverloadProfile();

/// Profile by name ("smoke", "ties", "deadline", "overload"); falls back
/// to smoke.
FuzzProfile ProfileByName(const std::string& name);

/// Deterministically generates the case for (profile, seed).
FuzzCase MakeFuzzCase(const FuzzProfile& profile, uint64_t seed);

/// Structural deep copy of a graph (KnowledgeGraph is move-only; the
/// shrinker and replay tooling rebuild modified copies through this).
graph::KnowledgeGraph CopyGraph(const graph::KnowledgeGraph& g);

/// Deep copy of a case (graph rebuilt via CopyGraph).
FuzzCase CopyCase(const FuzzCase& c);

}  // namespace star::testing

#endif  // STAR_TESTING_FUZZ_CASE_H_
