#ifndef STAR_TESTING_DIFFERENTIAL_H_
#define STAR_TESTING_DIFFERENTIAL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "testing/fuzz_case.h"

namespace star::testing {

/// One failed check. `check` is a stable kind tag (the shrinker matches on
/// it), `cell` names the matrix cell, `detail` is human-readable.
struct Violation {
  std::string check;
  std::string cell;
  std::string detail;
};

/// Which parts of the matrix to run. The defaults are the full matrix;
/// the shrinker narrows them to the failing region for speed.
struct RunnerOptions {
  bool run_oracle = true;
  /// graphTA always; BP only on acyclic non-injective cases (its exactness
  /// domain).
  bool run_baselines = true;
  bool run_metamorphic = true;
  bool run_reuse = true;
  bool run_deadline = true;
  bool run_thread_kernel_matrix = true;
  /// Re-run every strategy over a kCompressed rebuild of the case's graph
  /// and index; results must be bitwise identical to the flat base cells.
  bool run_layout = true;
  /// Re-run every strategy through the sharded backend (ShardEngine over a
  /// ShardCluster) at shard counts {2, 4} (or the case's pinned count);
  /// results must be bitwise identical to the single-process base cells.
  bool run_shards = true;
  /// Anytime/degraded certificate cells: re-run the reference strategy at
  /// degradation levels {1, 2, 3} (or the case's pinned level) plus the
  /// deadline-truncated level-0 cells, build each run's QualityCertificate,
  /// and check it against the brute-force truth — the certified bound must
  /// dominate the true score at rank guaranteed_prefix+1, and the
  /// guaranteed prefix must be bitwise equal to the exact run's prefix.
  bool run_certificates = true;
  /// Skip the brute-force cell when the product of candidate-list sizes
  /// exceeds this (the oracle is exponential; the generator keeps cases
  /// under the guard, but shrinking intermediates may not be).
  double max_oracle_states = 4e6;
};

struct CaseOutcome {
  std::vector<Violation> violations;
  size_t cells_run = 0;
  bool oracle_ran = false;

  bool ok() const { return violations.empty(); }
  /// First violation rendered as "check @ cell: detail" ("" when ok).
  std::string Summary() const;
};

/// Runs the full differential + metamorphic matrix on one case:
///
///  - BruteForce oracle vs stark/stard/hybrid (framework) score identity;
///  - graphTA (always) and BP (acyclic, non-injective) agreement;
///  - bitwise identity across {1,4} threads x kernel on/off per strategy;
///  - bitwise identity of reuse cold/warm/invalidated runs (with optional
///    bug injection between cold and warm);
///  - deadline cells: pre-expired => empty + cancelled; tight => bitwise
///    prefix of the undeadlined run;
///  - sharded backend at {2, 4} shards (hash and label-range policies)
///    bitwise identical to the base cells per strategy, plus a threaded
///    coordinator cell and a sharded tight-deadline prefix cell;
///  - certificate cells: degraded runs (shedding-ladder levels) and
///    deadline-truncated runs carry QualityCertificates whose bound
///    dominates the oracle's true next-rank score and whose guaranteed
///    prefix is bitwise exact, single-process and sharded;
///  - metamorphic relations needing no oracle: query node/edge permutation
///    invariance, TopK(k) prefix-of TopK(k+3), graph node-id relabeling
///    invariance, threshold/lambda/d monotonicity, and star-stream upper
///    bound monotonicity.
///
/// Deterministic given (case, options) except the tight-deadline cell,
/// whose *checks* are timing-independent (the contract holds wherever the
/// expiry lands).
CaseOutcome RunDifferentialCase(const FuzzCase& c, const RunnerOptions& opts);

}  // namespace star::testing

#endif  // STAR_TESTING_DIFFERENTIAL_H_
