#include "testing/replay.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/graph_io.h"

namespace star::testing {
namespace {

/// Doubles are serialized as raw bit patterns: a replay must reproduce the
/// exact FP behaviour of the original run, and "%.17g" round-trips are one
/// locale bug away from not doing that.
std::string BitsOf(double d) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "x%016" PRIx64, std::bit_cast<uint64_t>(d));
  return buf;
}

bool ParseBits(const std::string& tok, double* out) {
  if (tok.size() != 17 || tok[0] != 'x') return false;
  char* end = nullptr;
  const uint64_t bits = std::strtoull(tok.c_str() + 1, &end, 16);
  if (end == nullptr || *end != '\0') return false;
  *out = std::bit_cast<double>(bits);
  return true;
}

bool ParseU64(const std::string& tok, uint64_t* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(tok.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseI64(const std::string& tok, int64_t* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(tok.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

/// Names (types, relations, profile) may not contain whitespace on a
/// replay line: spaces become '_', empty becomes a lone '_' (same
/// convention as graph_io).
std::string EncodeName(const std::string& name) {
  if (name.empty()) return "_";
  std::string out = name;
  for (char& c : out) {
    if (c == ' ' || c == '\t') c = '_';
  }
  return out;
}

std::string DecodeName(const std::string& enc) {
  if (enc == "_") return "";
  std::string out = enc;
  for (char& c : out) {
    if (c == '_') c = ' ';
  }
  return out;
}

/// Splits on single spaces into at most `max_fields` tokens; the last
/// token swallows the rest of the line (labels/relations keep spaces).
std::vector<std::string> SplitLine(const std::string& line,
                                   size_t max_fields) {
  std::vector<std::string> fields;
  size_t pos = 0;
  while (pos < line.size() && fields.size() + 1 < max_fields) {
    const size_t space = line.find(' ', pos);
    if (space == std::string::npos) break;
    fields.push_back(line.substr(pos, space - pos));
    pos = space + 1;
  }
  if (pos <= line.size()) fields.push_back(line.substr(pos));
  return fields;
}

BugInjection InjectionByName(const std::string& name) {
  if (name == BugInjectionName(BugInjection::kWarmTopListScores)) {
    return BugInjection::kWarmTopListScores;
  }
  if (name == BugInjectionName(BugInjection::kWarmCandidateScores)) {
    return BugInjection::kWarmCandidateScores;
  }
  return BugInjection::kNone;
}

}  // namespace

std::string SerializeReplay(const FuzzCase& c) {
  std::ostringstream out;
  out << "star-replay v1\n";
  out << "seed " << c.seed << "\n";
  out << "profile " << EncodeName(c.profile) << "\n";
  out << "inject " << BugInjectionName(c.inject) << "\n";
  out << "k " << c.k << "\n";
  out << "with_index " << (c.with_index ? 1 : 0) << "\n";
  out << "alpha " << BitsOf(c.alpha) << "\n";
  out << "tight_deadline_ms " << BitsOf(c.tight_deadline_ms) << "\n";
  // Written only when pinned so pre-shard replay files stay loadable by
  // this parser and new files stay loadable by strict older parsers
  // whenever the field is at its default.
  if (c.shards != 0) out << "shards " << c.shards << "\n";
  if (c.degrade != 0) out << "degrade " << c.degrade << "\n";
  const auto& dc = c.decomposition;
  out << "decomp " << static_cast<int>(dc.strategy) << " "
      << BitsOf(dc.lambda_tradeoff) << " " << dc.sample_size << " "
      << BitsOf(dc.connectivity_p) << " " << dc.seed << " "
      << dc.max_enumeration_nodes << "\n";
  const auto& cfg = c.config;
  out << "config " << BitsOf(cfg.node_threshold) << " "
      << BitsOf(cfg.edge_threshold) << " " << BitsOf(cfg.lambda) << " "
      << cfg.d << " " << cfg.max_candidates << " " << cfg.max_retrieval << " "
      << BitsOf(cfg.wildcard_node_score) << " "
      << (cfg.enforce_injective ? 1 : 0) << "\n";
  for (int u = 0; u < c.query.node_count(); ++u) {
    const auto& qn = c.query.node(u);
    out << "qn " << (qn.wildcard ? 1 : 0) << " " << EncodeName(qn.type_name)
        << " " << qn.label << "\n";
  }
  for (int e = 0; e < c.query.edge_count(); ++e) {
    const auto& qe = c.query.edge(e);
    out << "qe " << qe.u << " " << qe.v << " "
        << (qe.wildcard_relation ? "_" : qe.relation) << "\n";
  }
  out << "graph\n";
  graph::SaveGraph(c.graph, out);
  out << "endgraph\n";
  return out.str();
}

bool ParseReplay(const std::string& text, FuzzCase* out, std::string* error) {
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };

  ++line_no;
  if (!std::getline(in, line) || line != "star-replay v1") {
    return fail("missing 'star-replay v1' header");
  }
  FuzzCase c;
  bool have_graph = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto key_end = line.find(' ');
    const std::string key = line.substr(0, key_end);
    const std::string rest =
        key_end == std::string::npos ? "" : line.substr(key_end + 1);
    if (key == "seed") {
      if (!ParseU64(rest, &c.seed)) return fail("bad seed");
    } else if (key == "profile") {
      c.profile = DecodeName(rest);
    } else if (key == "inject") {
      c.inject = InjectionByName(rest);
    } else if (key == "k") {
      uint64_t k = 0;
      if (!ParseU64(rest, &k) || k == 0) return fail("bad k");
      c.k = static_cast<size_t>(k);
    } else if (key == "with_index") {
      c.with_index = rest == "1";
    } else if (key == "alpha") {
      if (!ParseBits(rest, &c.alpha)) return fail("bad alpha bits");
    } else if (key == "tight_deadline_ms") {
      if (!ParseBits(rest, &c.tight_deadline_ms)) {
        return fail("bad deadline bits");
      }
    } else if (key == "shards") {
      uint64_t s = 0;
      if (!ParseU64(rest, &s)) return fail("bad shards");
      c.shards = static_cast<size_t>(s);
    } else if (key == "degrade") {
      int64_t l = 0;
      if (!ParseI64(rest, &l) || l < 0 || l > 3) return fail("bad degrade");
      c.degrade = static_cast<int>(l);
    } else if (key == "decomp") {
      const auto f = SplitLine(rest, 6);
      int64_t strategy = 0, max_enum = 0;
      uint64_t sample = 0, dseed = 0;
      if (f.size() != 6 || !ParseI64(f[0], &strategy) ||
          !ParseBits(f[1], &c.decomposition.lambda_tradeoff) ||
          !ParseU64(f[2], &sample) ||
          !ParseBits(f[3], &c.decomposition.connectivity_p) ||
          !ParseU64(f[4], &dseed) || !ParseI64(f[5], &max_enum)) {
        return fail("bad decomp line");
      }
      c.decomposition.strategy =
          static_cast<core::DecompositionStrategy>(strategy);
      c.decomposition.sample_size = static_cast<size_t>(sample);
      c.decomposition.seed = dseed;
      c.decomposition.max_enumeration_nodes = static_cast<int>(max_enum);
    } else if (key == "config") {
      const auto f = SplitLine(rest, 8);
      int64_t d = 0;
      uint64_t max_cand = 0, max_retr = 0;
      if (f.size() != 8 || !ParseBits(f[0], &c.config.node_threshold) ||
          !ParseBits(f[1], &c.config.edge_threshold) ||
          !ParseBits(f[2], &c.config.lambda) || !ParseI64(f[3], &d) ||
          !ParseU64(f[4], &max_cand) || !ParseU64(f[5], &max_retr) ||
          !ParseBits(f[6], &c.config.wildcard_node_score)) {
        return fail("bad config line");
      }
      c.config.d = static_cast<int>(d);
      c.config.max_candidates = static_cast<size_t>(max_cand);
      c.config.max_retrieval = static_cast<size_t>(max_retr);
      c.config.enforce_injective = f[7] == "1";
    } else if (key == "qn") {
      const auto f = SplitLine(rest, 3);
      if (f.size() != 3) return fail("bad qn line");
      if (f[0] == "1") {
        c.query.AddWildcardNode(DecodeName(f[1]));
      } else {
        c.query.AddNode(f[2], DecodeName(f[1]));
      }
    } else if (key == "qe") {
      const auto f = SplitLine(rest, 3);
      int64_t u = 0, v = 0;
      if (f.size() != 3 || !ParseI64(f[0], &u) || !ParseI64(f[1], &v)) {
        return fail("bad qe line");
      }
      if (u < 0 || v < 0 || u >= c.query.node_count() ||
          v >= c.query.node_count() || u == v) {
        return fail("qe endpoints out of range");
      }
      c.query.AddEdge(static_cast<int>(u), static_cast<int>(v),
                      f[2] == "_" ? "" : f[2]);
    } else if (key == "graph") {
      std::ostringstream section;
      bool closed = false;
      while (std::getline(in, line)) {
        ++line_no;
        if (line == "endgraph") {
          closed = true;
          break;
        }
        section << line << "\n";
      }
      if (!closed) return fail("graph section missing 'endgraph'");
      std::istringstream gs(section.str());
      auto loaded = graph::LoadGraph(gs);
      if (!loaded.ok()) return fail("graph: " + loaded.status().message());
      c.graph = std::move(loaded).value();
      have_graph = true;
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (!have_graph) return fail("no graph section");
  if (c.query.node_count() == 0) return fail("no query nodes");
  *out = std::move(c);
  return true;
}

bool WriteReplayFile(const std::string& path, const FuzzCase& c) {
  std::ofstream out(path);
  if (!out) return false;
  out << SerializeReplay(c);
  return static_cast<bool>(out);
}

bool LoadReplayFile(const std::string& path, FuzzCase* out,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open: " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseReplay(text.str(), out, error);
}

}  // namespace star::testing
