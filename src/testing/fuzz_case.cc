#include "testing/fuzz_case.h"

#include <algorithm>
#include <cstdio>

#include "common/random.h"
#include "graph/graph_generator.h"
#include "query/workload.h"

namespace star::testing {

const char* BugInjectionName(BugInjection b) {
  switch (b) {
    case BugInjection::kNone: return "none";
    case BugInjection::kWarmTopListScores: return "warm-toplist";
    case BugInjection::kWarmCandidateScores: return "warm-candidates";
  }
  return "none";
}

std::string FuzzCase::Describe() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "seed=%llu |V|=%zu |E|=%zu q=%d/%d k=%zu d=%d nt=%.3f et=%.3f "
                "lambda=%.3f cut=%zu inj=%d idx=%d dl=%.2fms sh=%zu dg=%d "
                "bug=%s",
                static_cast<unsigned long long>(seed), graph.node_count(),
                graph.edge_count(), query.node_count(), query.edge_count(), k,
                config.d, config.node_threshold, config.edge_threshold,
                config.lambda, config.max_candidates,
                config.enforce_injective ? 1 : 0, with_index ? 1 : 0,
                tight_deadline_ms, shards, degrade, BugInjectionName(inject));
  return buf;
}

FuzzProfile SmokeProfile() { return FuzzProfile{}; }

FuzzProfile TieHeavyProfile() {
  FuzzProfile p;
  p.name = "ties";
  // Tiny token pools collide labels; collided labels have identical F_N,
  // so candidate lists, star streams, and rank joins are full of exact
  // ties — the regime where tie-break determinism bugs live.
  p.token_pool_min = 3;
  p.token_pool_max = 6;
  p.num_types = 3;
  p.num_relations = 4;
  p.node_threshold_min = 0.15;
  p.node_threshold_max = 0.3;
  p.edge_threshold_max = 0.05;
  p.label_noise = 0.2;
  p.partial_label = 0.6;
  p.cutoff_prob = 0.5;  // cutoffs + ties stress deterministic truncation
  return p;
}

FuzzProfile DeadlineProfile() {
  FuzzProfile p;
  p.name = "deadline";
  p.min_nodes = 30;
  p.max_nodes = 70;
  p.edge_factor_min = 2.0;
  p.edge_factor_max = 3.0;
  p.max_query_nodes = 5;
  p.tight_deadline_prob = 1.0;
  p.tight_deadline_min_ms = 0.02;
  p.tight_deadline_max_ms = 1.5;
  return p;
}

FuzzProfile TieCutProfile() {
  FuzzProfile p = TieHeavyProfile();
  p.name = "tiecut";
  // Every case gets a small max_candidates cutoff on a tie-saturated
  // score distribution, so the cut routinely lands inside a run of equal
  // scores — the adversarial regime for bound-driven retrieval, whose
  // heap must reproduce the deterministic (score desc, id asc) truncation
  // byte for byte while skipping blocks.
  p.cutoff_prob = 1.0;
  p.with_index_prob = 0.9;  // mostly block-max walks, some pool fallbacks
  p.retrieval_cutoff_prob = 0.3;
  p.token_pool_min = 2;
  p.token_pool_max = 4;
  return p;
}

FuzzProfile OverloadProfile() {
  FuzzProfile p;
  p.name = "overload";
  // Graph sizes stay in the smoke range so the brute-force oracle is
  // almost always feasible: the certificate cells' bound-dominance check
  // needs the true score ladder.
  p.min_nodes = 18;
  p.max_nodes = 44;
  p.edge_factor_min = 1.6;
  p.edge_factor_max = 2.8;
  // Nominal cutoffs collide with the degraded (tighter) ones: the drop
  // bound must stay sound whether the ladder tightens an existing cut or
  // introduces the first one.
  p.cutoff_prob = 0.6;
  p.tight_deadline_prob = 0.5;
  p.tight_deadline_min_ms = 0.05;
  p.tight_deadline_max_ms = 1.0;
  p.forced_degrade_prob = 0.75;
  return p;
}

FuzzProfile ProfileByName(const std::string& name) {
  if (name == "ties") return TieHeavyProfile();
  if (name == "tiecut") return TieCutProfile();
  if (name == "deadline") return DeadlineProfile();
  if (name == "overload") return OverloadProfile();
  return SmokeProfile();
}

namespace {

double UniformIn(Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * rng.NextDouble();
}

size_t SizeIn(Rng& rng, size_t lo, size_t hi) {
  return lo + static_cast<size_t>(rng.Below(hi - lo + 1));
}

}  // namespace

FuzzCase MakeFuzzCase(const FuzzProfile& profile, uint64_t seed) {
  // Independent sub-streams so a tweak to one draw doesn't shift every
  // later decision (keeps shrunk cases comparable to their parents).
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);

  FuzzCase c;
  c.seed = seed;
  c.profile = profile.name;

  graph::GeneratorConfig gc;
  gc.num_nodes = SizeIn(rng, profile.min_nodes, profile.max_nodes);
  gc.num_edges = static_cast<size_t>(
      static_cast<double>(gc.num_nodes) *
      UniformIn(rng, profile.edge_factor_min, profile.edge_factor_max));
  gc.num_types = profile.num_types;
  gc.num_relations = profile.num_relations;
  gc.token_pool = SizeIn(rng, profile.token_pool_min, profile.token_pool_max);
  gc.degree_skew =
      UniformIn(rng, profile.degree_skew_min, profile.degree_skew_max);
  gc.seed = rng.Next();
  c.graph = graph::GenerateGraph(gc);

  query::WorkloadOptions wo;
  wo.variable_fraction = profile.variable_fraction;
  wo.label_noise = profile.label_noise;
  wo.partial_label = profile.partial_label;
  wo.keep_relation = profile.keep_relation;
  wo.keep_type = profile.keep_type;
  query::WorkloadGenerator wg(c.graph, rng.Next());
  const int qn =
      static_cast<int>(SizeIn(rng, static_cast<size_t>(profile.min_query_nodes),
                              static_cast<size_t>(profile.max_query_nodes)));
  const double shape = rng.NextDouble();
  if (shape < profile.cyclic_prob && qn >= 3) {
    c.query = wg.RandomGraphQuery(qn, qn + 1, wo);  // one extra edge: a cycle
  } else if (shape < profile.cyclic_prob + profile.path_prob && qn >= 2) {
    c.query = wg.RandomPathQuery(qn, wo);
  } else {
    c.query = wg.RandomStarQuery(qn, wo);
  }

  c.config.node_threshold =
      UniformIn(rng, profile.node_threshold_min, profile.node_threshold_max);
  c.config.edge_threshold =
      UniformIn(rng, profile.edge_threshold_min, profile.edge_threshold_max);
  c.config.lambda = UniformIn(rng, profile.lambda_min, profile.lambda_max);
  c.config.d = 1 + static_cast<int>(rng.Below(
                       static_cast<uint64_t>(std::max(1, profile.max_d))));
  c.config.enforce_injective = rng.Chance(profile.injective_prob);
  if (rng.Chance(profile.cutoff_prob)) {
    c.config.max_candidates = SizeIn(rng, 2, 6);
  }
  c.with_index = rng.Chance(profile.with_index_prob);
  if (c.with_index && rng.Chance(profile.retrieval_cutoff_prob)) {
    c.config.max_retrieval = SizeIn(rng, 4, 12);
  }
  c.k = SizeIn(rng, profile.min_k, profile.max_k);
  c.decomposition.seed = rng.Next();
  c.alpha = UniformIn(rng, 0.2, 0.8);
  if (rng.Chance(profile.tight_deadline_prob)) {
    c.tight_deadline_ms = UniformIn(rng, profile.tight_deadline_min_ms,
                                    profile.tight_deadline_max_ms);
  }
  if (rng.Chance(profile.forced_degrade_prob)) {
    c.degrade = 1 + static_cast<int>(rng.Below(3));
  }
  return c;
}

graph::KnowledgeGraph CopyGraph(const graph::KnowledgeGraph& g) {
  graph::KnowledgeGraph::Builder b;
  for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(g.node_count());
       ++v) {
    const int32_t t = g.NodeType(v);
    b.AddNode(std::string(g.NodeLabel(v)), std::string(g.TypeName(t)));
  }
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(g.edge_count());
       ++e) {
    b.AddEdge(g.EdgeSrc(e), g.EdgeDst(e), g.RelationName(g.EdgeRelation(e)));
  }
  return std::move(b).Build();
}

FuzzCase CopyCase(const FuzzCase& c) {
  FuzzCase out;
  out.seed = c.seed;
  out.profile = c.profile;
  out.graph = CopyGraph(c.graph);
  out.query = c.query;
  out.config = c.config;
  out.alpha = c.alpha;
  out.decomposition = c.decomposition;
  out.k = c.k;
  out.with_index = c.with_index;
  out.tight_deadline_ms = c.tight_deadline_ms;
  out.shards = c.shards;
  out.degrade = c.degrade;
  out.inject = c.inject;
  return out;
}

}  // namespace star::testing
