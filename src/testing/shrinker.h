#ifndef STAR_TESTING_SHRINKER_H_
#define STAR_TESTING_SHRINKER_H_

#include <cstddef>
#include <string>

#include "testing/differential.h"
#include "testing/fuzz_case.h"

namespace star::testing {

struct ShrinkOptions {
  /// Matrix subset to evaluate candidates against (narrowing it to the
  /// failing region makes shrinking much faster but risks losing
  /// cross-cell failures; the default full matrix is safe).
  RunnerOptions runner;
  /// Budget on candidate evaluations (each runs the matrix once).
  size_t max_attempts = 400;
};

struct ShrinkResult {
  FuzzCase minimal;
  /// Candidate evaluations spent.
  size_t attempts = 0;
  /// Accepted reductions (0 = the original was already minimal under the
  /// transformation set).
  size_t reductions = 0;
};

/// Greedy delta-debugging over (graph, query, config): repeatedly tries
/// ordered reductions — shrink k, drop query edges/leaf nodes, remove
/// graph node/edge chunks, zero out config knobs — and accepts any
/// candidate on which RunDifferentialCase still reports a violation with
/// `check == target_check`. Deterministic: same input, same minimal case.
ShrinkResult ShrinkCase(const FuzzCase& c, const std::string& target_check,
                        const ShrinkOptions& opts);

}  // namespace star::testing

#endif  // STAR_TESTING_SHRINKER_H_
