#include "testing/shrinker.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/knowledge_graph.h"
#include "query/query_graph.h"

namespace star::testing {
namespace {

/// The shrink predicate: the candidate must still produce a violation of
/// the SAME check kind (not merely any violation — a reduction that trades
/// the original bug for a different one is not a smaller repro of it).
bool StillFails(const FuzzCase& c, const std::string& target,
                const RunnerOptions& runner) {
  const CaseOutcome o = RunDifferentialCase(c, runner);
  for (const auto& v : o.violations) {
    if (v.check == target) return true;
  }
  return false;
}

query::QueryGraph DropQueryEdge(const query::QueryGraph& q, int drop) {
  query::QueryGraph nq;
  for (int u = 0; u < q.node_count(); ++u) {
    const auto& qn = q.node(u);
    if (qn.wildcard) {
      nq.AddWildcardNode(qn.type_name);
    } else {
      nq.AddNode(qn.label, qn.type_name);
    }
  }
  for (int e = 0; e < q.edge_count(); ++e) {
    if (e == drop) continue;
    const auto& qe = q.edge(e);
    nq.AddEdge(qe.u, qe.v, qe.wildcard_relation ? "" : qe.relation);
  }
  return nq;
}

query::QueryGraph DropQueryNode(const query::QueryGraph& q, int drop) {
  query::QueryGraph nq;
  for (int u = 0; u < q.node_count(); ++u) {
    if (u == drop) continue;
    const auto& qn = q.node(u);
    if (qn.wildcard) {
      nq.AddWildcardNode(qn.type_name);
    } else {
      nq.AddNode(qn.label, qn.type_name);
    }
  }
  const auto remap = [drop](int u) { return u > drop ? u - 1 : u; };
  for (int e = 0; e < q.edge_count(); ++e) {
    const auto& qe = q.edge(e);
    if (qe.u == drop || qe.v == drop) continue;
    nq.AddEdge(remap(qe.u), remap(qe.v),
               qe.wildcard_relation ? "" : qe.relation);
  }
  return nq;
}

/// New graph keeping exactly the nodes with keep[v] (edges touching a
/// dropped node go with it). Queries reference labels, never node ids, so
/// this is always a semantically valid reduction.
graph::KnowledgeGraph FilterGraphNodes(const graph::KnowledgeGraph& g,
                                       const std::vector<bool>& keep) {
  graph::KnowledgeGraph::Builder b;
  std::vector<graph::NodeId> remap(g.node_count(), graph::kInvalidNode);
  for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(g.node_count());
       ++v) {
    if (!keep[v]) continue;
    const int32_t t = g.NodeType(v);
    remap[v] = b.AddNode(std::string(g.NodeLabel(v)), std::string(g.TypeName(t)));
  }
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(g.edge_count());
       ++e) {
    const graph::NodeId s = remap[g.EdgeSrc(e)];
    const graph::NodeId d = remap[g.EdgeDst(e)];
    if (s == graph::kInvalidNode || d == graph::kInvalidNode) continue;
    b.AddEdge(s, d, g.RelationName(g.EdgeRelation(e)));
  }
  return std::move(b).Build();
}

graph::KnowledgeGraph DropGraphEdgeRange(const graph::KnowledgeGraph& g,
                                         size_t lo, size_t hi) {
  graph::KnowledgeGraph::Builder b;
  for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(g.node_count());
       ++v) {
    const int32_t t = g.NodeType(v);
    b.AddNode(std::string(g.NodeLabel(v)), std::string(g.TypeName(t)));
  }
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(g.edge_count());
       ++e) {
    if (e >= lo && e < hi) continue;
    b.AddEdge(g.EdgeSrc(e), g.EdgeDst(e), g.RelationName(g.EdgeRelation(e)));
  }
  return std::move(b).Build();
}

}  // namespace

ShrinkResult ShrinkCase(const FuzzCase& c, const std::string& target_check,
                        const ShrinkOptions& opts) {
  ShrinkResult res;
  res.minimal = CopyCase(c);

  const auto budget = [&] { return res.attempts < opts.max_attempts; };
  // Evaluates one candidate; on success it becomes the new minimum.
  const auto try_accept = [&](FuzzCase cand) {
    if (!budget()) return false;
    ++res.attempts;
    if (!StillFails(cand, target_check, opts.runner)) return false;
    res.minimal = std::move(cand);
    ++res.reductions;
    return true;
  };

  bool progress = true;
  while (progress && budget()) {
    progress = false;

    // --- k: halve while the failure survives ---
    while (res.minimal.k > 1 && budget()) {
      FuzzCase cand = CopyCase(res.minimal);
      cand.k = std::max<size_t>(1, cand.k / 2);
      if (!try_accept(std::move(cand))) break;
      progress = true;
    }

    // --- query edges (connectivity-preserving) ---
    for (int e = res.minimal.query.edge_count() - 1; e >= 0 && budget();
         --e) {
      query::QueryGraph nq = DropQueryEdge(res.minimal.query, e);
      if (!nq.IsConnected()) continue;
      FuzzCase cand = CopyCase(res.minimal);
      cand.query = std::move(nq);
      if (try_accept(std::move(cand))) progress = true;
    }

    // --- query leaf nodes ---
    for (int u = res.minimal.query.node_count() - 1;
         u >= 0 && res.minimal.query.node_count() > 1 && budget(); --u) {
      if (res.minimal.query.Degree(u) > 1) continue;
      query::QueryGraph nq = DropQueryNode(res.minimal.query, u);
      if (nq.node_count() == 0 || !nq.IsConnected()) continue;
      FuzzCase cand = CopyCase(res.minimal);
      cand.query = std::move(nq);
      if (try_accept(std::move(cand))) progress = true;
    }

    // --- graph nodes: remove chunks, halving the chunk size ---
    for (size_t chunk = std::max<size_t>(1, res.minimal.graph.node_count() / 2);
         chunk >= 1 && budget(); chunk /= 2) {
      const size_t n = res.minimal.graph.node_count();
      for (size_t start = 0; start < n && budget(); start += chunk) {
        if (res.minimal.graph.node_count() <= 1) break;
        if (start >= res.minimal.graph.node_count()) break;
        std::vector<bool> keep(res.minimal.graph.node_count(), true);
        const size_t end =
            std::min(start + chunk, res.minimal.graph.node_count());
        for (size_t v = start; v < end; ++v) keep[v] = false;
        FuzzCase cand = CopyCase(res.minimal);
        cand.graph = FilterGraphNodes(res.minimal.graph, keep);
        if (cand.graph.node_count() == 0) continue;
        if (try_accept(std::move(cand))) progress = true;
      }
      if (chunk == 1) break;
    }

    // --- graph edges: same chunked removal over edge ids ---
    for (size_t chunk = std::max<size_t>(1, res.minimal.graph.edge_count() / 2);
         chunk >= 1 && budget(); chunk /= 2) {
      const size_t n = res.minimal.graph.edge_count();
      for (size_t start = 0; start < n && budget(); start += chunk) {
        if (start >= res.minimal.graph.edge_count()) break;
        const size_t end =
            std::min(start + chunk, res.minimal.graph.edge_count());
        FuzzCase cand = CopyCase(res.minimal);
        cand.graph = DropGraphEdgeRange(res.minimal.graph, start, end);
        if (try_accept(std::move(cand))) progress = true;
      }
      if (chunk == 1) break;
    }

    // --- config simplifications, one knob at a time ---
    const auto try_config = [&](auto mutate) {
      if (!budget()) return;
      FuzzCase cand = CopyCase(res.minimal);
      mutate(cand);
      if (try_accept(std::move(cand))) progress = true;
    };
    if (res.minimal.config.max_candidates > 0) {
      try_config([](FuzzCase& f) { f.config.max_candidates = 0; });
    }
    if (res.minimal.config.max_retrieval > 0) {
      try_config([](FuzzCase& f) { f.config.max_retrieval = 0; });
    }
    if (res.minimal.with_index) {
      try_config([](FuzzCase& f) {
        f.with_index = false;
        f.config.max_retrieval = 0;
      });
    }
    if (res.minimal.config.d > 1) {
      try_config([](FuzzCase& f) { f.config.d = 1; });
    }
    if (res.minimal.tight_deadline_ms > 0.0) {
      try_config([](FuzzCase& f) { f.tight_deadline_ms = 0.0; });
    }
    // Pin the shard sweep to a single count: a pinned case runs one
    // cluster instead of two, and the replay records which count failed.
    // Only worth trying when the target check is a shard cell's.
    if (res.minimal.shards == 0 &&
        target_check.rfind("shard", 0) == 0) {
      for (const size_t n : {size_t{2}, size_t{4}}) {
        try_config([n](FuzzCase& f) { f.shards = n; });
        if (res.minimal.shards != 0) break;
      }
    }
    // Same narrowing for the degradation-ladder sweep: a pinned level runs
    // one certificate cell instead of three, and the replay records which
    // level failed.
    if (res.minimal.degrade == 0 && target_check.rfind("cert", 0) == 0) {
      for (const int l : {1, 2, 3}) {
        try_config([l](FuzzCase& f) { f.degrade = l; });
        if (res.minimal.degrade != 0) break;
      }
    }
    if (res.minimal.config.enforce_injective) {
      try_config([](FuzzCase& f) { f.config.enforce_injective = false; });
    }
  }
  return res;
}

}  // namespace star::testing
