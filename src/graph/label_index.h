#ifndef STAR_GRAPH_LABEL_INDEX_H_
#define STAR_GRAPH_LABEL_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/string_util.h"
#include "graph/csr_codec.h"
#include "graph/knowledge_graph.h"
#include "text/ensemble.h"

namespace star::graph {

/// Resident-byte report of one LabelIndex (bench_data_layout.cc compares
/// layouts). `capacity_slack` sums unused heap bytes across all owned
/// arrays — the build shrinks everything, so it stays 0.
struct IndexFootprint {
  size_t token_bytes = 0;     ///< token dictionary (pool + offsets + probe)
  size_t postings_bytes = 0;  ///< token postings arena
  size_t type_bytes = 0;      ///< per-type postings arena
  size_t trigram_bytes = 0;   ///< trigram dictionary + token-id postings
  size_t capacity_slack = 0;

  size_t total() const {
    return token_bytes + postings_bytes + type_bytes + trigram_bytes;
  }
};

/// Inverted index from lowercased label tokens (and type ids) to node ids.
///
/// This is the "various indices" optimization of §V-A: instead of scanning
/// all of V to find candidate matches for a query node, we union the
/// postings of the query label's tokens. Matching-score computation stays
/// online (Eq. 1 is never indexed), only candidate *retrieval* is.
///
/// Storage is a sorted flat token dictionary (one interned char pool,
/// hash-probe accelerated lookup) over a contiguous postings arena; the
/// same `GraphLayout` knob as KnowledgeGraph selects raw id arrays (kFlat)
/// or delta-varint slices (kCompressed), decoded through
/// csr::PostingsCursor. Retrieval outputs are identical across layouts.
class LabelIndex {
 public:
  /// Builds the index over every node label of g. O(total label tokens).
  explicit LabelIndex(const KnowledgeGraph& g,
                      GraphLayout layout = GraphLayout::kFlat);

  GraphLayout layout() const { return layout_; }

  /// Nodes whose label shares at least one token with `label` (dedup'd,
  /// ascending ids). Query tokens with no exact posting fall back to
  /// fuzzy retrieval: indexed tokens sharing at least half of the query
  /// token's character trigrams are expanded (so "Bradd" still recalls
  /// "Brad"-labeled nodes; the ensemble then scores the match online).
  /// Empty query labels produce no candidates.
  std::vector<NodeId> CandidatesByLabel(std::string_view label) const;

  /// Indexed tokens sharing >= `min_overlap` of `token`'s trigrams,
  /// sorted lexicographically. The expansion cap keeps the
  /// best-overlapping tokens, ties broken lexicographically (a total
  /// order, so the result is deterministic and layout-independent).
  std::vector<std::string> FuzzyTokens(std::string_view token,
                                       double min_overlap = 0.5) const;

  /// Whether `token` (already lowercased) has an exact posting.
  bool HasToken(std::string_view token) const {
    return token_dict_.Find(token) >= 0;
  }

  /// The single best fuzzy correction of `token`: the indexed token with
  /// the highest trigram overlap >= min_overlap, ties broken by ascending
  /// token id (lexicographic rank — the same total order FuzzyTokens
  /// caps by, so the correction is deterministic and layout-independent).
  /// Empty when nothing reaches the floor. Serve-layer typo-tolerant
  /// query rewriting resolves each unknown query token through this.
  std::string BestFuzzyToken(std::string_view token,
                             double min_overlap = 0.5) const;

  /// Nodes with exactly the given type id.
  std::vector<NodeId> CandidatesByType(int32_t type) const;

  /// Union of token candidates and (if type >= 0) type candidates.
  std::vector<NodeId> Candidates(std::string_view label, int32_t type) const;

  /// Retrieval with a cheap relevance pre-ranking: candidates are scored
  /// by the summed rarity (idf-style log(1 + N/df)) of the query tokens
  /// they share (fuzzy-expanded tokens at half weight; type-only hits at
  /// epsilon weight) and only the best `cap` are returned (all of them if
  /// cap == 0). This keeps the number of candidates the expensive Eq. 1
  /// ensemble must score small — the paper's "various indices" that make
  /// node matching account for <= 1% of query time.
  std::vector<NodeId> RankedCandidates(std::string_view label, int32_t type,
                                       size_t cap) const;

  /// Posting list of one token (empty if unknown). Materialized on demand
  /// (the compressed layout has no raw array to reference).
  std::vector<NodeId> Postings(std::string_view token) const;

  size_t token_count() const { return token_dict_.size(); }

  /// Resident bytes per structure (and unused capacity across them).
  IndexFootprint MemoryFootprint() const;

  // -------------------------------------------------------------------
  // Block-max retrieval surface (bound-driven candidate generation)
  // -------------------------------------------------------------------
  //
  // The token and type postings arenas carry per-block metadata (an O(1)
  // LabelSetStats digest of every member's label, plus the compressed
  // layout's mid-list resume point) at kRetrievalBlockSize granularity.
  // scoring/query_scorer walks the blocks of the lists Candidates() would
  // union, in descending score-cap order, skipping whole blocks whose cap
  // cannot reach the running max_candidates-th score.

  /// Ids per pruning block (the block-max metadata granularity).
  static constexpr size_t kRetrievalBlockSize = 128;

  /// One postings list reference: the token arena (type_store = false) or
  /// the per-type arena (type_store = true), by list index within it.
  struct ListRef {
    bool type_store = false;
    uint32_t list = 0;
  };

  /// The postings lists Candidates(label, type) unions — exact-token
  /// lists, fuzzy trigram expansions for unknown tokens, and the type
  /// list when `type` is indexed — deduplicated, in deterministic order
  /// (token lists by ascending id, then the type list). The union of the
  /// referenced lists' members is exactly Candidates(label, type).
  std::vector<ListRef> RetrievalLists(std::string_view label,
                                      int32_t type) const;

  /// Ids in the referenced list.
  size_t ListCount(ListRef r) const { return Store(r).Count(r.list); }
  /// Blocks in the referenced list (ceil(count / kRetrievalBlockSize)).
  size_t ListBlocks(ListRef r) const { return Store(r).BlockCount(r.list); }
  /// Ids in one block (kRetrievalBlockSize except the last).
  size_t BlockSize(ListRef r, size_t b) const {
    return Store(r).BlockSize(r.list, b);
  }
  /// The block's label digest (for SimilarityEnsemble::RetrievalBlockBound).
  const text::LabelSetStats& BlockStats(ListRef r, size_t b) const {
    return Store(r).BlockAt(r.list, b).stats;
  }
  /// Cursor over one block's ids (both layouts; compressed resumes
  /// mid-list from the recorded byte offset + preceding id).
  csr::PostingsCursor BlockCursor(ListRef r, size_t b) const {
    return Store(r).BlockCursor(r.list, b);
  }

  /// Byte length of node v's label (the fact the per-node bound needs).
  uint32_t NodeLabelLength(NodeId v) const { return node_len_[v]; }
  /// Whether node v's label passes text::LooksNumeric.
  bool NodeLooksNumeric(NodeId v) const { return node_numeric_[v] != 0; }

 private:
  /// Sorted flat term dictionary: unique terms interned into one pool in
  /// lexicographic order (term id == lex rank), with an open-addressing
  /// probe table over the pool for hash-speed exact lookup.
  class FlatDict {
   public:
    /// Takes sorted unique terms.
    void Build(const std::vector<std::string>& sorted_terms);

    /// Term id, or -1 if absent.
    int64_t Find(std::string_view term) const;

    std::string_view Term(size_t id) const {
      return {pool_.data() + offsets_[id], offsets_[id + 1] - offsets_[id]};
    }

    size_t size() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
    size_t ByteSize() const;
    size_t Slack() const;

   private:
    std::string pool_;
    std::vector<uint32_t> offsets_;  // size + 1
    std::vector<uint32_t> probe_;    // power-of-two open addressing
    uint32_t mask_ = 0;
  };

  /// Contiguous arena of id lists (the codec-behind-an-index idiom):
  /// list i is counts_[i]..counts_[i+1] in the flat id array, or the
  /// byte_offsets_[i] slice of the varint arena, depending on layout.
  class PostingsStore {
   public:
    static constexpr size_t kBlockSize = kRetrievalBlockSize;

    /// Per-block retrieval metadata: the label digest the block's score
    /// cap is computed from, and — compressed layout — the byte offset of
    /// the block's first varint plus the id encoded just before it (the
    /// mid-list cursor resume point; the byte stream itself is the
    /// unchanged whole-list delta encoding).
    struct Block {
      text::LabelSetStats stats;
      uint32_t byte_offset = 0;
      uint32_t prev_id = 0;
    };

    explicit PostingsStore(GraphLayout layout = GraphLayout::kFlat)
        : layout_(layout) {}

    /// Appends one strictly ascending id list. When `len` / `numeric`
    /// are given (facts indexed by id), per-kBlockSize block metadata is
    /// recorded for block-max retrieval (the token/type stores); the
    /// trigram store passes null — its ids are token ids, not nodes —
    /// and carries no block metadata.
    void Append(const std::vector<uint32_t>& ids,
                const uint32_t* len = nullptr,
                const uint8_t* numeric = nullptr);

    /// Number of appended lists.
    size_t lists() const { return counts_.size() - 1; }

    size_t Count(size_t i) const { return counts_[i + 1] - counts_[i]; }

    csr::PostingsCursor Cursor(size_t i) const {
      if (layout_ == GraphLayout::kFlat) {
        return {ids_.data() + counts_[i], Count(i)};
      }
      return {bytes_.data() + byte_offsets_[i], Count(i)};
    }

    size_t BlockCount(size_t i) const {
      return (Count(i) + kBlockSize - 1) / kBlockSize;
    }

    size_t BlockSize(size_t i, size_t b) const {
      return std::min(kBlockSize, Count(i) - b * kBlockSize);
    }

    /// Block metadata (only lists appended WITH facts have any).
    const Block& BlockAt(size_t i, size_t b) const {
      return blocks_[block_start_[i] + b];
    }

    csr::PostingsCursor BlockCursor(size_t i, size_t b) const {
      const size_t n = BlockSize(i, b);
      if (layout_ == GraphLayout::kFlat) {
        return {ids_.data() + counts_[i] + b * kBlockSize, n};
      }
      if (b == 0) return {bytes_.data() + byte_offsets_[i], n};
      const Block& blk = BlockAt(i, b);
      return {bytes_.data() + blk.byte_offset, n, blk.prev_id};
    }

    void Finish();  ///< shrink_to_fit all arrays
    size_t ByteSize() const;
    size_t Slack() const;

   private:
    GraphLayout layout_;
    std::vector<uint32_t> counts_{0};  // element-count prefix sums
    std::vector<uint32_t> ids_;        // kFlat
    std::vector<uint8_t> bytes_;       // kCompressed
    // 32-bit offsets: the arena is smaller than the flat id array it
    // replaces, which is itself bounded far below 4 GiB here.
    std::vector<uint32_t> byte_offsets_{0};
    std::vector<Block> blocks_;             // concatenated per-list blocks
    std::vector<uint32_t> block_start_{0};  // per-list prefix into blocks_
  };

  /// Token ids in ranked order (overlap desc, id asc, capped at the
  /// expansion limit) whose trigram overlap with `token` reaches
  /// `min_overlap`.
  std::vector<uint32_t> RankedFuzzyTokenIds(std::string_view token,
                                            double min_overlap) const;

  /// RankedFuzzyTokenIds re-sorted to ascending token id (the retrieval
  /// iteration / FP-summation order).
  std::vector<uint32_t> FuzzyTokenIds(std::string_view token,
                                      double min_overlap) const;

  const PostingsStore& Store(ListRef r) const {
    return r.type_store ? type_postings_ : token_postings_;
  }

  GraphLayout layout_ = GraphLayout::kFlat;
  FlatDict token_dict_;
  PostingsStore token_postings_;
  PostingsStore type_postings_;  // one list per type id
  FlatDict trigram_dict_;
  PostingsStore trigram_postings_;  // token ids per trigram
  size_t node_count_ = 0;
  // Per-node O(1) label facts, the inputs of the per-node retrieval
  // bound: byte length and the numeric-guard flag (text::LooksNumeric).
  std::vector<uint32_t> node_len_;
  std::vector<uint8_t> node_numeric_;
};

}  // namespace star::graph

#endif  // STAR_GRAPH_LABEL_INDEX_H_
