#ifndef STAR_GRAPH_LABEL_INDEX_H_
#define STAR_GRAPH_LABEL_INDEX_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"
#include "graph/knowledge_graph.h"

namespace star::graph {

/// Inverted index from lowercased label tokens (and type ids) to node ids.
///
/// This is the "various indices" optimization of §V-A: instead of scanning
/// all of V to find candidate matches for a query node, we union the
/// postings of the query label's tokens. Matching-score computation stays
/// online (Eq. 1 is never indexed), only candidate *retrieval* is.
class LabelIndex {
 public:
  /// Builds the index over every node label of g. O(total label tokens).
  explicit LabelIndex(const KnowledgeGraph& g);

  /// Nodes whose label shares at least one token with `label` (dedup'd,
  /// ascending ids). Query tokens with no exact posting fall back to
  /// fuzzy retrieval: indexed tokens sharing at least half of the query
  /// token's character trigrams are expanded (so "Bradd" still recalls
  /// "Brad"-labeled nodes; the ensemble then scores the match online).
  /// Empty query labels produce no candidates.
  std::vector<NodeId> CandidatesByLabel(std::string_view label) const;

  /// Indexed tokens sharing >= `min_overlap` of `token`'s trigrams.
  std::vector<std::string> FuzzyTokens(std::string_view token,
                                       double min_overlap = 0.5) const;

  /// Nodes with exactly the given type id.
  std::vector<NodeId> CandidatesByType(int32_t type) const;

  /// Union of token candidates and (if type >= 0) type candidates.
  std::vector<NodeId> Candidates(std::string_view label, int32_t type) const;

  /// Retrieval with a cheap relevance pre-ranking: candidates are scored
  /// by the summed rarity (idf-style log(1 + N/df)) of the query tokens
  /// they share (fuzzy-expanded tokens at half weight; type-only hits at
  /// epsilon weight) and only the best `cap` are returned (all of them if
  /// cap == 0). This keeps the number of candidates the expensive Eq. 1
  /// ensemble must score small — the paper's "various indices" that make
  /// node matching account for <= 1% of query time.
  std::vector<NodeId> RankedCandidates(std::string_view label, int32_t type,
                                       size_t cap) const;

  /// Posting list of one token (empty if unknown).
  const std::vector<NodeId>& Postings(std::string_view token) const;

  size_t token_count() const { return token_postings_.size(); }

 private:
  /// String-keyed maps are transparent so retrieval probes pass
  /// string_views straight through — no temporary std::string per lookup
  /// on the hot candidate-retrieval path.
  template <typename V>
  using StringMap = std::unordered_map<std::string, V, TransparentStringHash,
                                       std::equal_to<>>;

  StringMap<std::vector<NodeId>> token_postings_;
  std::unordered_map<int32_t, std::vector<NodeId>> type_postings_;
  // Fuzzy layer: every indexed token, and trigram -> token ids.
  std::vector<std::string> tokens_;
  StringMap<std::vector<uint32_t>> trigram_postings_;
  size_t node_count_ = 0;
};

}  // namespace star::graph

#endif  // STAR_GRAPH_LABEL_INDEX_H_
