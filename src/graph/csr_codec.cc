#include "graph/csr_codec.h"

#include "graph/knowledge_graph.h"

namespace star::graph::csr {

void EncodeAdjacency(const Neighbor* list, size_t n,
                     std::vector<uint8_t>* arena) {
  uint32_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    const Neighbor& nb = list[i];
    AppendVarint32(nb.node - prev, arena);
    AppendVarint32((nb.relation << 1) | nb.forward, arena);
    prev = nb.node;
  }
}

const uint8_t* DecodeAdjacency(const uint8_t* p, size_t n, Neighbor* out) {
  uint32_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t delta, rel_dir;
    p = DecodeVarint32(p, &delta);
    p = DecodeVarint32(p, &rel_dir);
    prev += delta;
    out[i].node = prev;
    out[i].relation = rel_dir >> 1;
    out[i].forward = rel_dir & 1;
  }
  return p;
}

}  // namespace star::graph::csr
