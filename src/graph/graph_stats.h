#ifndef STAR_GRAPH_GRAPH_STATS_H_
#define STAR_GRAPH_GRAPH_STATS_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/knowledge_graph.h"

namespace star::graph {

/// Summary of the (undirected) degree distribution.
struct DegreeStats {
  size_t min = 0;
  size_t max = 0;
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Gini coefficient of the degree distribution in [0, 1); higher means
  /// heavier hubs (real KGs sit well above Erdős–Rényi graphs).
  double gini = 0.0;
};

/// Dataset-level statistics (the Table 1 columns plus structure checks
/// used to validate the synthetic generators against real-KG shape).
struct GraphStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t types = 0;
  size_t relations = 0;
  DegreeStats degree;
  size_t connected_components = 0;
  size_t largest_component = 0;
  /// Most frequent node types / relation labels with their counts.
  std::vector<std::pair<std::string, size_t>> top_types;
  std::vector<std::pair<std::string, size_t>> top_relations;
  /// Resident bytes per structure under the graph's layout.
  GraphFootprint footprint;
};

/// Computes all statistics in O(|V| + |E|) (plus sorting for percentiles).
GraphStats ComputeGraphStats(const KnowledgeGraph& g, size_t top_n = 5);

/// Log2-bucketed degree histogram: bucket i counts nodes with degree in
/// [2^i, 2^(i+1)). Power-law graphs decay roughly linearly in log-log.
std::vector<size_t> DegreeHistogram(const KnowledgeGraph& g);

}  // namespace star::graph

#endif  // STAR_GRAPH_GRAPH_STATS_H_
