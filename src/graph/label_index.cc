#include "graph/label_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"

namespace star::graph {

namespace {

/// Calls `fn(gram)` for every character trigram of `low` (an
/// already-lowercased token), as string_views into `low` — the same gram
/// multiset text::CharNGrams(low, 3) materializes, without the per-gram
/// string allocations.
template <typename Fn>
void ForEachTrigram(std::string_view low, Fn&& fn) {
  if (low.size() < 3) {
    if (!low.empty()) fn(low);
    return;
  }
  for (size_t i = 0; i + 3 <= low.size(); ++i) fn(low.substr(i, 3));
}

/// Trigram count of `low` under the ForEachTrigram/CharNGrams convention.
size_t TrigramCount(std::string_view low) {
  if (low.size() < 3) return low.empty() ? 0 : 1;
  return low.size() - 2;
}

template <typename T>
size_t VecBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

template <typename T>
size_t VecSlack(const std::vector<T>& v) {
  return (v.capacity() - v.size()) * sizeof(T);
}

constexpr uint32_t kEmptySlot = static_cast<uint32_t>(-1);

}  // namespace

void LabelIndex::FlatDict::Build(const std::vector<std::string>& sorted_terms) {
  size_t pool_size = 0;
  for (const std::string& t : sorted_terms) pool_size += t.size();
  pool_.reserve(pool_size);
  offsets_.reserve(sorted_terms.size() + 1);
  offsets_.push_back(0);
  for (const std::string& t : sorted_terms) {
    pool_.append(t);
    offsets_.push_back(static_cast<uint32_t>(pool_.size()));
  }
  pool_.shrink_to_fit();
  // Open addressing at load factor <= 0.5 (power-of-two capacity).
  size_t cap = 2;
  while (cap < sorted_terms.size() * 2) cap <<= 1;
  probe_.assign(cap, kEmptySlot);
  mask_ = static_cast<uint32_t>(cap - 1);
  for (uint32_t id = 0; id < sorted_terms.size(); ++id) {
    uint32_t h = static_cast<uint32_t>(
                     std::hash<std::string_view>{}(Term(id))) &
                 mask_;
    while (probe_[h] != kEmptySlot) h = (h + 1) & mask_;
    probe_[h] = id;
  }
}

int64_t LabelIndex::FlatDict::Find(std::string_view term) const {
  if (probe_.empty()) return -1;
  uint32_t h =
      static_cast<uint32_t>(std::hash<std::string_view>{}(term)) & mask_;
  while (true) {
    const uint32_t slot = probe_[h];
    if (slot == kEmptySlot) return -1;
    if (Term(slot) == term) return slot;
    h = (h + 1) & mask_;
  }
}

size_t LabelIndex::FlatDict::ByteSize() const {
  return pool_.capacity() + VecBytes(offsets_) + VecBytes(probe_);
}

size_t LabelIndex::FlatDict::Slack() const {
  return (pool_.capacity() - pool_.size()) + VecSlack(offsets_) +
         VecSlack(probe_);
}

void LabelIndex::PostingsStore::Append(const std::vector<uint32_t>& ids,
                                       const uint32_t* len,
                                       const uint8_t* numeric) {
  const size_t n = ids.size();
  counts_.push_back(counts_.back() + static_cast<uint32_t>(n));
  if (layout_ == GraphLayout::kFlat) {
    ids_.insert(ids_.end(), ids.begin(), ids.end());
  }
  // One pass per block: record the resume point (compressed: the byte
  // offset BEFORE the block's first varint, plus the preceding id), fold
  // the members' label facts, and — compressed — encode the ids. The
  // per-block encoding emits exactly the whole-list delta stream
  // EncodePostings writes (first id absolute, then gap - 1), so
  // whole-list Cursor()s are unaffected.
  for (size_t i = 0; i < n; i += kBlockSize) {
    const size_t end = std::min(n, i + kBlockSize);
    Block blk;
    blk.byte_offset = static_cast<uint32_t>(bytes_.size());
    blk.prev_id = i > 0 ? ids[i - 1] : 0;
    if (layout_ == GraphLayout::kCompressed) {
      for (size_t j = i; j < end; ++j) {
        csr::AppendVarint32(j == 0 ? ids[0] : ids[j] - ids[j - 1] - 1,
                            &bytes_);
      }
    }
    if (len != nullptr) {
      for (size_t j = i; j < end; ++j) {
        blk.stats.AddFacts(len[ids[j]], numeric[ids[j]] != 0);
      }
      blocks_.push_back(blk);
    }
  }
  block_start_.push_back(static_cast<uint32_t>(blocks_.size()));
  byte_offsets_.push_back(static_cast<uint32_t>(bytes_.size()));
}

void LabelIndex::PostingsStore::Finish() {
  counts_.shrink_to_fit();
  ids_.shrink_to_fit();
  bytes_.shrink_to_fit();
  if (layout_ == GraphLayout::kFlat) {
    byte_offsets_ = {0};  // unused in this layout; keep it empty-sized
  }
  byte_offsets_.shrink_to_fit();
  blocks_.shrink_to_fit();
  block_start_.shrink_to_fit();
}

size_t LabelIndex::PostingsStore::ByteSize() const {
  return VecBytes(counts_) + VecBytes(ids_) + VecBytes(bytes_) +
         VecBytes(byte_offsets_) + VecBytes(blocks_) + VecBytes(block_start_);
}

size_t LabelIndex::PostingsStore::Slack() const {
  return VecSlack(counts_) + VecSlack(ids_) + VecSlack(bytes_) +
         VecSlack(byte_offsets_) + VecSlack(blocks_) + VecSlack(block_start_);
}

LabelIndex::LabelIndex(const KnowledgeGraph& g, GraphLayout layout)
    : layout_(layout),
      token_postings_(layout),
      type_postings_(layout),
      trigram_postings_(layout),
      node_count_(g.node_count()) {
  // Pass 0: per-node O(1) label facts — the inputs of the retrieval
  // bounds, recorded with the SAME predicate the scoring kernel's caps
  // use (text::LooksNumeric) so a block digest provably dominates its
  // members' kernel scores.
  node_len_.reserve(g.node_count());
  node_numeric_.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::string_view label = g.NodeLabel(v);
    node_len_.push_back(static_cast<uint32_t>(label.size()));
    node_numeric_.push_back(text::LooksNumeric(label) ? 1 : 0);
  }

  // Pass 1: collect per-token and per-type postings (ascending node ids,
  // adjacent-deduplicated) into transient containers.
  std::unordered_map<std::string, std::vector<NodeId>, TransparentStringHash,
                     std::equal_to<>>
      tok_map;
  std::vector<std::vector<NodeId>> type_lists(g.type_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const auto& token : SplitTokens(ToLower(g.NodeLabel(v)))) {
      auto& postings = tok_map[token];
      if (postings.empty() || postings.back() != v) postings.push_back(v);
    }
    const int32_t t = g.NodeType(v);
    if (t >= 0) type_lists[t].push_back(v);
  }

  // Pass 2: freeze into the sorted dictionary + arena. Token id == lex
  // rank, so trigram postings built in id order are already ascending.
  std::vector<std::string> terms;
  terms.reserve(tok_map.size());
  for (const auto& [token, postings] : tok_map) terms.push_back(token);
  std::sort(terms.begin(), terms.end());
  token_dict_.Build(terms);
  for (const std::string& term : terms) {
    token_postings_.Append(tok_map.find(std::string_view(term))->second,
                           node_len_.data(), node_numeric_.data());
  }
  token_postings_.Finish();

  std::unordered_map<std::string, std::vector<uint32_t>, TransparentStringHash,
                     std::equal_to<>>
      tri_map;
  for (uint32_t id = 0; id < terms.size(); ++id) {
    ForEachTrigram(terms[id], [&](std::string_view gram) {
      auto it = tri_map.find(gram);
      if (it == tri_map.end()) {
        it = tri_map.emplace(std::string(gram), std::vector<uint32_t>()).first;
      }
      auto& ids = it->second;
      if (ids.empty() || ids.back() != id) ids.push_back(id);
    });
  }
  std::vector<std::string> grams;
  grams.reserve(tri_map.size());
  for (const auto& [gram, ids] : tri_map) grams.push_back(gram);
  std::sort(grams.begin(), grams.end());
  trigram_dict_.Build(grams);
  for (const std::string& gram : grams) {
    trigram_postings_.Append(tri_map.find(std::string_view(gram))->second);
  }
  trigram_postings_.Finish();

  for (const auto& list : type_lists) {
    type_postings_.Append(list, node_len_.data(), node_numeric_.data());
  }
  type_postings_.Finish();
  node_len_.shrink_to_fit();
  node_numeric_.shrink_to_fit();
}

std::vector<LabelIndex::ListRef> LabelIndex::RetrievalLists(
    std::string_view label, int32_t type) const {
  static thread_local std::string low;
  static thread_local std::vector<std::string> toks;
  ToLowerInto(label, &low);
  SplitTokensInto(low, &toks);
  std::vector<ListRef> out;
  for (const auto& token : toks) {
    const int64_t id = token_dict_.Find(token);
    if (id >= 0) {
      out.push_back({false, static_cast<uint32_t>(id)});
      continue;
    }
    for (const uint32_t similar : FuzzyTokenIds(token, 0.5)) {
      out.push_back({false, similar});
    }
  }
  if (type >= 0 && static_cast<size_t>(type) < type_postings_.lists()) {
    out.push_back({true, static_cast<uint32_t>(type)});
  }
  // Repeated query tokens reference the same list; keep each once. The
  // order (token lists ascending, then the type list) is a total order,
  // so downstream cap-sort tie-breaks are deterministic.
  std::sort(out.begin(), out.end(), [](const ListRef& a, const ListRef& b) {
    return a.type_store != b.type_store ? !a.type_store : a.list < b.list;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const ListRef& a, const ListRef& b) {
                          return a.type_store == b.type_store &&
                                 a.list == b.list;
                        }),
            out.end());
  return out;
}

std::vector<uint32_t> LabelIndex::RankedFuzzyTokenIds(
    std::string_view token, double min_overlap) const {
  // All probe scratch is thread_local (the PR 4 pattern): fuzzy expansion
  // runs on every unknown query token, and per-call map/vector churn was
  // the remaining allocation in this path.
  static thread_local std::string low;
  static thread_local std::unordered_map<uint32_t, size_t> hits;
  static thread_local std::vector<std::pair<size_t, uint32_t>> ranked;
  ToLowerInto(token, &low);
  std::vector<uint32_t> out;
  const size_t gram_count = TrigramCount(low);
  if (gram_count == 0) return out;
  hits.clear();
  ForEachTrigram(low, [&](std::string_view gram) {
    const int64_t gid = trigram_dict_.Find(gram);
    if (gid < 0) return;
    auto cursor = trigram_postings_.Cursor(static_cast<size_t>(gid));
    uint32_t id;
    while (cursor.Next(&id)) ++hits[id];
  });
  const size_t needed = std::max<size_t>(
      1,
      static_cast<size_t>(min_overlap * static_cast<double>(gram_count)));
  // Cap the expansion to the best-overlapping tokens so that one typo'd
  // token cannot flood retrieval with half the vocabulary. Ties break on
  // token id asc (== lexicographic, ids are lex ranks): a total order, so
  // the cap cut is deterministic and layout-independent.
  constexpr size_t kMaxExpansion = 8;
  ranked.clear();
  for (const auto& [id, count] : hits) {
    if (count >= needed) ranked.emplace_back(count, id);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  if (ranked.size() > kMaxExpansion) ranked.resize(kMaxExpansion);
  out.reserve(ranked.size());
  for (const auto& [count, id] : ranked) out.push_back(id);
  return out;
}

std::vector<uint32_t> LabelIndex::FuzzyTokenIds(std::string_view token,
                                                double min_overlap) const {
  std::vector<uint32_t> out = RankedFuzzyTokenIds(token, min_overlap);
  // Ascending ids == lexicographic token order; retrieval iterates (and
  // FP-sums) expansions in this order.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> LabelIndex::FuzzyTokens(std::string_view token,
                                                 double min_overlap) const {
  std::vector<std::string> out;
  for (const uint32_t id : FuzzyTokenIds(token, min_overlap)) {
    out.emplace_back(token_dict_.Term(id));
  }
  return out;
}

std::string LabelIndex::BestFuzzyToken(std::string_view token,
                                       double min_overlap) const {
  const std::vector<uint32_t> ranked = RankedFuzzyTokenIds(token, min_overlap);
  if (ranked.empty()) return std::string();
  return std::string(token_dict_.Term(ranked.front()));
}

std::vector<NodeId> LabelIndex::CandidatesByLabel(
    std::string_view label) const {
  static thread_local std::string low;
  static thread_local std::vector<std::string> toks;
  ToLowerInto(label, &low);
  SplitTokensInto(low, &toks);
  std::vector<NodeId> out;
  const auto append = [&](size_t token_id) {
    auto cursor = token_postings_.Cursor(token_id);
    out.reserve(out.size() + cursor.remaining());
    uint32_t v;
    while (cursor.Next(&v)) out.push_back(v);
  };
  for (const auto& token : toks) {
    const int64_t id = token_dict_.Find(token);
    if (id >= 0) {
      append(static_cast<size_t>(id));
      continue;
    }
    // Unknown token: fuzzy trigram expansion (typos, morphology).
    for (const uint32_t similar : FuzzyTokenIds(token, 0.5)) append(similar);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> LabelIndex::CandidatesByType(int32_t type) const {
  std::vector<NodeId> out;
  if (type < 0 || static_cast<size_t>(type) >= type_postings_.lists()) {
    return out;
  }
  auto cursor = type_postings_.Cursor(static_cast<size_t>(type));
  out.reserve(cursor.remaining());
  uint32_t v;
  while (cursor.Next(&v)) out.push_back(v);
  return out;
}

std::vector<NodeId> LabelIndex::Candidates(std::string_view label,
                                           int32_t type) const {
  std::vector<NodeId> out = CandidatesByLabel(label);
  if (type >= 0) {
    const auto by_type = CandidatesByType(type);
    out.insert(out.end(), by_type.begin(), by_type.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

std::vector<NodeId> LabelIndex::RankedCandidates(std::string_view label,
                                                 int32_t type,
                                                 size_t cap) const {
  static thread_local std::string low;
  static thread_local std::vector<std::string> toks;
  // Accumulator scratch is thread_local like the probe scratch above —
  // the weight map is rebuilt per call but its buckets are reused.
  static thread_local std::unordered_map<NodeId, double> weight;
  ToLowerInto(label, &low);
  SplitTokensInto(low, &toks);
  weight.clear();
  const double n = static_cast<double>(std::max<size_t>(1, node_count_));
  const auto add_store = [&](const PostingsStore& store, size_t i,
                             double scale) {
    auto cursor = store.Cursor(i);
    if (cursor.remaining() == 0) return;
    const double w =
        scale * std::log(1.0 + n / static_cast<double>(cursor.remaining()));
    uint32_t v;
    while (cursor.Next(&v)) weight[v] += w;
  };
  for (const auto& token : toks) {
    const int64_t id = token_dict_.Find(token);
    if (id >= 0) {
      add_store(token_postings_, static_cast<size_t>(id), 1.0);
      continue;
    }
    for (const uint32_t similar : FuzzyTokenIds(token, 0.5)) {
      add_store(token_postings_, similar, 0.5);
    }
  }
  if (type >= 0 && static_cast<size_t>(type) < type_postings_.lists()) {
    add_store(type_postings_, static_cast<size_t>(type), 1e-3);
  }

  std::vector<std::pair<double, NodeId>> ranked;
  ranked.reserve(weight.size());
  for (const auto& [v, w] : weight) ranked.emplace_back(w, v);
  // Deterministic truncation on the total order (rarity-weight desc, node
  // id asc): ties at the cap boundary always retain the smallest ids,
  // independent of the hash map's iteration order above.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first ||
                            (a.first == b.first && a.second < b.second);
                   });
  if (cap > 0 && ranked.size() > cap) ranked.resize(cap);
  std::vector<NodeId> out;
  out.reserve(ranked.size());
  for (const auto& [w, v] : ranked) out.push_back(v);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> LabelIndex::Postings(std::string_view token) const {
  static thread_local std::string low;
  ToLowerInto(token, &low);
  std::vector<NodeId> out;
  const int64_t id = token_dict_.Find(low);
  if (id < 0) return out;
  auto cursor = token_postings_.Cursor(static_cast<size_t>(id));
  out.reserve(cursor.remaining());
  uint32_t v;
  while (cursor.Next(&v)) out.push_back(v);
  return out;
}

IndexFootprint LabelIndex::MemoryFootprint() const {
  IndexFootprint f;
  f.token_bytes = token_dict_.ByteSize();
  f.postings_bytes = token_postings_.ByteSize();
  f.type_bytes = type_postings_.ByteSize();
  f.trigram_bytes = trigram_dict_.ByteSize() + trigram_postings_.ByteSize();
  f.capacity_slack = token_dict_.Slack() + token_postings_.Slack() +
                     type_postings_.Slack() + trigram_dict_.Slack() +
                     trigram_postings_.Slack();
  return f;
}

}  // namespace star::graph
