#include "graph/label_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/string_util.h"
#include "text/similarity.h"

namespace star::graph {

namespace {

/// Calls `fn(gram)` for every character trigram of `low` (an
/// already-lowercased token), as string_views into `low` — the same gram
/// multiset text::CharNGrams(low, 3) materializes, without the per-gram
/// string allocations.
template <typename Fn>
void ForEachTrigram(std::string_view low, Fn&& fn) {
  if (low.size() < 3) {
    if (!low.empty()) fn(low);
    return;
  }
  for (size_t i = 0; i + 3 <= low.size(); ++i) fn(low.substr(i, 3));
}

/// Trigram count of `low` under the ForEachTrigram/CharNGrams convention.
size_t TrigramCount(std::string_view low) {
  if (low.size() < 3) return low.empty() ? 0 : 1;
  return low.size() - 2;
}

}  // namespace

LabelIndex::LabelIndex(const KnowledgeGraph& g) : node_count_(g.node_count()) {
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const auto& token : SplitTokens(ToLower(g.NodeLabel(v)))) {
      auto [it, inserted] = token_postings_.try_emplace(token);
      auto& postings = it->second;
      if (postings.empty() || postings.back() != v) postings.push_back(v);
      if (inserted) {
        const uint32_t token_id = static_cast<uint32_t>(tokens_.size());
        tokens_.push_back(token);
        for (const auto& gram : text::CharNGrams(token, 3)) {
          auto& ids = trigram_postings_[gram];
          if (ids.empty() || ids.back() != token_id) ids.push_back(token_id);
        }
      }
    }
    const int32_t t = g.NodeType(v);
    if (t >= 0) type_postings_[t].push_back(v);
  }
}

std::vector<std::string> LabelIndex::FuzzyTokens(std::string_view token,
                                                 double min_overlap) const {
  static thread_local std::string low;
  ToLowerInto(token, &low);
  std::vector<std::string> out;
  const size_t gram_count = TrigramCount(low);
  if (gram_count == 0) return out;
  std::unordered_map<uint32_t, size_t> hits;
  ForEachTrigram(low, [&](std::string_view gram) {
    const auto it = trigram_postings_.find(gram);
    if (it == trigram_postings_.end()) return;
    for (const uint32_t id : it->second) ++hits[id];
  });
  const size_t needed = std::max<size_t>(
      1,
      static_cast<size_t>(min_overlap * static_cast<double>(gram_count)));
  // Cap the expansion to the best-overlapping tokens so that one typo'd
  // token cannot flood retrieval with half the vocabulary.
  constexpr size_t kMaxExpansion = 8;
  std::vector<std::pair<size_t, uint32_t>> ranked;
  for (const auto& [id, count] : hits) {
    if (count >= needed) ranked.emplace_back(count, id);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (ranked.size() > kMaxExpansion) ranked.resize(kMaxExpansion);
  for (const auto& [count, id] : ranked) out.push_back(tokens_[id]);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> LabelIndex::CandidatesByLabel(std::string_view label) const {
  static thread_local std::string low;
  static thread_local std::vector<std::string> toks;
  ToLowerInto(label, &low);
  SplitTokensInto(low, &toks);
  std::vector<NodeId> out;
  for (const auto& token : toks) {
    const auto it = token_postings_.find(std::string_view(token));
    if (it != token_postings_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
      continue;
    }
    // Unknown token: fuzzy trigram expansion (typos, morphology).
    for (const auto& similar : FuzzyTokens(token)) {
      const auto& postings = token_postings_.find(std::string_view(similar))->second;
      out.insert(out.end(), postings.begin(), postings.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> LabelIndex::CandidatesByType(int32_t type) const {
  const auto it = type_postings_.find(type);
  return it == type_postings_.end() ? std::vector<NodeId>() : it->second;
}

std::vector<NodeId> LabelIndex::Candidates(std::string_view label,
                                           int32_t type) const {
  std::vector<NodeId> out = CandidatesByLabel(label);
  if (type >= 0) {
    const auto by_type = CandidatesByType(type);
    out.insert(out.end(), by_type.begin(), by_type.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

std::vector<NodeId> LabelIndex::RankedCandidates(std::string_view label,
                                                 int32_t type,
                                                 size_t cap) const {
  static thread_local std::string low;
  static thread_local std::vector<std::string> toks;
  ToLowerInto(label, &low);
  SplitTokensInto(low, &toks);
  std::unordered_map<NodeId, double> weight;
  const double n = static_cast<double>(std::max<size_t>(1, node_count_));
  const auto add_postings = [&](const std::vector<NodeId>& postings,
                                double scale) {
    if (postings.empty()) return;
    const double w =
        scale * std::log(1.0 + n / static_cast<double>(postings.size()));
    for (const NodeId v : postings) weight[v] += w;
  };
  for (const auto& token : toks) {
    const auto it = token_postings_.find(std::string_view(token));
    if (it != token_postings_.end()) {
      add_postings(it->second, 1.0);
      continue;
    }
    for (const auto& similar : FuzzyTokens(token)) {
      add_postings(token_postings_.find(std::string_view(similar))->second,
                   0.5);
    }
  }
  if (type >= 0) {
    const auto it = type_postings_.find(type);
    if (it != type_postings_.end()) add_postings(it->second, 1e-3);
  }

  std::vector<std::pair<double, NodeId>> ranked;
  ranked.reserve(weight.size());
  for (const auto& [v, w] : weight) ranked.emplace_back(w, v);
  // Deterministic truncation on the total order (rarity-weight desc, node
  // id asc): ties at the cap boundary always retain the smallest ids,
  // independent of the hash map's iteration order above.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first ||
                            (a.first == b.first && a.second < b.second);
                   });
  if (cap > 0 && ranked.size() > cap) ranked.resize(cap);
  std::vector<NodeId> out;
  out.reserve(ranked.size());
  for (const auto& [w, v] : ranked) out.push_back(v);
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<NodeId>& LabelIndex::Postings(std::string_view token) const {
  static const std::vector<NodeId>* empty = new std::vector<NodeId>();
  static thread_local std::string low;
  ToLowerInto(token, &low);
  const auto it = token_postings_.find(std::string_view(low));
  return it == token_postings_.end() ? *empty : it->second;
}

}  // namespace star::graph
