#ifndef STAR_GRAPH_GRAPH_IO_H_
#define STAR_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/knowledge_graph.h"

namespace star::graph {

// Plain-text serialization of knowledge graphs.
//
// The format is a line-oriented TSV with a header magic line:
//
//   star-kg v1
//   N <node-id> <type-name> <label...>
//   E <src-id> <dst-id> <relation-name>
//
// Node ids must be dense and appear in order (0, 1, 2, ...); the type name
// and relation name use "_" for "none" and have inner spaces encoded as
// "_". Labels may contain spaces (everything after the third column).
// Lines starting with '#' are comments.

/// Writes g to the stream. Returns IoError on stream failure.
Status SaveGraph(const KnowledgeGraph& g, std::ostream& out);

/// Writes g to a file path.
Status SaveGraphToFile(const KnowledgeGraph& g, const std::string& path);

/// Parses a graph from the stream. Returns CorruptData with a line number
/// on malformed input. The loader slurps the stream once, counts records,
/// and pre-sizes the builder (Builder::Reserve), so arrays never reallocate
/// during the build regardless of file size.
Result<KnowledgeGraph> LoadGraph(std::istream& in,
                                 GraphLayout layout = GraphLayout::kFlat);

/// Reads a graph from a file path.
Result<KnowledgeGraph> LoadGraphFromFile(
    const std::string& path, GraphLayout layout = GraphLayout::kFlat);

}  // namespace star::graph

#endif  // STAR_GRAPH_GRAPH_IO_H_
