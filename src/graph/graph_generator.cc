#include "graph/graph_generator.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iterator>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "text/type_ontology.h"

namespace star::graph {

namespace {

// Pronounceable synthetic token ("Belora", "Dakin", ...). Limited syllable
// inventory keeps tokens colliding across pools, which produces the
// ambiguous partial matches knowledge-graph search has to cope with.
std::string MakeToken(Rng& rng) {
  static constexpr const char* kOnsets[] = {"b",  "d",  "f",  "g",  "k",
                                            "l",  "m",  "n",  "r",  "s",
                                            "t",  "v",  "br", "dr", "st"};
  static constexpr const char* kVowels[] = {"a", "e", "i", "o", "u", "ia", "ea"};
  static constexpr const char* kCodas[] = {"", "n", "r", "s", "l", "k", "th"};
  const int syllables = 2 + static_cast<int>(rng.Below(2));
  std::string t;
  for (int s = 0; s < syllables; ++s) {
    t += kOnsets[rng.Below(std::size(kOnsets))];
    t += kVowels[rng.Below(std::size(kVowels))];
  }
  t += kCodas[rng.Below(std::size(kCodas))];
  t[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(t[0])));
  return t;
}

std::vector<std::string> MakePool(size_t n, Rng& rng) {
  std::vector<std::string> pool;
  pool.reserve(n);
  for (size_t i = 0; i < n; ++i) pool.push_back(MakeToken(rng));
  return pool;
}

// Type names: reuse the built-in ontology's human names first (so the
// ontology similarity feature is exercised), then synthetic names.
std::vector<std::string> MakeTypeNames(size_t n) {
  std::vector<std::string> names;
  const text::TypeOntology onto = text::TypeOntology::BuiltIn();
  for (int t = 1; t < onto.type_count() && names.size() < n; ++t) {
    names.push_back(onto.TypeName(t));
  }
  for (size_t i = names.size(); i < n; ++i) {
    names.push_back("Type" + std::to_string(i));
  }
  return names;
}

std::vector<std::string> MakeRelationNames(size_t n, Rng& rng) {
  static constexpr const char* kCommon[] = {
      "actedIn",   "directed",  "produced", "wrote",      "bornIn",
      "livesIn",   "locatedIn", "partOf",   "marriedTo",  "won",
      "nominatedFor", "memberOf", "foundedBy", "starring", "influencedBy",
      "worksFor",  "citizenOf", "created",  "composed",   "plays"};
  std::vector<std::string> names;
  for (size_t i = 0; i < n && i < std::size(kCommon); ++i) {
    names.push_back(kCommon[i]);
  }
  for (size_t i = names.size(); i < n; ++i) {
    names.push_back("rel" + MakeToken(rng) + std::to_string(i));
  }
  return names;
}

}  // namespace

GeneratorConfig DBpediaLike(size_t nodes, uint64_t seed) {
  GeneratorConfig c;
  c.name = "dbpedia-like";
  c.num_nodes = nodes;
  c.num_edges = nodes * 8;  // dense, mirroring DBpedia's 32x at scale
  c.num_types = std::min<size_t>(359, std::max<size_t>(16, nodes / 200));
  c.num_relations = std::min<size_t>(800, std::max<size_t>(32, nodes / 100));
  c.degree_skew = 0.65;
  c.seed = seed;
  return c;
}

GeneratorConfig Yago2Like(size_t nodes, uint64_t seed) {
  GeneratorConfig c;
  c.name = "yago2-like";
  c.num_nodes = nodes;
  c.num_edges = nodes * 2;  // sparse (YAGO2 is ~3.8x directed)
  c.num_types = std::min<size_t>(6543, std::max<size_t>(32, nodes / 40));
  c.num_relations = std::min<size_t>(349, std::max<size_t>(16, nodes / 200));
  c.degree_skew = 0.55;
  c.seed = seed;
  return c;
}

GeneratorConfig FreebaseLike(size_t nodes, uint64_t seed) {
  GeneratorConfig c;
  c.name = "freebase-like";
  c.num_nodes = nodes;
  c.num_edges = static_cast<size_t>(nodes * 4.5);
  c.num_types = std::min<size_t>(10110, std::max<size_t>(32, nodes / 50));
  c.num_relations = std::min<size_t>(9101, std::max<size_t>(32, nodes / 50));
  c.degree_skew = 0.6;
  c.seed = seed;
  return c;
}

KnowledgeGraph GenerateGraph(const GeneratorConfig& config) {
  Rng rng(config.seed);
  const size_t n = config.num_nodes;
  const size_t pool_size =
      config.token_pool > 0
          ? config.token_pool
          : std::max<size_t>(24, 3 * static_cast<size_t>(std::sqrt(
                                      static_cast<double>(n))));

  const std::vector<std::string> first_pool = MakePool(pool_size, rng);
  const std::vector<std::string> second_pool = MakePool(pool_size, rng);
  const std::vector<std::string> type_names = MakeTypeNames(config.num_types);
  const std::vector<std::string> relation_names =
      MakeRelationNames(config.num_relations, rng);

  const ZipfSampler type_zipf(config.num_types, config.type_skew);
  const ZipfSampler relation_zipf(config.num_relations, config.relation_skew);
  const ZipfSampler token_zipf(pool_size, 0.8);
  const ZipfSampler popularity_zipf(n, config.degree_skew);

  KnowledgeGraph::Builder builder;
  for (size_t v = 0; v < n; ++v) {
    const size_t type = type_zipf.Sample(rng);
    std::string label = first_pool[token_zipf.Sample(rng)];
    label += " " + second_pool[token_zipf.Sample(rng)];
    if (rng.Chance(0.15)) {  // occasional three-token labels
      label += " " + first_pool[token_zipf.Sample(rng)];
    }
    builder.AddNode(std::move(label), type_names[type]);
  }

  // Node popularity: a fixed random permutation; Zipf over ranks yields a
  // heavy-tailed degree distribution on top of the backbone.
  std::vector<NodeId> by_rank(n);
  std::iota(by_rank.begin(), by_rank.end(), NodeId{0});
  rng.Shuffle(by_rank);

  size_t edges_left = config.num_edges;
  // Spanning backbone: node v attaches to a popular earlier node.
  for (size_t v = 1; v < n && edges_left > 0; ++v, --edges_left) {
    NodeId target = by_rank[popularity_zipf.Sample(rng) % v];
    builder.AddEdge(static_cast<NodeId>(v), target,
                    relation_names[relation_zipf.Sample(rng)]);
  }
  // Remaining edges: uniform source, Zipf-popular destination.
  while (edges_left > 0) {
    const NodeId src = static_cast<NodeId>(rng.Below(n));
    const NodeId dst = by_rank[popularity_zipf.Sample(rng)];
    if (src == dst) continue;
    builder.AddEdge(src, dst, relation_names[relation_zipf.Sample(rng)]);
    --edges_left;
  }
  return std::move(builder).Build();
}

}  // namespace star::graph
