#ifndef STAR_GRAPH_GRAPH_GENERATOR_H_
#define STAR_GRAPH_GRAPH_GENERATOR_H_

#include <cstdint>
#include <string>

#include "graph/knowledge_graph.h"

namespace star::graph {

/// Parameters of the synthetic knowledge-graph generator.
///
/// The generator stands in for the paper's DBpedia / YAGO2 / Freebase
/// datasets (see DESIGN.md). It reproduces the structural properties the
/// STAR evaluation depends on:
///  * power-law degree distribution (preferential attachment backbone +
///    Zipf-popular edge endpoints),
///  * heterogeneous node types and relation labels with skewed frequency,
///  * multi-token entity labels drawn from limited token pools, so that a
///    query label has many partial matches with a long-tailed score
///    distribution (Fig. 11).
struct GeneratorConfig {
  std::string name = "synthetic";
  size_t num_nodes = 10000;
  size_t num_edges = 40000;
  size_t num_types = 64;
  size_t num_relations = 128;
  /// Zipf exponent of endpoint popularity; higher -> heavier hubs.
  double degree_skew = 0.9;
  /// Zipf exponent of the type frequency distribution.
  double type_skew = 1.1;
  /// Zipf exponent of the relation frequency distribution.
  double relation_skew = 1.0;
  /// Size of each token pool (first/last name style); 0 = auto (~3*sqrt(n)).
  size_t token_pool = 0;
  uint64_t seed = 42;
};

/// Preset mirroring DBpedia's shape: dense (avg degree ~16 undirected),
/// few hundred types, many relations.
GeneratorConfig DBpediaLike(size_t nodes, uint64_t seed = 42);

/// Preset mirroring YAGO2's shape: sparse (avg degree ~6), many types.
GeneratorConfig Yago2Like(size_t nodes, uint64_t seed = 42);

/// Preset mirroring Freebase's shape: avg degree ~9, very many types and
/// relations.
GeneratorConfig FreebaseLike(size_t nodes, uint64_t seed = 42);

/// Generates a graph. Deterministic: same config (incl. seed) -> identical
/// graph. The result is connected (spanning backbone) when num_edges >=
/// num_nodes - 1.
KnowledgeGraph GenerateGraph(const GeneratorConfig& config);

}  // namespace star::graph

#endif  // STAR_GRAPH_GRAPH_GENERATOR_H_
