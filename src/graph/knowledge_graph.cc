#include "graph/knowledge_graph.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "graph/csr_codec.h"

namespace star::graph {

namespace {

// Thread-local free list of decode scratch buffers for compressed-layout
// NeighborView. Callers routinely hold one view while issuing nested
// Neighbors() calls of unbounded depth (walk balls, pair-edge scoring), so
// a single reusable scratch is not enough; a pool of independently owned
// buffers is, and after warmup every acquire is a pop (allocation-free).
class DecodePool {
 public:
  ~DecodePool() {
    for (std::vector<Neighbor>* buf : free_) delete buf;
  }

  std::vector<Neighbor>* Acquire(size_t n) {
    std::vector<Neighbor>* buf;
    if (free_.empty()) {
      buf = new std::vector<Neighbor>();
    } else {
      buf = free_.back();
      free_.pop_back();
    }
    if (buf->size() < n) buf->resize(n);
    return buf;
  }

  void Release(std::vector<Neighbor>* buf) {
    if (free_.size() >= kMaxPooled) {
      delete buf;
      return;
    }
    free_.push_back(buf);
  }

 private:
  // Bounds per-thread retained scratch; deeper nesting falls back to the
  // allocator. 64 far exceeds any real expansion depth.
  static constexpr size_t kMaxPooled = 64;
  std::vector<std::vector<Neighbor>*> free_;
};

DecodePool& Pool() {
  thread_local DecodePool pool;
  return pool;
}

template <typename T>
size_t VecBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

template <typename T>
size_t VecSlack(const std::vector<T>& v) {
  return (v.capacity() - v.size()) * sizeof(T);
}

// Rough resident estimate for a closed-addressing hash map: bucket heads
// plus one node (hash, next, pair) per element, plus key heap bytes.
template <typename V>
size_t MapBytes(const NameMap<V>& m) {
  size_t bytes = m.bucket_count() * sizeof(void*);
  for (const auto& [key, value] : m) {
    bytes += 4 * sizeof(void*) + sizeof(std::pair<const std::string, V>);
    if (key.capacity() > sizeof(std::string)) bytes += key.capacity() + 1;
  }
  return bytes;
}

}  // namespace

NeighborView::~NeighborView() {
  if (owned_ != nullptr) Pool().Release(owned_);
}

NeighborView& NeighborView::operator=(NeighborView&& o) noexcept {
  if (this != &o) {
    if (owned_ != nullptr) Pool().Release(owned_);
    data_ = o.data_;
    size_ = o.size_;
    owned_ = o.owned_;
    o.owned_ = nullptr;
  }
  return *this;
}

void KnowledgeGraph::Builder::Reserve(size_t nodes, size_t edges) {
  labels_.reserve(nodes);
  types_.reserve(nodes);
  srcs_.reserve(edges);
  dsts_.reserve(edges);
  relations_.reserve(edges);
}

NodeId KnowledgeGraph::Builder::AddNode(std::string label,
                                        std::string type_name) {
  const NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(std::move(label));
  if (type_name.empty()) {
    types_.push_back(-1);
  } else {
    auto [it, inserted] = type_index_.try_emplace(
        type_name, static_cast<int32_t>(type_names_.size()));
    if (inserted) type_names_.push_back(std::move(type_name));
    types_.push_back(it->second);
  }
  return id;
}

EdgeId KnowledgeGraph::Builder::AddEdge(NodeId src, NodeId dst,
                                        std::string relation) {
  assert(src < labels_.size() && dst < labels_.size());
  const EdgeId id = static_cast<EdgeId>(srcs_.size());
  srcs_.push_back(src);
  dsts_.push_back(dst);
  relations_.push_back(InternRelation(std::move(relation)));
  return id;
}

uint32_t KnowledgeGraph::Builder::InternRelation(std::string relation) {
  auto [it, inserted] = relation_index_.try_emplace(
      relation, static_cast<uint32_t>(relation_names_.size()));
  if (inserted) relation_names_.push_back(std::move(relation));
  return it->second;
}

KnowledgeGraph KnowledgeGraph::Builder::Build(GraphLayout layout) && {
  KnowledgeGraph g;
  g.layout_ = layout;
  g.types_ = std::move(types_);
  g.relation_names_ = std::move(relation_names_);
  g.type_index_ = std::move(type_index_);
  g.relation_index_ = std::move(relation_index_);
  g.edge_src_ = std::move(srcs_);
  g.edge_dst_ = std::move(dsts_);
  g.edge_rel_ = std::move(relations_);

  const size_t n = labels_.size();
  const size_t m = g.edge_src_.size();

  // Intern labels (deduplicated) and type names into one pool. The pool is
  // reserved to the worst case up front so string_view keys into it stay
  // stable during interning, then shrunk once at the end.
  {
    size_t upper = 0;
    for (const std::string& s : labels_) upper += s.size();
    for (const std::string& s : type_names_) upper += s.size();
    g.pool_.reserve(upper);

    std::unordered_map<std::string_view, StrRef, TransparentStringHash,
                       std::equal_to<>>
        intern;
    intern.reserve(n);
    g.label_refs_.resize(n);
    for (size_t v = 0; v < n; ++v) {
      const std::string& label = labels_[v];
      auto it = intern.find(std::string_view(label));
      if (it == intern.end()) {
        const StrRef ref{static_cast<uint32_t>(g.pool_.size()),
                         static_cast<uint32_t>(label.size())};
        g.pool_.append(label);
        it = intern.emplace(g.View(ref), ref).first;
      }
      g.label_refs_[v] = it->second;
    }
    g.type_refs_.resize(type_names_.size());
    for (size_t t = 0; t < type_names_.size(); ++t) {
      g.type_refs_[t] = {static_cast<uint32_t>(g.pool_.size()),
                         static_cast<uint32_t>(type_names_[t].size())};
      g.pool_.append(type_names_[t]);
    }
  }
  // Builder strings are no longer needed; free them before the CSR arrays
  // are built so peak memory is the larger of the two, not the sum.
  labels_ = {};
  type_names_ = {};

  // Counting sort into CSR over the undirected view: every directed edge
  // contributes one entry at each endpoint.
  assert(2 * m <= std::numeric_limits<uint32_t>::max());
  g.offsets_.assign(n + 1, 0);
  for (size_t e = 0; e < m; ++e) {
    ++g.offsets_[g.edge_src_[e] + 1];
    ++g.offsets_[g.edge_dst_[e] + 1];
  }
  for (size_t v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adjacency_.resize(2 * m);
  {
    std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (size_t e = 0; e < m; ++e) {
      const NodeId s = g.edge_src_[e];
      const NodeId d = g.edge_dst_[e];
      const uint32_t r = g.edge_rel_[e];
      g.adjacency_[cursor[s]++] = Neighbor{d, r, true};
      g.adjacency_[cursor[d]++] = Neighbor{s, r, false};
    }
  }
  // Canonical adjacency order — applied in BOTH layouts so they are
  // indistinguishable to every engine, and a prerequisite for the delta
  // codec (node ids must be non-decreasing within a list).
  g.max_degree_ = 0;
  for (size_t v = 0; v < n; ++v) {
    Neighbor* first = g.adjacency_.data() + g.offsets_[v];
    Neighbor* last = g.adjacency_.data() + g.offsets_[v + 1];
    std::sort(first, last, [](const Neighbor& a, const Neighbor& b) {
      if (a.node != b.node) return a.node < b.node;
      if (a.relation != b.relation) return a.relation < b.relation;
      return a.forward < b.forward;
    });
    g.max_degree_ = std::max(
        g.max_degree_, static_cast<size_t>(g.offsets_[v + 1] - g.offsets_[v]));
  }

  if (layout == GraphLayout::kCompressed) {
    g.byte_offsets_.resize(n + 1);
    g.adjacency_bytes_.reserve(g.adjacency_.size() * 2);  // typical density
    for (size_t v = 0; v < n; ++v) {
      g.byte_offsets_[v] = static_cast<uint32_t>(g.adjacency_bytes_.size());
      csr::EncodeAdjacency(g.adjacency_.data() + g.offsets_[v],
                           g.offsets_[v + 1] - g.offsets_[v],
                           &g.adjacency_bytes_);
    }
    assert(g.adjacency_bytes_.size() <= std::numeric_limits<uint32_t>::max());
    g.byte_offsets_[n] = static_cast<uint32_t>(g.adjacency_bytes_.size());
    g.adjacency_ = {};
    g.adjacency_bytes_.shrink_to_fit();
  }

  g.pool_.shrink_to_fit();
  g.label_refs_.shrink_to_fit();
  g.type_refs_.shrink_to_fit();
  g.types_.shrink_to_fit();
  g.relation_names_.shrink_to_fit();
  g.edge_src_.shrink_to_fit();
  g.edge_dst_.shrink_to_fit();
  g.edge_rel_.shrink_to_fit();
  g.offsets_.shrink_to_fit();
  g.adjacency_.shrink_to_fit();
  g.byte_offsets_.shrink_to_fit();
  return g;
}

NeighborView KnowledgeGraph::DecodeNeighbors(NodeId v) const {
  const size_t count = offsets_[v + 1] - offsets_[v];
  if (count == 0) return {static_cast<const Neighbor*>(nullptr), 0};
  std::vector<Neighbor>* buf = Pool().Acquire(count);
  csr::DecodeAdjacency(adjacency_bytes_.data() + byte_offsets_[v], count,
                       buf->data());
  return {buf, count};
}

std::string_view KnowledgeGraph::TypeName(int32_t type) const {
  if (type < 0 || static_cast<size_t>(type) >= type_refs_.size()) return {};
  return View(type_refs_[type]);
}

int32_t KnowledgeGraph::FindTypeId(std::string_view name) const {
  const auto it = type_index_.find(name);
  return it == type_index_.end() ? -1 : it->second;
}

int64_t KnowledgeGraph::FindRelationId(std::string_view name) const {
  const auto it = relation_index_.find(name);
  return it == relation_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

bool KnowledgeGraph::HasEdge(NodeId u, NodeId v) const {
  // Scan the smaller adjacency list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const NeighborView nbrs = Neighbors(u);
  for (const Neighbor& nb : nbrs) {
    if (nb.node == v) return true;
  }
  return false;
}

GraphFootprint KnowledgeGraph::Footprint() const {
  GraphFootprint f;
  f.csr_bytes = VecBytes(offsets_) + VecBytes(adjacency_) +
                VecBytes(adjacency_bytes_) + VecBytes(byte_offsets_);
  f.label_bytes = pool_.capacity() + VecBytes(label_refs_) +
                  VecBytes(type_refs_) + VecBytes(types_);
  f.edge_bytes = VecBytes(edge_src_) + VecBytes(edge_dst_) +
                 VecBytes(edge_rel_);
  f.dict_bytes = VecBytes(relation_names_) + MapBytes(type_index_) +
                 MapBytes(relation_index_);
  for (const std::string& s : relation_names_) {
    if (s.capacity() > sizeof(std::string)) f.dict_bytes += s.capacity() + 1;
  }
  f.capacity_slack = VecSlack(offsets_) + VecSlack(adjacency_) +
                     VecSlack(adjacency_bytes_) + VecSlack(byte_offsets_) +
                     (pool_.capacity() - pool_.size()) +
                     VecSlack(label_refs_) + VecSlack(type_refs_) +
                     VecSlack(types_) + VecSlack(edge_src_) +
                     VecSlack(edge_dst_) + VecSlack(edge_rel_);
  return f;
}

KnowledgeGraph CloneWithLayout(const KnowledgeGraph& g, GraphLayout layout) {
  KnowledgeGraph::Builder b;
  b.Reserve(g.node_count(), g.edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    b.AddNode(std::string(g.NodeLabel(v)),
              std::string(g.TypeName(g.NodeType(v))));
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    b.AddEdge(g.EdgeSrc(e), g.EdgeDst(e), g.RelationName(g.EdgeRelation(e)));
  }
  return std::move(b).Build(layout);
}

}  // namespace star::graph
