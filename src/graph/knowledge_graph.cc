#include "graph/knowledge_graph.h"

#include <algorithm>
#include <cassert>

namespace star::graph {

NodeId KnowledgeGraph::Builder::AddNode(std::string label,
                                        std::string type_name) {
  const NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(std::move(label));
  if (type_name.empty()) {
    types_.push_back(-1);
  } else {
    auto [it, inserted] = type_index_.try_emplace(
        type_name, static_cast<int32_t>(type_names_.size()));
    if (inserted) type_names_.push_back(std::move(type_name));
    types_.push_back(it->second);
  }
  return id;
}

EdgeId KnowledgeGraph::Builder::AddEdge(NodeId src, NodeId dst,
                                        std::string relation) {
  assert(src < labels_.size() && dst < labels_.size());
  const EdgeId id = static_cast<EdgeId>(srcs_.size());
  srcs_.push_back(src);
  dsts_.push_back(dst);
  auto [it, inserted] = relation_index_.try_emplace(
      relation, static_cast<uint32_t>(relation_names_.size()));
  if (inserted) relation_names_.push_back(std::move(relation));
  relations_.push_back(it->second);
  return id;
}

KnowledgeGraph KnowledgeGraph::Builder::Build() && {
  KnowledgeGraph g;
  g.labels_ = std::move(labels_);
  g.types_ = std::move(types_);
  g.type_names_ = std::move(type_names_);
  g.relation_names_ = std::move(relation_names_);
  g.type_index_ = std::move(type_index_);
  g.relation_index_ = std::move(relation_index_);
  g.edge_src_ = std::move(srcs_);
  g.edge_dst_ = std::move(dsts_);
  g.edge_rel_ = std::move(relations_);

  const size_t n = g.labels_.size();
  const size_t m = g.edge_src_.size();
  // Counting sort into CSR over the undirected view: every directed edge
  // contributes one entry at each endpoint.
  g.offsets_.assign(n + 1, 0);
  for (size_t e = 0; e < m; ++e) {
    ++g.offsets_[g.edge_src_[e] + 1];
    ++g.offsets_[g.edge_dst_[e] + 1];
  }
  for (size_t v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adjacency_.resize(2 * m);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (size_t e = 0; e < m; ++e) {
    const NodeId s = g.edge_src_[e];
    const NodeId d = g.edge_dst_[e];
    const uint32_t r = g.edge_rel_[e];
    g.adjacency_[cursor[s]++] = Neighbor{d, r, true};
    g.adjacency_[cursor[d]++] = Neighbor{s, r, false};
  }
  g.max_degree_ = 0;
  for (size_t v = 0; v < n; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.offsets_[v + 1] - g.offsets_[v]);
  }
  return g;
}

const std::string& KnowledgeGraph::TypeName(int32_t type) const {
  static const std::string* empty = new std::string();
  if (type < 0 || static_cast<size_t>(type) >= type_names_.size()) {
    return *empty;
  }
  return type_names_[type];
}

int32_t KnowledgeGraph::FindTypeId(std::string_view name) const {
  const auto it = type_index_.find(std::string(name));
  return it == type_index_.end() ? -1 : it->second;
}

int64_t KnowledgeGraph::FindRelationId(std::string_view name) const {
  const auto it = relation_index_.find(std::string(name));
  return it == relation_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

bool KnowledgeGraph::HasEdge(NodeId u, NodeId v) const {
  // Scan the smaller adjacency list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  for (const Neighbor& nb : Neighbors(u)) {
    if (nb.node == v) return true;
  }
  return false;
}

}  // namespace star::graph
