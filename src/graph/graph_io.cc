#include "graph/graph_io.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/string_util.h"

namespace star::graph {

namespace {

// Type/relation names may not contain whitespace in the file format;
// encode spaces as underscores and empty names as a single underscore.
std::string EncodeName(std::string_view name) {
  if (name.empty()) return "_";
  std::string out(name);
  for (char& c : out) {
    if (c == ' ' || c == '\t') c = '_';
  }
  return out;
}

std::string DecodeName(const std::string& encoded) {
  if (encoded == "_") return "";
  std::string out = encoded;
  for (char& c : out) {
    if (c == '_') c = ' ';
  }
  return out;
}

}  // namespace

Status SaveGraph(const KnowledgeGraph& g, std::ostream& out) {
  out << "star-kg v1\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "N\t" << v << '\t' << EncodeName(g.TypeName(g.NodeType(v))) << '\t'
        << g.NodeLabel(v) << '\n';
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    out << "E\t" << g.EdgeSrc(e) << '\t' << g.EdgeDst(e) << '\t'
        << EncodeName(g.RelationName(g.EdgeRelation(e))) << '\n';
  }
  if (!out) return Status::IoError("stream write failed");
  return Status::Ok();
}

Status SaveGraphToFile(const KnowledgeGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return SaveGraph(g, out);
}

Result<KnowledgeGraph> LoadGraph(std::istream& in, GraphLayout layout) {
  // Slurp once; the buffer is the only size-dependent allocation the parse
  // itself makes (lines are viewed, records counted, builder pre-sized).
  const std::string buf{std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>()};
  std::vector<std::string_view> lines;
  lines.reserve(std::count(buf.begin(), buf.end(), '\n') + 1);
  for (size_t pos = 0; pos < buf.size();) {
    size_t eol = buf.find('\n', pos);
    if (eol == std::string::npos) eol = buf.size();
    lines.emplace_back(buf.data() + pos, eol - pos);
    pos = eol + 1;
  }
  if (lines.empty() || Trim(lines[0]) != "star-kg v1") {
    return Status::CorruptData("missing 'star-kg v1' header");
  }
  size_t node_lines = 0, edge_lines = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string_view t = Trim(lines[i]);
    if (t.size() >= 2 && t[1] == '\t') {
      node_lines += t[0] == 'N';
      edge_lines += t[0] == 'E';
    }
  }
  KnowledgeGraph::Builder builder;
  builder.Reserve(node_lines, edge_lines);
  size_t line_no = 1;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto fields = SplitFields(line, '\t');
    const auto fail = [&](const std::string& why) {
      return Status::CorruptData("line " + std::to_string(line_no) + ": " + why);
    };
    if (fields[0] == "N") {
      if (fields.size() < 4) return fail("node line needs 4 fields");
      if (!IsNumeric(fields[1])) return fail("bad node id");
      const uint64_t id = std::stoull(fields[1]);
      if (id != builder.node_count()) return fail("non-dense node id");
      // Re-join label fields in case the label itself contained tabs.
      std::string label = fields[3];
      for (size_t i = 4; i < fields.size(); ++i) label += " " + fields[i];
      builder.AddNode(std::move(label), DecodeName(fields[2]));
    } else if (fields[0] == "E") {
      if (fields.size() < 4) return fail("edge line needs 4 fields");
      if (!IsNumeric(fields[1]) || !IsNumeric(fields[2])) {
        return fail("bad edge endpoint");
      }
      const uint64_t s = std::stoull(fields[1]);
      const uint64_t d = std::stoull(fields[2]);
      if (s >= builder.node_count() || d >= builder.node_count()) {
        return fail("edge endpoint out of range");
      }
      builder.AddEdge(static_cast<NodeId>(s), static_cast<NodeId>(d),
                      DecodeName(fields[3]));
    } else {
      return fail("unknown record type '" + fields[0] + "'");
    }
  }
  return std::move(builder).Build(layout);
}

Result<KnowledgeGraph> LoadGraphFromFile(const std::string& path,
                                         GraphLayout layout) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return LoadGraph(in, layout);
}

}  // namespace star::graph
