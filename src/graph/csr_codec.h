#ifndef STAR_GRAPH_CSR_CODEC_H_
#define STAR_GRAPH_CSR_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace star::graph {
struct Neighbor;
}  // namespace star::graph

namespace star::graph::csr {

// Delta-varint codec for the compressed data-plane layout (format v1).
//
// Two record kinds share the same LEB128 varint primitive:
//
//  * Adjacency lists (KnowledgeGraph kCompressed): the canonical-order
//    neighbor list of one node, encoded as pairs
//        varint(node_delta) varint(relation << 1 | forward)
//    where node_delta is the difference to the previous entry's node id
//    (the first entry's delta is its absolute id). Canonical order sorts
//    by (node, relation, forward), so deltas are non-negative (parallel
//    edges repeat a node id with delta 0).
//
//  * Postings lists (LabelIndex kCompressed): a strictly ascending id
//    sequence encoded as varint(first), then varint(gap - 1) per
//    successor (ids never repeat, so gaps are >= 1 and the -1 buys one
//    byte at gap 128).
//
// Both live in one contiguous byte arena per structure, addressed by
// per-entry byte offsets (the codec-behind-an-index idiom): decoding is
// a forward scan of one entry's slice, never a search. The format is an
// in-memory layout, not a wire format — it may change freely between
// versions as long as Build() and the decoders agree.

/// Appends v as LEB128 (7 bits per byte, high bit = continuation).
inline void AppendVarint32(uint32_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Decodes one varint starting at p; returns the position past it.
/// Trusted input: the caller guarantees p points into an arena written by
/// AppendVarint32 (no bounds or overlong checks on the hot decode path).
inline const uint8_t* DecodeVarint32(const uint8_t* p, uint32_t* v) {
  uint32_t x = *p++;
  if (x < 0x80) {
    *v = x;
    return p;
  }
  x &= 0x7F;
  for (int shift = 7;; shift += 7) {
    const uint32_t b = *p++;
    if (b < 0x80) {
      x |= b << shift;
      break;
    }
    x |= (b & 0x7F) << shift;
  }
  *v = x;
  return p;
}

/// Appends a strictly ascending id list (postings) to the arena.
inline void EncodePostings(const uint32_t* ids, size_t n,
                           std::vector<uint8_t>* arena) {
  if (n == 0) return;
  AppendVarint32(ids[0], arena);
  for (size_t i = 1; i < n; ++i) AppendVarint32(ids[i] - ids[i - 1] - 1, arena);
}

/// Appends one canonical-order neighbor list to the adjacency arena.
void EncodeAdjacency(const Neighbor* list, size_t n,
                     std::vector<uint8_t>* arena);

/// Decodes `n` entries starting at p into out; returns the position past
/// the last entry. `out` must hold n entries.
const uint8_t* DecodeAdjacency(const uint8_t* p, size_t n, Neighbor* out);

/// Streaming decoder over one postings list, in either layout: a raw
/// ascending id span (flat) or a delta-varint slice (compressed). Used by
/// LabelIndex retrieval so Candidates / RankedCandidates never materialize
/// an intermediate vector per token.
class PostingsCursor {
 public:
  /// Flat layout: iterate a raw id span.
  PostingsCursor(const uint32_t* ids, size_t count)
      : flat_(ids), bytes_(nullptr), remaining_(count) {}

  /// Compressed layout: decode a delta-varint slice holding `count` ids.
  PostingsCursor(const uint8_t* bytes, size_t count)
      : flat_(nullptr), bytes_(bytes), remaining_(count) {}

  /// Compressed layout, resuming MID-LIST: `bytes` points at the varint of
  /// the first id to read and `prev` is the id encoded just before it (the
  /// delta base). Lets block-max retrieval decode one block of a list
  /// without re-walking its prefix; the byte format is unchanged.
  PostingsCursor(const uint8_t* bytes, size_t count, uint32_t prev)
      : flat_(nullptr),
        bytes_(bytes),
        remaining_(count),
        prev_(prev),
        first_(false) {}

  /// Total ids left to read (== list size before the first Next()).
  size_t remaining() const { return remaining_; }

  /// Reads the next id into *v; false when exhausted.
  bool Next(uint32_t* v) {
    if (remaining_ == 0) return false;
    --remaining_;
    if (flat_ != nullptr) {
      *v = *flat_++;
      return true;
    }
    uint32_t delta;
    bytes_ = DecodeVarint32(bytes_, &delta);
    prev_ = first_ ? delta : prev_ + delta + 1;
    first_ = false;
    *v = prev_;
    return true;
  }

 private:
  const uint32_t* flat_;
  const uint8_t* bytes_;
  size_t remaining_;
  uint32_t prev_ = 0;
  bool first_ = true;
};

}  // namespace star::graph::csr

#endif  // STAR_GRAPH_CSR_CODEC_H_
