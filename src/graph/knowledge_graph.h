#ifndef STAR_GRAPH_KNOWLEDGE_GRAPH_H_
#define STAR_GRAPH_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace star::graph {

/// Dense node identifier; assigned contiguously from 0 by the builder.
using NodeId = uint32_t;
/// Dense directed-edge identifier.
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One adjacency entry of the undirected view of the graph: the neighbor,
/// the relation label id of the connecting edge, and whether the underlying
/// directed edge points away from the owning node.
struct Neighbor {
  NodeId node = kInvalidNode;
  uint32_t relation = 0;
  bool forward = true;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// An in-memory labeled knowledge graph G = (V, E, L) (§II).
///
/// Storage is CSR over the *undirected* view (each directed edge appears in
/// both endpoints' adjacency lists with a direction flag), because the
/// paper's matching semantics connect query neighbors regardless of edge
/// orientation and all traversals are neighborhood expansions. Node labels,
/// type names and relation names are interned in dictionaries.
///
/// Instances are immutable after Build(); all queries are const and
/// thread-compatible.
class KnowledgeGraph {
 public:
  /// Mutable construction interface. Typical use:
  ///
  ///   KnowledgeGraph::Builder b;
  ///   NodeId brad = b.AddNode("Brad Pitt", "Actor");
  ///   NodeId troy = b.AddNode("Troy", "Film");
  ///   b.AddEdge(brad, troy, "actedIn");
  ///   KnowledgeGraph g = std::move(b).Build();
  class Builder {
   public:
    Builder() = default;

    /// Adds a node with a free-text label and a type name (may be empty).
    NodeId AddNode(std::string label, std::string type_name = "");

    /// Adds a directed edge with a relation name (may be empty).
    /// Endpoints must be previously returned by AddNode.
    EdgeId AddEdge(NodeId src, NodeId dst, std::string relation = "");

    size_t node_count() const { return labels_.size(); }
    size_t edge_count() const { return srcs_.size(); }

    /// Finalizes into an immutable graph; the builder is consumed.
    KnowledgeGraph Build() &&;

   private:
    friend class KnowledgeGraph;
    std::vector<std::string> labels_;
    std::vector<int32_t> types_;
    std::vector<NodeId> srcs_, dsts_;
    std::vector<uint32_t> relations_;
    std::vector<std::string> type_names_;
    std::vector<std::string> relation_names_;
    std::unordered_map<std::string, int32_t> type_index_;
    std::unordered_map<std::string, uint32_t> relation_index_;
  };

  KnowledgeGraph() = default;
  KnowledgeGraph(const KnowledgeGraph&) = delete;
  KnowledgeGraph& operator=(const KnowledgeGraph&) = delete;
  KnowledgeGraph(KnowledgeGraph&&) = default;
  KnowledgeGraph& operator=(KnowledgeGraph&&) = default;

  size_t node_count() const { return labels_.size(); }
  /// Number of directed edges (each counted once).
  size_t edge_count() const { return edge_src_.size(); }

  const std::string& NodeLabel(NodeId v) const { return labels_[v]; }
  /// Type id of a node, or -1 for untyped nodes.
  int32_t NodeType(NodeId v) const { return types_[v]; }
  /// Name of a type id ("" for -1).
  const std::string& TypeName(int32_t type) const;
  int32_t FindTypeId(std::string_view name) const;
  size_t type_count() const { return type_names_.size(); }

  const std::string& RelationName(uint32_t relation) const {
    return relation_names_[relation];
  }
  int64_t FindRelationId(std::string_view name) const;
  size_t relation_count() const { return relation_names_.size(); }

  /// Undirected adjacency of v (both edge orientations).
  std::span<const Neighbor> Neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Undirected degree of v.
  size_t Degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Maximum undirected degree over all nodes (the paper's m).
  size_t MaxDegree() const { return max_degree_; }

  /// Source / destination / relation of directed edge e.
  NodeId EdgeSrc(EdgeId e) const { return edge_src_[e]; }
  NodeId EdgeDst(EdgeId e) const { return edge_dst_[e]; }
  uint32_t EdgeRelation(EdgeId e) const { return edge_rel_[e]; }

  /// True if u and v are connected by an edge in either direction.
  bool HasEdge(NodeId u, NodeId v) const;

 private:
  friend class Builder;

  std::vector<std::string> labels_;
  std::vector<int32_t> types_;
  std::vector<std::string> type_names_;
  std::vector<std::string> relation_names_;
  std::unordered_map<std::string, int32_t> type_index_;
  std::unordered_map<std::string, uint32_t> relation_index_;

  // Directed edge arrays (by EdgeId).
  std::vector<NodeId> edge_src_, edge_dst_;
  std::vector<uint32_t> edge_rel_;

  // CSR over the undirected view.
  std::vector<size_t> offsets_;
  std::vector<Neighbor> adjacency_;
  size_t max_degree_ = 0;
};

}  // namespace star::graph

#endif  // STAR_GRAPH_KNOWLEDGE_GRAPH_H_
