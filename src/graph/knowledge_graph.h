#ifndef STAR_GRAPH_KNOWLEDGE_GRAPH_H_
#define STAR_GRAPH_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"

namespace star::graph {

/// String-keyed dictionary with heterogeneous lookup (string_view probes
/// never allocate).
template <typename V>
using NameMap =
    std::unordered_map<std::string, V, TransparentStringHash, std::equal_to<>>;

/// Dense node identifier; assigned contiguously from 0 by the builder.
using NodeId = uint32_t;
/// Dense directed-edge identifier.
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One adjacency entry of the undirected view of the graph: the neighbor,
/// the relation label id of the connecting edge, and whether the underlying
/// directed edge points away from the owning node.
///
/// Packed to a fixed 8-byte POD (relation ids are capped at 2^31 - 1, far
/// beyond any KG's relation vocabulary) so the flat CSR stores 8 bytes per
/// entry and the whole struct round-trips through the delta-varint codec.
struct Neighbor {
  NodeId node = kInvalidNode;
  uint32_t relation : 31 = 0;
  uint32_t forward : 1 = 1;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};
static_assert(sizeof(Neighbor) == 8, "Neighbor must stay a packed 8-byte POD");

/// Storage layout of the read-only data plane, chosen at Build() time.
/// Results are bitwise identical across layouts for every engine; the
/// choice trades decode cost for resident bytes (see DESIGN.md "Data
/// plane layout").
enum class GraphLayout {
  /// One flat Neighbor array (8 B/entry), zero decode cost.
  kFlat,
  /// Delta-varint adjacency arena (~2-4 B/entry) decoded per list into a
  /// pooled scratch buffer on access.
  kCompressed,
};

/// The result of Neighbors(v): a contiguous, canonically ordered neighbor
/// list. On the flat layout it borrows the CSR array; on the compressed
/// layout it owns a pooled scratch buffer holding the decoded list, which
/// returns to a thread-local free list on destruction (allocation-free
/// after warmup). Views therefore stay valid across further Neighbors()
/// calls and arbitrary nesting, but must not outlive the graph or cross
/// threads.
class NeighborView {
 public:
  NeighborView(const Neighbor* data, size_t size)
      : data_(data), size_(size), owned_(nullptr) {}
  NeighborView(std::vector<Neighbor>* owned, size_t size)
      : data_(owned->data()), size_(size), owned_(owned) {}
  NeighborView(NeighborView&& o) noexcept
      : data_(o.data_), size_(o.size_), owned_(o.owned_) {
    o.owned_ = nullptr;
  }
  NeighborView& operator=(NeighborView&& o) noexcept;
  NeighborView(const NeighborView&) = delete;
  NeighborView& operator=(const NeighborView&) = delete;
  ~NeighborView();

  const Neighbor* begin() const { return data_; }
  const Neighbor* end() const { return data_ + size_; }
  const Neighbor* data() const { return data_; }
  const Neighbor& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  const Neighbor* data_;
  size_t size_;
  std::vector<Neighbor>* owned_;
};

/// Resident-byte report of one graph instance (graph_stats.cc renders it;
/// bench_data_layout.cc compares layouts). `capacity_slack` is the sum of
/// unused heap bytes (capacity - size) across all owned arrays — a tight
/// Build() keeps it 0, which tests assert.
struct GraphFootprint {
  size_t csr_bytes = 0;    ///< offsets + adjacency (flat array or codec arena)
  size_t label_bytes = 0;  ///< interned string pool + per-node refs + type ids
  size_t edge_bytes = 0;   ///< directed edge arrays (src/dst/rel)
  size_t dict_bytes = 0;   ///< type/relation dictionaries + lookup maps
  size_t capacity_slack = 0;

  size_t total() const {
    return csr_bytes + label_bytes + edge_bytes + dict_bytes;
  }
};

/// An in-memory labeled knowledge graph G = (V, E, L) (§II).
///
/// Storage is CSR over the *undirected* view (each directed edge appears in
/// both endpoints' adjacency lists with a direction flag), because the
/// paper's matching semantics connect query neighbors regardless of edge
/// orientation and all traversals are neighborhood expansions. Adjacency
/// lists are sorted into canonical (node, relation, forward) order at
/// Build() time; node labels and type names are interned into one string
/// pool (duplicate labels share bytes).
///
/// Instances are immutable after Build(); all queries are const and
/// thread-compatible.
class KnowledgeGraph {
 public:
  /// Mutable construction interface. Typical use:
  ///
  ///   KnowledgeGraph::Builder b;
  ///   NodeId brad = b.AddNode("Brad Pitt", "Actor");
  ///   NodeId troy = b.AddNode("Troy", "Film");
  ///   b.AddEdge(brad, troy, "actedIn");
  ///   KnowledgeGraph g = std::move(b).Build();
  class Builder {
   public:
    Builder() = default;

    /// Pre-sizes the builder arrays for a known graph size (loaders that
    /// can count records first avoid re-allocation churn on large files).
    void Reserve(size_t nodes, size_t edges);

    /// Adds a node with a free-text label and a type name (may be empty).
    NodeId AddNode(std::string label, std::string type_name = "");

    /// Adds a directed edge with a relation name (may be empty).
    /// Endpoints must be previously returned by AddNode.
    EdgeId AddEdge(NodeId src, NodeId dst, std::string relation = "");

    /// Interns `relation` into the relation dictionary without adding an
    /// edge; returns its id. Sharded execution uses this to replay the
    /// full global relation dictionary into each shard graph (bound
    /// computations iterate the dictionary, so shard results are bitwise
    /// global only when ids AND vocabulary match exactly).
    uint32_t InternRelation(std::string relation);

    size_t node_count() const { return labels_.size(); }
    size_t edge_count() const { return srcs_.size(); }

    /// Finalizes into an immutable graph; the builder is consumed.
    /// Final arrays are reserved from builder sizes, dictionaries are
    /// moved (never copied), and everything is shrunk to fit — the
    /// resulting footprint reports zero capacity slack.
    KnowledgeGraph Build(GraphLayout layout = GraphLayout::kFlat) &&;

   private:
    friend class KnowledgeGraph;
    std::vector<std::string> labels_;
    std::vector<int32_t> types_;
    std::vector<NodeId> srcs_, dsts_;
    std::vector<uint32_t> relations_;
    std::vector<std::string> type_names_;
    std::vector<std::string> relation_names_;
    NameMap<int32_t> type_index_;
    NameMap<uint32_t> relation_index_;
  };

  KnowledgeGraph() = default;
  KnowledgeGraph(const KnowledgeGraph&) = delete;
  KnowledgeGraph& operator=(const KnowledgeGraph&) = delete;
  KnowledgeGraph(KnowledgeGraph&&) = default;
  KnowledgeGraph& operator=(KnowledgeGraph&&) = default;

  size_t node_count() const { return label_refs_.size(); }
  /// Number of directed edges (each counted once).
  size_t edge_count() const { return edge_src_.size(); }

  GraphLayout layout() const { return layout_; }

  std::string_view NodeLabel(NodeId v) const { return View(label_refs_[v]); }
  /// Type id of a node, or -1 for untyped nodes.
  int32_t NodeType(NodeId v) const { return types_[v]; }
  /// Name of a type id ("" for -1).
  std::string_view TypeName(int32_t type) const;
  int32_t FindTypeId(std::string_view name) const;
  size_t type_count() const { return type_refs_.size(); }

  const std::string& RelationName(uint32_t relation) const {
    return relation_names_[relation];
  }
  int64_t FindRelationId(std::string_view name) const;
  size_t relation_count() const { return relation_names_.size(); }

  /// Undirected adjacency of v (both edge orientations), in canonical
  /// (node, relation, forward) order. See NeighborView for lifetime.
  NeighborView Neighbors(NodeId v) const {
    if (layout_ == GraphLayout::kFlat) {
      return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
    }
    return DecodeNeighbors(v);
  }

  /// Undirected degree of v.
  size_t Degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Maximum undirected degree over all nodes (the paper's m).
  size_t MaxDegree() const { return max_degree_; }

  /// Source / destination / relation of directed edge e.
  NodeId EdgeSrc(EdgeId e) const { return edge_src_[e]; }
  NodeId EdgeDst(EdgeId e) const { return edge_dst_[e]; }
  uint32_t EdgeRelation(EdgeId e) const { return edge_rel_[e]; }

  /// True if u and v are connected by an edge in either direction.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Resident bytes per structure (and unused capacity across them).
  GraphFootprint Footprint() const;

 private:
  friend class Builder;

  /// Offset + length view into the interned string pool.
  struct StrRef {
    uint32_t offset = 0;
    uint32_t length = 0;
  };

  std::string_view View(StrRef r) const {
    return {pool_.data() + r.offset, r.length};
  }

  NeighborView DecodeNeighbors(NodeId v) const;

  GraphLayout layout_ = GraphLayout::kFlat;

  // Interned string pool: node labels (deduplicated) and type names.
  std::string pool_;
  std::vector<StrRef> label_refs_;  // per node
  std::vector<StrRef> type_refs_;   // per type id
  std::vector<int32_t> types_;
  std::vector<std::string> relation_names_;
  NameMap<int32_t> type_index_;
  NameMap<uint32_t> relation_index_;

  // Directed edge arrays (by EdgeId).
  std::vector<NodeId> edge_src_, edge_dst_;
  std::vector<uint32_t> edge_rel_;

  // CSR over the undirected view. offsets_ are entry counts in both
  // layouts (Degree stays O(1)); the compressed layout additionally keeps
  // per-node byte offsets into the codec arena. Both are 32-bit; Build()
  // asserts that 2*|E| entries (and the smaller codec arena) fit uint32.
  std::vector<uint32_t> offsets_;
  std::vector<Neighbor> adjacency_;       // kFlat only
  std::vector<uint8_t> adjacency_bytes_;  // kCompressed only
  std::vector<uint32_t> byte_offsets_;    // kCompressed only
  size_t max_degree_ = 0;
};

/// Structural copy of g rebuilt under the given layout (KnowledgeGraph is
/// move-only). Node ids, edge ids, and all names are preserved, so results
/// over the copy are bitwise identical to the original.
KnowledgeGraph CloneWithLayout(const KnowledgeGraph& g, GraphLayout layout);

}  // namespace star::graph

#endif  // STAR_GRAPH_KNOWLEDGE_GRAPH_H_
