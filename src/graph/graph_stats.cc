#include "graph/graph_stats.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace star::graph {

namespace {

double Percentile(const std::vector<size_t>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1, static_cast<size_t>(p * (sorted.size() - 1) + 0.5));
  return static_cast<double>(sorted[idx]);
}

std::vector<std::pair<std::string, size_t>> TopCounts(
    const std::unordered_map<std::string, size_t>& counts, size_t top_n) {
  std::vector<std::pair<std::string, size_t>> out(counts.begin(),
                                                  counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

}  // namespace

GraphStats ComputeGraphStats(const KnowledgeGraph& g, size_t top_n) {
  GraphStats s;
  s.nodes = g.node_count();
  s.edges = g.edge_count();
  s.types = g.type_count();
  s.relations = g.relation_count();
  if (s.nodes == 0) return s;

  // Degree distribution.
  std::vector<size_t> degrees(s.nodes);
  for (NodeId v = 0; v < s.nodes; ++v) degrees[v] = g.Degree(v);
  std::sort(degrees.begin(), degrees.end());
  s.degree.min = degrees.front();
  s.degree.max = degrees.back();
  const double total =
      static_cast<double>(std::accumulate(degrees.begin(), degrees.end(),
                                          size_t{0}));
  s.degree.mean = total / s.nodes;
  s.degree.median = Percentile(degrees, 0.5);
  s.degree.p90 = Percentile(degrees, 0.9);
  s.degree.p99 = Percentile(degrees, 0.99);
  // Gini over the sorted degrees: (2*sum(i*x_i)/(n*sum x) - (n+1)/n).
  if (total > 0) {
    double weighted = 0.0;
    for (size_t i = 0; i < degrees.size(); ++i) {
      weighted += static_cast<double>(i + 1) * degrees[i];
    }
    const double n = static_cast<double>(s.nodes);
    s.degree.gini = 2.0 * weighted / (n * total) - (n + 1.0) / n;
  }

  // Connected components (undirected view) by iterative DFS.
  std::vector<bool> seen(s.nodes, false);
  std::vector<NodeId> stack;
  for (NodeId v = 0; v < s.nodes; ++v) {
    if (seen[v]) continue;
    ++s.connected_components;
    size_t size = 0;
    stack.push_back(v);
    seen[v] = true;
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      ++size;
      for (const Neighbor& nb : g.Neighbors(x)) {
        if (!seen[nb.node]) {
          seen[nb.node] = true;
          stack.push_back(nb.node);
        }
      }
    }
    s.largest_component = std::max(s.largest_component, size);
  }

  // Type / relation frequencies.
  std::unordered_map<std::string, size_t> type_counts;
  for (NodeId v = 0; v < s.nodes; ++v) {
    if (g.NodeType(v) >= 0) {
      ++type_counts[std::string(g.TypeName(g.NodeType(v)))];
    }
  }
  std::unordered_map<std::string, size_t> relation_counts;
  for (EdgeId e = 0; e < s.edges; ++e) {
    ++relation_counts[g.RelationName(g.EdgeRelation(e))];
  }
  s.top_types = TopCounts(type_counts, top_n);
  s.top_relations = TopCounts(relation_counts, top_n);
  s.footprint = g.Footprint();
  return s;
}

std::vector<size_t> DegreeHistogram(const KnowledgeGraph& g) {
  std::vector<size_t> buckets;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const size_t d = g.Degree(v);
    size_t bucket = 0;
    while ((size_t{1} << (bucket + 1)) <= d + 1) ++bucket;
    if (bucket >= buckets.size()) buckets.resize(bucket + 1, 0);
    ++buckets[bucket];
  }
  return buckets;
}

}  // namespace star::graph
