#include "baseline/belief_propagation.h"

#include <algorithm>
#include <array>
#include <limits>
#include <queue>
#include <set>

#include "common/timer.h"

namespace star::baseline {

using core::GraphMatch;
using graph::NodeId;
using query::QueryGraph;

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

void BeliefPropagation::BuildDomains() {
  if (!domains_.empty()) return;
  const QueryGraph& q = scorer_.query();
  domains_.resize(q.node_count());
  for (int u = 0; u < q.node_count(); ++u) {
    const scoring::CandidateList& list = scorer_.Candidates(u);
    domains_[u].assign(list.begin(), list.end());
    if (options_.domain_cap > 0 && domains_[u].size() > options_.domain_cap) {
      domains_[u].resize(options_.domain_cap);
    }
  }
}

double BeliefPropagation::ScoreAssignment(
    const std::vector<int>& assignment) const {
  const QueryGraph& q = scorer_.query();
  double score = 0.0;
  for (int u = 0; u < q.node_count(); ++u) {
    score += domains_[u][assignment[u]].score;
  }
  for (int e = 0; e < q.edge_count(); ++e) {
    const double fe =
        scorer_.PairEdgeScore(e, domains_[q.edge(e).u][assignment[q.edge(e).u]].node,
                              domains_[q.edge(e).v][assignment[q.edge(e).v]].node);
    if (fe < 0.0) return kNegInf;
    score += fe;
  }
  return score;
}

std::optional<std::pair<std::vector<int>, double>> BeliefPropagation::Map(
    const Constraints& constraints) {
  ++stats_.map_calls;
  for (const auto& d : domains_) {
    if (d.empty()) return std::nullopt;
  }
  return scorer_.query().IsTree() ? MapTree(constraints)
                                  : MapLoopy(constraints);
}

// Exact max-sum dynamic program on acyclic queries.
std::optional<std::pair<std::vector<int>, double>>
BeliefPropagation::MapTree(const Constraints& constraints) {
  const QueryGraph& q = scorer_.query();
  const int n = q.node_count();
  // Rooted BFS order (parents precede children).
  std::vector<int> order = {0};
  std::vector<int> parent(n, -1), parent_edge(n, -1);
  std::vector<bool> seen(n, false);
  seen[0] = true;
  for (size_t i = 0; i < order.size(); ++i) {
    const int u = order[i];
    for (const int e : q.IncidentEdges(u)) {
      const int w = q.OtherEnd(e, u);
      if (!seen[w]) {
        seen[w] = true;
        parent[w] = u;
        parent_edge[w] = e;
        order.push_back(w);
      }
    }
  }

  const auto allowed = [&](int u, int j) {
    if (constraints.forced[u] >= 0 && constraints.forced[u] != j) return false;
    return !constraints.forbidden[u][j];
  };

  // Bottom-up tables: best[u][j] = best subtree score with u at index j;
  // choice[u][j][c] = chosen index of the c-th child.
  std::vector<std::vector<double>> best(n);
  std::vector<std::vector<int>> children(n);
  for (int u = 0; u < n; ++u) {
    best[u].assign(domains_[u].size(), 0.0);
  }
  for (int i = 1; i < n; ++i) children[parent[order[i]]].push_back(order[i]);
  std::vector<std::vector<std::vector<int>>> choice(n);

  for (size_t i = order.size(); i-- > 0;) {
    const int u = order[i];
    choice[u].assign(domains_[u].size(),
                     std::vector<int>(children[u].size(), -1));
    for (size_t j = 0; j < domains_[u].size(); ++j) {
      if (!allowed(u, static_cast<int>(j))) {
        best[u][j] = kNegInf;
        continue;
      }
      double total = domains_[u][j].score;
      for (size_t c = 0; c < children[u].size() && total > kNegInf; ++c) {
        const int child = children[u][c];
        const int e = parent_edge[child];
        double best_child = kNegInf;
        int best_idx = -1;
        for (size_t b = 0; b < domains_[child].size(); ++b) {
          ++stats_.message_updates;
          if (best[child][b] == kNegInf) continue;
          const double fe = scorer_.PairEdgeScore(
              e, domains_[u][j].node, domains_[child][b].node);
          if (fe < 0.0) continue;
          const double v = fe + best[child][b];
          if (v > best_child) {
            best_child = v;
            best_idx = static_cast<int>(b);
          }
        }
        if (best_idx < 0) {
          total = kNegInf;
        } else {
          total += best_child;
          choice[u][j][c] = best_idx;
        }
      }
      best[u][j] = total;
    }
  }

  // Root argmax, then top-down back-tracing.
  int root_idx = -1;
  double root_best = kNegInf;
  for (size_t j = 0; j < best[0].size(); ++j) {
    if (best[0][j] > root_best) {
      root_best = best[0][j];
      root_idx = static_cast<int>(j);
    }
  }
  if (root_idx < 0 || root_best == kNegInf) return std::nullopt;
  std::vector<int> assignment(n, -1);
  assignment[0] = root_idx;
  for (const int u : order) {
    for (size_t c = 0; c < children[u].size(); ++c) {
      assignment[children[u][c]] = choice[u][assignment[u]][c];
    }
  }
  return std::make_pair(std::move(assignment), root_best);
}

// Loopy max-sum with a conditioned greedy decode (cyclic queries; no
// optimality guarantee, as in the paper).
std::optional<std::pair<std::vector<int>, double>>
BeliefPropagation::MapLoopy(const Constraints& constraints) {
  const QueryGraph& q = scorer_.query();
  const int n = q.node_count();

  const auto allowed = [&](int u, int j) {
    if (constraints.forced[u] >= 0 && constraints.forced[u] != j) return false;
    return !constraints.forbidden[u][j];
  };

  // Directed messages per query edge: m[e][0] = u->v, m[e][1] = v->u.
  std::vector<std::array<std::vector<double>, 2>> msg(q.edge_count());
  for (int e = 0; e < q.edge_count(); ++e) {
    msg[e][0].assign(domains_[q.edge(e).v].size(), 0.0);
    msg[e][1].assign(domains_[q.edge(e).u].size(), 0.0);
  }

  const auto incoming = [&](int u, int excluded_edge, size_t j) {
    double sum = 0.0;
    for (const int e : q.IncidentEdges(u)) {
      if (e == excluded_edge) continue;
      const int dir = q.edge(e).v == u ? 0 : 1;  // message flowing into u
      sum += msg[e][dir][j];
    }
    return sum;
  };

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    for (int e = 0; e < q.edge_count(); ++e) {
      for (int dir = 0; dir < 2; ++dir) {
        const int from = dir == 0 ? q.edge(e).u : q.edge(e).v;
        const int to = dir == 0 ? q.edge(e).v : q.edge(e).u;
        auto& out = msg[e][dir];
        double norm = kNegInf;
        for (size_t b = 0; b < domains_[to].size(); ++b) {
          double best = kNegInf;
          for (size_t a = 0; a < domains_[from].size(); ++a) {
            ++stats_.message_updates;
            if (!allowed(from, static_cast<int>(a))) continue;
            const double fe = scorer_.PairEdgeScore(
                e, domains_[from][a].node, domains_[to][b].node);
            if (fe < 0.0) continue;
            const double v = domains_[from][a].score + fe +
                             incoming(from, e, a);
            best = std::max(best, v);
          }
          out[b] = best;
          norm = std::max(norm, best);
        }
        if (norm > kNegInf) {
          for (auto& x : out) {
            if (x > kNegInf) x -= norm;
          }
        }
      }
    }
  }

  // Conditioned decode in BFS order: honor already-fixed neighbors.
  std::vector<int> order = {0};
  std::vector<bool> seen(n, false);
  seen[0] = true;
  for (size_t i = 0; i < order.size(); ++i) {
    for (const int e : q.IncidentEdges(order[i])) {
      const int w = q.OtherEnd(e, order[i]);
      if (!seen[w]) {
        seen[w] = true;
        order.push_back(w);
      }
    }
  }
  std::vector<int> assignment(n, -1);
  for (const int u : order) {
    double best = kNegInf;
    int best_idx = -1;
    for (size_t j = 0; j < domains_[u].size(); ++j) {
      if (!allowed(u, static_cast<int>(j))) continue;
      double v = domains_[u][j].score + incoming(u, -1, j);
      bool ok = true;
      for (const int e : q.IncidentEdges(u)) {
        const int other = q.OtherEnd(e, u);
        if (assignment[other] < 0) continue;
        const double fe = scorer_.PairEdgeScore(
            e, domains_[u][j].node, domains_[other][assignment[other]].node);
        if (fe < 0.0) {
          ok = false;
          break;
        }
        v += fe;
      }
      if (ok && v > best) {
        best = v;
        best_idx = static_cast<int>(j);
      }
    }
    if (best_idx < 0) return std::nullopt;
    assignment[u] = best_idx;
  }
  const double score = ScoreAssignment(assignment);
  if (score == kNegInf) return std::nullopt;
  return std::make_pair(std::move(assignment), score);
}

std::vector<GraphMatch> BeliefPropagation::TopK(size_t k) {
  BuildDomains();
  const QueryGraph& q = scorer_.query();
  const int n = q.node_count();
  std::vector<GraphMatch> out;
  if (n == 0 || k == 0) return out;
  for (const auto& d : domains_) {
    if (d.empty()) return out;
  }

  // Lawler partitioning over the MAP oracle: exact k-best on trees.
  struct Node {
    double score;
    std::vector<int> assignment;
    Constraints constraints;
    bool operator<(const Node& o) const { return score < o.score; }
  };
  std::priority_queue<Node> heap;
  Constraints root;
  root.forced.assign(n, -1);
  root.forbidden.resize(n);
  for (int u = 0; u < n; ++u) root.forbidden[u].assign(domains_[u].size(), false);
  if (auto m = Map(root)) {
    heap.push(Node{m->second, std::move(m->first), std::move(root)});
  }
  std::set<std::vector<int>> emitted;
  WallTimer timer;
  while (!heap.empty() && out.size() < k) {
    if (options_.budget_ms > 0.0 && timer.ElapsedMillis() > options_.budget_ms) {
      stats_.timed_out = true;
      break;
    }
    Node top = heap.top();
    heap.pop();
    if (!emitted.insert(top.assignment).second) continue;
    // Materialize the match; apply the post-hoc injectivity filter.
    GraphMatch gm;
    gm.mapping.resize(n);
    for (int u = 0; u < n; ++u) {
      gm.mapping[u] = domains_[u][top.assignment[u]].node;
    }
    gm.score = top.score;
    if (!scorer_.config().enforce_injective || gm.Injective()) {
      out.push_back(std::move(gm));
    }
    // Partition: children share the prefix and forbid the pivot choice.
    for (int i = 0; i < n; ++i) {
      Constraints child = top.constraints;
      for (int j = 0; j < i; ++j) child.forced[j] = top.assignment[j];
      child.forbidden[i][top.assignment[i]] = true;
      if (child.forced[i] == top.assignment[i]) continue;  // infeasible
      if (auto m = Map(child)) {
        heap.push(Node{m->second, std::move(m->first), std::move(child)});
      }
    }
  }
  return out;
}

}  // namespace star::baseline
