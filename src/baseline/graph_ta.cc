#include "baseline/graph_ta.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace star::baseline {

using core::GraphMatch;
using graph::NodeId;
using query::QueryGraph;

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::string MappingKey(const std::vector<NodeId>& mapping) {
  return std::string(reinterpret_cast<const char*>(mapping.data()),
                     mapping.size() * sizeof(NodeId));
}

/// BFS order over the query graph rooted at `root` (connected queries).
std::vector<int> QueryBfsOrder(const QueryGraph& q, int root) {
  std::vector<int> order = {root};
  std::vector<bool> seen(q.node_count(), false);
  seen[root] = true;
  for (size_t i = 0; i < order.size(); ++i) {
    for (const int e : q.IncidentEdges(order[i])) {
      const int w = q.OtherEnd(e, order[i]);
      if (!seen[w]) {
        seen[w] = true;
        order.push_back(w);
      }
    }
  }
  return order;
}

}  // namespace

bool GraphTa::OverBudget() {
  if (budget_ms_ <= 0.0 || stats_.timed_out) return stats_.timed_out;
  // Check sparsely: ElapsedMillis has syscall cost.
  if ((stats_.partial_states & 0x3F) == 0 &&
      timer_.ElapsedMillis() > budget_ms_) {
    stats_.timed_out = true;
  }
  return stats_.timed_out;
}

double GraphTa::Threshold(size_t k) const {
  return heap_.size() < k ? kNegInf : heap_.front().score;
}

void GraphTa::Offer(const std::vector<NodeId>& mapping, double score,
                    size_t k) {
  if (!seen_matches_.insert(MappingKey(mapping)).second) return;
  ++stats_.matches_generated;
  const auto cmp = [](const GraphMatch& a, const GraphMatch& b) {
    return a.score > b.score;
  };
  if (heap_.size() < k) {
    heap_.push_back(GraphMatch{mapping, score});
    std::push_heap(heap_.begin(), heap_.end(), cmp);
  } else if (score > heap_.front().score) {
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    heap_.back() = GraphMatch{mapping, score};
    std::push_heap(heap_.begin(), heap_.end(), cmp);
  }
}

void GraphTa::Complete(const std::vector<int>& order, size_t depth,
                       std::vector<NodeId>& mapping, double score,
                       double optimistic_rest, size_t k) {
  ++stats_.partial_states;
  if (OverBudget()) return;
  const QueryGraph& q = scorer_.query();
  const scoring::MatchConfig& cfg = scorer_.config();
  if (depth == order.size()) {
    Offer(mapping, score, k);
    return;
  }
  const int u = order[depth];
  // Anchor: an already-assigned query neighbor (exists by BFS order).
  int anchor = -1;
  for (const int e : q.IncidentEdges(u)) {
    const int other = q.OtherEnd(e, u);
    if (mapping[other] != graph::kInvalidNode) {
      anchor = other;
      break;
    }
  }
  const NodeId av = mapping[anchor];
  // Extension candidates: the d-bounded ball around the anchor's match
  // (optimization (a): the ball is memoized in the scorer).
  std::vector<NodeId> pool;
  {
    std::unordered_map<NodeId, bool> uniq;
    for (const auto& nb : scorer_.graph().Neighbors(av)) {
      if (uniq.emplace(nb.node, true).second) pool.push_back(nb.node);
    }
    for (const auto& [w, h] : scorer_.WalkBall(av)) {
      if (uniq.emplace(w, true).second) pool.push_back(w);
    }
  }

  // Score each extension (optimization (b): sort descending before
  // recursing so better branches are explored first and tighten θ early).
  struct Extension {
    NodeId node;
    double delta;
  };
  std::vector<Extension> extensions;
  (void)optimistic_rest;  // the remainder bound is recomputed below
  for (const NodeId w : pool) {
    if (cfg.enforce_injective &&
        std::find(mapping.begin(), mapping.end(), w) != mapping.end()) {
      continue;
    }
    double delta = scorer_.CandidateScore(u, w);  // shared candidacy rule
    if (delta < 0.0) continue;
    bool ok = true;
    for (const int e : q.IncidentEdges(u)) {
      const int other = q.OtherEnd(e, u);
      if (mapping[other] == graph::kInvalidNode) continue;
      const double fe = scorer_.PairEdgeScore(e, mapping[other], w);
      if (fe < 0.0) {
        ok = false;
        break;
      }
      delta += fe;
    }
    if (!ok) continue;
    extensions.push_back({w, delta});
  }
  std::sort(extensions.begin(), extensions.end(),
            [](const Extension& a, const Extension& b) {
              return a.delta > b.delta;
            });

  // Upper bound of everything below this depth.
  double rest = 0.0;
  for (size_t i = depth + 1; i < order.size(); ++i) {
    const int x = order[i];
    rest += q.node(x).wildcard ? cfg.wildcard_node_score : 1.0;
    for (const int e : q.IncidentEdges(x)) {
      const int other = q.OtherEnd(e, x);
      // Count each edge at the depth where its later endpoint lands.
      const auto pos_other = std::find(order.begin(), order.end(), other);
      if (static_cast<size_t>(pos_other - order.begin()) < i) {
        rest += scorer_.MaxEdgeScore(e);
      }
    }
  }
  for (const Extension& ext : extensions) {
    if (score + ext.delta + rest < Threshold(k)) break;  // sorted: all worse
    mapping[u] = ext.node;
    Complete(order, depth + 1, mapping, score + ext.delta, 0.0, k);
    mapping[u] = graph::kInvalidNode;
  }
}

void GraphTa::Expand(int u, NodeId v, size_t k) {
  ++stats_.expansions;
  const QueryGraph& q = scorer_.query();
  const std::vector<int> order = QueryBfsOrder(q, u);
  std::vector<NodeId> mapping(q.node_count(), graph::kInvalidNode);
  const double score = scorer_.CandidateScore(u, v);  // shared candidacy
  if (score < 0.0) return;
  mapping[u] = v;
  Complete(order, 1, mapping, score, 0.0, k);
}

std::vector<GraphMatch> GraphTa::TopK(size_t k) {
  const QueryGraph& q = scorer_.query();
  const int n = q.node_count();
  if (n == 0 || k == 0) return {};
  timer_.Restart();

  // Sorted candidate list per query node (Fig. 2 lines 1-4). Each list's
  // F_N scoring runs on the worker pool (MatchConfig::threads) inside
  // Candidates(); everything after this loop is single-threaded.
  std::vector<const scoring::CandidateList*> lists(n);
  for (int u = 0; u < n; ++u) lists[u] = &scorer_.Candidates(u);

  double max_edges_total = 0.0;
  for (int e = 0; e < q.edge_count(); ++e) {
    max_edges_total += scorer_.MaxEdgeScore(e);
  }

  // Wildcard nodes are never used as expansion seeds: every match also
  // contains each concrete node's candidate, so iterating the concrete
  // lists alone is complete, and wildcard lists (constant score 1.0) would
  // seed an expansion per graph node for nothing. The bound below still
  // accounts for them. Fully-wildcard queries fall back to node 0.
  std::vector<int> seed_nodes;
  for (int u = 0; u < n; ++u) {
    if (!q.node(u).wildcard) seed_nodes.push_back(u);
  }
  if (seed_nodes.empty()) seed_nodes.push_back(0);

  size_t row = 0;
  while (!stats_.timed_out) {
    bool any_left = false;
    for (const int u : seed_nodes) {
      if (row >= lists[u]->size()) continue;
      any_left = true;
      ++stats_.cursor_steps;
      Expand(u, (*lists[u])[row].node, k);
    }
    if (!any_left) break;
    ++row;
    // If some seed list is exhausted, every match uses a seen candidate
    // there and has been generated; otherwise bound the unseen matches
    // (Fig. 2 line 10): unseen entries in every seed list plus the best
    // possible wildcard and edge contributions.
    bool exhausted = false;
    double u_bound = max_edges_total;
    for (int u = 0; u < n; ++u) {
      if (q.node(u).wildcard &&
          std::find(seed_nodes.begin(), seed_nodes.end(), u) ==
              seed_nodes.end()) {
        u_bound += scorer_.config().wildcard_node_score;
        continue;
      }
      if (row >= lists[u]->size()) {
        exhausted = true;
        break;
      }
      u_bound += (*lists[u])[row].score;
    }
    if (exhausted) break;
    if (heap_.size() >= k && Threshold(k) >= u_bound) break;
  }

  std::sort(heap_.begin(), heap_.end(),
            [](const GraphMatch& a, const GraphMatch& b) {
              return a.score > b.score;
            });
  return heap_;
}

}  // namespace star::baseline
