#ifndef STAR_BASELINE_BRUTE_FORCE_H_
#define STAR_BASELINE_BRUTE_FORCE_H_

#include <cstddef>
#include <vector>

#include "core/match.h"
#include "scoring/query_scorer.h"

namespace star::baseline {

/// Exhaustive top-k reference: enumerates every (optionally injective)
/// mapping of query nodes to their candidate sets, scores it with the
/// exact Eq. 2 semantics (QueryScorer::PairEdgeScore for edges), and keeps
/// the k best. Exponential — the correctness oracle for tests on small
/// graphs, never a competitor in benchmarks.
///
/// A mapping is valid iff every node score passes node_threshold (wildcards
/// always pass) and every query edge has a connection with F_E >=
/// edge_threshold within d.
std::vector<core::GraphMatch> BruteForceTopK(scoring::QueryScorer& scorer,
                                             size_t k);

/// Number of valid matches in total (diagnostics for tests).
size_t BruteForceCountMatches(scoring::QueryScorer& scorer);

}  // namespace star::baseline

#endif  // STAR_BASELINE_BRUTE_FORCE_H_
