#ifndef STAR_BASELINE_BRUTE_FORCE_H_
#define STAR_BASELINE_BRUTE_FORCE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/match.h"
#include "query/query_graph.h"
#include "scoring/match_config.h"
#include "scoring/query_scorer.h"

namespace star::baseline {

/// Exhaustive top-k reference: enumerates every (optionally injective)
/// mapping of query nodes to their candidate sets, scores it with the
/// exact Eq. 2 semantics (QueryScorer::PairEdgeScore for edges), and keeps
/// the k best. Exponential — the correctness oracle for tests on small
/// graphs, never a competitor in benchmarks.
///
/// A mapping is valid iff every node score passes node_threshold (wildcards
/// always pass) and every query edge has a connection with F_E >=
/// edge_threshold within d.
///
/// MatchConfig coverage: every option is honored with the engines' leaf
/// semantics — node/edge thresholds and cutoffs via the shared Candidates()
/// lists, lambda/d via PairEdgeScore, injectivity, and the untyped-wildcard
/// exemption (such nodes range over ALL of V at wildcard_node_score,
/// mirroring CandidateScore's short-circuit). The one configuration the
/// oracle cannot model is flagged by BruteForceOracleCheck below — callers
/// doing differential comparisons must consult it first.
std::vector<core::GraphMatch> BruteForceTopK(scoring::QueryScorer& scorer,
                                             size_t k);

/// Number of valid matches in total (diagnostics for tests).
size_t BruteForceCountMatches(scoring::QueryScorer& scorer);

/// "" when the brute-force oracle models (q, config) faithfully; otherwise
/// a human-readable reason a differential comparison would be
/// apples-to-oranges and the oracle cell must be skipped.
///
/// The only unmodelable region: untyped wildcard nodes are threshold- and
/// cutoff-exempt in *leaf* position (CandidateScore short-circuits to
/// wildcard_node_score) but go through the filtered/truncated Candidates()
/// list in *pivot* position, so when a candidate cutoff is set or the
/// wildcard score falls below node_threshold the engines' own semantics
/// depend on where the decomposition places the node — no single oracle
/// semantics can match both.
std::string BruteForceOracleCheck(const query::QueryGraph& q,
                                  const scoring::MatchConfig& config);

}  // namespace star::baseline

#endif  // STAR_BASELINE_BRUTE_FORCE_H_
