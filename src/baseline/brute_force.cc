#include "baseline/brute_force.h"

#include <algorithm>
#include <functional>

namespace star::baseline {

using core::GraphMatch;
using graph::NodeId;
using scoring::QueryScorer;

namespace {

/// True when query node u is exempt from candidate-list semantics: the
/// engines score untyped wildcards through CandidateScore's short-circuit
/// (constant wildcard_node_score, no threshold, no cutoff), so the oracle
/// must range them over all of V instead of Candidates(u).
bool UntypedWildcard(const query::QueryGraph& q, int u) {
  return q.node(u).wildcard && q.node(u).type_name.empty();
}

/// Shared enumeration core: calls `emit` for every valid complete match.
void Enumerate(QueryScorer& scorer,
               const std::function<void(const GraphMatch&)>& emit) {
  const query::QueryGraph& q = scorer.query();
  const scoring::MatchConfig& cfg = scorer.config();
  const int n = q.node_count();
  // Bulk-score every query node's candidate list up front: Candidates()
  // fans the online F_N evaluations across the worker pool
  // (MatchConfig::threads), which is where brute force spends most of its
  // time before the enumeration even starts. Untyped wildcards never build
  // lists (mirrors the engines' leaf path).
  for (int u = 0; u < n; ++u) {
    if (!UntypedWildcard(q, u)) scorer.Candidates(u);
  }
  // Untyped wildcards range over every data node at the constant wildcard
  // score (the engines' CandidateScore semantics); everything else over its
  // shared candidate list.
  scoring::CandidateList all_nodes;
  for (int u = 0; u < n && all_nodes.empty(); ++u) {
    if (!UntypedWildcard(q, u)) continue;
    all_nodes.reserve(scorer.graph().node_count());
    for (graph::NodeId v = 0;
         v < static_cast<graph::NodeId>(scorer.graph().node_count()); ++v) {
      all_nodes.push_back({v, cfg.wildcard_node_score});
    }
  }
  GraphMatch current;
  current.mapping.assign(n, graph::kInvalidNode);

  std::function<void(int, double)> recurse = [&](int u, double score) {
    if (u == n) {
      current.score = score;
      emit(current);
      return;
    }
    const auto& domain =
        UntypedWildcard(q, u) ? all_nodes : scorer.Candidates(u);
    for (const auto& cand : domain) {
      if (cfg.enforce_injective) {
        bool taken = false;
        for (int prev = 0; prev < u; ++prev) {
          if (current.mapping[prev] == cand.node) {
            taken = true;
            break;
          }
        }
        if (taken) continue;
      }
      // All query edges into already-assigned nodes must connect.
      double delta = cand.score;
      bool ok = true;
      for (const int e : q.IncidentEdges(u)) {
        const int other = q.OtherEnd(e, u);
        if (other >= u) continue;  // not assigned yet
        const double fe =
            scorer.PairEdgeScore(e, current.mapping[other], cand.node);
        if (fe < 0.0) {
          ok = false;
          break;
        }
        delta += fe;
      }
      if (!ok) continue;
      current.mapping[u] = cand.node;
      recurse(u + 1, score + delta);
      current.mapping[u] = graph::kInvalidNode;
    }
  };
  recurse(0, 0.0);
}

}  // namespace

std::vector<GraphMatch> BruteForceTopK(QueryScorer& scorer, size_t k) {
  std::vector<GraphMatch> heap;  // min-heap by score
  const auto cmp = [](const GraphMatch& a, const GraphMatch& b) {
    return a.score > b.score;
  };
  Enumerate(scorer, [&](const GraphMatch& m) {
    if (heap.size() < k) {
      heap.push_back(m);
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (!heap.empty() && m.score > heap.front().score) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = m;
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  });
  std::sort(heap.begin(), heap.end(),
            [](const GraphMatch& a, const GraphMatch& b) {
              return a.score > b.score;
            });
  return heap;
}

size_t BruteForceCountMatches(QueryScorer& scorer) {
  size_t count = 0;
  Enumerate(scorer, [&](const GraphMatch&) { ++count; });
  return count;
}

std::string BruteForceOracleCheck(const query::QueryGraph& q,
                                  const scoring::MatchConfig& config) {
  bool untyped_wildcard = false;
  for (int u = 0; u < q.node_count(); ++u) {
    if (q.node(u).wildcard && q.node(u).type_name.empty()) {
      untyped_wildcard = true;
      break;
    }
  }
  if (!untyped_wildcard) return "";
  if (config.max_candidates > 0) {
    return "untyped wildcard with max_candidates cutoff: engine semantics "
           "are pivot/leaf position dependent";
  }
  if (config.wildcard_node_score < config.node_threshold) {
    return "untyped wildcard with wildcard_node_score below node_threshold: "
           "engine semantics are pivot/leaf position dependent";
  }
  return "";
}

}  // namespace star::baseline
