#include "baseline/brute_force.h"

#include <algorithm>
#include <functional>

namespace star::baseline {

using core::GraphMatch;
using graph::NodeId;
using scoring::QueryScorer;

namespace {

/// Shared enumeration core: calls `emit` for every valid complete match.
void Enumerate(QueryScorer& scorer,
               const std::function<void(const GraphMatch&)>& emit) {
  const query::QueryGraph& q = scorer.query();
  const scoring::MatchConfig& cfg = scorer.config();
  const int n = q.node_count();
  // Bulk-score every query node's candidate list up front: Candidates()
  // fans the online F_N evaluations across the worker pool
  // (MatchConfig::threads), which is where brute force spends most of its
  // time before the enumeration even starts.
  for (int u = 0; u < n; ++u) scorer.Candidates(u);
  GraphMatch current;
  current.mapping.assign(n, graph::kInvalidNode);

  std::function<void(int, double)> recurse = [&](int u, double score) {
    if (u == n) {
      current.score = score;
      emit(current);
      return;
    }
    for (const auto& cand : scorer.Candidates(u)) {
      if (cfg.enforce_injective) {
        bool taken = false;
        for (int prev = 0; prev < u; ++prev) {
          if (current.mapping[prev] == cand.node) {
            taken = true;
            break;
          }
        }
        if (taken) continue;
      }
      // All query edges into already-assigned nodes must connect.
      double delta = cand.score;
      bool ok = true;
      for (const int e : q.IncidentEdges(u)) {
        const int other = q.OtherEnd(e, u);
        if (other >= u) continue;  // not assigned yet
        const double fe =
            scorer.PairEdgeScore(e, current.mapping[other], cand.node);
        if (fe < 0.0) {
          ok = false;
          break;
        }
        delta += fe;
      }
      if (!ok) continue;
      current.mapping[u] = cand.node;
      recurse(u + 1, score + delta);
      current.mapping[u] = graph::kInvalidNode;
    }
  };
  recurse(0, 0.0);
}

}  // namespace

std::vector<GraphMatch> BruteForceTopK(QueryScorer& scorer, size_t k) {
  std::vector<GraphMatch> heap;  // min-heap by score
  const auto cmp = [](const GraphMatch& a, const GraphMatch& b) {
    return a.score > b.score;
  };
  Enumerate(scorer, [&](const GraphMatch& m) {
    if (heap.size() < k) {
      heap.push_back(m);
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (!heap.empty() && m.score > heap.front().score) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = m;
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  });
  std::sort(heap.begin(), heap.end(),
            [](const GraphMatch& a, const GraphMatch& b) {
              return a.score > b.score;
            });
  return heap;
}

size_t BruteForceCountMatches(QueryScorer& scorer) {
  size_t count = 0;
  Enumerate(scorer, [&](const GraphMatch&) { ++count; });
  return count;
}

}  // namespace star::baseline
