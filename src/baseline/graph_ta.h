#ifndef STAR_BASELINE_GRAPH_TA_H_
#define STAR_BASELINE_GRAPH_TA_H_

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/timer.h"
#include "core/match.h"
#include "scoring/query_scorer.h"

namespace star::baseline {

/// Counters for the benchmark harness.
struct GraphTaStats {
  size_t cursor_steps = 0;
  size_t expansions = 0;
  size_t partial_states = 0;
  size_t matches_generated = 0;
  /// True if the search was cut short by the time budget; the returned
  /// top-k is then best-effort rather than exact.
  bool timed_out = false;
};

/// The TA-style top-k subgraph matcher of §III (Fig. 2), the paper's main
/// baseline, with both optimizations of §VII-A applied:
///  (a) neighbor caching — d-bounded neighborhood balls and pairwise edge
///      scores are memoized in the shared QueryScorer;
///  (b) score-sorted exploration — expansion extends partial matches along
///      query edges in descending candidate-score order (the "BFS instead
///      of DFS" ordering optimization).
///
/// One candidate list per query node is sorted by F_N. Cursors advance in
/// lock step; each newly seen (query node, candidate) pair seeds an
/// exploration-based subgraph search that enumerates complete matches
/// containing it (pruned against the current threshold θ). The algorithm
/// stops when k matches are found and θ >= U, with
///   U = sum_u score(L_u[cursor]) + sum_e maxEdge(e)
/// the upper bound on any match formed solely from unseen candidates.
///
/// Produces exactly the same top-k as STAR under identical MatchConfig.
class GraphTa {
 public:
  /// `budget_ms` > 0 caps wall-clock time (benchmark harness safety; the
  /// search then returns its best-effort top-k and sets stats().timed_out).
  explicit GraphTa(scoring::QueryScorer& scorer, double budget_ms = 0.0)
      : scorer_(scorer), budget_ms_(budget_ms) {}

  /// Top-k matches in descending score order.
  std::vector<core::GraphMatch> TopK(size_t k);

  const GraphTaStats& stats() const { return stats_; }

 private:
  /// Enumerates all complete matches that map query node `u` to `v` and
  /// score above the running threshold; updates the result heap.
  void Expand(int u, graph::NodeId v, size_t k);

  /// Recursive best-first completion over the query BFS order.
  void Complete(const std::vector<int>& order, size_t depth,
                std::vector<graph::NodeId>& mapping, double score,
                double optimistic_rest, size_t k);

  double Threshold(size_t k) const;
  void Offer(const std::vector<graph::NodeId>& mapping, double score,
             size_t k);

  bool OverBudget();

  scoring::QueryScorer& scorer_;
  double budget_ms_;
  WallTimer timer_;
  GraphTaStats stats_;
  // Min-heap of current best k (by score).
  std::vector<core::GraphMatch> heap_;
  // Dedup of emitted complete mappings across seed expansions.
  std::unordered_set<std::string> seen_matches_;
};

}  // namespace star::baseline

#endif  // STAR_BASELINE_GRAPH_TA_H_
