#ifndef STAR_BASELINE_BELIEF_PROPAGATION_H_
#define STAR_BASELINE_BELIEF_PROPAGATION_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "core/match.h"
#include "scoring/query_scorer.h"

namespace star::baseline {

/// Options for the BP baseline.
struct BpOptions {
  /// Loopy iterations for cyclic queries (trees use exact DP instead).
  size_t max_iterations = 25;
  /// Candidates per variable (largest-F_N prefix of the candidate list);
  /// 0 = unlimited.
  size_t domain_cap = 0;
  /// Wall-clock cap in ms (0 = none): TopK returns best-effort results and
  /// sets stats().timed_out when exceeded (benchmark harness safety).
  double budget_ms = 0.0;
};

struct BpStats {
  size_t map_calls = 0;
  size_t message_updates = 0;
  bool timed_out = false;
};

/// The belief-propagation top-k matcher used as the second baseline
/// ([2], [14] in the paper): query nodes become random variables over
/// their candidate matches, F_N the unary and F_E the pairwise potential,
/// and top-k matching becomes (k-best) MAP inference by max-sum message
/// passing.
///
/// Exact for acyclic queries (a rooted dynamic program computes the MAP;
/// Lawler partitioning on top yields the exact k best, as the paper notes
/// BP does for acyclic queries). For cyclic queries, loopy max-sum with a
/// greedy conditioned decode — no completeness guarantee, also matching
/// the paper's characterization.
///
/// Note: like the paper's BP, the model is pairwise and cannot express the
/// global one-to-one constraint; candidate assignments violating
/// injectivity are filtered after decoding when the config enforces it.
class BeliefPropagation {
 public:
  BeliefPropagation(scoring::QueryScorer& scorer, BpOptions options)
      : scorer_(scorer), options_(options) {}

  /// Top-k matches in descending score order.
  std::vector<core::GraphMatch> TopK(size_t k);

  const BpStats& stats() const { return stats_; }

 private:
  struct Constraints {
    // forced[u] >= 0 pins variable u to domain index forced[u];
    // forbidden[u] is a bitmap over domain indices.
    std::vector<int> forced;
    std::vector<std::vector<bool>> forbidden;
  };

  /// MAP assignment (domain indices per variable) under constraints, or
  /// nullopt if infeasible. Exact on trees; loopy approximation otherwise.
  std::optional<std::pair<std::vector<int>, double>> Map(
      const Constraints& constraints);

  std::optional<std::pair<std::vector<int>, double>> MapTree(
      const Constraints& constraints);
  std::optional<std::pair<std::vector<int>, double>> MapLoopy(
      const Constraints& constraints);

  /// Eq. 2 score of a domain-index assignment (-inf if an edge fails).
  double ScoreAssignment(const std::vector<int>& assignment) const;

  void BuildDomains();

  scoring::QueryScorer& scorer_;
  BpOptions options_;
  BpStats stats_;
  // domains_[u][j] = (node, F_N) of the j-th candidate of variable u.
  std::vector<std::vector<scoring::ScoredCandidate>> domains_;
};

}  // namespace star::baseline

#endif  // STAR_BASELINE_BELIEF_PROPAGATION_H_
