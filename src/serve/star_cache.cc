#include "serve/star_cache.h"

#include <utility>

namespace star::serve {

std::shared_ptr<const std::vector<scoring::ScoredCandidate>>
StarCache::LookupCandidates(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto* entry = candidates_.Touch(key)) {
    ++stats_.candidate_hits;
    return entry->second;
  }
  ++stats_.candidate_misses;
  return nullptr;
}

void StarCache::InsertCandidates(std::string_view key,
                                 std::vector<scoring::ScoredCandidate> list,
                                 uint64_t generation) {
  if (candidate_capacity_ == 0) return;
  auto value = std::make_shared<const std::vector<scoring::ScoredCandidate>>(
      std::move(list));
  std::lock_guard<std::mutex> lock(mu_);
  if (generation != generation_) {
    ++stats_.stale_drops;
    return;
  }
  if (auto* entry = candidates_.Touch(key)) {
    // Candidate lists are pure functions of the key; a re-insert just
    // refreshes recency (the value is necessarily identical).
    entry->second = std::move(value);
    return;
  }
  candidates_.InsertFront(key, std::move(value), candidate_capacity_,
                          &stats_.candidate_evictions);
  ++stats_.candidate_insertions;
}

std::optional<core::StarTopList> StarCache::LookupStarTopList(
    std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto* entry = toplists_.Touch(key)) {
    ++stats_.toplist_hits;
    return entry->second;
  }
  ++stats_.toplist_misses;
  return std::nullopt;
}

void StarCache::InsertStarTopList(std::string_view key,
                                  std::vector<core::StarMatch> matches,
                                  std::vector<double> bounds, bool exhausted,
                                  uint64_t generation) {
  if (toplist_capacity_ == 0) return;
  // A recording whose bounds are misaligned with its matches can never
  // replay faithfully; refuse it outright.
  if (bounds.size() != matches.size() + 1) return;
  core::StarTopList value;
  const size_t depth = matches.size();
  value.matches = std::make_shared<const std::vector<core::StarMatch>>(
      std::move(matches));
  value.bounds =
      std::make_shared<const std::vector<double>>(std::move(bounds));
  value.exhausted = exhausted;
  std::lock_guard<std::mutex> lock(mu_);
  if (generation != generation_) {
    ++stats_.stale_drops;
    return;
  }
  if (auto* entry = toplists_.Touch(key)) {
    const core::StarTopList& old = entry->second;
    const size_t old_depth = old.matches ? old.matches->size() : 0;
    const bool deeper = depth > old_depth ||
                        (depth == old_depth && exhausted && !old.exhausted);
    if (deeper) entry->second = std::move(value);
    return;  // Touch already refreshed recency
  }
  toplists_.InsertFront(key, std::move(value), toplist_capacity_,
                        &stats_.toplist_evictions);
  ++stats_.toplist_insertions;
}

}  // namespace star::serve
