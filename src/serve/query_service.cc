#include "serve/query_service.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/thread_pool.h"
#include "query/query_canonical.h"

namespace star::serve {

namespace {

// Key-segment separator, below any canonical-signature byte's meaning.
constexpr char kSep = '\x1d';

void AppendU64(std::string& s, uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  s += buf;
  s += kSep;
}

// Bit-exact double encoding: two configs key equal iff every scoring
// parameter is the identical double, with no decimal round-trip fuzz.
void AppendDouble(std::string& s, double d) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  AppendU64(s, bits);
}

/// Serializes every StarOptions field that can change results. `threads`
/// and `use_scoring_kernel` are deliberately excluded: both carry a
/// bit-identity contract (DESIGN.md "Threading model" / "Scoring kernel"),
/// so results are interchangeable across their settings.
std::string ConfigKey(const core::StarOptions& o) {
  std::string s;
  AppendU64(s, static_cast<uint64_t>(o.strategy));
  AppendDouble(s, o.match.node_threshold);
  AppendDouble(s, o.match.edge_threshold);
  AppendDouble(s, o.match.lambda);
  AppendU64(s, static_cast<uint64_t>(o.match.d));
  AppendU64(s, o.match.max_candidates);
  AppendU64(s, o.match.max_retrieval);
  AppendDouble(s, o.match.wildcard_node_score);
  AppendU64(s, o.match.enforce_injective ? 1 : 0);
  AppendU64(s, static_cast<uint64_t>(o.decomposition.strategy));
  AppendDouble(s, o.decomposition.lambda_tradeoff);
  AppendU64(s, o.decomposition.sample_size);
  AppendDouble(s, o.decomposition.connectivity_p);
  AppendU64(s, o.decomposition.seed);
  AppendU64(s, static_cast<uint64_t>(o.decomposition.max_enumeration_nodes));
  AppendDouble(s, o.alpha);
  return s;
}

}  // namespace

QueryService::QueryService(const graph::KnowledgeGraph& g,
                           const text::SimilarityEnsemble& ensemble,
                           const graph::LabelIndex* index,
                           ServiceOptions options)
    : graph_(g),
      ensemble_(ensemble),
      index_(index),
      options_([&options] {
        options.max_inflight = std::max(1, options.max_inflight);
        return std::move(options);
      }()),
      config_key_(ConfigKey(options_.star)),
      cache_(options_.cache_capacity) {
  // Workers chain through the queue, so max_inflight pool threads suffice
  // for the serving layer itself (engine-internal ParallelFor calls nested
  // inside a worker degrade to inline-serial by design).
  ThreadPool::Global().EnsureWorkers(options_.max_inflight);
}

QueryService::~QueryService() {
  std::unique_lock<std::mutex> lock(mu_);
  accepting_ = false;
  // Workers drain the queue before retiring, so inflight_ == 0 implies the
  // queue is empty and every admitted promise has been fulfilled.
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

std::string QueryService::CacheKey(const query::QueryGraph& q,
                                   size_t k) const {
  std::string key = query::CanonicalizeQuery(q).signature;
  key += kSep;
  key += config_key_;
  AppendU64(key, k);
  return key;
}

std::future<QueryResponse> QueryService::Submit(QueryRequest req) {
  if (req.deadline.infinite() && options_.default_timeout_ms > 0) {
    req.deadline = Deadline::AfterMillis(options_.default_timeout_ms);
  }
  auto p = std::make_shared<Pending>(std::move(req));
  std::future<QueryResponse> fut = p->promise.get_future();

  Status reject = Status::Ok();
  if (p->req.k == 0) {
    reject = Status::InvalidArgument("k must be >= 1");
  } else if (p->req.query.node_count() == 0) {
    reject = Status::InvalidArgument("query has no nodes");
  } else if (p->req.query.node_count() > 64) {
    reject = Status::InvalidArgument(
        "query exceeds 64 nodes (rank-join coverage mask limit)");
  }

  bool dispatch = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (!reject.ok()) {
      ++stats_.rejected_invalid;
    } else if (!accepting_) {
      reject = Status::Overloaded("service is shutting down");
      ++stats_.rejected_overload;
    } else if (inflight_ < options_.max_inflight) {
      ++inflight_;
      dispatch = true;
    } else if (queue_.size() < options_.max_queue) {
      queue_.push_back(p);
    } else {
      reject = Status::Overloaded("admission queue full");
      ++stats_.rejected_overload;
    }
  }

  if (!reject.ok()) {
    QueryResponse resp;
    resp.status = std::move(reject);
    p->promise.set_value(std::move(resp));
  } else if (dispatch) {
    ThreadPool::Global().Submit(
        [this, p]() mutable { WorkerLoop(std::move(p)); });
  }
  return fut;
}

QueryResponse QueryService::Execute(QueryRequest req) {
  return Submit(std::move(req)).get();
}

void QueryService::InvalidateCache() { cache_.Invalidate(); }

void QueryService::WorkerLoop(std::shared_ptr<Pending> p) {
  for (;;) {
    Finish(*p, Run(*p));
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) {
      if (--inflight_ == 0) idle_cv_.notify_all();
      return;
    }
    p = std::move(queue_.front());
    queue_.pop_front();
  }
}

QueryResponse QueryService::Run(Pending& p) {
  QueryResponse resp;
  resp.queue_ms = p.queued.ElapsedMillis();
  if (options_.before_execute) options_.before_execute();

  // A request that expired while queued is answered without touching the
  // graph: resp.framework stays zeroed (no candidate retrieval, no scan).
  CancelChecker entry_check(&p.cancel);
  if (entry_check.ShouldStop()) {
    resp.status = Status::DeadlineExceeded("deadline expired while queued");
    resp.partial = true;
    return resp;
  }

  WallTimer exec;
  const bool use_cache = options_.cache_capacity > 0 && p.req.use_cache;
  std::string key;
  uint64_t generation = 0;
  if (use_cache) {
    key = CacheKey(p.req.query, p.req.k);
    generation = cache_.generation();
    if (auto hit = cache_.Lookup(key)) {
      resp.matches = *std::move(hit);
      resp.cache_hit = true;
      resp.status = Status::Ok();
      resp.exec_ms = exec.ElapsedMillis();
      return resp;
    }
  }

  core::StarFramework fw(graph_, ensemble_, index_, options_.star);
  resp.matches = fw.TopK(p.req.query, p.req.k, &p.cancel);
  resp.exec_ms = exec.ElapsedMillis();
  resp.framework = fw.last_stats();
  // The engine's hot-loop checkers amortize clock reads (64-call stride),
  // so a deadline can expire mid-run, truncate work, and still leave
  // FrameworkStats.cancelled unset. Cancellation is monotone, so one
  // unamortized ShouldStop here catches every such truncation before the
  // result is declared complete — in particular, a possibly-truncated
  // result must never be inserted into the cache, where it would be served
  // as the definitive answer for its key until eviction.
  if (resp.framework.cancelled || p.cancel.ShouldStop()) {
    resp.partial = true;
    resp.status = Status::DeadlineExceeded(
        "deadline expired during execution; matches are a top-k prefix");
  } else {
    resp.status = Status::Ok();
    // Only complete answers enter the cache, and only if no invalidation
    // happened since the lookup — hits stay bitwise identical to fresh runs.
    if (use_cache) cache_.Insert(key, resp.matches, generation);
  }
  return resp;
}

void QueryService::Finish(Pending& p, QueryResponse resp) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (resp.status.code()) {
      case StatusCode::kOk:
        ++stats_.completed;
        break;
      case StatusCode::kDeadlineExceeded:
        ++stats_.deadline_exceeded;
        break;
      default:
        break;
    }
    stats_.total_queue_ms += resp.queue_ms;
    stats_.total_exec_ms += resp.exec_ms;
    stats_.max_queue_ms = std::max(stats_.max_queue_ms, resp.queue_ms);
    stats_.max_exec_ms = std::max(stats_.max_exec_ms, resp.exec_ms);
  }
  p.promise.set_value(std::move(resp));
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
  }
  const CacheStats c = cache_.stats();
  s.cache_hits = c.hits;
  s.cache_misses = c.misses;
  return s;
}

}  // namespace star::serve
