#include "serve/query_service.h"

#include <algorithm>
#include <cstdio>

#include "common/arena.h"
#include "common/thread_pool.h"
#include "query/query_canonical.h"

namespace star::serve {

namespace {

// Key-segment separator, below any canonical-signature byte's meaning.
constexpr char kSep = '\x1d';

void AppendU64(std::string& s, uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  s += buf;
  s += kSep;
}

}  // namespace

QueryService::QueryService(const graph::KnowledgeGraph& g,
                           const text::SimilarityEnsemble& ensemble,
                           const graph::LabelIndex* index,
                           ServiceOptions options)
    : graph_(g),
      ensemble_(ensemble),
      index_(index),
      options_([&options] {
        options.max_inflight = std::max(1, options.max_inflight);
        options.star.reuse = nullptr;  // the service wires its own cache
        return std::move(options);
      }()),
      config_key_(core::StarOptionsFingerprint(options_.star,
                                               index_ != nullptr)),
      cache_(options_.cache_capacity),
      star_cache_(options_.star_cache_capacity,
                  options_.star_cache_capacity) {
  if (options_.shards >= 2) {
    shard::ShardCluster::Options co;
    co.partition.policy = options_.partition_policy;
    co.partition.shards = options_.shards;
    // Halo must cover the deepest traversal any request performs; the
    // service's match semantics are fixed for its lifetime, so d is it.
    co.partition.halo_depth = std::max(1, options_.star.match.d);
    cluster_ = std::make_unique<shard::ShardCluster>(graph_, ensemble_,
                                                     index_, std::move(co));
  }
  // Workers chain through the queue, so max_inflight pool threads suffice
  // for the serving layer itself (engine-internal ParallelFor calls nested
  // inside a worker degrade to inline-serial by design).
  ThreadPool::Global().EnsureWorkers(options_.max_inflight);
}

QueryService::~QueryService() {
  std::unique_lock<std::mutex> lock(mu_);
  accepting_ = false;
  // Workers drain the queue before retiring, so inflight_ == 0 implies the
  // queue is empty and every admitted promise has been fulfilled. Flights
  // settle when their leader does, so no follower outlives the wait either.
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

std::string QueryService::KeyFromSignature(std::string signature,
                                           size_t k) const {
  std::string key = std::move(signature);
  key += kSep;
  key += config_key_;
  AppendU64(key, k);
  return key;
}

std::string QueryService::CacheKey(const query::QueryGraph& q,
                                   size_t k) const {
  return KeyFromSignature(query::CanonicalizeQuery(q).signature, k);
}

std::vector<core::GraphMatch> QueryService::RemapMatches(
    const std::vector<core::GraphMatch>& matches,
    const std::vector<int>& from_rank, const std::vector<int>& to_rank) {
  if (from_rank == to_rank) return matches;  // verbatim replay: plain copy
  const size_t n = from_rank.size();
  // Two hops through canonical rank space: canon[r] is the data node the
  // source match assigned to the query node of rank r; the caller's node u
  // then reads canon[to_rank[u]]. Equal signatures guarantee both rank
  // vectors are permutations of [0, n) over structurally identical nodes,
  // so the remapped mapping is a match of the caller's query with the
  // same (bitwise) score.
  std::vector<graph::NodeId> canon(n);
  std::vector<core::GraphMatch> out;
  out.reserve(matches.size());
  for (const core::GraphMatch& m : matches) {
    core::GraphMatch r = m;
    for (size_t u = 0; u < n; ++u) {
      canon[static_cast<size_t>(from_rank[u])] = m.mapping[u];
    }
    for (size_t u = 0; u < n; ++u) {
      r.mapping[u] = canon[static_cast<size_t>(to_rank[u])];
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::future<QueryResponse> QueryService::Submit(QueryRequest req) {
  if (req.deadline.infinite() && options_.default_timeout_ms > 0) {
    req.deadline = Deadline::AfterMillis(options_.default_timeout_ms);
  }
  // Typo-tolerant rewrite BEFORE canonicalization: the rewritten query is
  // what gets keyed, coalesced, executed and certified, so corrected
  // requests share cache entries and flights with their verbatim twins.
  std::vector<LabelRewrite> rewrites;
  if (req.fuzzy_labels && index_ != nullptr) {
    rewrites = RewriteFuzzyLabels(*index_, &req.query);
  }
  auto p = std::make_shared<Pending>(std::move(req));
  p->rewrites = std::move(rewrites);
  std::future<QueryResponse> fut = p->promise.get_future();

  Status reject = Status::Ok();
  if (p->req.k == 0) {
    reject = Status::InvalidArgument("k must be >= 1");
  } else if (p->req.query.node_count() == 0) {
    reject = Status::InvalidArgument("query has no nodes");
  } else if (p->req.query.node_count() > 64) {
    reject = Status::InvalidArgument(
        "query exceeds 64 nodes (rank-join coverage mask limit)");
  }

  // Normalized key, computed outside the lock (canonicalization walks the
  // query). Shared by the result cache and the coalescing map; a cache
  // opt-out also opts out of coalescing (such callers want an execution of
  // their own).
  const bool keyed = reject.ok() && p->req.use_cache &&
                     (options_.cache_capacity > 0 || options_.enable_coalescing);
  if (keyed) {
    query::CanonicalQuery canon = query::CanonicalizeQuery(p->req.query);
    p->key = KeyFromSignature(std::move(canon.signature), p->req.k);
    // Kept alongside the key: a hit (or coalesced flight) sharing this key
    // may have run an equivalent reordering of this query, and delivery
    // remaps its mappings through these ranks into this caller's order.
    p->node_rank = std::move(canon.node_rank);
  }

  bool dispatch = false;
  bool coalesced = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (!reject.ok()) {
      ++stats_.rejected_invalid;
    } else if (!accepting_) {
      reject = Status::Overloaded("service is shutting down");
      ++stats_.rejected_overload;
    } else {
      // Accuracy-first shedding: the level is fixed by queue occupancy at
      // admission, BEFORE the key is used for anything — it is part of
      // the key, so cache entries and coalesced flights never cross
      // levels (a degraded answer cannot satisfy a stricter request).
      p->degrade_level = ChooseDegradationLevel(options_.degrade,
                                                queue_.size(),
                                                options_.max_queue);
      if (keyed && p->degrade_level > 0) {
        p->key += kSep;
        p->key += static_cast<char>('0' + p->degrade_level);
      }
      if (!p->rewrites.empty()) ++stats_.fuzzy_rewritten;
      if (options_.enable_coalescing && keyed) {
        const auto it = flights_.find(p->key);
        if (it != flights_.end()) {
          // Identical request already in flight: ride along. Consumes no
          // worker slot and no queue capacity.
          it->second->followers.push_back(p);
          ++stats_.coalesced_followers;
          coalesced = true;
        }
      }
      if (!coalesced) {
        bool admitted = false;
        if (inflight_ < options_.max_inflight) {
          ++inflight_;
          dispatch = true;
          admitted = true;
        } else if (queue_.size() < options_.max_queue) {
          queue_.push_back(p);
          admitted = true;
        } else {
          reject = Status::Overloaded("admission queue full");
          ++stats_.rejected_overload;
        }
        if (admitted) {
          ++stats_.degraded_at_level[static_cast<size_t>(p->degrade_level)];
          if (options_.enable_coalescing && keyed) {
            p->flight = std::make_shared<Flight>();
            flights_.emplace(p->key, p->flight);
          }
        }
      }
    }
  }

  if (!reject.ok()) {
    QueryResponse resp;
    resp.status = std::move(reject);
    p->promise.set_value(std::move(resp));
  } else if (dispatch) {
    ThreadPool::Global().Submit(
        [this, p]() mutable { WorkerLoop(std::move(p)); });
  }
  return fut;
}

QueryResponse QueryService::Execute(QueryRequest req) {
  return Submit(std::move(req)).get();
}

void QueryService::InvalidateCache() {
  cache_.Invalidate();
  star_cache_.Invalidate();
}

void QueryService::WorkerLoop(std::shared_ptr<Pending> p) {
  for (;;) {
    QueryResponse resp = Run(*p);
    if (auto promoted = FinishAndSettle(std::move(p), std::move(resp))) {
      // A follower inherited the flight after the leader's deadline
      // expired; run it on this worker's slot before draining the queue.
      p = std::move(promoted);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) {
      if (--inflight_ == 0) idle_cv_.notify_all();
      return;
    }
    p = std::move(queue_.front());
    queue_.pop_front();
  }
}

QueryResponse QueryService::Run(Pending& p) {
  QueryResponse resp;
  resp.queue_ms = p.queued.ElapsedMillis();
  resp.rewrites = p.rewrites;
  resp.certificate.degradation_level = p.degrade_level;
  if (options_.before_execute) options_.before_execute();

  // A request that expired while queued is answered without touching the
  // graph: resp.framework stays zeroed (no candidate retrieval, no scan)
  // and the default certificate (+inf bound, empty prefix) honestly
  // claims nothing.
  CancelChecker entry_check(&p.cancel);
  if (entry_check.ShouldStop()) {
    resp.status = Status::DeadlineExceeded("deadline expired while queued");
    resp.partial = true;
    return resp;
  }

  WallTimer exec;
  const bool use_cache = options_.cache_capacity > 0 && p.req.use_cache;
  uint64_t generation = 0;
  if (use_cache) {
    generation = cache_.generation();
    if (auto hit = cache_.Lookup(p.key)) {
      // Copy (and, when the entry was inserted by a reordered-equivalent
      // query, remap into this caller's node order) outside the cache
      // mutex. Verbatim replays take the plain-copy fast path inside.
      resp.matches = RemapMatches(hit->matches, hit->node_rank, p.node_rank);
      resp.cache_hit = true;
      resp.certificate = hit->certificate;
      resp.status = Status::Ok();
      resp.exec_ms = exec.ElapsedMillis();
      return resp;
    }
  }

  core::StarOptions star_options = options_.star;
  if (options_.star_cache_capacity > 0 && p.req.use_cache) {
    star_options.reuse = &star_cache_;
  }
  // Degraded execution: every knob ApplyDegradation touches is part of
  // StarOptionsFingerprint, so the star-level reuse cache segregates
  // degraded prefixes/lists from nominal ones automatically.
  ApplyDegradation(options_.degrade, p.degrade_level, &star_options);
  // Per-worker request arena: pool threads persist across requests, so
  // after warm-up the largest block absorbs each request's transient
  // state (candidate lists, traversal frontiers, the rank-join heap) with
  // zero allocation churn. Reset ONCE per request, before the query runs;
  // everything the framework allocated from it last request is dead by
  // then (responses own plain heap copies).
  static thread_local common::MonotonicArena arena;
  arena.Reset();
  if (cluster_ != nullptr) {
    // Sharded backend: same inputs, same caches, bitwise-identical output.
    shard::ShardEngine::Options eo;
    eo.star = star_options;
    shard::ShardEngine engine(*cluster_, std::move(eo));
    resp.matches = engine.TopK(p.req.query, p.req.k, &p.cancel, &arena);
    resp.exec_ms = exec.ElapsedMillis();
    resp.framework = engine.last_stats();
  } else {
    core::StarFramework fw(graph_, ensemble_, index_, star_options);
    resp.matches = fw.TopK(p.req.query, p.req.k, &p.cancel, &arena);
    resp.exec_ms = exec.ElapsedMillis();
    resp.framework = fw.last_stats();
  }
  // The engine's hot-loop checkers amortize clock reads (64-call stride),
  // so a deadline can expire mid-run, truncate work, and still leave
  // FrameworkStats.cancelled unset. Cancellation is monotone, so one
  // unamortized ShouldStop here catches every such truncation before the
  // result is declared complete — in particular, a possibly-truncated
  // result must never be inserted into the cache, where it would be served
  // as the definitive answer for its key until eviction.
  const bool truncated = resp.framework.cancelled || p.cancel.ShouldStop();
  if (truncated && !resp.framework.cancelled) {
    // The late expiry above is exactly a cancellation the engine missed;
    // make the stats (and the certificate derived from them) say so.
    resp.framework.cancelled = true;
  }
  // Every executed response — complete, degraded, or deadline-truncated —
  // carries its certified quality statement (serve/degrade.h).
  resp.certificate =
      BuildCertificate(p.req.query, options_.star, star_options,
                       p.degrade_level, resp.framework, resp.matches);
  if (truncated) {
    resp.partial = true;
    resp.status = Status::DeadlineExceeded(
        "deadline expired during execution; matches are a top-k prefix");
  } else {
    resp.status = Status::Ok();
    // Only complete answers enter the cache, and only if no invalidation
    // happened since the lookup — hits stay bitwise identical to fresh
    // runs, certificate included (the key carries the degradation level).
    if (use_cache) {
      cache_.Insert(p.key, resp.matches, p.node_rank, generation,
                    resp.certificate);
    }
  }
  return resp;
}

void QueryService::RecordLocked(const QueryResponse& resp) {
  switch (resp.status.code()) {
    case StatusCode::kOk:
      ++stats_.completed;
      break;
    case StatusCode::kDeadlineExceeded:
      ++stats_.deadline_exceeded;
      break;
    default:
      break;
  }
  stats_.total_queue_ms += resp.queue_ms;
  stats_.total_exec_ms += resp.exec_ms;
  stats_.max_queue_ms = std::max(stats_.max_queue_ms, resp.queue_ms);
  stats_.max_exec_ms = std::max(stats_.max_exec_ms, resp.exec_ms);
  if (resp.framework.shard.shards > 0) {
    ++stats_.sharded_queries;
    stats_.shard_pulls += resp.framework.shard.total_pulls;
    stats_.shard_boundary_pivot_hits += resp.framework.shard.boundary_pivot_hits;
    stats_.shard_coordinator_ms += resp.framework.shard.coordinator_wall_ms;
  }
}

std::shared_ptr<QueryService::Pending> QueryService::FinishAndSettle(
    std::shared_ptr<Pending> p, QueryResponse resp) {
  // Followers to answer now; on leader failure these are the expired ones.
  std::vector<std::shared_ptr<Pending>> deliver;
  std::shared_ptr<Pending> promoted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RecordLocked(resp);
    if (p->flight != nullptr) {
      std::shared_ptr<Flight> flight = std::move(p->flight);
      if (resp.status.ok()) {
        deliver = std::move(flight->followers);
        flights_.erase(p->key);
      } else {
        // The leader's own deadline expired. Its partial answer reflects
        // the LEADER's budget, not the followers'; promote the first
        // still-live follower to re-run under its own deadline and answer
        // only the followers that are themselves already expired.
        std::vector<std::shared_ptr<Pending>> keep;
        for (auto& f : flight->followers) {
          if (promoted == nullptr && !f->cancel.ShouldStop()) {
            promoted = std::move(f);
          } else if (f->cancel.ShouldStop()) {
            deliver.push_back(std::move(f));
          } else {
            keep.push_back(std::move(f));
          }
        }
        if (promoted != nullptr) {
          flight->followers = std::move(keep);
          promoted->flight = std::move(flight);  // same key → map unchanged
          ++stats_.coalesce_promotions;
        } else {
          flights_.erase(p->key);
        }
      }
    }
  }

  const bool leader_ok = resp.status.ok();
  std::vector<QueryResponse> follower_resps;
  follower_resps.reserve(deliver.size());
  for (const auto& f : deliver) {
    QueryResponse fr;
    fr.queue_ms = f->queued.ElapsedMillis();
    // A follower that outlived its own deadline while riding along gets
    // the honest answer: nothing was computed on its behalf in time.
    if (leader_ok && !f->cancel.ShouldStop()) {
      fr.status = Status::Ok();
      // Copied — and remapped into the follower's node order when it is a
      // reordered equivalent of the leader — outside the service mutex.
      // resp.matches is in the LEADER's node order (fresh runs trivially;
      // cache hits were remapped to it in Run).
      fr.matches = RemapMatches(resp.matches, p->node_rank, f->node_rank);
      fr.cache_hit = resp.cache_hit;
      fr.coalesced = true;
      // Same key => same degradation level: the leader's certificate
      // describes the follower's answer verbatim (score-based, remap-proof).
      fr.certificate = resp.certificate;
      fr.rewrites = f->rewrites;
    } else {
      fr.status = Status::DeadlineExceeded(
          "deadline expired while coalesced with an identical request");
      fr.partial = true;
    }
    follower_resps.push_back(std::move(fr));
  }
  if (!deliver.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const QueryResponse& fr : follower_resps) RecordLocked(fr);
  }

  p->promise.set_value(std::move(resp));
  for (size_t i = 0; i < deliver.size(); ++i) {
    deliver[i]->promise.set_value(std::move(follower_resps[i]));
  }
  return promoted;
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
  }
  const CacheStats c = cache_.stats();
  s.cache_hits = c.hits;
  s.cache_misses = c.misses;
  return s;
}

}  // namespace star::serve
