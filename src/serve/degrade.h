#ifndef STAR_SERVE_DEGRADE_H_
#define STAR_SERVE_DEGRADE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/certificate.h"
#include "core/framework.h"
#include "core/match.h"
#include "query/query_graph.h"

namespace star::serve {

/// Accuracy-first load shedding (DESIGN.md "Graceful degradation"): under
/// queue pressure the service trades answer quality for admission capacity
/// BEFORE it sheds requests. Each level composes the previous one's knobs:
///
///   level 1  candidate cutoff tightened to l1_max_candidates
///   level 2  + deterministic seeded pool sampling at l2_sample_rate
///   level 3  + edge-to-path bound reduced to d = 1
///
/// kOverloaded remains only for an absolutely full queue — a saturated
/// service first answers everyone approximately (each answer carrying a
/// QualityCertificate that says exactly how approximate), and rejects only
/// what even the deepest level cannot absorb.
struct DegradePolicy {
  /// Master switch; false preserves the historical reject-only behavior.
  bool enable = false;

  /// Queue-occupancy fractions (of ServiceOptions::max_queue) at which
  /// each level engages. Must be non-decreasing.
  double l1_queue_frac = 0.50;
  double l2_queue_frac = 0.75;
  double l3_queue_frac = 0.90;

  /// Level-1 candidate cutoff (per query node). 0 disables the tightening
  /// (level 1 then only marks the response as degraded).
  size_t l1_max_candidates = 64;

  /// Level-2 retrieval-pool keep probability (see MatchConfig::sample_rate).
  double l2_sample_rate = 0.5;

  /// Seed of the deterministic sampling predicate. Fixed per service so
  /// identical degraded requests stay coalescable and cacheable.
  uint64_t sample_seed = 0x5eedf00dULL;
};

/// Deepest rung of the shedding ladder.
inline constexpr int kMaxDegradationLevel = 3;

/// The degradation level a request admitted at `queue_depth` (of
/// `max_queue` capacity) executes at. 0 when shedding is disabled or the
/// queue is shallow; monotone in queue_depth.
int ChooseDegradationLevel(const DegradePolicy& policy, size_t queue_depth,
                           size_t max_queue);

/// Applies `level`'s knobs to `star` (cumulative: level 3 includes 1 and
/// 2). Level 0 is a no-op. Every touched knob is part of
/// StarOptionsFingerprint, so reuse/star caches segregate degraded state
/// automatically.
void ApplyDegradation(const DegradePolicy& policy, int level,
                      core::StarOptions* star);

/// Derives the response's QualityCertificate from a finished run.
///
/// `nominal` is the service's configured StarOptions (the semantics the
/// certificate speaks about), `effective` the possibly-degraded options
/// the run actually used, and `stats`/`matches` that run's outputs. The
/// certified bound combines two ingredients:
///
///  - the engine's residual bound (FrameworkStats::residual_bound): what
///    any unemitted match of the EFFECTIVE search space can score;
///  - the degradation drop bound: what any nominal-valid match excluded
///    from the effective search space can score. A match excluded by the
///    tightened cutoff maps some node to a candidate at or below that
///    node's cut boundary (lists are score-descending, and the tightened
///    list is a prefix of the nominal one); a match excluded by sampling
///    or by reduced d is only capped by the perfect per-node scores.
///
/// The guaranteed prefix is non-zero only where bitwise equality with the
/// nominal run is provable: always for level 0 (the engine's ordered-
/// prefix contract), and for degraded runs only on structurally-forced
/// single-star queries (q.IsStar(): the decomposition cannot depend on
/// candidate lists, so shared matches score bit-identically) with
/// unreduced d — there the leading strictly-descending run of returned
/// scores above the bound is provably the exact nominal prefix. Strict
/// descent matters: an equal-score tie could legally be ordered either
/// way by the nominal run.
core::QualityCertificate BuildCertificate(
    const query::QueryGraph& q, const core::StarOptions& nominal,
    const core::StarOptions& effective, int level,
    const core::FrameworkStats& stats,
    const std::vector<core::GraphMatch>& matches);

}  // namespace star::serve

#endif  // STAR_SERVE_DEGRADE_H_
