#include "serve/query_rewrite.h"

#include <utility>

#include "common/string_util.h"

namespace star::serve {

std::vector<LabelRewrite> RewriteFuzzyLabels(const graph::LabelIndex& index,
                                             query::QueryGraph* q,
                                             double min_overlap) {
  std::vector<LabelRewrite> rewrites;
  std::string low;
  std::vector<std::string> tokens;
  for (int u = 0; u < q->node_count(); ++u) {
    const query::QueryNode& node = q->node(u);
    if (node.wildcard || node.label.empty()) continue;
    ToLowerInto(node.label, &low);
    SplitTokensInto(low, &tokens);
    bool changed = false;
    for (std::string& tok : tokens) {
      if (tok.empty() || index.HasToken(tok)) continue;
      std::string best = index.BestFuzzyToken(tok, min_overlap);
      if (!best.empty() && best != tok) {
        tok = std::move(best);
        changed = true;
      }
    }
    if (!changed) continue;
    std::string rewritten = Join(tokens, " ");
    if (rewritten == node.label) continue;
    rewrites.push_back(LabelRewrite{u, node.label, rewritten});
    q->SetNodeLabel(u, std::move(rewritten));
  }
  return rewrites;
}

}  // namespace star::serve
