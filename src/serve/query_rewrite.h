#ifndef STAR_SERVE_QUERY_REWRITE_H_
#define STAR_SERVE_QUERY_REWRITE_H_

#include <string>
#include <vector>

#include "graph/label_index.h"
#include "query/query_graph.h"

namespace star::serve {

/// One node-label correction the typo-tolerant rewrite pass applied.
struct LabelRewrite {
  int node = -1;
  std::string from;  ///< the label as submitted
  std::string to;    ///< the label the query actually ran with
};

/// Typo-tolerant serving (opt-in via QueryRequest::fuzzy_labels): rewrites
/// each non-wildcard node label of `q` token by token, replacing every
/// token with no exact posting in `index` by its best trigram correction
/// (LabelIndex::BestFuzzyToken; tokens with no correction above the
/// overlap floor stay as submitted). Labels are lowercased/retokenized in
/// the index's own normalization, so an unchanged label can still be
/// rewritten to its normal form — a rewrite is only recorded when the
/// label text actually changed.
///
/// The rewritten query is an ordinary query: it is canonicalized, keyed,
/// cached, coalesced, degraded and certified exactly like a verbatim one
/// (the certificate then speaks about the REWRITTEN query's nominal
/// semantics). Deterministic: pure function of (index, q).
std::vector<LabelRewrite> RewriteFuzzyLabels(const graph::LabelIndex& index,
                                             query::QueryGraph* q,
                                             double min_overlap = 0.5);

}  // namespace star::serve

#endif  // STAR_SERVE_QUERY_REWRITE_H_
