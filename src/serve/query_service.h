#ifndef STAR_SERVE_QUERY_SERVICE_H_
#define STAR_SERVE_QUERY_SERVICE_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/certificate.h"
#include "core/framework.h"
#include "serve/degrade.h"
#include "serve/query_rewrite.h"
#include "serve/result_cache.h"
#include "serve/star_cache.h"
#include "shard/coordinator.h"
#include "shard/partitioner.h"

namespace star::serve {

struct ServiceOptions {
  /// Engine configuration shared by every request (fixed for the service's
  /// lifetime; it is part of the cache key contract).
  core::StarOptions star;

  /// Requests executing concurrently. Admission beyond this queues.
  int max_inflight = 4;

  /// Requests waiting for a worker. Admission beyond max_inflight +
  /// max_queue is rejected with kOverloaded — the queue is bounded so an
  /// overloaded service degrades by shedding load, not by growing latency
  /// without bound.
  size_t max_queue = 64;

  /// Result-cache entries (0 disables caching entirely).
  size_t cache_capacity = 128;

  /// Star-level reuse-cache entries per section (candidate lists and star
  /// top-lists; 0 disables). Unlike the result cache, this one pays off
  /// across DIFFERENT queries that share canonical stars or node shapes.
  /// The service overrides `star.reuse` to point at its own cache.
  size_t star_cache_capacity = 256;

  /// Single-flight request coalescing: a request whose normalized cache
  /// key matches one already executing attaches to that execution instead
  /// of running (or queueing) its own. Requires use_cache on the request.
  bool enable_coalescing = true;

  /// Deadline applied to requests that arrive without one, measured from
  /// admission (so it covers queue wait). 0 = no implicit deadline.
  double default_timeout_ms = 0.0;

  /// Test hook: runs on the worker thread immediately before each request
  /// executes (after dequeue, before the deadline checkpoint). Lets tests
  /// hold workers busy deterministically to exercise admission control.
  std::function<void()> before_execute;

  /// >= 2 enables the sharded scatter-gather backend: the graph is
  /// partitioned at construction (halo depth = star.match.d, so every
  /// query the service can run satisfies the halo invariant) and fresh
  /// executions go through shard::ShardEngine instead of StarFramework.
  /// Results — matches, score bits, tie order, cache interaction — are
  /// bitwise identical to the single-process backend. 0 or 1 = default
  /// single-process execution.
  size_t shards = 0;
  /// Node-ownership policy of the sharded backend's partition.
  shard::PartitionPolicy partition_policy = shard::PartitionPolicy::kHash;

  /// Accuracy-first load shedding (see serve/degrade.h): under queue
  /// pressure, admission picks a degradation level that trades answer
  /// quality for capacity before anything is rejected with kOverloaded.
  /// The chosen level is part of the request's cache/coalescing key, so
  /// degraded answers never serve stricter requests.
  DegradePolicy degrade;
};

struct QueryRequest {
  query::QueryGraph query;
  size_t k = 10;
  /// Infinite by default; the service substitutes default_timeout_ms.
  Deadline deadline;
  /// Per-request cache opt-out (e.g. for freshness-critical callers).
  bool use_cache = true;
  /// Opt-in typo tolerance: unknown label tokens are rewritten to their
  /// best trigram correction before the query is keyed and executed (see
  /// serve/query_rewrite.h). Applied corrections are reported in
  /// QueryResponse::rewrites. No-op without a label index.
  bool fuzzy_labels = false;
};

struct QueryResponse {
  /// Ok: `matches` is the exact top-k. DeadlineExceeded: `matches` is a
  /// correctly ordered prefix of it (possibly empty) and `partial` is set.
  /// Overloaded / InvalidArgument: rejected at admission, `matches` empty.
  Status status;
  std::vector<core::GraphMatch> matches;
  bool cache_hit = false;
  /// True when this response was copied from a coalesced leader's
  /// execution rather than a run (or cache lookup) of its own.
  bool coalesced = false;
  bool partial = false;
  /// Admission-to-execution wait (includes promise dispatch overhead).
  double queue_ms = 0.0;
  /// Execution wall time (cache lookup or fresh engine run).
  double exec_ms = 0.0;
  /// Engine diagnostics; zero-initialized unless a fresh execution ran
  /// (tests use pivot_candidates == 0 to prove an expired request did no
  /// candidate retrieval).
  core::FrameworkStats framework;
  /// Certified quality statement about `matches` relative to the
  /// service's NOMINAL configuration (serve/degrade.h): how long a prefix
  /// is provably the exact top-k prefix, and what any other valid match
  /// can still score. Present on every response that reached execution —
  /// complete, deadline-truncated, or degraded; the default (+inf bound,
  /// empty prefix) honestly describes a response that computed nothing.
  core::QualityCertificate certificate;
  /// Typo corrections applied before execution (QueryRequest::fuzzy_labels).
  std::vector<LabelRewrite> rewrites;
};

struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;          // OK responses (cache hits included)
  uint64_t rejected_overload = 0;  // kOverloaded at admission
  uint64_t rejected_invalid = 0;   // kInvalidArgument at admission
  uint64_t deadline_exceeded = 0;  // kDeadlineExceeded (queued or mid-run)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Requests answered by attaching to an identical in-flight execution.
  uint64_t coalesced_followers = 0;
  /// Admitted executions per shedding-ladder level (index = level; level
  /// 0 counts nominal admissions while shedding is enabled AND while it
  /// is off). Coalesced followers ride their leader's level and are not
  /// re-counted.
  std::array<uint64_t, kMaxDegradationLevel + 1> degraded_at_level{};
  /// Requests whose labels the fuzzy rewrite pass actually changed.
  uint64_t fuzzy_rewritten = 0;
  /// Followers promoted to leader after their leader's deadline expired.
  uint64_t coalesce_promotions = 0;
  double total_queue_ms = 0.0;
  double total_exec_ms = 0.0;
  double max_queue_ms = 0.0;
  double max_exec_ms = 0.0;

  /// Sharded-backend aggregates (all zero when ServiceOptions::shards < 2
  /// or every response came from a cache). Summed over fresh executions.
  uint64_t sharded_queries = 0;
  uint64_t shard_pulls = 0;
  uint64_t shard_boundary_pivot_hits = 0;
  double shard_coordinator_ms = 0.0;

  double cache_hit_rate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

/// A concurrent query-serving front end over StarFramework: owns no graph
/// data itself but holds warm references to the shared read-only state
/// (graph, similarity ensemble, label index) and serves many clients on
/// the process-wide thread pool.
///
/// Guarantees:
///  - Admission control: at most max_inflight requests execute at once and
///    at most max_queue wait; everything beyond that is rejected
///    *synchronously* with kOverloaded (the returned future is already
///    ready — no hidden unbounded queue).
///  - Deadlines: each request's deadline is threaded into every engine hot
///    loop as a cooperative cancellation token. An expired request returns
///    kDeadlineExceeded with whatever prefix of the top-k was already
///    emitted; a request that expires while queued returns promptly
///    without touching the graph.
///  - Result cache: normalized-query LRU keyed by the canonical query
///    signature (insertion-order insensitive), the matching semantics, and
///    k. Hits are bitwise identical to fresh execution. Because the key is
///    insertion-order insensitive, a hit (or a coalesced flight) may be
///    served from an *equivalent reordering* of the caller's query; each
///    cache entry therefore stores the inserter's canonical node ranks,
///    and hit mappings are remapped into the caller's node order before
///    delivery (scores are untouched — they are node-order invariant).
///    InvalidateCache() bumps a generation counter so in-flight stale
///    results never land.
///  - Star-level reuse: fresh executions run against a shared StarCache of
///    canonical-star stream prefixes and per-node candidate lists, so
///    DIFFERENT queries that overlap in template structure skip the
///    overlapping work. Warm results stay bitwise identical to cold ones.
///  - Single-flight coalescing: duplicate requests (same normalized cache
///    key) attach to the in-flight leader and receive copies of its
///    result — N identical concurrent requests cost one execution. A
///    follower whose own deadline expires is answered kDeadlineExceeded at
///    delivery without detaching the rest; if the LEADER's deadline
///    expires, a live follower is promoted and re-runs (its own deadline
///    governs), so one short-deadline client can't poison the flight.
///
/// Thread safety: all public methods are safe to call from any thread.
/// The referenced graph/ensemble/index must outlive the service and stay
/// unmodified while it serves (matching StarFramework's contract).
class QueryService {
 public:
  QueryService(const graph::KnowledgeGraph& g,
               const text::SimilarityEnsemble& ensemble,
               const graph::LabelIndex* index, ServiceOptions options);

  /// Blocks until every admitted request has completed. New submissions
  /// are rejected with kOverloaded during shutdown.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits (or rejects) the request and returns a future for its
  /// response. Rejection (kOverloaded, kInvalidArgument) resolves the
  /// future before Submit returns.
  std::future<QueryResponse> Submit(QueryRequest req);

  /// Synchronous convenience: Submit and wait.
  QueryResponse Execute(QueryRequest req);

  /// Drops all cached state (result cache AND star-level reuse cache) and
  /// bumps both generations. Call after mutating the underlying
  /// graph/index between serving windows.
  void InvalidateCache();

  ServiceStats stats() const;
  CacheStats cache_stats() const { return cache_.stats(); }
  StarCacheStats star_cache_stats() const { return star_cache_.stats(); }
  const ServiceOptions& options() const { return options_; }

  /// The sharded backend's cluster (partition + workers), or nullptr when
  /// the service runs single-process. Exposed for diagnostics (partition
  /// report, active-session invariants in tests).
  const shard::ShardCluster* shard_cluster() const { return cluster_.get(); }

  /// The normalized cache key for (q, k) under this service's
  /// configuration. Exposed for tests and cache diagnostics.
  std::string CacheKey(const query::QueryGraph& q, size_t k) const;

 private:
  struct Pending;

  /// One in-flight execution that duplicates may attach to. Guarded by
  /// mu_; the leader holds a reference through Pending::flight, the key →
  /// flight map through flights_.
  struct Flight {
    std::vector<std::shared_ptr<Pending>> followers;
  };

  struct Pending {
    QueryRequest req;
    std::promise<QueryResponse> promise;
    WallTimer queued;      // started at admission
    Cancellation cancel;   // owns the request's deadline
    /// Normalized cache key; empty when neither caching nor coalescing
    /// applies to this request.
    std::string key;
    /// Canonical rank of each of this request's query nodes (parallel to
    /// `key`: set exactly when the request is keyed). Used to remap
    /// mappings between reordered-equivalent queries that share a key.
    std::vector<int> node_rank;
    /// Shedding-ladder level chosen at admission (0 = nominal). Fixed for
    /// the request's lifetime and appended to `key`, so cache entries and
    /// coalesced flights never cross levels.
    int degrade_level = 0;
    /// Label corrections the fuzzy rewrite applied to req.query.
    std::vector<LabelRewrite> rewrites;
    /// Set on the flight LEADER only (followers are reached through it).
    std::shared_ptr<Flight> flight;

    explicit Pending(QueryRequest r)
        : req(std::move(r)), cancel(req.deadline) {}
  };

  /// Worker body: runs `p` (and any follower promoted from its flight),
  /// then keeps draining the queue until empty.
  void WorkerLoop(std::shared_ptr<Pending> p);

  /// Executes one admitted request (cache lookup / engine run / deadline
  /// handling). Runs on a pool worker.
  QueryResponse Run(Pending& p);

  /// Records stats, settles the leader's flight (delivering the result to
  /// every follower or promoting one), and fulfills the promises. Returns
  /// the promoted follower the calling worker must run next, if any.
  std::shared_ptr<Pending> FinishAndSettle(std::shared_ptr<Pending> p,
                                           QueryResponse resp);

  /// Folds one response into stats_. Caller holds mu_.
  void RecordLocked(const QueryResponse& resp);

  /// Re-expresses `matches` (whose mappings use the node order of the
  /// query with canonical ranks `from_rank`) in the node order of an
  /// equivalent query with ranks `to_rank`. Both rank vectors must come
  /// from queries with the same canonical signature. Scores pass through
  /// bitwise; when the ranks already agree the matches are returned
  /// unchanged (the verbatim-replay fast path).
  static std::vector<core::GraphMatch> RemapMatches(
      const std::vector<core::GraphMatch>& matches,
      const std::vector<int>& from_rank, const std::vector<int>& to_rank);

  /// Composes the normalized key from an already-computed canonical
  /// signature. Shared by CacheKey and Submit (which canonicalizes once
  /// and also keeps the node ranks for remapping).
  std::string KeyFromSignature(std::string signature, size_t k) const;

  const graph::KnowledgeGraph& graph_;
  const text::SimilarityEnsemble& ensemble_;
  const graph::LabelIndex* index_;
  const ServiceOptions options_;
  /// Fingerprint of every result-affecting configuration field (excludes
  /// threads / use_scoring_kernel, which carry bit-identity contracts).
  std::string config_key_;
  /// Non-null iff options_.shards >= 2: the sharded backend's partition
  /// and resident worker threads, shared by every request.
  std::unique_ptr<shard::ShardCluster> cluster_;
  ResultCache cache_;
  StarCache star_cache_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  bool accepting_ = true;
  int inflight_ = 0;
  std::deque<std::shared_ptr<Pending>> queue_;
  /// Key → in-flight execution accepting followers. An entry lives exactly
  /// as long as some leader for that key is admitted (queued or running).
  std::unordered_map<std::string, std::shared_ptr<Flight>,
                     TransparentStringHash, std::equal_to<>>
      flights_;
  ServiceStats stats_;
};

}  // namespace star::serve

#endif  // STAR_SERVE_QUERY_SERVICE_H_
