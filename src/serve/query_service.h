#ifndef STAR_SERVE_QUERY_SERVICE_H_
#define STAR_SERVE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/framework.h"
#include "serve/result_cache.h"

namespace star::serve {

struct ServiceOptions {
  /// Engine configuration shared by every request (fixed for the service's
  /// lifetime; it is part of the cache key contract).
  core::StarOptions star;

  /// Requests executing concurrently. Admission beyond this queues.
  int max_inflight = 4;

  /// Requests waiting for a worker. Admission beyond max_inflight +
  /// max_queue is rejected with kOverloaded — the queue is bounded so an
  /// overloaded service degrades by shedding load, not by growing latency
  /// without bound.
  size_t max_queue = 64;

  /// Result-cache entries (0 disables caching entirely).
  size_t cache_capacity = 128;

  /// Deadline applied to requests that arrive without one, measured from
  /// admission (so it covers queue wait). 0 = no implicit deadline.
  double default_timeout_ms = 0.0;

  /// Test hook: runs on the worker thread immediately before each request
  /// executes (after dequeue, before the deadline checkpoint). Lets tests
  /// hold workers busy deterministically to exercise admission control.
  std::function<void()> before_execute;
};

struct QueryRequest {
  query::QueryGraph query;
  size_t k = 10;
  /// Infinite by default; the service substitutes default_timeout_ms.
  Deadline deadline;
  /// Per-request cache opt-out (e.g. for freshness-critical callers).
  bool use_cache = true;
};

struct QueryResponse {
  /// Ok: `matches` is the exact top-k. DeadlineExceeded: `matches` is a
  /// correctly ordered prefix of it (possibly empty) and `partial` is set.
  /// Overloaded / InvalidArgument: rejected at admission, `matches` empty.
  Status status;
  std::vector<core::GraphMatch> matches;
  bool cache_hit = false;
  bool partial = false;
  /// Admission-to-execution wait (includes promise dispatch overhead).
  double queue_ms = 0.0;
  /// Execution wall time (cache lookup or fresh engine run).
  double exec_ms = 0.0;
  /// Engine diagnostics; zero-initialized unless a fresh execution ran
  /// (tests use pivot_candidates == 0 to prove an expired request did no
  /// candidate retrieval).
  core::FrameworkStats framework;
};

struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;          // OK responses (cache hits included)
  uint64_t rejected_overload = 0;  // kOverloaded at admission
  uint64_t rejected_invalid = 0;   // kInvalidArgument at admission
  uint64_t deadline_exceeded = 0;  // kDeadlineExceeded (queued or mid-run)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double total_queue_ms = 0.0;
  double total_exec_ms = 0.0;
  double max_queue_ms = 0.0;
  double max_exec_ms = 0.0;

  double cache_hit_rate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

/// A concurrent query-serving front end over StarFramework: owns no graph
/// data itself but holds warm references to the shared read-only state
/// (graph, similarity ensemble, label index) and serves many clients on
/// the process-wide thread pool.
///
/// Guarantees:
///  - Admission control: at most max_inflight requests execute at once and
///    at most max_queue wait; everything beyond that is rejected
///    *synchronously* with kOverloaded (the returned future is already
///    ready — no hidden unbounded queue).
///  - Deadlines: each request's deadline is threaded into every engine hot
///    loop as a cooperative cancellation token. An expired request returns
///    kDeadlineExceeded with whatever prefix of the top-k was already
///    emitted; a request that expires while queued returns promptly
///    without touching the graph.
///  - Result cache: normalized-query LRU keyed by the canonical query
///    signature (insertion-order insensitive), the matching semantics, and
///    k. Hits are bitwise identical to fresh execution. InvalidateCache()
///    bumps a generation counter so in-flight stale results never land.
///
/// Thread safety: all public methods are safe to call from any thread.
/// The referenced graph/ensemble/index must outlive the service and stay
/// unmodified while it serves (matching StarFramework's contract).
class QueryService {
 public:
  QueryService(const graph::KnowledgeGraph& g,
               const text::SimilarityEnsemble& ensemble,
               const graph::LabelIndex* index, ServiceOptions options);

  /// Blocks until every admitted request has completed. New submissions
  /// are rejected with kOverloaded during shutdown.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits (or rejects) the request and returns a future for its
  /// response. Rejection (kOverloaded, kInvalidArgument) resolves the
  /// future before Submit returns.
  std::future<QueryResponse> Submit(QueryRequest req);

  /// Synchronous convenience: Submit and wait.
  QueryResponse Execute(QueryRequest req);

  /// Drops all cached results and bumps the cache generation. Call after
  /// mutating the underlying graph/index between serving windows.
  void InvalidateCache();

  ServiceStats stats() const;
  CacheStats cache_stats() const { return cache_.stats(); }
  const ServiceOptions& options() const { return options_; }

  /// The normalized cache key for (q, k) under this service's
  /// configuration. Exposed for tests and cache diagnostics.
  std::string CacheKey(const query::QueryGraph& q, size_t k) const;

 private:
  struct Pending {
    QueryRequest req;
    std::promise<QueryResponse> promise;
    WallTimer queued;      // started at admission
    Cancellation cancel;   // owns the request's deadline

    explicit Pending(QueryRequest r)
        : req(std::move(r)), cancel(req.deadline) {}
  };

  /// Worker body: runs `p`, then keeps draining the queue until empty.
  void WorkerLoop(std::shared_ptr<Pending> p);

  /// Executes one admitted request (cache lookup / engine run / deadline
  /// handling). Runs on a pool worker.
  QueryResponse Run(Pending& p);

  /// Records response stats and fulfills the promise.
  void Finish(Pending& p, QueryResponse resp);

  const graph::KnowledgeGraph& graph_;
  const text::SimilarityEnsemble& ensemble_;
  const graph::LabelIndex* index_;
  const ServiceOptions options_;
  /// Fingerprint of every result-affecting configuration field (excludes
  /// threads / use_scoring_kernel, which carry bit-identity contracts).
  std::string config_key_;
  ResultCache cache_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  bool accepting_ = true;
  int inflight_ = 0;
  std::deque<std::shared_ptr<Pending>> queue_;
  ServiceStats stats_;
};

}  // namespace star::serve

#endif  // STAR_SERVE_QUERY_SERVICE_H_
