#include "serve/degrade.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace star::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

int ChooseDegradationLevel(const DegradePolicy& policy, size_t queue_depth,
                           size_t max_queue) {
  if (!policy.enable || max_queue == 0) return 0;
  const double occ =
      static_cast<double>(queue_depth) / static_cast<double>(max_queue);
  if (occ >= policy.l3_queue_frac) return 3;
  if (occ >= policy.l2_queue_frac) return 2;
  if (occ >= policy.l1_queue_frac) return 1;
  return 0;
}

void ApplyDegradation(const DegradePolicy& policy, int level,
                      core::StarOptions* star) {
  if (level <= 0) return;
  scoring::MatchConfig& m = star->match;
  if (policy.l1_max_candidates > 0) {
    m.max_candidates = m.max_candidates == 0
                           ? policy.l1_max_candidates
                           : std::min(m.max_candidates,
                                      policy.l1_max_candidates);
  }
  if (level >= 2) {
    m.sample_rate = std::min(m.sample_rate, policy.l2_sample_rate);
    m.sample_seed = policy.sample_seed;
  }
  if (level >= 3) {
    m.d = std::min(m.d, 1);
  }
}

core::QualityCertificate BuildCertificate(
    const query::QueryGraph& q, const core::StarOptions& nominal,
    const core::StarOptions& effective, int level,
    const core::FrameworkStats& stats,
    const std::vector<core::GraphMatch>& matches) {
  core::QualityCertificate cert;
  cert.degradation_level = level;

  if (level == 0) {
    // The engine's ordered-prefix contract: everything returned IS the
    // exact leading prefix, and residual_bound caps everything beyond it.
    cert.guaranteed_prefix = matches.size();
    cert.score_bound = stats.residual_bound;
    cert.exact = !stats.cancelled && cert.score_bound < kInf;
    return cert;
  }

  // Degraded run. Without the per-node candidate digests (a run that never
  // built a scorer, e.g. one that expired pre-retrieval) nothing can be
  // certified beyond the trivial statement.
  const size_t n = static_cast<size_t>(q.node_count());
  if (stats.node_candidates.size() != n) {
    return cert;  // prefix 0, bound +inf
  }

  // Per-node caps against the NOMINAL search space. keep[u] bounds the
  // best F_N any nominal match can realize at u through a candidate the
  // effective run kept; drop[u] bounds it through a candidate the
  // effective run excluded (only meaningful where affected[u]).
  const scoring::MatchConfig& em = effective.match;
  const scoring::MatchConfig& nm = nominal.match;
  const bool cut_tightened =
      em.max_candidates != 0 &&
      (nm.max_candidates == 0 || em.max_candidates < nm.max_candidates);
  std::vector<double> keep(n, 0.0);
  std::vector<double> drop(n, 0.0);
  std::vector<bool> affected(n, false);
  double keep_sum = 0.0;
  bool any_affected = false;
  for (size_t u = 0; u < n; ++u) {
    const core::NodeCandidateInfo& info = stats.node_candidates[u];
    if (info.wildcard) {
      keep[u] = em.wildcard_node_score;  // never sampled
      // The engine truncates wildcard universes under a candidate cutoff
      // too (F_N all ties, so the cut keeps the id-ascending head), so a
      // tightened cut makes the wildcard a drop source like any other
      // node. Untyped wildcards carry no list digest (info.computed is
      // false), so the cut must be assumed to have bitten.
      if (cut_tightened && (!info.computed || info.cut_applied)) {
        drop[u] = em.wildcard_node_score;
        affected[u] = true;
        any_affected = true;
      }
    } else if (!info.computed) {
      keep[u] = 1.0;  // F_N is Eq. 1-normalized
      // An uncomputed list cannot have excluded anything (the star plan
      // never consulted it), so it is not a drop source.
    } else if (info.sampled) {
      // Sampling excludes pool nodes regardless of score: the nominal
      // best candidate may be among the dropped, so both caps are the
      // perfect score.
      keep[u] = 1.0;
      drop[u] = 1.0;
      affected[u] = true;
      any_affected = true;
    } else {
      // Cut-only lists are prefixes of the nominal list, so the kept top
      // IS the nominal top, and anything the tightened cutoff dropped
      // scores at or below the cut boundary.
      keep[u] = info.top_score;
      if (cut_tightened && info.cut_applied) {
        drop[u] = info.cut_score;
        affected[u] = true;
        any_affected = true;
      }
    }
    keep_sum += keep[u];
  }
  // F_E is capped by 1 (relation similarity and the geometric decay both
  // live in [0, 1]).
  const double edge_cap = static_cast<double>(q.edge_count());
  // The cap bounds below sum per-term maxima in THIS order, while a
  // nominal match's score sums its (dominated, term-by-term) addends in
  // the engine's association; the two roundings can disagree by a few
  // ulps. Absorb that with an explicit slack far above the worst-case
  // summation error and far below any score granularity that matters.
  const double fp_slack =
      std::ldexp(static_cast<double>(n + q.edge_count() + 2), -40) *
      std::max(1.0, keep_sum + edge_cap);

  const bool d_reduced = em.d < nm.d;
  const bool star_forced = q.IsStar();
  if (d_reduced || !star_forced) {
    // Either nominal-valid matches exist that no per-node drop argument
    // covers (reduced d: all nodes kept, the connecting walk invisible),
    // or the degraded decomposition may differ from the nominal one and
    // shared matches need not score bit-identically. Certify only the
    // global cap, which dominates every nominal match outright.
    cert.score_bound = keep_sum + edge_cap + fp_slack;
    return cert;
  }

  if (!any_affected) {
    // The degraded knobs never bit (no list reached the tightened cutoff,
    // no sampling): the effective search space equals the nominal one and
    // the forced single-star plan is identical, so this run IS a nominal
    // run — full level-0 semantics apply.
    cert.guaranteed_prefix = matches.size();
    cert.score_bound = stats.residual_bound;
    cert.exact = !stats.cancelled && cert.score_bound < kInf;
    return cert;
  }

  // A nominal match missing from the effective search space maps at least
  // one node to an excluded candidate; everything else it can do is
  // bounded by the kept caps. A nominal match INSIDE the effective space
  // but not emitted is bounded by the engine's residual.
  double drop_bound = -kInf;
  for (size_t u = 0; u < n; ++u) {
    if (!affected[u]) continue;
    drop_bound = std::max(drop_bound, drop[u] + (keep_sum - keep[u]));
  }
  drop_bound += edge_cap + fp_slack;
  double bound = std::max(stats.residual_bound, drop_bound);

  // Leading strictly-descending run of returned scores above the bound:
  // provably the exact nominal prefix (any nominal match outside it
  // scores <= bound or appears later in this very list with a strictly
  // smaller score). A trailing equal-score pair is ambiguous under the
  // nominal tie order, so the run stops before it.
  size_t p = 0;
  while (p < matches.size() && matches[p].score > bound &&
         (p == 0 || matches[p - 1].score > matches[p].score)) {
    ++p;
  }
  if (p > 0 && p < matches.size() &&
      !(matches[p - 1].score > matches[p].score)) {
    --p;
  }
  // Returned matches beyond the prefix are themselves "not guaranteed";
  // the bound must dominate them too (the list is score-descending).
  if (p < matches.size()) bound = std::max(bound, matches[p].score);
  cert.guaranteed_prefix = p;
  cert.score_bound = bound;
  return cert;
}

}  // namespace star::serve
