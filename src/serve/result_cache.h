#ifndef STAR_SERVE_RESULT_CACHE_H_
#define STAR_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/certificate.h"
#include "core/match.h"

namespace star::serve {

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Inserts dropped because Invalidate() ran after the value was computed.
  uint64_t stale_drops = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// A completed top-k result list together with the canonical node ranks of
/// the query that produced it. The cache key is insertion-order
/// insensitive, so a hit may come from an *equivalent reordering* of the
/// caller's query: `node_rank[u]` (the canonical rank of the inserter's
/// node u, from query::CanonicalizeQuery) is what lets the service remap
/// `matches[i].mapping` — expressed in the inserter's node order — into
/// the caller's node order before returning it.
struct CachedResult {
  std::vector<core::GraphMatch> matches;
  std::vector<int> node_rank;
  /// The inserter's quality certificate, replayed verbatim on every hit
  /// (prefix/bound are score-based, so node-order remapping never touches
  /// them). The cache key embeds the degradation level, so an entry can
  /// only ever be hit by requests admitted at the SAME level — a degraded
  /// answer can never satisfy a stricter request.
  core::QualityCertificate certificate;
};

/// Thread-safe LRU cache of completed top-k result lists, keyed by the
/// normalized query key (canonical query signature + matching semantics +
/// k — see QueryService::CacheKey). A hit is bitwise identical to
/// re-running the query: only complete (non-cancelled) OK results are ever
/// inserted, and the generation check below keeps results computed against
/// superseded state out.
///
/// Result lists are stored behind shared_ptr, so a hit is a refcount bump
/// and the critical section stays O(1) regardless of k — the (possibly
/// large) match copy the caller needs happens outside the lock. The index
/// supports heterogeneous string_view probes, so lookups with a composed
/// key never allocate a temporary std::string.
///
/// Invalidation contract: Lookup callers capture generation() before
/// computing a fresh value and pass it to Insert. Invalidate() bumps the
/// generation and clears the cache, so values computed against the old
/// graph/index state can never land after the bump.
class ResultCache {
 public:
  using MatchList = std::shared_ptr<const CachedResult>;

  /// capacity 0 disables the cache (lookups miss, inserts drop).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  uint64_t generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
  }

  void Invalidate() {
    std::lock_guard<std::mutex> lock(mu_);
    ++generation_;
    index_.clear();
    lru_.clear();
  }

  /// nullptr = miss. The returned list stays valid for as long as the
  /// caller holds the pointer, even across eviction or invalidation.
  MatchList Lookup(std::string_view key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    ++stats_.hits;
    return it->second->second;
  }

  /// `node_rank` must be the canonical ranks of the inserting query's
  /// nodes (see CachedResult); hits on reordered-equivalent queries depend
  /// on it to restore the caller's node order.
  void Insert(std::string_view key, std::vector<core::GraphMatch> value,
              std::vector<int> node_rank, uint64_t generation,
              core::QualityCertificate certificate = {}) {
    if (capacity_ == 0) return;
    auto wrapped = std::make_shared<const CachedResult>(
        CachedResult{std::move(value), std::move(node_rank), certificate});
    std::lock_guard<std::mutex> lock(mu_);
    if (generation != generation_) {
      ++stats_.stale_drops;
      return;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(wrapped);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(std::string(key), std::move(wrapped));
    // The index key views the list node's string, which stays stable under
    // splice (list nodes never move).
    index_.emplace(std::string_view(lru_.front().first), lru_.begin());
    ++stats_.insertions;
    if (lru_.size() > capacity_) {
      index_.erase(std::string_view(lru_.back().first));
      lru_.pop_back();
      ++stats_.evictions;
    }
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

 private:
  using Entry = std::pair<std::string, MatchList>;

  mutable std::mutex mu_;
  const size_t capacity_;
  uint64_t generation_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string_view, std::list<Entry>::iterator,
                     TransparentStringHash, std::equal_to<>>
      index_;
  CacheStats stats_;
};

}  // namespace star::serve

#endif  // STAR_SERVE_RESULT_CACHE_H_
