#ifndef STAR_SERVE_STAR_CACHE_H_
#define STAR_SERVE_STAR_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"
#include "core/reuse_cache.h"

namespace star::serve {

struct StarCacheStats {
  uint64_t candidate_hits = 0;
  uint64_t candidate_misses = 0;
  uint64_t candidate_insertions = 0;
  uint64_t candidate_evictions = 0;
  uint64_t toplist_hits = 0;
  uint64_t toplist_misses = 0;
  uint64_t toplist_insertions = 0;
  uint64_t toplist_evictions = 0;
  /// Inserts dropped because Invalidate() ran after the value was computed.
  uint64_t stale_drops = 0;
};

/// Thread-safe, generation-counted LRU store behind core::ReuseCache: one
/// section memoizes per-node candidate lists, the other per-star top-list
/// prefixes with their recorded between-pull upper bounds. Keys are full
/// canonical strings (config fingerprint + canonical signature) and every
/// lookup compares the complete key via the hash map's equality — a hash
/// collision can never surface a wrong entry.
///
/// Values are shared_ptr-wrapped so a hit is a refcount bump: the critical
/// section does no copying, and readers keep replaying an entry safely even
/// after it is evicted or invalidated (the replayed data stays valid; the
/// generation gate only stops NEW inserts computed against old state).
///
/// Invalidation contract (same as ResultCache): callers capture
/// generation() before computing, pass it to the insert; Invalidate() bumps
/// the generation and clears both sections.
class StarCache final : public core::ReuseCache {
 public:
  /// Per-section entry capacities; 0 disables that section (lookups miss,
  /// inserts drop).
  StarCache(size_t candidate_capacity, size_t toplist_capacity)
      : candidate_capacity_(candidate_capacity),
        toplist_capacity_(toplist_capacity) {}

  uint64_t generation() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
  }

  void Invalidate() {
    std::lock_guard<std::mutex> lock(mu_);
    ++generation_;
    candidates_.Clear();
    toplists_.Clear();
  }

  std::shared_ptr<const std::vector<scoring::ScoredCandidate>>
  LookupCandidates(std::string_view key) override;

  void InsertCandidates(std::string_view key,
                        std::vector<scoring::ScoredCandidate> list,
                        uint64_t generation) override;

  std::optional<core::StarTopList> LookupStarTopList(
      std::string_view key) override;

  /// Keeps the deeper recording when an entry already exists: more matches
  /// wins; at equal depth an exhausted recording supersedes an open one.
  void InsertStarTopList(std::string_view key,
                         std::vector<core::StarMatch> matches,
                         std::vector<double> bounds, bool exhausted,
                         uint64_t generation) override;

  StarCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Test-only fault injection (fuzz harness): adds `delta` to every
  /// memoized star-top-list score and recorded bound, in place. A warm run
  /// then replays the perturbed stream, which the harness's warm==cold
  /// differential cell must flag. Returns the number of entries touched.
  size_t CorruptTopListScoresForTest(double delta) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t touched = 0;
    for (auto& [key, toplist] : toplists_.lru) {
      auto matches =
          std::make_shared<std::vector<core::StarMatch>>(*toplist.matches);
      for (auto& m : *matches) m.score += delta;
      auto bounds = std::make_shared<std::vector<double>>(*toplist.bounds);
      for (double& b : *bounds) b += delta;
      toplist.matches = std::move(matches);
      toplist.bounds = std::move(bounds);
      ++touched;
    }
    return touched;
  }

  /// Test-only fault injection: adds `delta` to every cached candidate
  /// F_N (order-preserving, so replay machinery stays well-formed while
  /// every score derived from a seeded list goes wrong). Returns entries
  /// touched.
  size_t CorruptCandidateScoresForTest(double delta) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t touched = 0;
    for (auto& [key, list] : candidates_.lru) {
      auto copy =
          std::make_shared<std::vector<scoring::ScoredCandidate>>(*list);
      for (auto& c : *copy) c.score += delta;
      list = std::move(copy);
      ++touched;
    }
    return touched;
  }

  /// Test-only: drops the top-list section (keeps candidates and the
  /// generation). Forces a warm run down the candidate-seeded recompute
  /// path — used with CorruptCandidateScoresForTest so poisoned lists are
  /// actually consumed instead of being shadowed by memoized streams.
  void ClearTopListsForTest() {
    std::lock_guard<std::mutex> lock(mu_);
    toplists_.Clear();
  }

  size_t candidate_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return candidates_.lru.size();
  }

  size_t toplist_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return toplists_.lru.size();
  }

 private:
  /// One LRU section: list front = most recently used; index does
  /// heterogeneous string_view lookups so probes never allocate a key copy.
  template <typename V>
  struct Section {
    using Entry = std::pair<std::string, V>;
    std::list<Entry> lru;
    std::unordered_map<std::string_view, typename std::list<Entry>::iterator,
                       TransparentStringHash, std::equal_to<>>
        index;

    void Clear() {
      index.clear();
      lru.clear();
    }

    /// Returns the entry for `key` moved to the front, or nullptr.
    Entry* Touch(std::string_view key) {
      auto it = index.find(key);
      if (it == index.end()) return nullptr;
      lru.splice(lru.begin(), lru, it->second);
      return &*it->second;
    }

    /// Inserts a fresh front entry and evicts past `capacity`. The index
    /// keys view the list nodes' strings, which are stable under splice.
    void InsertFront(std::string_view key, V value, size_t capacity,
                     uint64_t* evictions) {
      lru.emplace_front(std::string(key), std::move(value));
      index.emplace(std::string_view(lru.front().first), lru.begin());
      if (lru.size() > capacity) {
        index.erase(std::string_view(lru.back().first));
        lru.pop_back();
        ++*evictions;
      }
    }
  };

  mutable std::mutex mu_;
  const size_t candidate_capacity_;
  const size_t toplist_capacity_;
  uint64_t generation_ = 0;
  Section<std::shared_ptr<const std::vector<scoring::ScoredCandidate>>>
      candidates_;
  Section<core::StarTopList> toplists_;
  StarCacheStats stats_;
};

}  // namespace star::serve

#endif  // STAR_SERVE_STAR_CACHE_H_
