#ifndef STAR_COMMON_STATUS_H_
#define STAR_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace star {

/// Error categories used across the library. Kept deliberately small: the
/// library is exception-free, so fallible entry points (parsers, loaders,
/// configuration validation) report through Status / Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kCorruptData,
  /// A request's latency budget expired before it finished; the carrier
  /// (e.g. serve::QueryResponse) may still hold partial results.
  kDeadlineExceeded,
  /// A bounded service rejected the request at admission instead of
  /// queueing it unboundedly; safe to retry later.
  kOverloaded,
};

/// A lightweight success-or-error value. Cheap to copy on the success path
/// (no allocation), carries a message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status CorruptData(std::string msg) {
    return Status(StatusCode::kCorruptData, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad k".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// absl::StatusOr but minimal: value access is undefined unless ok().
template <typename T>
class Result {
 public:
  /// Implicit construction from a value; mirrors StatusOr ergonomics.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status (must not be OK).
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

inline std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* name = "Unknown";
  switch (code_) {
    case StatusCode::kOk: name = "OK"; break;
    case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
    case StatusCode::kNotFound: name = "NotFound"; break;
    case StatusCode::kOutOfRange: name = "OutOfRange"; break;
    case StatusCode::kFailedPrecondition: name = "FailedPrecondition"; break;
    case StatusCode::kIoError: name = "IoError"; break;
    case StatusCode::kCorruptData: name = "CorruptData"; break;
    case StatusCode::kDeadlineExceeded: name = "DeadlineExceeded"; break;
    case StatusCode::kOverloaded: name = "Overloaded"; break;
  }
  return std::string(name) + ": " + message_;
}

}  // namespace star

#endif  // STAR_COMMON_STATUS_H_
