#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <latch>
#include <utility>

namespace star {

namespace {

// Set for the lifetime of a pool worker thread; lets ParallelFor detect
// nested parallel sections and fall back to inline execution.
thread_local bool tls_in_pool_worker = false;

}  // namespace

int StarThreads() {
  static const int n = [] {
    if (const char* env = std::getenv("STAR_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) {
        return static_cast<int>(
            std::min<long>(v, ThreadPool::kMaxWorkers + 1));
      }
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }();
  return n;
}

int ResolveThreads(int requested) {
  return requested >= 1 ? requested : StarThreads();
}

ThreadPool::ThreadPool(int workers) { EnsureWorkers(workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::EnsureWorkers(int workers) {
  const int want = std::min(workers, kMaxWorkers);
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < want) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::InWorkerThread() const { return tls_in_pool_worker; }

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(StarThreads() - 1);
  return *pool;
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(size_t n, int threads,
                 const std::function<void(size_t, size_t, int)>& body) {
  if (n == 0) return;
  const size_t wanted = std::max(threads, 1);
  const int w = static_cast<int>(std::min(wanted, n));
  ThreadPool& pool = ThreadPool::Global();
  if (w <= 1 || pool.InWorkerThread()) {
    body(0, n, 0);
    return;
  }
  pool.EnsureWorkers(w - 1);

  // Deterministic partition: chunk c covers base (+1 for the first
  // n % w chunks) consecutive indices.
  const size_t base = n / static_cast<size_t>(w);
  const size_t rem = n % static_cast<size_t>(w);
  const auto chunk_begin = [&](int c) {
    const size_t uc = static_cast<size_t>(c);
    return uc * base + std::min(uc, rem);
  };

  std::atomic<bool> failed(false);
  std::exception_ptr error;
  std::mutex error_mu;
  const auto run_chunk = [&](int c) {
    try {
      const size_t begin = chunk_begin(c);
      const size_t end = chunk_begin(c + 1);
      body(begin, end, c);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!failed.exchange(true)) error = std::current_exception();
    }
  };

  std::latch done(w - 1);
  for (int c = 1; c < w; ++c) {
    pool.Submit([&, c] {
      run_chunk(c);
      done.count_down();
    });
  }
  run_chunk(0);
  done.wait();
  if (failed.load()) std::rethrow_exception(error);
}

}  // namespace star
