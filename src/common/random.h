#ifndef STAR_COMMON_RANDOM_H_
#define STAR_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace star {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
/// Every stochastic component in the library (graph generators, workload
/// generators, samplers) takes an explicit Rng so experiments are exactly
/// reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p of true.
  bool Chance(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Below(i)]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

/// Zipf(s) sampler over {0, ..., n-1} using the inverse-CDF table.
/// Used by the graph generators to produce power-law degree / label
/// popularity distributions, the key structural property of DBpedia-like
/// knowledge graphs that the paper's evaluation depends on (Fig. 11).
class ZipfSampler {
 public:
  /// n: support size; s: skew exponent (s = 0 is uniform, typical KG ~1.0).
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  /// Draws a rank in [0, n); rank 0 is the most popular item.
  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // Binary search for the first cdf entry >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace star

#endif  // STAR_COMMON_RANDOM_H_
