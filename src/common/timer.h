#ifndef STAR_COMMON_TIMER_H_
#define STAR_COMMON_TIMER_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <vector>

namespace star {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU-time stopwatch: sums CPU consumed by *all* threads, so
/// ElapsedMillis() / WallTimer::ElapsedMillis() approximates the number of
/// cores a parallel section kept busy. Used by StarSearchStats to report
/// parallel efficiency.
class CpuTimer {
 public:
  CpuTimer() { Restart(); }

  void Restart() { start_ = NowMillis(); }

  double ElapsedMillis() const { return NowMillis() - start_; }

 private:
  static double NowMillis();
  double start_ = 0.0;
};

/// Accumulates samples and reports mean / stddev / percentiles.
/// Used for per-query runtimes and per-star search depths (Fig. 14(d)).
class StatAccumulator {
 public:
  void Add(double x) { samples_.push_back(x); }

  size_t count() const { return samples_.size(); }

  double Sum() const {
    double s = 0;
    for (double x : samples_) s += x;
    return s;
  }

  double Mean() const { return samples_.empty() ? 0.0 : Sum() / samples_.size(); }

  double StdDev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = Mean();
    double acc = 0;
    for (double x : samples_) acc += (x - m) * (x - m);
    return std::sqrt(acc / (samples_.size() - 1));
  }

  double Min() const {
    return samples_.empty() ? 0.0
                            : *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    return samples_.empty() ? 0.0
                            : *std::max_element(samples_.begin(), samples_.end());
  }

  /// p in [0,1]; nearest-rank percentile over the recorded samples.
  double Percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const size_t idx = std::min(
        sorted.size() - 1, static_cast<size_t>(p * (sorted.size() - 1) + 0.5));
    return sorted[idx];
  }

 private:
  std::vector<double> samples_;
};

}  // namespace star

#endif  // STAR_COMMON_TIMER_H_
