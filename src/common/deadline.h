#ifndef STAR_COMMON_DEADLINE_H_
#define STAR_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>

namespace star {

/// A latency budget for one request, anchored to the monotonic clock.
/// Default-constructed deadlines are infinite (never expire), so existing
/// call sites pay nothing. Cheap to copy; immutable after construction.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  Deadline() : at_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now (ms <= 0 is already expired).
  static Deadline AfterMillis(double ms) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(ms)));
  }

  /// Already expired at construction. Used to test the prompt-rejection
  /// path without sleeping.
  static Deadline Expired() {
    return Deadline(Clock::now() - std::chrono::milliseconds(1));
  }

  bool infinite() const { return at_ == Clock::time_point::max(); }

  /// True once the budget is spent. Reads the clock — hot loops should
  /// check through CancelChecker, which amortizes this call.
  bool expired() const { return !infinite() && Clock::now() >= at_; }

  /// Milliseconds until expiry: +inf when infinite, <= 0 when expired.
  double remaining_millis() const {
    if (infinite()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

 private:
  explicit Deadline(Clock::time_point at) : at_(at) {}
  Clock::time_point at_;
};

/// Cooperative cancellation state shared by a request's issuer and its
/// executor: an explicit cancel flag plus a deadline. The issuer keeps the
/// object alive for the whole execution and may Cancel() from any thread;
/// executors poll ShouldStop() (or a CancelChecker) at loop checkpoints
/// and wind down with whatever partial results they have. Non-copyable —
/// pass by pointer (nullptr = never cancelled).
class Cancellation {
 public:
  Cancellation() = default;
  explicit Cancellation(Deadline deadline) : deadline_(deadline) {}

  Cancellation(const Cancellation&) = delete;
  Cancellation& operator=(const Cancellation&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  const Deadline& deadline() const { return deadline_; }

  /// True when the request should stop: explicitly cancelled or past its
  /// deadline. Consults the clock on every call.
  bool ShouldStop() const { return cancelled() || deadline_.expired(); }

 private:
  Deadline deadline_;
  std::atomic<bool> cancelled_{false};
};

/// Amortized cancellation checkpoint for hot loops: the atomic flag is
/// read on every call, the clock only once per kStride calls (the first
/// call always checks, so an already-expired deadline stops immediately).
/// One checker per loop / per worker thread; copying resets the stride.
class CancelChecker {
 public:
  CancelChecker() = default;
  explicit CancelChecker(const Cancellation* cancel) : cancel_(cancel) {}

  bool ShouldStop() {
    if (cancel_ == nullptr) return false;
    if (cancel_->cancelled()) return true;
    const Deadline& d = cancel_->deadline();
    if (d.infinite()) return false;
    if (count_++ % kStride != 0) return false;
    return d.expired();
  }

  const Cancellation* cancellation() const { return cancel_; }

 private:
  static constexpr uint32_t kStride = 64;
  const Cancellation* cancel_ = nullptr;
  uint32_t count_ = 0;
};

}  // namespace star

#endif  // STAR_COMMON_DEADLINE_H_
