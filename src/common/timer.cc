#include "common/timer.h"

#include <ctime>

namespace star {

double CpuTimer::NowMillis() {
#if defined(__unix__) || defined(__APPLE__)
  // Per-process CPU clock: accumulates across every thread in the process.
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) / 1e6;
  }
#endif
  return 1000.0 * static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

}  // namespace star
