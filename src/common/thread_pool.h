#ifndef STAR_COMMON_THREAD_POOL_H_
#define STAR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace star {

/// Worker-thread count STAR uses when a caller passes threads = 0
/// ("auto"): the STAR_THREADS environment variable when set to >= 1,
/// otherwise std::thread::hardware_concurrency(). Read once per process.
int StarThreads();

/// Resolves a per-query `threads` knob (MatchConfig::threads): values
/// >= 1 are honored as-is, anything else means "use StarThreads()".
int ResolveThreads(int requested);

/// A fixed pool of reusable worker threads with a shared FIFO task queue.
/// Workers are started lazily and kept for the process lifetime; the
/// process-wide instance (Global()) grows on demand when a ParallelFor
/// requests more workers than currently exist, up to kMaxWorkers.
///
/// Most code should not touch this class directly — use ParallelFor(),
/// which handles chunking, caller participation, serial fallback and
/// exception propagation.
class ThreadPool {
 public:
  /// Upper bound on workers the pool will ever spawn (sanity cap; a
  /// ParallelFor asking for more is clamped, not rejected).
  static constexpr int kMaxWorkers = 64;

  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const;

  /// Spawns additional workers so at least min(`workers`, kMaxWorkers)
  /// exist. Never shrinks.
  void EnsureWorkers(int workers);

  /// Enqueues one task for any worker. Fire-and-forget: the caller is
  /// responsible for its own completion signaling (ParallelFor uses a
  /// countdown latch).
  void Submit(std::function<void()> task);

  /// True when the calling thread is one of this pool's workers.
  /// ParallelFor uses this to run nested parallel sections inline instead
  /// of deadlocking on a full pool.
  bool InWorkerThread() const;

  /// Process-wide shared pool, created on first use with
  /// StarThreads() - 1 workers (the ParallelFor caller participates, so
  /// total concurrency equals StarThreads()). Intentionally leaked so
  /// worker threads never race static destruction at exit.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

/// Chunked fork-join loop over the index range [0, n).
///
/// The range is split into W = min(threads, n) contiguous chunks of
/// near-equal size (a deterministic function of n and W alone), and
/// body(begin, end, chunk) is invoked once per chunk with 0 <= chunk < W.
/// Chunk 0 runs on the calling thread; the rest run on Global() pool
/// workers. Blocks until every chunk finishes. If any chunk throws, the
/// first exception is rethrown on the caller after all chunks complete.
///
/// threads <= 1, n <= 1, or a call from inside a pool worker (nested
/// parallelism) degrade to a plain inline loop: body(0, n, 0), no pool,
/// no synchronization. n == 0 never invokes body.
///
/// The fixed partition is what makes parallel reductions reproducible:
/// per-chunk partial results, concatenated in chunk order, are a pure
/// function of (n, threads) — see DESIGN.md "Threading model".
void ParallelFor(size_t n, int threads,
                 const std::function<void(size_t, size_t, int)>& body);

}  // namespace star

#endif  // STAR_COMMON_THREAD_POOL_H_
