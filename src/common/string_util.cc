#include "common/string_util.h"

#include <cctype>

namespace star {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

void ToLowerInto(std::string_view s, std::string* out) {
  out->resize(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    (*out)[i] =
        static_cast<char>(std::tolower(static_cast<unsigned char>(s[i])));
  }
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitTokens(std::string_view s,
                                     std::string_view delims) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (delims.find(c) != std::string_view::npos) {
      if (!cur.empty()) {
        out.push_back(std::move(cur));
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

void SplitTokensInto(std::string_view s, std::vector<std::string>* out,
                     std::string_view delims) {
  size_t count = 0;
  size_t begin = std::string_view::npos;
  const auto emit = [&](size_t b, size_t e) {
    if (count < out->size()) {
      (*out)[count].assign(s.substr(b, e - b));
    } else {
      out->emplace_back(s.substr(b, e - b));
    }
    ++count;
  };
  for (size_t i = 0; i < s.size(); ++i) {
    if (delims.find(s[i]) != std::string_view::npos) {
      if (begin != std::string_view::npos) {
        emit(begin, i);
        begin = std::string_view::npos;
      }
    } else if (begin == std::string_view::npos) {
      begin = i;
    }
  }
  if (begin != std::string_view::npos) emit(begin, s.size());
  out->resize(count);
}

std::vector<std::string> SplitFields(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool IsNumeric(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace star
