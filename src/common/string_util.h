#ifndef STAR_COMMON_STRING_UTIL_H_
#define STAR_COMMON_STRING_UTIL_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace star {

/// Heterogeneous hash for string-keyed unordered containers: with
/// std::equal_to<> as the key-equality functor, find()/contains() accept
/// std::string_view (and const char*) directly, so probes no longer
/// allocate a temporary std::string per lookup. Hashes through
/// std::hash<std::string_view>, which std::hash<std::string> is required
/// to agree with.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII-lowercases `s` into `*out`, reusing its capacity (no allocation
/// once the buffer has grown to the longest label seen). `out` must not
/// alias `s`.
void ToLowerInto(std::string_view s, std::string* out);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on any of the given delimiter characters; empty pieces dropped.
std::vector<std::string> SplitTokens(std::string_view s,
                                     std::string_view delims = " \t_-./,");

/// SplitTokens into a reusable vector: existing elements are assign()ed in
/// place so their heap buffers (and the vector's) are reused across calls.
/// Produces exactly the tokens SplitTokens would.
void SplitTokensInto(std::string_view s, std::vector<std::string>* out,
                     std::string_view delims = " \t_-./,");

/// Splits on a single character, keeping empty fields (TSV parsing).
std::vector<std::string> SplitFields(std::string_view s, char delim);

/// Joins pieces with the separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if every character is an ASCII digit (and s non-empty).
bool IsNumeric(std::string_view s);

}  // namespace star

#endif  // STAR_COMMON_STRING_UTIL_H_
