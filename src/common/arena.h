#ifndef STAR_COMMON_ARENA_H_
#define STAR_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <utility>
#include <vector>

namespace star::common {

/// Monotonic per-request arena.
///
/// The cold query path allocates thousands of short-lived containers —
/// candidate vectors, BFS frontiers, propagation buffers, join heaps —
/// whose lifetimes all end together when the request finishes. The arena
/// turns each of those mallocs into a pointer bump out of geometrically
/// growing blocks and frees nothing until Reset(), which rewinds the
/// arena in O(blocks) while KEEPING the largest block, so a serving
/// worker that resets once per request reaches a steady state of zero
/// allocation churn.
///
/// Deallocation is a no-op (monotonic): memory is reclaimed only by
/// Reset() or destruction. Containers bound to the arena may therefore
/// grow through realloc cycles without ever returning the stale copies —
/// that waste is bounded by the geometric block growth and is the price
/// of O(1) allocation.
///
/// Thread safety: NONE. An arena must only be used from one thread at a
/// time; per-query engine code routes only its owning-thread (serial)
/// allocations through the arena and leaves parallel-section scratch on
/// the default resource (see DESIGN.md "Memory layout & batched
/// scoring").
///
/// Use through the std::pmr interface: `resource()` returns a
/// std::pmr::memory_resource whose allocate bumps this arena, suitable
/// for std::pmr::vector and friends. The resource's identity is the
/// arena, so two containers compare equal (and may splice/swap) iff they
/// share the arena.
class MonotonicArena {
 public:
  static constexpr size_t kDefaultFirstBlockBytes = 1 << 16;  // 64 KiB

  explicit MonotonicArena(size_t first_block_bytes = kDefaultFirstBlockBytes)
      : first_block_bytes_(first_block_bytes < kMinBlockBytes
                               ? kMinBlockBytes
                               : first_block_bytes),
        resource_(this) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two). Never
  /// returns nullptr; opens a new block when the current one is full.
  void* Allocate(size_t bytes, size_t align) {
    if (bytes == 0) bytes = 1;
    if (!blocks_.empty()) {
      if (void* p = AllocateFromBack(bytes, align)) return p;
    }
    AddBlock(bytes + align);
    return AllocateFromBack(bytes, align);
  }

  /// Rewinds the arena: every block's memory becomes reusable, all but
  /// the largest block are returned to the heap. Everything previously
  /// allocated from the arena is invalidated — callers must destroy (or
  /// abandon) arena-backed containers first. After a warm-up request the
  /// largest block covers the whole working set, so steady-state resets
  /// free nothing and allocate nothing.
  void Reset() {
    if (blocks_.size() > 1) {
      size_t largest = 0;
      for (size_t i = 1; i < blocks_.size(); ++i) {
        if (blocks_[i].size > blocks_[largest].size) largest = i;
      }
      Block keep = std::move(blocks_[largest]);
      blocks_.clear();
      blocks_.push_back(std::move(keep));
    }
    if (!blocks_.empty()) blocks_.back().used = 0;
    bytes_allocated_ = 0;
  }

  /// Total bytes handed out since the last Reset (excludes alignment
  /// padding and unused block tails).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Bytes of heap currently owned by the arena's blocks.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  size_t block_count() const { return blocks_.size(); }

  /// The std::pmr face of the arena (deallocate is a no-op). The pointer
  /// is stable for the arena's lifetime.
  std::pmr::memory_resource* resource() { return &resource_; }

 private:
  static constexpr size_t kMinBlockBytes = 1 << 10;  // 1 KiB

  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  class Resource final : public std::pmr::memory_resource {
   public:
    explicit Resource(MonotonicArena* arena) : arena_(arena) {}

   private:
    void* do_allocate(size_t bytes, size_t align) override {
      return arena_->Allocate(bytes, align);
    }
    void do_deallocate(void*, size_t, size_t) override {}
    bool do_is_equal(
        const std::pmr::memory_resource& other) const noexcept override {
      return this == &other;
    }

    MonotonicArena* arena_;
  };

  /// Aligns the ABSOLUTE address, not just the block offset: operator
  /// new[] only guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__ on the block
  /// base, so over-aligned requests (e.g. 64 for a cache-line array) need
  /// the base's misalignment folded in. nullptr = block full.
  void* AllocateFromBack(size_t bytes, size_t align) {
    Block& b = blocks_.back();
    const uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
    const uintptr_t cur = base + b.used;
    const uintptr_t aligned_addr = (cur + align - 1) & ~(uintptr_t{align} - 1);
    const size_t aligned = static_cast<size_t>(aligned_addr - base);
    if (aligned + bytes > b.size) return nullptr;
    b.used = aligned + bytes;
    bytes_allocated_ += bytes;
    return b.data.get() + aligned;
  }

  void AddBlock(size_t at_least) {
    size_t size = blocks_.empty() ? first_block_bytes_
                                  : blocks_.back().size * 2;
    if (size < at_least) size = at_least;
    Block b;
    b.data = std::make_unique<std::byte[]>(size);
    b.size = size;
    blocks_.push_back(std::move(b));
  }

  size_t first_block_bytes_;
  std::vector<Block> blocks_;
  size_t bytes_allocated_ = 0;
  Resource resource_;
};

}  // namespace star::common

#endif  // STAR_COMMON_ARENA_H_
