#ifndef STAR_SHARD_SHARD_WORKER_H_
#define STAR_SHARD_SHARD_WORKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/deadline.h"
#include "core/star_search.h"
#include "graph/knowledge_graph.h"
#include "graph/label_index.h"
#include "query/query_graph.h"
#include "scoring/match_config.h"
#include "scoring/query_scorer.h"
#include "text/ensemble.h"

namespace star::shard {

/// One shard's execution engine: owns the shard graph, per-query scorers
/// and star searches, and a dedicated thread that processes coordinator
/// messages one at a time. The shard boundary is message-passing only —
/// the coordinator never touches shard graph state, and the worker never
/// touches another shard's; the only shared objects are immutable query
/// payloads (query graph, star specs, merged candidate lists) and the
/// request's thread-safe Cancellation, all owned by the coordinator for
/// the session's lifetime. This is the in-process stand-in for an RPC
/// server: every method below maps to one message with a self-contained
/// payload.
///
/// A worker serves multiple concurrent query *sessions* (one per in-flight
/// request) by interleaving their messages; each session's scorer and
/// searches are only ever touched from the worker thread, preserving the
/// scorer's single-owning-thread contract.
class ShardWorker {
 public:
  /// Per-star payload of BuildStars: the star subquery, its α-scheme
  /// weights, and the standalone-star pruning hint (same values the
  /// single-process framework passes to StarSearch).
  struct StarSpec {
    query::StarQuery star;
    std::vector<double> node_weights;
    size_t k_hint = 0;
  };

  struct ScatterReply {
    /// This shard's owned slice of the query node's candidate list:
    /// exact scores, canonical (score desc, node asc) order, no
    /// max_candidates truncation (the coordinator truncates post-merge).
    std::vector<scoring::ScoredCandidate> owned;
    /// A cancellation fired mid-scoring; the slice may be incomplete.
    bool truncated = false;
  };

  struct BuildReply {
    /// StarSearch::UpperBound() of each star after initialization — the
    /// shard's certified bound on any match it may still emit.
    std::vector<double> bounds;
    /// A cancellation fired during initialization; bounds may describe a
    /// partial reserve, so the coordinator must not emit from this shard.
    bool cancelled = false;
  };

  struct PullReply {
    std::optional<core::StarMatch> match;  ///< nullopt = exhausted/cancelled
    /// Post-pull upper bound on anything this shard may still emit.
    double bound = -std::numeric_limits<double>::infinity();
    bool cancelled = false;
  };

  struct SessionStats {
    core::StarSearchStats search;  ///< merged across the session's stars
    bool truncated = false;        ///< scorer-level cancellation observed
    size_t pulls = 0;              ///< Pull messages served
  };

  /// All referenced objects must outlive the worker. `shard_index` is
  /// null when the cluster serves no-index retrieval semantics (the shard
  /// then scans its full replicated node table, exactly like the global
  /// engine scans V). `before_pull` (nullable) runs on the worker thread
  /// at the start of every Pull — a test hook for slow-shard injection.
  ShardWorker(size_t shard_id, const graph::KnowledgeGraph& shard_graph,
              const graph::LabelIndex* shard_index,
              const std::vector<uint8_t>& owned_mask,
              const text::SimilarityEnsemble& ensemble,
              std::function<void(size_t shard)> before_pull = nullptr);
  /// Drains the mailbox and joins the thread. Any session still open is
  /// destroyed (normal coordinators always EndQuery first).
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Opens a query session and returns its id. `query`, `cancel` and the
  /// payloads of every later message must stay valid until the EndQuery
  /// reply is received. Messages of one session must be issued in
  /// protocol order (Begin, Scatter*/Seed*, BuildStars, Pull*, End); the
  /// mailbox is FIFO so ordering is preserved per sender.
  uint64_t BeginQuery(const query::QueryGraph* query,
                      const scoring::MatchConfig& config,
                      core::StarStrategy strategy, const Cancellation* cancel);

  /// Scores this shard's owned slice of `query_node`'s retrieval pool.
  std::future<ScatterReply> Scatter(uint64_t session, int query_node);

  /// Injects the coordinator-merged candidate list for `query_node` into
  /// the session's scorer (the exact list Candidates() would compute
  /// single-process — required before any star touching the node builds).
  std::future<void> Seed(
      uint64_t session, int query_node,
      std::shared_ptr<const std::vector<scoring::ScoredCandidate>> list);

  /// Builds one StarSearch per spec, restricted to this shard's owned
  /// pivots, and returns their initial upper bounds.
  std::future<BuildReply> BuildStars(
      uint64_t session, std::shared_ptr<const std::vector<StarSpec>> stars);

  /// Pulls the next-best owned-pivot match of one star.
  std::future<PullReply> Pull(uint64_t session, size_t star_index);

  /// Closes the session and returns its merged engine counters.
  std::future<SessionStats> EndQuery(uint64_t session);

  size_t shard_id() const { return shard_id_; }
  /// Sessions currently open (0 once every request has been EndQuery'd —
  /// the "no worker state outlives its request" test reads this).
  size_t active_sessions() const {
    return active_sessions_.load(std::memory_order_acquire);
  }

 private:
  struct Session {
    const query::QueryGraph* query = nullptr;
    scoring::MatchConfig config;
    core::StarStrategy strategy = core::StarStrategy::kStard;
    const Cancellation* cancel = nullptr;
    size_t pulls = 0;
    // Destruction order matters: searches reference the scorer, the
    // scorer references the arena — members are declared in reverse
    // teardown order.
    std::unique_ptr<common::MonotonicArena> arena;
    std::unique_ptr<scoring::QueryScorer> scorer;
    std::vector<std::unique_ptr<core::StarSearch>> searches;
  };

  void Enqueue(std::function<void()> task);
  void Run();

  const size_t shard_id_;
  const graph::KnowledgeGraph& graph_;
  const graph::LabelIndex* const index_;  // null = no-index retrieval
  const std::vector<uint8_t>& owned_mask_;
  const text::SimilarityEnsemble& ensemble_;
  const std::function<void(size_t)> before_pull_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> mailbox_;
  bool stopping_ = false;

  std::atomic<uint64_t> next_session_{1};
  std::atomic<size_t> active_sessions_{0};
  // Worker-thread-only state.
  std::unordered_map<uint64_t, Session> sessions_;

  std::thread thread_;
};

}  // namespace star::shard

#endif  // STAR_SHARD_SHARD_WORKER_H_
