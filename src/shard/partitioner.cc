#include "shard/partitioner.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <utility>

namespace star::shard {

using graph::KnowledgeGraph;
using graph::NodeId;

namespace {

// splitmix64 finalizer: a fixed, platform-independent mix so the hash
// assignment is reproducible across runs, hosts, and standard libraries
// (std::hash makes no such promise). Pinned by a regression test.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::vector<uint32_t> AssignOwners(const KnowledgeGraph& g,
                                   const PartitionOptions& options) {
  const size_t n = g.node_count();
  const size_t shards = options.shards;
  std::vector<uint32_t> owner(n, 0);
  if (shards <= 1) return owner;
  if (options.policy == PartitionPolicy::kHash) {
    for (size_t v = 0; v < n; ++v) {
      owner[v] = static_cast<uint32_t>(SplitMix64(v) % shards);
    }
    return owner;
  }
  // kLabelRange: equal contiguous cuts of the (label, id)-sorted node
  // sequence. Ties on identical labels keep id order, so the assignment
  // is a total function of the node table.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    const auto la = g.NodeLabel(a);
    const auto lb = g.NodeLabel(b);
    if (la != lb) return la < lb;
    return a < b;
  });
  for (size_t i = 0; i < n; ++i) {
    owner[order[i]] = static_cast<uint32_t>(i * shards / n);
  }
  return owner;
}

}  // namespace

ShardPartition ShardPartition::Build(const KnowledgeGraph& g,
                                     const PartitionOptions& options) {
  ShardPartition p;
  p.options_ = options;
  p.options_.shards = std::max<size_t>(1, options.shards);
  const size_t shards = p.options_.shards;
  const size_t n = g.node_count();
  const size_t m = g.edge_count();
  p.owner_ = AssignOwners(g, p.options_);

  // Boundary table: every directed edge with endpoints on two shards.
  p.boundary_node_mask_.assign(n, 0);
  for (graph::EdgeId e = 0; e < m; ++e) {
    const uint32_t so = p.owner_[g.EdgeSrc(e)];
    const uint32_t od = p.owner_[g.EdgeDst(e)];
    if (so == od) continue;
    p.boundary_edges_.push_back({e, so, od});
    p.boundary_node_mask_[g.EdgeSrc(e)] = 1;
    p.boundary_node_mask_[g.EdgeDst(e)] = 1;
  }

  p.stats_.shards = shards;
  p.stats_.total_nodes = n;
  p.stats_.total_edges = m;
  p.stats_.cut_edges = p.boundary_edges_.size();
  p.stats_.edge_cut_fraction =
      m == 0 ? 0.0
             : static_cast<double>(p.stats_.cut_edges) / static_cast<double>(m);
  p.stats_.boundary_nodes = static_cast<size_t>(std::count(
      p.boundary_node_mask_.begin(), p.boundary_node_mask_.end(), 1));
  p.stats_.owned_nodes.assign(shards, 0);
  for (size_t v = 0; v < n; ++v) ++p.stats_.owned_nodes[p.owner_[v]];
  size_t max_owned = 0;
  for (const size_t c : p.stats_.owned_nodes) max_owned = std::max(max_owned, c);
  p.stats_.balance =
      n == 0 ? 1.0
             : static_cast<double>(max_owned * shards) / static_cast<double>(n);

  // Build each shard: full node table in global id order (node ids, label
  // interning and the type dictionary reproduce exactly), the full
  // relation dictionary in global id order (bound computations iterate
  // it), then the halo adjacency — every directed edge with at least one
  // endpoint within hop-distance (halo_depth - 1) of the owned set. Edge
  // ids inside a shard graph differ from global ids; nothing in the
  // engine's result path observes an EdgeId, and each stored node's
  // neighbor list contents are identical to the global graph's after the
  // canonical (node, relation, forward) sort.
  const int ball_radius = std::max(0, p.options_.halo_depth - 1);
  p.stats_.shard_edges.assign(shards, 0);
  p.stats_.halo_nodes.assign(shards, 0);
  for (size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->owned_mask.assign(n, 0);
    for (size_t v = 0; v < n; ++v) {
      if (p.owner_[v] == s) shard->owned_mask[v] = 1;
    }

    // BFS ball: dist(v, owned set) <= ball_radius.
    std::vector<uint8_t> in_ball(shard->owned_mask);
    std::vector<NodeId> frontier;
    for (size_t v = 0; v < n; ++v) {
      if (in_ball[v]) frontier.push_back(static_cast<NodeId>(v));
    }
    for (int hop = 0; hop < ball_radius; ++hop) {
      std::vector<NodeId> next;
      for (const NodeId v : frontier) {
        for (const graph::Neighbor& nb : g.Neighbors(v)) {
          if (!in_ball[nb.node]) {
            in_ball[nb.node] = 1;
            next.push_back(nb.node);
          }
        }
      }
      frontier = std::move(next);
    }

    KnowledgeGraph::Builder b;
    b.Reserve(n, 0);
    for (size_t v = 0; v < n; ++v) {
      b.AddNode(std::string(g.NodeLabel(v)), std::string(g.TypeName(g.NodeType(v))));
    }
    for (size_t r = 0; r < g.relation_count(); ++r) {
      b.InternRelation(g.RelationName(static_cast<uint32_t>(r)));
    }
    size_t kept_edges = 0;
    for (graph::EdgeId e = 0; e < m; ++e) {
      const NodeId src = g.EdgeSrc(e);
      const NodeId dst = g.EdgeDst(e);
      if (!in_ball[src] && !in_ball[dst]) continue;
      b.AddEdge(src, dst, g.RelationName(g.EdgeRelation(e)));
      ++kept_edges;
    }
    shard->graph = std::move(b).Build(p.options_.layout);
    shard->index =
        std::make_unique<graph::LabelIndex>(shard->graph, p.options_.layout);

    p.stats_.shard_edges[s] = kept_edges;
    size_t halo = 0;
    for (size_t v = 0; v < n; ++v) {
      if (in_ball[v] && !shard->owned_mask[v]) ++halo;
    }
    p.stats_.halo_nodes[s] = halo;
    p.stats_.footprints.push_back(shard->graph.Footprint());
    p.shards_.push_back(std::move(shard));
  }
  return p;
}

std::string FormatPartitionReport(const ShardPartitionStats& stats) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "partition: shards=%zu nodes=%zu edges=%zu edge_cut=%.1f%% "
                "balance=%.3f boundary_nodes=%zu\n",
                stats.shards, stats.total_nodes, stats.total_edges,
                100.0 * stats.edge_cut_fraction, stats.balance,
                stats.boundary_nodes);
  out += line;
  for (size_t s = 0; s < stats.shards; ++s) {
    const size_t bytes =
        s < stats.footprints.size() ? stats.footprints[s].total() : 0;
    std::snprintf(line, sizeof(line),
                  "  shard %zu: owned=%zu halo=%zu edges=%zu resident=%zuB\n",
                  s, stats.owned_nodes[s], stats.halo_nodes[s],
                  stats.shard_edges[s], bytes);
    out += line;
  }
  return out;
}

}  // namespace star::shard
