#include "shard/shard_worker.h"

#include <exception>
#include <utility>

namespace star::shard {

ShardWorker::ShardWorker(size_t shard_id,
                         const graph::KnowledgeGraph& shard_graph,
                         const graph::LabelIndex* shard_index,
                         const std::vector<uint8_t>& owned_mask,
                         const text::SimilarityEnsemble& ensemble,
                         std::function<void(size_t)> before_pull)
    : shard_id_(shard_id),
      graph_(shard_graph),
      index_(shard_index),
      owned_mask_(owned_mask),
      ensemble_(ensemble),
      before_pull_(std::move(before_pull)) {
  thread_ = std::thread([this] { Run(); });
}

ShardWorker::~ShardWorker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ShardWorker::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    mailbox_.push_back(std::move(task));
  }
  cv_.notify_all();
}

void ShardWorker::Run() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !mailbox_.empty(); });
      // Drain the mailbox even when stopping: every enqueued message holds
      // a promise someone may be waiting on.
      if (mailbox_.empty()) break;
      task = std::move(mailbox_.front());
      mailbox_.pop_front();
    }
    task();
  }
  sessions_.clear();
}

uint64_t ShardWorker::BeginQuery(const query::QueryGraph* query,
                                 const scoring::MatchConfig& config,
                                 core::StarStrategy strategy,
                                 const Cancellation* cancel) {
  const uint64_t id = next_session_.fetch_add(1, std::memory_order_relaxed);
  active_sessions_.fetch_add(1, std::memory_order_acq_rel);
  scoring::MatchConfig cfg = config;
  Enqueue([this, id, query, cfg, strategy, cancel] {
    Session& s = sessions_[id];
    s.query = query;
    s.config = cfg;
    // Within-shard work runs serial on this thread: intra-query thread
    // fan-out is replaced by the cross-shard fan-out itself. Forcing
    // threads = 1 is result-neutral (the threading bit-identity contract)
    // and keeps shard threads off the global pool — a pool whose workers
    // are service threads BLOCKED on shard replies must never be what a
    // shard's own scoring waits on.
    s.config.threads = 1;
    s.strategy = strategy;
    s.cancel = cancel;
    s.arena = std::make_unique<common::MonotonicArena>();
    s.scorer = std::make_unique<scoring::QueryScorer>(
        graph_, *query, ensemble_, s.config, index_, s.arena.get());
    s.scorer->set_cancellation(cancel);
  });
  return id;
}

std::future<ShardWorker::ScatterReply> ShardWorker::Scatter(uint64_t session,
                                                            int query_node) {
  auto p = std::make_shared<std::promise<ScatterReply>>();
  std::future<ScatterReply> fut = p->get_future();
  Enqueue([this, session, query_node, p] {
    try {
      Session& s = sessions_.at(session);
      const std::vector<graph::NodeId> pool =
          s.scorer->RetrievalPool(query_node);
      std::vector<graph::NodeId> mine;
      for (const graph::NodeId v : pool) {
        if (owned_mask_[v]) mine.push_back(v);
      }
      ScatterReply r;
      r.owned = s.scorer->ScorePool(query_node, mine);
      r.truncated = s.scorer->truncated();
      p->set_value(std::move(r));
    } catch (...) {
      p->set_exception(std::current_exception());
    }
  });
  return fut;
}

std::future<void> ShardWorker::Seed(
    uint64_t session, int query_node,
    std::shared_ptr<const std::vector<scoring::ScoredCandidate>> list) {
  auto p = std::make_shared<std::promise<void>>();
  std::future<void> fut = p->get_future();
  Enqueue([this, session, query_node, list, p] {
    try {
      sessions_.at(session).scorer->SeedCandidates(query_node, *list);
      p->set_value();
    } catch (...) {
      p->set_exception(std::current_exception());
    }
  });
  return fut;
}

std::future<ShardWorker::BuildReply> ShardWorker::BuildStars(
    uint64_t session, std::shared_ptr<const std::vector<StarSpec>> stars) {
  auto p = std::make_shared<std::promise<BuildReply>>();
  std::future<BuildReply> fut = p->get_future();
  Enqueue([this, session, stars, p] {
    try {
      Session& s = sessions_.at(session);
      BuildReply r;
      r.bounds.reserve(stars->size());
      for (const StarSpec& spec : *stars) {
        core::StarSearch::Options so;
        so.strategy = s.strategy;
        so.k_hint = spec.k_hint;
        so.node_weights = spec.node_weights;
        so.cancel = s.cancel;
        so.pivot_owned = &owned_mask_;
        s.searches.push_back(std::make_unique<core::StarSearch>(
            *s.scorer, spec.star, std::move(so)));
        // UpperBound forces initialization here, on the worker thread, so
        // the certified bound ships with the reply. Eager vs. the global
        // engine's lazy init is a timing difference only: the reserve and
        // stream contents are pure functions of the (seeded) scorer state.
        r.bounds.push_back(s.searches.back()->UpperBound());
        r.cancelled |= s.searches.back()->stats().cancelled;
      }
      r.cancelled |= s.scorer->truncated();
      p->set_value(std::move(r));
    } catch (...) {
      p->set_exception(std::current_exception());
    }
  });
  return fut;
}

std::future<ShardWorker::PullReply> ShardWorker::Pull(uint64_t session,
                                                      size_t star_index) {
  auto p = std::make_shared<std::promise<PullReply>>();
  std::future<PullReply> fut = p->get_future();
  Enqueue([this, session, star_index, p] {
    try {
      if (before_pull_) before_pull_(shard_id_);
      Session& s = sessions_.at(session);
      ++s.pulls;
      core::StarSearch& search = *s.searches.at(star_index);
      PullReply r;
      r.match = search.Next();
      r.cancelled = search.stats().cancelled;
      r.bound = search.UpperBound();
      p->set_value(std::move(r));
    } catch (...) {
      p->set_exception(std::current_exception());
    }
  });
  return fut;
}

std::future<ShardWorker::SessionStats> ShardWorker::EndQuery(
    uint64_t session) {
  auto p = std::make_shared<std::promise<SessionStats>>();
  std::future<SessionStats> fut = p->get_future();
  Enqueue([this, session, p] {
    try {
      SessionStats st;
      auto it = sessions_.find(session);
      if (it != sessions_.end()) {
        Session& s = it->second;
        for (const auto& search : s.searches) {
          st.search.Merge(search->stats());
        }
        st.truncated = s.scorer->truncated();
        st.pulls = s.pulls;
        sessions_.erase(it);
        active_sessions_.fetch_sub(1, std::memory_order_acq_rel);
      }
      p->set_value(std::move(st));
    } catch (...) {
      p->set_exception(std::current_exception());
    }
  });
  return fut;
}

}  // namespace star::shard
