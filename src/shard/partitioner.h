#ifndef STAR_SHARD_PARTITIONER_H_
#define STAR_SHARD_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/knowledge_graph.h"
#include "graph/label_index.h"

namespace star::shard {

/// How data nodes are assigned to shards. Both policies are fully
/// deterministic: the same graph and shard count always produce the same
/// assignment (a regression test pins the hash variant).
enum class PartitionPolicy {
  /// splitmix64 of the node id, mod shards. Uniform, locality-free —
  /// the balance baseline.
  kHash,
  /// Nodes sorted by (label, id) and cut into equal contiguous ranges.
  /// Keeps lexicographic label neighborhoods co-resident, which in real
  /// KGs correlates with topic locality (lower edge cut on entity-name
  /// clusters) and gives range-routing for free in a future RPC split.
  kLabelRange,
};

struct PartitionOptions {
  PartitionPolicy policy = PartitionPolicy::kHash;
  size_t shards = 2;
  /// Halo radius control: shard graphs replicate every edge with at least
  /// one endpoint within hop-distance (halo_depth - 1) of the shard's
  /// owned node set. halo_depth must be >= the MatchConfig::d of every
  /// query served over the partition — then every owned pivot's
  /// depth-(d-1) ball (stark traversal) and d-round message state (stard
  /// propagation) are bitwise identical to the global graph's.
  int halo_depth = 2;
  /// Storage layout of the shard graphs (results are layout-invariant).
  graph::GraphLayout layout = graph::GraphLayout::kFlat;
};

/// Partition-quality report (satellite of GraphStats: per-shard
/// GraphFootprint plus the cut/balance metrics a placement decision needs).
struct ShardPartitionStats {
  size_t shards = 0;
  size_t total_nodes = 0;
  size_t total_edges = 0;
  /// Directed edges whose endpoints live on different shards.
  size_t cut_edges = 0;
  /// cut_edges / total_edges (0 when the graph has no edges).
  double edge_cut_fraction = 0.0;
  /// max owned nodes * shards / total nodes — 1.0 is perfect balance.
  double balance = 0.0;
  /// Nodes incident to at least one cut edge.
  size_t boundary_nodes = 0;
  std::vector<size_t> owned_nodes;    ///< per shard
  std::vector<size_t> shard_edges;    ///< directed edges stored per shard
  std::vector<size_t> halo_nodes;     ///< non-owned nodes with edges stored
  /// Resident bytes of each shard graph (its replicated node table plus
  /// the halo adjacency).
  std::vector<graph::GraphFootprint> footprints;
};

/// Cross-shard directed edge (owner(src) != owner(dst)).
struct BoundaryEdge {
  graph::EdgeId edge = 0;
  uint32_t src_shard = 0;
  uint32_t dst_shard = 0;
};

/// Deterministic split of a KnowledgeGraph into N shard graphs plus a
/// boundary-edge table.
///
/// Every shard graph replicates the FULL node table (labels, types, and
/// the type dictionary reproduce bit-for-bit because nodes are re-added in
/// global id order) and the full relation dictionary (force-interned in
/// global id order), but stores adjacency only for its owned nodes' halo
/// (see PartitionOptions::halo_depth). Per-shard LabelIndex instances are
/// rebuilt over the shard graphs; since retrieval reads only the node
/// table, every shard index answers candidate retrieval exactly like an
/// index over the global graph. These two invariants are what make
/// shard-local scoring, bounds, and star enumeration bitwise identical to
/// single-process execution for owned pivots.
class ShardPartition {
 public:
  /// Splits g. O(|V| + |E| * halo_depth) plus the shard builds.
  static ShardPartition Build(const graph::KnowledgeGraph& g,
                              const PartitionOptions& options);

  size_t shards() const { return shards_.size(); }
  const PartitionOptions& options() const { return options_; }

  uint32_t OwnerOf(graph::NodeId v) const { return owner_[v]; }
  /// owned_mask(s)[v] != 0 iff shard s owns node v (StarSearch's
  /// pivot_owned filter consumes this directly).
  const std::vector<uint8_t>& owned_mask(size_t s) const {
    return shards_[s]->owned_mask;
  }
  const graph::KnowledgeGraph& shard_graph(size_t s) const {
    return shards_[s]->graph;
  }
  const graph::LabelIndex& shard_index(size_t s) const {
    return *shards_[s]->index;
  }

  /// boundary_node_mask()[v] != 0 iff v is incident to a cut edge.
  const std::vector<uint8_t>& boundary_node_mask() const {
    return boundary_node_mask_;
  }
  const std::vector<BoundaryEdge>& boundary_edges() const {
    return boundary_edges_;
  }
  const ShardPartitionStats& stats() const { return stats_; }
  int halo_depth() const { return options_.halo_depth; }

 private:
  struct Shard {
    graph::KnowledgeGraph graph;
    std::unique_ptr<graph::LabelIndex> index;
    std::vector<uint8_t> owned_mask;
  };

  PartitionOptions options_;
  std::vector<uint32_t> owner_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<uint8_t> boundary_node_mask_;
  std::vector<BoundaryEdge> boundary_edges_;
  ShardPartitionStats stats_;
};

/// Human-readable partition-quality report (serve_demo / tools print it):
/// one line per shard plus the cut/balance summary.
std::string FormatPartitionReport(const ShardPartitionStats& stats);

}  // namespace star::shard

#endif  // STAR_SHARD_PARTITIONER_H_
