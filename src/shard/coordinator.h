#ifndef STAR_SHARD_COORDINATOR_H_
#define STAR_SHARD_COORDINATOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/deadline.h"
#include "core/framework.h"
#include "core/match.h"
#include "graph/knowledge_graph.h"
#include "graph/label_index.h"
#include "query/query_graph.h"
#include "shard/partitioner.h"
#include "shard/shard_worker.h"
#include "text/ensemble.h"

namespace star::shard {

/// A partition plus its resident worker fleet: one ShardWorker (thread +
/// shard graph + shard index) per shard, shared by every request routed at
/// the cluster. Built once per service; all state here is immutable after
/// construction, so any number of concurrent ShardEngine requests may use
/// it (workers interleave their sessions).
class ShardCluster {
 public:
  struct Options {
    PartitionOptions partition;
    /// Test hook: runs on the worker thread at the start of every star
    /// pull (slow-shard injection for coordinator deadline tests).
    std::function<void(size_t shard)> before_pull;
  };

  /// `g`, `ensemble` and `global_index` (nullable) must outlive the
  /// cluster; the global graph/index serve the coordinator-side scorer,
  /// the partition's shard graphs/indexes serve the workers.
  ShardCluster(const graph::KnowledgeGraph& g,
               const text::SimilarityEnsemble& ensemble,
               const graph::LabelIndex* global_index, Options options);

  size_t shards() const { return partition_.shards(); }
  const ShardPartition& partition() const { return partition_; }
  ShardWorker& worker(size_t s) { return *workers_[s]; }

  const graph::KnowledgeGraph& graph() const { return graph_; }
  const text::SimilarityEnsemble& ensemble() const { return ensemble_; }
  const graph::LabelIndex* index() const { return index_; }

  /// Total open sessions across all workers (0 whenever no request is in
  /// flight — the no-leaked-session invariant tests assert).
  size_t active_sessions() const;

 private:
  const graph::KnowledgeGraph& graph_;
  const text::SimilarityEnsemble& ensemble_;
  const graph::LabelIndex* index_;
  ShardPartition partition_;
  std::vector<std::unique_ptr<ShardWorker>> workers_;
};

/// Scatter-gather top-k over a ShardCluster, bitwise identical to
/// StarFramework::TopK on the unsharded graph — same matches, same score
/// bits, same tie order, same reuse-cache interaction (one documented
/// exception: candidate lists of typed wildcard nodes are computed
/// worker-locally and never enter the cache; the values would be identical
/// anyway).
///
/// Per query: candidate scoring is scattered (each worker scores its owned
/// slice of the shared retrieval pool; the coordinator merges canonically,
/// applies the max_candidates cut, and ships the merged list everywhere),
/// decomposition runs once on the coordinator's global-graph scorer, and
/// each star becomes a lazily merged per-shard stream: the coordinator
/// pulls the shard with the largest certified bound until every live bound
/// is dominated by a staged match, which terminates cross-shard work as
/// early as the rank join's thresholds allow. Deadline/cancellation
/// observations anywhere (coordinator or worker) wind the query down to a
/// correctly ordered prefix, exactly like the single-process engine.
///
/// The engine object is cheap, per-request state only; construct one per
/// query (concurrent requests each use their own engine over the shared
/// cluster).
class ShardEngine {
 public:
  struct Options {
    core::StarOptions star;
    /// Bench baseline, NOT identity-preserving at rank joins: drain every
    /// shard's stream fully on first pull instead of bound-driven lazy
    /// merging. Pull counters under lazy merging vs. this mode quantify
    /// the early-termination saving.
    bool eager_gather = false;
  };

  /// Requires options.star.match.d <= cluster.partition().halo_depth()
  /// (the halo invariant that makes worker-local enumeration exact).
  ShardEngine(ShardCluster& cluster, Options options);

  /// Mirrors StarFramework::TopK(q, k, cancel, arena): descending-score
  /// top-k; on cancellation a correctly ordered prefix with
  /// last_stats().cancelled set. `arena` (nullable) backs coordinator-side
  /// transient state; workers use their own per-session arenas.
  std::vector<core::GraphMatch> TopK(const query::QueryGraph& q, size_t k,
                                     const Cancellation* cancel = nullptr,
                                     common::MonotonicArena* arena = nullptr);

  /// Diagnostics of the most recent TopK call (shard counters in .shard).
  const core::FrameworkStats& last_stats() const { return stats_; }

  const Options& options() const { return options_; }

 private:
  ShardCluster& cluster_;
  Options options_;
  std::string config_fingerprint_;
  core::FrameworkStats stats_;
};

}  // namespace star::shard

#endif  // STAR_SHARD_COORDINATOR_H_
