#include "shard/coordinator.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <limits>
#include <optional>
#include <utility>

#include "common/timer.h"
#include "core/decomposition.h"
#include "core/rank_join.h"
#include "core/star_search.h"

namespace star::shard {

using core::CachedStarStream;
using core::GraphMatch;
using core::RankJoin;
using core::StarMatch;
using core::StarSearchStats;
using query::QueryGraph;
using query::StarQuery;
using scoring::ScoredCandidate;

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Per-query pull/emission accounting shared by every merged stream of one
/// request (single coordinator thread — no synchronization needed).
struct CoordCounters {
  std::vector<size_t> shard_pulls;
  size_t total_pulls = 0;
  /// Star matches emitted across all merged streams so far.
  size_t emissions = 0;
  /// emissions at the moment of the most recent shard pull.
  size_t last_pull_round = 0;
  size_t boundary_pivot_hits = 0;
};

/// The canonical (score desc, pivot asc) merge of one star's per-shard
/// streams, lazily driven: a shard is pulled only while its certified
/// bound could still beat the best staged match. Because the per-shard
/// streams are exact owned-pivot subsets of the global stream (same
/// relative order) and the global engine breaks score ties toward the
/// smaller pivot, the merged emissions — and the between-pull UpperBound()
/// values — are bitwise identical to a single-process StarSearch.
///
/// A cancellation observed in any shard reply poisons the stream (no
/// further emissions), keeping the already-emitted prefix correctly
/// ordered; stats().cancelled reports it.
class MergedShardStarStream final : public core::StarStreamEngine {
 public:
  MergedShardStarStream(const QueryGraph& q, StarQuery canonical_star,
                        std::vector<ShardWorker*> workers,
                        std::vector<uint64_t> sessions, size_t star_index,
                        std::vector<double> initial_bounds, bool cancelled,
                        const std::vector<uint8_t>* boundary_mask,
                        CoordCounters* counters, bool eager_gather)
      : query_(q),
        star_(std::move(canonical_star)),
        workers_(std::move(workers)),
        sessions_(std::move(sessions)),
        star_index_(star_index),
        boundary_mask_(boundary_mask),
        counters_(counters),
        eager_gather_(eager_gather) {
    stats_.cancelled = cancelled;
    shards_.resize(workers_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      shards_[s].bound = initial_bounds[s];
    }
    leaf_nodes_.reserve(star_.edges.size());
    for (const int e : star_.edges) {
      leaf_nodes_.push_back(query_.OtherEnd(e, star_.pivot));
    }
  }

  std::optional<StarMatch> Next() override {
    if (stats_.cancelled) return std::nullopt;
    if (eager_gather_) return NextEager();
    // Stage: pull any live, unstaged shard whose bound could still beat
    // (or tie) the best staged match — largest bound first so the pull
    // that is most likely to raise the emission floor happens earliest.
    // Ties at the emission score MUST be staged too: a tying shard may
    // hold an equal-score match with a smaller pivot id.
    for (;;) {
      const int best = BestStaged();
      const double best_score =
          best >= 0 ? shards_[best].staged->score : kNegInf;
      int cand = -1;
      double cand_bound = kNegInf;
      for (size_t s = 0; s < shards_.size(); ++s) {
        const ShardState& sh = shards_[s];
        if (sh.exhausted || sh.staged.has_value()) continue;
        if (cand < 0 || sh.bound > cand_bound) {
          cand = static_cast<int>(s);
          cand_bound = sh.bound;
        }
      }
      if (cand < 0 || (best >= 0 && cand_bound < best_score)) break;
      if (!PullShard(static_cast<size_t>(cand))) return std::nullopt;
    }
    const int best = BestStaged();
    if (best < 0) return std::nullopt;
    StarMatch m = std::move(*shards_[best].staged);
    shards_[best].staged.reset();
    Count(m);
    return m;
  }

  double UpperBound() override {
    if (eager_gather_ && drained_) {
      return drain_pos_ < drained_.value().size()
                 ? drained_.value()[drain_pos_].score
                 : kNegInf;
    }
    double ub = kNegInf;
    for (const ShardState& sh : shards_) {
      if (sh.staged.has_value()) {
        ub = std::max(ub, sh.staged->score);
      } else if (!sh.exhausted) {
        ub = std::max(ub, sh.bound);
      }
    }
    return ub;
  }

  GraphMatch ToGraphMatch(const StarMatch& m) const override {
    GraphMatch gm;
    gm.mapping.assign(query_.node_count(), graph::kInvalidNode);
    gm.mapping[star_.pivot] = m.pivot;
    for (size_t i = 0; i < leaf_nodes_.size(); ++i) {
      gm.mapping[leaf_nodes_[i]] = m.leaves[i];
    }
    gm.score = m.score;
    return gm;
  }

  const StarQuery& star() const override { return star_; }
  /// Only the cancelled flag is tracked here; engine work counters live on
  /// the workers and are harvested per session at EndQuery.
  const StarSearchStats& stats() const override { return stats_; }

 private:
  struct ShardState {
    bool exhausted = false;
    std::optional<StarMatch> staged;
    double bound = kNegInf;  ///< certified bound on unpulled matches
  };

  int BestStaged() const {
    int best = -1;
    for (size_t s = 0; s < shards_.size(); ++s) {
      const auto& staged = shards_[s].staged;
      if (!staged.has_value()) continue;
      if (best < 0 || staged->score > shards_[best].staged->score ||
          (staged->score == shards_[best].staged->score &&
           staged->pivot < shards_[best].staged->pivot)) {
        best = static_cast<int>(s);
      }
    }
    return best;
  }

  /// One worker pull; false when the reply reports a cancellation (the
  /// stream is poisoned and the caller must return nullopt).
  bool PullShard(size_t s) {
    ShardWorker::PullReply r =
        workers_[s]->Pull(sessions_[s], star_index_).get();
    ++counters_->shard_pulls[s];
    ++counters_->total_pulls;
    counters_->last_pull_round = counters_->emissions;
    if (r.cancelled) {
      stats_.cancelled = true;
      return false;
    }
    shards_[s].bound = r.bound;
    if (r.match.has_value()) {
      shards_[s].staged = std::move(r.match);
    } else {
      shards_[s].exhausted = true;
    }
    return true;
  }

  void Count(const StarMatch& m) {
    ++counters_->emissions;
    if (boundary_mask_ != nullptr && (*boundary_mask_)[m.pivot] != 0) {
      ++counters_->boundary_pivot_hits;
    }
  }

  /// Full-gather baseline: drain every shard, then emit from the sorted
  /// union. Equal (score, pivot) entries always come from one shard (a
  /// pivot has one owner), so the stable sort reproduces the canonical
  /// emission order; only the UpperBound() trajectory differs, which is
  /// why this mode is excluded from rank-join identity gates.
  std::optional<StarMatch> NextEager() {
    if (!drained_.has_value()) {
      drained_.emplace();
      for (size_t s = 0; s < shards_.size(); ++s) {
        while (!shards_[s].exhausted) {
          if (!PullShard(s)) return std::nullopt;
          if (shards_[s].staged.has_value()) {
            drained_->push_back(std::move(*shards_[s].staged));
            shards_[s].staged.reset();
          }
        }
      }
      std::stable_sort(drained_->begin(), drained_->end(),
                       [](const StarMatch& a, const StarMatch& b) {
                         if (a.score != b.score) return a.score > b.score;
                         return a.pivot < b.pivot;
                       });
    }
    if (drain_pos_ >= drained_->size()) return std::nullopt;
    StarMatch m = std::move((*drained_)[drain_pos_++]);
    Count(m);
    return m;
  }

  const QueryGraph& query_;
  StarQuery star_;  // canonical edge order (matches worker-side searches)
  std::vector<ShardWorker*> workers_;
  std::vector<uint64_t> sessions_;
  const size_t star_index_;
  const std::vector<uint8_t>* boundary_mask_;
  CoordCounters* counters_;
  const bool eager_gather_;

  std::vector<int> leaf_nodes_;  // query node per canonical star edge
  std::vector<ShardState> shards_;
  StarSearchStats stats_;

  std::optional<std::vector<StarMatch>> drained_;  // eager mode only
  size_t drain_pos_ = 0;
};

}  // namespace

ShardCluster::ShardCluster(const graph::KnowledgeGraph& g,
                           const text::SimilarityEnsemble& ensemble,
                           const graph::LabelIndex* global_index,
                           Options options)
    : graph_(g),
      ensemble_(ensemble),
      index_(global_index),
      partition_(ShardPartition::Build(g, options.partition)) {
  workers_.reserve(partition_.shards());
  for (size_t s = 0; s < partition_.shards(); ++s) {
    // No global index => no-index retrieval semantics everywhere: the
    // workers scan their (full, replicated) node tables like the global
    // engine scans V, so candidate slices stay identical.
    const graph::LabelIndex* shard_index =
        index_ != nullptr ? &partition_.shard_index(s) : nullptr;
    workers_.push_back(std::make_unique<ShardWorker>(
        s, partition_.shard_graph(s), shard_index, partition_.owned_mask(s),
        ensemble_, options.before_pull));
  }
}

size_t ShardCluster::active_sessions() const {
  size_t total = 0;
  for (const auto& w : workers_) total += w->active_sessions();
  return total;
}

ShardEngine::ShardEngine(ShardCluster& cluster, Options options)
    : cluster_(cluster),
      options_(std::move(options)),
      config_fingerprint_(StarOptionsFingerprint(options_.star,
                                                 cluster_.index() != nullptr)) {
  // The halo invariant: every owned pivot's depth-(d-1) neighborhood and
  // d-round propagation state must be resident on its shard.
  assert(options_.star.match.d <= cluster_.partition().halo_depth());
}

std::vector<GraphMatch> ShardEngine::TopK(const QueryGraph& q, size_t k,
                                          const Cancellation* cancel,
                                          common::MonotonicArena* arena) {
  stats_ = core::FrameworkStats{};
  std::vector<GraphMatch> out;
  if (q.node_count() == 0 || k == 0) return out;

  const WallTimer wall;
  const size_t shards = cluster_.shards();
  stats_.shard.shards = shards;
  CoordCounters counters;
  counters.shard_pulls.assign(shards, 0);
  const auto finish = [&] {
    stats_.shard.shard_pulls = counters.shard_pulls;
    stats_.shard.total_pulls = counters.total_pulls;
    stats_.shard.boundary_pivot_hits = counters.boundary_pivot_hits;
    stats_.shard.early_termination_round = counters.last_pull_round;
    stats_.shard.coordinator_wall_ms = wall.ElapsedMillis();
  };

  // Pre-expired deadline / pre-cancelled request: return before any
  // session opens or candidate is retrieved, like the single-process path.
  CancelChecker cancel_check(cancel);
  if (cancel_check.ShouldStop()) {
    stats_.cancelled = true;
    finish();
    return out;
  }

  // Coordinator-side scorer over the GLOBAL graph and index. Honesty note:
  // the coordinator is not graph-free — decomposition sampling and
  // rank-join bookkeeping read global candidate lists. What is distributed
  // is the heavy lifting: bulk candidate scoring (scattered owned slices)
  // and all star enumeration/propagation (worker-side, shard graphs only).
  scoring::QueryScorer scorer(cluster_.graph(), q, cluster_.ensemble(),
                              options_.star.match, cluster_.index(), arena);
  scorer.set_cancellation(cancel);

  // Cross-query reuse: same probe/seed protocol as StarFramework::TopK,
  // with one extra step — warm lists also ship to every worker, which must
  // observe the exact global list before building stars.
  core::ReuseCache* const reuse = options_.star.reuse;
  const uint64_t generation = reuse != nullptr ? reuse->generation() : 0;
  std::vector<std::string> node_keys(q.node_count());
  std::vector<bool> seeded(q.node_count(), false);
  std::vector<std::shared_ptr<const std::vector<ScoredCandidate>>> node_lists(
      q.node_count());
  if (reuse != nullptr) {
    for (int u = 0; u < q.node_count(); ++u) {
      node_keys[u] = core::CandidateCacheKey(config_fingerprint_, q.node(u));
      if (auto list = reuse->LookupCandidates(node_keys[u])) {
        scorer.SeedCandidates(u, *list);
        node_lists[u] = std::move(list);
        seeded[u] = true;
        ++stats_.candidate_lists_seeded;
      }
    }
  }

  // Open one session per shard. The closer guarantees every exit path ends
  // every session (workers keep no per-request state past the reply).
  struct SessionHandle {
    ShardWorker* worker;
    uint64_t id;
  };
  std::vector<SessionHandle> sessions;
  sessions.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    ShardWorker& w = cluster_.worker(s);
    sessions.push_back({&w, w.BeginQuery(&q, options_.star.match,
                                         options_.star.strategy, cancel)});
  }
  struct SessionCloser {
    std::vector<SessionHandle>* sessions;
    bool harvested = false;
    ~SessionCloser() {
      if (harvested) return;
      std::vector<std::future<ShardWorker::SessionStats>> futs;
      futs.reserve(sessions->size());
      for (SessionHandle& s : *sessions) futs.push_back(s.worker->EndQuery(s.id));
      for (auto& f : futs) f.wait();
    }
  } closer{&sessions};

  // Scatter: each shard scores its owned slice of every non-wildcard,
  // non-cache-warm query node's retrieval pool; the shards share one pool
  // (full replicated node tables), so the merged, canonically sorted
  // union cut to max_candidates IS the single-process candidate list.
  // Wildcard nodes are never scattered: their lists (typed) are computed
  // worker-locally with identical results, and untyped wildcards build no
  // lists at all.
  {
    std::vector<int> scatter_nodes;
    for (int u = 0; u < q.node_count(); ++u) {
      if (seeded[u] || q.node(u).wildcard) continue;
      scatter_nodes.push_back(u);
    }
    stats_.shard.scatter_nodes = scatter_nodes.size();
    std::vector<std::vector<std::future<ShardWorker::ScatterReply>>> futs(
        scatter_nodes.size());
    for (size_t i = 0; i < scatter_nodes.size(); ++i) {
      for (SessionHandle& s : sessions) {
        futs[i].push_back(s.worker->Scatter(s.id, scatter_nodes[i]));
      }
    }
    bool truncated = false;
    std::vector<std::vector<ScoredCandidate>> merged(scatter_nodes.size());
    for (size_t i = 0; i < scatter_nodes.size(); ++i) {
      for (auto& f : futs[i]) {
        ShardWorker::ScatterReply r = f.get();
        truncated |= r.truncated;
        merged[i].insert(merged[i].end(), r.owned.begin(), r.owned.end());
      }
    }
    if (truncated) {
      // A slice may be incomplete; seeding it would violate the scorer's
      // complete-list contract. Wind the whole query down to the (empty,
      // trivially correct) prefix, exactly what an early expiry yields.
      stats_.cancelled = true;
      stats_.residual_bound = scorer.ScoreUpperBound();
      stats_.node_candidates = core::CollectNodeCandidateInfo(q, scorer);
      finish();
      return out;
    }
    for (size_t i = 0; i < scatter_nodes.size(); ++i) {
      const int u = scatter_nodes[i];
      std::sort(merged[i].begin(), merged[i].end(),
                [](const ScoredCandidate& a, const ScoredCandidate& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.node < b.node;
                });
      // Same cutoff rule as QueryScorer::ScorePool (0 = unlimited); the
      // (score desc, node asc) total order makes the merged cut identical
      // to the single-process one for any scoring partition.
      if (options_.star.match.max_candidates > 0 &&
          merged[i].size() > options_.star.match.max_candidates) {
        merged[i].resize(options_.star.match.max_candidates);
      }
      node_lists[u] = std::make_shared<const std::vector<ScoredCandidate>>(
          std::move(merged[i]));
      scorer.SeedCandidates(u, *node_lists[u]);
    }
  }

  // Ship every assembled list (scattered or cache-warm) to every shard.
  {
    std::vector<std::future<void>> seed_futs;
    for (int u = 0; u < q.node_count(); ++u) {
      if (node_lists[u] == nullptr) continue;
      for (SessionHandle& s : sessions) {
        seed_futs.push_back(s.worker->Seed(s.id, u, node_lists[u]));
      }
    }
    for (auto& f : seed_futs) f.get();
  }

  // Decomposition runs once, on the coordinator (its candidate reads are
  // all seeded memo hits now).
  const std::vector<StarQuery> stars =
      core::DecomposeQuery(q, options_.star.decomposition, &scorer);
  stats_.num_stars = stars.size();
  const bool single = stars.size() == 1;

  // Star specs (shared payload, one BuildStars message per shard) plus the
  // coordinator's own canonical view of each star for match expansion.
  auto specs = std::make_shared<std::vector<ShardWorker::StarSpec>>();
  specs->reserve(stars.size());
  std::vector<StarQuery> canonical;
  std::vector<std::string> star_keys(stars.size());
  canonical.reserve(stars.size());
  for (size_t i = 0; i < stars.size(); ++i) {
    ShardWorker::StarSpec spec;
    spec.star = stars[i];
    spec.k_hint = single ? k : 0;
    if (!single) {
      spec.node_weights =
          core::AlphaNodeWeights(q, stars, i, options_.star.alpha);
    }
    if (reuse != nullptr) {
      star_keys[i] =
          core::StarCacheKey(config_fingerprint_, q, stars[i], spec.node_weights);
    }
    canonical.push_back(
        core::CanonicalizeStarEdgeOrder(q, stars[i], spec.node_weights));
    specs->push_back(std::move(spec));
  }

  std::vector<std::future<ShardWorker::BuildReply>> build_futs;
  build_futs.reserve(shards);
  for (SessionHandle& s : sessions) {
    build_futs.push_back(s.worker->BuildStars(s.id, specs));
  }
  std::vector<ShardWorker::BuildReply> builds;
  builds.reserve(shards);
  bool build_cancelled = false;
  for (auto& f : build_futs) {
    builds.push_back(f.get());
    build_cancelled |= builds.back().cancelled;
  }

  // Same left-deep pipeline as StarFramework::TopK, with each star's
  // engine swapped for the merged per-shard stream.
  std::vector<CachedStarStream*> stream_ptrs;
  std::vector<RankJoin*> join_ptrs;
  std::unique_ptr<core::CoveredMatchIterator> pipeline;
  std::vector<ShardWorker*> workers;
  std::vector<uint64_t> session_ids;
  for (SessionHandle& s : sessions) {
    workers.push_back(s.worker);
    session_ids.push_back(s.id);
  }
  for (size_t i = 0; i < stars.size(); ++i) {
    std::vector<double> bounds(shards, kNegInf);
    for (size_t s = 0; s < shards; ++s) bounds[s] = builds[s].bounds[i];
    auto engine = std::make_unique<MergedShardStarStream>(
        q, canonical[i], workers, session_ids, i, std::move(bounds),
        build_cancelled, &cluster_.partition().boundary_node_mask(), &counters,
        options_.eager_gather);
    auto stream = std::make_unique<CachedStarStream>(
        std::move(engine), reuse, std::move(star_keys[i]), generation);
    stream_ptrs.push_back(stream.get());
    if (pipeline == nullptr) {
      pipeline = std::move(stream);
    } else {
      auto join = std::make_unique<RankJoin>(
          std::move(pipeline), std::move(stream),
          options_.star.match.enforce_injective, cancel,
          scorer.transient_resource());
      join_ptrs.push_back(join.get());
      pipeline = std::move(join);
    }
  }

  while (out.size() < k) {
    // Unamortized truncation check, mirroring StarFramework::TopK: a
    // coordinator-side list truncated mid-bulk-score must stop emission
    // before the stride-amortized clock check notices the expiry.
    if (cancel_check.ShouldStop() || scorer.truncated()) {
      stats_.cancelled = true;
      break;
    }
    auto m = pipeline->Next();
    if (!m.has_value()) break;
    out.push_back(std::move(*m));
  }

  // Live pipeline bound, captured before sessions close (the merged
  // streams answer UpperBound from coordinator-local state, but the value
  // belongs to this instant of the pull loop). Sound after cancellation:
  // worker-side StarSearch bounds fall back to their a-priori caps, and
  // a poisoned merged stream retains each shard's last certified bound.
  const double live_ub = pipeline->UpperBound();

  stats_.star_depths.clear();
  for (CachedStarStream* s : stream_ptrs) {
    stats_.star_depths.push_back(s->depth());
    stats_.total_depth += s->depth();
    stats_.search.Merge(s->stats());
    if (s->probed()) {
      s->cache_hit() ? ++stats_.star_cache_hits : ++stats_.star_cache_misses;
      if (s->resumed()) ++stats_.star_cache_resumes;
    }
  }

  // Close every session and fold the workers' engine counters in.
  bool worker_truncated = false;
  {
    std::vector<std::future<ShardWorker::SessionStats>> end_futs;
    end_futs.reserve(shards);
    for (SessionHandle& s : sessions) {
      end_futs.push_back(s.worker->EndQuery(s.id));
    }
    for (auto& f : end_futs) {
      ShardWorker::SessionStats st = f.get();
      stats_.search.Merge(st.search);
      stats_.cancelled |= st.truncated;
      worker_truncated |= st.truncated;
    }
    closer.harvested = true;
  }

  stats_.cancelled |= stats_.search.cancelled;
  for (const RankJoin* j : join_ptrs) stats_.cancelled |= j->cancelled();
  stats_.cancelled |= scorer.truncated();

  // Certified residual bound (see StarFramework::TopK). A truncated
  // coordinator scorer falls back to the query-wide a-priori cap; a
  // truncated worker keeps the live merged bound (worker-side StarSearch
  // already degrades its own bound to the a-priori star cap) but forfeits
  // the last-emitted tightening — that worker's unseen matches are not
  // bounded by the coordinator's emission order.
  if (scorer.truncated()) {
    stats_.residual_bound = scorer.ScoreUpperBound();
  } else {
    // Prop. 3 pruning (single-star k_hint, forwarded to every worker)
    // poisons a claimed exhaustion the same way it does in
    // StarFramework::TopK: the pruned tail still exists. With a full
    // answer the k-th score is the sound residual — the ordered-prefix
    // contract holds across workers, so out.back() is the true k-th score
    // even under worker truncation.
    double residual = single && out.size() == k ? out.back().score : live_ub;
    if (!worker_truncated && !out.empty()) {
      residual = std::min(residual, out.back().score);
    }
    stats_.residual_bound = residual;
  }
  stats_.node_candidates = core::CollectNodeCandidateInfo(q, scorer);

  // Publish to the reuse cache under the same no-cancellation-anywhere
  // gate as the single-process engine.
  if (reuse != nullptr && !stats_.cancelled) {
    for (CachedStarStream* s : stream_ptrs) s->CommitToCache();
    for (int u = 0; u < q.node_count(); ++u) {
      if (seeded[u]) continue;
      if (const auto* list = scorer.CandidatesIfReady(u)) {
        reuse->InsertCandidates(
            node_keys[u],
            std::vector<ScoredCandidate>(list->begin(), list->end()),
            generation);
        ++stats_.candidate_lists_inserted;
      }
    }
  }

  finish();
  return out;
}

}  // namespace star::shard
