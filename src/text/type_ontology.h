#ifndef STAR_TEXT_TYPE_ONTOLOGY_H_
#define STAR_TEXT_TYPE_ONTOLOGY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace star::text {

/// A rooted type hierarchy ("Person isa Agent isa Thing") that provides an
/// ontology-distance similarity between node types — the paper's "ontology"
/// transformation (e.g. a query node typed `artist` can match a data node
/// typed `actor` with a discounted score).
///
/// Types are identified by dense integer ids assigned on insertion; the
/// name "Thing" (id 0) is the implicit root of every hierarchy.
class TypeOntology {
 public:
  static constexpr int kRoot = 0;

  TypeOntology();

  /// Adds (or finds) a type under the given parent; returns its id.
  /// The parent must already exist.
  int AddType(std::string_view name, int parent = kRoot);

  /// Id of a type name, or -1 if unknown.
  int FindType(std::string_view name) const;

  const std::string& TypeName(int id) const { return names_[id]; }
  int Parent(int id) const { return parents_[id]; }
  int type_count() const { return static_cast<int>(names_.size()); }
  /// Depth of the type below the root (root has depth 0).
  int Depth(int id) const { return depths_[id]; }

  /// Wu-Palmer similarity: 2*depth(lca) / (depth(a) + depth(b)).
  /// Identical types score 1; unrelated branches approach 0. Either id
  /// may be -1 (unknown), which scores 0.
  double Similarity(int a, int b) const;

  /// Convenience overload resolving names first.
  double Similarity(std::string_view a, std::string_view b) const;

  /// Lowest common ancestor of the two type ids.
  int LowestCommonAncestor(int a, int b) const;

  /// True if `ancestor` is on the root path of `descendant` (inclusive).
  bool IsAncestor(int ancestor, int descendant) const;

  /// A small movie/people/places hierarchy used by generators and examples.
  static TypeOntology BuiltIn();

 private:
  std::vector<std::string> names_;
  std::vector<int> parents_;
  std::vector<int> depths_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace star::text

#endif  // STAR_TEXT_TYPE_ONTOLOGY_H_
