#include "text/similarity.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/string_util.h"

namespace star::text {

namespace {

// Shared scratch-free helpers.

bool EqualIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

double ExactMatch(std::string_view a, std::string_view b) {
  return a == b ? 1.0 : 0.0;
}

double CaseInsensitiveMatch(std::string_view a, std::string_view b) {
  return EqualIgnoreCase(a, b) ? 1.0 : 0.0;
}

int LevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  // Two-row dynamic program; O(min(n,m)) space.
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = LowerChar(a[i - 1]) == LowerChar(b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const double d = LevenshteinDistance(a, b);
  return 1.0 - d / static_cast<double>(std::max(a.size(), b.size()));
}

double DamerauLevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  // Optimal string alignment variant (adjacent transpositions).
  std::vector<std::vector<int>> d(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = 0; i <= n; ++i) d[i][0] = static_cast<int>(i);
  for (size_t j = 0; j <= m; ++j) d[0][j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const int cost = LowerChar(a[i - 1]) == LowerChar(b[j - 1]) ? 0 : 1;
      d[i][j] = std::min(
          {d[i - 1][j] + 1, d[i][j - 1] + 1, d[i - 1][j - 1] + cost});
      if (i > 1 && j > 1 && LowerChar(a[i - 1]) == LowerChar(b[j - 2]) &&
          LowerChar(a[i - 2]) == LowerChar(b[j - 1])) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
      }
    }
  }
  return 1.0 - d[n][m] / static_cast<double>(std::max(n, m));
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  const size_t window = std::max(n, m) / 2 == 0 ? 0 : std::max(n, m) / 2 - 1;
  std::vector<bool> a_match(n, false), b_match(m, false);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_match[j] || LowerChar(a[i]) != LowerChar(b[j])) continue;
      a_match[i] = b_match[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t t = 0;
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[j]) ++j;
    if (LowerChar(a[i]) != LowerChar(b[j])) ++t;
    ++j;
  }
  const double mm = static_cast<double>(matches);
  return (mm / n + mm / m + (mm - t / 2.0) / mm) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && LowerChar(a[prefix]) == LowerChar(b[prefix])) {
    ++prefix;
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double PrefixSimilarity(std::string_view a, std::string_view b) {
  const size_t lim = std::min(a.size(), b.size());
  if (lim == 0) return a.size() == b.size() ? 1.0 : 0.0;
  size_t p = 0;
  while (p < lim && LowerChar(a[p]) == LowerChar(b[p])) ++p;
  return static_cast<double>(p) / lim;
}

double SuffixSimilarity(std::string_view a, std::string_view b) {
  const size_t lim = std::min(a.size(), b.size());
  if (lim == 0) return a.size() == b.size() ? 1.0 : 0.0;
  size_t p = 0;
  while (p < lim &&
         LowerChar(a[a.size() - 1 - p]) == LowerChar(b[b.size() - 1 - p])) {
    ++p;
  }
  return static_cast<double>(p) / lim;
}

double ContainmentSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return a.size() == b.size() ? 1.0 : 0.0;
  const std::string la = ToLower(a);
  const std::string lb = ToLower(b);
  const std::string& longer = la.size() >= lb.size() ? la : lb;
  const std::string& shorter = la.size() >= lb.size() ? lb : la;
  if (longer.find(shorter) == std::string::npos) return 0.0;
  return static_cast<double>(shorter.size()) / longer.size();
}

namespace {

std::set<std::string> TokenSet(std::string_view s) {
  std::set<std::string> out;
  for (auto& t : SplitTokens(ToLower(s))) out.insert(std::move(t));
  return out;
}

size_t Intersection(const std::set<std::string>& a,
                    const std::set<std::string>& b) {
  size_t n = 0;
  for (const auto& x : a) n += b.count(x);
  return n;
}

}  // namespace

double TokenJaccard(std::string_view a, std::string_view b) {
  const auto sa = TokenSet(a);
  const auto sb = TokenSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  const size_t inter = Intersection(sa, sb);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

double TokenDice(std::string_view a, std::string_view b) {
  const auto sa = TokenSet(a);
  const auto sb = TokenSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  if (sa.empty() || sb.empty()) return 0.0;
  const size_t inter = Intersection(sa, sb);
  return 2.0 * inter / (sa.size() + sb.size());
}

double TokenOverlap(std::string_view a, std::string_view b) {
  const auto sa = TokenSet(a);
  const auto sb = TokenSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  if (sa.empty() || sb.empty()) return 0.0;
  const size_t inter = Intersection(sa, sb);
  return static_cast<double>(inter) / std::min(sa.size(), sb.size());
}

std::vector<std::string> CharNGrams(std::string_view s, int n) {
  const std::string low = ToLower(s);
  std::vector<std::string> grams;
  if (low.size() < static_cast<size_t>(n)) {
    if (!low.empty()) grams.push_back(low);
    return grams;
  }
  for (size_t i = 0; i + n <= low.size(); ++i) {
    grams.push_back(low.substr(i, n));
  }
  return grams;
}

double NGramJaccard(std::string_view a, std::string_view b, int n) {
  const auto ga = CharNGrams(a, n);
  const auto gb = CharNGrams(b, n);
  if (ga.empty() && gb.empty()) return 1.0;
  const std::set<std::string> sa(ga.begin(), ga.end());
  const std::set<std::string> sb(gb.begin(), gb.end());
  const size_t inter = Intersection(sa, sb);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

namespace {

// Initials of the word tokens, lowercased ("John F Kennedy" -> "jfk").
std::string Initials(std::string_view s) {
  std::string out;
  for (const auto& tok : SplitTokens(s)) out.push_back(LowerChar(tok[0]));
  return out;
}

}  // namespace

double AcronymSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0.0;
  const std::string la = ToLower(a);
  const std::string lb = ToLower(b);
  // The acronym side must be a single token of length >= 2.
  if (SplitTokens(a).size() == 1 && la.size() >= 2 && Initials(b) == la) {
    return 1.0;
  }
  if (SplitTokens(b).size() == 1 && lb.size() >= 2 && Initials(a) == lb) {
    return 1.0;
  }
  return 0.0;
}

double AbbreviationSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0.0;
  const std::string la = ToLower(a);
  const std::string lb = ToLower(b);
  const std::string& shorter = la.size() <= lb.size() ? la : lb;
  const std::string& longer = la.size() <= lb.size() ? lb : la;
  if (shorter.size() < 2 || shorter.size() == longer.size()) {
    return shorter == longer ? 1.0 : 0.0;
  }
  // The abbreviation must share the first character and be a subsequence.
  if (shorter[0] != longer[0]) return 0.0;
  size_t j = 0;
  for (size_t i = 0; i < longer.size() && j < shorter.size(); ++i) {
    if (longer[i] == shorter[j]) ++j;
  }
  if (j != shorter.size()) return 0.0;
  return static_cast<double>(shorter.size()) / longer.size() * 0.5 + 0.5;
}

double LengthRatio(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const double lo = static_cast<double>(std::min(a.size(), b.size()));
  const double hi = static_cast<double>(std::max(a.size(), b.size()));
  return hi == 0 ? 1.0 : lo / hi;
}

// Parses "<number><unit>?" where unit is a recognized suffix. Returns the
// value normalized into base units, or nullopt.
std::optional<double> ParseQuantity(std::string_view s) {
  const std::string t(Trim(s));
  if (t.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end == t.c_str()) return std::nullopt;
  std::string unit = ToLower(Trim(std::string_view(end)));
  static const std::unordered_map<std::string, double> kUnits = {
      {"", 1.0},      {"m", 1.0},      {"km", 1000.0},  {"cm", 0.01},
      {"mm", 0.001},  {"g", 1.0},      {"kg", 1000.0},  {"mg", 0.001},
      {"s", 1.0},     {"sec", 1.0},    {"min", 60.0},   {"h", 3600.0},
      {"hr", 3600.0}, {"ms", 0.001},
  };
  const auto it = kUnits.find(unit);
  if (it == kUnits.end()) return std::nullopt;
  return v * it->second;
}

double QuantitySimilarity(const std::optional<double>& a,
                          const std::optional<double>& b) {
  if (!a || !b) return 0.0;
  const double x = *a;
  const double y = *b;
  if (x == y) return 1.0;
  const double denom = std::max(std::abs(x), std::abs(y));
  if (denom == 0) return 1.0;
  const double rel = std::abs(x - y) / denom;
  return 1.0 / (1.0 + 9.0 * rel);  // 1 at equality, 0.1 at 100% difference
}

double NumericSimilarity(std::string_view a, std::string_view b) {
  return QuantitySimilarity(ParseQuantity(a), ParseQuantity(b));
}

double MongeElkanSimilarity(std::string_view a, std::string_view b) {
  const auto ta = SplitTokens(ToLower(a));
  const auto tb = SplitTokens(ToLower(b));
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  const auto directed = [](const std::vector<std::string>& xs,
                           const std::vector<std::string>& ys) {
    double sum = 0.0;
    for (const auto& x : xs) {
      double best = 0.0;
      for (const auto& y : ys) {
        best = std::max(best, JaroWinklerSimilarity(x, y));
      }
      sum += best;
    }
    return sum / xs.size();
  };
  return std::max(directed(ta, tb), directed(tb, ta));
}

double LongestCommonSubstringSimilarity(std::string_view a,
                                        std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  std::vector<int> prev(m + 1, 0), cur(m + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (LowerChar(a[i - 1]) == LowerChar(b[j - 1])) {
        cur[j] = prev[j - 1] + 1;
        best = std::max(best, cur[j]);
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(best) / std::max(n, m);
}

double HammingSimilarity(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return a.empty() && b.empty() ? 1.0 : 0.0;
  if (a.empty()) return 1.0;
  size_t equal = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    equal += LowerChar(a[i]) == LowerChar(b[i]);
  }
  return static_cast<double>(equal) / a.size();
}

double SmithWatermanSimilarity(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  std::vector<int> prev(m + 1, 0), cur(m + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const int diag =
          prev[j - 1] + (LowerChar(a[i - 1]) == LowerChar(b[j - 1]) ? 1 : -1);
      cur[j] = std::max({0, diag, prev[j] - 1, cur[j - 1] - 1});
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(best) / std::min(n, m);
}

double BigramDice(std::string_view a, std::string_view b) {
  const auto ga = CharNGrams(a, 2);
  const auto gb = CharNGrams(b, 2);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  const std::set<std::string> sa(ga.begin(), ga.end());
  const std::set<std::string> sb(gb.begin(), gb.end());
  const size_t inter = Intersection(sa, sb);
  return 2.0 * inter / (sa.size() + sb.size());
}

double TokenSequenceEditSimilarity(std::string_view a, std::string_view b) {
  const auto ta = SplitTokens(ToLower(a));
  const auto tb = SplitTokens(ToLower(b));
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  const size_t n = ta.size();
  const size_t m = tb.size();
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = ta[i - 1] == tb[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return 1.0 - prev[m] / static_cast<double>(std::max(n, m));
}

// Extracts a plausible 3-4 digit year (steering clear of long numbers).
std::optional<int> ExtractYear(std::string_view s) {
  for (size_t i = 0; i < s.size();) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < s.size() && std::isdigit(static_cast<unsigned char>(s[j]))) {
      ++j;
    }
    const size_t len = j - i;
    if (len == 3 || len == 4) {
      int year = 0;
      for (size_t k = i; k < j; ++k) year = year * 10 + (s[k] - '0');
      return year;
    }
    i = j;
  }
  return std::nullopt;
}

double YearSimilarity(const std::optional<int>& a,
                      const std::optional<int>& b) {
  if (!a || !b) return 0.0;
  return 1.0 / (1.0 + std::abs(*a - *b) / 10.0);
}

namespace {

// Roman numeral value of a lowercase token, or 0 if not one (bounded to
// the common title range i..xx to avoid false hits like "mix").
int RomanValue(const std::string& token) {
  static const std::unordered_map<std::string, int> kRoman = {
      {"i", 1},    {"ii", 2},    {"iii", 3},  {"iv", 4},   {"v", 5},
      {"vi", 6},   {"vii", 7},   {"viii", 8}, {"ix", 9},   {"x", 10},
      {"xi", 11},  {"xii", 12},  {"xiii", 13}, {"xiv", 14}, {"xv", 15},
      {"xvi", 16}, {"xvii", 17}, {"xviii", 18}, {"xix", 19}, {"xx", 20}};
  const auto it = kRoman.find(token);
  return it == kRoman.end() ? 0 : it->second;
}

// Number-word value of a lowercase token, or 0.
int NumberWordValue(const std::string& token) {
  static const std::unordered_map<std::string, int> kWords = {
      {"one", 1}, {"two", 2},   {"three", 3}, {"four", 4}, {"five", 5},
      {"six", 6}, {"seven", 7}, {"eight", 8}, {"nine", 9}, {"ten", 10}};
  const auto it = kWords.find(token);
  return it == kWords.end() ? 0 : it->second;
}

}  // namespace

int NumeralTokenValue(const std::string& lower_token) {
  const int roman = RomanValue(lower_token);
  return roman != 0 ? roman : NumberWordValue(lower_token);
}

// Tokens with roman numerals / number words replaced by digit strings.
std::vector<std::string> NormalizeNumerals(std::string_view s) {
  std::vector<std::string> tokens = SplitTokens(ToLower(s));
  for (auto& t : tokens) {
    const int v = NumeralTokenValue(t);
    if (v > 0) t = std::to_string(v);
  }
  return tokens;
}

double DateSimilarity(std::string_view a, std::string_view b) {
  return YearSimilarity(ExtractYear(a), ExtractYear(b));
}

double NumeralAwareMatch(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0.0;
  return NormalizeNumerals(a) == NormalizeNumerals(b) ? 1.0 : 0.0;
}

double LcsSimilarity(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  std::vector<int> prev(m + 1, 0), cur(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (LowerChar(a[i - 1]) == LowerChar(b[j - 1])) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(prev[m]) / std::max(n, m);
}

}  // namespace star::text
