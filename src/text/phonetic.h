#ifndef STAR_TEXT_PHONETIC_H_
#define STAR_TEXT_PHONETIC_H_

#include <string>
#include <string_view>

namespace star::text {

/// American Soundex code of the first token of `s` (e.g. "Robert" -> "R163").
/// Empty input yields an empty code.
std::string Soundex(std::string_view s);

/// Soundex code of a single, already-split token (case-insensitive; empty
/// for tokens without letters). Exposed for the scoring kernel's prepared
/// query-side phonetic codes.
std::string SoundexToken(std::string_view token);

/// 1 if the Soundex codes of the two strings match (token-wise best match
/// for multi-token strings), 0 otherwise. Part of the Eq. 1 feature family.
double PhoneticSimilarity(std::string_view a, std::string_view b);

}  // namespace star::text

#endif  // STAR_TEXT_PHONETIC_H_
