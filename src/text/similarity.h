#ifndef STAR_TEXT_SIMILARITY_H_
#define STAR_TEXT_SIMILARITY_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace star::text {

// String similarity measures. Every function returns a score in [0, 1],
// is symmetric unless noted, and returns 1.0 for identical inputs.
// These are the building blocks of the learned node/edge matching function
// F_N (Eq. 1 in the paper); the ensemble in ensemble.h combines them with
// learned weights. Inputs are matched case-insensitively where sensible.

/// 1 iff the strings are byte-identical.
double ExactMatch(std::string_view a, std::string_view b);

/// 1 iff equal ignoring ASCII case.
double CaseInsensitiveMatch(std::string_view a, std::string_view b);

/// Normalized Levenshtein similarity: 1 - dist / max(|a|, |b|).
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Normalized Damerau-Levenshtein (adjacent transpositions count 1).
double DamerauLevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler with standard prefix boost (p = 0.1, max prefix 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Length of the common prefix divided by the shorter length.
double PrefixSimilarity(std::string_view a, std::string_view b);

/// Length of the common suffix divided by the shorter length.
double SuffixSimilarity(std::string_view a, std::string_view b);

/// 1 if one (lowercased) string contains the other, scaled by length ratio.
double ContainmentSimilarity(std::string_view a, std::string_view b);

/// Jaccard coefficient over lowercased word tokens.
double TokenJaccard(std::string_view a, std::string_view b);

/// Dice coefficient over lowercased word tokens.
double TokenDice(std::string_view a, std::string_view b);

/// Overlap coefficient (|A ∩ B| / min(|A|, |B|)) over word tokens.
double TokenOverlap(std::string_view a, std::string_view b);

/// Jaccard over character n-grams of the lowercased strings.
double NGramJaccard(std::string_view a, std::string_view b, int n = 3);

/// Acronym match: 1 if one side equals the initials of the other's tokens
/// (e.g. "JFK" vs "John Fitzgerald Kennedy"), else 0.
double AcronymSimilarity(std::string_view a, std::string_view b);

/// Abbreviation match: the shorter string must be a subsequence of the
/// longer that starts at a token boundary (e.g. "Intl" vs "International").
/// Score scales with coverage of the longer string's leading token.
double AbbreviationSimilarity(std::string_view a, std::string_view b);

/// Ratio of shorter to longer length; crude but a useful learned feature.
double LengthRatio(std::string_view a, std::string_view b);

/// Numeric similarity: if both strings parse as numbers (optionally with a
/// recognized unit suffix that is converted: km/m/cm, kg/g, h/min/s),
/// returns 1 / (1 + relative difference); 0 if either is non-numeric.
double NumericSimilarity(std::string_view a, std::string_view b);

/// Longest common subsequence length normalized by the longer length.
double LcsSimilarity(std::string_view a, std::string_view b);

/// Monge-Elkan: average over the first string's tokens of the best
/// Jaro-Winkler match among the second string's tokens, symmetrized by
/// taking the max of both directions. Strong for multi-token names with
/// reordering and local typos ("Pitt Brad" vs "Brad Pit").
double MongeElkanSimilarity(std::string_view a, std::string_view b);

/// Length of the longest common substring divided by the longer length.
double LongestCommonSubstringSimilarity(std::string_view a,
                                        std::string_view b);

/// Hamming similarity: fraction of equal positions; 0 unless equal length.
double HammingSimilarity(std::string_view a, std::string_view b);

/// Smith-Waterman local alignment (match +1, mismatch/gap -1), normalized
/// by the shorter length: rewards a strongly matching region anywhere.
double SmithWatermanSimilarity(std::string_view a, std::string_view b);

/// Dice coefficient over character bigrams (the classic "string
/// similarity" of Adamson & Boreham).
double BigramDice(std::string_view a, std::string_view b);

/// Normalized edit distance over token *sequences* (a whole token is one
/// symbol): word insertions/deletions/substitutions count 1 each.
double TokenSequenceEditSimilarity(std::string_view a, std::string_view b);

/// Year/date similarity: extracts a 3-4 digit year from each string
/// (e.g. "1994", "1994-06-23", "June 1994"); 1/(1+|Δyears|/10) when both
/// have one, 0 otherwise.
double DateSimilarity(std::string_view a, std::string_view b);

/// Numeral-aware equality: 1 if the strings are equal after normalizing
/// roman numerals and number words to digits ("Part II" vs "Part 2",
/// "Rocky Three" vs "Rocky 3"), else 0.
double NumeralAwareMatch(std::string_view a, std::string_view b);

/// Raw Levenshtein distance (unnormalized); exposed for tests/diagnostics.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Character n-grams (lowercased) of s; shorter-than-n strings yield {s}.
std::vector<std::string> CharNGrams(std::string_view s, int n);

// Decomposed building blocks of the parse-based features, exposed so the
// scoring kernel (ensemble.h) can precompute the query side once per query
// node. NumericSimilarity == QuantitySimilarity(ParseQuantity(a),
// ParseQuantity(b)); DateSimilarity == YearSimilarity(ExtractYear(a),
// ExtractYear(b)); NumeralAwareMatch compares NormalizeNumerals outputs.

/// Parses "<number><unit>?" (recognized unit suffixes converted to base
/// units: km/m/cm/mm, kg/g/mg, h/hr/min/s/sec/ms); nullopt otherwise.
std::optional<double> ParseQuantity(std::string_view s);

/// The NumericSimilarity aggregation over two parsed quantities.
double QuantitySimilarity(const std::optional<double>& a,
                          const std::optional<double>& b);

/// Extracts a plausible 3-4 digit year, or nullopt.
std::optional<int> ExtractYear(std::string_view s);

/// The DateSimilarity aggregation over two extracted years.
double YearSimilarity(const std::optional<int>& a, const std::optional<int>& b);

/// Roman-numeral or number-word value of a lowercase token (0 if neither).
int NumeralTokenValue(const std::string& lower_token);

/// Tokens of ToLower(s) with numerals normalized to digit strings.
std::vector<std::string> NormalizeNumerals(std::string_view s);

}  // namespace star::text

#endif  // STAR_TEXT_SIMILARITY_H_
