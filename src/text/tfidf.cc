#include "text/tfidf.h"

#include <cmath>
#include <set>

#include "common/string_util.h"

namespace star::text {

void TfIdfModel::AddDocument(std::string_view label) {
  ++num_docs_;
  std::set<std::string> uniq;
  for (auto& t : SplitTokens(ToLower(label))) uniq.insert(std::move(t));
  for (const auto& t : uniq) ++doc_freq_[t];
}

void TfIdfModel::Finalize() {
  idf_.clear();
  max_idf_ = std::log((1.0 + num_docs_) / 1.0) + 1.0;
  for (const auto& [token, df] : doc_freq_) {
    idf_[token] = std::log((1.0 + num_docs_) / (1.0 + df)) + 1.0;
  }
  finalized_ = true;
}

double TfIdfModel::Idf(std::string_view token) const {
  const auto it = idf_.find(ToLower(token));
  return it == idf_.end() ? max_idf_ : it->second;
}

std::unordered_map<std::string, double> TfIdfModel::Vectorize(
    std::string_view s) const {
  std::unordered_map<std::string, double> tf;
  for (const auto& t : SplitTokens(ToLower(s))) tf[t] += 1.0;
  for (auto& [token, w] : tf) w *= Idf(token);
  return tf;
}

double TfIdfModel::Cosine(std::string_view a, std::string_view b) const {
  const auto va = Vectorize(a);
  const auto vb = Vectorize(b);
  if (va.empty() && vb.empty()) return 1.0;
  if (va.empty() || vb.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [t, w] : va) {
    na += w * w;
    const auto it = vb.find(t);
    if (it != vb.end()) dot += w * it->second;
  }
  for (const auto& [t, w] : vb) nb += w * w;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace star::text
