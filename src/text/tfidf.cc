#include "text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"

namespace star::text {

void TfIdfModel::AddDocument(std::string_view label) {
  ++num_docs_;
  std::set<std::string> uniq;
  for (auto& t : SplitTokens(ToLower(label))) uniq.insert(std::move(t));
  for (const auto& t : uniq) ++doc_freq_[t];
}

void TfIdfModel::Finalize() {
  idf_.clear();
  max_idf_ = std::log((1.0 + num_docs_) / 1.0) + 1.0;
  for (const auto& [token, df] : doc_freq_) {
    idf_[token] = std::log((1.0 + num_docs_) / (1.0 + df)) + 1.0;
  }
  finalized_ = true;
}

double TfIdfModel::Idf(std::string_view token) const {
  const auto it = idf_.find(ToLower(token));
  return it == idf_.end() ? max_idf_ : it->second;
}

double TfIdfModel::IdfLower(const std::string& lower_token) const {
  const auto it = idf_.find(lower_token);
  return it == idf_.end() ? max_idf_ : it->second;
}

void TfIdfModel::VectorizeInto(std::string_view s, SparseVector* out) const {
  // Tokenize into a reused scratch, sort, then aggregate runs: the term
  // frequency of a token is its run length (an exact small integer, the
  // same value the old hash-map accumulation produced).
  static thread_local std::string lower;
  static thread_local std::vector<std::string> tokens;
  ToLowerInto(s, &lower);
  SplitTokensInto(lower, &tokens);
  std::sort(tokens.begin(), tokens.end());
  size_t count = 0;
  const auto emit = [&](const std::string& token, double tf) {
    const double w = tf * IdfLower(token);
    if (count < out->size()) {
      (*out)[count].first.assign(token);
      (*out)[count].second = w;
    } else {
      out->emplace_back(token, w);
    }
    ++count;
  };
  for (size_t i = 0; i < tokens.size();) {
    size_t j = i + 1;
    while (j < tokens.size() && tokens[j] == tokens[i]) ++j;
    emit(tokens[i], static_cast<double>(j - i));
    i = j;
  }
  out->resize(count);
}

TfIdfModel::SparseVector TfIdfModel::Vectorize(std::string_view s) const {
  SparseVector v;
  VectorizeInto(s, &v);
  return v;
}

double TfIdfModel::CosineSparse(const SparseVector& a, const SparseVector& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double na = 0.0, nb = 0.0, dot = 0.0;
  for (const auto& [t, w] : a) na += w * w;
  for (const auto& [t, w] : b) nb += w * w;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].first.compare(b[j].first);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      dot += a[i].second * b[j].second;
      ++i;
      ++j;
    }
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double TfIdfModel::Cosine(std::string_view a, std::string_view b) const {
  static thread_local SparseVector va, vb;
  VectorizeInto(a, &va);
  VectorizeInto(b, &vb);
  return CosineSparse(va, vb);
}

}  // namespace star::text
