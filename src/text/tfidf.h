#ifndef STAR_TEXT_TFIDF_H_
#define STAR_TEXT_TFIDF_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace star::text {

/// TF-IDF vector-space model over a corpus of short labels.
/// Built once from every label in a knowledge graph; then used as one of the
/// Eq. 1 similarity features (cosine of the two labels' tf-idf vectors),
/// so that rare, discriminative tokens ("Kurosawa") weigh more than common
/// ones ("the", "film").
class TfIdfModel {
 public:
  /// Sparse tf-idf vector: (token, weight) pairs sorted by token. The
  /// canonical order makes every norm/dot accumulation a fixed-order sum,
  /// so cosine values are bitwise reproducible regardless of how the
  /// vector was produced (fresh or into a reused scratch buffer).
  using SparseVector = std::vector<std::pair<std::string, double>>;

  TfIdfModel() = default;

  /// Adds one document (label) to the corpus statistics.
  void AddDocument(std::string_view label);

  /// Must be called after all AddDocument calls; computes idf weights.
  void Finalize();

  /// Cosine similarity of the two labels under the trained idf weights.
  /// Valid only after Finalize(). Unknown tokens get the maximum idf.
  double Cosine(std::string_view a, std::string_view b) const;

  /// Sparse tf-idf vector of a label (valid only after Finalize()).
  SparseVector Vectorize(std::string_view s) const;

  /// Vectorize into a reused buffer: token strings and the vector's
  /// storage are recycled across calls (the scoring kernel's per-pair
  /// data-side path). Produces exactly Vectorize(s).
  void VectorizeInto(std::string_view s, SparseVector* out) const;

  /// Cosine of two prepared sparse vectors; the shared core of Cosine()
  /// and the scoring kernel's prepared-query-side evaluation.
  static double CosineSparse(const SparseVector& a, const SparseVector& b);

  /// idf of a token (log((1+N)/(1+df)) + 1); max-idf for unseen tokens.
  double Idf(std::string_view token) const;

  size_t document_count() const { return num_docs_; }
  size_t vocabulary_size() const { return doc_freq_.size(); }
  bool finalized() const { return finalized_; }

 private:
  /// Idf lookup for an already-lowercased token (no copy).
  double IdfLower(const std::string& lower_token) const;

  std::unordered_map<std::string, size_t> doc_freq_;
  std::unordered_map<std::string, double> idf_;
  size_t num_docs_ = 0;
  double max_idf_ = 1.0;
  bool finalized_ = false;
};

}  // namespace star::text

#endif  // STAR_TEXT_TFIDF_H_
