#include "text/synonym_dictionary.h"

#include <algorithm>

#include "common/string_util.h"

namespace star::text {

int SynonymDictionary::GroupOf(const std::string& lower_term) const {
  const auto it = group_of_.find(lower_term);
  return it == group_of_.end() ? -1 : it->second;
}

int SynonymDictionary::EnsureGroup(std::string_view term) {
  const std::string key = ToLower(term);
  const auto it = group_of_.find(key);
  if (it != group_of_.end()) return it->second;
  const int g = next_group_++;
  group_of_.emplace(key, g);
  return g;
}

void SynonymDictionary::AddSynonym(std::string_view a, std::string_view b) {
  const int ga = EnsureGroup(a);
  const int gb = EnsureGroup(b);
  if (ga == gb) return;
  // Merge the smaller-id group into the larger to keep this simple; the
  // dictionary is small and built once, so a full scan is fine.
  for (auto& [term, g] : group_of_) {
    if (g == gb) g = ga;
  }
}

void SynonymDictionary::AddGroup(const std::vector<std::string>& terms) {
  for (size_t i = 1; i < terms.size(); ++i) AddSynonym(terms[0], terms[i]);
}

bool SynonymDictionary::AreSynonyms(std::string_view a,
                                    std::string_view b) const {
  const std::string la = ToLower(a);
  const std::string lb = ToLower(b);
  if (la == lb) return true;
  const int ga = GroupOf(la);
  return ga >= 0 && ga == GroupOf(lb);
}

double SynonymDictionary::Similarity(std::string_view a,
                                     std::string_view b) const {
  if (AreSynonyms(a, b)) return 1.0;
  // Token-level: fraction of tokens of the shorter side that have a synonym
  // (or equal token) on the other side.
  const auto ta = SplitTokens(ToLower(a));
  const auto tb = SplitTokens(ToLower(b));
  if (ta.empty() || tb.empty()) return 0.0;
  const auto& shorter = ta.size() <= tb.size() ? ta : tb;
  const auto& longer = ta.size() <= tb.size() ? tb : ta;
  size_t hits = 0;
  for (const auto& x : shorter) {
    for (const auto& y : longer) {
      if (AreSynonyms(x, y)) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / shorter.size();
}

SynonymDictionary SynonymDictionary::BuiltIn() {
  SynonymDictionary dict;
  dict.AddGroup({"teacher", "educator", "instructor", "tutor"});
  dict.AddGroup({"movie", "film", "picture", "motion picture"});
  dict.AddGroup({"director", "filmmaker", "movie maker"});
  dict.AddGroup({"actor", "performer", "thespian"});
  dict.AddGroup({"author", "writer", "novelist"});
  dict.AddGroup({"singer", "vocalist"});
  dict.AddGroup({"award", "prize", "honor"});
  dict.AddGroup({"city", "town", "municipality"});
  dict.AddGroup({"country", "nation", "state"});
  dict.AddGroup({"company", "firm", "corporation", "enterprise"});
  dict.AddGroup({"university", "college"});
  dict.AddGroup({"doctor", "physician"});
  dict.AddGroup({"lawyer", "attorney"});
  dict.AddGroup({"scientist", "researcher"});
  dict.AddGroup({"band", "group", "ensemble"});
  dict.AddGroup({"song", "track", "tune"});
  dict.AddGroup({"spouse", "wife", "husband", "partner"});
  dict.AddGroup({"born", "birthplace", "place of birth"});
  dict.AddGroup({"located", "situated"});
  dict.AddGroup({"works", "employed", "worked"});
  return dict;
}

}  // namespace star::text
