#include "text/type_ontology.h"

#include "common/string_util.h"

namespace star::text {

TypeOntology::TypeOntology() {
  names_.push_back("Thing");
  parents_.push_back(kRoot);
  depths_.push_back(0);
  index_.emplace("thing", kRoot);
}

int TypeOntology::AddType(std::string_view name, int parent) {
  const std::string key = ToLower(name);
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const int id = static_cast<int>(names_.size());
  names_.emplace_back(name);
  parents_.push_back(parent);
  depths_.push_back(depths_[parent] + 1);
  index_.emplace(key, id);
  return id;
}

int TypeOntology::FindType(std::string_view name) const {
  const auto it = index_.find(ToLower(name));
  return it == index_.end() ? -1 : it->second;
}

int TypeOntology::LowestCommonAncestor(int a, int b) const {
  while (a != b) {
    if (depths_[a] >= depths_[b]) {
      if (a == kRoot) return kRoot;
      a = parents_[a];
    } else {
      b = parents_[b];
    }
  }
  return a;
}

bool TypeOntology::IsAncestor(int ancestor, int descendant) const {
  int cur = descendant;
  while (true) {
    if (cur == ancestor) return true;
    if (cur == kRoot) return false;
    cur = parents_[cur];
  }
}

double TypeOntology::Similarity(int a, int b) const {
  if (a < 0 || b < 0 || a >= type_count() || b >= type_count()) return 0.0;
  if (a == b) return 1.0;
  const int lca = LowestCommonAncestor(a, b);
  const int da = depths_[a];
  const int db = depths_[b];
  if (da + db == 0) return 1.0;
  return 2.0 * depths_[lca] / static_cast<double>(da + db);
}

double TypeOntology::Similarity(std::string_view a, std::string_view b) const {
  return Similarity(FindType(a), FindType(b));
}

TypeOntology TypeOntology::BuiltIn() {
  TypeOntology onto;
  const int agent = onto.AddType("Agent");
  const int person = onto.AddType("Person", agent);
  const int artist = onto.AddType("Artist", person);
  onto.AddType("Actor", artist);
  onto.AddType("Director", artist);
  onto.AddType("Producer", artist);
  onto.AddType("Musician", artist);
  onto.AddType("Writer", artist);
  const int athlete = onto.AddType("Athlete", person);
  onto.AddType("SoccerPlayer", athlete);
  onto.AddType("Politician", person);
  onto.AddType("Scientist", person);
  const int org = onto.AddType("Organization", agent);
  onto.AddType("Company", org);
  onto.AddType("University", org);
  onto.AddType("Band", org);
  onto.AddType("Studio", org);
  const int place = onto.AddType("Place");
  onto.AddType("City", place);
  onto.AddType("Country", place);
  onto.AddType("Region", place);
  const int work = onto.AddType("Work");
  const int film = onto.AddType("Film", work);
  onto.AddType("Documentary", film);
  onto.AddType("Album", work);
  onto.AddType("Song", work);
  onto.AddType("Book", work);
  const int misc = onto.AddType("Miscellaneous");
  onto.AddType("Award", misc);
  onto.AddType("Genre", misc);
  onto.AddType("Event", misc);
  return onto;
}

}  // namespace star::text
