#include "text/phonetic.h"

#include <cctype>

#include "common/string_util.h"

namespace star::text {

namespace {

// Soundex digit for a letter; 0 means "ignored" (vowels, h, w, y).
char SoundexDigit(char c) {
  switch (std::tolower(static_cast<unsigned char>(c))) {
    case 'b': case 'f': case 'p': case 'v':
      return '1';
    case 'c': case 'g': case 'j': case 'k':
    case 'q': case 's': case 'x': case 'z':
      return '2';
    case 'd': case 't':
      return '3';
    case 'l':
      return '4';
    case 'm': case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

}  // namespace

std::string SoundexToken(std::string_view token) {
  std::string letters;
  for (char c : token) {
    if (std::isalpha(static_cast<unsigned char>(c))) letters.push_back(c);
  }
  if (letters.empty()) return "";
  std::string code(1, static_cast<char>(
                          std::toupper(static_cast<unsigned char>(letters[0]))));
  char last = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    const char c = letters[i];
    const char digit = SoundexDigit(c);
    const char lc = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (digit != '0' && digit != last) code.push_back(digit);
    // 'h' and 'w' are transparent: they do not reset the run; vowels do.
    if (lc != 'h' && lc != 'w') last = digit;
  }
  while (code.size() < 4) code.push_back('0');
  return code;
}

std::string Soundex(std::string_view s) {
  const auto tokens = SplitTokens(s);
  if (tokens.empty()) return "";
  return SoundexToken(tokens[0]);
}

double PhoneticSimilarity(std::string_view a, std::string_view b) {
  const auto ta = SplitTokens(a);
  const auto tb = SplitTokens(b);
  if (ta.empty() || tb.empty()) return 0.0;
  // Best token-pair match: any shared-sounding token counts.
  for (const auto& x : ta) {
    const std::string cx = SoundexToken(x);
    if (cx.empty()) continue;
    for (const auto& y : tb) {
      if (cx == SoundexToken(y)) return 1.0;
    }
  }
  return 0.0;
}

}  // namespace star::text
