#include "text/ensemble.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"
#include "text/phonetic.h"
#include "text/similarity.h"

namespace star::text {

namespace {

bool EqualIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Shared intermediates for the fast Score() path: lowercased strings and
/// sorted token vectors, computed once per pair instead of once per
/// feature. All feature computations below operate on these and are
/// bitwise-equivalent to the canonical functions in similarity.h (which
/// lowercase internally), as verified by EnsembleTest.FastPathMatchesFeatures.
struct PairScratch {
  std::string la, lb;                  // lowercased
  std::vector<std::string> ta, tb;     // tokens of la / lb (sorted, unique)
  size_t token_intersection = 0;

  PairScratch(std::string_view a, std::string_view b)
      : la(ToLower(a)), lb(ToLower(b)) {
    ta = SplitTokens(la);
    tb = SplitTokens(lb);
    std::sort(ta.begin(), ta.end());
    ta.erase(std::unique(ta.begin(), ta.end()), ta.end());
    std::sort(tb.begin(), tb.end());
    tb.erase(std::unique(tb.begin(), tb.end()), tb.end());
    size_t i = 0, j = 0;
    while (i < ta.size() && j < tb.size()) {
      if (ta[i] < tb[j]) {
        ++i;
      } else if (tb[j] < ta[i]) {
        ++j;
      } else {
        ++token_intersection;
        ++i;
        ++j;
      }
    }
  }
};

double FastLevenshtein(const std::string& a, const std::string& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 0.0;
  // Two-row DP on pre-lowercased strings.
  static thread_local std::vector<int> prev, cur;
  prev.resize(m + 1);
  cur.resize(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return 1.0 - prev[m] / static_cast<double>(std::max(n, m));
}

double FastDamerau(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  // Three-row rolling OSA DP.
  static thread_local std::vector<int> r0, r1, r2;
  r0.resize(m + 1);
  r1.resize(m + 1);
  r2.resize(m + 1);
  for (size_t j = 0; j <= m; ++j) r1[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    r2[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      r2[j] = std::min({r1[j] + 1, r2[j - 1] + 1, r1[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        r2[j] = std::min(r2[j], r0[j - 2] + 1);
      }
    }
    std::swap(r0, r1);
    std::swap(r1, r2);
  }
  return 1.0 - r1[m] / static_cast<double>(std::max(n, m));
}

double FastJaro(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  const size_t window = std::max(n, m) / 2 == 0 ? 0 : std::max(n, m) / 2 - 1;
  static thread_local std::vector<bool> a_match, b_match;
  a_match.assign(n, false);
  b_match.assign(m, false);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_match[j] || a[i] != b[j]) continue;
      a_match[i] = b_match[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  size_t t = 0, j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[j]) ++j;
    if (a[i] != b[j]) ++t;
    ++j;
  }
  const double mm = static_cast<double>(matches);
  return (mm / n + mm / m + (mm - t / 2.0) / mm) / 3.0;
}

double FastJaroWinkler(const std::string& a, const std::string& b,
                       double jaro) {
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double FastPrefix(const std::string& a, const std::string& b) {
  const size_t lim = std::min(a.size(), b.size());
  if (lim == 0) return a.size() == b.size() ? 1.0 : 0.0;
  size_t p = 0;
  while (p < lim && a[p] == b[p]) ++p;
  return static_cast<double>(p) / lim;
}

double FastSuffix(const std::string& a, const std::string& b) {
  const size_t lim = std::min(a.size(), b.size());
  if (lim == 0) return a.size() == b.size() ? 1.0 : 0.0;
  size_t p = 0;
  while (p < lim && a[a.size() - 1 - p] == b[b.size() - 1 - p]) ++p;
  return static_cast<double>(p) / lim;
}

double FastContainment(const std::string& la, const std::string& lb) {
  if (la.empty() || lb.empty()) return la.size() == lb.size() ? 1.0 : 0.0;
  const std::string& longer = la.size() >= lb.size() ? la : lb;
  const std::string& shorter = la.size() >= lb.size() ? lb : la;
  if (longer.find(shorter) == std::string::npos) return 0.0;
  return static_cast<double>(shorter.size()) / longer.size();
}

double FastNGramJaccard(const std::string& la, const std::string& lb) {
  // Sorted unique trigram vectors; tiny strings degenerate to themselves.
  const auto grams = [](const std::string& s) {
    std::vector<std::string> g;
    if (s.size() < 3) {
      if (!s.empty()) g.push_back(s);
      return g;
    }
    g.reserve(s.size() - 2);
    for (size_t i = 0; i + 3 <= s.size(); ++i) g.push_back(s.substr(i, 3));
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
    return g;
  };
  auto ga = grams(la);
  auto gb = grams(lb);
  if (ga.empty() && gb.empty()) return 1.0;
  size_t inter = 0, i = 0, j = 0;
  while (i < ga.size() && j < gb.size()) {
    if (ga[i] < gb[j]) {
      ++i;
    } else if (gb[j] < ga[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  const size_t uni = ga.size() + gb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

bool ContainsDigit(const std::string& s) {
  for (const char c : s) {
    if (c >= '0' && c <= '9') return true;
  }
  return false;
}

bool LooksNumeric(const std::string& s) {
  const std::string_view t = Trim(s);
  if (t.empty()) return false;
  const char c = t[0];
  return (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.';
}

// ---------------------------------------------------------------------
// Threshold-aware kernel machinery (ScoreAgainstThreshold).
// ---------------------------------------------------------------------

// Relative evaluation cost of each feature (index-aligned with the
// Feature enum). Used to break weight ties in RebuildEvalOrder so early
// exits skip the expensive alignment DPs: 0 = O(1), 1 = single linear
// scan/parse, 2 = tokenization-level, 3 = n-gram/sparse-vector,
// 4 = O(n*m) character DP, 5 = token-pair DP product (Monge-Elkan).
constexpr int kCostRank[SimilarityEnsemble::kFeatureCount] = {
    0,  // kExact
    0,  // kCaseInsensitive
    4,  // kLevenshtein
    4,  // kDamerauLevenshtein
    2,  // kJaro
    2,  // kJaroWinkler
    1,  // kPrefix
    1,  // kSuffix
    2,  // kContainment
    2,  // kTokenJaccard
    2,  // kTokenDice
    2,  // kTokenOverlap
    3,  // kNGramJaccard
    2,  // kAcronym
    2,  // kAbbreviation
    0,  // kLengthRatio
    1,  // kNumeric
    4,  // kLcs
    2,  // kPhonetic
    2,  // kSynonym
    3,  // kTfIdfCosine
    1,  // kTypeOntology
    5,  // kMongeElkan
    4,  // kLongestCommonSubstring
    1,  // kHamming
    4,  // kSmithWaterman
    3,  // kBigramDice
    4,  // kTokenSequenceEdit
    1,  // kDate
    2,  // kNumeralAware
};

// Allocation-free equivalents of the remaining similarity.h DPs, for
// pre-lowercased inputs (integer DPs, so the normalized results are
// bitwise equal to the canonical functions).

double FastLcs(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  static thread_local std::vector<int> prev, cur;
  prev.assign(m + 1, 0);
  cur.assign(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(prev[m]) / std::max(n, m);
}

double FastLongestCommonSubstring(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  static thread_local std::vector<int> prev, cur;
  prev.assign(m + 1, 0);
  cur.assign(m + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        best = std::max(best, cur[j]);
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(best) / std::max(n, m);
}

double FastSmithWaterman(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  static thread_local std::vector<int> prev, cur;
  prev.assign(m + 1, 0);
  cur.assign(m + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const int diag = prev[j - 1] + (a[i - 1] == b[j - 1] ? 1 : -1);
      cur[j] = std::max({0, diag, prev[j] - 1, cur[j - 1] - 1});
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(best) / std::min(n, m);
}

double FastTokenSequenceEdit(const std::vector<std::string>& ta,
                             const std::vector<std::string>& tb) {
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  const size_t n = ta.size(), m = tb.size();
  static thread_local std::vector<int> prev, cur;
  prev.resize(m + 1);
  cur.resize(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = ta[i - 1] == tb[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return 1.0 - prev[m] / static_cast<double>(std::max(n, m));
}

// Monge-Elkan over pre-lowercased in-order token lists (duplicates kept,
// summation in token order — the canonical accumulation order).
double FastMongeElkan(const std::vector<std::string>& ta,
                      const std::vector<std::string>& tb) {
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  const auto directed = [](const std::vector<std::string>& xs,
                           const std::vector<std::string>& ys) {
    double sum = 0.0;
    for (const auto& x : xs) {
      double best = 0.0;
      for (const auto& y : ys) {
        best = std::max(best, FastJaroWinkler(x, y, FastJaro(x, y)));
      }
      sum += best;
    }
    return sum / xs.size();
  };
  return std::max(directed(ta, tb), directed(tb, ta));
}

// Copies `src` into `dst` reusing element buffers, then sorts and
// deduplicates in place (string swaps/moves only).
void SortedUniqueInto(const std::vector<std::string>& src,
                      std::vector<std::string>* dst) {
  const size_t n = src.size();
  if (dst->size() > n) dst->resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (i < dst->size()) {
      (*dst)[i].assign(src[i]);
    } else {
      dst->emplace_back(src[i]);
    }
  }
  std::sort(dst->begin(), dst->end());
  dst->erase(std::unique(dst->begin(), dst->end()), dst->end());
}

// Sorted unique character n-grams of a pre-lowercased string into a
// reused vector; strings shorter than n degenerate to {s} (the CharNGrams
// convention shared by NGramJaccard / BigramDice / FastNGramJaccard).
void GramsInto(const std::string& s, size_t n, std::vector<std::string>* dst) {
  size_t count = 0;
  const auto emit = [&](size_t pos, size_t len) {
    if (count < dst->size()) {
      (*dst)[count].assign(s, pos, len);
    } else {
      dst->emplace_back(s, pos, len);
    }
    ++count;
  };
  if (s.size() < n) {
    if (!s.empty()) emit(0, s.size());
  } else {
    for (size_t i = 0; i + n <= s.size(); ++i) emit(i, n);
  }
  dst->resize(count);
  std::sort(dst->begin(), dst->end());
  dst->erase(std::unique(dst->begin(), dst->end()), dst->end());
}

// Intersection size of two sorted unique string vectors.
size_t SortedIntersectionCount(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) {
  size_t inter = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return inter;
}

/// Data-side per-pair scratch of the kernel. One thread_local instance;
/// every view is derived lazily from the lowercased data label, at most
/// once per pair, into buffers that are reused across pairs (steady-state
/// allocation-free).
struct KernelScratch {
  std::string lb;                          // lowercased data label
  std::vector<std::string> tokens;         // in split order
  std::vector<std::string> tokens_sorted;  // sorted, unique
  std::vector<std::string> bigrams, trigrams;
  std::string initials;
  std::vector<std::string> soundex;   // non-empty per-token codes
  std::vector<std::string> numerals;  // numeral-normalized tokens
  TfIdfModel::SparseVector tfidf;
  std::optional<double> quantity;
  std::optional<int> year;
  double jaro = 0.0;
  size_t trio_inter = 0;
  bool has_tokens = false, has_tokens_sorted = false, has_bigrams = false,
       has_trigrams = false, has_initials = false, has_soundex = false,
       has_numerals = false, has_tfidf = false, has_quantity = false,
       has_year = false, has_trio = false, has_jaro = false;

  void Reset(std::string_view d) {
    ToLowerInto(d, &lb);
    has_tokens = has_tokens_sorted = has_bigrams = has_trigrams =
        has_initials = has_soundex = has_numerals = has_tfidf = has_quantity =
            has_year = has_trio = has_jaro = false;
  }

  void EnsureTokens() {
    if (has_tokens) return;
    SplitTokensInto(lb, &tokens);
    has_tokens = true;
  }

  void EnsureTokensSorted() {
    if (has_tokens_sorted) return;
    EnsureTokens();
    SortedUniqueInto(tokens, &tokens_sorted);
    has_tokens_sorted = true;
  }

  void EnsureBigrams() {
    if (has_bigrams) return;
    GramsInto(lb, 2, &bigrams);
    has_bigrams = true;
  }

  void EnsureTrigrams() {
    if (has_trigrams) return;
    GramsInto(lb, 3, &trigrams);
    has_trigrams = true;
  }

  void EnsureInitials() {
    if (has_initials) return;
    EnsureTokens();
    initials.clear();
    for (const auto& t : tokens) initials.push_back(t[0]);
    has_initials = true;
  }

  void EnsureSoundex() {
    if (has_soundex) return;
    EnsureTokens();
    soundex.clear();
    for (const auto& t : tokens) {
      std::string code = SoundexToken(t);
      if (!code.empty()) soundex.push_back(std::move(code));
    }
    has_soundex = true;
  }

  void EnsureNumerals() {
    if (has_numerals) return;
    EnsureTokens();
    const size_t n = tokens.size();
    if (numerals.size() > n) numerals.resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (i < numerals.size()) {
        numerals[i].assign(tokens[i]);
      } else {
        numerals.emplace_back(tokens[i]);
      }
      const int v = NumeralTokenValue(numerals[i]);
      if (v > 0) numerals[i] = std::to_string(v);
    }
    has_numerals = true;
  }

  void EnsureTfidf(std::string_view d, const TfIdfModel& model) {
    if (has_tfidf) return;
    model.VectorizeInto(d, &tfidf);
    has_tfidf = true;
  }

  void EnsureQuantity(std::string_view d) {
    if (has_quantity) return;
    quantity = ParseQuantity(d);
    has_quantity = true;
  }

  void EnsureYear(std::string_view d) {
    if (has_year) return;
    year = ExtractYear(d);
    has_year = true;
  }

  void EnsureTrio(const SimilarityEnsemble::PreparedLabel& p) {
    if (has_trio) return;
    EnsureTokensSorted();
    trio_inter = SortedIntersectionCount(p.tokens_sorted, tokens_sorted);
    has_trio = true;
  }

  double EnsureJaro(const SimilarityEnsemble::PreparedLabel& p) {
    if (!has_jaro) {
      jaro = FastJaro(p.lower, lb);
      has_jaro = true;
    }
    return jaro;
  }
};

// One feature value, bitwise equal to what Score() would fold in for the
// same pair (same guards, same shared intermediates, same expressions).
double EvalKernelFeature(int feature, const SimilarityEnsemble::Context& ctx,
                         const SimilarityEnsemble::PreparedLabel& p,
                         KernelScratch& sc, std::string_view d, int query_type,
                         int data_type) {
  using E = SimilarityEnsemble;
  switch (feature) {
    case E::kExact:
      return p.label == d ? 1.0 : 0.0;
    case E::kCaseInsensitive:
      return p.lower == sc.lb ? 1.0 : 0.0;
    case E::kLevenshtein:
      return FastLevenshtein(p.lower, sc.lb);
    case E::kDamerauLevenshtein:
      return FastDamerau(p.lower, sc.lb);
    case E::kJaro:
      return sc.EnsureJaro(p);
    case E::kJaroWinkler:
      return FastJaroWinkler(p.lower, sc.lb, sc.EnsureJaro(p));
    case E::kPrefix:
      return FastPrefix(p.lower, sc.lb);
    case E::kSuffix:
      return FastSuffix(p.lower, sc.lb);
    case E::kContainment:
      return FastContainment(p.lower, sc.lb);
    case E::kTokenJaccard: {
      sc.EnsureTrio(p);
      const size_t na = p.tokens_sorted.size(), nb = sc.tokens_sorted.size();
      if (na == 0 && nb == 0) return 1.0;
      if (na == 0 || nb == 0) return 0.0;
      const size_t uni = na + nb - sc.trio_inter;
      return uni == 0 ? 0.0 : static_cast<double>(sc.trio_inter) / uni;
    }
    case E::kTokenDice: {
      sc.EnsureTrio(p);
      const size_t na = p.tokens_sorted.size(), nb = sc.tokens_sorted.size();
      if (na == 0 && nb == 0) return 1.0;
      if (na == 0 || nb == 0) return 0.0;
      return 2.0 * sc.trio_inter / (na + nb);
    }
    case E::kTokenOverlap: {
      sc.EnsureTrio(p);
      const size_t na = p.tokens_sorted.size(), nb = sc.tokens_sorted.size();
      if (na == 0 && nb == 0) return 1.0;
      if (na == 0 || nb == 0) return 0.0;
      return static_cast<double>(sc.trio_inter) / std::min(na, nb);
    }
    case E::kNGramJaccard: {
      sc.EnsureTrigrams();
      if (p.trigrams.empty() && sc.trigrams.empty()) return 1.0;
      const size_t inter = SortedIntersectionCount(p.trigrams, sc.trigrams);
      const size_t uni = p.trigrams.size() + sc.trigrams.size() - inter;
      return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
    }
    case E::kAcronym: {
      if (p.label.empty() || d.empty()) return 0.0;
      sc.EnsureTokens();
      if (p.tokens.size() == 1 && p.lower.size() >= 2) {
        sc.EnsureInitials();
        if (sc.initials == p.lower) return 1.0;
      }
      if (sc.tokens.size() == 1 && sc.lb.size() >= 2 && p.initials == sc.lb) {
        return 1.0;
      }
      return 0.0;
    }
    case E::kAbbreviation: {
      const std::string& la = p.lower;
      const std::string& lb = sc.lb;
      if (la.empty() || lb.empty()) return 0.0;
      const std::string& shorter = la.size() <= lb.size() ? la : lb;
      const std::string& longer = la.size() <= lb.size() ? lb : la;
      if (shorter.size() < 2 || shorter.size() == longer.size()) {
        return shorter == longer ? 1.0 : 0.0;
      }
      if (shorter[0] != longer[0]) return 0.0;
      size_t j = 0;
      for (size_t i = 0; i < longer.size() && j < shorter.size(); ++i) {
        if (longer[i] == shorter[j]) ++j;
      }
      if (j != shorter.size()) return 0.0;
      return static_cast<double>(shorter.size()) / longer.size() * 0.5 + 0.5;
    }
    case E::kLengthRatio: {
      if (p.label.empty() && d.empty()) return 1.0;
      const double lo = static_cast<double>(std::min(p.label.size(), d.size()));
      const double hi = static_cast<double>(std::max(p.label.size(), d.size()));
      return hi == 0 ? 1.0 : lo / hi;
    }
    case E::kNumeric: {
      if (!p.looks_numeric && !LooksNumeric(sc.lb)) return 0.0;
      sc.EnsureQuantity(d);
      return QuantitySimilarity(p.quantity, sc.quantity);
    }
    case E::kLcs:
      return FastLcs(p.lower, sc.lb);
    case E::kPhonetic: {
      sc.EnsureTokens();
      if (p.tokens.empty() || sc.tokens.empty()) return 0.0;
      if (p.soundex.empty()) return 0.0;
      sc.EnsureSoundex();
      for (const auto& code : sc.soundex) {
        if (std::binary_search(p.soundex.begin(), p.soundex.end(), code)) {
          return 1.0;
        }
      }
      return 0.0;
    }
    case E::kSynonym:
      return ctx.synonyms != nullptr ? ctx.synonyms->Similarity(p.label, d)
                                     : 0.0;
    case E::kTfIdfCosine: {
      if (ctx.tfidf == nullptr || !ctx.tfidf->finalized()) return 0.0;
      sc.EnsureTfidf(d, *ctx.tfidf);
      return TfIdfModel::CosineSparse(p.tfidf, sc.tfidf);
    }
    case E::kTypeOntology:
      return ctx.ontology != nullptr
                 ? ctx.ontology->Similarity(query_type, data_type)
                 : 0.0;
    case E::kMongeElkan:
      sc.EnsureTokens();
      return FastMongeElkan(p.tokens, sc.tokens);
    case E::kLongestCommonSubstring:
      return FastLongestCommonSubstring(p.lower, sc.lb);
    case E::kHamming: {
      const std::string& la = p.lower;
      const std::string& lb = sc.lb;
      if (la.size() != lb.size()) {
        return la.empty() && lb.empty() ? 1.0 : 0.0;
      }
      if (la.empty()) return 1.0;
      size_t equal = 0;
      for (size_t i = 0; i < la.size(); ++i) equal += la[i] == lb[i];
      return static_cast<double>(equal) / la.size();
    }
    case E::kSmithWaterman:
      return FastSmithWaterman(p.lower, sc.lb);
    case E::kBigramDice: {
      sc.EnsureBigrams();
      if (p.bigrams.empty() && sc.bigrams.empty()) return 1.0;
      if (p.bigrams.empty() || sc.bigrams.empty()) return 0.0;
      const size_t inter = SortedIntersectionCount(p.bigrams, sc.bigrams);
      return 2.0 * inter / (p.bigrams.size() + sc.bigrams.size());
    }
    case E::kTokenSequenceEdit:
      sc.EnsureTokens();
      return FastTokenSequenceEdit(p.tokens, sc.tokens);
    case E::kDate: {
      if (!p.contains_digit || !ContainsDigit(sc.lb)) return 0.0;
      sc.EnsureYear(d);
      return YearSimilarity(p.year, sc.year);
    }
    case E::kNumeralAware: {
      if (p.label.empty() || d.empty()) return 0.0;
      sc.EnsureNumerals();
      return p.numerals == sc.numerals ? 1.0 : 0.0;
    }
    default:
      return 0.0;
  }
}

}  // namespace

SimilarityEnsemble::SimilarityEnsemble() : SimilarityEnsemble(Context{}) {}

SimilarityEnsemble::SimilarityEnsemble(Context context)
    : context_(context),
      weights_(kFeatureCount, 1.0 / static_cast<double>(kFeatureCount)) {
  // Features whose context is missing get zero weight so the default
  // configuration stays a proper convex combination of active features.
  std::vector<double> w(kFeatureCount, 1.0);
  if (context_.synonyms == nullptr) w[kSynonym] = 0.0;
  if (context_.tfidf == nullptr) w[kTfIdfCosine] = 0.0;
  if (context_.ontology == nullptr) w[kTypeOntology] = 0.0;
  SetWeights(w);
}

std::vector<double> SimilarityEnsemble::Features(std::string_view q,
                                                 std::string_view d,
                                                 int query_type,
                                                 int data_type) const {
  std::vector<double> f(kFeatureCount, 0.0);
  f[kExact] = ExactMatch(q, d);
  f[kCaseInsensitive] = CaseInsensitiveMatch(q, d);
  f[kLevenshtein] = LevenshteinSimilarity(q, d);
  f[kDamerauLevenshtein] = DamerauLevenshteinSimilarity(q, d);
  f[kJaro] = JaroSimilarity(q, d);
  f[kJaroWinkler] = JaroWinklerSimilarity(q, d);
  f[kPrefix] = PrefixSimilarity(q, d);
  f[kSuffix] = SuffixSimilarity(q, d);
  f[kContainment] = ContainmentSimilarity(q, d);
  f[kTokenJaccard] = TokenJaccard(q, d);
  f[kTokenDice] = TokenDice(q, d);
  f[kTokenOverlap] = TokenOverlap(q, d);
  f[kNGramJaccard] = NGramJaccard(q, d);
  f[kAcronym] = AcronymSimilarity(q, d);
  f[kAbbreviation] = AbbreviationSimilarity(q, d);
  f[kLengthRatio] = LengthRatio(q, d);
  f[kNumeric] = NumericSimilarity(q, d);
  f[kLcs] = LcsSimilarity(q, d);
  f[kPhonetic] = PhoneticSimilarity(q, d);
  if (context_.synonyms != nullptr) {
    f[kSynonym] = context_.synonyms->Similarity(q, d);
  }
  if (context_.tfidf != nullptr && context_.tfidf->finalized()) {
    f[kTfIdfCosine] = context_.tfidf->Cosine(q, d);
  }
  if (context_.ontology != nullptr) {
    f[kTypeOntology] = context_.ontology->Similarity(query_type, data_type);
  }
  f[kMongeElkan] = MongeElkanSimilarity(q, d);
  f[kLongestCommonSubstring] = LongestCommonSubstringSimilarity(q, d);
  f[kHamming] = HammingSimilarity(q, d);
  f[kSmithWaterman] = SmithWatermanSimilarity(q, d);
  f[kBigramDice] = BigramDice(q, d);
  f[kTokenSequenceEdit] = TokenSequenceEditSimilarity(q, d);
  f[kDate] = DateSimilarity(q, d);
  f[kNumeralAware] = NumeralAwareMatch(q, d);
  return f;
}

double SimilarityEnsemble::Score(std::string_view q, std::string_view d,
                                 int query_type, int data_type) const {
  if (!q.empty() && EqualIgnoreCase(q, d)) return 1.0;
  const auto& w = weights_;
  const PairScratch sc(q, d);
  double s = 0.0;

  if (w[kExact] > 0.0 && q == d) s += w[kExact];
  // After the shortcut, lowercase equality only remains for empty q.
  if (sc.la == sc.lb) s += w[kCaseInsensitive];
  if (w[kLevenshtein] > 0.0) {
    s += w[kLevenshtein] * FastLevenshtein(sc.la, sc.lb);
  }
  if (w[kDamerauLevenshtein] > 0.0) {
    s += w[kDamerauLevenshtein] * FastDamerau(sc.la, sc.lb);
  }
  if (w[kJaro] > 0.0 || w[kJaroWinkler] > 0.0) {
    const double jaro = FastJaro(sc.la, sc.lb);
    s += w[kJaro] * jaro;
    if (w[kJaroWinkler] > 0.0) {
      s += w[kJaroWinkler] * FastJaroWinkler(sc.la, sc.lb, jaro);
    }
  }
  if (w[kPrefix] > 0.0) s += w[kPrefix] * FastPrefix(sc.la, sc.lb);
  if (w[kSuffix] > 0.0) s += w[kSuffix] * FastSuffix(sc.la, sc.lb);
  if (w[kContainment] > 0.0) {
    s += w[kContainment] * FastContainment(sc.la, sc.lb);
  }
  // Token-set family from the shared intersection count.
  {
    const size_t na = sc.ta.size();
    const size_t nb = sc.tb.size();
    const size_t inter = sc.token_intersection;
    if (na == 0 && nb == 0) {
      // Three separate adds (not one grouped sum) so the accumulation
      // order matches the kernel's canonical per-feature replay bitwise.
      s += w[kTokenJaccard];
      s += w[kTokenDice];
      s += w[kTokenOverlap];
    } else if (na > 0 && nb > 0) {
      const size_t uni = na + nb - inter;
      if (uni > 0) {
        s += w[kTokenJaccard] * (static_cast<double>(inter) / uni);
      }
      s += w[kTokenDice] * (2.0 * inter / (na + nb));
      s += w[kTokenOverlap] * (static_cast<double>(inter) / std::min(na, nb));
    }
  }
  if (w[kNGramJaccard] > 0.0) {
    s += w[kNGramJaccard] * FastNGramJaccard(sc.la, sc.lb);
  }
  if (w[kAcronym] > 0.0) s += w[kAcronym] * AcronymSimilarity(q, d);
  if (w[kAbbreviation] > 0.0) {
    s += w[kAbbreviation] * AbbreviationSimilarity(q, d);
  }
  if (w[kLengthRatio] > 0.0) s += w[kLengthRatio] * LengthRatio(q, d);
  if (w[kNumeric] > 0.0 && (LooksNumeric(sc.la) || LooksNumeric(sc.lb))) {
    s += w[kNumeric] * NumericSimilarity(q, d);
  }
  if (w[kLcs] > 0.0) s += w[kLcs] * LcsSimilarity(sc.la, sc.lb);
  if (w[kPhonetic] > 0.0) s += w[kPhonetic] * PhoneticSimilarity(q, d);
  if (w[kSynonym] > 0.0 && context_.synonyms != nullptr) {
    s += w[kSynonym] * context_.synonyms->Similarity(q, d);
  }
  if (w[kTfIdfCosine] > 0.0 && context_.tfidf != nullptr &&
      context_.tfidf->finalized()) {
    s += w[kTfIdfCosine] * context_.tfidf->Cosine(q, d);
  }
  if (w[kTypeOntology] > 0.0 && context_.ontology != nullptr) {
    s += w[kTypeOntology] * context_.ontology->Similarity(query_type, data_type);
  }
  if (w[kMongeElkan] > 0.0) s += w[kMongeElkan] * MongeElkanSimilarity(q, d);
  if (w[kLongestCommonSubstring] > 0.0) {
    s += w[kLongestCommonSubstring] *
         LongestCommonSubstringSimilarity(sc.la, sc.lb);
  }
  if (w[kHamming] > 0.0) s += w[kHamming] * HammingSimilarity(sc.la, sc.lb);
  if (w[kSmithWaterman] > 0.0) {
    s += w[kSmithWaterman] * SmithWatermanSimilarity(sc.la, sc.lb);
  }
  if (w[kBigramDice] > 0.0) s += w[kBigramDice] * BigramDice(sc.la, sc.lb);
  if (w[kTokenSequenceEdit] > 0.0) {
    s += w[kTokenSequenceEdit] * TokenSequenceEditSimilarity(sc.la, sc.lb);
  }
  if (w[kDate] > 0.0 && ContainsDigit(sc.la) && ContainsDigit(sc.lb)) {
    s += w[kDate] * DateSimilarity(q, d);
  }
  if (w[kNumeralAware] > 0.0) s += w[kNumeralAware] * NumeralAwareMatch(q, d);
  return s;
}

void SimilarityEnsemble::SetWeights(const std::vector<double>& weights) {
  weights_.assign(kFeatureCount, 0.0);
  double sum = 0.0;
  for (int i = 0; i < kFeatureCount && i < static_cast<int>(weights.size());
       ++i) {
    weights_[i] = weights[i] > 0.0 ? weights[i] : 0.0;
    sum += weights_[i];
  }
  if (sum <= 0.0) {
    weights_.assign(kFeatureCount, 1.0 / static_cast<double>(kFeatureCount));
  } else {
    for (auto& w : weights_) w /= sum;
  }
  RebuildEvalOrder();
}

void SimilarityEnsemble::RebuildEvalOrder() {
  eval_order_.clear();
  eval_order_.reserve(kFeatureCount);
  // The O(1) pre-filters run first regardless of weight: they cost
  // nothing and seed the running score before the first bound check.
  eval_order_.push_back(kExact);
  eval_order_.push_back(kCaseInsensitive);
  eval_order_.push_back(kLengthRatio);
  std::vector<int> rest;
  rest.reserve(kFeatureCount);
  for (int i = 0; i < kFeatureCount; ++i) {
    if (i == kExact || i == kCaseInsensitive || i == kLengthRatio) continue;
    if (weights_[i] > 0.0) rest.push_back(i);
  }
  std::sort(rest.begin(), rest.end(), [this](int a, int b) {
    if (weights_[a] != weights_[b]) return weights_[a] > weights_[b];
    if (kCostRank[a] != kCostRank[b]) return kCostRank[a] < kCostRank[b];
    return a < b;
  });
  eval_order_.insert(eval_order_.end(), rest.begin(), rest.end());
  remaining_mass_.assign(eval_order_.size() + 1, 0.0);
  for (size_t k = eval_order_.size(); k-- > 0;) {
    remaining_mass_[k] = remaining_mass_[k + 1] + weights_[eval_order_[k]];
  }
}

SimilarityEnsemble::PreparedLabel SimilarityEnsemble::Prepare(
    std::string_view label) const {
  PreparedLabel p;
  p.label.assign(label);
  p.lower = ToLower(label);
  p.tokens = SplitTokens(p.lower);
  p.tokens_sorted = p.tokens;
  std::sort(p.tokens_sorted.begin(), p.tokens_sorted.end());
  p.tokens_sorted.erase(
      std::unique(p.tokens_sorted.begin(), p.tokens_sorted.end()),
      p.tokens_sorted.end());
  GramsInto(p.lower, 2, &p.bigrams);
  GramsInto(p.lower, 3, &p.trigrams);
  for (const auto& t : p.tokens) {
    p.initials.push_back(t[0]);
    std::string code = SoundexToken(t);
    if (!code.empty()) p.soundex.push_back(std::move(code));
  }
  std::sort(p.soundex.begin(), p.soundex.end());
  p.soundex.erase(std::unique(p.soundex.begin(), p.soundex.end()),
                  p.soundex.end());
  p.numerals = NormalizeNumerals(label);
  p.quantity = ParseQuantity(label);
  p.year = ExtractYear(label);
  p.looks_numeric = LooksNumeric(p.lower);
  p.contains_digit = ContainsDigit(p.lower);
  if (context_.tfidf != nullptr && context_.tfidf->finalized()) {
    p.tfidf = context_.tfidf->Vectorize(p.label);
  }
  return p;
}

double SimilarityEnsemble::ScoreAgainstThreshold(const PreparedLabel& prepared,
                                                 std::string_view data_label,
                                                 double threshold,
                                                 int query_type, int data_type,
                                                 KernelStats* stats) const {
  if (stats != nullptr) ++stats->pairs;
  // Same shortcut as Score(): case-insensitive equality is exactly 1.
  if (!prepared.label.empty() && EqualIgnoreCase(prepared.label, data_label)) {
    return 1.0;
  }
  static thread_local KernelScratch sc;
  sc.Reset(data_label);
  double f[kFeatureCount] = {};
  const size_t order = eval_order_.size();
  double partial = 0.0;
  for (size_t k = 0; k < order; ++k) {
    // Upper bound on the final score: every unevaluated feature is <= 1,
    // so at most the remaining weight mass can still be added. The 1e-9
    // margin keeps accumulation-order rounding (~1e-13 for a 30-term
    // convex sum) from ever rejecting a pair the canonical sum accepts.
    if (threshold >= 0.0 && partial + remaining_mass_[k] < threshold - 1e-9) {
      if (stats != nullptr) {
        ++stats->early_exits;
        stats->features_evaluated += k;
        stats->features_skipped += order - k;
      }
      return partial + remaining_mass_[k];
    }
    const int i = eval_order_[k];
    f[i] = EvalKernelFeature(i, context_, prepared, sc, data_label, query_type,
                             data_type);
    partial += weights_[i] * f[i];
  }
  if (stats != nullptr) stats->features_evaluated += order;
  // Replay the weighted sum in canonical feature order: bitwise equal to
  // Score()'s accumulation (skipped/zero-weight terms add +0.0, which is
  // an identity on the non-negative running sum).
  double s = 0.0;
  for (int i = 0; i < kFeatureCount; ++i) s += weights_[i] * f[i];
  return s;
}

const std::vector<std::string>& SimilarityEnsemble::FeatureNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "exact",        "case_insensitive", "levenshtein", "damerau",
      "jaro",         "jaro_winkler",     "prefix",      "suffix",
      "containment",  "token_jaccard",    "token_dice",  "token_overlap",
      "ngram_jaccard", "acronym",         "abbreviation", "length_ratio",
      "numeric",      "lcs",              "phonetic",    "synonym",
      "tfidf_cosine", "type_ontology",    "monge_elkan",
      "longest_common_substring",         "hamming",     "smith_waterman",
      "bigram_dice",  "token_sequence_edit",             "date",
      "numeral_aware"};
  return *names;
}

}  // namespace star::text
