#include "text/ensemble.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"
#include "text/phonetic.h"
#include "text/similarity.h"

namespace star::text {

namespace {

bool EqualIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Shared intermediates for the fast Score() path: lowercased strings and
/// sorted token vectors, computed once per pair instead of once per
/// feature. All feature computations below operate on these and are
/// bitwise-equivalent to the canonical functions in similarity.h (which
/// lowercase internally), as verified by EnsembleTest.FastPathMatchesFeatures.
struct PairScratch {
  std::string la, lb;                  // lowercased
  std::vector<std::string> ta, tb;     // tokens of la / lb (sorted, unique)
  size_t token_intersection = 0;

  PairScratch(std::string_view a, std::string_view b)
      : la(ToLower(a)), lb(ToLower(b)) {
    ta = SplitTokens(la);
    tb = SplitTokens(lb);
    std::sort(ta.begin(), ta.end());
    ta.erase(std::unique(ta.begin(), ta.end()), ta.end());
    std::sort(tb.begin(), tb.end());
    tb.erase(std::unique(tb.begin(), tb.end()), tb.end());
    size_t i = 0, j = 0;
    while (i < ta.size() && j < tb.size()) {
      if (ta[i] < tb[j]) {
        ++i;
      } else if (tb[j] < ta[i]) {
        ++j;
      } else {
        ++token_intersection;
        ++i;
        ++j;
      }
    }
  }
};

double FastLevenshtein(const std::string& a, const std::string& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 0.0;
  // Two-row DP on pre-lowercased strings.
  static thread_local std::vector<int> prev, cur;
  prev.resize(m + 1);
  cur.resize(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return 1.0 - prev[m] / static_cast<double>(std::max(n, m));
}

double FastDamerau(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  // Three-row rolling OSA DP.
  static thread_local std::vector<int> r0, r1, r2;
  r0.resize(m + 1);
  r1.resize(m + 1);
  r2.resize(m + 1);
  for (size_t j = 0; j <= m; ++j) r1[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    r2[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      r2[j] = std::min({r1[j] + 1, r2[j - 1] + 1, r1[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        r2[j] = std::min(r2[j], r0[j - 2] + 1);
      }
    }
    std::swap(r0, r1);
    std::swap(r1, r2);
  }
  return 1.0 - r1[m] / static_cast<double>(std::max(n, m));
}

double FastJaro(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  const size_t window = std::max(n, m) / 2 == 0 ? 0 : std::max(n, m) / 2 - 1;
  static thread_local std::vector<bool> a_match, b_match;
  a_match.assign(n, false);
  b_match.assign(m, false);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_match[j] || a[i] != b[j]) continue;
      a_match[i] = b_match[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  size_t t = 0, j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[j]) ++j;
    if (a[i] != b[j]) ++t;
    ++j;
  }
  const double mm = static_cast<double>(matches);
  return (mm / n + mm / m + (mm - t / 2.0) / mm) / 3.0;
}

double FastJaroWinkler(const std::string& a, const std::string& b,
                       double jaro) {
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double FastPrefix(const std::string& a, const std::string& b) {
  const size_t lim = std::min(a.size(), b.size());
  if (lim == 0) return a.size() == b.size() ? 1.0 : 0.0;
  size_t p = 0;
  while (p < lim && a[p] == b[p]) ++p;
  return static_cast<double>(p) / lim;
}

double FastSuffix(const std::string& a, const std::string& b) {
  const size_t lim = std::min(a.size(), b.size());
  if (lim == 0) return a.size() == b.size() ? 1.0 : 0.0;
  size_t p = 0;
  while (p < lim && a[a.size() - 1 - p] == b[b.size() - 1 - p]) ++p;
  return static_cast<double>(p) / lim;
}

double FastContainment(const std::string& la, const std::string& lb) {
  if (la.empty() || lb.empty()) return la.size() == lb.size() ? 1.0 : 0.0;
  const std::string& longer = la.size() >= lb.size() ? la : lb;
  const std::string& shorter = la.size() >= lb.size() ? lb : la;
  if (longer.find(shorter) == std::string::npos) return 0.0;
  return static_cast<double>(shorter.size()) / longer.size();
}

double FastNGramJaccard(const std::string& la, const std::string& lb) {
  // Sorted unique trigram vectors; tiny strings degenerate to themselves.
  const auto grams = [](const std::string& s) {
    std::vector<std::string> g;
    if (s.size() < 3) {
      if (!s.empty()) g.push_back(s);
      return g;
    }
    g.reserve(s.size() - 2);
    for (size_t i = 0; i + 3 <= s.size(); ++i) g.push_back(s.substr(i, 3));
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
    return g;
  };
  auto ga = grams(la);
  auto gb = grams(lb);
  if (ga.empty() && gb.empty()) return 1.0;
  size_t inter = 0, i = 0, j = 0;
  while (i < ga.size() && j < gb.size()) {
    if (ga[i] < gb[j]) {
      ++i;
    } else if (gb[j] < ga[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  const size_t uni = ga.size() + gb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

bool ContainsDigit(const std::string& s) {
  for (const char c : s) {
    if (c >= '0' && c <= '9') return true;
  }
  return false;
}

bool LooksNumeric(const std::string& s) {
  const std::string_view t = Trim(s);
  if (t.empty()) return false;
  const char c = t[0];
  return (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.';
}

}  // namespace

SimilarityEnsemble::SimilarityEnsemble() : SimilarityEnsemble(Context{}) {}

SimilarityEnsemble::SimilarityEnsemble(Context context)
    : context_(context),
      weights_(kFeatureCount, 1.0 / static_cast<double>(kFeatureCount)) {
  // Features whose context is missing get zero weight so the default
  // configuration stays a proper convex combination of active features.
  std::vector<double> w(kFeatureCount, 1.0);
  if (context_.synonyms == nullptr) w[kSynonym] = 0.0;
  if (context_.tfidf == nullptr) w[kTfIdfCosine] = 0.0;
  if (context_.ontology == nullptr) w[kTypeOntology] = 0.0;
  SetWeights(w);
}

std::vector<double> SimilarityEnsemble::Features(std::string_view q,
                                                 std::string_view d,
                                                 int query_type,
                                                 int data_type) const {
  std::vector<double> f(kFeatureCount, 0.0);
  f[kExact] = ExactMatch(q, d);
  f[kCaseInsensitive] = CaseInsensitiveMatch(q, d);
  f[kLevenshtein] = LevenshteinSimilarity(q, d);
  f[kDamerauLevenshtein] = DamerauLevenshteinSimilarity(q, d);
  f[kJaro] = JaroSimilarity(q, d);
  f[kJaroWinkler] = JaroWinklerSimilarity(q, d);
  f[kPrefix] = PrefixSimilarity(q, d);
  f[kSuffix] = SuffixSimilarity(q, d);
  f[kContainment] = ContainmentSimilarity(q, d);
  f[kTokenJaccard] = TokenJaccard(q, d);
  f[kTokenDice] = TokenDice(q, d);
  f[kTokenOverlap] = TokenOverlap(q, d);
  f[kNGramJaccard] = NGramJaccard(q, d);
  f[kAcronym] = AcronymSimilarity(q, d);
  f[kAbbreviation] = AbbreviationSimilarity(q, d);
  f[kLengthRatio] = LengthRatio(q, d);
  f[kNumeric] = NumericSimilarity(q, d);
  f[kLcs] = LcsSimilarity(q, d);
  f[kPhonetic] = PhoneticSimilarity(q, d);
  if (context_.synonyms != nullptr) {
    f[kSynonym] = context_.synonyms->Similarity(q, d);
  }
  if (context_.tfidf != nullptr && context_.tfidf->finalized()) {
    f[kTfIdfCosine] = context_.tfidf->Cosine(q, d);
  }
  if (context_.ontology != nullptr) {
    f[kTypeOntology] = context_.ontology->Similarity(query_type, data_type);
  }
  f[kMongeElkan] = MongeElkanSimilarity(q, d);
  f[kLongestCommonSubstring] = LongestCommonSubstringSimilarity(q, d);
  f[kHamming] = HammingSimilarity(q, d);
  f[kSmithWaterman] = SmithWatermanSimilarity(q, d);
  f[kBigramDice] = BigramDice(q, d);
  f[kTokenSequenceEdit] = TokenSequenceEditSimilarity(q, d);
  f[kDate] = DateSimilarity(q, d);
  f[kNumeralAware] = NumeralAwareMatch(q, d);
  return f;
}

double SimilarityEnsemble::Score(std::string_view q, std::string_view d,
                                 int query_type, int data_type) const {
  if (!q.empty() && EqualIgnoreCase(q, d)) return 1.0;
  const auto& w = weights_;
  const PairScratch sc(q, d);
  double s = 0.0;

  if (w[kExact] > 0.0 && q == d) s += w[kExact];
  // After the shortcut, lowercase equality only remains for empty q.
  if (sc.la == sc.lb) s += w[kCaseInsensitive];
  if (w[kLevenshtein] > 0.0) {
    s += w[kLevenshtein] * FastLevenshtein(sc.la, sc.lb);
  }
  if (w[kDamerauLevenshtein] > 0.0) {
    s += w[kDamerauLevenshtein] * FastDamerau(sc.la, sc.lb);
  }
  if (w[kJaro] > 0.0 || w[kJaroWinkler] > 0.0) {
    const double jaro = FastJaro(sc.la, sc.lb);
    s += w[kJaro] * jaro;
    if (w[kJaroWinkler] > 0.0) {
      s += w[kJaroWinkler] * FastJaroWinkler(sc.la, sc.lb, jaro);
    }
  }
  if (w[kPrefix] > 0.0) s += w[kPrefix] * FastPrefix(sc.la, sc.lb);
  if (w[kSuffix] > 0.0) s += w[kSuffix] * FastSuffix(sc.la, sc.lb);
  if (w[kContainment] > 0.0) {
    s += w[kContainment] * FastContainment(sc.la, sc.lb);
  }
  // Token-set family from the shared intersection count.
  {
    const size_t na = sc.ta.size();
    const size_t nb = sc.tb.size();
    const size_t inter = sc.token_intersection;
    if (na == 0 && nb == 0) {
      s += w[kTokenJaccard] + w[kTokenDice] + w[kTokenOverlap];
    } else if (na > 0 && nb > 0) {
      const size_t uni = na + nb - inter;
      if (uni > 0) {
        s += w[kTokenJaccard] * (static_cast<double>(inter) / uni);
      }
      s += w[kTokenDice] * (2.0 * inter / (na + nb));
      s += w[kTokenOverlap] * (static_cast<double>(inter) / std::min(na, nb));
    }
  }
  if (w[kNGramJaccard] > 0.0) {
    s += w[kNGramJaccard] * FastNGramJaccard(sc.la, sc.lb);
  }
  if (w[kAcronym] > 0.0) s += w[kAcronym] * AcronymSimilarity(q, d);
  if (w[kAbbreviation] > 0.0) {
    s += w[kAbbreviation] * AbbreviationSimilarity(q, d);
  }
  if (w[kLengthRatio] > 0.0) s += w[kLengthRatio] * LengthRatio(q, d);
  if (w[kNumeric] > 0.0 && (LooksNumeric(sc.la) || LooksNumeric(sc.lb))) {
    s += w[kNumeric] * NumericSimilarity(q, d);
  }
  if (w[kLcs] > 0.0) s += w[kLcs] * LcsSimilarity(sc.la, sc.lb);
  if (w[kPhonetic] > 0.0) s += w[kPhonetic] * PhoneticSimilarity(q, d);
  if (w[kSynonym] > 0.0 && context_.synonyms != nullptr) {
    s += w[kSynonym] * context_.synonyms->Similarity(q, d);
  }
  if (w[kTfIdfCosine] > 0.0 && context_.tfidf != nullptr &&
      context_.tfidf->finalized()) {
    s += w[kTfIdfCosine] * context_.tfidf->Cosine(q, d);
  }
  if (w[kTypeOntology] > 0.0 && context_.ontology != nullptr) {
    s += w[kTypeOntology] * context_.ontology->Similarity(query_type, data_type);
  }
  if (w[kMongeElkan] > 0.0) s += w[kMongeElkan] * MongeElkanSimilarity(q, d);
  if (w[kLongestCommonSubstring] > 0.0) {
    s += w[kLongestCommonSubstring] *
         LongestCommonSubstringSimilarity(sc.la, sc.lb);
  }
  if (w[kHamming] > 0.0) s += w[kHamming] * HammingSimilarity(sc.la, sc.lb);
  if (w[kSmithWaterman] > 0.0) {
    s += w[kSmithWaterman] * SmithWatermanSimilarity(sc.la, sc.lb);
  }
  if (w[kBigramDice] > 0.0) s += w[kBigramDice] * BigramDice(sc.la, sc.lb);
  if (w[kTokenSequenceEdit] > 0.0) {
    s += w[kTokenSequenceEdit] * TokenSequenceEditSimilarity(sc.la, sc.lb);
  }
  if (w[kDate] > 0.0 && ContainsDigit(sc.la) && ContainsDigit(sc.lb)) {
    s += w[kDate] * DateSimilarity(q, d);
  }
  if (w[kNumeralAware] > 0.0) s += w[kNumeralAware] * NumeralAwareMatch(q, d);
  return s;
}

void SimilarityEnsemble::SetWeights(const std::vector<double>& weights) {
  weights_.assign(kFeatureCount, 0.0);
  double sum = 0.0;
  for (int i = 0; i < kFeatureCount && i < static_cast<int>(weights.size());
       ++i) {
    weights_[i] = weights[i] > 0.0 ? weights[i] : 0.0;
    sum += weights_[i];
  }
  if (sum <= 0.0) {
    weights_.assign(kFeatureCount, 1.0 / static_cast<double>(kFeatureCount));
    return;
  }
  for (auto& w : weights_) w /= sum;
}

const std::vector<std::string>& SimilarityEnsemble::FeatureNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "exact",        "case_insensitive", "levenshtein", "damerau",
      "jaro",         "jaro_winkler",     "prefix",      "suffix",
      "containment",  "token_jaccard",    "token_dice",  "token_overlap",
      "ngram_jaccard", "acronym",         "abbreviation", "length_ratio",
      "numeric",      "lcs",              "phonetic",    "synonym",
      "tfidf_cosine", "type_ontology",    "monge_elkan",
      "longest_common_substring",         "hamming",     "smith_waterman",
      "bigram_dice",  "token_sequence_edit",             "date",
      "numeral_aware"};
  return *names;
}

}  // namespace star::text
