#include "text/ensemble.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"
#include "text/phonetic.h"
#include "text/similarity.h"

namespace star::text {

bool LooksNumeric(std::string_view s) {
  const std::string_view t = Trim(s);
  if (t.empty()) return false;
  const char c = t[0];
  return (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.';
}

namespace {

bool EqualIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Shared intermediates for the fast Score() path: lowercased strings and
/// sorted token vectors, computed once per pair instead of once per
/// feature. All feature computations below operate on these and are
/// bitwise-equivalent to the canonical functions in similarity.h (which
/// lowercase internally), as verified by EnsembleTest.FastPathMatchesFeatures.
struct PairScratch {
  std::string la, lb;                  // lowercased
  std::vector<std::string> ta, tb;     // tokens of la / lb (sorted, unique)
  size_t token_intersection = 0;

  PairScratch(std::string_view a, std::string_view b)
      : la(ToLower(a)), lb(ToLower(b)) {
    ta = SplitTokens(la);
    tb = SplitTokens(lb);
    std::sort(ta.begin(), ta.end());
    ta.erase(std::unique(ta.begin(), ta.end()), ta.end());
    std::sort(tb.begin(), tb.end());
    tb.erase(std::unique(tb.begin(), tb.end()), tb.end());
    size_t i = 0, j = 0;
    while (i < ta.size() && j < tb.size()) {
      if (ta[i] < tb[j]) {
        ++i;
      } else if (tb[j] < ta[i]) {
        ++j;
      } else {
        ++token_intersection;
        ++i;
        ++j;
      }
    }
  }
};

double FastLevenshtein(const std::string& a, const std::string& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 0.0;
  // Two-row DP on pre-lowercased strings.
  static thread_local std::vector<int> prev, cur;
  prev.resize(m + 1);
  cur.resize(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return 1.0 - prev[m] / static_cast<double>(std::max(n, m));
}

double FastDamerau(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  // Three-row rolling OSA DP.
  static thread_local std::vector<int> r0, r1, r2;
  r0.resize(m + 1);
  r1.resize(m + 1);
  r2.resize(m + 1);
  for (size_t j = 0; j <= m; ++j) r1[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    r2[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      r2[j] = std::min({r1[j] + 1, r2[j - 1] + 1, r1[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        r2[j] = std::min(r2[j], r0[j - 2] + 1);
      }
    }
    std::swap(r0, r1);
    std::swap(r1, r2);
  }
  return 1.0 - r1[m] / static_cast<double>(std::max(n, m));
}

double FastJaro(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  const size_t window = std::max(n, m) / 2 == 0 ? 0 : std::max(n, m) / 2 - 1;
  if (n <= 64 && m <= 64) {
    // Match bookkeeping in two 64-bit masks: same greedy pairing as the
    // vector<bool> path below (ascending i, first unmatched j in window),
    // so matches/transpositions — and the resulting double — are
    // bitwise identical, without the per-pair bitset clearing. This is
    // also the Monge-Elkan inner loop, where labels are single tokens.
    uint64_t a_mask = 0, b_mask = 0;
    size_t matches = 0;
    for (size_t i = 0; i < n; ++i) {
      const size_t lo = i > window ? i - window : 0;
      const size_t hi = std::min(m, i + window + 1);
      const char ai = a[i];
      for (size_t j = lo; j < hi; ++j) {
        if (((b_mask >> j) & 1u) != 0 || ai != b[j]) continue;
        a_mask |= uint64_t{1} << i;
        b_mask |= uint64_t{1} << j;
        ++matches;
        break;
      }
    }
    if (matches == 0) return 0.0;
    size_t t = 0, j = 0;
    for (size_t i = 0; i < n; ++i) {
      if (((a_mask >> i) & 1u) == 0) continue;
      while (((b_mask >> j) & 1u) == 0) ++j;
      if (a[i] != b[j]) ++t;
      ++j;
    }
    const double mm = static_cast<double>(matches);
    return (mm / n + mm / m + (mm - t / 2.0) / mm) / 3.0;
  }
  static thread_local std::vector<bool> a_match, b_match;
  a_match.assign(n, false);
  b_match.assign(m, false);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_match[j] || a[i] != b[j]) continue;
      a_match[i] = b_match[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  size_t t = 0, j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[j]) ++j;
    if (a[i] != b[j]) ++t;
    ++j;
  }
  const double mm = static_cast<double>(matches);
  return (mm / n + mm / m + (mm - t / 2.0) / mm) / 3.0;
}

double FastJaroWinkler(const std::string& a, const std::string& b,
                       double jaro) {
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double FastPrefix(const std::string& a, const std::string& b) {
  const size_t lim = std::min(a.size(), b.size());
  if (lim == 0) return a.size() == b.size() ? 1.0 : 0.0;
  size_t p = 0;
  while (p < lim && a[p] == b[p]) ++p;
  return static_cast<double>(p) / lim;
}

double FastSuffix(const std::string& a, const std::string& b) {
  const size_t lim = std::min(a.size(), b.size());
  if (lim == 0) return a.size() == b.size() ? 1.0 : 0.0;
  size_t p = 0;
  while (p < lim && a[a.size() - 1 - p] == b[b.size() - 1 - p]) ++p;
  return static_cast<double>(p) / lim;
}

double FastContainment(const std::string& la, const std::string& lb) {
  if (la.empty() || lb.empty()) return la.size() == lb.size() ? 1.0 : 0.0;
  const std::string& longer = la.size() >= lb.size() ? la : lb;
  const std::string& shorter = la.size() >= lb.size() ? lb : la;
  if (longer.find(shorter) == std::string::npos) return 0.0;
  return static_cast<double>(shorter.size()) / longer.size();
}

double FastNGramJaccard(const std::string& la, const std::string& lb) {
  // Sorted unique trigram vectors; tiny strings degenerate to themselves.
  const auto grams = [](const std::string& s) {
    std::vector<std::string> g;
    if (s.size() < 3) {
      if (!s.empty()) g.push_back(s);
      return g;
    }
    g.reserve(s.size() - 2);
    for (size_t i = 0; i + 3 <= s.size(); ++i) g.push_back(s.substr(i, 3));
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
    return g;
  };
  auto ga = grams(la);
  auto gb = grams(lb);
  if (ga.empty() && gb.empty()) return 1.0;
  size_t inter = 0, i = 0, j = 0;
  while (i < ga.size() && j < gb.size()) {
    if (ga[i] < gb[j]) {
      ++i;
    } else if (gb[j] < ga[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  const size_t uni = ga.size() + gb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

bool ContainsDigit(const std::string& s) {
  for (const char c : s) {
    if (c >= '0' && c <= '9') return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Threshold-aware kernel machinery (ScoreAgainstThreshold).
// ---------------------------------------------------------------------

// Relative evaluation cost of each feature (index-aligned with the
// Feature enum). Used to break weight ties in RebuildEvalOrder so early
// exits skip the expensive alignment DPs: 0 = O(1), 1 = single linear
// scan/parse, 2 = tokenization-level, 3 = n-gram/sparse-vector,
// 4 = O(n*m) character DP, 5 = token-pair DP product (Monge-Elkan).
constexpr int kCostRank[SimilarityEnsemble::kFeatureCount] = {
    0,  // kExact
    0,  // kCaseInsensitive
    4,  // kLevenshtein
    4,  // kDamerauLevenshtein
    2,  // kJaro
    2,  // kJaroWinkler
    1,  // kPrefix
    1,  // kSuffix
    2,  // kContainment
    2,  // kTokenJaccard
    2,  // kTokenDice
    2,  // kTokenOverlap
    3,  // kNGramJaccard
    2,  // kAcronym
    2,  // kAbbreviation
    0,  // kLengthRatio
    1,  // kNumeric
    4,  // kLcs
    2,  // kPhonetic
    2,  // kSynonym
    3,  // kTfIdfCosine
    1,  // kTypeOntology
    5,  // kMongeElkan
    4,  // kLongestCommonSubstring
    1,  // kHamming
    4,  // kSmithWaterman
    3,  // kBigramDice
    4,  // kTokenSequenceEdit
    1,  // kDate
    2,  // kNumeralAware
};

// Sweep-stage grouping for the batched kernel's evaluation order
// (index-aligned with the Feature enum). Within a group features keep
// the (weight desc, index asc) order; groups run cheap-and-informative
// first so sub-threshold lanes exit before the DPs and sparse probes:
// 0 = O(1) facts, 1 = linear scans, 2 = token-set measures,
// 3 = character scans with refined caps, 4 = phonetic/synonym probes,
// 5 = gram/sparse-vector measures, 6 = O(n*m) DPs, 7 = Monge-Elkan.
constexpr int kBatchGroup[SimilarityEnsemble::kFeatureCount] = {
    0,  // kExact
    0,  // kCaseInsensitive
    6,  // kLevenshtein
    6,  // kDamerauLevenshtein
    3,  // kJaro
    3,  // kJaroWinkler
    1,  // kPrefix
    1,  // kSuffix
    3,  // kContainment
    2,  // kTokenJaccard
    2,  // kTokenDice
    2,  // kTokenOverlap
    5,  // kNGramJaccard
    2,  // kAcronym
    1,  // kAbbreviation
    0,  // kLengthRatio
    0,  // kNumeric
    6,  // kLcs
    4,  // kPhonetic
    4,  // kSynonym
    5,  // kTfIdfCosine
    0,  // kTypeOntology
    7,  // kMongeElkan
    6,  // kLongestCommonSubstring
    0,  // kHamming
    6,  // kSmithWaterman
    5,  // kBigramDice
    2,  // kTokenSequenceEdit
    1,  // kDate
    2,  // kNumeralAware
};

// Allocation-free equivalents of the remaining similarity.h DPs, for
// pre-lowercased inputs (integer DPs, so the normalized results are
// bitwise equal to the canonical functions).

double FastLcs(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  static thread_local std::vector<int> prev, cur;
  prev.assign(m + 1, 0);
  cur.assign(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(prev[m]) / std::max(n, m);
}

double FastLongestCommonSubstring(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  static thread_local std::vector<int> prev, cur;
  prev.assign(m + 1, 0);
  cur.assign(m + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        best = std::max(best, cur[j]);
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(best) / std::max(n, m);
}

double FastSmithWaterman(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  static thread_local std::vector<int> prev, cur;
  prev.assign(m + 1, 0);
  cur.assign(m + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const int diag = prev[j - 1] + (a[i - 1] == b[j - 1] ? 1 : -1);
      cur[j] = std::max({0, diag, prev[j] - 1, cur[j - 1] - 1});
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(best) / std::min(n, m);
}

double FastTokenSequenceEdit(const std::vector<std::string>& ta,
                             const std::vector<std::string>& tb) {
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  const size_t n = ta.size(), m = tb.size();
  static thread_local std::vector<int> prev, cur;
  prev.resize(m + 1);
  cur.resize(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = ta[i - 1] == tb[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return 1.0 - prev[m] / static_cast<double>(std::max(n, m));
}

// Monge-Elkan over pre-lowercased in-order token lists (duplicates kept,
// summation in token order — the canonical accumulation order).
double FastMongeElkan(const std::vector<std::string>& ta,
                      const std::vector<std::string>& tb) {
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  const auto directed = [](const std::vector<std::string>& xs,
                           const std::vector<std::string>& ys) {
    double sum = 0.0;
    for (const auto& x : xs) {
      double best = 0.0;
      for (const auto& y : ys) {
        best = std::max(best, FastJaroWinkler(x, y, FastJaro(x, y)));
      }
      sum += best;
    }
    return sum / xs.size();
  };
  return std::max(directed(ta, tb), directed(tb, ta));
}

// Copies `src` into `dst` reusing element buffers, then sorts and
// deduplicates in place (string swaps/moves only).
void SortedUniqueInto(const std::vector<std::string>& src,
                      std::vector<std::string>* dst) {
  const size_t n = src.size();
  if (dst->size() > n) dst->resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (i < dst->size()) {
      (*dst)[i].assign(src[i]);
    } else {
      dst->emplace_back(src[i]);
    }
  }
  std::sort(dst->begin(), dst->end());
  dst->erase(std::unique(dst->begin(), dst->end()), dst->end());
}

// Sorted unique character n-grams of a pre-lowercased string into a
// reused vector; strings shorter than n degenerate to {s} (the CharNGrams
// convention shared by NGramJaccard / BigramDice / FastNGramJaccard).
void GramsInto(const std::string& s, size_t n, std::vector<std::string>* dst) {
  size_t count = 0;
  const auto emit = [&](size_t pos, size_t len) {
    if (count < dst->size()) {
      (*dst)[count].assign(s, pos, len);
    } else {
      dst->emplace_back(s, pos, len);
    }
    ++count;
  };
  if (s.size() < n) {
    if (!s.empty()) emit(0, s.size());
  } else {
    for (size_t i = 0; i + n <= s.size(); ++i) emit(i, n);
  }
  dst->resize(count);
  std::sort(dst->begin(), dst->end());
  dst->erase(std::unique(dst->begin(), dst->end()), dst->end());
}

// Intersection size of two sorted unique string vectors.
size_t SortedIntersectionCount(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) {
  size_t inter = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return inter;
}

// Packs a 1-3 byte gram into a uint32 (length tag + big-endian bytes).
// Injective for grams this short, so a packed sorted-unique vector has
// exactly the size and pairwise intersection counts of its string
// counterpart — Jaccard/Dice stay bitwise identical, without per-gram
// string compares.
uint32_t PackGram(const char* s, size_t len) {
  uint32_t v = static_cast<uint32_t>(len) << 24;
  for (size_t i = 0; i < len; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(s[i]))
         << (8 * (2 - i));
  }
  return v;
}

// Packed equivalent of GramsInto (same degenerate short-string
// convention: strings shorter than n contribute themselves).
void PackedGramsInto(const std::string& s, size_t n,
                     std::vector<uint32_t>* dst) {
  dst->clear();
  if (s.size() < n) {
    if (!s.empty()) dst->push_back(PackGram(s.data(), s.size()));
  } else {
    dst->reserve(s.size() - n + 1);
    for (size_t i = 0; i + n <= s.size(); ++i) {
      dst->push_back(PackGram(s.data() + i, n));
    }
  }
  std::sort(dst->begin(), dst->end());
  dst->erase(std::unique(dst->begin(), dst->end()), dst->end());
}

size_t PackedIntersectionCount(const std::vector<uint32_t>& a,
                               const std::vector<uint32_t>& b) {
  size_t inter = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return inter;
}

/// Data-side per-pair scratch of the kernel. One thread_local instance;
/// every view is derived lazily from the lowercased data label, at most
/// once per pair, into buffers that are reused across pairs (steady-state
/// allocation-free).
struct KernelScratch {
  std::string lb;                          // lowercased data label
  std::vector<std::string> tokens;         // in split order
  std::vector<std::string> tokens_sorted;  // sorted, unique
  std::vector<std::string> bigrams, trigrams;
  std::vector<uint32_t> bigrams_packed, trigrams_packed;  // batch kernel
  std::vector<int> syn_groups;  // per-token synonym groups (batch kernel)
  std::string initials;
  std::vector<std::string> soundex;   // non-empty per-token codes
  std::vector<std::string> numerals;  // numeral-normalized tokens
  TfIdfModel::SparseVector tfidf;
  std::optional<double> quantity;
  std::optional<int> year;
  double jaro = 0.0;
  size_t trio_inter = 0;
  bool has_tokens = false, has_tokens_sorted = false, has_bigrams = false,
       has_trigrams = false, has_initials = false, has_soundex = false,
       has_numerals = false, has_tfidf = false, has_quantity = false,
       has_year = false, has_trio = false, has_jaro = false,
       has_bigrams_packed = false, has_trigrams_packed = false,
       has_syn_groups = false;

  void Reset(std::string_view d) {
    ToLowerInto(d, &lb);
    has_tokens = has_tokens_sorted = has_bigrams = has_trigrams =
        has_initials = has_soundex = has_numerals = has_tfidf = has_quantity =
            has_year = has_trio = has_jaro = has_bigrams_packed =
                has_trigrams_packed = has_syn_groups = false;
  }

  void EnsureTokens() {
    if (has_tokens) return;
    SplitTokensInto(lb, &tokens);
    has_tokens = true;
  }

  void EnsureTokensSorted() {
    if (has_tokens_sorted) return;
    EnsureTokens();
    SortedUniqueInto(tokens, &tokens_sorted);
    has_tokens_sorted = true;
  }

  void EnsureBigrams() {
    if (has_bigrams) return;
    GramsInto(lb, 2, &bigrams);
    has_bigrams = true;
  }

  void EnsureTrigrams() {
    if (has_trigrams) return;
    GramsInto(lb, 3, &trigrams);
    has_trigrams = true;
  }

  void EnsureBigramsPacked() {
    if (has_bigrams_packed) return;
    PackedGramsInto(lb, 2, &bigrams_packed);
    has_bigrams_packed = true;
  }

  void EnsureTrigramsPacked() {
    if (has_trigrams_packed) return;
    PackedGramsInto(lb, 3, &trigrams_packed);
    has_trigrams_packed = true;
  }

  void EnsureSynGroups(const SynonymDictionary& dict) {
    if (has_syn_groups) return;
    EnsureTokens();
    syn_groups.clear();
    for (const auto& t : tokens) syn_groups.push_back(dict.GroupOfLower(t));
    has_syn_groups = true;
  }

  void EnsureInitials() {
    if (has_initials) return;
    EnsureTokens();
    initials.clear();
    for (const auto& t : tokens) initials.push_back(t[0]);
    has_initials = true;
  }

  void EnsureSoundex() {
    if (has_soundex) return;
    EnsureTokens();
    soundex.clear();
    for (const auto& t : tokens) {
      std::string code = SoundexToken(t);
      if (!code.empty()) soundex.push_back(std::move(code));
    }
    has_soundex = true;
  }

  void EnsureNumerals() {
    if (has_numerals) return;
    EnsureTokens();
    const size_t n = tokens.size();
    if (numerals.size() > n) numerals.resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (i < numerals.size()) {
        numerals[i].assign(tokens[i]);
      } else {
        numerals.emplace_back(tokens[i]);
      }
      const int v = NumeralTokenValue(numerals[i]);
      if (v > 0) numerals[i] = std::to_string(v);
    }
    has_numerals = true;
  }

  void EnsureTfidf(std::string_view d, const TfIdfModel& model) {
    if (has_tfidf) return;
    model.VectorizeInto(d, &tfidf);
    has_tfidf = true;
  }

  void EnsureQuantity(std::string_view d) {
    if (has_quantity) return;
    quantity = ParseQuantity(d);
    has_quantity = true;
  }

  void EnsureYear(std::string_view d) {
    if (has_year) return;
    year = ExtractYear(d);
    has_year = true;
  }

  void EnsureTrio(const SimilarityEnsemble::PreparedLabel& p) {
    if (has_trio) return;
    EnsureTokensSorted();
    trio_inter = SortedIntersectionCount(p.tokens_sorted, tokens_sorted);
    has_trio = true;
  }

  double EnsureJaro(const SimilarityEnsemble::PreparedLabel& p) {
    if (!has_jaro) {
      jaro = FastJaro(p.lower, lb);
      has_jaro = true;
    }
    return jaro;
  }
};

// One feature value, bitwise equal to what Score() would fold in for the
// same pair (same guards, same shared intermediates, same expressions).
// When `batch` is non-null (the batched kernel), the n-gram and synonym
// features run on packed grams / pre-resolved group ids — identical
// values from cheaper representations.
double EvalKernelFeature(int feature, const SimilarityEnsemble::Context& ctx,
                         const SimilarityEnsemble::PreparedLabel& p,
                         KernelScratch& sc, std::string_view d, int query_type,
                         int data_type,
                         const SimilarityEnsemble::PreparedLabelBatch* batch) {
  using E = SimilarityEnsemble;
  switch (feature) {
    case E::kExact:
      return p.label == d ? 1.0 : 0.0;
    case E::kCaseInsensitive:
      return p.lower == sc.lb ? 1.0 : 0.0;
    case E::kLevenshtein:
      return FastLevenshtein(p.lower, sc.lb);
    case E::kDamerauLevenshtein:
      return FastDamerau(p.lower, sc.lb);
    case E::kJaro:
      return sc.EnsureJaro(p);
    case E::kJaroWinkler:
      return FastJaroWinkler(p.lower, sc.lb, sc.EnsureJaro(p));
    case E::kPrefix:
      return FastPrefix(p.lower, sc.lb);
    case E::kSuffix:
      return FastSuffix(p.lower, sc.lb);
    case E::kContainment:
      return FastContainment(p.lower, sc.lb);
    case E::kTokenJaccard: {
      sc.EnsureTrio(p);
      const size_t na = p.tokens_sorted.size(), nb = sc.tokens_sorted.size();
      if (na == 0 && nb == 0) return 1.0;
      if (na == 0 || nb == 0) return 0.0;
      const size_t uni = na + nb - sc.trio_inter;
      return uni == 0 ? 0.0 : static_cast<double>(sc.trio_inter) / uni;
    }
    case E::kTokenDice: {
      sc.EnsureTrio(p);
      const size_t na = p.tokens_sorted.size(), nb = sc.tokens_sorted.size();
      if (na == 0 && nb == 0) return 1.0;
      if (na == 0 || nb == 0) return 0.0;
      return 2.0 * sc.trio_inter / (na + nb);
    }
    case E::kTokenOverlap: {
      sc.EnsureTrio(p);
      const size_t na = p.tokens_sorted.size(), nb = sc.tokens_sorted.size();
      if (na == 0 && nb == 0) return 1.0;
      if (na == 0 || nb == 0) return 0.0;
      return static_cast<double>(sc.trio_inter) / std::min(na, nb);
    }
    case E::kNGramJaccard: {
      if (batch != nullptr) {
        sc.EnsureTrigramsPacked();
        const auto& qa = batch->trigrams_packed;
        if (qa.empty() && sc.trigrams_packed.empty()) return 1.0;
        const size_t inter =
            PackedIntersectionCount(qa, sc.trigrams_packed);
        const size_t uni = qa.size() + sc.trigrams_packed.size() - inter;
        return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
      }
      sc.EnsureTrigrams();
      if (p.trigrams.empty() && sc.trigrams.empty()) return 1.0;
      const size_t inter = SortedIntersectionCount(p.trigrams, sc.trigrams);
      const size_t uni = p.trigrams.size() + sc.trigrams.size() - inter;
      return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
    }
    case E::kAcronym: {
      if (p.label.empty() || d.empty()) return 0.0;
      sc.EnsureTokens();
      if (p.tokens.size() == 1 && p.lower.size() >= 2) {
        sc.EnsureInitials();
        if (sc.initials == p.lower) return 1.0;
      }
      if (sc.tokens.size() == 1 && sc.lb.size() >= 2 && p.initials == sc.lb) {
        return 1.0;
      }
      return 0.0;
    }
    case E::kAbbreviation: {
      const std::string& la = p.lower;
      const std::string& lb = sc.lb;
      if (la.empty() || lb.empty()) return 0.0;
      const std::string& shorter = la.size() <= lb.size() ? la : lb;
      const std::string& longer = la.size() <= lb.size() ? lb : la;
      if (shorter.size() < 2 || shorter.size() == longer.size()) {
        return shorter == longer ? 1.0 : 0.0;
      }
      if (shorter[0] != longer[0]) return 0.0;
      size_t j = 0;
      for (size_t i = 0; i < longer.size() && j < shorter.size(); ++i) {
        if (longer[i] == shorter[j]) ++j;
      }
      if (j != shorter.size()) return 0.0;
      return static_cast<double>(shorter.size()) / longer.size() * 0.5 + 0.5;
    }
    case E::kLengthRatio: {
      if (p.label.empty() && d.empty()) return 1.0;
      const double lo = static_cast<double>(std::min(p.label.size(), d.size()));
      const double hi = static_cast<double>(std::max(p.label.size(), d.size()));
      return hi == 0 ? 1.0 : lo / hi;
    }
    case E::kNumeric: {
      if (!p.looks_numeric && !LooksNumeric(sc.lb)) return 0.0;
      sc.EnsureQuantity(d);
      return QuantitySimilarity(p.quantity, sc.quantity);
    }
    case E::kLcs:
      return FastLcs(p.lower, sc.lb);
    case E::kPhonetic: {
      sc.EnsureTokens();
      if (p.tokens.empty() || sc.tokens.empty()) return 0.0;
      if (p.soundex.empty()) return 0.0;
      sc.EnsureSoundex();
      for (const auto& code : sc.soundex) {
        if (std::binary_search(p.soundex.begin(), p.soundex.end(), code)) {
          return 1.0;
        }
      }
      return 0.0;
    }
    case E::kSynonym: {
      if (ctx.synonyms == nullptr) return 0.0;
      if (batch != nullptr) {
        // SynonymDictionary::Similarity replayed on pre-resolved group
        // ids: whole-label check first, then the shorter side's tokens
        // against the longer side's (equality or shared group), exactly
        // the double loop the dictionary runs — same hits, same ratio.
        const SynonymDictionary& dict = *ctx.synonyms;
        if (p.lower == sc.lb) return 1.0;
        const int gd = dict.GroupOfLower(sc.lb);
        if (batch->label_syn_group >= 0 && batch->label_syn_group == gd) {
          return 1.0;
        }
        sc.EnsureTokens();
        if (p.tokens.empty() || sc.tokens.empty()) return 0.0;
        sc.EnsureSynGroups(dict);
        const bool query_shorter = p.tokens.size() <= sc.tokens.size();
        const auto& ts = query_shorter ? p.tokens : sc.tokens;
        const auto& tl = query_shorter ? sc.tokens : p.tokens;
        const auto& gs = query_shorter ? batch->token_syn_groups
                                       : sc.syn_groups;
        const auto& gl = query_shorter ? sc.syn_groups
                                       : batch->token_syn_groups;
        size_t hits = 0;
        for (size_t i = 0; i < ts.size(); ++i) {
          for (size_t j = 0; j < tl.size(); ++j) {
            if (ts[i] == tl[j] || (gs[i] >= 0 && gs[i] == gl[j])) {
              ++hits;
              break;
            }
          }
        }
        return static_cast<double>(hits) / ts.size();
      }
      return ctx.synonyms->Similarity(p.label, d);
    }
    case E::kTfIdfCosine: {
      if (ctx.tfidf == nullptr || !ctx.tfidf->finalized()) return 0.0;
      sc.EnsureTfidf(d, *ctx.tfidf);
      return TfIdfModel::CosineSparse(p.tfidf, sc.tfidf);
    }
    case E::kTypeOntology:
      return ctx.ontology != nullptr
                 ? ctx.ontology->Similarity(query_type, data_type)
                 : 0.0;
    case E::kMongeElkan:
      sc.EnsureTokens();
      return FastMongeElkan(p.tokens, sc.tokens);
    case E::kLongestCommonSubstring:
      return FastLongestCommonSubstring(p.lower, sc.lb);
    case E::kHamming: {
      const std::string& la = p.lower;
      const std::string& lb = sc.lb;
      if (la.size() != lb.size()) {
        return la.empty() && lb.empty() ? 1.0 : 0.0;
      }
      if (la.empty()) return 1.0;
      size_t equal = 0;
      for (size_t i = 0; i < la.size(); ++i) equal += la[i] == lb[i];
      return static_cast<double>(equal) / la.size();
    }
    case E::kSmithWaterman:
      return FastSmithWaterman(p.lower, sc.lb);
    case E::kBigramDice: {
      if (batch != nullptr) {
        sc.EnsureBigramsPacked();
        const auto& qa = batch->bigrams_packed;
        if (qa.empty() && sc.bigrams_packed.empty()) return 1.0;
        if (qa.empty() || sc.bigrams_packed.empty()) return 0.0;
        const size_t inter = PackedIntersectionCount(qa, sc.bigrams_packed);
        return 2.0 * inter / (qa.size() + sc.bigrams_packed.size());
      }
      sc.EnsureBigrams();
      if (p.bigrams.empty() && sc.bigrams.empty()) return 1.0;
      if (p.bigrams.empty() || sc.bigrams.empty()) return 0.0;
      const size_t inter = SortedIntersectionCount(p.bigrams, sc.bigrams);
      return 2.0 * inter / (p.bigrams.size() + sc.bigrams.size());
    }
    case E::kTokenSequenceEdit:
      sc.EnsureTokens();
      return FastTokenSequenceEdit(p.tokens, sc.tokens);
    case E::kDate: {
      if (!p.contains_digit || !ContainsDigit(sc.lb)) return 0.0;
      sc.EnsureYear(d);
      return YearSimilarity(p.year, sc.year);
    }
    case E::kNumeralAware: {
      if (p.label.empty() || d.empty()) return 0.0;
      sc.EnsureNumerals();
      return p.numerals == sc.numerals ? 1.0 : 0.0;
    }
    default:
      return 0.0;
  }
}

}  // namespace

SimilarityEnsemble::SimilarityEnsemble() : SimilarityEnsemble(Context{}) {}

SimilarityEnsemble::SimilarityEnsemble(Context context)
    : context_(context),
      weights_(kFeatureCount, 1.0 / static_cast<double>(kFeatureCount)) {
  // Features whose context is missing get zero weight so the default
  // configuration stays a proper convex combination of active features.
  std::vector<double> w(kFeatureCount, 1.0);
  if (context_.synonyms == nullptr) w[kSynonym] = 0.0;
  if (context_.tfidf == nullptr) w[kTfIdfCosine] = 0.0;
  if (context_.ontology == nullptr) w[kTypeOntology] = 0.0;
  SetWeights(w);
}

std::vector<double> SimilarityEnsemble::Features(std::string_view q,
                                                 std::string_view d,
                                                 int query_type,
                                                 int data_type) const {
  std::vector<double> f(kFeatureCount, 0.0);
  f[kExact] = ExactMatch(q, d);
  f[kCaseInsensitive] = CaseInsensitiveMatch(q, d);
  f[kLevenshtein] = LevenshteinSimilarity(q, d);
  f[kDamerauLevenshtein] = DamerauLevenshteinSimilarity(q, d);
  f[kJaro] = JaroSimilarity(q, d);
  f[kJaroWinkler] = JaroWinklerSimilarity(q, d);
  f[kPrefix] = PrefixSimilarity(q, d);
  f[kSuffix] = SuffixSimilarity(q, d);
  f[kContainment] = ContainmentSimilarity(q, d);
  f[kTokenJaccard] = TokenJaccard(q, d);
  f[kTokenDice] = TokenDice(q, d);
  f[kTokenOverlap] = TokenOverlap(q, d);
  f[kNGramJaccard] = NGramJaccard(q, d);
  f[kAcronym] = AcronymSimilarity(q, d);
  f[kAbbreviation] = AbbreviationSimilarity(q, d);
  f[kLengthRatio] = LengthRatio(q, d);
  f[kNumeric] = NumericSimilarity(q, d);
  f[kLcs] = LcsSimilarity(q, d);
  f[kPhonetic] = PhoneticSimilarity(q, d);
  if (context_.synonyms != nullptr) {
    f[kSynonym] = context_.synonyms->Similarity(q, d);
  }
  if (context_.tfidf != nullptr && context_.tfidf->finalized()) {
    f[kTfIdfCosine] = context_.tfidf->Cosine(q, d);
  }
  if (context_.ontology != nullptr) {
    f[kTypeOntology] = context_.ontology->Similarity(query_type, data_type);
  }
  f[kMongeElkan] = MongeElkanSimilarity(q, d);
  f[kLongestCommonSubstring] = LongestCommonSubstringSimilarity(q, d);
  f[kHamming] = HammingSimilarity(q, d);
  f[kSmithWaterman] = SmithWatermanSimilarity(q, d);
  f[kBigramDice] = BigramDice(q, d);
  f[kTokenSequenceEdit] = TokenSequenceEditSimilarity(q, d);
  f[kDate] = DateSimilarity(q, d);
  f[kNumeralAware] = NumeralAwareMatch(q, d);
  return f;
}

double SimilarityEnsemble::Score(std::string_view q, std::string_view d,
                                 int query_type, int data_type) const {
  if (!q.empty() && EqualIgnoreCase(q, d)) return 1.0;
  const auto& w = weights_;
  const PairScratch sc(q, d);
  double s = 0.0;

  if (w[kExact] > 0.0 && q == d) s += w[kExact];
  // After the shortcut, lowercase equality only remains for empty q.
  if (sc.la == sc.lb) s += w[kCaseInsensitive];
  if (w[kLevenshtein] > 0.0) {
    s += w[kLevenshtein] * FastLevenshtein(sc.la, sc.lb);
  }
  if (w[kDamerauLevenshtein] > 0.0) {
    s += w[kDamerauLevenshtein] * FastDamerau(sc.la, sc.lb);
  }
  if (w[kJaro] > 0.0 || w[kJaroWinkler] > 0.0) {
    const double jaro = FastJaro(sc.la, sc.lb);
    s += w[kJaro] * jaro;
    if (w[kJaroWinkler] > 0.0) {
      s += w[kJaroWinkler] * FastJaroWinkler(sc.la, sc.lb, jaro);
    }
  }
  if (w[kPrefix] > 0.0) s += w[kPrefix] * FastPrefix(sc.la, sc.lb);
  if (w[kSuffix] > 0.0) s += w[kSuffix] * FastSuffix(sc.la, sc.lb);
  if (w[kContainment] > 0.0) {
    s += w[kContainment] * FastContainment(sc.la, sc.lb);
  }
  // Token-set family from the shared intersection count.
  {
    const size_t na = sc.ta.size();
    const size_t nb = sc.tb.size();
    const size_t inter = sc.token_intersection;
    if (na == 0 && nb == 0) {
      // Three separate adds (not one grouped sum) so the accumulation
      // order matches the kernel's canonical per-feature replay bitwise.
      s += w[kTokenJaccard];
      s += w[kTokenDice];
      s += w[kTokenOverlap];
    } else if (na > 0 && nb > 0) {
      const size_t uni = na + nb - inter;
      if (uni > 0) {
        s += w[kTokenJaccard] * (static_cast<double>(inter) / uni);
      }
      s += w[kTokenDice] * (2.0 * inter / (na + nb));
      s += w[kTokenOverlap] * (static_cast<double>(inter) / std::min(na, nb));
    }
  }
  if (w[kNGramJaccard] > 0.0) {
    s += w[kNGramJaccard] * FastNGramJaccard(sc.la, sc.lb);
  }
  if (w[kAcronym] > 0.0) s += w[kAcronym] * AcronymSimilarity(q, d);
  if (w[kAbbreviation] > 0.0) {
    s += w[kAbbreviation] * AbbreviationSimilarity(q, d);
  }
  if (w[kLengthRatio] > 0.0) s += w[kLengthRatio] * LengthRatio(q, d);
  if (w[kNumeric] > 0.0 && (LooksNumeric(sc.la) || LooksNumeric(sc.lb))) {
    s += w[kNumeric] * NumericSimilarity(q, d);
  }
  if (w[kLcs] > 0.0) s += w[kLcs] * LcsSimilarity(sc.la, sc.lb);
  if (w[kPhonetic] > 0.0) s += w[kPhonetic] * PhoneticSimilarity(q, d);
  if (w[kSynonym] > 0.0 && context_.synonyms != nullptr) {
    s += w[kSynonym] * context_.synonyms->Similarity(q, d);
  }
  if (w[kTfIdfCosine] > 0.0 && context_.tfidf != nullptr &&
      context_.tfidf->finalized()) {
    s += w[kTfIdfCosine] * context_.tfidf->Cosine(q, d);
  }
  if (w[kTypeOntology] > 0.0 && context_.ontology != nullptr) {
    s += w[kTypeOntology] * context_.ontology->Similarity(query_type, data_type);
  }
  if (w[kMongeElkan] > 0.0) s += w[kMongeElkan] * MongeElkanSimilarity(q, d);
  if (w[kLongestCommonSubstring] > 0.0) {
    s += w[kLongestCommonSubstring] *
         LongestCommonSubstringSimilarity(sc.la, sc.lb);
  }
  if (w[kHamming] > 0.0) s += w[kHamming] * HammingSimilarity(sc.la, sc.lb);
  if (w[kSmithWaterman] > 0.0) {
    s += w[kSmithWaterman] * SmithWatermanSimilarity(sc.la, sc.lb);
  }
  if (w[kBigramDice] > 0.0) s += w[kBigramDice] * BigramDice(sc.la, sc.lb);
  if (w[kTokenSequenceEdit] > 0.0) {
    s += w[kTokenSequenceEdit] * TokenSequenceEditSimilarity(sc.la, sc.lb);
  }
  if (w[kDate] > 0.0 && ContainsDigit(sc.la) && ContainsDigit(sc.lb)) {
    s += w[kDate] * DateSimilarity(q, d);
  }
  if (w[kNumeralAware] > 0.0) s += w[kNumeralAware] * NumeralAwareMatch(q, d);
  return s;
}

void SimilarityEnsemble::SetWeights(const std::vector<double>& weights) {
  weights_.assign(kFeatureCount, 0.0);
  double sum = 0.0;
  for (int i = 0; i < kFeatureCount && i < static_cast<int>(weights.size());
       ++i) {
    weights_[i] = weights[i] > 0.0 ? weights[i] : 0.0;
    sum += weights_[i];
  }
  if (sum <= 0.0) {
    weights_.assign(kFeatureCount, 1.0 / static_cast<double>(kFeatureCount));
  } else {
    for (auto& w : weights_) w /= sum;
  }
  RebuildEvalOrder();
}

void SimilarityEnsemble::RebuildEvalOrder() {
  eval_order_.clear();
  eval_order_.reserve(kFeatureCount);
  // The O(1) pre-filters run first regardless of weight: they cost
  // nothing and seed the running score before the first bound check.
  eval_order_.push_back(kExact);
  eval_order_.push_back(kCaseInsensitive);
  eval_order_.push_back(kLengthRatio);
  std::vector<int> rest;
  rest.reserve(kFeatureCount);
  for (int i = 0; i < kFeatureCount; ++i) {
    if (i == kExact || i == kCaseInsensitive || i == kLengthRatio) continue;
    if (weights_[i] > 0.0) rest.push_back(i);
  }
  std::sort(rest.begin(), rest.end(), [this](int a, int b) {
    if (weights_[a] != weights_[b]) return weights_[a] > weights_[b];
    if (kCostRank[a] != kCostRank[b]) return kCostRank[a] < kCostRank[b];
    return a < b;
  });
  eval_order_.insert(eval_order_.end(), rest.begin(), rest.end());
  remaining_mass_.assign(eval_order_.size() + 1, 0.0);
  for (size_t k = eval_order_.size(); k-- > 0;) {
    remaining_mass_[k] = remaining_mass_[k + 1] + weights_[eval_order_[k]];
  }
  // The batched kernel sweeps every positive-weight feature (no forced
  // prefix — its stage-A refined-cap bound already did the cheap-reject
  // work), grouped cheap-first so surviving lanes still exit before the
  // DPs whenever their per-lane bound drops below the threshold.
  batch_order_.clear();
  batch_order_.reserve(kFeatureCount);
  for (int i = 0; i < kFeatureCount; ++i) {
    if (weights_[i] > 0.0) batch_order_.push_back(i);
  }
  std::sort(batch_order_.begin(), batch_order_.end(), [this](int a, int b) {
    if (kBatchGroup[a] != kBatchGroup[b]) {
      return kBatchGroup[a] < kBatchGroup[b];
    }
    if (weights_[a] != weights_[b]) return weights_[a] > weights_[b];
    return a < b;
  });
}

SimilarityEnsemble::PreparedLabel SimilarityEnsemble::Prepare(
    std::string_view label) const {
  PreparedLabel p;
  p.label.assign(label);
  p.lower = ToLower(label);
  p.tokens = SplitTokens(p.lower);
  p.tokens_sorted = p.tokens;
  std::sort(p.tokens_sorted.begin(), p.tokens_sorted.end());
  p.tokens_sorted.erase(
      std::unique(p.tokens_sorted.begin(), p.tokens_sorted.end()),
      p.tokens_sorted.end());
  GramsInto(p.lower, 2, &p.bigrams);
  GramsInto(p.lower, 3, &p.trigrams);
  for (const auto& t : p.tokens) {
    p.initials.push_back(t[0]);
    std::string code = SoundexToken(t);
    if (!code.empty()) p.soundex.push_back(std::move(code));
  }
  std::sort(p.soundex.begin(), p.soundex.end());
  p.soundex.erase(std::unique(p.soundex.begin(), p.soundex.end()),
                  p.soundex.end());
  p.numerals = NormalizeNumerals(label);
  p.quantity = ParseQuantity(label);
  p.year = ExtractYear(label);
  p.looks_numeric = LooksNumeric(p.lower);
  p.contains_digit = ContainsDigit(p.lower);
  if (context_.tfidf != nullptr && context_.tfidf->finalized()) {
    p.tfidf = context_.tfidf->Vectorize(p.label);
  }
  return p;
}

SimilarityEnsemble::PreparedLabelBatch SimilarityEnsemble::PrepareBatch(
    std::string_view label) const {
  return PrepareBatch(Prepare(label));
}

SimilarityEnsemble::PreparedLabelBatch SimilarityEnsemble::PrepareBatch(
    PreparedLabel prepared) const {
  PreparedLabelBatch b;
  b.prepared = std::move(prepared);
  const PreparedLabel& p = b.prepared;
  // Packing is injective for grams of <= 3 bytes and the string grams are
  // already unique, so sorting the packed values yields exactly the same
  // set — intersection counts (and the Jaccard/Dice ratios) are bitwise
  // identical to the string-gram path.
  b.bigrams_packed.reserve(p.bigrams.size());
  for (const auto& g : p.bigrams) {
    b.bigrams_packed.push_back(PackGram(g.data(), g.size()));
  }
  std::sort(b.bigrams_packed.begin(), b.bigrams_packed.end());
  b.trigrams_packed.reserve(p.trigrams.size());
  for (const auto& g : p.trigrams) {
    b.trigrams_packed.push_back(PackGram(g.data(), g.size()));
  }
  std::sort(b.trigrams_packed.begin(), b.trigrams_packed.end());
  if (context_.synonyms != nullptr) {
    b.label_syn_group = context_.synonyms->GroupOfLower(p.lower);
    b.token_syn_groups.reserve(p.tokens.size());
    for (const auto& t : p.tokens) {
      b.token_syn_groups.push_back(context_.synonyms->GroupOfLower(t));
    }
  }
  return b;
}

double SimilarityEnsemble::ScoreAgainstThreshold(const PreparedLabel& prepared,
                                                 std::string_view data_label,
                                                 double threshold,
                                                 int query_type, int data_type,
                                                 KernelStats* stats) const {
  if (stats != nullptr) ++stats->pairs;
  // Same shortcut as Score(): case-insensitive equality is exactly 1.
  if (!prepared.label.empty() && EqualIgnoreCase(prepared.label, data_label)) {
    return 1.0;
  }
  static thread_local KernelScratch sc;
  sc.Reset(data_label);
  double f[kFeatureCount] = {};
  const size_t order = eval_order_.size();
  double partial = 0.0;
  for (size_t k = 0; k < order; ++k) {
    // Upper bound on the final score: every unevaluated feature is <= 1,
    // so at most the remaining weight mass can still be added. The 1e-9
    // margin keeps accumulation-order rounding (~1e-13 for a 30-term
    // convex sum) from ever rejecting a pair the canonical sum accepts.
    if (threshold >= 0.0 && partial + remaining_mass_[k] < threshold - 1e-9) {
      if (stats != nullptr) {
        ++stats->early_exits;
        stats->features_evaluated += k;
        stats->features_skipped += order - k;
      }
      return partial + remaining_mass_[k];
    }
    const int i = eval_order_[k];
    f[i] = EvalKernelFeature(i, context_, prepared, sc, data_label, query_type,
                             data_type, nullptr);
    partial += weights_[i] * f[i];
  }
  if (stats != nullptr) stats->features_evaluated += order;
  // Replay the weighted sum in canonical feature order: bitwise equal to
  // Score()'s accumulation (skipped/zero-weight terms add +0.0, which is
  // an identity on the non-negative running sum).
  double s = 0.0;
  for (int i = 0; i < kFeatureCount; ++i) s += weights_[i] * f[i];
  return s;
}

void SimilarityEnsemble::ScoreBatchAgainstThreshold(
    const PreparedLabelBatch& batch, const std::string_view* data_labels,
    size_t count, double threshold, int query_type, const int* data_types,
    double* out, KernelStats* stats) const {
  constexpr int L = kBatchLanes;
  if (count == 0) return;
  const PreparedLabel& p = batch.prepared;
  if (stats != nullptr) stats->pairs += count;
  const size_t order = batch_order_.size();

  // Stage 0: per-lane O(1) facts and the case-insensitive-equality
  // shortcut. The shortcut MUST precede any bound rejection: its 1.0 is
  // definitional (Score() returns it for equal-length garbage caps too),
  // so an equal lane can score above its refined bound.
  bool survive[L] = {};
  double eq[L] = {};       // byte lengths equal
  double rr[L] = {};       // min/max byte-length ratio
  double minlen[L] = {};   // min byte length
  double tri_max[L] = {};  // max distinct char 3-grams of the data label
  double bi_max[L] = {};   // max distinct char 2-grams of the data label
  double tok_max[L] = {};  // max token count of the data label
  double num_ok[L] = {};   // data label passes the numeric guard
  double dlen[L] = {};     // data byte length
  const size_t m = p.label.size();  // ToLower preserves byte length
  for (size_t l = 0; l < count; ++l) {
    const std::string_view d = data_labels[l];
    if (!p.label.empty() && EqualIgnoreCase(p.label, d)) {
      out[l] = 1.0;
      continue;
    }
    survive[l] = true;
    const size_t n = d.size();
    dlen[l] = static_cast<double>(n);
    eq[l] = n == m ? 1.0 : 0.0;
    rr[l] = (n == 0 && m == 0)
                ? 1.0
                : static_cast<double>(std::min(n, m)) / std::max(n, m);
    minlen[l] = static_cast<double>(std::min(n, m));
    tri_max[l] = n >= 3 ? static_cast<double>(n - 2) : (n > 0 ? 1.0 : 0.0);
    bi_max[l] = n >= 2 ? static_cast<double>(n - 1) : (n > 0 ? 1.0 : 0.0);
    tok_max[l] = static_cast<double>((n + 1) / 2);
    num_ok[l] = LooksNumeric(d) ? 1.0 : 0.0;
  }

  // Stage A (thresholded mode only): refined per-lane caps from the O(1)
  // facts, then a lane-parallel bound. Each row below provably dominates
  // its feature (see DESIGN.md "Memory layout & batched scoring"); the
  // arithmetic is branch-light over contiguous double lanes so the
  // compiler can vectorize it.
  double caps[kFeatureCount][L];
  if (threshold >= 0.0) {
    const double qtri = static_cast<double>(p.trigrams.size());
    const double qbi = static_cast<double>(p.bigrams.size());
    const double qtok = static_cast<double>(p.tokens.size());
    const double qnum = static_cast<double>(p.numerals.size());
    const double qini = static_cast<double>(p.initials.size());
    const bool acr_q = p.tokens.size() == 1 && p.lower.size() >= 2;
    const double qlen = static_cast<double>(p.lower.size());
    const double phon = p.soundex.empty() ? 0.0 : 1.0;
    const double date = p.contains_digit ? 1.0 : 0.0;
    const double tfidf = (context_.tfidf != nullptr &&
                          context_.tfidf->finalized() && !p.tfidf.empty())
                             ? 1.0
                             : 0.0;
    const double syn = context_.synonyms != nullptr ? 1.0 : 0.0;
    const double onto = context_.ontology != nullptr ? 1.0 : 0.0;
    for (int l = 0; l < L; ++l) {
      // Length-equality features: anything normalized over a fixed-length
      // alignment (or exact equality) is 0 when lengths differ.
      caps[kExact][l] = eq[l];
      caps[kCaseInsensitive][l] = eq[l];
      caps[kHamming][l] = eq[l];
      // Edit-family features normalized by max length: distance >= the
      // length gap, so similarity <= min/max. LCS/substring <= min/max
      // for the same reason; LengthRatio IS min/max.
      caps[kLevenshtein][l] = rr[l];
      caps[kDamerauLevenshtein][l] = rr[l];
      caps[kLcs][l] = rr[l];
      caps[kLongestCommonSubstring][l] = rr[l];
      caps[kContainment][l] = rr[l];
      caps[kLengthRatio][l] = rr[l];
      // Jaro: matches <= min, so jaro <= (1 + min/max + 1)/3; Winkler
      // adds at most 0.4*(1 - jaro) on top.
      const double jb = (2.0 + rr[l]) / 3.0;
      caps[kJaro][l] = jb;
      caps[kJaroWinkler][l] = 0.6 * jb + 0.4;
      // Abbreviation: equal lengths degrade to exact equality (cap 1 only
      // via eq); otherwise the subsequence branch needs min >= 2 and
      // yields min/max * 0.5 + 0.5.
      caps[kAbbreviation][l] =
          eq[l] != 0.0 ? 1.0 : (minlen[l] < 2.0 ? 0.0 : 0.5 * rr[l] + 0.5);
      // Guard-gated features: 0 unless the query-side (or per-lane) guard
      // that the feature itself checks first can pass.
      caps[kNumeric][l] = p.looks_numeric ? 1.0 : num_ok[l];
      caps[kDate][l] = date;
      caps[kPhonetic][l] = phon;
      caps[kTfIdfCosine][l] = tfidf;
      caps[kSynonym][l] = syn;
      caps[kTypeOntology][l] = onto;
      // Gram/token set measures: a data label of n bytes has at most
      // n-2 distinct trigrams, n-1 distinct bigrams, (n+1)/2 tokens.
      caps[kNGramJaccard][l] =
          qtri > 0.0 ? std::min(qtri, tri_max[l]) / qtri : 1.0;
      caps[kBigramDice][l] = (qbi > 0.0 && bi_max[l] < qbi)
                                 ? 2.0 * bi_max[l] / (qbi + bi_max[l])
                                 : 1.0;
      caps[kTokenSequenceEdit][l] =
          qtok > tok_max[l] ? tok_max[l] / qtok : 1.0;
      caps[kNumeralAware][l] = qnum > tok_max[l] ? 0.0 : 1.0;
      caps[kAcronym][l] = ((acr_q && qlen >= 2.0 && qlen <= tok_max[l]) ||
                           (qini == dlen[l] && dlen[l] >= 2.0))
                              ? 1.0
                              : 0.0;
      // No useful O(1) cap (normalized by the shorter side / token-pair
      // maxima): these stay at the trivial bound of 1.
      caps[kPrefix][l] = 1.0;
      caps[kSuffix][l] = 1.0;
      caps[kSmithWaterman][l] = 1.0;
      caps[kMongeElkan][l] = 1.0;
      caps[kTokenJaccard][l] = 1.0;
      caps[kTokenDice][l] = 1.0;
      caps[kTokenOverlap][l] = 1.0;
    }
    double bound[L] = {};
    for (size_t k = 0; k < order; ++k) {
      const double w = weights_[batch_order_[k]];
      const double* row = caps[batch_order_[k]];
      for (int l = 0; l < L; ++l) bound[l] += w * row[l];
    }
    // Reject lanes whose refined bound cannot reach the threshold. The
    // 1e-9 margin absorbs both accumulation-order rounding and the
    // sub-ulp rounding of the cap arithmetic, so no lane whose canonical
    // score is >= threshold is ever rejected here.
    for (size_t l = 0; l < count; ++l) {
      if (!survive[l] || bound[l] >= threshold - 1e-9) continue;
      out[l] = bound[l];
      survive[l] = false;
      if (stats != nullptr) {
        ++stats->early_exits;
        stats->features_skipped += order;
      }
    }
  }

  // Stage B: surviving lanes run the scalar sweep in batch order with a
  // per-lane refined remaining mass (suffix sums of w * cap), sharing the
  // batch's packed grams and synonym group ids. Completed lanes replay
  // the weighted sum in canonical feature order, exactly like
  // ScoreAgainstThreshold — so every kept value is bitwise Score().
  static thread_local KernelScratch sc;
  for (size_t l = 0; l < count; ++l) {
    if (!survive[l]) continue;
    const std::string_view d = data_labels[l];
    const int data_type = data_types != nullptr ? data_types[l] : -1;
    sc.Reset(d);
    double remaining[kFeatureCount + 1];
    if (threshold >= 0.0) {
      remaining[order] = 0.0;
      for (size_t k = order; k-- > 0;) {
        remaining[k] = remaining[k + 1] +
                       weights_[batch_order_[k]] * caps[batch_order_[k]][l];
      }
    }
    double f[kFeatureCount] = {};
    double partial = 0.0;
    bool exited = false;
    for (size_t k = 0; k < order; ++k) {
      if (threshold >= 0.0 && partial + remaining[k] < threshold - 1e-9) {
        out[l] = partial + remaining[k];
        if (stats != nullptr) {
          ++stats->early_exits;
          stats->features_evaluated += k;
          stats->features_skipped += order - k;
        }
        exited = true;
        break;
      }
      const int i = batch_order_[k];
      f[i] = EvalKernelFeature(i, context_, p, sc, d, query_type, data_type,
                               &batch);
      partial += weights_[i] * f[i];
    }
    if (exited) continue;
    if (stats != nullptr) stats->features_evaluated += order;
    double s = 0.0;
    for (int i = 0; i < kFeatureCount; ++i) s += weights_[i] * f[i];
    out[l] = s;
  }
}

double SimilarityEnsemble::RetrievalCapSum(const PreparedLabel& p, double rr,
                                           double minlen, double gram_len,
                                           bool any_numeric,
                                           bool acr_len_match) const {
  // The rows below are the batched kernel's stage-A caps (see
  // ScoreBatchAgainstThreshold), evaluated from index-carried facts
  // instead of per-lane ones. Eq-gated caps are 0 here: callers return
  // the trivial 1.0 outright whenever byte-length equality is possible.
  const double qtri = static_cast<double>(p.trigrams.size());
  const double qbi = static_cast<double>(p.bigrams.size());
  const double qtok = static_cast<double>(p.tokens.size());
  const double qnum = static_cast<double>(p.numerals.size());
  const bool acr_q = p.tokens.size() == 1 && p.lower.size() >= 2;
  const double qlen = static_cast<double>(p.lower.size());
  const double tri_max =
      gram_len >= 3.0 ? gram_len - 2.0 : (gram_len > 0.0 ? 1.0 : 0.0);
  const double bi_max =
      gram_len >= 2.0 ? gram_len - 1.0 : (gram_len > 0.0 ? 1.0 : 0.0);
  const double tok_max = std::floor((gram_len + 1.0) / 2.0);

  double caps[kFeatureCount];
  caps[kExact] = 0.0;
  caps[kCaseInsensitive] = 0.0;
  caps[kHamming] = 0.0;
  caps[kLevenshtein] = rr;
  caps[kDamerauLevenshtein] = rr;
  caps[kLcs] = rr;
  caps[kLongestCommonSubstring] = rr;
  caps[kContainment] = rr;
  caps[kLengthRatio] = rr;
  const double jb = (2.0 + rr) / 3.0;
  caps[kJaro] = jb;
  caps[kJaroWinkler] = 0.6 * jb + 0.4;
  caps[kAbbreviation] = minlen < 2.0 ? 0.0 : 0.5 * rr + 0.5;
  caps[kNumeric] = (p.looks_numeric || any_numeric) ? 1.0 : 0.0;
  caps[kDate] = p.contains_digit ? 1.0 : 0.0;
  caps[kPhonetic] = p.soundex.empty() ? 0.0 : 1.0;
  caps[kTfIdfCosine] = (context_.tfidf != nullptr &&
                        context_.tfidf->finalized() && !p.tfidf.empty())
                           ? 1.0
                           : 0.0;
  caps[kSynonym] = context_.synonyms != nullptr ? 1.0 : 0.0;
  caps[kTypeOntology] = context_.ontology != nullptr ? 1.0 : 0.0;
  caps[kNGramJaccard] = qtri > 0.0 ? std::min(qtri, tri_max) / qtri : 1.0;
  caps[kBigramDice] =
      (qbi > 0.0 && bi_max < qbi) ? 2.0 * bi_max / (qbi + bi_max) : 1.0;
  caps[kTokenSequenceEdit] = qtok > tok_max ? tok_max / qtok : 1.0;
  caps[kNumeralAware] = qnum > tok_max ? 0.0 : 1.0;
  caps[kAcronym] =
      ((acr_q && qlen >= 2.0 && qlen <= tok_max) || acr_len_match) ? 1.0 : 0.0;
  caps[kPrefix] = 1.0;
  caps[kSuffix] = 1.0;
  caps[kSmithWaterman] = 1.0;
  caps[kMongeElkan] = 1.0;
  caps[kTokenJaccard] = 1.0;
  caps[kTokenDice] = 1.0;
  caps[kTokenOverlap] = 1.0;

  double bound = 0.0;
  for (const int i : batch_order_) bound += weights_[i] * caps[i];
  return bound;
}

double SimilarityEnsemble::RetrievalNodeBound(const PreparedLabelBatch& batch,
                                              size_t data_len,
                                              bool data_numeric) const {
  const PreparedLabel& p = batch.prepared;
  const size_t m = p.label.size();
  // Equal byte length admits the case-insensitive-equality 1.0 and opens
  // every length-gated cap; the trivial bound is the only sound one.
  if (data_len == m) return 1.0;
  const double rr = static_cast<double>(std::min(data_len, m)) /
                    static_cast<double>(std::max(data_len, m));
  const bool acr = p.initials.size() == data_len && data_len >= 2;
  return RetrievalCapSum(p, rr, static_cast<double>(std::min(data_len, m)),
                         static_cast<double>(data_len), data_numeric, acr);
}

double SimilarityEnsemble::RetrievalBlockBound(
    const PreparedLabelBatch& batch, const LabelSetStats& stats) const {
  if (stats.empty) return 0.0;
  const PreparedLabel& p = batch.prepared;
  const size_t m = p.label.size();
  const bool m_possible =
      m < 63 ? ((stats.len_mask >> m) & 1) != 0
             : ((stats.len_mask >> 63) & 1) != 0 && stats.max_len >= m;
  if (m_possible) return 1.0;
  double best = 0.0;
  // Exact lengths: the per-length bound, maxed over the occurring ones.
  // (b != m for every remaining bit, so RetrievalNodeBound never takes
  // its equal-length shortcut here.)
  for (uint32_t b = 0; b < 63; ++b) {
    if (((stats.len_mask >> b) & 1) == 0) continue;
    best = std::max(best, RetrievalNodeBound(batch, b, stats.any_numeric));
  }
  // Pooled lengths [63, max_len]: per-feature maxima — the ratio family
  // at the admitted length closest to m, the gram/token caps at max_len.
  if (((stats.len_mask >> 63) & 1) != 0) {
    const size_t hi = stats.max_len;  // >= 63
    const size_t n_rr = std::clamp(m, size_t{63}, hi);
    const double rr = static_cast<double>(std::min(n_rr, m)) /
                      static_cast<double>(std::max(n_rr, m));
    const size_t qini = p.initials.size();
    const bool acr = qini >= 63 && qini <= hi;
    best = std::max(
        best, RetrievalCapSum(p, rr, static_cast<double>(std::min<size_t>(63, m)),
                              static_cast<double>(hi), stats.any_numeric, acr));
  }
  return best;
}

const std::vector<std::string>& SimilarityEnsemble::FeatureNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "exact",        "case_insensitive", "levenshtein", "damerau",
      "jaro",         "jaro_winkler",     "prefix",      "suffix",
      "containment",  "token_jaccard",    "token_dice",  "token_overlap",
      "ngram_jaccard", "acronym",         "abbreviation", "length_ratio",
      "numeric",      "lcs",              "phonetic",    "synonym",
      "tfidf_cosine", "type_ontology",    "monge_elkan",
      "longest_common_substring",         "hamming",     "smith_waterman",
      "bigram_dice",  "token_sequence_edit",             "date",
      "numeral_aware"};
  return *names;
}

}  // namespace star::text
