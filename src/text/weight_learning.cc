#include "text/weight_learning.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/string_util.h"

namespace star::text {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

std::vector<double> WeightLearner::Fit(
    const SimilarityEnsemble& ensemble,
    const std::vector<LabeledPair>& pairs) const {
  const int n_features = SimilarityEnsemble::kFeatureCount;
  // Precompute feature matrix once; training is then cheap.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  x.reserve(pairs.size());
  for (const auto& p : pairs) {
    x.push_back(ensemble.Features(p.query_label, p.data_label));
    y.push_back(p.is_match ? 1.0 : 0.0);
  }
  std::vector<double> w(n_features + 1, 0.0);  // last entry = bias
  if (x.empty()) return w;
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<double> grad(n_features + 1, 0.0);
    for (size_t i = 0; i < x.size(); ++i) {
      double z = w[n_features];
      for (int j = 0; j < n_features; ++j) z += w[j] * x[i][j];
      const double err = Sigmoid(z) - y[i];
      for (int j = 0; j < n_features; ++j) grad[j] += err * x[i][j];
      grad[n_features] += err;
    }
    for (int j = 0; j <= n_features; ++j) {
      grad[j] = grad[j] * inv_n + options_.l2 * w[j];
      w[j] -= options_.learning_rate * grad[j];
    }
  }
  return w;
}

double WeightLearner::FitAndInstall(SimilarityEnsemble& ensemble,
                                    const std::vector<LabeledPair>& pairs) const {
  const std::vector<double> w = Fit(ensemble, pairs);
  const int n_features = SimilarityEnsemble::kFeatureCount;
  std::vector<double> positive(w.begin(), w.begin() + n_features);
  ensemble.SetWeights(positive);
  // Training accuracy of the raw logistic model at threshold 0.5.
  size_t correct = 0;
  for (const auto& p : pairs) {
    const auto f = ensemble.Features(p.query_label, p.data_label);
    double z = w[n_features];
    for (int j = 0; j < n_features; ++j) z += w[j] * f[j];
    const bool predicted = Sigmoid(z) >= 0.5;
    if (predicted == p.is_match) ++correct;
  }
  return pairs.empty() ? 1.0 : static_cast<double>(correct) / pairs.size();
}

std::string PerturbLabel(const std::string& label, Rng& rng) {
  if (label.empty()) return label;
  std::string out = label;
  switch (rng.Below(4)) {
    case 0: {  // typo: substitute one character
      const size_t i = rng.Below(out.size());
      out[i] = static_cast<char>('a' + rng.Below(26));
      break;
    }
    case 1: {  // drop a token (if multi-token)
      auto tokens = SplitTokens(out);
      if (tokens.size() > 1) {
        tokens.erase(tokens.begin() + rng.Below(tokens.size()));
        out = Join(tokens, " ");
      } else {  // fall back to deleting one character
        out.erase(rng.Below(out.size()), 1);
      }
      break;
    }
    case 2: {  // abbreviate: keep a prefix of the last token
      auto tokens = SplitTokens(out);
      if (!tokens.empty() && tokens.back().size() > 3) {
        tokens.back() = tokens.back().substr(0, 1 + rng.Below(3)) + ".";
        out = Join(tokens, " ");
      }
      break;
    }
    default: {  // case change
      for (char& c : out) {
        c = rng.Chance(0.5)
                ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      break;
    }
  }
  return out.empty() ? label : out;
}

std::vector<LabeledPair> GenerateTrainingPairs(
    const std::vector<std::string>& labels, size_t pairs_per_class, Rng& rng,
    const SynonymDictionary* synonyms) {
  std::vector<LabeledPair> out;
  if (labels.empty()) return out;
  out.reserve(2 * pairs_per_class);
  for (size_t i = 0; i < pairs_per_class; ++i) {
    const std::string& base = labels[rng.Below(labels.size())];
    out.push_back({PerturbLabel(base, rng), base, true});
  }
  for (size_t i = 0; i < pairs_per_class; ++i) {
    const std::string& a = labels[rng.Below(labels.size())];
    const std::string& b = labels[rng.Below(labels.size())];
    if (a == b || (synonyms != nullptr && synonyms->AreSynonyms(a, b))) {
      out.push_back({a, b, true});
    } else {
      out.push_back({a, b, false});
    }
  }
  return out;
}

}  // namespace star::text
