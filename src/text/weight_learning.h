#ifndef STAR_TEXT_WEIGHT_LEARNING_H_
#define STAR_TEXT_WEIGHT_LEARNING_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "text/ensemble.h"

namespace star::text {

/// A labeled training pair for the matching function: two labels plus
/// whether they refer to the same entity.
struct LabeledPair {
  std::string query_label;
  std::string data_label;
  bool is_match = false;
};

/// Offline trainer for the Eq. 1 ensemble weights, standing in for the
/// learning pipeline of [2]: logistic regression (gradient descent with L2
/// regularization) over the ensemble's feature vectors. The fitted positive
/// part of the weight vector is normalized and installed into an ensemble.
class WeightLearner {
 public:
  struct Options {
    int epochs = 200;
    double learning_rate = 0.5;
    double l2 = 1e-4;
  };

  WeightLearner() : options_() {}
  explicit WeightLearner(Options options) : options_(options) {}

  /// Fits weights on the pairs, using `ensemble` to compute features.
  /// Returns the raw (signed) logistic weights, one per feature plus a
  /// trailing bias term.
  std::vector<double> Fit(const SimilarityEnsemble& ensemble,
                          const std::vector<LabeledPair>& pairs) const;

  /// Fits and installs clamped+normalized weights into the ensemble.
  /// Returns training accuracy at threshold 0.5.
  double FitAndInstall(SimilarityEnsemble& ensemble,
                       const std::vector<LabeledPair>& pairs) const;

 private:
  Options options_;
};

/// Generates synthetic training pairs from a vocabulary of entity labels:
/// positives are perturbations (typos, token drops, abbreviations, case
/// changes, synonym swaps); negatives are random distinct label pairs.
/// Deterministic given the rng seed.
std::vector<LabeledPair> GenerateTrainingPairs(
    const std::vector<std::string>& labels, size_t pairs_per_class, Rng& rng,
    const SynonymDictionary* synonyms = nullptr);

/// Applies one random label perturbation (typo / drop token / abbreviate /
/// case change). Exposed for tests.
std::string PerturbLabel(const std::string& label, Rng& rng);

}  // namespace star::text

#endif  // STAR_TEXT_WEIGHT_LEARNING_H_
