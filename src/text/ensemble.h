#ifndef STAR_TEXT_ENSEMBLE_H_
#define STAR_TEXT_ENSEMBLE_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "text/synonym_dictionary.h"
#include "text/tfidf.h"
#include "text/type_ontology.h"

namespace star::text {

/// True when `s` (after trimming) starts like a number — the guard the
/// numeric feature checks before parsing either side. Exposed so retrieval
/// metadata (LabelSetStats below, LabelIndex node facts) is built with the
/// exact predicate the kernel's numeric cap uses.
bool LooksNumeric(std::string_view s);

/// O(1) digest of a SET of data labels (one postings block), from which
/// SimilarityEnsemble::RetrievalBlockBound derives a score cap that
/// provably dominates F_N of every member. Tracks which byte lengths occur
/// (bit min(len, 63) of len_mask; lengths >= 63 pool into bit 63 with the
/// true range kept in min_len/max_len) and whether any member passes the
/// numeric guard.
struct LabelSetStats {
  uint64_t len_mask = 0;
  uint32_t min_len = 0;
  uint32_t max_len = 0;
  bool any_numeric = false;
  bool empty = true;

  void AddFacts(size_t len, bool numeric) {
    const uint32_t n = static_cast<uint32_t>(len);
    len_mask |= uint64_t{1} << (n < 63 ? n : 63);
    min_len = empty ? n : std::min(min_len, n);
    max_len = empty ? n : std::max(max_len, n);
    any_numeric = any_numeric || numeric;
    empty = false;
  }

  void Add(std::string_view label) {
    AddFacts(label.size(), LooksNumeric(label));
  }
};

/// Counters of the threshold-aware scoring kernel (ScoreAgainstThreshold):
/// how many pairs were scored, how many exited early, and how many feature
/// evaluations the weight-ordered upper bound saved.
struct KernelStats {
  uint64_t pairs = 0;               ///< kernel invocations
  uint64_t early_exits = 0;         ///< pairs rejected before the full sweep
  uint64_t features_evaluated = 0;  ///< feature positions actually consumed
  uint64_t features_skipped = 0;    ///< feature positions skipped by exits

  void Merge(const KernelStats& o) {
    pairs += o.pairs;
    early_exits += o.early_exits;
    features_evaluated += o.features_evaluated;
    features_skipped += o.features_skipped;
  }
};

/// The learned node/edge matching function of Eq. 1:
///
///   F_N(v, phi(v)) = sum_i alpha_i * f_i(v, phi(v))
///
/// where each f_i is one similarity measure from this module. The paper
/// uses 46 measures learned offline ([2]); this ensemble exposes the same
/// shape — a weighted linear aggregation over a feature vector in [0,1]^n —
/// with the measures implemented here. Weights default to uniform and can
/// be replaced by WeightLearner output (weight_learning.h).
///
/// Identical labels (ignoring case) score exactly 1.0 by definition.
class SimilarityEnsemble {
 public:
  /// Optional corpus-level context. Null members disable the corresponding
  /// features (their score is 0, so give them 0 weight when absent).
  struct Context {
    const SynonymDictionary* synonyms = nullptr;
    const TfIdfModel* tfidf = nullptr;
    const TypeOntology* ontology = nullptr;
  };

  /// Indices into the feature vector; kFeatureCount is the vector length.
  enum Feature : int {
    kExact = 0,
    kCaseInsensitive,
    kLevenshtein,
    kDamerauLevenshtein,
    kJaro,
    kJaroWinkler,
    kPrefix,
    kSuffix,
    kContainment,
    kTokenJaccard,
    kTokenDice,
    kTokenOverlap,
    kNGramJaccard,
    kAcronym,
    kAbbreviation,
    kLengthRatio,
    kNumeric,
    kLcs,
    kPhonetic,
    kSynonym,
    kTfIdfCosine,
    kTypeOntology,
    kMongeElkan,
    kLongestCommonSubstring,
    kHamming,
    kSmithWaterman,
    kBigramDice,
    kTokenSequenceEdit,
    kDate,
    kNumeralAware,
    kFeatureCount,
  };

  /// Ensemble with no corpus context (string-only features active).
  SimilarityEnsemble();
  explicit SimilarityEnsemble(Context context);

  /// Full feature vector for a (query label, data label) pair, with
  /// optional type ids for the ontology feature (-1 = untyped).
  std::vector<double> Features(std::string_view query_label,
                               std::string_view data_label, int query_type = -1,
                               int data_type = -1) const;

  /// Aggregated score (Eq. 1) in [0, 1]. Weights are kept normalized to
  /// sum to 1, so the score is a convex combination of the features.
  ///
  /// This is the hot path of the whole engine (every candidate's F_N is
  /// computed online): it shares tokenizations/lowercasing across features
  /// and skips zero-weight features, but is exactly equivalent to
  /// sum_i w_i * Features(...)[i].
  double Score(std::string_view query_label, std::string_view data_label,
               int query_type = -1, int data_type = -1) const;

  /// Replaces the weights (negative entries clamped to 0, then the vector
  /// is renormalized to sum 1). Must have kFeatureCount entries. Also
  /// rebuilds the kernel's evaluation order (see ScoreAgainstThreshold).
  void SetWeights(const std::vector<double>& weights);

  const std::vector<double>& weights() const { return weights_; }
  const Context& context() const { return context_; }

  // -------------------------------------------------------------------
  // Threshold-aware scoring kernel
  // -------------------------------------------------------------------
  //
  // Bulk candidate scoring evaluates ONE query label against thousands of
  // data labels, but Score() re-derives the query-side views (lowercase,
  // tokens, n-grams, phonetic codes, parses, tf-idf vector) for every
  // pair. The kernel splits the work: Prepare() builds the query side
  // once, ScoreAgainstThreshold() touches only the data side per pair —
  // into thread_local scratch, with no per-pair allocations — and
  // evaluates features in descending-weight order under the running upper
  // bound `score_so_far + remaining_weight_mass` (every feature is in
  // [0, 1]). Once the bound cannot reach `threshold` the pair is rejected
  // without evaluating the expensive tail (the O(n*m) alignment DPs).
  //
  // Exactness: completed evaluations replay the weighted sum in canonical
  // feature order, so any returned value >= threshold is bitwise equal to
  // Score(). Early exits return the (sub-threshold) bound, and the exit
  // test keeps a 1e-9 margin below the threshold so accumulation-order
  // rounding can never reject a pair the canonical sum would accept —
  // which is why Candidates() output is bit-identical with the kernel on
  // or off.

  /// Sentinel threshold: never exit early (exact mode).
  static constexpr double kNoThreshold = -1.0;

  /// Query-side view of one label, built once per query node by Prepare().
  /// Immutable afterwards, so concurrent ScoreAgainstThreshold calls may
  /// share it (the per-pair scratch is thread_local).
  struct PreparedLabel {
    std::string label;                       ///< original bytes
    std::string lower;                       ///< lowercased
    std::vector<std::string> tokens;         ///< tokens of lower, in order
    std::vector<std::string> tokens_sorted;  ///< sorted, unique
    std::vector<std::string> bigrams;        ///< sorted unique char 2-grams
    std::vector<std::string> trigrams;       ///< sorted unique char 3-grams
    std::string initials;                    ///< first char of each token
    std::vector<std::string> soundex;        ///< non-empty per-token codes
    std::vector<std::string> numerals;       ///< numeral-normalized tokens
    std::optional<double> quantity;          ///< ParseQuantity(label)
    std::optional<int> year;                 ///< ExtractYear(label)
    bool looks_numeric = false;              ///< numeric-guard flag (lower)
    bool contains_digit = false;             ///< date-guard flag (lower)
    TfIdfModel::SparseVector tfidf;          ///< empty without tf-idf ctx
  };

  /// Builds the query-side view of `label` (uses the tf-idf context when
  /// present and finalized).
  PreparedLabel Prepare(std::string_view label) const;

  /// F_N of (prepared query label, data label) against a candidate
  /// threshold. Returns a value bitwise equal to Score() whenever that
  /// value is >= threshold (and always when threshold < 0, e.g.
  /// kNoThreshold); pairs whose canonical score is below the threshold
  /// may instead return a cheaper sub-threshold upper bound. Thread-safe
  /// (thread_local scratch); `stats`, when given, is the caller's and is
  /// mutated non-atomically.
  double ScoreAgainstThreshold(const PreparedLabel& prepared,
                               std::string_view data_label, double threshold,
                               int query_type = -1, int data_type = -1,
                               KernelStats* stats = nullptr) const;

  /// Human-readable feature names, index-aligned with Features().
  static const std::vector<std::string>& FeatureNames();

  // -------------------------------------------------------------------
  // Batched scoring kernel (structure-of-arrays)
  // -------------------------------------------------------------------
  //
  // ScoreAgainstThreshold's remaining-mass bound assumes every unevaluated
  // feature can still contribute its full weight, so at uniform weights a
  // garbage pair must consume ~2/3 of the feature order — including the
  // alignment DPs, n-gram builds, soundex codes and synonym probes — before
  // the bound can drop below a 0.4 threshold. The batched kernel replaces
  // that trivial tail bound with per-lane *refined caps* derived from O(1)
  // facts (label lengths, query-side guard flags, token/gram counts):
  // Levenshtein-family features are capped by min/max length, Jaro by
  // (2 + min/max)/3, exact/Hamming by length equality, the numeric/date/
  // phonetic/tf-idf features by query-side guards, and so on. The cap and
  // bound arithmetic runs lane-parallel over kBatchLanes candidates at a
  // time (contiguous double lanes, auto-vectorizable), and the per-feature
  // sweep evaluates cheap features first so sub-threshold lanes exit
  // before any DP, gram build or hash probe.
  //
  // Exactness: identical contract to ScoreAgainstThreshold. Lanes whose
  // evaluation completes replay the weighted sum in canonical feature
  // order (bitwise equal to Score()); rejected lanes return a sound
  // sub-threshold upper bound (each cap provably dominates its feature,
  // and the 1e-9 exit margin absorbs the sub-ulp rounding of the cap
  // arithmetic exactly as it absorbs accumulation-order rounding).

  /// Lanes evaluated per batch kernel invocation.
  static constexpr int kBatchLanes = 8;

  /// Query-side SoA view for the batched kernel: the scalar PreparedLabel
  /// plus packed n-gram lanes and pre-resolved synonym group ids. Built
  /// once per query node; immutable afterwards, so concurrent
  /// ScoreBatchAgainstThreshold calls may share it.
  struct PreparedLabelBatch {
    PreparedLabel prepared;
    /// Sorted unique character n-grams, packed (length, bytes) -> uint32.
    /// Packing is injective for grams of <= 3 bytes, so intersection
    /// counts — and therefore the Jaccard/Dice values — are bitwise
    /// identical to the string-gram path.
    std::vector<uint32_t> bigrams_packed;
    std::vector<uint32_t> trigrams_packed;
    /// Synonym group id per prepared.tokens entry (-1 = no group), plus
    /// the whole-label group. Empty when the context has no dictionary.
    std::vector<int> token_syn_groups;
    int label_syn_group = -1;
  };

  /// Builds the batched query-side view (Prepare() plus the SoA lanes).
  PreparedLabelBatch PrepareBatch(std::string_view label) const;
  /// Wraps an existing PreparedLabel without re-deriving it.
  PreparedLabelBatch PrepareBatch(PreparedLabel prepared) const;

  /// F_N of the prepared query label against `count` (<= kBatchLanes) data
  /// labels at once. Per-lane results land in out[0..count): bitwise equal
  /// to Score() whenever the value is >= threshold (always when
  /// threshold < 0), otherwise a sub-threshold upper bound — the same
  /// contract as ScoreAgainstThreshold, so the two kernels and Score()
  /// agree bitwise on every kept candidate. `data_types` (nullable) gives
  /// the per-lane ontology type id. Thread-safe; `stats` is the caller's.
  void ScoreBatchAgainstThreshold(const PreparedLabelBatch& batch,
                                  const std::string_view* data_labels,
                                  size_t count, double threshold,
                                  int query_type, const int* data_types,
                                  double* out,
                                  KernelStats* stats = nullptr) const;

  // -------------------------------------------------------------------
  // Retrieval upper bounds (block-max candidate pruning)
  // -------------------------------------------------------------------
  //
  // Bound-driven candidate retrieval (scoring/query_scorer) needs a score
  // cap per postings block / per node computable WITHOUT touching the data
  // label bytes — only O(1) facts carried by the index (byte length,
  // numeric-guard flag). These bounds reuse the batched kernel's stage-A
  // cap table verbatim, so the soundness argument is the same one DESIGN.md
  // "Memory layout & batched scoring" makes per cap row.
  //
  // Soundness vs the equality shortcut: Score() returns 1.0 for
  // case-insensitively equal labels BEFORE any feature is consulted, and
  // that 1.0 can exceed the feature-cap sum. ASCII case folding preserves
  // byte length, so equality is only possible at equal byte length — both
  // bounds therefore return the trivial 1.0 whenever the data length
  // equals (or, for a block, may equal) the query label's length. With the
  // weights normalized to sum 1 every cap sum is <= 1, so this also
  // subsumes the open length-equality caps (exact/Hamming/abbreviation).

  /// Upper bound on Score(query label, any data label of byte length
  /// `data_len` whose numeric guard equals `data_numeric`), for any data
  /// type. >= the true score; equal-length labels return 1.0.
  double RetrievalNodeBound(const PreparedLabelBatch& batch, size_t data_len,
                            bool data_numeric) const;

  /// Upper bound on Score(query label, d) over every data label d whose
  /// facts were folded into `stats` (one postings block), for any data
  /// type. Exact lengths (< 63) take per-length bounds, maxed; the
  /// pooled-length bit takes per-feature maxima over [63, max_len] (a sum
  /// of per-feature maxima, since the features are not jointly unimodal
  /// over a length range). 0 for an empty digest.
  double RetrievalBlockBound(const PreparedLabelBatch& batch,
                             const LabelSetStats& stats) const;

 private:
  /// Recomputes eval_order_ / remaining_mass_ from weights_: the O(1)
  /// pre-filters first, then positive-weight features by (weight desc,
  /// cost-rank asc, index asc) — equal weights evaluate cheap-first so
  /// early exits skip the expensive alignment DPs.
  void RebuildEvalOrder();

  /// Shared core of the retrieval bounds: the stage-A cap sum for a
  /// hypothetical data label described by O(1) facts. `rr` is the
  /// min/max byte-length ratio, `minlen` the smaller byte length,
  /// `gram_len` the length the gram/token caps are evaluated at (the
  /// largest length the facts admit), `acr_len_match` whether some
  /// admitted length equals the query's initials count (>= 2). Assumes
  /// the caller already handled possible byte-length equality (returns
  /// the eq-gated caps as 0).
  double RetrievalCapSum(const PreparedLabel& p, double rr, double minlen,
                         double gram_len, bool any_numeric,
                         bool acr_len_match) const;

  Context context_;
  std::vector<double> weights_;
  std::vector<int> eval_order_;
  /// remaining_mass_[k] = sum of weights_[eval_order_[j]] for j >= k.
  std::vector<double> remaining_mass_;
  /// Positive-weight features in the batched kernel's sweep order:
  /// cheap-and-informative first (O(1) pre-filters, linear scans, token
  /// set measures), the refined-cap-bounded DPs and sparse measures last,
  /// so sub-threshold lanes exit before touching them.
  std::vector<int> batch_order_;
};

}  // namespace star::text

#endif  // STAR_TEXT_ENSEMBLE_H_
