#ifndef STAR_TEXT_ENSEMBLE_H_
#define STAR_TEXT_ENSEMBLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/synonym_dictionary.h"
#include "text/tfidf.h"
#include "text/type_ontology.h"

namespace star::text {

/// The learned node/edge matching function of Eq. 1:
///
///   F_N(v, phi(v)) = sum_i alpha_i * f_i(v, phi(v))
///
/// where each f_i is one similarity measure from this module. The paper
/// uses 46 measures learned offline ([2]); this ensemble exposes the same
/// shape — a weighted linear aggregation over a feature vector in [0,1]^n —
/// with the measures implemented here. Weights default to uniform and can
/// be replaced by WeightLearner output (weight_learning.h).
///
/// Identical labels (ignoring case) score exactly 1.0 by definition.
class SimilarityEnsemble {
 public:
  /// Optional corpus-level context. Null members disable the corresponding
  /// features (their score is 0, so give them 0 weight when absent).
  struct Context {
    const SynonymDictionary* synonyms = nullptr;
    const TfIdfModel* tfidf = nullptr;
    const TypeOntology* ontology = nullptr;
  };

  /// Indices into the feature vector; kFeatureCount is the vector length.
  enum Feature : int {
    kExact = 0,
    kCaseInsensitive,
    kLevenshtein,
    kDamerauLevenshtein,
    kJaro,
    kJaroWinkler,
    kPrefix,
    kSuffix,
    kContainment,
    kTokenJaccard,
    kTokenDice,
    kTokenOverlap,
    kNGramJaccard,
    kAcronym,
    kAbbreviation,
    kLengthRatio,
    kNumeric,
    kLcs,
    kPhonetic,
    kSynonym,
    kTfIdfCosine,
    kTypeOntology,
    kMongeElkan,
    kLongestCommonSubstring,
    kHamming,
    kSmithWaterman,
    kBigramDice,
    kTokenSequenceEdit,
    kDate,
    kNumeralAware,
    kFeatureCount,
  };

  /// Ensemble with no corpus context (string-only features active).
  SimilarityEnsemble();
  explicit SimilarityEnsemble(Context context);

  /// Full feature vector for a (query label, data label) pair, with
  /// optional type ids for the ontology feature (-1 = untyped).
  std::vector<double> Features(std::string_view query_label,
                               std::string_view data_label, int query_type = -1,
                               int data_type = -1) const;

  /// Aggregated score (Eq. 1) in [0, 1]. Weights are kept normalized to
  /// sum to 1, so the score is a convex combination of the features.
  ///
  /// This is the hot path of the whole engine (every candidate's F_N is
  /// computed online): it shares tokenizations/lowercasing across features
  /// and skips zero-weight features, but is exactly equivalent to
  /// sum_i w_i * Features(...)[i].
  double Score(std::string_view query_label, std::string_view data_label,
               int query_type = -1, int data_type = -1) const;

  /// Replaces the weights (negative entries clamped to 0, then the vector
  /// is renormalized to sum 1). Must have kFeatureCount entries.
  void SetWeights(const std::vector<double>& weights);

  const std::vector<double>& weights() const { return weights_; }
  const Context& context() const { return context_; }

  /// Human-readable feature names, index-aligned with Features().
  static const std::vector<std::string>& FeatureNames();

 private:
  Context context_;
  std::vector<double> weights_;
};

}  // namespace star::text

#endif  // STAR_TEXT_ENSEMBLE_H_
