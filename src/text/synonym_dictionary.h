#ifndef STAR_TEXT_SYNONYM_DICTIONARY_H_
#define STAR_TEXT_SYNONYM_DICTIONARY_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace star::text {

/// Heterogeneous string hashing so group lookups can take string_views
/// (e.g. tokens living in a scorer's scratch) without a temporary
/// std::string per probe.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// A symmetric thesaurus mapping terms into synonym groups.
/// Supports the paper's "teacher" ~ "educator" style transformations.
/// Terms are matched lowercased; groups are transitively merged, so
/// AddSynonym("a","b") followed by AddSynonym("b","c") relates a and c.
class SynonymDictionary {
 public:
  SynonymDictionary() = default;

  /// Declares `a` and `b` synonyms (merging their groups if they exist).
  void AddSynonym(std::string_view a, std::string_view b);

  /// Declares a whole group of mutually synonymous terms.
  void AddGroup(const std::vector<std::string>& terms);

  /// True if the two terms belong to the same synonym group (or are equal
  /// ignoring case).
  bool AreSynonyms(std::string_view a, std::string_view b) const;

  /// Similarity feature: 1 for synonyms, else the best token-level synonym
  /// overlap ratio between the two strings' token sets.
  double Similarity(std::string_view a, std::string_view b) const;

  /// Group id of an already-lowercased term, or -1 if unknown. Two terms
  /// are synonyms iff they are equal or share a non-negative group id —
  /// the batched scoring kernel pre-resolves ids on both sides so the
  /// token-level Similarity loop needs no per-pair hash probes.
  int GroupOfLower(std::string_view lower_term) const {
    const auto it = group_of_.find(lower_term);
    return it == group_of_.end() ? -1 : it->second;
  }

  /// Number of distinct terms known to the dictionary.
  size_t term_count() const { return group_of_.size(); }

  /// A built-in dictionary with a small general-purpose thesaurus used by
  /// the generators and examples (professions, places, media terms).
  static SynonymDictionary BuiltIn();

 private:
  int GroupOf(const std::string& lower_term) const;
  int EnsureGroup(std::string_view term);

  std::unordered_map<std::string, int, TransparentStringHash, std::equal_to<>>
      group_of_;
  int next_group_ = 0;
};

}  // namespace star::text

#endif  // STAR_TEXT_SYNONYM_DICTIONARY_H_
