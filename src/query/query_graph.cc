#include "query/query_graph.h"

#include <algorithm>
#include <cassert>

namespace star::query {

int QueryGraph::AddNode(std::string label, std::string type_name) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(QueryNode{std::move(label), std::move(type_name), false});
  incident_.emplace_back();
  return id;
}

int QueryGraph::AddWildcardNode(std::string type_name) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(QueryNode{"?", std::move(type_name), true});
  incident_.emplace_back();
  return id;
}

int QueryGraph::AddEdge(int u, int v, std::string relation) {
  assert(u >= 0 && u < node_count() && v >= 0 && v < node_count() && u != v);
  const int id = static_cast<int>(edges_.size());
  const bool wildcard = relation.empty() || relation == "?";
  edges_.push_back(QueryEdge{u, v, std::move(relation), wildcard});
  incident_[u].push_back(id);
  incident_[v].push_back(id);
  return id;
}

bool QueryGraph::IsConnected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 0;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    ++count;
    for (const int e : incident_[u]) {
      const int w = OtherEnd(e, u);
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return count == node_count();
}

bool QueryGraph::IsStar() const { return StarPivot() >= 0; }

int QueryGraph::StarPivot() const {
  if (!IsConnected()) return -1;
  if (edge_count() == 0) return node_count() == 1 ? 0 : -1;
  int best = -1;
  for (int u = 0; u < node_count(); ++u) {
    if (Degree(u) != edge_count()) continue;
    // u covers all edges; require distinct leaf endpoints (no multi-edge).
    std::vector<int> leaves;
    for (const int e : incident_[u]) leaves.push_back(OtherEnd(e, u));
    std::sort(leaves.begin(), leaves.end());
    if (std::adjacent_find(leaves.begin(), leaves.end()) != leaves.end()) {
      continue;
    }
    if (best < 0 || Degree(u) > Degree(best)) best = u;
  }
  return best;
}

bool QueryGraph::IsTree() const {
  return IsConnected() && edge_count() == node_count() - 1;
}

std::string QueryGraph::ToString() const {
  std::string out = "Q(" + std::to_string(node_count()) + "," +
                    std::to_string(edge_count()) + "){";
  for (int i = 0; i < node_count(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(i) + ":" + (nodes_[i].wildcard ? "?" : nodes_[i].label);
    if (!nodes_[i].type_name.empty()) out += "/" + nodes_[i].type_name;
  }
  out += "; ";
  for (int e = 0; e < edge_count(); ++e) {
    if (e > 0) out += ", ";
    out += std::to_string(edges_[e].u) + "-" + std::to_string(edges_[e].v);
    if (!edges_[e].wildcard_relation) out += ":" + edges_[e].relation;
  }
  out += "}";
  return out;
}

}  // namespace star::query
