#ifndef STAR_QUERY_QUERY_TEMPLATE_H_
#define STAR_QUERY_QUERY_TEMPLATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "graph/knowledge_graph.h"
#include "query/query_graph.h"
#include "query/workload.h"

namespace star::query {

/// A DBPSB-style star query template (§VII-A): a typed pivot slot plus a
/// list of (relation, leaf type) slots. Templates are *mined* from the
/// data graph (the frequent type/relation structures real SPARQL
/// benchmarks consist of) and then *instantiated* into concrete queries by
/// sampling an actual embedding and turning some slots into variables.
struct QueryTemplate {
  /// Type name of the pivot slot ("" = untyped).
  std::string pivot_type;
  struct LeafSlot {
    std::string relation;   // "" = wildcard relation
    std::string leaf_type;  // "" = untyped leaf
  };
  std::vector<LeafSlot> leaves;
  /// How many sampled pivots exhibited this structure (mining support).
  size_t support = 0;

  /// "Person -actedIn-> Film, -won-> Award" style rendering.
  std::string ToString() const;
};

/// Mines the `count` most frequent star templates with exactly
/// `num_leaves` leaves by sampling `samples` random pivots. Deterministic
/// given the rng. Templates are distinct by (pivot type, sorted slots).
std::vector<QueryTemplate> MineTemplates(const graph::KnowledgeGraph& g,
                                         int count, int num_leaves,
                                         size_t samples, Rng& rng);

/// Instantiates a template into a concrete query: picks a data node of
/// the pivot type whose neighborhood realizes every slot, then fills
/// labels under the usual workload options (variables, noise, partial
/// labels). Returns a query with fewer leaves if no full embedding is
/// found within `attempts` samples, and an empty query (0 nodes) if not
/// even the pivot type exists.
QueryGraph InstantiateTemplate(const graph::KnowledgeGraph& g,
                               const QueryTemplate& tpl,
                               const WorkloadOptions& options, Rng& rng,
                               int attempts = 64);

}  // namespace star::query

#endif  // STAR_QUERY_QUERY_TEMPLATE_H_
