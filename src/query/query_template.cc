#include "query/query_template.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/string_util.h"
#include "text/weight_learning.h"

namespace star::query {

using graph::KnowledgeGraph;
using graph::Neighbor;
using graph::NodeId;

std::string QueryTemplate::ToString() const {
  std::string out = pivot_type.empty() ? "?" : pivot_type;
  for (const auto& slot : leaves) {
    out += " -" + (slot.relation.empty() ? std::string("?") : slot.relation) +
           "-> " + (slot.leaf_type.empty() ? "?" : slot.leaf_type);
  }
  return out;
}

std::vector<QueryTemplate> MineTemplates(const KnowledgeGraph& g, int count,
                                         int num_leaves, size_t samples,
                                         Rng& rng) {
  // Key = pivot type + sorted (relation, leaf type) slots.
  std::map<std::string, QueryTemplate> mined;
  const size_t n = g.node_count();
  if (n == 0) return {};
  for (size_t s = 0; s < samples; ++s) {
    const NodeId pivot = static_cast<NodeId>(rng.Below(n));
    const auto nbrs = g.Neighbors(pivot);
    if (nbrs.size() < static_cast<size_t>(num_leaves)) continue;
    // Sample distinct leaf slots from the pivot's edges.
    std::vector<size_t> picks(nbrs.size());
    for (size_t i = 0; i < picks.size(); ++i) picks[i] = i;
    rng.Shuffle(picks);
    QueryTemplate tpl;
    tpl.pivot_type = g.TypeName(g.NodeType(pivot));
    std::unordered_set<NodeId> used = {pivot};
    for (size_t i = 0; i < picks.size() &&
                       tpl.leaves.size() < static_cast<size_t>(num_leaves);
         ++i) {
      const Neighbor& nb = nbrs[picks[i]];
      if (!used.insert(nb.node).second) continue;
      tpl.leaves.push_back({g.RelationName(nb.relation),
                            std::string(g.TypeName(g.NodeType(nb.node)))});
    }
    if (tpl.leaves.size() < static_cast<size_t>(num_leaves)) continue;
    std::sort(tpl.leaves.begin(), tpl.leaves.end(),
              [](const auto& a, const auto& b) {
                return std::tie(a.relation, a.leaf_type) <
                       std::tie(b.relation, b.leaf_type);
              });
    std::string key = tpl.pivot_type;
    for (const auto& slot : tpl.leaves) {
      key += "|" + slot.relation + "^" + slot.leaf_type;
    }
    auto [it, inserted] = mined.try_emplace(std::move(key), std::move(tpl));
    ++it->second.support;
  }
  std::vector<QueryTemplate> out;
  out.reserve(mined.size());
  for (auto& [key, tpl] : mined) out.push_back(std::move(tpl));
  std::sort(out.begin(), out.end(),
            [](const QueryTemplate& a, const QueryTemplate& b) {
              return a.support > b.support;
            });
  if (static_cast<int>(out.size()) > count) out.resize(count);
  return out;
}

QueryGraph InstantiateTemplate(const KnowledgeGraph& g,
                               const QueryTemplate& tpl,
                               const WorkloadOptions& options, Rng& rng,
                               int attempts) {
  const size_t n = g.node_count();
  const int32_t want_type =
      tpl.pivot_type.empty() ? -1 : g.FindTypeId(tpl.pivot_type);
  if (!tpl.pivot_type.empty() && want_type < 0) {
    return QueryGraph();  // the pivot type does not exist in this graph
  }
  if (n == 0) return QueryGraph();

  // Find an embedding: a pivot of the right type realizing every slot
  // with distinct neighbors.
  NodeId best_pivot = graph::kInvalidNode;
  std::vector<std::pair<NodeId, std::string>> best_assignment;  // (leaf, rel)
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const NodeId pivot = static_cast<NodeId>(rng.Below(n));
    if (want_type >= 0 && g.NodeType(pivot) != want_type) continue;
    std::vector<std::pair<NodeId, std::string>> assignment;
    std::unordered_set<NodeId> used = {pivot};
    bool ok = true;
    for (const auto& slot : tpl.leaves) {
      const NodeId found = [&]() -> NodeId {
        for (const Neighbor& nb : g.Neighbors(pivot)) {
          if (used.count(nb.node)) continue;
          if (!slot.relation.empty() &&
              g.RelationName(nb.relation) != slot.relation) {
            continue;
          }
          if (!slot.leaf_type.empty() &&
              g.TypeName(g.NodeType(nb.node)) != slot.leaf_type) {
            continue;
          }
          return nb.node;
        }
        return graph::kInvalidNode;
      }();
      if (found == graph::kInvalidNode) {
        ok = false;
        break;
      }
      used.insert(found);
      assignment.emplace_back(found, slot.relation);
    }
    if (ok) {
      best_pivot = pivot;
      best_assignment = std::move(assignment);
      break;
    }
    // Keep the longest partial embedding as a fallback.
    if (assignment.size() > best_assignment.size()) {
      best_pivot = pivot;
      best_assignment = std::move(assignment);
    }
  }
  QueryGraph q;
  if (best_pivot == graph::kInvalidNode) return q;

  // Fill labels exactly like the sampled-workload generator: pivot
  // concrete, leaves optionally variables, with noise / partial labels.
  const auto fill = [&](NodeId v, bool force_concrete,
                        const std::string& type_hint) -> int {
    if (!force_concrete && rng.Chance(std::min(0.5, options.variable_fraction))) {
      return q.AddWildcardNode(rng.Chance(options.keep_type) ? type_hint : "");
    }
    std::string label(g.NodeLabel(v));
    if (rng.Chance(options.partial_label)) {
      const auto tokens = SplitTokens(label);
      if (tokens.size() > 1) label = tokens[rng.Below(tokens.size())];
    }
    if (rng.Chance(options.label_noise)) {
      label = text::PerturbLabel(label, rng);
    }
    return q.AddNode(std::move(label),
                     rng.Chance(options.keep_type) ? type_hint : "");
  };

  const int pivot_q = fill(best_pivot, /*force_concrete=*/true, tpl.pivot_type);
  for (size_t i = 0; i < best_assignment.size(); ++i) {
    const auto& [leaf, relation] = best_assignment[i];
    const std::string type_hint =
        i < tpl.leaves.size() ? tpl.leaves[i].leaf_type : "";
    const int leaf_q = fill(leaf, /*force_concrete=*/false, type_hint);
    q.AddEdge(pivot_q, leaf_q,
              rng.Chance(options.keep_relation) ? relation : "");
  }
  return q;
}

}  // namespace star::query
