#ifndef STAR_QUERY_QUERY_GRAPH_H_
#define STAR_QUERY_QUERY_GRAPH_H_

#include <string>
#include <string_view>
#include <vector>

namespace star::query {

/// A query node: a keyword/entity description plus an optional type name.
/// A wildcard node ("?") places no content constraint (F_N == 1 for any
/// data node); it is matched purely through structure.
struct QueryNode {
  std::string label;
  std::string type_name;  // empty = untyped
  bool wildcard = false;
};

/// A query edge between node indices; an empty / wildcard relation matches
/// any relation label with similarity 1.
struct QueryEdge {
  int u = -1;
  int v = -1;
  std::string relation;
  bool wildcard_relation = true;
};

/// A small labeled query graph Q = (V_Q, E_Q) (§II). Node indices are dense
/// ints. The graph is undirected for matching purposes (an edge (u,v)
/// constrains connectivity between the matches of u and v).
class QueryGraph {
 public:
  QueryGraph() = default;

  /// Adds a node with a content label and optional type; returns its index.
  int AddNode(std::string label, std::string type_name = "");

  /// Adds a wildcard ("?") node; returns its index.
  int AddWildcardNode(std::string type_name = "");

  /// Adds an undirected edge; empty relation = wildcard.
  int AddEdge(int u, int v, std::string relation = "");

  /// Replaces node u's type constraint (used by the parser when a later
  /// occurrence of a node adds a type).
  void SetNodeType(int u, std::string type_name) {
    nodes_[u].type_name = std::move(type_name);
  }

  /// Replaces node u's content label (used by the serve layer's
  /// typo-tolerant query rewrite). The wildcard flag is unchanged.
  void SetNodeLabel(int u, std::string label) {
    nodes_[u].label = std::move(label);
  }

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int edge_count() const { return static_cast<int>(edges_.size()); }

  const QueryNode& node(int i) const { return nodes_[i]; }
  const QueryEdge& edge(int i) const { return edges_[i]; }
  const std::vector<QueryNode>& nodes() const { return nodes_; }
  const std::vector<QueryEdge>& edges() const { return edges_; }

  /// Indices of edges incident to node u.
  const std::vector<int>& IncidentEdges(int u) const { return incident_[u]; }

  /// Degree of node u in the query graph.
  int Degree(int u) const { return static_cast<int>(incident_[u].size()); }

  /// The other endpoint of edge e relative to u.
  int OtherEnd(int e, int u) const {
    return edges_[e].u == u ? edges_[e].v : edges_[e].u;
  }

  /// True if all nodes are reachable from node 0 (or the graph is empty).
  bool IsConnected() const;

  /// True if the query is a star: some node is an endpoint of every edge
  /// and there are no parallel edges between the same pair.
  /// Single-node/single-edge queries are stars.
  bool IsStar() const;

  /// True if the query is acyclic (a tree/forest).
  bool IsTree() const;

  /// For a star query: the index of a valid pivot (center). Prefers the
  /// node covering all edges with maximum degree; -1 if not a star.
  int StarPivot() const;

  /// Human-readable one-line description for logs and examples.
  std::string ToString() const;

 private:
  std::vector<QueryNode> nodes_;
  std::vector<QueryEdge> edges_;
  std::vector<std::vector<int>> incident_;
};

/// A star query view over a QueryGraph: a pivot node plus the query edges
/// it covers. Used both for whole star queries and for star subqueries
/// produced by decomposition (the edges are a subset of the parent query's
/// edges in the latter case).
struct StarQuery {
  /// Index of the pivot node in the parent query graph.
  int pivot = -1;
  /// Parent-query edge indices covered by this star (all incident to pivot).
  std::vector<int> edges;
};

}  // namespace star::query

#endif  // STAR_QUERY_QUERY_GRAPH_H_
