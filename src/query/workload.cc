#include "query/workload.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "text/weight_learning.h"

namespace star::query {

using graph::KnowledgeGraph;
using graph::Neighbor;
using graph::NodeId;

WorkloadGenerator::WorkloadGenerator(const KnowledgeGraph& g, uint64_t seed)
    : graph_(g), rng_(seed) {}

NodeId WorkloadGenerator::PickNodeWithDegree(size_t min_degree) {
  const size_t n = graph_.node_count();
  for (int attempt = 0; attempt < 256; ++attempt) {
    const NodeId v = static_cast<NodeId>(rng_.Below(n));
    if (graph_.Degree(v) >= min_degree) return v;
  }
  // Fallback: scan for the first satisfying node.
  for (NodeId v = 0; v < n; ++v) {
    if (graph_.Degree(v) >= min_degree) return v;
  }
  return static_cast<NodeId>(rng_.Below(n));
}

void WorkloadGenerator::FillNode(QueryGraph& q, NodeId v, bool force_concrete,
                                 const WorkloadOptions& options) {
  const double var_frac = std::clamp(options.variable_fraction, 0.0, 0.5);
  if (!force_concrete && rng_.Chance(var_frac)) {
    // Variable node; optionally still typed (DBPSB templates type many
    // variables, e.g. "?x a dbo:Person").
    const bool typed = rng_.Chance(options.keep_type) &&
                       graph_.NodeType(v) >= 0;
    q.AddWildcardNode(
        typed ? std::string(graph_.TypeName(graph_.NodeType(v))) : "");
    return;
  }
  std::string label(graph_.NodeLabel(v));
  if (rng_.Chance(options.partial_label)) {
    const auto tokens = SplitTokens(label);
    if (tokens.size() > 1) label = tokens[rng_.Below(tokens.size())];
  }
  if (rng_.Chance(options.label_noise)) {
    label = text::PerturbLabel(label, rng_);
  }
  const bool typed =
      rng_.Chance(options.keep_type) && graph_.NodeType(v) >= 0;
  q.AddNode(std::move(label),
            typed ? std::string(graph_.TypeName(graph_.NodeType(v))) : "");
}

QueryGraph WorkloadGenerator::RandomStarQuery(int num_nodes,
                                              const WorkloadOptions& options) {
  const int leaves = std::max(1, num_nodes - 1);
  const NodeId pivot = PickNodeWithDegree(leaves);
  QueryGraph q;
  // Pivot is always concrete so the query is anchored (templates anchor at
  // least half of the nodes).
  FillNode(q, pivot, /*force_concrete=*/true, options);

  // Distinct leaf neighbors, shuffled.
  const auto pivot_nbrs = graph_.Neighbors(pivot);
  std::vector<Neighbor> nbrs(pivot_nbrs.begin(), pivot_nbrs.end());
  rng_.Shuffle(nbrs);
  std::unordered_set<NodeId> used = {pivot};
  int added = 0;
  for (const Neighbor& nb : nbrs) {
    if (added == leaves) break;
    if (!used.insert(nb.node).second) continue;
    FillNode(q, nb.node, /*force_concrete=*/false, options);
    const std::string rel = rng_.Chance(options.keep_relation)
                                ? graph_.RelationName(nb.relation)
                                : "";
    q.AddEdge(0, q.node_count() - 1, rel);
    ++added;
  }
  return q;
}

QueryGraph WorkloadGenerator::RandomPathQuery(int num_nodes,
                                              const WorkloadOptions& options) {
  QueryGraph q;
  NodeId cur = PickNodeWithDegree(1);
  FillNode(q, cur, /*force_concrete=*/true, options);
  std::unordered_set<NodeId> used = {cur};
  for (int i = 1; i < num_nodes; ++i) {
    // Step to an unused neighbor.
    const auto cur_nbrs = graph_.Neighbors(cur);
    std::vector<Neighbor> nbrs(cur_nbrs.begin(), cur_nbrs.end());
    rng_.Shuffle(nbrs);
    const Neighbor* next = nullptr;
    for (const Neighbor& nb : nbrs) {
      if (!used.count(nb.node)) {
        next = &nb;
        break;
      }
    }
    if (next == nullptr) break;  // dead end; return the shorter path
    FillNode(q, next->node, /*force_concrete=*/false, options);
    const std::string rel = rng_.Chance(options.keep_relation)
                                ? graph_.RelationName(next->relation)
                                : "";
    q.AddEdge(i - 1, i, rel);
    used.insert(next->node);
    cur = next->node;
  }
  return q;
}

QueryGraph WorkloadGenerator::RandomGraphQuery(int num_nodes, int num_edges,
                                               const WorkloadOptions& options) {
  // Grow a connected node sample by random expansion.
  std::vector<NodeId> sample;
  std::unordered_map<NodeId, int> index_of;
  const NodeId seed_node = PickNodeWithDegree(2);
  sample.push_back(seed_node);
  index_of[seed_node] = 0;
  while (static_cast<int>(sample.size()) < num_nodes) {
    // Expand from a random sampled node.
    const NodeId from = sample[rng_.Below(sample.size())];
    const auto from_nbrs = graph_.Neighbors(from);
    std::vector<Neighbor> nbrs(from_nbrs.begin(), from_nbrs.end());
    rng_.Shuffle(nbrs);
    bool grew = false;
    for (const Neighbor& nb : nbrs) {
      if (!index_of.count(nb.node)) {
        index_of[nb.node] = static_cast<int>(sample.size());
        sample.push_back(nb.node);
        grew = true;
        break;
      }
    }
    if (!grew && sample.size() > 1) {
      // This node is saturated; a different one may still expand. Detect a
      // fully saturated sample by scanning all of them once.
      bool any = false;
      for (const NodeId s : sample) {
        for (const Neighbor& nb : graph_.Neighbors(s)) {
          if (!index_of.count(nb.node)) {
            any = true;
            break;
          }
        }
        if (any) break;
      }
      if (!any) break;
    }
  }

  // Collect all data edges inside the sample; keep a spanning set first,
  // then extra edges (cycles) until num_edges is reached.
  struct SampleEdge {
    int u, v;
    std::string relation;
  };
  std::vector<SampleEdge> inside;
  std::unordered_set<uint64_t> seen_pairs;
  for (const NodeId s : sample) {
    for (const Neighbor& nb : graph_.Neighbors(s)) {
      const auto it = index_of.find(nb.node);
      if (it == index_of.end()) continue;
      const int a = index_of[s];
      const int b = it->second;
      if (a == b) continue;
      const uint64_t key = a < b
                               ? (static_cast<uint64_t>(a) << 32) | b
                               : (static_cast<uint64_t>(b) << 32) | a;
      if (!seen_pairs.insert(key).second) continue;
      inside.push_back({a, b, graph_.RelationName(nb.relation)});
    }
  }
  rng_.Shuffle(inside);

  // Kruskal-style spanning selection.
  std::vector<int> parent(sample.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  const auto find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::vector<SampleEdge> chosen;
  std::vector<SampleEdge> extra;
  for (const auto& e : inside) {
    const int ru = find(e.u);
    const int rv = find(e.v);
    if (ru != rv) {
      parent[ru] = rv;
      chosen.push_back(e);
    } else {
      extra.push_back(e);
    }
  }
  for (const auto& e : extra) {
    if (static_cast<int>(chosen.size()) >= num_edges) break;
    chosen.push_back(e);
  }

  QueryGraph q;
  for (size_t i = 0; i < sample.size(); ++i) {
    FillNode(q, sample[i], /*force_concrete=*/i == 0, options);
  }
  for (const auto& e : chosen) {
    q.AddEdge(e.u, e.v,
              rng_.Chance(options.keep_relation) ? e.relation : "");
  }
  return q;
}

std::vector<QueryGraph> WorkloadGenerator::StarWorkload(
    int count, int min_nodes, int max_nodes, const WorkloadOptions& options) {
  std::vector<QueryGraph> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    const int n = static_cast<int>(rng_.Uniform(min_nodes, max_nodes));
    out.push_back(RandomStarQuery(n, options));
  }
  return out;
}

std::vector<QueryGraph> WorkloadGenerator::GraphWorkload(
    int count, int num_nodes, int num_edges, const WorkloadOptions& options) {
  std::vector<QueryGraph> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    out.push_back(RandomGraphQuery(num_nodes, num_edges, options));
  }
  return out;
}

}  // namespace star::query
