#include "query/query_parser.h"

#include <cctype>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace star::query {

namespace {

/// Cursor over the input with one-token-ish lookahead helpers.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<QueryGraph> Run() {
    SkipSpace();
    while (!AtEnd()) {
      if (auto status = ParseClause(); !status.ok()) return status;
      SkipSpace();
      if (AtEnd()) break;
      if (!Consume(';')) {
        return Error("expected ';' between clauses");
      }
      SkipSpace();
      if (AtEnd()) break;  // trailing ';' tolerated
    }
    if (graph_.node_count() == 0) {
      return Status::CorruptData("empty query");
    }
    return std::move(graph_);
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  Status Error(const std::string& why) const {
    return Status::CorruptData(why + " at position " + std::to_string(pos_));
  }

  /// clause := node (edge node)*
  Status ParseClause() {
    int prev = -1;
    if (auto first = ParseNode(); first < 0) {
      return Error("expected '(' to start a node");
    } else {
      prev = first;
    }
    SkipSpace();
    while (!AtEnd() && Peek() == '-') {
      std::string relation;
      if (auto status = ParseEdge(relation); !status.ok()) return status;
      SkipSpace();
      const int next = ParseNode();
      if (next < 0) return Error("expected a node after an edge");
      if (next == prev) return Error("self-loop edges are not allowed");
      const uint64_t key = prev < next
                               ? (static_cast<uint64_t>(prev) << 32) | next
                               : (static_cast<uint64_t>(next) << 32) | prev;
      if (!edge_pairs_.insert(key).second) {
        return Error("duplicate edge between the same nodes");
      }
      graph_.AddEdge(prev, next, relation);
      prev = next;
      SkipSpace();
    }
    return Status::Ok();
  }

  /// edge := '--' | '-[relation]-'
  Status ParseEdge(std::string& relation) {
    if (!Consume('-')) return Error("expected '-'");
    if (Consume('-')) {
      relation.clear();
      return Status::Ok();
    }
    if (!Consume('[')) return Error("expected '-' or '[' in edge");
    const size_t start = pos_;
    while (!AtEnd() && Peek() != ']') ++pos_;
    if (AtEnd()) return Error("unterminated '[relation'");
    relation = std::string(Trim(text_.substr(start, pos_ - start)));
    ++pos_;  // ']'
    if (!Consume('-')) return Error("expected '-' after ']'");
    return Status::Ok();
  }

  /// node := '(' spec ')'; returns the node index or -1 on error.
  int ParseNode() {
    SkipSpace();
    if (!Consume('(')) return -1;
    const size_t start = pos_;
    int depth = 1;
    while (!AtEnd()) {
      if (Peek() == '(') ++depth;
      if (Peek() == ')' && --depth == 0) break;
      ++pos_;
    }
    if (AtEnd()) return -1;  // unterminated
    std::string spec(Trim(text_.substr(start, pos_ - start)));
    ++pos_;  // ')'

    // Optional '/Type' suffix (the last slash, so labels may contain '/'
    // only if a type is not intended — documented limitation).
    std::string type_name;
    const size_t slash = spec.rfind('/');
    if (slash != std::string::npos) {
      type_name = std::string(Trim(std::string_view(spec).substr(slash + 1)));
      spec = std::string(Trim(std::string_view(spec).substr(0, slash)));
    }

    if (!spec.empty() && spec[0] == '?') {
      const std::string name(Trim(std::string_view(spec).substr(1)));
      if (name.empty()) {
        return graph_.AddWildcardNode(type_name);  // anonymous: fresh node
      }
      // Named wildcards are identified by the name alone; a type given at
      // any occurrence attaches to the shared node.
      return ResolveNamed("?" + ToLower(name), type_name, /*wildcard=*/true,
                          spec);
    }
    if (spec.empty()) return -1;  // "()" is malformed
    return ResolveNamed(ToLower(spec), type_name, /*wildcard=*/false, spec);
  }

  /// Finds or creates the node for `key`, merging type constraints: the
  /// first non-empty type wins; a conflicting second type is an error
  /// (reported as -1; the caller produces the message position).
  int ResolveNamed(const std::string& key, const std::string& type_name,
                   bool wildcard, const std::string& label) {
    const auto it = named_.find(key);
    if (it != named_.end()) {
      const int id = it->second;
      if (!type_name.empty()) {
        const std::string& existing = graph_.node(id).type_name;
        if (existing.empty()) {
          graph_.SetNodeType(id, type_name);
        } else if (ToLower(existing) != ToLower(type_name)) {
          return -1;  // conflicting type constraints
        }
      }
      return id;
    }
    const int id = wildcard ? graph_.AddWildcardNode(type_name)
                            : graph_.AddNode(label, type_name);
    named_.emplace(key, id);
    return id;
  }

  std::string_view text_;
  size_t pos_ = 0;
  QueryGraph graph_;
  std::unordered_map<std::string, int> named_;
  std::unordered_set<uint64_t> edge_pairs_;
};

}  // namespace

Result<QueryGraph> ParseQuery(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace star::query
