#ifndef STAR_QUERY_QUERY_CANONICAL_H_
#define STAR_QUERY_QUERY_CANONICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query_graph.h"

namespace star::query {

/// An insertion-order-insensitive canonical form of a QueryGraph: two
/// graphs that differ only in the order nodes/edges were added (i.e. are
/// isomorphic under a label/type/relation-preserving relabeling) produce
/// the same signature, and two graphs with the same signature are such
/// relabelings of each other. This is what makes a normalized-query result
/// cache correct: the signature can be a cache key with no false hits.
///
/// Method: Weisfeiler-Leman color refinement over (wildcard, label, type)
/// node attributes and (relation, neighbor color) edge views, then the
/// lexicographically smallest serialization over orderings consistent with
/// the final color classes. Refinement alone distinguishes almost every
/// real query; the bounded permutation search only runs over residual
/// symmetric groups (e.g. identically-labeled leaves), which are tiny for
/// paper-scale queries. If the residual symmetry exceeds
/// kMaxCanonicalOrderings, the signature falls back to refinement order —
/// still deterministic and collision-free, merely insertion-order
/// sensitive for those pathological queries (a missed cache hit, never a
/// wrong one; `exact` reports it).
struct CanonicalQuery {
  /// Full canonical serialization (nodes, then sorted edge list).
  std::string signature;
  /// FNV-1a hash of `signature` (for hash-map keying; the signature is
  /// still what must be compared on lookup).
  uint64_t hash = 0;
  /// Canonical rank of each original node index.
  std::vector<int> node_rank;
  /// False when the permutation cap forced the refinement-order fallback.
  bool exact = true;
};

/// Orderings explored across residual color-class symmetries before
/// falling back (product of factorials of tied-class sizes).
inline constexpr size_t kMaxCanonicalOrderings = 20'160;  // 8!/2

CanonicalQuery CanonicalizeQuery(const QueryGraph& q);

/// Convenience: CanonicalizeQuery(q).hash.
uint64_t CanonicalQueryHash(const QueryGraph& q);

/// True when a and b have identical canonical signatures.
bool CanonicallyEqual(const QueryGraph& a, const QueryGraph& b);

}  // namespace star::query

#endif  // STAR_QUERY_QUERY_CANONICAL_H_
