#ifndef STAR_QUERY_QUERY_CANONICAL_H_
#define STAR_QUERY_QUERY_CANONICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query_graph.h"

namespace star::query {

/// An insertion-order-insensitive canonical form of a QueryGraph: two
/// graphs that differ only in the order nodes/edges were added (i.e. are
/// isomorphic under a label/type/relation-preserving relabeling) produce
/// the same signature, and two graphs with the same signature are such
/// relabelings of each other. This is what makes a normalized-query result
/// cache correct: the signature can be a cache key with no false hits.
///
/// Method: Weisfeiler-Leman color refinement over (wildcard, label, type)
/// node attributes and (relation, neighbor color) edge views, then the
/// lexicographically smallest serialization over orderings consistent with
/// the final color classes. Refinement alone distinguishes almost every
/// real query; the bounded permutation search only runs over residual
/// symmetric groups (e.g. identically-labeled leaves), which are tiny for
/// paper-scale queries. If the residual symmetry exceeds
/// kMaxCanonicalOrderings, the signature falls back to refinement order —
/// still deterministic and collision-free, merely insertion-order
/// sensitive for those pathological queries (a missed cache hit, never a
/// wrong one; `exact` reports it).
struct CanonicalQuery {
  /// Full canonical serialization (nodes, then sorted edge list).
  std::string signature;
  /// FNV-1a hash of `signature` (for hash-map keying; the signature is
  /// still what must be compared on lookup).
  uint64_t hash = 0;
  /// Canonical rank of each original node index.
  std::vector<int> node_rank;
  /// False when the permutation cap forced the refinement-order fallback.
  bool exact = true;
};

/// Orderings explored across residual color-class symmetries before
/// falling back (product of factorials of tied-class sizes).
inline constexpr size_t kMaxCanonicalOrderings = 20'160;  // 8!/2

CanonicalQuery CanonicalizeQuery(const QueryGraph& q);

/// Convenience: CanonicalizeQuery(q).hash.
uint64_t CanonicalQueryHash(const QueryGraph& q);

/// True when a and b have identical canonical signatures.
bool CanonicallyEqual(const QueryGraph& a, const QueryGraph& b);

/// An insertion-order-insensitive canonical form of ONE star subquery: the
/// pivot's attributes and ownership weight followed by the sorted multiset
/// of edge records (relation attr, leaf attrs, bit-exact leaf weight).
/// Two stars — possibly from different queries — produce the same
/// signature iff pivot, leaves, predicates and α-weights all agree, which
/// is exactly the condition under which the star engines produce the same
/// match stream. Matching *semantics* (thresholds, d, injectivity, …) are
/// deliberately not part of this signature; cache keys prepend a
/// StarOptionsFingerprint for that.
struct CanonicalStar {
  /// Pivot record + sorted edge records.
  std::string signature;
  /// FNV-1a hash of `signature` (hash-map keying only; lookups must still
  /// compare the full signature — the map key is the signature itself).
  uint64_t hash = 0;
  /// False when two edge records tie exactly (identical relation, leaf
  /// attributes and weight). The signature is still deterministic, but a
  /// tie means the canonical edge order is not unique, so such stars are
  /// never memoized across queries (a missed cache hit, never a wrong
  /// one).
  bool exact = true;
};

/// Canonical record of one star edge: relation attribute, leaf node
/// attributes, and the bit-exact α-weight of the leaf. This is the unit
/// CanonicalizeStar sorts — and the key StarSearch orders its edges by, so
/// execution order is a function of the canonical star, not of edge
/// insertion order.
std::string CanonicalStarEdgeRecord(const QueryGraph& q, int edge, int pivot,
                                    double leaf_weight);

/// Canonical attribute record of one query node (wildcard flag, label,
/// type). Two query nodes with equal records have identical candidate
/// lists under a fixed graph/index/config — the star cache keys candidate
/// lists by this.
std::string CanonicalNodeSignature(const QueryNode& n);

/// Canonicalizes one star of q. `node_weights` are the α-scheme ownership
/// weights (StarSearch::Options::node_weights); empty means weight 1.0 for
/// every node (standalone star query), encoded identically to an explicit
/// all-ones vector so the two key equal.
CanonicalStar CanonicalizeStar(const QueryGraph& q, const StarQuery& star,
                               const std::vector<double>& node_weights = {});

}  // namespace star::query

#endif  // STAR_QUERY_QUERY_CANONICAL_H_
