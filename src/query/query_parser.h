#ifndef STAR_QUERY_QUERY_PARSER_H_
#define STAR_QUERY_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/query_graph.h"

namespace star::query {

/// Parses a compact textual query language into a QueryGraph. The paper
/// positions graph queries as the common target that keyword / natural
/// language / exemplar queries compile into; this parser is the textual
/// front end for the examples and the CLI.
///
/// Grammar (whitespace-insensitive):
///
///   query    :=  clause (';' clause)*
///   clause   :=  node (edge node)*            // a path of one or more hops
///   node     :=  '(' spec ')'
///   spec     :=  '?'            — anonymous wildcard (fresh node each time)
///             |  '?name'        — named wildcard (same node when repeated)
///             |  'label text'   — concrete node (same node when repeated)
///             |  spec '/' Type  — optional type constraint suffix
///   edge     :=  '--'           — wildcard relation
///             |  '-[relation]-' — relation-labeled edge
///
/// Examples:
///
///   (Brad) -- (?m/Film); (?m) -[won]- (Academy Award)
///   (?director/Director) -[directed]- (Boyhood)
///
/// Matching is undirected, so no arrowheads; duplicate edges between the
/// same node pair are rejected. Returns CorruptData with a position
/// message on malformed input.
Result<QueryGraph> ParseQuery(std::string_view text);

}  // namespace star::query

#endif  // STAR_QUERY_QUERY_PARSER_H_
