#include "query/query_canonical.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

namespace star::query {

namespace {

// Separators below any printable character, so field boundaries can never
// be confused with label content.
constexpr char kField = '\x1f';
constexpr char kRecord = '\x1e';

/// Immutable attributes of one node (independent of its index).
std::string NodeAttr(const QueryNode& n) {
  std::string s(1, n.wildcard ? 'W' : 'L');
  s += kField;
  s += n.label;
  s += kField;
  s += n.type_name;
  return s;
}

std::string EdgeAttr(const QueryEdge& e) {
  return e.wildcard_relation ? std::string("?") : e.relation;
}

/// WL color refinement: start from node attributes, repeatedly extend each
/// node's signature with the sorted multiset of (edge attribute, neighbor
/// color) views, until the partition stops splitting. Insertion-order
/// independent: colors are ranks in the sorted set of signature strings.
std::vector<int> RefineColors(const QueryGraph& q,
                              std::vector<std::string>& sig) {
  const int n = q.node_count();
  sig.resize(n);
  for (int u = 0; u < n; ++u) sig[u] = NodeAttr(q.node(u));

  std::vector<int> colors(n, 0);
  size_t num_colors = 0;
  for (int round = 0; round <= n; ++round) {
    std::map<std::string, int> rank;
    for (const std::string& s : sig) rank.emplace(s, 0);
    int next = 0;
    for (auto& [key, value] : rank) value = next++;
    for (int u = 0; u < n; ++u) colors[u] = rank.at(sig[u]);
    if (rank.size() == static_cast<size_t>(n) ||
        rank.size() == num_colors) {
      break;  // discrete or stable partition
    }
    num_colors = rank.size();
    // Extend: own color + sorted (edge attr, neighbor color) views.
    for (int u = 0; u < n; ++u) {
      std::vector<std::string> views;
      views.reserve(q.IncidentEdges(u).size());
      for (const int e : q.IncidentEdges(u)) {
        std::string v = EdgeAttr(q.edge(e));
        v += kField;
        v += std::to_string(colors[q.OtherEnd(e, u)]);
        views.push_back(std::move(v));
      }
      std::sort(views.begin(), views.end());
      std::string s = std::to_string(colors[u]);
      for (const std::string& v : views) {
        s += kRecord;
        s += v;
      }
      sig[u] = std::move(s);
    }
  }
  return colors;
}

/// Full serialization under the node order `order` (position -> original
/// index): node attributes in order, then the sorted edge list keyed by
/// canonical endpoint positions.
std::string Serialize(const QueryGraph& q, const std::vector<int>& order) {
  std::vector<int> rank(order.size());
  for (size_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = int(pos);

  std::string out = "V";
  out += std::to_string(q.node_count());
  for (const int u : order) {
    out += kRecord;
    out += NodeAttr(q.node(u));
  }
  std::vector<std::string> edges;
  edges.reserve(q.edge_count());
  for (int e = 0; e < q.edge_count(); ++e) {
    const QueryEdge& qe = q.edge(e);
    const int a = std::min(rank[qe.u], rank[qe.v]);
    const int b = std::max(rank[qe.u], rank[qe.v]);
    std::string s = std::to_string(a);
    s += kField;
    s += std::to_string(b);
    s += kField;
    s += EdgeAttr(qe);
    edges.push_back(std::move(s));
  }
  std::sort(edges.begin(), edges.end());
  out += kRecord;
  out += "E";
  out += std::to_string(q.edge_count());
  for (const std::string& s : edges) {
    out += kRecord;
    out += s;
  }
  return out;
}

// Bit-exact double encoding (16 hex chars of the IEEE-754 image): two
// weights key equal iff they are the identical double, with no decimal
// round-trip fuzz. Mirrors the serve layer's config fingerprinting.
void AppendDoubleBits(std::string& s, double d) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  s += buf;
}

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Enumerates every node order consistent with the color classes (classes
/// in color order; nodes permuted within a class) and keeps the
/// lexicographically smallest serialization.
struct OrderSearch {
  const QueryGraph& q;
  std::vector<std::vector<int>>& groups;
  std::vector<int> order;
  std::string best;
  std::vector<int> best_order;

  void Run() {
    order.reserve(q.node_count());
    Recurse(0);
  }

  void Recurse(size_t gi) {
    if (gi == groups.size()) {
      std::string s = Serialize(q, order);
      if (best.empty() || s < best) {
        best = std::move(s);
        best_order = order;
      }
      return;
    }
    std::vector<int>& g = groups[gi];
    std::sort(g.begin(), g.end());
    do {
      order.insert(order.end(), g.begin(), g.end());
      Recurse(gi + 1);
      order.resize(order.size() - g.size());
    } while (std::next_permutation(g.begin(), g.end()));
  }
};

}  // namespace

CanonicalQuery CanonicalizeQuery(const QueryGraph& q) {
  CanonicalQuery out;
  const int n = q.node_count();
  if (n == 0) {
    out.signature = Serialize(q, {});
    out.hash = Fnv1a64(out.signature);
    return out;
  }

  std::vector<std::string> sig;
  const std::vector<int> colors = RefineColors(q, sig);

  // Color classes in color order; class members keep original indices for
  // now (the search sorts/permutes them).
  const int num_colors = *std::max_element(colors.begin(), colors.end()) + 1;
  std::vector<std::vector<int>> groups(num_colors);
  for (int u = 0; u < n; ++u) groups[colors[u]].push_back(u);

  // Residual symmetry: product of class factorials, capped.
  size_t orderings = 1;
  for (const auto& g : groups) {
    for (size_t i = 2; i <= g.size() && orderings <= kMaxCanonicalOrderings;
         ++i) {
      orderings *= i;
    }
    if (orderings > kMaxCanonicalOrderings) break;
  }

  std::vector<int> order;
  if (orderings > kMaxCanonicalOrderings) {
    // Fallback: refinement order with insertion-order tie-break. Still a
    // collision-free key, just not insertion-order invariant.
    out.exact = false;
    for (const auto& g : groups) order.insert(order.end(), g.begin(), g.end());
    out.signature = Serialize(q, order);
  } else {
    OrderSearch search{q, groups, {}, {}, {}};
    search.Run();
    order = std::move(search.best_order);
    out.signature = std::move(search.best);
  }

  out.node_rank.resize(n);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    out.node_rank[order[pos]] = static_cast<int>(pos);
  }
  out.hash = Fnv1a64(out.signature);
  return out;
}

uint64_t CanonicalQueryHash(const QueryGraph& q) {
  return CanonicalizeQuery(q).hash;
}

bool CanonicallyEqual(const QueryGraph& a, const QueryGraph& b) {
  return CanonicalizeQuery(a).signature == CanonicalizeQuery(b).signature;
}

std::string CanonicalStarEdgeRecord(const QueryGraph& q, int edge, int pivot,
                                    double leaf_weight) {
  const QueryEdge& qe = q.edge(edge);
  std::string r = EdgeAttr(qe);
  r += kField;
  r += NodeAttr(q.node(q.OtherEnd(edge, pivot)));
  r += kField;
  AppendDoubleBits(r, leaf_weight);
  return r;
}

std::string CanonicalNodeSignature(const QueryNode& n) { return NodeAttr(n); }

CanonicalStar CanonicalizeStar(const QueryGraph& q, const StarQuery& star,
                               const std::vector<double>& node_weights) {
  const auto weight = [&node_weights](int u) {
    return node_weights.empty() ? 1.0 : node_weights[u];
  };
  CanonicalStar out;
  out.signature = "P";
  out.signature += NodeAttr(q.node(star.pivot));
  out.signature += kField;
  AppendDoubleBits(out.signature, weight(star.pivot));

  std::vector<std::string> records;
  records.reserve(star.edges.size());
  for (const int e : star.edges) {
    records.push_back(CanonicalStarEdgeRecord(
        q, e, star.pivot, weight(q.OtherEnd(e, star.pivot))));
  }
  std::sort(records.begin(), records.end());
  for (size_t i = 0; i + 1 < records.size(); ++i) {
    if (records[i] == records[i + 1]) out.exact = false;
  }
  for (const std::string& r : records) {
    out.signature += kRecord;
    out.signature += r;
  }
  out.hash = Fnv1a64(out.signature);
  return out;
}

}  // namespace star::query
