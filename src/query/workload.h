#ifndef STAR_QUERY_WORKLOAD_H_
#define STAR_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/knowledge_graph.h"
#include "query/query_graph.h"

namespace star::query {

/// Knobs for query instantiation, mirroring the paper's DBPSB-derived
/// template workload (§VII-A): templates mix concrete labels with variable
/// ('?') slots (≤ 50% variables), and concrete labels come from entities
/// that actually occur in the graph, optionally perturbed so that matching
/// must rely on the similarity ensemble rather than exact lookup.
struct WorkloadOptions {
  /// Fraction of query nodes turned into wildcards (clamped to [0, 0.5]).
  double variable_fraction = 0.3;
  /// Probability that a concrete label is perturbed (typo/abbreviation/...).
  double label_noise = 0.4;
  /// Probability that a concrete label keeps only one of its tokens
  /// ("Brad Pitt" -> "Brad"), producing the ambiguous keyword queries of
  /// the paper's Example 1 with many candidate matches.
  double partial_label = 0.0;
  /// Probability that an edge keeps its concrete relation label.
  double keep_relation = 0.5;
  /// Probability that a concrete node keeps its type constraint.
  double keep_type = 0.5;
};

/// Generates query workloads grounded in a data graph: every generated
/// query is sampled from an actual subgraph, so at least one high-scoring
/// match is guaranteed to exist (the instantiation recipe of §VII-A).
/// Deterministic given the seed.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const graph::KnowledgeGraph& g, uint64_t seed);

  /// A star query with `num_nodes` nodes (pivot + num_nodes-1 leaves),
  /// sampled around a data node of sufficient degree.
  QueryGraph RandomStarQuery(int num_nodes, const WorkloadOptions& options);

  /// A simple-path query with `num_nodes` nodes.
  QueryGraph RandomPathQuery(int num_nodes, const WorkloadOptions& options);

  /// A general connected query with `num_nodes` nodes and `num_edges`
  /// >= num_nodes-1 edges (extra edges close cycles), grown by a random
  /// walk over the data graph. May return fewer edges if the sampled
  /// subgraph has no further edges to add.
  QueryGraph RandomGraphQuery(int num_nodes, int num_edges,
                              const WorkloadOptions& options);

  /// `count` star queries with sizes drawn uniformly from
  /// [min_nodes, max_nodes].
  std::vector<QueryGraph> StarWorkload(int count, int min_nodes, int max_nodes,
                                       const WorkloadOptions& options);

  /// `count` general graph queries of shape Q(num_nodes, num_edges).
  std::vector<QueryGraph> GraphWorkload(int count, int num_nodes,
                                        int num_edges,
                                        const WorkloadOptions& options);

  Rng& rng() { return rng_; }

 private:
  /// Picks a node with degree >= min_degree (rejection sampling with a
  /// degree-descending fallback).
  graph::NodeId PickNodeWithDegree(size_t min_degree);

  /// Query label for a data node under the options (wildcard / perturbed /
  /// verbatim), plus the type constraint decision.
  void FillNode(QueryGraph& q, graph::NodeId v, bool force_concrete,
                const WorkloadOptions& options);

  const graph::KnowledgeGraph& graph_;
  Rng rng_;
};

}  // namespace star::query

#endif  // STAR_QUERY_WORKLOAD_H_
