#ifndef STAR_VERTEX_VERTEX_ENGINE_H_
#define STAR_VERTEX_VERTEX_ENGINE_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "graph/knowledge_graph.h"

namespace star::vertex {

/// A minimal Pregel-style bulk-synchronous vertex-centric engine ([20] in
/// the paper) over a KnowledgeGraph's undirected view.
///
/// The paper's Remark in §V-B observes that stard's message propagation is
/// naturally vertex-centric: "each node can exchange messages between
/// their neighbors in parallel, which can complete all message propagation
/// in at most d rounds of communication". This engine makes that concrete:
/// star_programs.h implements the stard propagation as a vertex program
/// and the tests verify it computes exactly the walk semantics.
///
/// Execution model:
///  * Supersteps run synchronously; messages sent in superstep t are
///    delivered (grouped per target) in superstep t+1.
///  * A vertex is *active* in a superstep if it was explicitly activated,
///    or it received messages. Compute() runs only for active vertices.
///  * The run ends when no vertex is active or `max_supersteps` is hit.
///
/// The engine is deliberately sequential (this library targets a single
/// machine); the programming model is what matters — any Pregel-like
/// system could execute the same programs in parallel.
template <typename Message>
class VertexEngine {
 public:
  /// Per-vertex API handed to the compute function.
  class Context {
   public:
    Context(const graph::KnowledgeGraph& g, graph::NodeId vertex,
            int superstep,
            std::unordered_map<graph::NodeId, std::vector<Message>>& outbox,
            size_t& messages_sent)
        : graph_(g),
          vertex_(vertex),
          superstep_(superstep),
          outbox_(outbox),
          messages_sent_(messages_sent) {}

    graph::NodeId vertex() const { return vertex_; }
    int superstep() const { return superstep_; }
    const graph::KnowledgeGraph& graph() const { return graph_; }

    /// Sends a copy of m to every neighbor (the common stard pattern).
    void SendToNeighbors(const Message& m) {
      for (const graph::Neighbor& nb : graph_.Neighbors(vertex_)) {
        SendTo(nb.node, m);
      }
    }

    void SendTo(graph::NodeId target, const Message& m) {
      outbox_[target].push_back(m);
      ++messages_sent_;
    }

   private:
    const graph::KnowledgeGraph& graph_;
    graph::NodeId vertex_;
    int superstep_;
    std::unordered_map<graph::NodeId, std::vector<Message>>& outbox_;
    size_t& messages_sent_;
  };

  /// Compute function: runs once per active vertex per superstep with the
  /// messages delivered to it (empty for explicitly activated vertices).
  using ComputeFn =
      std::function<void(Context& ctx, const std::vector<Message>& inbox)>;

  struct RunStats {
    int supersteps = 0;
    size_t messages_delivered = 0;
    size_t compute_calls = 0;
  };

  VertexEngine(const graph::KnowledgeGraph& g, ComputeFn compute)
      : graph_(g), compute_(std::move(compute)) {}

  /// Schedules a vertex for the first superstep (without messages).
  void Activate(graph::NodeId v) { initially_active_.push_back(v); }

  void ActivateAll() {
    initially_active_.clear();
    initially_active_.reserve(graph_.node_count());
    for (graph::NodeId v = 0; v < graph_.node_count(); ++v) {
      initially_active_.push_back(v);
    }
  }

  /// Runs supersteps until quiescence or the limit; returns run counters.
  RunStats Run(int max_supersteps) {
    RunStats stats;
    std::unordered_map<graph::NodeId, std::vector<Message>> inbox;
    size_t messages_sent = 0;
    for (int step = 0; step < max_supersteps; ++step) {
      std::unordered_map<graph::NodeId, std::vector<Message>> outbox;
      bool any = false;
      if (step == 0) {
        static const std::vector<Message>* empty =
            new std::vector<Message>();
        for (const graph::NodeId v : initially_active_) {
          any = true;
          ++stats.compute_calls;
          Context ctx(graph_, v, step, outbox, messages_sent);
          compute_(ctx, *empty);
        }
      }
      for (auto& [v, messages] : inbox) {
        any = true;
        ++stats.compute_calls;
        stats.messages_delivered += messages.size();
        Context ctx(graph_, v, step, outbox, messages_sent);
        compute_(ctx, messages);
      }
      if (!any) break;
      ++stats.supersteps;
      inbox = std::move(outbox);
      if (inbox.empty()) break;
    }
    return stats;
  }

 private:
  const graph::KnowledgeGraph& graph_;
  ComputeFn compute_;
  std::vector<graph::NodeId> initially_active_;
};

}  // namespace star::vertex

#endif  // STAR_VERTEX_VERTEX_ENGINE_H_
