#include "vertex/star_programs.h"

#include <algorithm>
#include <limits>

namespace star::vertex {

using graph::KnowledgeGraph;
using graph::Neighbor;
using graph::NodeId;

std::vector<NodeId> ConnectedComponentsVC(const KnowledgeGraph& g) {
  std::vector<NodeId> label(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) label[v] = v;

  VertexEngine<NodeId> engine(
      g, [&](VertexEngine<NodeId>::Context& ctx,
             const std::vector<NodeId>& inbox) {
        NodeId best = label[ctx.vertex()];
        for (const NodeId candidate : inbox) best = std::min(best, candidate);
        if (ctx.superstep() == 0 || best < label[ctx.vertex()]) {
          label[ctx.vertex()] = best;
          ctx.SendToNeighbors(best);
        }
      });
  engine.ActivateAll();
  engine.Run(static_cast<int>(g.node_count()) + 1);
  return label;
}

std::unordered_map<NodeId, int> BfsDistancesVC(const KnowledgeGraph& g,
                                               NodeId source, int max_depth) {
  std::unordered_map<NodeId, int> dist;
  dist.emplace(source, 0);

  VertexEngine<int> engine(
      g, [&](VertexEngine<int>::Context& ctx, const std::vector<int>& inbox) {
        int best = ctx.superstep() == 0 && ctx.vertex() == source
                       ? 0
                       : std::numeric_limits<int>::max();
        for (const int d : inbox) best = std::min(best, d);
        const auto it = dist.find(ctx.vertex());
        if (it != dist.end() && it->second <= best &&
            ctx.superstep() != 0) {
          return;  // already settled at a smaller or equal distance
        }
        if (it == dist.end()) {
          dist.emplace(ctx.vertex(), best);
        } else if (best < it->second) {
          it->second = best;
        } else if (ctx.vertex() != source) {
          return;
        }
        if (best < max_depth) ctx.SendToNeighbors(best + 1);
      });
  engine.Activate(source);
  engine.Run(max_depth + 1);
  return dist;
}

namespace {

/// stard's triple (Example 6): source match, its node score, hops so far,
/// plus the receiver-side arrival value computed by the sender (which
/// sees the connecting edge, as vertex-centric frameworks allow).
struct StardMessage {
  NodeId source = graph::kInvalidNode;
  double base = 0.0;
  int hops = 0;
  double arrival_value = 0.0;
};

}  // namespace

std::unordered_map<NodeId, VcArrival> PropagateLeafScoresVC(
    scoring::QueryScorer& scorer, int query_edge, int leaf_node) {
  const KnowledgeGraph& g = scorer.graph();
  const scoring::MatchConfig& cfg = scorer.config();
  const int d = std::max(1, cfg.d);

  std::unordered_map<NodeId, VcArrival> arrivals;
  // Forward state per vertex: same-source dominance-pruned (base, hops).
  std::unordered_map<NodeId, std::vector<StardMessage>> forward;
  // Candidate bases, looked up when a vertex first sends.
  std::unordered_map<NodeId, double> base_of;
  for (const auto& c : scorer.Candidates(leaf_node)) {
    base_of.emplace(c.node, c.score);
  }

  const auto offer = [&](NodeId at, NodeId source, double value) {
    VcArrival& slot = arrivals[at];
    if (source == slot.best_source) {
      slot.best_value = std::max(slot.best_value, value);
      return;
    }
    if (value > slot.best_value) {
      slot.second_source = slot.best_source;
      slot.second_value = slot.best_value;
      slot.best_source = source;
      slot.best_value = value;
    } else if (source == slot.second_source) {
      slot.second_value = std::max(slot.second_value, value);
    } else if (value > slot.second_value) {
      slot.second_source = source;
      slot.second_value = value;
    }
  };

  using Engine = VertexEngine<StardMessage>;
  Engine engine(g, [&](Engine::Context& ctx,
                       const std::vector<StardMessage>& inbox) {
    const NodeId self = ctx.vertex();
    // Superstep 0: leaf candidates emit their initial messages, folding
    // the direct edge's relation similarity into the arrival value.
    if (ctx.superstep() == 0) {
      const double base = base_of.at(self);
      for (const Neighbor& nb : g.Neighbors(self)) {
        const double relsim = scorer.RelationScore(query_edge, nb.relation);
        if (relsim < cfg.edge_threshold) continue;
        ctx.SendTo(nb.node, StardMessage{self, base, 1, base + relsim});
      }
      return;
    }
    // Deliver arrivals, then forward survivors one hop with decay.
    auto& fwd = forward[self];
    std::vector<StardMessage> fresh;
    for (const StardMessage& m : inbox) {
      offer(self, m.source, m.arrival_value);
      // Same-source dominance: keep only undominated (base, hops) states.
      bool dominated = false;
      for (const StardMessage& e : fwd) {
        if (e.source == m.source && e.base >= m.base && e.hops <= m.hops) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      std::erase_if(fwd, [&](const StardMessage& e) {
        return e.source == m.source && m.base >= e.base && m.hops <= e.hops;
      });
      fwd.push_back(m);
      fresh.push_back(m);
    }
    for (const StardMessage& m : fresh) {
      const int next_hops = m.hops + 1;
      if (next_hops > d) continue;
      const double decay = scorer.PathDecay(next_hops);
      if (decay < cfg.edge_threshold) continue;
      ctx.SendToNeighbors(
          StardMessage{m.source, m.base, next_hops, m.base + decay});
    }
  });

  for (const auto& [v, base] : base_of) engine.Activate(v);
  engine.Run(d + 1);
  return arrivals;
}

}  // namespace star::vertex
