#ifndef STAR_VERTEX_STAR_PROGRAMS_H_
#define STAR_VERTEX_STAR_PROGRAMS_H_

#include <unordered_map>
#include <vector>

#include "graph/knowledge_graph.h"
#include "scoring/query_scorer.h"
#include "vertex/vertex_engine.h"

namespace star::vertex {

/// Connected components by min-label propagation. Returns one component
/// id (the smallest node id in the component) per node.
std::vector<graph::NodeId> ConnectedComponentsVC(const graph::KnowledgeGraph& g);

/// BFS hop distances from `source` up to `max_depth` (inclusive); nodes
/// beyond the depth are absent from the map.
std::unordered_map<graph::NodeId, int> BfsDistancesVC(
    const graph::KnowledgeGraph& g, graph::NodeId source, int max_depth);

/// Arrival summary of stard's message passing at one node for one leaf:
/// the best and second-best (by value) arrival over *distinct* sources —
/// exactly what the pivot estimate needs under injectivity (§V-B's
/// ping-pong rule).
struct VcArrival {
  graph::NodeId best_source = graph::kInvalidNode;
  double best_value = -1.0;
  graph::NodeId second_source = graph::kInvalidNode;
  double second_value = -1.0;

  /// Max arrival value over sources != excluded (-1 if none).
  double BestExcluding(graph::NodeId excluded) const {
    return best_source != excluded ? best_value : second_value;
  }
};

/// The stard message propagation of §V-B expressed as a vertex program
/// (the paper's Remark: d rounds of neighbor communication). For the star
/// query edge `query_edge` with leaf query node `leaf_node`, propagates
/// every leaf candidate's (weighted-by-1) F_N for config.d rounds under
/// the walk semantics and returns each reached node's arrival summary:
///
///   value(v, source w, h hops) = F_N(leaf, w) +
///       (h == 1 ? RelationScore(query_edge, direct edge) : lambda^(h-1))
///
/// This is the *uncapped* reference formulation (exact, used by tests and
/// as documentation of the parallelizable algorithm); the production
/// StarSearch uses capped per-node sets with admissible overflow bounds.
std::unordered_map<graph::NodeId, VcArrival> PropagateLeafScoresVC(
    scoring::QueryScorer& scorer, int query_edge, int leaf_node);

}  // namespace star::vertex

#endif  // STAR_VERTEX_STAR_PROGRAMS_H_
