#ifndef STAR_SCORING_MATCH_CONFIG_H_
#define STAR_SCORING_MATCH_CONFIG_H_

#include <cstddef>

namespace star::scoring {

/// Global matching semantics shared by every search algorithm in the
/// library (STAR, graphTA, BP, brute force), so comparisons are apples to
/// apples.
///
/// The aggregate score of a match is Eq. 2:
///   F(phi(Q)) = sum_v F_N(v, phi(v)) + sum_e F_E(e, phi_d(e))
/// with the edge-path similarity over walks of length h <= d between the
/// two endpoint matches:
///   F_E = max( relsim(e, r) over direct edges r   [h = 1],
///              lambda^(h-1) for each reachable h in [2, d] ).
/// A one-hop match scores plain relation similarity; longer connections
/// decay geometrically per §V-B's example F = lambda^(h-1). The form is
/// symmetric in the endpoints, so scores are decomposition-invariant.
struct MatchConfig {
  /// Node matches with F_N below this are not candidates (the paper's
  /// per-node "good match" threshold, §II).
  double node_threshold = 0.35;

  /// Edge/path matches with F_E below this are rejected.
  double edge_threshold = 0.05;

  /// Geometric path decay lambda in (0, 1].
  double lambda = 0.5;

  /// Edge-to-path bound d (d = 1 is plain subgraph matching).
  int d = 1;

  /// Candidate cutoff n' per query node (0 = unlimited): only the best n'
  /// candidates by F_N are retained (§V-A "a cutoff threshold will be
  /// applied to retain a few candidate nodes").
  size_t max_candidates = 0;

  /// Retrieval cutoff (0 = unlimited): at most this many index-retrieved
  /// nodes are scored with the (expensive, online) Eq. 1 ensemble, chosen
  /// by the index's cheap rarity pre-ranking. Keeps node matching a small
  /// fraction of query time, as the paper's indices do. Only applies when
  /// a LabelIndex is attached.
  size_t max_retrieval = 0;

  /// F_N granted to wildcard ('?') query nodes for any data node.
  double wildcard_node_score = 1.0;

  /// Enforce one-to-one node mapping (§II's matching function). When
  /// false, leaf matches may collide (the paper's simplified exposition).
  bool enforce_injective = true;

  /// Deterministic candidate-pool sampling (serve-layer degradation,
  /// level 2 of the shedding ladder): when sample_rate < 1, each node id
  /// in a query node's retrieval pool is kept iff
  /// splitmix64(sample_seed ^ id) / 2^64 < sample_rate. The predicate is
  /// a pure function of (seed, id), so the same config produces the same
  /// pools on every engine, shard, and thread count. Wildcard query
  /// nodes are never sampled (they have no pool). Both fields are
  /// result-affecting and included in StarOptionsFingerprint. Sampling
  /// forces the unpruned retrieval path (block-max thresholds assume the
  /// full union).
  double sample_rate = 1.0;
  uint64_t sample_seed = 0;

  /// True when the sampling predicate is active.
  bool sampling() const { return sample_rate < 1.0; }

  /// Worker threads for the parallel execution paths (bulk F_N candidate
  /// scoring, stark per-pivot enumeration, stard message propagation).
  /// 0 = auto (the STAR_THREADS env var, else hardware concurrency);
  /// 1 = fully serial. Results are bit-identical for every value — see
  /// DESIGN.md "Threading model".
  int threads = 0;

  /// Use the threshold-aware scoring kernel for bulk F_N evaluation
  /// (query-side precomputation, allocation-free per-pair scoring, and
  /// weight-ordered early exit against node_threshold). Candidate sets and
  /// scores are bit-identical either way — the toggle exists for A/B
  /// benchmarking (see DESIGN.md "Scoring kernel").
  bool use_scoring_kernel = true;

  /// Use the batched SoA scoring kernel (ScoreBatchAgainstThreshold) for
  /// bulk F_N evaluation: kBatchLanes candidates per pass with refined
  /// per-lane upper bounds, per-chunk duplicate-label elision, and packed
  /// gram / pre-resolved synonym lanes. Only takes effect together with
  /// use_scoring_kernel. Candidate sets and scores are bit-identical with
  /// the toggle on or off (see DESIGN.md "Memory layout & batched
  /// scoring"); like use_scoring_kernel it is excluded from
  /// StarOptionsFingerprint.
  bool use_batch_kernel = true;

  /// Bound-driven candidate retrieval (block-max pruning): Candidates()
  /// walks the postings blocks of the retrieval union in descending
  /// score-cap order, maintains the running max_candidates-th score as a
  /// threshold, and skips blocks / nodes whose upper bound cannot reach
  /// it — instead of scoring the whole union and truncating. Candidate
  /// lists are bit-identical with the toggle on or off, including the
  /// deterministic tie cut (see DESIGN.md "Bound-driven retrieval");
  /// like the kernel toggles it is excluded from StarOptionsFingerprint.
  bool use_pruned_retrieval = true;
};

}  // namespace star::scoring

#endif  // STAR_SCORING_MATCH_CONFIG_H_
